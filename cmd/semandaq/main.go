// Command semandaq is the command-line front end to the Semandaq
// data-quality system (§5 of the tutorial): generate workloads, detect
// CFD violations, repair dirty relations, discover constraints and match
// records, all over CSV files.
//
// Usage:
//
//	semandaq generate -kind cust -n 10000 -rate 0.05 -out dirty.csv [-truth truth.csv]
//	semandaq detect   -data dirty.csv -cfds rules.txt [-sql]
//	semandaq repair   -data dirty.csv -cfds rules.txt -out repaired.csv
//	semandaq discover -data data.csv -support 10 -maxlhs 2
//	semandaq match    -persons 2000 -perturb 0.6
//
// Constraint files contain one CFD per line in the package syntax, e.g.
//
//	cfd phi1: cust([CC='44', ZIP] -> [STR])
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/matching"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/semandaq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "match":
		err = cmdMatch(os.Args[2:])
	case "reason":
		err = cmdReason(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "semandaq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: semandaq <generate|detect|repair|discover|match|reason> [flags]
run "semandaq <command> -h" for command flags`)
}

// schemaFor returns the built-in schema by relation name.
func schemaFor(kind string) (*relation.Schema, error) {
	switch kind {
	case "cust":
		return datagen.CustSchema(), nil
	case "hosp":
		return datagen.HospSchema(), nil
	default:
		return nil, fmt.Errorf("unknown schema kind %q (cust, hosp)", kind)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "cust", "workload kind: cust or hosp")
	n := fs.Int("n", 10000, "number of tuples")
	rate := fs.Float64("rate", 0, "noise rate (0 = clean)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV path (required)")
	truthOut := fs.String("truth", "", "optional ground-truth CSV (tid,attr,value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	var r *relation.Relation
	switch *kind {
	case "cust":
		r = datagen.Cust(*n, *seed)
	case "hosp":
		r = datagen.Hosp(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	var truth *noise.Truth
	if *rate > 0 {
		r, truth = noise.Dirty(r, noise.Options{Rate: *rate, Seed: *seed + 1})
	}
	if err := relation.SaveCSVFile(*out, r); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples to %s\n", r.Len(), *out)
	if truth != nil && *truthOut != "" {
		f, err := os.Create(*truthOut)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "tid,attr,value")
		for cell, v := range truth.Cells {
			fmt.Fprintf(f, "%d,%s,%q\n", cell[0], r.Schema().Attr(cell[1]).Name, v.String())
		}
		fmt.Printf("wrote %d ground-truth cells to %s\n", truth.Len(), *truthOut)
	}
	return nil
}

// loadProject reads the data CSV and constraint file shared by detect
// and repair.
func loadProject(dataPath, cfdPath, kind string) (*semandaq.Project, error) {
	schema, err := schemaFor(kind)
	if err != nil {
		return nil, err
	}
	data, err := relation.LoadCSVFile(dataPath, schema)
	if err != nil {
		return nil, err
	}
	var set *cfd.Set
	if cfdPath == "" {
		switch kind {
		case "cust":
			set = datagen.CustConstraints()
		case "hosp":
			set = datagen.HospConstraints()
		}
	} else {
		src, err := os.ReadFile(cfdPath)
		if err != nil {
			return nil, err
		}
		set, err = cfd.ParseSet(string(src), schema)
		if err != nil {
			return nil, err
		}
	}
	return semandaq.NewProject(dataPath, data, set)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	data := fs.String("data", "", "input CSV (required)")
	cfds := fs.String("cfds", "", "constraint file (default: built-in set for -kind)")
	kind := fs.String("kind", "cust", "schema kind")
	useSQL := fs.Bool("sql", false, "use the TODS 2008 SQL-based detection path")
	verbose := fs.Bool("v", false, "print each violation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("detect: -data is required")
	}
	p, err := loadProject(*data, *cfds, *kind)
	if err != nil {
		return err
	}
	start := time.Now()
	if *useSQL {
		tids, err := p.DetectSQL()
		if err != nil {
			return err
		}
		fmt.Printf("SQL detection: %d violating tuples in %v\n", len(tids), time.Since(start))
		if *verbose {
			fmt.Println("tids:", tids)
		}
		return nil
	}
	vs, err := p.Detect()
	if err != nil {
		return err
	}
	fmt.Printf("native detection: %d violations (%d tuples) in %v\n",
		len(vs), len(cfd.ViolatingTIDs(vs)), time.Since(start))
	if *verbose {
		for _, v := range vs {
			fmt.Println("  " + v.String())
		}
	}
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	data := fs.String("data", "", "input CSV (required)")
	cfds := fs.String("cfds", "", "constraint file (default: built-in set for -kind)")
	kind := fs.String("kind", "cust", "schema kind")
	out := fs.String("out", "", "output CSV for the repaired relation")
	show := fs.Int("show", 20, "changes to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("repair: -data is required")
	}
	p, err := loadProject(*data, *cfds, *kind)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := p.Repair()
	if err != nil {
		return err
	}
	fmt.Printf("repair: %d changes, cost %.3f, %d passes in %v\n",
		len(res.Changes), res.Cost, res.Passes, time.Since(start))
	fmt.Print(semandaq.FormatChanges(p.Data(), res.Changes, *show))
	if err := p.Accept(); err != nil {
		return err
	}
	if *out != "" {
		if err := relation.SaveCSVFile(*out, p.Data()); err != nil {
			return err
		}
		fmt.Printf("wrote repaired relation to %s\n", *out)
	}
	return nil
}

func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	data := fs.String("data", "", "input CSV (required)")
	kind := fs.String("kind", "cust", "schema kind")
	support := fs.Int("support", 10, "minimum pattern support")
	maxLHS := fs.Int("maxlhs", 2, "maximum LHS size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("discover: -data is required")
	}
	schema, err := schemaFor(*kind)
	if err != nil {
		return err
	}
	r, err := relation.LoadCSVFile(*data, schema)
	if err != nil {
		return err
	}
	start := time.Now()
	rules, err := discovery.Discover(r, discovery.Options{MinSupport: *support, MaxLHS: *maxLHS})
	if err != nil {
		return err
	}
	fmt.Printf("discovered %d rules in %v\n", len(rules), time.Since(start))
	for _, c := range rules {
		fmt.Println(c)
	}
	return nil
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	persons := fs.Int("persons", 2000, "number of card holders")
	perturb := fs.Float64("perturb", 0.6, "duplicate distortion probability")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cardS, billingS := datagen.CardSchema(), datagen.BillingSchema()
	pair := func(name string, cmp matching.Comparator) matching.AttrPair {
		return matching.AttrPair{Left: cardS.MustIndex(name), Right: billingS.MustIndex(name), Cmp: cmp}
	}
	y := []matching.AttrPair{
		pair("fn", matching.Eq()), pair("ln", matching.Eq()), pair("addr", matching.Eq()),
		pair("phn", matching.Eq()), pair("email", matching.Eq()),
	}
	mds := make([]*matching.MD, 0, 3)
	for _, spec := range []struct {
		name string
		prem []matching.AttrPair
		conc []matching.AttrPair
	}{
		{"a", []matching.AttrPair{pair("phn", matching.Eq())}, []matching.AttrPair{pair("addr", matching.Eq())}},
		{"b", []matching.AttrPair{pair("email", matching.Eq())}, []matching.AttrPair{pair("fn", matching.Eq()), pair("ln", matching.Eq())}},
		{"c", []matching.AttrPair{pair("ln", matching.Eq()), pair("addr", matching.Eq()), pair("fn", matching.MustApprox("jarowinkler", 0.85))}, y},
	} {
		md, err := matching.NewMD(spec.name, cardS, billingS, spec.prem, spec.conc)
		if err != nil {
			return err
		}
		mds = append(mds, md)
	}
	keys, err := matching.DeduceRCKs(mds, y, matching.DeduceOptions{MaxPairs: 3})
	if err != nil {
		return err
	}
	fmt.Printf("derived %d RCKs:\n", len(keys))
	for _, k := range keys {
		fmt.Println("  " + k.String())
	}
	card, billing, truth := datagen.CardBilling(datagen.CardBillingOptions{
		Persons: *persons, DupRate: 0.5, Perturb: *perturb, Seed: *seed,
	})
	m, err := matching.NewMatcher(cardS, billingS, keys)
	if err != nil {
		return err
	}
	start := time.Now()
	matches, err := m.Run(card, billing)
	if err != nil {
		return err
	}
	fmt.Printf("matched %d/%d true pairs in %v: %s\n",
		len(matches), len(truth), time.Since(start), matching.Evaluate(matches, truth))
	return nil
}

// cmdReason runs the static analyses over a constraint file: consistency
// (satisfiability), optional implication of a query CFD, and the minimal
// cover.
func cmdReason(args []string) error {
	fs := flag.NewFlagSet("reason", flag.ExitOnError)
	cfds := fs.String("cfds", "", "constraint file (required)")
	kind := fs.String("kind", "cust", "schema kind")
	implies := fs.String("implies", "", "optional CFD to test for implication")
	mincover := fs.Bool("mincover", false, "print the minimal cover")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfds == "" {
		return fmt.Errorf("reason: -cfds is required")
	}
	schema, err := schemaFor(*kind)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*cfds)
	if err != nil {
		return err
	}
	set, err := cfd.ParseSet(string(src), schema)
	if err != nil {
		return err
	}
	start := time.Now()
	ok, witness := cfd.Satisfiable(set)
	fmt.Printf("satisfiable: %v (%v)\n", ok, time.Since(start))
	if ok {
		fmt.Printf("witness tuple: %s\n", witness)
	}
	if *implies != "" {
		phi, err := cfd.Parse(*implies, schema)
		if err != nil {
			return err
		}
		start = time.Now()
		implied, err := cfd.Implies(set, phi)
		if err != nil {
			return err
		}
		fmt.Printf("implies %s: %v (%v)\n", phi, implied, time.Since(start))
	}
	if *mincover {
		start = time.Now()
		mc, err := cfd.MinimalCover(set)
		if err != nil {
			return err
		}
		fmt.Printf("minimal cover (%d rows, %v):\n%s\n", mc.TotalRows(), time.Since(start), mc)
	}
	return nil
}
