package main

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	weights, err := parseMix("detect=2,violations=5,append=2,discover=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 4 || weights["violations"] != 5 || weights["discover"] != 0.2 {
		t.Fatalf("weights = %v", weights)
	}
	// Zero weights drop the operation entirely.
	weights, err = parseMix("detect=1,append=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 1 || weights["detect"] != 1 {
		t.Fatalf("weights = %v", weights)
	}
	for _, bad := range []string{"", "detect", "repair=1", "detect=-1", "detect=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPickOpRespectsWeights(t *testing.T) {
	weights := map[string]float64{"detect": 1, "violations": 9}
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pickOp(rng, weights)]++
	}
	if counts["detect"]+counts["violations"] != 10000 {
		t.Fatalf("unexpected ops: %v", counts)
	}
	frac := float64(counts["violations"]) / 10000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("violations fraction = %v, want ~0.9", frac)
	}
}

func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	one := []time.Duration{3 * time.Millisecond}
	if got := percentile(one, 1); got != 3*time.Millisecond {
		t.Errorf("single-sample percentile = %v", got)
	}
}
