// Command loadgen is a closed-loop HTTP load generator for semandaqd:
// a fixed fleet of clients each keeps exactly one request in flight,
// drawing the next operation from a weighted mix of append, detect,
// violations and discover traffic, so measured latency reflects
// service time under a bounded concurrency level rather than an
// open-loop arrival storm.
//
// With -addr it drives an already-running server. Without it, loadgen
// runs the full harness (`make bench-service`): for each worker count
// in -sweep it boots that many `semandaqd -worker` processes plus a
// `-cluster` coordinator preloaded with -n tuples, waits for health,
// drives the mix for -duration, and reports throughput, p50/p95/p99
// latency and the boundary-group residual fraction of a fresh detect.
// Output is a benchjson-shaped document (BENCH_service.json in CI), so
// archived service numbers live alongside the library benchmarks.
//
// With -recovery the harness runs the crash-recovery sweep instead
// (`make bench-recovery`): for each acked-append count in the list it
// boots a durable daemon (-data-dir on a temp dir, WAL fsync on every
// write), streams single-row appends counting the acks, SIGKILLs the
// process mid-stream, restarts it on the same data dir, and measures
// the time from exec to the first healthy /healthz (listen + snapshot
// load + WAL tail replay). The run fails unless every acked append
// survived, nothing was ingested twice, and the replayed dataset shows
// zero index-cache misses — recovery must be raw insertion, not
// re-detection. BENCH_recovery.json plots recovery time against WAL
// tail length.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	addr := flag.String("addr", "", "drive an already-running server at this base URL instead of spawning a cluster")
	bin := flag.String("bin", "bin/semandaqd", "semandaqd binary for spawned clusters")
	sweep := flag.String("sweep", "1,2,4", "comma-separated worker counts to benchmark")
	portBase := flag.Int("port-base", 18080, "coordinator listens here; workers on the following ports")
	n := flag.Int("n", 5000, "preloaded cust dataset size")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 5*time.Second, "measurement window per run")
	mix := flag.String("mix", "detect=2,violations=5,append=2,discover=0.2", "weighted operation mix")
	seed := flag.Int64("seed", 1, "per-client RNG seed base")
	out := flag.String("out", "", "output JSON path (empty = stdout)")
	recovery := flag.String("recovery", "", "comma-separated acked-append counts: run the crash-recovery sweep (SIGKILL mid-append, restart, verify) instead of the load mix")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	rep := report{Meta: map[string]string{
		"goversion":  runtime.Version(),
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"numcpu":     strconv.Itoa(runtime.NumCPU()),
		"mix":        *mix,
		"clients":    strconv.Itoa(*clients),
		"duration":   duration.String(),
		"preload-n":  strconv.Itoa(*n),
	}}

	if *recovery != "" {
		for _, field := range strings.Split(*recovery, ",") {
			appends, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || appends < 1 {
				log.Fatalf("loadgen: bad -recovery entry %q", field)
			}
			res, err := runRecovery(*bin, *portBase, *n, appends)
			if err != nil {
				log.Fatalf("loadgen: recovery appends=%d: %v", appends, err)
			}
			res.Name = fmt.Sprintf("Recovery/appends=%d", appends)
			rep.Results = append(rep.Results, res)
			log.Printf("%s: recovered in %.1fms (wal %.0f bytes, %0.f acked appends, 0 lost)",
				res.Name, res.NsPerOp/1e6, res.Extra["wal-bytes"], res.Extra["acked-appends"])
		}
	} else if *addr != "" {
		res := runLoad(*addr, *clients, *duration, weights, *seed)
		res.Name = "LoadgenMixed/external"
		rep.Results = append(rep.Results, res)
	} else {
		for _, field := range strings.Split(*sweep, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || w < 1 {
				log.Fatalf("loadgen: bad -sweep entry %q", field)
			}
			res, err := runCluster(*bin, *portBase, w, *n, *clients, *duration, weights, *seed)
			if err != nil {
				log.Fatalf("loadgen: workers=%d: %v", w, err)
			}
			res.Name = fmt.Sprintf("LoadgenMixed/workers=%d", w)
			rep.Results = append(rep.Results, res)
			log.Printf("%s: %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, residual %.4f",
				res.Name, res.Extra["req/s"], res.Extra["p50-ms"], res.Extra["p95-ms"],
				res.Extra["p99-ms"], res.Extra["boundary-fraction"])
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

// report mirrors cmd/benchjson's document shape so BENCH_service.json
// is directly comparable with the other archived BENCH_*.json files.
type report struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Results []result          `json:"results"`
}

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// parseMix parses "op=weight,op=weight" into positive weights for the
// known operations (append, detect, violations, discover).
func parseMix(s string) (map[string]float64, error) {
	known := map[string]bool{"append": true, "detect": true, "violations": true, "discover": true}
	weights := map[string]float64{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not op=weight", field)
		}
		name = strings.TrimSpace(name)
		if !known[name] {
			return nil, fmt.Errorf("unknown operation %q in mix", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight in mix entry %q", field)
		}
		if w > 0 {
			weights[name] = w
		}
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("mix %q selects no operations", s)
	}
	return weights, nil
}

// pickOp draws an operation from the weighted mix. Iteration order over
// a map is random, so the cumulative walk uses sorted keys to stay
// deterministic for a given RNG stream.
func pickOp(rng *rand.Rand, weights map[string]float64) string {
	names := make([]string, 0, len(weights))
	total := 0.0
	for name, w := range weights {
		names = append(names, name)
		total += w
	}
	sort.Strings(names)
	x := rng.Float64() * total
	for _, name := range names {
		x -= weights[name]
		if x < 0 {
			return name
		}
	}
	return names[len(names)-1]
}

// percentile returns the p-th percentile (0..100) of sorted durations
// by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// runCluster boots workers + coordinator, runs the load, tears down.
func runCluster(bin string, portBase, workers, n, clients int, duration time.Duration, weights map[string]float64, seed int64) (result, error) {
	var procs []*exec.Cmd
	stopAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Signal(os.Interrupt)
			}
		}
		for _, p := range procs {
			p.Wait()
		}
	}
	defer stopAll()

	var workerURLs []string
	for i := 0; i < workers; i++ {
		port := portBase + 1 + i
		url := fmt.Sprintf("http://127.0.0.1:%d", port)
		cmd := exec.Command(bin, "-worker", "-addr", fmt.Sprintf("127.0.0.1:%d", port))
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			return result{}, fmt.Errorf("start worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
		workerURLs = append(workerURLs, url)
	}
	for _, url := range workerURLs {
		if err := waitHealthy(url, 30*time.Second); err != nil {
			return result{}, err
		}
	}
	coordURL := fmt.Sprintf("http://127.0.0.1:%d", portBase)
	cmd := exec.Command(bin,
		"-cluster", strings.Join(workerURLs, ","),
		"-addr", fmt.Sprintf("127.0.0.1:%d", portBase),
		"-preload", strconv.Itoa(n))
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return result{}, fmt.Errorf("start coordinator: %w", err)
	}
	procs = append(procs, cmd)
	if err := waitHealthy(coordURL, 60*time.Second); err != nil {
		return result{}, err
	}

	res := runLoad(coordURL, clients, duration, weights, seed)
	res.Extra["workers"] = float64(workers)
	return res, nil
}

// runRecovery is one point of the crash-recovery sweep: boot a durable
// daemon, stream acked appends, SIGKILL it mid-stream, restart on the
// same data dir and verify the acked writes — all of them, exactly once
// — came back without any re-ingest detection work.
func runRecovery(bin string, portBase, n, appends int) (result, error) {
	dir, err := os.MkdirTemp("", "semandaq-recovery-")
	if err != nil {
		return result{}, err
	}
	defer os.RemoveAll(dir)
	addr := fmt.Sprintf("127.0.0.1:%d", portBase)
	url := "http://" + addr
	// -checkpoint-every 0: the whole append stream stays in the WAL
	// tail, so recovery time scales with the acked-append count.
	args := []string{"-addr", addr, "-data-dir", dir, "-wal-sync", "always",
		"-preload", strconv.Itoa(n), "-checkpoint-every", "0"}

	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return result{}, fmt.Errorf("start daemon: %w", err)
	}
	killed := false
	defer func() {
		if !killed && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	if err := waitHealthy(url, 60*time.Second); err != nil {
		return result{}, err
	}
	baseline, _, err := datasetStats(url, "cust")
	if err != nil {
		return result{}, err
	}

	// Stream single-row acked appends; the kill lands while the stream
	// is still running, so the final in-flight request may die un-acked
	// — exactly the window durability must not extend to.
	var acked atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		hc := &http.Client{Timeout: 30 * time.Second}
		for seq := 0; ; seq++ {
			tuple := []string{
				"01", "908", fmt.Sprintf("908-7%06d", seq),
				"rec", "Crash Ct", "mh", "07974",
			}
			if !post(hc, url+"/v1/repair/incremental",
				map[string]any{"dataset": "cust", "tuples": [][]string{tuple}}) {
				return
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < int64(appends) {
		select {
		case <-done:
			return result{}, fmt.Errorf("append stream died after %d acks (want %d)", acked.Load(), appends)
		case <-time.After(time.Millisecond):
		}
	}
	cmd.Process.Kill() // SIGKILL: no shutdown checkpoint, no WAL close
	killed = true
	cmd.Wait()
	<-done
	ackedN := acked.Load()
	var walBytes int64
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err == nil {
		walBytes = fi.Size()
	}

	// Restart on the same data dir and clock exec → first healthy
	// response; /healthz answers 503 "recovering" until replay is done,
	// which waitHealthy treats as not-yet-up.
	restart := time.Now()
	cmd2 := exec.Command(bin, args...)
	cmd2.Stdout = io.Discard
	cmd2.Stderr = io.Discard
	if err := cmd2.Start(); err != nil {
		return result{}, fmt.Errorf("restart daemon: %w", err)
	}
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		cmd2.Wait()
	}()
	if err := waitHealthy(url, 120*time.Second); err != nil {
		return result{}, fmt.Errorf("after restart: %w", err)
	}
	recoveryTime := time.Since(restart)

	tuples, misses, err := datasetStats(url, "cust")
	if err != nil {
		return result{}, fmt.Errorf("after restart: %w", err)
	}
	lost := baseline + int(ackedN) - tuples
	if lost > 0 {
		return result{}, fmt.Errorf("%d acked append(s) lost (have %d tuples, want >= %d)",
			lost, tuples, baseline+int(ackedN))
	}
	// At most the one un-acked in-flight row may have slipped in.
	if extra := tuples - baseline - int(ackedN); extra > 1 {
		return result{}, fmt.Errorf("%d extra tuple(s) after recovery — rows ingested twice", extra)
	}
	if misses != 0 {
		return result{}, fmt.Errorf("replay did detection work: %d index-cache misses after recovery", misses)
	}
	// The recovered dataset must serve, not just count.
	hc := &http.Client{Timeout: 2 * time.Minute}
	if !post(hc, url+"/v1/detect", map[string]any{"dataset": "cust"}) {
		return result{}, fmt.Errorf("detect failed on recovered dataset")
	}

	return result{
		Iterations: ackedN,
		NsPerOp:    float64(recoveryTime.Nanoseconds()),
		Extra: map[string]float64{
			"recovery-ms":    ms(recoveryTime),
			"wal-bytes":      float64(walBytes),
			"acked-appends":  float64(ackedN),
			"tuples":         float64(tuples),
			"lost-appends":   0,
			"preload-tuples": float64(baseline),
		},
	}, nil
}

// datasetStats reads a dataset's tuple count and index-cache miss
// counter from GET /v1/datasets/{name}.
func datasetStats(base, name string) (tuples, misses int, err error) {
	resp, err := http.Get(base + "/v1/datasets/" + name)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Tuples     int `json:"tuples"`
		IndexCache struct {
			Misses int `json:"misses"`
		} `json:"index_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET /v1/datasets/%s: %d", name, resp.StatusCode)
	}
	return body.Tuples, body.IndexCache.Misses, nil
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s did not become healthy within %s", url, timeout)
}

// runLoad drives the closed loop and aggregates latency + throughput.
func runLoad(base string, clients int, duration time.Duration, weights map[string]float64, seed int64) result {
	type sample struct {
		d  time.Duration
		ok bool
	}
	perClient := make([][]sample, clients)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			hc := &http.Client{Timeout: 2 * time.Minute}
			for seq := 0; time.Now().Before(stop); seq++ {
				op := pickOp(rng, weights)
				start := time.Now()
				ok := doOp(hc, base, op, c, seq)
				perClient[c] = append(perClient[c], sample{d: time.Since(start), ok: ok})
			}
		}(c)
	}
	wg.Wait()

	var lat []time.Duration
	var total, errs int64
	var sum time.Duration
	for _, samples := range perClient {
		for _, s := range samples {
			total++
			sum += s.d
			lat = append(lat, s.d)
			if !s.ok {
				errs++
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res := result{Iterations: total, Extra: map[string]float64{
		"req/s":  float64(total) / duration.Seconds(),
		"p50-ms": ms(percentile(lat, 50)),
		"p95-ms": ms(percentile(lat, 95)),
		"p99-ms": ms(percentile(lat, 99)),
		"errors": float64(errs),
	}}
	if total > 0 {
		res.NsPerOp = float64(sum.Nanoseconds()) / float64(total)
	}
	if frac, ok := residualFraction(base); ok {
		res.Extra["boundary-fraction"] = frac
	}
	return res
}

// doOp issues one request of the given kind; false marks an error
// response. Appends are phi3-consistent ('01','908' -> 'mh') with
// unique phones so the worker's incremental repair path accepts them.
func doOp(hc *http.Client, base, op string, client, seq int) bool {
	switch op {
	case "append":
		tuple := []string{
			"01", "908", fmt.Sprintf("908-9%02d%04d", client%100, seq%10000),
			fmt.Sprintf("lg%d", client), "Load Ln", "mh", "07974",
		}
		return post(hc, base+"/v1/repair/incremental",
			map[string]any{"dataset": "cust", "tuples": [][]string{tuple}})
	case "detect":
		return post(hc, base+"/v1/detect", map[string]any{"dataset": "cust"})
	case "violations":
		resp, err := hc.Get(base + "/v1/datasets/cust/violations")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode < 400
	case "discover":
		return post(hc, base+"/v1/discover",
			map[string]any{"dataset": "cust", "min_support": 50, "max_lhs": 1})
	}
	return false
}

func post(hc *http.Client, url string, body any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < 400
}

// residualFraction runs one quiescent detect and reads the merge's
// boundary-group residual fraction (absent on a single-process server).
func residualFraction(base string) (float64, bool) {
	buf, _ := json.Marshal(map[string]any{"dataset": "cust"})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var body struct {
		Residual *struct {
			BoundaryFraction float64 `json:"boundary_fraction"`
		} `json:"residual"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) != nil || body.Residual == nil {
		return 0, false
	}
	return body.Residual.BoundaryFraction, true
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
