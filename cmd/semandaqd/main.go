// Command semandaqd runs Semandaq as a long-running data-quality
// service: datasets are registered once, constraints compiled once, and
// detect/repair/discover are served over HTTP/JSON to any number of
// concurrent clients (see internal/server for the API).
//
// Usage:
//
//	semandaqd [-addr :8080] [-workers 0] [-shards 0] [-preload 0] [-index-budget-mb 0]
//
// -workers sizes the per-dataset detection worker pool (0 = NumCPU,
// 1 = serial). -shards sets the PLI build fan-out: cold partition
// builds run as TID-range-parallel counting sorts across this many
// shards (0 = GOMAXPROCS, 1 = serial; output is byte-identical either
// way). -preload N registers two built-in datasets at startup, which
// makes the quickstart in README.md work with curl alone: "cust", N
// noisy tuples with its planted CFDs plus the street-determination rule
// restated as a denial constraint, and "emp", N/10 tuples with planted
// pay inversions and the pay-scale DC (the demo target for POST
// /v1/dc/detect and /v1/dc/relax). -index-budget-mb caps each dataset's
// PLI cache (discovery lattices evict before detection partitions);
// 0 keeps every partition resident, and the default -1 derives a budget
// from the process memory ceiling: GOMEMLIMIT/4 when a limit is set,
// else MemTotal/8 from /proc/meminfo, else unlimited. -spill-dir turns
// budget evictions into tiered demotions: clean partitions are written
// as segment files under the directory and paged back in via read-only
// mmap instead of rebuilt (see the "Tiered storage" section of
// README.md); empty keeps the discard-on-evict behavior.
//
// Durability (see the "Durability" section of README.md):
//
//	semandaqd -data-dir /var/lib/semandaq [-wal-sync always] [-checkpoint-every 5m]
//
// -data-dir names the directory holding the write-ahead log and
// per-dataset snapshot files; every acked mutation is journaled there
// before the HTTP response goes out, and startup replays snapshots plus
// the WAL tail to recover exactly the acked state. While replay runs
// the daemon is listening but answers 503 — /healthz reports
// {"status":"recovering"} so probes can tell a recovering daemon from a
// dead one. -wal-sync picks the fsync policy: "always" (default; an
// acked write is on stable storage), "interval" (fsync coalesced to a
// short window; a crash can lose that window), "none" (leave flushing
// to the OS). -checkpoint-every snapshots every dataset and compacts
// the WAL on that period (0 = checkpoint only at graceful shutdown).
// Empty -data-dir keeps the daemon ephemeral. In cluster mode the
// coordinator journals registrations, constraint installs and appends
// (full rows — the log doubles as the worker re-feed source) and
// replays them through the fleet at startup; workers run their own
// -data-dir independently.
//
// Cluster mode (see the "Scatter-gather cluster" section of README.md):
//
//	semandaqd -worker -addr :8091          # worker owning a TID-range slice
//	semandaqd -cluster http://h1,http://h2 # coordinator fronting workers
//
// -worker only changes startup logging — every semandaqd mounts the
// /v1/shard/* protocol — but names the role for operators. -cluster
// takes a comma-separated worker URL list and serves the coordinator
// surface instead: registration range-partitions datasets across the
// fleet, detect/discover fan out and merge byte-identically to a
// single process, and appends route to the tail worker. -preload works
// in both modes (the coordinator registers through the fleet).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/engine"
	"semandaq/internal/noise"
	"semandaq/internal/server"
	"semandaq/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "detection worker pool size (0 = NumCPU, 1 = serial)")
	shards := flag.Int("shards", 0, "PLI build shard fan-out (0 = GOMAXPROCS, 1 = serial)")
	preload := flag.Int("preload", 0, "preload a noisy 'cust' dataset of this many tuples")
	indexBudgetMB := flag.Int64("index-budget-mb", -1, "per-dataset PLI cache budget in MiB (0 = unlimited, -1 = derive from GOMEMLIMIT or total memory)")
	spillDir := flag.String("spill-dir", "", "directory for tiered index storage: evicted partitions spill to segment files here instead of being discarded (empty = disabled)")
	workerMode := flag.Bool("worker", false, "run as a cluster worker owning a TID-range slice (logging only; the shard protocol is always mounted)")
	cluster := flag.String("cluster", "", "comma-separated worker base URLs; serve the scatter-gather coordinator surface instead of a local engine")
	dataDir := flag.String("data-dir", "", "durability directory for the write-ahead log and snapshots (empty = ephemeral, no durability)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always|interval|none")
	checkpointEvery := flag.Duration("checkpoint-every", 5*time.Minute, "periodic snapshot + WAL compaction interval when -data-dir is set (0 = only at graceful shutdown)")
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatalf("semandaqd: %v", err)
	}

	if *cluster != "" {
		if *workerMode {
			log.Fatal("semandaqd: -worker and -cluster are mutually exclusive")
		}
		runCoordinator(*addr, *cluster, *preload, *dataDir, syncPolicy)
		return
	}

	budget := *indexBudgetMB << 20
	if *indexBudgetMB < 0 {
		budget = deriveIndexBudget()
		if budget > 0 {
			log.Printf("index budget derived from memory ceiling: %d MiB per dataset (override with -index-budget-mb)", budget>>20)
		}
	}
	eng := engine.New(engine.Options{Workers: *workers, Shards: *shards, IndexBudgetBytes: budget, SpillDir: *spillDir})
	if *spillDir != "" {
		log.Printf("tiered index storage under %s", *spillDir)
	}

	handler := server.New(eng)
	srv := &http.Server{
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	role := "semandaqd"
	if *workerMode {
		role = "semandaqd worker"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before recovery: while WAL replay runs the daemon answers
	// 503 with /healthz naming the "recovering" phase, so probes see a
	// starting daemon rather than a dead port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("semandaqd: %v", err)
	}
	var mgr *wal.Manager
	if *dataDir != "" {
		handler.SetRecovering(true)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s", role, *addr)
		errCh <- srv.Serve(ln)
	}()

	if *dataDir != "" {
		start := time.Now()
		mgr, err = wal.OpenManager(*dataDir, syncPolicy)
		if err != nil {
			log.Fatalf("semandaqd: opening data dir: %v", err)
		}
		snaps, replayed, err := mgr.Recover(eng)
		if err != nil {
			log.Fatalf("semandaqd: recovery: %v", err)
		}
		// Attach the journal only after replay: a journaling replay
		// would re-log every record.
		eng.SetJournal(mgr)
		handler.SetRecovering(false)
		log.Printf("recovered %d snapshot(s) + %d WAL record(s) from %s in %s (wal-sync=%s)",
			snaps, replayed, *dataDir, fmtDuration(time.Since(start)), syncPolicy)
		if *checkpointEvery > 0 {
			go checkpointLoop(ctx, mgr, eng, *checkpointEvery)
		}
	}

	if *preload > 0 {
		// Skip datasets recovery already restored — the durable state,
		// not the generator, is authoritative across restarts.
		if _, ok := eng.Get("cust"); !ok {
			if err := preloadCust(eng, *preload); err != nil {
				log.Fatalf("semandaqd: preload: %v", err)
			}
			log.Printf("preloaded dataset %q with %d tuples and planted constraints", "cust", *preload)
		}
		if _, ok := eng.Get("emp"); !ok {
			if err := preloadEmp(eng, (*preload+9)/10); err != nil {
				log.Fatalf("semandaqd: preload emp: %v", err)
			}
			log.Printf("preloaded dataset %q with %d tuples and the pay-scale denial constraint", "emp", (*preload+9)/10)
		}
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("semandaqd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("%s: shutting down", role)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("semandaqd: shutdown: %v", err)
		}
		if mgr != nil {
			// A final checkpoint makes the next startup a pure
			// snapshot load with an empty tail.
			if err := mgr.Checkpoint(eng); err != nil {
				log.Printf("semandaqd: shutdown checkpoint: %v", err)
			}
			if err := mgr.Close(); err != nil {
				log.Printf("semandaqd: closing wal: %v", err)
			}
		}
		// Drop every dataset so per-dataset spill directories (MkdirTemp
		// under -spill-dir) are removed, not leaked across restarts.
		eng.Close()
	}
}

// checkpointLoop snapshots every dataset and compacts the WAL on a
// fixed period, bounding the tail replay a crash recovery pays.
func checkpointLoop(ctx context.Context, mgr *wal.Manager, src wal.CheckpointSource, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			start := time.Now()
			if err := mgr.Checkpoint(src); err != nil {
				log.Printf("semandaqd: checkpoint: %v", err)
				continue
			}
			log.Printf("checkpoint complete in %s (wal now %d bytes)",
				fmtDuration(time.Since(start)), mgr.LogSize())
		}
	}
}

// runCoordinator serves the cluster coordinator: the public API backed
// by the worker fleet at the given comma-separated base URLs. With a
// data dir the coordinator journals every registry mutation (full rows
// included) and replays the log through the fleet at startup, re-feeding
// workers that came back empty.
func runCoordinator(addr, workerList string, preload int, dataDir string, syncPolicy wal.SyncPolicy) {
	var clients []engine.ShardClient
	for _, u := range strings.Split(workerList, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		cl := server.NewShardClient(u, 5*time.Minute)
		// Idempotent fan-out calls (shard detect/groups/dc) retry with
		// jittered backoff; registration and appends stay at-most-once.
		cl.SetRetryPolicy(server.DefaultRetryPolicy())
		clients = append(clients, cl)
	}
	coord, err := engine.NewCoordinator(clients)
	if err != nil {
		log.Fatalf("semandaqd: %v", err)
	}

	handler := server.NewCoordinator(coord)
	srv := &http.Server{
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("semandaqd: %v", err)
	}
	var mgr *wal.Manager
	if dataDir != "" {
		handler.SetRecovering(true)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("semandaqd coordinator for %d workers listening on %s", len(clients), addr)
		errCh <- srv.Serve(ln)
	}()

	if dataDir != "" {
		start := time.Now()
		mgr, err = wal.OpenManager(dataDir, syncPolicy)
		if err != nil {
			log.Fatalf("semandaqd: opening data dir: %v", err)
		}
		// The coordinator never checkpoints — its log IS the registry —
		// so recovery is a pure replay that re-partitions and re-feeds
		// every dataset through the fleet.
		_, replayed, err := mgr.Recover(coord)
		if err != nil {
			log.Fatalf("semandaqd: cluster recovery: %v", err)
		}
		coord.SetJournal(mgr)
		handler.SetRecovering(false)
		log.Printf("re-fed %d WAL record(s) through %d workers from %s in %s",
			replayed, len(clients), dataDir, fmtDuration(time.Since(start)))
	}

	if preload > 0 {
		if _, ok := coord.Get("cust"); !ok {
			if err := preloadCluster(coord, preload); err != nil {
				log.Fatalf("semandaqd: preload: %v", err)
			}
			log.Printf("preloaded datasets %q and %q across %d workers", "cust", "emp", len(clients))
		}
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("semandaqd: %v", err)
		}
	case <-ctx.Done():
		log.Print("semandaqd coordinator: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("semandaqd: shutdown: %v", err)
		}
		if mgr != nil {
			if err := mgr.Close(); err != nil {
				log.Printf("semandaqd: closing wal: %v", err)
			}
		}
	}
}

// preloadCluster registers the same demo datasets as single-process
// preload, range-partitioned across the fleet via the coordinator.
func preloadCluster(coord *engine.Coordinator, n int) error {
	clean := datagen.Cust(n, 1)
	schema := clean.Schema()
	dirty, _ := noise.Dirty(clean, noise.Options{
		Rate:  0.05,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  2,
	})
	if _, err := coord.Register("cust", dirty); err != nil {
		return err
	}
	if _, err := coord.InstallConstraints("cust", datagen.CustConstraints().String()); err != nil {
		return err
	}
	if _, err := coord.InstallDCs("cust", "dc zipstr: !( t.CC = u.CC & t.ZIP = u.ZIP & t.STR != u.STR )"); err != nil {
		return err
	}
	nEmp := (n + 9) / 10
	violations := nEmp / 100
	if violations == 0 {
		violations = 1
	}
	if _, err := coord.Register("emp", datagen.Emp(nEmp, violations, 3)); err != nil {
		return err
	}
	_, err := coord.InstallDCs("emp", datagen.EmpDCText())
	return err
}

// deriveIndexBudget picks a default per-dataset index budget from the
// process memory ceiling when -index-budget-mb is left unset: a quarter
// of GOMEMLIMIT when the operator set one (the daemon still needs room
// for the relations themselves, request handling and GC headroom), else
// an eighth of the machine's MemTotal from /proc/meminfo, else 0
// (unlimited — no ceiling is knowable). The divisors are deliberately
// conservative: the budget is per dataset, and a fleet of registered
// datasets shares the same process.
func deriveIndexBudget() int64 {
	// SetMemoryLimit(-1) is the documented way to read the current limit
	// without changing it; math.MaxInt64 means "no limit set".
	if limit := debug.SetMemoryLimit(-1); limit > 0 && limit < math.MaxInt64 {
		return limit / 4
	}
	if total := readMemTotal("/proc/meminfo"); total > 0 {
		return total / 8
	}
	return 0
}

// readMemTotal parses the MemTotal line of a /proc/meminfo-format file,
// returning bytes (the kernel reports kB), or 0 if unavailable.
func readMemTotal(path string) int64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// preloadCust registers the benchmark workload: a noisy cust relation
// with the constraints datagen plants in it.
func preloadCust(eng *engine.Engine, n int) error {
	clean := datagen.Cust(n, 1)
	schema := clean.Schema()
	dirty, _ := noise.Dirty(clean, noise.Options{
		Rate:  0.05,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  2,
	})
	sess, err := eng.Register("cust", dirty)
	if err != nil {
		return err
	}
	if err := sess.SetConstraints(datagen.CustConstraints()); err != nil {
		return err
	}
	// The planted (CC, ZIP) → STR rule restated as a denial constraint:
	// same country and zip must not name different streets. Detecting it
	// reuses the {CC, ZIP} partition the CFD detector already cached.
	_, err = eng.InstallDCs("cust", "dc zipstr: !( t.CC = u.CC & t.ZIP = u.ZIP & t.STR != u.STR )")
	return err
}

// preloadEmp registers the denial-constraint demo workload: an emp
// relation with ~1% planted pay inversions and the pay-scale DC, so
// /v1/dc/detect finds violations and /v1/dc/relax has weakenings to
// rank right after startup.
func preloadEmp(eng *engine.Engine, n int) error {
	violations := n / 100
	if violations == 0 {
		violations = 1
	}
	if _, err := eng.Register("emp", datagen.Emp(n, violations, 3)); err != nil {
		return err
	}
	_, err := eng.InstallDCs("emp", datagen.EmpDCText())
	return err
}

// logRequests is a minimal access-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, fmtDuration(time.Since(start)))
	})
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
