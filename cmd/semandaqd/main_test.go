package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadMemTotal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meminfo")
	content := "MemTotal:       16384256 kB\nMemFree:         1234 kB\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := readMemTotal(path), int64(16384256)<<10; got != want {
		t.Fatalf("readMemTotal = %d, want %d", got, want)
	}
	if got := readMemTotal(filepath.Join(dir, "missing")); got != 0 {
		t.Fatalf("missing file: got %d, want 0", got)
	}
	if err := os.WriteFile(path, []byte("MemTotal: junk kB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readMemTotal(path); got != 0 {
		t.Fatalf("malformed line: got %d, want 0", got)
	}
}

func TestDeriveIndexBudgetNonNegative(t *testing.T) {
	// Whatever the environment (GOMEMLIMIT set or not, /proc readable or
	// not), the derived budget must be usable as-is: never negative, and
	// zero only when no ceiling is knowable.
	if b := deriveIndexBudget(); b < 0 {
		t.Fatalf("deriveIndexBudget = %d", b)
	}
}
