package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSpillDetect/unlimited/n=1000000-8  2  80697766 ns/op  28505592 B/op  27665 allocs/op  49.54 resident-MB")
	if !ok {
		t.Fatal("parseLine rejected a valid line")
	}
	if r.Name != "BenchmarkSpillDetect/unlimited/n=1000000" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 2 || r.NsPerOp != 80697766 || r.BytesPerOp != 28505592 || r.AllocsPerOp != 27665 {
		t.Fatalf("core fields: %+v", r)
	}
	if r.Extra["resident-MB"] != 49.54 {
		t.Fatalf("custom metric lost: %+v", r.Extra)
	}
	if _, ok := parseLine("not a benchmark"); ok {
		t.Fatal("parseLine accepted garbage")
	}
}
