// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout, so CI can archive benchmark
// results as machine-readable artifacts (see `make bench`, which emits
// BENCH_detect.json for the detection benchmarks E1/E13).
//
// Lines that are not benchmark results (the goos/pkg header, PASS/ok
// trailers) are recorded verbatim under "meta" when they carry context
// and skipped otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. resident-MB from
	// BenchmarkSpillDetect) keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	rep := Report{Meta: map[string]string{}, Results: []Result{}}
	// Host context the bench text omits, so archived BENCH_*.json files
	// from differently-shaped runners stay comparable. benchjson runs in
	// the same environment as the benchmark process it pipes from, so
	// its own runtime answers match.
	rep.Meta["goversion"] = runtime.Version()
	rep.Meta["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	rep.Meta["numcpu"] = strconv.Itoa(runtime.NumCPU())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "testing:"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Meta[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "benchmeta "):
			// Benchmarks report facts the result lines cannot carry —
			// notably peak RSS and final heap from the bench process's
			// TestMain (see bench_meta_test.go) — as `benchmeta <key>
			// <value>` lines.
			if kv := strings.Fields(line); len(kv) >= 3 {
				rep.Meta[kv[1]] = strings.Join(kv[2:], " ")
			}
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  100  123456 ns/op  789 B/op  12 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = fields[0]
	// The -N suffix is GOMAXPROCS; sub-benchmark names can contain
	// dashes, so only strip a trailing integer.
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = f
			}
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = n
			}
		default:
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = f
			}
		}
	}
	return r, true
}
