// Command experiments regenerates every experiment table of DESIGN.md
// (E1–E12), reproducing the evaluation suites of the systems the
// tutorial presents. Run all experiments, or a subset:
//
//	experiments            # everything at the default (paper-like) sizes
//	experiments -exp E2,E4 # selected experiments
//	experiments -quick     # reduced sizes for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semandaq/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced sizes for a fast run")
	flag.Parse()

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	type experiment struct {
		id string
		f  func() *experiments.Table
	}
	full := []experiment{
		{"E1", func() *experiments.Table {
			return experiments.E1DetectScale([]int{10_000, 25_000, 50_000, 100_000, 200_000, 300_000}, 0.05)
		}},
		{"E2", func() *experiments.Table {
			return experiments.E2TableauSize(50_000, []int{1, 2, 4, 8, 16, 32, 64})
		}},
		{"E3", func() *experiments.Table {
			return experiments.E3DetectNoise(100_000, []float64{0, 0.01, 0.02, 0.05, 0.08, 0.10})
		}},
		{"E4", func() *experiments.Table {
			return experiments.E4RepairQuality(10_000, []float64{0.01, 0.02, 0.05, 0.08, 0.10})
		}},
		{"E5", func() *experiments.Table {
			return experiments.E5RepairScale([]int{5_000, 10_000, 20_000, 40_000, 80_000}, 0.05)
		}},
		{"E6", func() *experiments.Table {
			return experiments.E6IncRepair(50_000, []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50})
		}},
		{"E7", func() *experiments.Table {
			return experiments.E7Discovery([]int{2_000, 5_000, 10_000, 20_000, 50_000}, []int{5, 10, 50, 100, 500}, 10_000)
		}},
		{"E8", func() *experiments.Table {
			return experiments.E8MatchQuality(5_000, []float64{0.2, 0.4, 0.6, 0.8})
		}},
		{"E9", func() *experiments.Table {
			return experiments.E9CINDDetect([]int{10_000, 50_000, 100_000, 200_000})
		}},
		{"E10", func() *experiments.Table {
			return experiments.E10Reasoning([]int{10, 50, 100, 200, 500})
		}},
		{"E11", func() *experiments.Table {
			return experiments.E11CQA([]int{10_000, 50_000, 100_000}, 0.05)
		}},
		{"E12", func() *experiments.Table {
			return experiments.E12EndToEnd(20_000, 0.03)
		}},
	}
	reduced := []experiment{
		{"E1", func() *experiments.Table {
			return experiments.E1DetectScale([]int{5_000, 10_000, 20_000}, 0.05)
		}},
		{"E2", func() *experiments.Table {
			return experiments.E2TableauSize(10_000, []int{1, 4, 16})
		}},
		{"E3", func() *experiments.Table {
			return experiments.E3DetectNoise(20_000, []float64{0, 0.05, 0.10})
		}},
		{"E4", func() *experiments.Table {
			return experiments.E4RepairQuality(3_000, []float64{0.02, 0.05})
		}},
		{"E5", func() *experiments.Table {
			return experiments.E5RepairScale([]int{2_000, 5_000, 10_000}, 0.05)
		}},
		{"E6", func() *experiments.Table {
			return experiments.E6IncRepair(10_000, []float64{0.01, 0.10, 0.50})
		}},
		{"E7", func() *experiments.Table {
			return experiments.E7Discovery([]int{2_000, 5_000}, []int{10, 100}, 2_000)
		}},
		{"E8", func() *experiments.Table {
			return experiments.E8MatchQuality(1_000, []float64{0.4, 0.8})
		}},
		{"E9", func() *experiments.Table {
			return experiments.E9CINDDetect([]int{10_000, 50_000})
		}},
		{"E10", func() *experiments.Table {
			return experiments.E10Reasoning([]int{10, 100})
		}},
		{"E11", func() *experiments.Table {
			return experiments.E11CQA([]int{10_000, 50_000}, 0.05)
		}},
		{"E12", func() *experiments.Table {
			return experiments.E12EndToEnd(5_000, 0.03)
		}},
	}

	suite := full
	if *quick {
		suite = reduced
	}
	start := time.Now()
	ran := 0
	for _, e := range suite {
		if !run(e.id) {
			continue
		}
		t0 := time.Now()
		table := e.f()
		fmt.Println(table)
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -exp; known IDs are E1..E12")
		os.Exit(2)
	}
	fmt.Printf("ran %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
