// Command discovery profiles a relation for CFDs: it generates customer
// data governed by planted rules, runs FD discovery, constant-CFD mining
// and variable-CFD discovery, and prints what comes back — showing that
// the planted geography (area code → city, zip → street inside the UK)
// is recoverable from the data alone.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
)

func main() {
	n := flag.Int("n", 3000, "number of tuples")
	support := flag.Int("support", 10, "minimum pattern support")
	maxLHS := flag.Int("maxlhs", 2, "maximum LHS attributes")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	r := datagen.Cust(*n, *seed)
	fmt.Printf("profiling %d customer tuples (support ≥ %d, |LHS| ≤ %d)\n\n",
		r.Len(), *support, *maxLHS)
	opts := discovery.Options{MinSupport: *support, MaxLHS: *maxLHS}

	start := time.Now()
	fds, err := discovery.FDs(r, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— %d minimal functional dependencies (%v):\n", len(fds), time.Since(start))
	for _, c := range fds {
		fmt.Println("  " + c.String())
	}

	start = time.Now()
	consts, err := discovery.ConstantCFDs(r, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— %d constant CFDs (%v), first 12:\n", len(consts), time.Since(start))
	for i, c := range consts {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(consts)-12)
			break
		}
		fmt.Println("  " + c.String())
	}

	start = time.Now()
	vars, err := discovery.VariableCFDs(r, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— %d variable CFDs (%v), first 12:\n", len(vars), time.Since(start))
	for i, c := range vars {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(vars)-12)
			break
		}
		fmt.Println("  " + c.String())
	}

	// Sanity: everything discovered must hold on the input.
	for _, c := range append(append(fds, consts...), vars...) {
		ok, err := c.Satisfies(r)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("BUG: discovered rule does not hold: %s", c)
		}
	}
	fmt.Println("\nall discovered rules verified to hold on the input ✓")
}
