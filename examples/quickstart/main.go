// Command quickstart walks through the tutorial's running example end to
// end: define the two CFDs of §3 over the customer relation, load a
// small dirty instance, detect violations (both natively and via the
// generated SQL of TODS 2008), repair, and print the result.
package main

import (
	"fmt"
	"log"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
	"semandaq/internal/semandaq"
)

func main() {
	schema, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		log.Fatal(err)
	}

	// The tutorial's two example CFDs:
	//   customer([cc = 44, zip] → [street])
	//   customer([cc = 01, ac = 908, phn] → [street, city = 'mh', zip])
	set, err := cfd.ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("constraints:")
	fmt.Println(set)
	fmt.Println()

	data := relation.New(schema)
	st := func(vals ...string) relation.Tuple {
		t := make(relation.Tuple, len(vals))
		for i, v := range vals {
			t[i] = relation.String(v)
		}
		return t
	}
	//                    CC    AC     PN         NM      STR            CT     ZIP
	data.MustInsert(st("44", "131", "1111111", "mike", "mayfield rd", "edi", "EH4 8LE"))
	data.MustInsert(st("44", "131", "2222222", "rick", "mayfeild rd", "edi", "EH4 8LE")) // typo in street
	data.MustInsert(st("44", "131", "3333333", "anna", "crichton st", "edi", "EH8 9LE"))
	data.MustInsert(st("01", "908", "4444444", "joe", "mtn ave", "nyc", "07974")) // wrong city for 908
	data.MustInsert(st("01", "908", "5555555", "ben", "high st", "mh", "07974"))

	fmt.Println("dirty data:")
	fmt.Print(data.Head(10))
	fmt.Println()

	p, err := semandaq.NewProject("quickstart", data, set)
	if err != nil {
		log.Fatal(err)
	}

	vs, err := p.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native detection: %d violations\n", len(vs))
	for _, v := range vs {
		fmt.Println("  " + v.String())
	}
	sqlTIDs, err := p.DetectSQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL-based detection flags tuples %v (must agree)\n\n", sqlTIDs)

	res, err := p.Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate repair: %d changes, cost %.3f, %d passes\n",
		len(res.Changes), res.Cost, res.Passes)
	fmt.Print(semandaq.FormatChanges(p.Data(), res.Changes, 0))
	if err := p.Accept(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepaired data:")
	fmt.Print(p.Data().Head(10))

	vs, err = p.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviolations after repair: %d\n", len(vs))
}
