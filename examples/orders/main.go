// Command orders demonstrates conditional inclusion dependencies on the
// tutorial's §3 book/CD scenario, exercising both detection paths (the
// native hash anti-join and the generated NOT EXISTS SQL on the bundled
// minidb engine) and showing the SQL round trip explicitly: ad-hoc
// queries, an UPDATE fixing a violation, and re-detection.
package main

import (
	"flag"
	"fmt"
	"log"

	"semandaq/internal/cind"
	"semandaq/internal/datagen"
	"semandaq/internal/sqlgen"
)

func main() {
	nCD := flag.Int("cds", 5000, "number of CD order tuples")
	nBook := flag.Int("books", 2500, "number of book order tuples")
	violations := flag.Int("violations", 5, "planted CIND violations")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	psi := datagen.OrdersCIND()
	fmt.Println("constraint:")
	fmt.Println("  " + psi.String())

	cdRel, bookRel, planted := datagen.Orders(*nCD, *nBook, *violations, *seed)
	fmt.Printf("\nworkload: %d CD orders, %d book orders, %d planted violations\n",
		cdRel.Len(), bookRel.Len(), len(planted))

	native, err := cind.Detect(cdRel, bookRel, psi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnative anti-join detection: %d violations\n", len(native))
	for i, v := range native {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(native)-5)
			break
		}
		t := cdRel.Tuple(v.TID)
		fmt.Printf("  CD order %d (%s, %s) has no audio-book witness\n", v.TID, t[0], t[1])
	}

	rn := sqlgen.NewRunner()
	if _, err := rn.Load("CD", cdRel); err != nil {
		log.Fatal(err)
	}
	if _, err := rn.Load("book", bookRel); err != nil {
		log.Fatal(err)
	}
	g, err := sqlgen.ForCIND(psi, "CD", "book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated SQL:")
	fmt.Println("  " + g.Q)
	sqlTIDs, err := rn.DetectCIND(psi, "CD", "book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL detection flags %d tuples (must equal native: %v)\n",
		len(sqlTIDs), len(sqlTIDs) == len(native))

	// Fix one violation through plain SQL: register the missing album as
	// an audio book, then re-detect.
	if len(native) > 0 {
		bad := cdRel.Tuple(native[0].TID)
		// The loaded table carries the synthetic _tid column as its first
		// attribute, so the INSERT supplies one.
		fix := fmt.Sprintf("INSERT INTO book VALUES (%d, '%s', '%s', 'audio')",
			bookRel.Len(), bad[0].Str(), bad[1].Str())
		fmt.Println("\nrepairing the first violation via SQL:")
		fmt.Println("  " + fix)
		if _, err := rn.DB.Exec(fix); err != nil {
			log.Fatal(err)
		}
		// The runner's loaded copy of book (with _tid) is what the query
		// sees; the native detector needs the original relation updated
		// too, so re-run only the SQL side here.
		after, err := rn.DetectCIND(psi, "CD", "book")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("violations after fix: %d (was %d)\n", len(after), len(sqlTIDs))
	}

	// Ad-hoc analytics on the same engine.
	top, err := rn.DB.Query("SELECT genre, COUNT(*) AS n FROM CD GROUP BY genre ORDER BY n DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCD orders by genre:")
	fmt.Print(top.Head(5))
}
