// Command matching reproduces the tutorial's §4 object-identification
// scenario: card/billing relations, the three matching rules (a)-(c),
// deduction of relative candidate keys, and a comparison of the
// RCK-based matcher against exact key equality on perturbed duplicates.
package main

import (
	"flag"
	"fmt"
	"log"

	"semandaq/internal/datagen"
	"semandaq/internal/matching"
)

func main() {
	persons := flag.Int("persons", 2000, "number of card holders")
	perturb := flag.Float64("perturb", 0.6, "probability a duplicate field is distorted")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cardS := datagen.CardSchema()
	billingS := datagen.BillingSchema()

	pair := func(name string, cmp matching.Comparator) matching.AttrPair {
		return matching.AttrPair{
			Left:  cardS.MustIndex(name),
			Right: billingS.MustIndex(name),
			Cmp:   cmp,
		}
	}
	y := []matching.AttrPair{
		pair("fn", matching.Eq()), pair("ln", matching.Eq()),
		pair("addr", matching.Eq()), pair("phn", matching.Eq()),
		pair("email", matching.Eq()),
	}

	// The three matching rules of §4.
	mdA, err := matching.NewMD("a", cardS, billingS,
		[]matching.AttrPair{pair("phn", matching.Eq())},
		[]matching.AttrPair{pair("addr", matching.Eq())})
	if err != nil {
		log.Fatal(err)
	}
	mdB, err := matching.NewMD("b", cardS, billingS,
		[]matching.AttrPair{pair("email", matching.Eq())},
		[]matching.AttrPair{pair("fn", matching.Eq()), pair("ln", matching.Eq())})
	if err != nil {
		log.Fatal(err)
	}
	mdC, err := matching.NewMD("c", cardS, billingS,
		[]matching.AttrPair{
			pair("ln", matching.Eq()),
			pair("addr", matching.Eq()),
			pair("fn", matching.MustApprox("jarowinkler", 0.85)),
		}, y)
	if err != nil {
		log.Fatal(err)
	}
	rules := []*matching.MD{mdA, mdB, mdC}
	fmt.Println("matching rules:")
	for _, m := range rules {
		fmt.Println("  " + m.String())
	}

	keys, err := matching.DeduceRCKs(rules, y, matching.DeduceOptions{MaxPairs: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived %d relative candidate keys:\n", len(keys))
	for _, k := range keys {
		fmt.Println("  " + k.String())
	}

	card, billing, truth := datagen.CardBilling(datagen.CardBillingOptions{
		Persons: *persons, DupRate: 0.5, Perturb: *perturb, Seed: *seed,
	})
	fmt.Printf("\nworkload: %d cards, %d billing rows, %d true matches, perturbation %.0f%%\n",
		card.Len(), billing.Len(), len(truth), *perturb*100)

	rckMatcher, err := matching.NewMatcher(cardS, billingS, keys)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := rckMatcher.Run(card, billing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRCK matcher:        %s\n", matching.Evaluate(matches, truth))

	exactKey, err := matching.NewRCK("exactY", cardS, billingS, y)
	if err != nil {
		log.Fatal(err)
	}
	exactMatcher, err := matching.NewMatcher(cardS, billingS, []*matching.RCK{exactKey})
	if err != nil {
		log.Fatal(err)
	}
	exactMatches, err := exactMatcher.Run(card, billing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact-Y baseline:   %s\n", matching.Evaluate(exactMatches, truth))
}
