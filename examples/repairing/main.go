// Command repairing demonstrates the measured repair pipeline of Cong et
// al. (VLDB 2007) on a synthetic customer workload: generate clean data
// governed by planted CFDs, inject noise at a configurable rate, run
// BatchRepair, and score the repair against the ground truth — then show
// the user-feedback loop (confirming a cell and re-repairing) and the
// incremental path for appended tuples.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/semandaq"
)

func main() {
	n := flag.Int("n", 5000, "number of tuples")
	rate := flag.Float64("rate", 0.05, "noise rate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	clean := datagen.Cust(*n, *seed)
	set := datagen.CustConstraints()
	schema := clean.Schema()
	str, ct := schema.MustIndex("STR"), schema.MustIndex("CT")

	dirty, truth := noise.Dirty(clean, noise.Options{
		Rate:  *rate,
		Attrs: []int{str, ct},
		Seed:  *seed + 1,
	})
	fmt.Printf("generated %d tuples, dirtied %d cells (rate %.1f%%)\n",
		*n, truth.Len(), *rate*100)

	p, err := semandaq.NewProject("repairing", dirty, set)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := p.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d violations\n", len(vs))

	start := time.Now()
	res, err := p.Repair()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := repair.Verify(res, set); err != nil {
		log.Fatal(err)
	}
	q := noise.Score(res.Changes, truth)
	fmt.Printf("BatchRepair: %d changes in %v (%d passes)\n", len(res.Changes), elapsed, res.Passes)
	fmt.Printf("quality vs ground truth: P=%.3f R=%.3f F1=%.3f\n", q.Precision, q.Recall, q.F1)
	if err := p.Accept(); err != nil {
		log.Fatal(err)
	}

	// Incremental path: append a new tuple that conflicts with its zip
	// group; IncRepair fixes only the newcomer.
	wrong := p.Data().Tuple(0).Clone()
	wrong[schema.MustIndex("PN")] = relation.String("fresh-pn")
	wrong[str] = relation.String("NO SUCH STREET")
	start = time.Now()
	incRes, err := p.Append([]relation.Tuple{wrong})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IncRepair of 1 appended tuple: %d changes in %v\n",
		len(incRes.Changes), time.Since(start))

	sum, err := p.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sum)
}
