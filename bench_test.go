// Package repro's root benchmarks wrap the measured kernel of every
// experiment in DESIGN.md (E1–E12) as a testing.B benchmark, one per
// table/figure. The experiment harness (cmd/experiments) prints the full
// parameter sweeps; these benchmarks pin one representative configuration
// each so `go test -bench=.` regenerates a comparable row and allocation
// profile.
package main

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
	"semandaq/internal/cqa"
	"semandaq/internal/datagen"
	"semandaq/internal/dc"
	"semandaq/internal/discovery"
	"semandaq/internal/engine"
	"semandaq/internal/experiments"
	"semandaq/internal/matching"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/semandaq"
	"semandaq/internal/sqlgen"
)

// dirtyCust mirrors the workload builder of the experiment harness.
func dirtyCust(n int, rate float64, seed int64) (*relation.Relation, *noise.Truth) {
	clean := datagen.Cust(n, seed)
	schema := clean.Schema()
	return noise.Dirty(clean, noise.Options{
		Rate:  rate,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  seed + 1,
	})
}

// BenchmarkE1DetectScaleTuples measures native CFD violation detection
// (E1: detection time vs #tuples). Sub-benchmarks sweep the size.
func BenchmarkE1DetectScaleTuples(b *testing.B) {
	set := datagen.CustConstraints()
	for _, n := range []int{10_000, 50_000, 100_000} {
		dirty, _ := dirtyCust(n, 0.05, 11)
		b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfd.NewDetector(set).Detect(dirty); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	dirty, _ := dirtyCust(50_000, 0.05, 11)
	b.Run("sql/n=50000", func(b *testing.B) {
		rn := sqlgen.NewRunner()
		if _, err := rn.Load("cust", dirty); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rn.DetectSet(set, "cust"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2DetectTableauSize measures SQL detection against tableau
// size: the merged plan vs the naive per-row plan (E2).
func BenchmarkE2DetectTableauSize(b *testing.B) {
	dirty, _ := dirtyCust(20_000, 0.05, 13)
	for _, rows := range []int{1, 16, 64} {
		set := datagen.CustTableau(rows)
		rn := sqlgen.NewRunner()
		if _, err := rn.Load("cust", dirty); err != nil {
			b.Fatal(err)
		}
		gens, err := rn.InstallCFD(set.CFD(0), "cust")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("merged/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rn.DetectCFD(gens[0], "cust"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("perrow/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rn.DetectCFDPerRow(gens[0], "cust"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3DetectNoise measures detection across noise rates (E3).
func BenchmarkE3DetectNoise(b *testing.B) {
	set := datagen.CustConstraints()
	for _, rate := range []float64{0, 0.05, 0.10} {
		dirty, _ := dirtyCust(50_000, rate, 17)
		b.Run(fmt.Sprintf("rate=%.0f%%", rate*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfd.NewDetector(set).Detect(dirty); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4RepairQuality measures BatchRepair including its quality
// scoring (E4). The benchmark reports correctness metrics once.
func BenchmarkE4RepairQuality(b *testing.B) {
	set := datagen.CustConstraints()
	dirty, truth := dirtyCust(5_000, 0.05, 19)
	var quality noise.Quality
	b.Run("n=5000/rate=5%", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := repair.Batch(dirty, set, repair.Options{})
			if err != nil {
				b.Fatal(err)
			}
			quality = noise.Score(res.Changes, truth)
		}
	})
	if quality.Recall < 0.5 {
		b.Fatalf("repair recall degraded: %+v", quality)
	}
}

// BenchmarkE5RepairScale measures BatchRepair across sizes (E5).
func BenchmarkE5RepairScale(b *testing.B) {
	set := datagen.CustConstraints()
	for _, n := range []int{5_000, 20_000} {
		dirty, _ := dirtyCust(n, 0.05, 23)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Batch(dirty, set, repair.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6IncRepair compares IncRepair on a small delta against
// BatchRepair on the combined relation (E6).
func BenchmarkE6IncRepair(b *testing.B) {
	set := datagen.CustConstraints()
	base := datagen.Cust(20_000, 29)
	schema := base.Schema()
	deltaClean := datagen.Cust(200, 31)
	deltaDirty, _ := noise.Dirty(deltaClean, noise.Options{
		Rate:  0.3,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  37,
	})
	delta := make([]relation.Tuple, deltaDirty.Len())
	for i := range delta {
		delta[i] = deltaDirty.Tuple(i).Clone()
	}
	b.Run("inc/delta=1%", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.AppendAndRepair(base, delta, set, repair.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	combined := base.Clone()
	for _, tup := range delta {
		combined.MustInsert(tup.Clone())
	}
	b.Run("batch/delta=1%", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.Batch(combined, set, repair.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Discovery measures full CFD discovery (E7).
func BenchmarkE7Discovery(b *testing.B) {
	for _, n := range []int{2_000, 10_000} {
		r := datagen.Cust(n, 41)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := discovery.Discover(r, discovery.Options{MinSupport: 10, MaxLHS: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8MatchQuality measures the derived-RCK matcher (E8) and
// asserts the quality headline (RCK recall beats exact matching).
func BenchmarkE8MatchQuality(b *testing.B) {
	_, y, keys, err := experiments.MatchingSetup()
	if err != nil {
		b.Fatal(err)
	}
	cardS, billingS := datagen.CardSchema(), datagen.BillingSchema()
	card, billing, truth := datagen.CardBilling(datagen.CardBillingOptions{
		Persons: 2_000, DupRate: 0.5, Perturb: 0.6, Seed: 47,
	})
	m, err := matching.NewMatcher(cardS, billingS, keys)
	if err != nil {
		b.Fatal(err)
	}
	var rckQ matching.Quality
	b.Run("rck/persons=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matches, err := m.Run(card, billing)
			if err != nil {
				b.Fatal(err)
			}
			rckQ = matching.Evaluate(matches, truth)
		}
	})
	exactKey, err := matching.NewRCK("exactY", cardS, billingS, y)
	if err != nil {
		b.Fatal(err)
	}
	exact, err := matching.NewMatcher(cardS, billingS, []*matching.RCK{exactKey})
	if err != nil {
		b.Fatal(err)
	}
	var exactQ matching.Quality
	b.Run("exact/persons=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matches, err := exact.Run(card, billing)
			if err != nil {
				b.Fatal(err)
			}
			exactQ = matching.Evaluate(matches, truth)
		}
	})
	if rckQ.Recall <= exactQ.Recall {
		b.Fatalf("RCK recall %.3f should beat exact %.3f", rckQ.Recall, exactQ.Recall)
	}
}

// BenchmarkE9CINDDetect measures CIND detection, native vs SQL (E9).
func BenchmarkE9CINDDetect(b *testing.B) {
	psi := datagen.OrdersCIND()
	cdRel, bookRel, _ := datagen.Orders(50_000, 25_000, 500, 53)
	b.Run("native/cd=50000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cind.Detect(cdRel, bookRel, psi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sql/cd=50000", func(b *testing.B) {
		rn := sqlgen.NewRunner()
		if _, err := rn.Load("CD", cdRel); err != nil {
			b.Fatal(err)
		}
		if _, err := rn.Load("book", bookRel); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rn.DetectCIND(psi, "CD", "book"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Reasoning measures satisfiability and implication checks
// (E10).
func BenchmarkE10Reasoning(b *testing.B) {
	for _, rows := range []int{10, 100} {
		set := datagen.CustTableau(rows)
		for _, c := range datagen.CustConstraints().All() {
			set.MustAdd(c)
		}
		phi := cfd.MustParse("cust([CC='44', AC='131'] -> [CT='edi'])", set.Schema())
		b.Run(fmt.Sprintf("satisfiable/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ok, _ := cfd.Satisfiable(set); !ok {
					b.Fatal("must be satisfiable")
				}
			}
		})
		b.Run(fmt.Sprintf("implies/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := cfd.Implies(set, phi)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("must be implied")
				}
			}
		})
	}
}

// BenchmarkE11CQA measures certain-answer evaluation against direct
// evaluation (E11).
func BenchmarkE11CQA(b *testing.B) {
	r := datagen.Cust(50_000, 59)
	schema := r.Schema()
	dirty := r.Clone()
	for i := 0; i < 2_500; i++ {
		t0 := r.Tuple(i % r.Len()).Clone()
		t0[schema.MustIndex("CT")] = relation.String("conflict-city")
		dirty.MustInsert(t0)
	}
	key := []int{schema.MustIndex("PN")}
	ccIdx, ctIdx := schema.MustIndex("CC"), schema.MustIndex("CT")
	q := cqa.Query{
		Pred:    func(tp relation.Tuple) bool { return tp[ccIdx].Equal(relation.String("44")) },
		Project: []int{ctIdx},
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cqa.Direct(dirty, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("certain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cqa.Certain(dirty, key, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12EndToEnd measures the full Semandaq loop: detect, repair,
// accept (E12).
func BenchmarkE12EndToEnd(b *testing.B) {
	set := datagen.CustConstraints()
	dirty, _ := dirtyCust(10_000, 0.03, 61)
	b.Run("n=10000/rate=3%", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := semandaq.NewProject("bench", dirty, set)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Detect(); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Repair(); err != nil {
				b.Fatal(err)
			}
			if err := p.Accept(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13ParallelDetect compares the serial detector against the
// worker-pool detector that backs the semandaqd service, on the 10k
// benchmark dataset. The outputs are asserted byte-identical — the
// parallel detector's contract is "same violations, same order, less
// wall-clock".
func BenchmarkE13ParallelDetect(b *testing.B) {
	set := datagen.CustConstraints()
	dirty, _ := dirtyCust(10_000, 0.05, 79)
	d := cfd.NewDetector(set)
	serial, err := d.Detect(dirty)
	if err != nil {
		b.Fatal(err)
	}
	parallel, err := d.DetectParallel(dirty, 0)
	if err != nil {
		b.Fatal(err)
	}
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		b.Fatal("parallel violation set diverges from serial")
	}
	b.Run("serial/n=10000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Detect(dirty); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel/n=10000/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.DetectParallel(dirty, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiscoveryFDs measures the TANE-style FD lattice walk alone —
// the hot loop of profiling — on clean E1-style customer data. This is
// the perf gate for the partition-intersection PLI walk: level-k
// partitions are refined from level-(k-1) ones instead of being rebuilt
// from scratch per lattice node.
func BenchmarkDiscoveryFDs(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		r := datagen.Cust(n, 83)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := discovery.FDs(r, discovery.Options{MaxLHS: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiscoveryWarmSession measures repeated full discovery through
// an engine session — the service steady state, where the per-dataset
// PLI cache should turn every lattice partition into a lookup.
func BenchmarkDiscoveryWarmSession(b *testing.B) {
	r := datagen.Cust(20_000, 89)
	s, err := engine.NewSession("bench", r, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := discovery.Options{MinSupport: 10, MaxLHS: 2}
	if _, err := s.Discover(opts, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Discover(opts, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendDetect measures the service's streaming steady state:
// append a small delta to a warm 100k-tuple session, incrementally
// repair it, and re-detect. The incremental path appends into the
// session relation and absorbs the delta into the cached PLIs
// (PLI.Advance — zero rebuilds, asserted by the engine tests); the
// rebuild baseline reproduces the pre-advance architecture, where every
// append cloned the base into a fresh combined relation and every
// partition was counting-sorted from scratch on the next detect. This
// is the perf gate for incremental PLI maintenance (BENCH_append.json).
func BenchmarkAppendDetect(b *testing.B) {
	const n, deltaSize = 100_000, 100
	set := datagen.CustConstraints()
	base := datagen.Cust(n, 97)
	// Deltas are clones of base rows: consistent by construction, so
	// both paths measure pure append+detect mechanics, not repair work.
	mkDelta := func(i int) []relation.Tuple {
		out := make([]relation.Tuple, deltaSize)
		for j := range out {
			out[j] = base.Tuple((i*deltaSize + j*31) % base.Len()).Clone()
		}
		return out
	}
	b.Run(fmt.Sprintf("incremental/n=%d/delta=%d", n, deltaSize), func(b *testing.B) {
		s, err := engine.NewSession("bench-append", base, set, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Detect(); err != nil {
			b.Fatal(err)
		}
		warm := s.IndexStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(mkDelta(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Detect(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		after := s.IndexStats()
		if after.Misses != warm.Misses || after.Refines != warm.Refines {
			b.Fatalf("incremental path rebuilt partitions: %+v -> %+v", warm, after)
		}
	})
	b.Run(fmt.Sprintf("rebuild/n=%d/delta=%d", n, deltaSize), func(b *testing.B) {
		cur := base.Clone()
		d := cfd.NewDetector(set)
		if _, err := d.Detect(cur); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := repair.AppendAndRepair(cur, mkDelta(i), set, repair.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cur = res.Repaired
			if _, err := d.Detect(cur); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepairPatch measures the DIRTY streaming steady state:
// append a small corrupted delta to a warm 100k-tuple session, let the
// incremental repair fix the delta cells, and re-detect. The constraint
// set is deliberately chained — psi1 repairs CT from the (CC, AC)
// region tableau while psi2 keys a detection partition on (CT, ZIP) —
// so every repair write lands in the patch journal of a column a cached
// partition depends on. The incremental path drains those journals into
// the cached PLIs per cell (PLI.Patch — zero rebuilds, asserted below
// via CacheStats); the rebuild baseline reproduces the pre-patch
// architecture, where any Set hard-invalidated its column and the next
// detect counting-sorted the affected partitions from scratch. This is
// the perf gate for per-cell PLI patching (BENCH_repair.json).
func BenchmarkRepairPatch(b *testing.B) {
	const n, deltaSize = 100_000, 100
	schema := datagen.CustSchema()
	set, err := cfd.ParseSet(`
cfd psi1: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('44', '141' || 'gla'), ('44', '20' || 'ldn'), ('01', '908' || 'mh'), ('01', '212' || 'nyc'), ('01', '650' || 'mtv') }
cfd psi2: cust([CT, ZIP] -> [STR])
`, schema)
	if err != nil {
		b.Fatal(err)
	}
	base := datagen.Cust(n, 103)
	ct := schema.MustIndex("CT")
	// Deltas are clones of base rows with every third CT corrupted: the
	// repair re-derives the city from psi1's tableau, and each fix is a
	// per-cell patch into psi2's cached (CT, ZIP) partition.
	mkDelta := func(i int) []relation.Tuple {
		out := make([]relation.Tuple, deltaSize)
		for j := range out {
			out[j] = base.Tuple((i*deltaSize + j*37) % base.Len()).Clone()
			if j%3 == 0 {
				out[j][ct] = relation.String("zzz-corrupt")
			}
		}
		return out
	}
	b.Run(fmt.Sprintf("incremental/n=%d/delta=%d", n, deltaSize), func(b *testing.B) {
		s, err := engine.NewSession("bench-repair", base, set, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Detect(); err != nil {
			b.Fatal(err)
		}
		warm := s.IndexStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(mkDelta(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Detect(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		after := s.IndexStats()
		if after.Misses != warm.Misses || after.Refines != warm.Refines {
			b.Fatalf("incremental path rebuilt partitions: %+v -> %+v", warm, after)
		}
		if after.Patches == warm.Patches {
			b.Fatalf("incremental path drained no patches: %+v -> %+v", warm, after)
		}
	})
	b.Run(fmt.Sprintf("rebuild/n=%d/delta=%d", n, deltaSize), func(b *testing.B) {
		cur := base.Clone()
		d := cfd.NewDetector(set)
		if _, err := d.Detect(cur); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := repair.AppendAndRepair(cur, mkDelta(i), set, repair.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cur = res.Repaired
			if _, err := d.Detect(cur); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedBuild measures cold partition-index construction,
// serial vs TID-range-sharded (relation.BuildPLISharded): the
// first-touch latency of a freshly registered dataset, which the
// sharded counting sort spreads across cores. Three kernels per size:
// the raw 3-attribute PLI build (phi2's LHS — the widest detection
// partition), a cold E1 detect through a sharded detector cache, and a
// cold discovery.FDs lattice walk on a sharded private cache (serial
// lattice walk, so the sharding effect is isolated from the level
// parallelism measured elsewhere). Outputs land in BENCH_build.json;
// shards=1 is the unchanged pre-sharding serial path.
func BenchmarkShardedBuild(b *testing.B) {
	set := datagen.CustConstraints()
	for _, n := range []int{50_000, 100_000} {
		dirty, _ := dirtyCust(n, 0.05, 101)
		schema := dirty.Schema()
		attrs := []int{schema.MustIndex("CC"), schema.MustIndex("AC"), schema.MustIndex("PN")}
		// Warm every column's code-rank cache (it lives on the relation
		// and would otherwise be paid by whichever sub-benchmark runs
		// first), so serial and sharded measure the same counting-sort
		// work.
		if _, err := discovery.FDs(dirty, discovery.Options{MaxLHS: 2}); err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 4, runtime.NumCPU()} {
			name := fmt.Sprintf("shards=%d/n=%d", shards, n)
			b.Run("build/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if p := relation.BuildPLISharded(dirty, attrs, shards); p.NumGroups() == 0 {
						b.Fatal("empty partition")
					}
				}
			})
			b.Run("detect/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cache := relation.NewIndexCache()
					cache.SetShards(shards)
					if _, err := cfd.NewDetectorWithCache(set, cache).Detect(dirty); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("fds/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := discovery.FDs(dirty, discovery.Options{MaxLHS: 2, Shards: shards}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationGroupedVsNaive quantifies the grouped detection
// algorithm against the textbook quadratic detector on identical data:
// the reason DetectOne partitions by X instead of comparing tuple pairs.
func BenchmarkAblationGroupedVsNaive(b *testing.B) {
	dirty, _ := dirtyCust(2_000, 0.05, 67)
	c := datagen.CustConstraints().CFD(0) // phi1: ([CC='44', ZIP] -> [STR])
	b.Run("grouped/n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfd.DetectOne(dirty, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive/n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfd.DetectNaive(dirty, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRepairValueSelection compares the exact weighted
// medoid value choice against the cheap weighted-mode approximation for
// equivalence classes (Options.ExactValueSelection).
func BenchmarkAblationRepairValueSelection(b *testing.B) {
	set := datagen.CustConstraints()
	dirty, truth := dirtyCust(10_000, 0.05, 71)
	for _, spec := range []struct {
		name  string
		exact int
	}{
		{"medoid", 1 << 20}, // always exact
		{"mode", 1},         // always weighted mode
	} {
		var q noise.Quality
		b.Run(spec.name+"/n=10000", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := repair.Batch(dirty, set, repair.Options{ExactValueSelection: spec.exact})
				if err != nil {
					b.Fatal(err)
				}
				q = noise.Score(res.Changes, truth)
			}
		})
		if q.Recall < 0.5 {
			b.Fatalf("%s: recall collapsed: %+v", spec.name, q)
		}
	}
}

// BenchmarkAblationExistsDecorrelation measures the EXISTS hash
// decorrelation in minidb against the per-row fallback, using the CIND
// detection query (equality correlation, decorrelatable) vs a non-equi
// variant that forces per-outer-row re-execution.
func BenchmarkAblationExistsDecorrelation(b *testing.B) {
	cdRel, bookRel, _ := datagen.Orders(5_000, 2_500, 50, 73)
	rn := sqlgen.NewRunner()
	if _, err := rn.Load("CD", cdRel); err != nil {
		b.Fatal(err)
	}
	if _, err := rn.Load("book", bookRel); err != nil {
		b.Fatal(err)
	}
	decorrelated := "SELECT t._tid AS tid FROM CD t WHERE t.genre = 'a-book' AND NOT EXISTS (SELECT s.title FROM book s WHERE s.title = t.album AND s.price = t.price AND s.format = 'audio')"
	// The <= correlation cannot decorrelate: falls back to per-row.
	fallback := "SELECT t._tid AS tid FROM CD t WHERE t.genre = 'a-book' AND NOT EXISTS (SELECT s.title FROM book s WHERE s.title = t.album AND s.price <= t.price AND s.format = 'audio')"
	b.Run("hash-decorrelated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rn.DB.Query(decorrelated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perrow-fallback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rn.DB.Query(fallback); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDCDetect measures denial-constraint detection of the
// pay-scale DC (dept equality + two order predicates) on emp relations
// with 0.1% planted pay inversions: the PLI-partitioned dominance
// sweep against the all-pairs naive reference. The sweep variant runs
// against a warm session-style index cache, matching the service
// steady state; outputs are asserted byte-identical before timing.
func BenchmarkDCDetect(b *testing.B) {
	d, err := dc.Parse(datagen.EmpDCText(), datagen.EmpSchema())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10_000, 50_000} {
		data := datagen.Emp(n, n/1000, 7)
		cache := relation.NewIndexCache()
		want := dc.Detect(data, d, dc.Options{Cache: cache})
		if len(want) == 0 {
			b.Fatalf("n=%d: planted violations not detected", n)
		}
		if naive := dc.DetectNaive(data, d); !reflect.DeepEqual(naive, want) {
			b.Fatalf("n=%d: sweep and naive disagree (%d vs %d violations)", n, len(want), len(naive))
		}
		b.Run(fmt.Sprintf("sweep/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := dc.Detect(data, d, dc.Options{Cache: cache}); len(got) != len(want) {
					b.Fatalf("violations = %d, want %d", len(got), len(want))
				}
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := dc.DetectNaive(data, d); len(got) != len(want) {
					b.Fatalf("violations = %d, want %d", len(got), len(want))
				}
			}
		})
	}
}

// BenchmarkDCRelax measures relaxation-repair proposal generation for
// a violated salary-cap DC, including the re-detection that verifies
// each candidate weakening leaves the data consistent. (A constant
// threshold is used because it exercises the tighten-op and
// shift-const paths; a DC whose order predicates are all strict and
// cross-tuple, like the pay-scale one, can only be dropped.)
func BenchmarkDCRelax(b *testing.B) {
	d, err := dc.Parse("dc cap: !( t.SAL >= 8000 )", datagen.EmpSchema())
	if err != nil {
		b.Fatal(err)
	}
	data := datagen.Emp(10_000, 10, 7)
	cache := relation.NewIndexCache()
	vios := dc.Detect(data, d, dc.Options{Cache: cache})
	if len(vios) == 0 {
		b.Fatal("planted violations not detected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if weaks := dc.Relax(data, d, vios, dc.Options{Cache: cache}); len(weaks) == 0 {
			b.Fatal("no weakenings proposed")
		}
	}
}
