// TestMain for the root benchmark package: after the benchmarks run it
// prints the process's memory high-water marks as `benchmeta` lines,
// which cmd/benchjson folds into the meta block of every BENCH_*.json.
// Peak RSS is what the tiered-storage work actually optimizes — ns/op
// alone cannot show that a budgeted run held a fraction of the resident
// set — and recording it for every benchmark keeps the archived JSON
// comparable across runs and runners.
package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	code := m.Run()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("benchmeta heap_alloc_bytes %d\n", ms.HeapAlloc)
	if hwm := vmHWMBytes(); hwm > 0 {
		fmt.Printf("benchmeta peak_rss_bytes %d\n", hwm)
	}
	os.Exit(code)
}

// vmHWMBytes returns the process's peak resident set size in bytes from
// /proc/self/status (VmHWM), or 0 where /proc is unavailable.
func vmHWMBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		var kb int64
		if _, err := fmt.Sscanf(line, "VmHWM: %d kB", &kb); err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
