GO ?= go
# bench pipes go test through benchjson; pipefail keeps a failing
# benchmark from exiting green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec
# BENCHTIME=1x is the smoke setting (CI); use e.g. BENCHTIME=2s for
# real measurements.
BENCHTIME ?= 1x

.PHONY: all check fmt vet build test race race-cache bench bench-detect bench-discovery bench-append bench-build bench-all run-daemon

all: check

# check is the CI gate: formatting, vet, build, and the race-enabled
# test suite (the engine/server concurrency tests rely on -race).
check: fmt vet build race race-cache

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-cache re-runs the packages that share PLI caches across
# goroutines (discovery through engine sessions, concurrent detection,
# append-time PLI advancement through incremental repair, and the
# TID-range-sharded builds racing appends in
# TestShardedCacheConcurrentBuildAppend) with a higher count, so
# cache-sharing races surface on every push.
race-cache:
	$(GO) test -race -count=2 ./internal/relation/ ./internal/discovery/ ./internal/engine/ ./internal/repair/

# bench runs the perf-trajectory benchmarks CI archives on every run:
# detection (E1 scale sweep, E13 parallel detector) into
# BENCH_detect.json, the discovery lattice walk (cold FDs, warm
# session) into BENCH_discovery.json, the streaming append→detect
# path (incremental PLI advance vs invalidate-and-rebuild) into
# BENCH_append.json, and cold sharded index construction (serial vs
# TID-range-parallel counting sorts) into BENCH_build.json.
bench: bench-detect bench-discovery bench-append bench-build

bench-detect:
	$(GO) test -bench='E1DetectScaleTuples|E13ParallelDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_detect.json

bench-discovery:
	$(GO) test -bench='DiscoveryFDs|DiscoveryWarmSession' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_discovery.json

bench-append:
	$(GO) test -bench='AppendDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_append.json

bench-build:
	$(GO) test -bench='ShardedBuild' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_build.json

# bench-all smoke-runs every benchmark once.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

run-daemon:
	$(GO) run ./cmd/semandaqd -preload 10000
