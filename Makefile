GO ?= go
# bench pipes go test through benchjson; pipefail keeps a failing
# benchmark from exiting green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec
# BENCHTIME=1x is the smoke setting (CI); use e.g. BENCHTIME=2s for
# real measurements.
BENCHTIME ?= 1x

.PHONY: all check fmt vet build test race bench bench-all run-daemon

all: check

# check is the CI gate: formatting, vet, build, and the race-enabled
# test suite (the engine/server concurrency tests rely on -race).
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the detection benchmarks (E1 scale sweep, E13 parallel
# detector) with allocation counts and emits BENCH_detect.json — the
# perf-trajectory artifact CI archives on every run.
bench:
	$(GO) test -bench='E1DetectScaleTuples|E13ParallelDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_detect.json

# bench-all smoke-runs every benchmark once.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

run-daemon:
	$(GO) run ./cmd/semandaqd -preload 10000
