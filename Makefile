GO ?= go
# bench pipes go test through benchjson; pipefail keeps a failing
# benchmark from exiting green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec
# BENCHTIME=1x is the smoke setting (CI); use e.g. BENCHTIME=2s for
# real measurements.
BENCHTIME ?= 1x

.PHONY: all check fmt vet build test race race-cache bench bench-detect bench-discovery bench-append bench-build bench-dc bench-repair bench-spill bench-service bench-recovery bench-all run-daemon

all: check

# check is the CI gate: formatting, vet, build, and the race-enabled
# test suite (the engine/server concurrency tests rely on -race).
check: fmt vet build race race-cache

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-cache re-runs the packages that share PLI caches across
# goroutines (discovery through engine sessions, concurrent detection,
# append-time PLI advancement through incremental repair, the
# TID-range-sharded builds racing appends in
# TestShardedCacheConcurrentBuildAppend, DC detection racing
# appends and discovery on one shared session cache in
# TestConcurrentDCDetectAppendDiscover, and tiered-storage demotions
# and mmap page-ins racing dirty appends with pending cell patches in
# TestSpillDemotePageInConcurrent and
# TestConcurrentSpillDemoteDirtyAppend) with a higher count, so
# cache-sharing races surface on every push. GOMAXPROCS is forced up so
# the scheduler actually interleaves the readers even on small CI boxes
# — the Get/GetDelta compaction race stayed hidden on a 1-core host
# until the fan-out was pinned.
race-cache:
	GOMAXPROCS=8 $(GO) test -race -count=2 ./internal/relation/ ./internal/discovery/ ./internal/engine/ ./internal/repair/ ./internal/dc/ ./internal/server/ ./internal/wal/

# bench runs the perf-trajectory benchmarks CI archives on every run:
# detection (E1 scale sweep, E13 parallel detector) into
# BENCH_detect.json, the discovery lattice walk (cold FDs, warm
# session) into BENCH_discovery.json, the streaming append→detect
# path (incremental PLI advance vs invalidate-and-rebuild) into
# BENCH_append.json, cold sharded index construction (serial vs
# TID-range-parallel counting sorts) into BENCH_build.json, and
# denial-constraint detection (PLI-partitioned dominance sweep vs
# all-pairs naive) into BENCH_dc.json, and the dirty streaming
# append→repair→detect path (per-cell PLI patching vs
# invalidate-and-rebuild, on a chained constraint set where repair
# writes hit a cached detection partition) into BENCH_repair.json, and
# tiered index storage (warm 1M-row detection under a budget of an
# eighth of the resident working set, rebuild-free via segment-file
# demotions and mmap page-ins) into BENCH_spill.json.
bench: bench-detect bench-discovery bench-append bench-build bench-dc bench-repair bench-spill

bench-detect:
	$(GO) test -bench='E1DetectScaleTuples|E13ParallelDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_detect.json

bench-discovery:
	$(GO) test -bench='DiscoveryFDs|DiscoveryWarmSession' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_discovery.json

bench-append:
	$(GO) test -bench='AppendDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_append.json

bench-build:
	$(GO) test -bench='ShardedBuild' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_build.json

bench-dc:
	$(GO) test -bench='DCDetect|DCRelax' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_dc.json

bench-repair:
	$(GO) test -bench='RepairPatch' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_repair.json

bench-spill:
	$(GO) test -bench='SpillDetect' -benchmem -benchtime=$(BENCHTIME) -run '^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_spill.json

# bench-service drives the closed-loop HTTP load harness: for each
# worker count in LOAD_SWEEP it spawns that many `semandaqd -worker`
# processes plus a coordinator preloaded with LOAD_N tuples, runs the
# mixed append/detect/violations/discover loop for LOAD_DUR per run,
# and writes throughput + p50/p95/p99 + the boundary-group residual
# fraction to BENCH_service.json. The defaults are the measurement
# setting; CI overrides them down to a smoke (see ci.yml).
LOAD_N ?= 5000
LOAD_DUR ?= 5s
LOAD_SWEEP ?= 1,2,4
LOAD_CLIENTS ?= 8

bench-service:
	mkdir -p bin
	$(GO) build -o bin/semandaqd ./cmd/semandaqd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	./bin/loadgen -bin bin/semandaqd -sweep '$(LOAD_SWEEP)' -n $(LOAD_N) \
		-clients $(LOAD_CLIENTS) -duration $(LOAD_DUR) -out BENCH_service.json
	cat BENCH_service.json

# bench-recovery runs the crash-recovery harness: for each acked-append
# count in RECOVERY_SWEEP it boots a durable daemon (-data-dir on a temp
# dir, WAL fsync on every write), streams single-row appends, SIGKILLs
# the process mid-stream, restarts it on the same data dir, and fails
# unless every acked append survived exactly once with zero re-ingest
# detection work. BENCH_recovery.json records exec→healthy recovery
# time against the WAL tail length.
RECOVERY_SWEEP ?= 200,1000,4000
RECOVERY_N ?= 2000

bench-recovery:
	mkdir -p bin
	$(GO) build -o bin/semandaqd ./cmd/semandaqd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	./bin/loadgen -bin bin/semandaqd -recovery '$(RECOVERY_SWEEP)' -n $(RECOVERY_N) -out BENCH_recovery.json
	cat BENCH_recovery.json

# bench-all smoke-runs every benchmark once.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

run-daemon:
	$(GO) run ./cmd/semandaqd -preload 10000
