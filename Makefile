GO ?= go

.PHONY: all check fmt vet build test race bench run-daemon

all: check

# check is the CI gate: formatting, vet, build, and the race-enabled
# test suite (the engine/server concurrency tests rely on -race).
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench pins one iteration per benchmark for a quick smoke run; drop
# -benchtime for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

run-daemon:
	$(GO) run ./cmd/semandaqd -preload 10000
