// BenchmarkSpillDetect is the tiered-storage headline: warm detection
// at the 1M-row E1 scale with the index budget pinned to an eighth of
// the resident working set, against the unlimited baseline. The
// budgeted run must stay rebuild-free — every eviction is a demotion to
// a segment file and every revival a zero-copy page-in, asserted via
// the spills/pageins/misses counters — so the gap between the two
// sub-benchmarks is the cost of tiering, not of recomputation. The
// colspill variant additionally demotes the base relation's code
// arrays, the configuration with the smallest resident footprint.
// `make bench-spill` archives the results (with peak RSS from
// bench_meta_test.go in meta) as BENCH_spill.json.
package main

import (
	"fmt"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/engine"
	"semandaq/internal/relation"
)

func BenchmarkSpillDetect(b *testing.B) {
	const n = 1_000_000
	dirty, _ := dirtyCust(n, 0.05, 17)
	set := datagen.CustConstraints()

	// Measure the resident working set once on a throwaway session: the
	// bytes the four cached LHS partitions hold after a warm detect.
	probe, err := engine.NewSession("spill-probe", dirty, set, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := probe.Detect(); err != nil {
		b.Fatal(err)
	}
	working := probe.IndexResidentBytes()
	if working <= 0 {
		b.Fatalf("probe measured no resident index bytes")
	}
	budget := working / 8

	b.Run(fmt.Sprintf("unlimited/n=%d", n), func(b *testing.B) {
		s, err := engine.NewSession("spill-unlimited", dirty, set, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Detect(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Detect(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.IndexResidentBytes())/(1<<20), "resident-MB")
	})

	runBudgeted := func(b *testing.B, name string, spillCols bool) {
		b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
			if !relation.MmapSupported() {
				b.Skip("no mmap on this platform")
			}
			data := dirty
			if spillCols {
				data = dirty.Clone()
			}
			s, err := engine.NewSession("spill-"+name, data, set, 0)
			if err != nil {
				b.Fatal(err)
			}
			store, err := relation.NewSpillStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			s.SetSpill(store)
			s.SetIndexBudget(budget)
			if spillCols {
				if _, err := s.SpillColumns(); err != nil {
					b.Fatal(err)
				}
			}
			// Warm up: cold builds plus the first demote/page-in cycle,
			// so the timed loop measures the tiered steady state.
			for i := 0; i < 2; i++ {
				if _, err := s.Detect(); err != nil {
					b.Fatal(err)
				}
			}
			warm := s.IndexStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Detect(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := s.IndexStats()
			// The tier must absorb the budget pressure: zero rebuilds and
			// zero refinements after warm-up — only demotions and page-ins.
			if after.Misses != warm.Misses || after.Refines != warm.Refines {
				b.Fatalf("budgeted detect rebuilt partitions: %+v -> %+v", warm, after)
			}
			if after.Spills == 0 {
				b.Fatalf("budget %d never demoted an entry: %+v", budget, after)
			}
			if after.Pageins == 0 {
				b.Fatalf("budget %d never paged an entry back in: %+v", budget, after)
			}
			if resident := s.IndexResidentBytes(); resident > working {
				b.Fatalf("budgeted resident set %d exceeds unlimited working set %d", resident, working)
			}
			b.ReportMetric(float64(s.IndexResidentBytes())/(1<<20), "resident-MB")
		})
	}
	runBudgeted(b, "budget=working÷8", false)
	runBudgeted(b, "budget=working÷8+colspill", true)
}
