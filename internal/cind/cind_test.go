package cind

import (
	"strings"
	"testing"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// The tutorial §3 running example: customer orders of books and CDs.
func orderSchemas(t *testing.T) (cd, book *relation.Schema) {
	t.Helper()
	cd, err := relation.StringSchema("CD", "album", "price", "genre")
	if err != nil {
		t.Fatal(err)
	}
	book, err = relation.StringSchema("book", "title", "price", "format")
	if err != nil {
		t.Fatal(err)
	}
	return cd, book
}

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.String(v)
	}
	return t
}

// tutorialCIND is (CD(album, price, genre='a-book') ⊆ book(title, price,
// format='audio')).
func tutorialCIND(t *testing.T) (*CIND, *relation.Schema, *relation.Schema) {
	t.Helper()
	cdS, bookS := orderSchemas(t)
	c, err := Parse("cind psi: CD(album, price | genre='a-book') <= book(title, price | format='audio')", cdS, bookS)
	if err != nil {
		t.Fatal(err)
	}
	return c, cdS, bookS
}

func TestParseTutorialExample(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	if c.Name() != "psi" {
		t.Errorf("name = %q", c.Name())
	}
	if got := c.LHSCorr(); len(got) != 2 || got[0] != cdS.MustIndex("album") || got[1] != cdS.MustIndex("price") {
		t.Errorf("LHSCorr = %v", got)
	}
	if got := c.RHSCorr(); len(got) != 2 || got[0] != bookS.MustIndex("title") {
		t.Errorf("RHSCorr = %v", got)
	}
	attrs, pats := c.LHSPattern()
	if len(attrs) != 1 || attrs[0] != cdS.MustIndex("genre") || !pats[0].Matches(relation.String("a-book")) {
		t.Errorf("LHS pattern = %v %v", attrs, pats)
	}
	if c.IsIND() {
		t.Error("conditioned CIND must not report IsIND")
	}
}

func TestParsePlainIND(t *testing.T) {
	cdS, bookS := orderSchemas(t)
	c, err := Parse("CD(album) <= book(title)", cdS, bookS)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsIND() {
		t.Error("pattern-free CIND should be a plain IND")
	}
}

func TestParseErrors(t *testing.T) {
	cdS, bookS := orderSchemas(t)
	bad := []string{
		"",
		"CD(album) book(title)",
		"CD(album) <= nope(title)",
		"CD(nope) <= book(title)",
		"CD(album | bad) <= book(title)",
		"CD(album | nope='x') <= book(title)",
		"cind broken CD(album) <= book(title)",
	}
	for _, in := range bad {
		if _, err := Parse(in, cdS, bookS); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
	if _, err := New("x", cdS, bookS, nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("empty correlated lists should fail")
	}
	if _, err := New("x", cdS, bookS, []string{"album"}, []string{"title", "price"}, nil, nil, nil, nil); err == nil {
		t.Error("unequal correlated lists should fail")
	}
	if _, err := New("x", cdS, bookS, []string{"album", "album"}, []string{"title", "price"}, nil, nil, nil, nil); err == nil {
		t.Error("duplicate attribute should fail")
	}
}

func TestDetectSatisfied(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(strTuple("dune", "20", "a-book"))
	cd.MustInsert(strTuple("pop hits", "10", "music")) // out of scope
	book.MustInsert(strTuple("dune", "20", "audio"))
	vs, err := Detect(cd, book, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("satisfied instance has violations: %v", vs)
	}
}

func TestDetectMissingWitness(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(strTuple("dune", "20", "a-book"))
	// Witness has wrong price: correlated attributes must all agree.
	book.MustInsert(strTuple("dune", "25", "audio"))
	vs, _ := Detect(cd, book, c)
	if len(vs) != 1 || vs[0].TID != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestDetectWrongWitnessPattern(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(strTuple("dune", "20", "a-book"))
	// Title and price agree, but format is not 'audio' — the witness
	// condition fails, so this does not count.
	book.MustInsert(strTuple("dune", "20", "hardcover"))
	vs, _ := Detect(cd, book, c)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1 (witness fails RHS pattern)", vs)
	}
}

func TestDetectOutOfScopeIgnored(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	// Music CDs are out of the pattern's scope: no witness needed.
	cd.MustInsert(strTuple("pop hits", "10", "music"))
	vs, _ := Detect(cd, book, c)
	if len(vs) != 0 {
		t.Errorf("out-of-scope tuple flagged: %v", vs)
	}
}

func TestDetectNullCorrelated(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(relation.Tuple{relation.Null(), relation.String("20"), relation.String("a-book")})
	book.MustInsert(strTuple("dune", "20", "audio"))
	vs, _ := Detect(cd, book, c)
	// NULL album can never equal a witness title.
	if len(vs) != 1 {
		t.Errorf("NULL correlated attr should violate: %v", vs)
	}
}

func TestSatisfiesAndTIDs(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(strTuple("a", "1", "a-book"))
	cd.MustInsert(strTuple("b", "2", "a-book"))
	ok, err := Satisfies(cd, book, c)
	if err != nil || ok {
		t.Fatalf("Satisfies = %v, %v", ok, err)
	}
	vs, _ := Detect(cd, book, c)
	tids := ViolatingTIDs(vs)
	if len(tids) != 2 || tids[0] != 0 || tids[1] != 1 {
		t.Errorf("tids = %v", tids)
	}
}

func TestStringRoundTrip(t *testing.T) {
	c, cdS, bookS := tutorialCIND(t)
	out := c.String()
	if !strings.Contains(out, "<=") || !strings.Contains(out, "genre='a-book'") {
		t.Errorf("String() = %s", out)
	}
	back, err := Parse(out, cdS, bookS)
	if err != nil {
		t.Fatalf("round trip parse of %q: %v", out, err)
	}
	if back.String() != out {
		t.Errorf("round trip unstable: %q vs %q", back.String(), out)
	}
}

func TestImpliesSyntactic(t *testing.T) {
	cdS, bookS := orderSchemas(t)
	base := MustParse("CD(album, price) <= book(title, price)", cdS, bookS)
	conditioned := MustParse("CD(album, price | genre='a-book') <= book(title, price)", cdS, bookS)
	stricter := MustParse("CD(album, price | genre='a-book') <= book(title, price | format='audio')", cdS, bookS)

	if !ImpliesSyntactic(base, conditioned) {
		t.Error("unconditional IND should imply its conditional weakening")
	}
	if ImpliesSyntactic(conditioned, base) {
		t.Error("conditional CIND must not imply the unconditional IND")
	}
	if ImpliesSyntactic(conditioned, stricter) {
		t.Error("weaker witness requirement must not imply stricter one")
	}
	if !ImpliesSyntactic(stricter, conditioned) {
		t.Error("stricter witness requirement should imply weaker one")
	}
	if !ImpliesSyntactic(base, base) {
		t.Error("implication should be reflexive")
	}
	// Semantic sanity: when ImpliesSyntactic(a, b), any instance
	// satisfying a satisfies b.
	cd := relation.New(cdS)
	book := relation.New(bookS)
	cd.MustInsert(strTuple("dune", "20", "a-book"))
	book.MustInsert(strTuple("dune", "20", "audio"))
	for _, pair := range [][2]*CIND{{base, conditioned}, {stricter, conditioned}} {
		okA, _ := Satisfies(cd, book, pair[0])
		okB, _ := Satisfies(cd, book, pair[1])
		if okA && !okB {
			t.Errorf("semantic soundness broken for %s => %s", pair[0], pair[1])
		}
	}
	_ = pattern.Wild() // keep pattern import for helpers above
}
