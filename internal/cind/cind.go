// Package cind implements conditional inclusion dependencies (CINDs),
// the second constraint extension presented in §3 of the tutorial,
// introduced by Bravo, Fan and Ma ("Extending dependencies with
// conditions", VLDB 2007).
//
// A CIND ψ = (R1[A1..Ak; Xp] ⊆ R2[B1..Bk; Yp], tp) states: for every R1
// tuple t1 whose pattern attributes Xp match the pattern tp, there must
// be an R2 tuple t2 with t2[Bi] = t1[Ai] for all correlated pairs, whose
// pattern attributes Yp match tp's RHS patterns. The tutorial's example:
//
//	(CD(album, price, genre='a-book') ⊆ book(title, price, format='audio'))
//
// audio-book CDs must appear in the book relation as AUDIO-format titles.
//
// Unlike CFDs, any set of CINDs is always satisfiable (VLDB 2007,
// Theorem 3.1 — the empty-pattern chase never produces a contradiction,
// and witnesses can always be added to the right-hand relation), so the
// package provides no consistency check. Implication for CINDs is
// EXPTIME-complete; the package implements the sound syntactic
// containment test used for minimal covers, documented as incomplete.
package cind

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// CIND is a conditional inclusion dependency.
type CIND struct {
	name  string
	left  *relation.Schema
	right *relation.Schema

	lhsCorr []int // A1..Ak in left (correlated attributes)
	rhsCorr []int // B1..Bk in right, pairwise with lhsCorr

	lhsPatAttrs []int       // condition attributes of left
	lhsPats     pattern.Row // patterns over lhsPatAttrs (constants or _)
	rhsPatAttrs []int       // condition attributes of right
	rhsPats     pattern.Row // patterns the witness must satisfy
}

// New constructs a CIND. The correlated lists must be non-empty and of
// equal length; pattern attribute lists may be empty (giving a classical
// IND when both are).
func New(name string, left, right *relation.Schema,
	lhsCorrNames, rhsCorrNames []string,
	lhsPatNames []string, lhsPats pattern.Row,
	rhsPatNames []string, rhsPats pattern.Row) (*CIND, error) {

	if len(lhsCorrNames) == 0 || len(lhsCorrNames) != len(rhsCorrNames) {
		return nil, fmt.Errorf("cind %s: correlated attribute lists must be non-empty and equal length", name)
	}
	lhsCorr, err := left.Indexes(lhsCorrNames...)
	if err != nil {
		return nil, fmt.Errorf("cind %s: %w", name, err)
	}
	rhsCorr, err := right.Indexes(rhsCorrNames...)
	if err != nil {
		return nil, fmt.Errorf("cind %s: %w", name, err)
	}
	if len(lhsPatNames) != len(lhsPats) {
		return nil, fmt.Errorf("cind %s: LHS pattern list width mismatch", name)
	}
	if len(rhsPatNames) != len(rhsPats) {
		return nil, fmt.Errorf("cind %s: RHS pattern list width mismatch", name)
	}
	lhsPatAttrs, err := left.Indexes(lhsPatNames...)
	if err != nil {
		return nil, fmt.Errorf("cind %s: %w", name, err)
	}
	rhsPatAttrs, err := right.Indexes(rhsPatNames...)
	if err != nil {
		return nil, fmt.Errorf("cind %s: %w", name, err)
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int(nil), lhsCorr...), lhsPatAttrs...) {
		if seen[i] {
			return nil, fmt.Errorf("cind %s: attribute %s used twice on the left", name, left.Attr(i).Name)
		}
		seen[i] = true
	}
	seen = map[int]bool{}
	for _, i := range append(append([]int(nil), rhsCorr...), rhsPatAttrs...) {
		if seen[i] {
			return nil, fmt.Errorf("cind %s: attribute %s used twice on the right", name, right.Attr(i).Name)
		}
		seen[i] = true
	}
	return &CIND{
		name: name, left: left, right: right,
		lhsCorr: lhsCorr, rhsCorr: rhsCorr,
		lhsPatAttrs: lhsPatAttrs, lhsPats: lhsPats.Clone(),
		rhsPatAttrs: rhsPatAttrs, rhsPats: rhsPats.Clone(),
	}, nil
}

// Name returns the CIND's identifier.
func (c *CIND) Name() string { return c.name }

// Left returns the left (included) schema.
func (c *CIND) Left() *relation.Schema { return c.left }

// Right returns the right (including) schema.
func (c *CIND) Right() *relation.Schema { return c.right }

// LHSCorr returns the positions of the correlated attributes on the left.
func (c *CIND) LHSCorr() []int { return append([]int(nil), c.lhsCorr...) }

// RHSCorr returns the positions of the correlated attributes on the right.
func (c *CIND) RHSCorr() []int { return append([]int(nil), c.rhsCorr...) }

// LHSPattern returns the left condition (attribute positions and patterns).
func (c *CIND) LHSPattern() ([]int, pattern.Row) {
	return append([]int(nil), c.lhsPatAttrs...), c.lhsPats.Clone()
}

// RHSPattern returns the witness condition on the right.
func (c *CIND) RHSPattern() ([]int, pattern.Row) {
	return append([]int(nil), c.rhsPatAttrs...), c.rhsPats.Clone()
}

// IsIND reports whether the CIND degenerates to a classical inclusion
// dependency (no condition patterns).
func (c *CIND) IsIND() bool {
	return c.lhsPats.AllWild() && c.rhsPats.AllWild()
}

// String renders the CIND in the package's textual syntax.
func (c *CIND) String() string {
	var b strings.Builder
	if c.name != "" {
		b.WriteString("cind ")
		b.WriteString(c.name)
		b.WriteString(": ")
	}
	writeSide := func(schema *relation.Schema, corr []int, patAttrs []int, pats pattern.Row) {
		b.WriteString(schema.Name())
		b.WriteByte('(')
		for i, a := range corr {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(schema.Attr(a).Name)
		}
		for i, a := range patAttrs {
			if i == 0 {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
			b.WriteString(schema.Attr(a).Name)
			b.WriteByte('=')
			b.WriteString(pats[i].String())
		}
		b.WriteByte(')')
	}
	writeSide(c.left, c.lhsCorr, c.lhsPatAttrs, c.lhsPats)
	b.WriteString(" <= ")
	writeSide(c.right, c.rhsCorr, c.rhsPatAttrs, c.rhsPats)
	return b.String()
}

// Violation records one CIND violation: a left tuple in the pattern's
// scope with no witness on the right.
type Violation struct {
	CIND *CIND
	TID  int // left-relation tuple id
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("cind violation of %s: left tuple %d has no witness", v.CIND.name, v.TID)
}

// Detect returns all violations of the CIND for instances (left, right).
//
// The algorithm is the hash anti-join the generated SQL also performs:
// index the right relation on the correlated attributes, keeping only
// tuples matching the RHS pattern; scan the left relation's in-scope
// tuples and report those whose correlated values miss the index.
func Detect(left, right *relation.Relation, c *CIND) ([]Violation, error) {
	if !left.Schema().Equal(c.left) {
		return nil, fmt.Errorf("cind %s: left relation is %s, want %s", c.name, left.Schema().Name(), c.left.Name())
	}
	if !right.Schema().Equal(c.right) {
		return nil, fmt.Errorf("cind %s: right relation is %s, want %s", c.name, right.Schema().Name(), c.right.Name())
	}
	// Build the witness key set.
	witnesses := make(map[string]bool, right.Len())
	for _, t := range right.Tuples() {
		if !c.rhsPats.Matches(t, c.rhsPatAttrs) {
			continue
		}
		witnesses[t.Key(c.rhsCorr)] = true
	}
	var out []Violation
	for tid, t := range left.Tuples() {
		if !c.lhsPats.Matches(t, c.lhsPatAttrs) {
			continue
		}
		// NULL in a correlated attribute can never equal a witness value.
		hasNull := false
		for _, a := range c.lhsCorr {
			if t[a].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull || !witnesses[t.Key(c.lhsCorr)] {
			out = append(out, Violation{CIND: c, TID: tid})
		}
	}
	return out, nil
}

// Satisfies reports whether (left, right) satisfies the CIND.
func Satisfies(left, right *relation.Relation, c *CIND) (bool, error) {
	vs, err := Detect(left, right, c)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// ViolatingTIDs collapses violations to sorted left-relation TIDs.
func ViolatingTIDs(vs []Violation) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.TID)
	}
	sort.Ints(out)
	return out
}

// ImpliesSyntactic is a sound but incomplete implication test: it reports
// true when ψ2 is a weakening of ψ1 over the same schemas and correlated
// lists — ψ2's LHS pattern is at most as general and its RHS requirement
// at most as strict. (Complete implication for CINDs is EXPTIME-complete,
// VLDB 2007; the syntactic test is what the minimal-cover pass needs.)
func ImpliesSyntactic(psi1, psi2 *CIND) bool {
	if !psi1.left.Equal(psi2.left) || !psi1.right.Equal(psi2.right) {
		return false
	}
	if len(psi1.lhsCorr) != len(psi2.lhsCorr) {
		return false
	}
	for i := range psi1.lhsCorr {
		if psi1.lhsCorr[i] != psi2.lhsCorr[i] || psi1.rhsCorr[i] != psi2.rhsCorr[i] {
			return false
		}
	}
	// ψ2's scope must be contained in ψ1's scope: every ψ1 LHS pattern
	// attribute must appear in ψ2 with an equal-or-more-specific pattern.
	for i, a := range psi1.lhsPatAttrs {
		if psi1.lhsPats[i].IsWild() {
			continue
		}
		found := false
		for j, b := range psi2.lhsPatAttrs {
			if a == b && psi1.lhsPats[i].Subsumes(psi2.lhsPats[j]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	// ψ1's witness requirement must cover ψ2's: every RHS pattern of ψ2
	// must be implied by (subsume) some RHS pattern of ψ1.
	for j, b := range psi2.rhsPatAttrs {
		if psi2.rhsPats[j].IsWild() {
			continue
		}
		found := false
		for i, a := range psi1.rhsPatAttrs {
			if a == b && psi2.rhsPats[j].Subsumes(psi1.rhsPats[i]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
