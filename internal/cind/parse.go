package cind

import (
	"fmt"
	"strings"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Parse reads a CIND in the textual syntax:
//
//	cind name: CD(album, price | genre='a-book') <= book(title, price | format='audio')
//
// The part before "|" lists the correlated attributes (positionally
// paired across the two sides); the part after it gives the condition
// patterns. Either side's condition may be omitted. "cind name:" is
// optional.
func Parse(input string, left, right *relation.Schema) (*CIND, error) {
	c, err := parseCIND(input, left, right)
	if err != nil {
		return nil, fmt.Errorf("cind: parsing %q: %w", input, err)
	}
	return c, nil
}

// MustParse is Parse panicking on error, for statically known literals.
func MustParse(input string, left, right *relation.Schema) *CIND {
	c, err := Parse(input, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

func parseCIND(input string, left, right *relation.Schema) (*CIND, error) {
	src := strings.TrimSpace(input)
	name := ""
	if strings.HasPrefix(src, "cind ") {
		rest := strings.TrimSpace(src[len("cind "):])
		colon := strings.Index(rest, ":")
		if colon < 0 {
			return nil, fmt.Errorf("expected ':' after cind name")
		}
		name = strings.TrimSpace(rest[:colon])
		src = strings.TrimSpace(rest[colon+1:])
	}
	parts := strings.Split(src, "<=")
	if len(parts) != 2 {
		return nil, fmt.Errorf("expected exactly one '<=' separator")
	}
	lCorr, lPatNames, lPats, err := parseSide(strings.TrimSpace(parts[0]), left)
	if err != nil {
		return nil, err
	}
	rCorr, rPatNames, rPats, err := parseSide(strings.TrimSpace(parts[1]), right)
	if err != nil {
		return nil, err
	}
	return New(name, left, right, lCorr, rCorr, lPatNames, lPats, rPatNames, rPats)
}

// parseSide parses rel(a, b | c='x', d='y').
func parseSide(src string, schema *relation.Schema) (corr []string, patNames []string, pats pattern.Row, err error) {
	open := strings.Index(src, "(")
	if open < 0 || !strings.HasSuffix(src, ")") {
		return nil, nil, nil, fmt.Errorf("expected rel(...), got %q", src)
	}
	relName := strings.TrimSpace(src[:open])
	if relName != schema.Name() {
		return nil, nil, nil, fmt.Errorf("relation %q does not match schema %q", relName, schema.Name())
	}
	body := src[open+1 : len(src)-1]
	corrPart, patPart := body, ""
	if bar := strings.Index(body, "|"); bar >= 0 {
		corrPart, patPart = body[:bar], body[bar+1:]
	}
	for _, f := range splitTop(corrPart) {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if _, ok := schema.Index(f); !ok {
			return nil, nil, nil, fmt.Errorf("schema %s has no attribute %q", schema.Name(), f)
		}
		corr = append(corr, f)
	}
	for _, f := range splitTop(patPart) {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		eq := strings.Index(f, "=")
		if eq < 0 {
			return nil, nil, nil, fmt.Errorf("condition %q must be attr=value", f)
		}
		attr := strings.TrimSpace(f[:eq])
		idx, ok := schema.Index(attr)
		if !ok {
			return nil, nil, nil, fmt.Errorf("schema %s has no attribute %q", schema.Name(), attr)
		}
		pv, perr := pattern.ParseValue(strings.TrimSpace(f[eq+1:]), schema.Attr(idx).Kind)
		if perr != nil {
			return nil, nil, nil, perr
		}
		patNames = append(patNames, attr)
		pats = append(pats, pv)
	}
	return corr, patNames, pats, nil
}

// splitTop splits on commas not inside single quotes.
func splitTop(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
