// Package experiments implements the full experiment suite of DESIGN.md
// (E1–E12): for every table/figure-equivalent of the constituent papers
// the tutorial surveys, a Run function regenerates the measured rows.
// cmd/experiments prints them; the root bench_test.go wraps the measured
// kernels as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
	"semandaq/internal/cqa"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/matching"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/semandaq"
	"semandaq/internal/sqlgen"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// timeIt measures f. Short runs are measured twice and the minimum
// reported, damping GC and allocator noise in single-shot timings.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		start = time.Now()
		f()
		if second := time.Since(start); second < elapsed {
			elapsed = second
		}
	}
	return elapsed
}

// dirtyCust generates a dirty customer workload with noise restricted to
// the constrained attributes (so noise is observable by the CFDs).
func dirtyCust(n int, rate float64, seed int64) (*relation.Relation, *noise.Truth) {
	clean := datagen.Cust(n, seed)
	schema := clean.Schema()
	return noise.Dirty(clean, noise.Options{
		Rate:  rate,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  seed + 1,
	})
}

// E1DetectScale measures CFD violation-detection time against the
// number of tuples, for the native detector and the SQL-based path
// (TODS 2008 experiment: detection scales linearly in |D|).
func E1DetectScale(sizes []int, rate float64) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "detection time vs #tuples (5 CFDs, noise 5%)",
		Columns: []string{"tuples", "native_ms", "sql_ms", "viol_tuples"},
	}
	set := datagen.CustConstraints()
	for _, n := range sizes {
		dirty, _ := dirtyCust(n, rate, 11)
		var native []cfd.Violation
		dNative := timeIt(func() {
			native, _ = cfd.NewDetector(set).Detect(dirty)
		})
		var sqlTIDs []int
		dSQL := timeIt(func() {
			rn := sqlgen.NewRunner()
			rn.Load("cust", dirty)
			sqlTIDs, _ = rn.DetectSet(set, "cust")
		})
		nNative := len(cfd.ViolatingTIDs(native))
		if nNative != len(sqlTIDs) {
			panic(fmt.Sprintf("E1: native %d tuples vs sql %d", nNative, len(sqlTIDs)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(dNative), ms(dSQL), fmt.Sprint(nNative),
		})
	}
	return t
}

// E2TableauSize measures detection time against the number of pattern
// rows: the merged-tableau query pair stays near-flat while the per-row
// plan grows linearly (the headline comparison of TODS 2008 §8).
func E2TableauSize(n int, rowCounts []int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("detection time vs tableau size (%d tuples)", n),
		Columns: []string{"rows", "merged_sql_ms", "perrow_sql_ms", "native_ms"},
	}
	dirty, _ := dirtyCust(n, 0.05, 13)
	for _, rows := range rowCounts {
		set := datagen.CustTableau(rows)
		c := set.CFD(0)

		rn := sqlgen.NewRunner()
		rn.Load("cust", dirty)
		gens, err := rn.InstallCFD(c, "cust")
		if err != nil {
			panic(err)
		}
		var merged, perRow []int
		dMerged := timeIt(func() {
			merged, _ = rn.DetectCFD(gens[0], "cust")
		})
		dPerRow := timeIt(func() {
			perRow, _ = rn.DetectCFDPerRow(gens[0], "cust")
		})
		dNative := timeIt(func() {
			cfd.DetectOne(dirty, c)
		})
		if len(merged) != len(perRow) {
			panic(fmt.Sprintf("E2: merged %d vs per-row %d", len(merged), len(perRow)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rows), ms(dMerged), ms(dPerRow), ms(dNative),
		})
	}
	return t
}

// E3DetectNoise measures detection time and violation counts against
// the noise rate.
func E3DetectNoise(n int, rates []float64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("detection vs noise rate (%d tuples)", n),
		Columns: []string{"noise_pct", "native_ms", "violations", "viol_tuples"},
	}
	set := datagen.CustConstraints()
	for _, rate := range rates {
		dirty, _ := dirtyCust(n, rate, 17)
		var vs []cfd.Violation
		d := timeIt(func() {
			vs, _ = cfd.NewDetector(set).Detect(dirty)
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rate*100), ms(d),
			fmt.Sprint(len(vs)), fmt.Sprint(len(cfd.ViolatingTIDs(vs))),
		})
	}
	return t
}

// E4RepairQuality measures BatchRepair precision/recall against the
// noise rate (Cong et al. VLDB 2007 accuracy experiment), with uniform
// weights and with confidence weights that down-weight dirtied cells.
func E4RepairQuality(n int, rates []float64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("repair quality vs noise rate (%d tuples)", n),
		Columns: []string{"noise_pct", "prec", "rec", "f1", "w_prec", "w_rec", "changes", "time_ms"},
	}
	set := datagen.CustConstraints()
	for _, rate := range rates {
		dirty, truth := dirtyCust(n, rate, 19)
		var res *repair.Result
		d := timeIt(func() {
			var err error
			res, err = repair.Batch(dirty, set, repair.Options{})
			if err != nil {
				panic(err)
			}
		})
		if err := repair.Verify(res, set); err != nil {
			panic(err)
		}
		q := noise.Score(res.Changes, truth)

		// Confidence-weighted run: dirtied cells get low confidence, the
		// idealized setting of the paper's weighted experiments.
		weights := func(tid, attr int) float64 {
			if _, dirtied := truth.Cells[[2]int{tid, attr}]; dirtied {
				return 0.25
			}
			return 1
		}
		resW, err := repair.Batch(dirty, set, repair.Options{Weights: weights})
		if err != nil {
			panic(err)
		}
		qW := noise.Score(resW.Changes, truth)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rate*100),
			fmt.Sprintf("%.3f", q.Precision), fmt.Sprintf("%.3f", q.Recall), fmt.Sprintf("%.3f", q.F1),
			fmt.Sprintf("%.3f", qW.Precision), fmt.Sprintf("%.3f", qW.Recall),
			fmt.Sprint(len(res.Changes)), ms(d),
		})
	}
	return t
}

// E5RepairScale measures BatchRepair time against the relation size.
func E5RepairScale(sizes []int, rate float64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "repair time vs #tuples (noise 5%)",
		Columns: []string{"tuples", "repair_ms", "changes", "passes"},
	}
	set := datagen.CustConstraints()
	for _, n := range sizes {
		dirty, _ := dirtyCust(n, rate, 23)
		var res *repair.Result
		d := timeIt(func() {
			var err error
			res, err = repair.Batch(dirty, set, repair.Options{})
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(d), fmt.Sprint(len(res.Changes)), fmt.Sprint(res.Passes),
		})
	}
	return t
}

// E6IncRepair compares IncRepair on a delta against re-running
// BatchRepair on the whole database, for growing delta fractions — the
// crossover experiment of Cong et al. VLDB 2007.
func E6IncRepair(baseSize int, deltaFracs []float64) *Table {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("IncRepair vs BatchRepair (base %d tuples)", baseSize),
		Columns: []string{"delta_pct", "delta_tuples", "inc_ms", "batch_ms", "speedup"},
	}
	set := datagen.CustConstraints()
	base := datagen.Cust(baseSize, 29)
	schema := base.Schema()
	for _, frac := range deltaFracs {
		nDelta := int(frac * float64(baseSize))
		if nDelta < 1 {
			nDelta = 1
		}
		// Deltas: fresh tuples, 30% of them corrupted on STR/CT.
		deltaClean := datagen.Cust(nDelta, 31)
		deltaDirty, _ := noise.Dirty(deltaClean, noise.Options{
			Rate:  0.3,
			Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
			Seed:  37,
		})
		delta := make([]relation.Tuple, deltaDirty.Len())
		for i := range delta {
			delta[i] = deltaDirty.Tuple(i).Clone()
		}

		dInc := timeIt(func() {
			if _, err := repair.AppendAndRepair(base, delta, set, repair.Options{}); err != nil {
				panic(err)
			}
		})

		combined := base.Clone()
		for _, tup := range delta {
			combined.MustInsert(tup.Clone())
		}
		dBatch := timeIt(func() {
			if _, err := repair.Batch(combined, set, repair.Options{}); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", frac*100), fmt.Sprint(nDelta),
			ms(dInc), ms(dBatch),
			fmt.Sprintf("%.1fx", float64(dBatch)/float64(dInc)),
		})
	}
	return t
}

// E7Discovery measures CFD discovery time against the relation size and
// the number of discovered rules against the support threshold.
func E7Discovery(sizes []int, supports []int, nForSupport int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "discovery scaling and support sensitivity",
		Columns: []string{"tuples", "support", "rules", "time_ms"},
	}
	for _, n := range sizes {
		r := datagen.Cust(n, 41)
		var rules []*cfd.CFD
		d := timeIt(func() {
			var err error
			rules, err = discovery.Discover(r, discovery.Options{MinSupport: 10, MaxLHS: 2})
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), "10", fmt.Sprint(len(rules)), ms(d),
		})
	}
	r := datagen.Cust(nForSupport, 43)
	for _, sup := range supports {
		var rules []*cfd.CFD
		d := timeIt(func() {
			var err error
			rules, err = discovery.Discover(r, discovery.Options{MinSupport: sup, MaxLHS: 2})
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nForSupport), fmt.Sprint(sup), fmt.Sprint(len(rules)), ms(d),
		})
	}
	return t
}

// MatchingSetup builds the §4 rules, target and derived RCKs shared by
// E8 and the matching example.
func MatchingSetup() (rules []*matching.MD, y []matching.AttrPair, keys []*matching.RCK, err error) {
	cardS, billingS := datagen.CardSchema(), datagen.BillingSchema()
	pair := func(name string, cmp matching.Comparator) matching.AttrPair {
		return matching.AttrPair{Left: cardS.MustIndex(name), Right: billingS.MustIndex(name), Cmp: cmp}
	}
	y = []matching.AttrPair{
		pair("fn", matching.Eq()), pair("ln", matching.Eq()), pair("addr", matching.Eq()),
		pair("phn", matching.Eq()), pair("email", matching.Eq()),
	}
	a, err := matching.NewMD("a", cardS, billingS,
		[]matching.AttrPair{pair("phn", matching.Eq())},
		[]matching.AttrPair{pair("addr", matching.Eq())})
	if err != nil {
		return nil, nil, nil, err
	}
	b, err := matching.NewMD("b", cardS, billingS,
		[]matching.AttrPair{pair("email", matching.Eq())},
		[]matching.AttrPair{pair("fn", matching.Eq()), pair("ln", matching.Eq())})
	if err != nil {
		return nil, nil, nil, err
	}
	c, err := matching.NewMD("c", cardS, billingS,
		[]matching.AttrPair{
			pair("ln", matching.Eq()), pair("addr", matching.Eq()),
			pair("fn", matching.MustApprox("jarowinkler", 0.85)),
		}, y)
	if err != nil {
		return nil, nil, nil, err
	}
	rules = []*matching.MD{a, b, c}
	keys, err = matching.DeduceRCKs(rules, y, matching.DeduceOptions{MaxPairs: 3})
	return rules, y, keys, err
}

// E8MatchQuality compares the derived-RCK matcher against exact-Y
// equality and the single rule (c) across perturbation levels.
func E8MatchQuality(persons int, perturbs []float64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("match quality vs perturbation (%d persons)", persons),
		Columns: []string{"perturb_pct", "rck_P", "rck_R", "rck_F1", "exact_F1", "ruleC_F1", "time_ms"},
	}
	rules, y, keys, err := MatchingSetup()
	if err != nil {
		panic(err)
	}
	_ = rules
	cardS, billingS := datagen.CardSchema(), datagen.BillingSchema()
	rckM, err := matching.NewMatcher(cardS, billingS, keys)
	if err != nil {
		panic(err)
	}
	exactKey, err := matching.NewRCK("exactY", cardS, billingS, y)
	if err != nil {
		panic(err)
	}
	exactM, err := matching.NewMatcher(cardS, billingS, []*matching.RCK{exactKey})
	if err != nil {
		panic(err)
	}
	// Rule (c) alone, as an RCK.
	ruleCKey, err := matching.NewRCK("ruleC", cardS, billingS, []matching.AttrPair{
		{Left: cardS.MustIndex("ln"), Right: billingS.MustIndex("ln"), Cmp: matching.Eq()},
		{Left: cardS.MustIndex("addr"), Right: billingS.MustIndex("addr"), Cmp: matching.Eq()},
		{Left: cardS.MustIndex("fn"), Right: billingS.MustIndex("fn"), Cmp: matching.MustApprox("jarowinkler", 0.85)},
	})
	if err != nil {
		panic(err)
	}
	ruleCM, err := matching.NewMatcher(cardS, billingS, []*matching.RCK{ruleCKey})
	if err != nil {
		panic(err)
	}

	for _, perturb := range perturbs {
		card, billing, truth := datagen.CardBilling(datagen.CardBillingOptions{
			Persons: persons, DupRate: 0.5, Perturb: perturb, Seed: 47,
		})
		var rckMatches []matching.Match
		d := timeIt(func() {
			rckMatches, err = rckM.Run(card, billing)
			if err != nil {
				panic(err)
			}
		})
		exactMatches, err := exactM.Run(card, billing)
		if err != nil {
			panic(err)
		}
		cMatches, err := ruleCM.Run(card, billing)
		if err != nil {
			panic(err)
		}
		q := matching.Evaluate(rckMatches, truth)
		qe := matching.Evaluate(exactMatches, truth)
		qc := matching.Evaluate(cMatches, truth)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", perturb*100),
			fmt.Sprintf("%.3f", q.Precision), fmt.Sprintf("%.3f", q.Recall), fmt.Sprintf("%.3f", q.F1),
			fmt.Sprintf("%.3f", qe.F1), fmt.Sprintf("%.3f", qc.F1), ms(d),
		})
	}
	return t
}

// E9CINDDetect measures CIND violation detection against the left
// relation size, native hash anti-join vs the generated NOT EXISTS SQL.
func E9CINDDetect(sizes []int) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "CIND detection vs #CD tuples (1% planted violations)",
		Columns: []string{"cd_tuples", "book_tuples", "native_ms", "sql_ms", "violations"},
	}
	psi := datagen.OrdersCIND()
	for _, n := range sizes {
		nBook := n / 2
		planted := n / 100
		cdRel, bookRel, _ := datagen.Orders(n, nBook, planted, 53)
		var native []cind.Violation
		dNative := timeIt(func() {
			var err error
			native, err = cind.Detect(cdRel, bookRel, psi)
			if err != nil {
				panic(err)
			}
		})
		var sqlTIDs []int
		dSQL := timeIt(func() {
			rn := sqlgen.NewRunner()
			rn.Load("CD", cdRel)
			rn.Load("book", bookRel)
			var err error
			sqlTIDs, err = rn.DetectCIND(psi, "CD", "book")
			if err != nil {
				panic(err)
			}
		})
		if len(native) != len(sqlTIDs) {
			panic(fmt.Sprintf("E9: native %d vs sql %d", len(native), len(sqlTIDs)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(nBook), ms(dNative), ms(dSQL), fmt.Sprint(len(native)),
		})
	}
	return t
}

// E10Reasoning measures consistency and implication analysis time
// against the constraint-set size (TODS 2008 §6 static analyses).
func E10Reasoning(rowCounts []int) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "static analyses vs #pattern rows",
		Columns: []string{"rows", "satisfiable_ms", "implication_ms"},
	}
	for _, rows := range rowCounts {
		set := datagen.CustTableau(rows)
		// Add the tutorial constraints to make the set heterogeneous.
		for _, c := range datagen.CustConstraints().All() {
			set.MustAdd(c)
		}
		var sat bool
		dSat := timeIt(func() {
			sat, _ = cfd.Satisfiable(set)
		})
		if !sat {
			panic("E10: generated set must be satisfiable")
		}
		// Implication of a held member row: the region rule specialized.
		phi := cfd.MustParse("cust([CC='44', AC='131'] -> [CT='edi'])", set.Schema())
		var implied bool
		dImp := timeIt(func() {
			var err error
			implied, err = cfd.Implies(set, phi)
			if err != nil {
				panic(err)
			}
		})
		if !implied {
			panic("E10: member specialization must be implied")
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(rows), ms(dSat), ms(dImp)})
	}
	return t
}

// E11CQA compares certain-answer evaluation against direct evaluation
// on a key-violating relation.
func E11CQA(sizes []int, conflictRate float64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "consistent query answering vs #tuples",
		Columns: []string{"tuples", "conflicts", "direct_ms", "certain_ms", "direct_ans", "certain_ans"},
	}
	for _, n := range sizes {
		r := datagen.Cust(n, 59)
		schema := r.Schema()
		// Key: PN. Inject conflicts by duplicating tuples with the same
		// PN but a corrupted CT.
		dirty := r.Clone()
		nConf := int(conflictRate * float64(n))
		for i := 0; i < nConf; i++ {
			t0 := r.Tuple(i % r.Len()).Clone()
			t0[schema.MustIndex("CT")] = relation.String("conflict-city")
			dirty.MustInsert(t0)
		}
		key := []int{schema.MustIndex("PN")}
		ctIdx := schema.MustIndex("CT")
		ccIdx := schema.MustIndex("CC")
		q := cqa.Query{
			Pred:    func(tp relation.Tuple) bool { return tp[ccIdx].Equal(relation.String("44")) },
			Project: []int{ctIdx},
		}
		// One answerer threads a single partition cache through the
		// query path: Certain partitions once, Conflicts reuses it.
		ans := cqa.NewAnswerer(dirty, key)
		var direct, certain *relation.Relation
		dDirect := timeIt(func() {
			var err error
			direct, err = cqa.Direct(dirty, q)
			if err != nil {
				panic(err)
			}
		})
		dCertain := timeIt(func() {
			var err error
			certain, err = ans.Certain(q)
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(dirty.Len()), fmt.Sprint(len(ans.Conflicts())),
			ms(dDirect), ms(dCertain),
			fmt.Sprint(direct.Len()), fmt.Sprint(certain.Len()),
		})
	}
	return t
}

// E12EndToEnd walks the Semandaq demo loop on one workload and reports
// the latency of each stage.
func E12EndToEnd(n int, rate float64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Semandaq end-to-end (%d tuples, noise %.0f%%)", n, rate*100),
		Columns: []string{"stage", "time_ms", "detail"},
	}
	dirty, truth := dirtyCust(n, rate, 61)
	set := datagen.CustConstraints()
	p, err := semandaq.NewProject("e12", dirty, set)
	if err != nil {
		panic(err)
	}
	var vs []cfd.Violation
	d := timeIt(func() { vs, _ = p.Detect() })
	t.Rows = append(t.Rows, []string{"detect", ms(d), fmt.Sprintf("%d violations", len(vs))})

	var res *repair.Result
	d = timeIt(func() {
		res, err = p.Repair()
		if err != nil {
			panic(err)
		}
	})
	q := noise.Score(res.Changes, truth)
	t.Rows = append(t.Rows, []string{"repair", ms(d),
		fmt.Sprintf("%d changes, P=%.2f R=%.2f", len(res.Changes), q.Precision, q.Recall)})

	if err := p.Accept(); err != nil {
		panic(err)
	}

	// User override: confirm one repaired cell back to a custom value and
	// re-repair.
	if len(res.Changes) > 0 {
		ch := res.Changes[0]
		d = timeIt(func() {
			if err := p.Edit(ch.TID, ch.Attr, ch.From); err != nil {
				panic(err)
			}
			if _, err := p.Repair(); err != nil {
				panic(err)
			}
			if err := p.Accept(); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{"edit+rerepair", ms(d), "1 user override"})
	}

	// Incremental append.
	tup := p.Data().Tuple(0).Clone()
	tup[p.Data().Schema().MustIndex("PN")] = relation.String("e12-fresh")
	tup[p.Data().Schema().MustIndex("STR")] = relation.String("E12 WRONG STREET")
	d = timeIt(func() {
		if _, err := p.Append([]relation.Tuple{tup}); err != nil {
			panic(err)
		}
	})
	t.Rows = append(t.Rows, []string{"inc_append", ms(d), "1 tuple via IncRepair"})

	final, _ := p.Detect()
	t.Rows = append(t.Rows, []string{"final_check", "0.0", fmt.Sprintf("%d violations remain", len(final))})
	return t
}
