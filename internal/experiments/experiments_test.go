package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment functions contain internal cross-checks that panic on
// inconsistency (e.g. SQL vs native disagreement); running them at small
// sizes therefore tests the harness end to end.

func rowsOf(t *testing.T, tb *Table, wantCols int) [][]string {
	t.Helper()
	if len(tb.Columns) != wantCols {
		t.Fatalf("%s: %d columns, want %d", tb.ID, len(tb.Columns), wantCols)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: empty table", tb.ID)
	}
	for _, row := range tb.Rows {
		if len(row) != wantCols {
			t.Fatalf("%s: ragged row %v", tb.ID, row)
		}
	}
	return tb.Rows
}

func TestE1Shape(t *testing.T) {
	tb := E1DetectScale([]int{1000, 2000}, 0.05)
	rows := rowsOf(t, tb, 4)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Violating tuples present at 5% noise.
	if v, _ := strconv.Atoi(rows[0][3]); v == 0 {
		t.Error("expected violations at 5% noise")
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2TableauSize(1500, []int{1, 4})
	rowsOf(t, tb, 4)
}

func TestE3Shape(t *testing.T) {
	tb := E3DetectNoise(1500, []float64{0, 0.05})
	rows := rowsOf(t, tb, 4)
	if rows[0][2] != "0" {
		t.Errorf("zero noise should give zero violations, got %s", rows[0][2])
	}
	if rows[1][2] == "0" {
		t.Error("5% noise should give violations")
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4RepairQuality(1000, []float64{0.05})
	rows := rowsOf(t, tb, 8)
	prec, err := strconv.ParseFloat(rows[0][1], 64)
	if err != nil || prec < 0.5 {
		t.Errorf("precision = %s", rows[0][1])
	}
}

func TestE5E6Shape(t *testing.T) {
	rowsOf(t, E5RepairScale([]int{1000}, 0.05), 4)
	tb := E6IncRepair(2000, []float64{0.05})
	rows := rowsOf(t, tb, 5)
	if !strings.HasSuffix(rows[0][4], "x") {
		t.Errorf("speedup cell = %q", rows[0][4])
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7Discovery([]int{1000}, []int{10, 100}, 1000)
	rows := rowsOf(t, tb, 4)
	// Rule count at support 10 must be >= count at support 100.
	n10, _ := strconv.Atoi(rows[1][2])
	n100, _ := strconv.Atoi(rows[2][2])
	if n10 < n100 {
		t.Errorf("rule count should fall with support: %d < %d", n10, n100)
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8MatchQuality(300, []float64{0.5})
	rows := rowsOf(t, tb, 7)
	rckF1, _ := strconv.ParseFloat(rows[0][3], 64)
	exactF1, _ := strconv.ParseFloat(rows[0][4], 64)
	if rckF1 <= exactF1 {
		t.Errorf("RCK F1 %.3f should beat exact %.3f", rckF1, exactF1)
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9CINDDetect([]int{2000})
	rows := rowsOf(t, tb, 5)
	if rows[0][4] != "20" { // 1% of 2000
		t.Errorf("planted violations = %s, want 20", rows[0][4])
	}
}

func TestE10E11E12Shape(t *testing.T) {
	rowsOf(t, E10Reasoning([]int{10}), 3)
	rowsOf(t, E11CQA([]int{2000}, 0.05), 6)
	tb := E12EndToEnd(1500, 0.03)
	rows := rowsOf(t, tb, 3)
	last := rows[len(rows)-1]
	if !strings.Contains(last[2], "0 violations") {
		t.Errorf("end-to-end should finish clean: %v", last)
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}},
	}
	out := tb.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "long_column") {
		t.Errorf("render = %q", out)
	}
}
