package matching

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// Match is an identified pair of tuples (left TID, right TID) and the
// RCK(s) that produced it.
type Match struct {
	LeftTID  int
	RightTID int
	Keys     []string // names of the RCKs that fired
}

// Matcher identifies tuple pairs across two relations using a set of
// RCKs: a pair matches when at least one key fires. Each key is
// evaluated with partition blocking on its equality pairs, so the
// quadratic comparison only happens within blocks (and only for keys
// with at least one equality pair; keys that are all-similarity fall
// back to a full scan, which the tutorial's derived keys avoid by
// construction). Blocks come from the matcher's PLI cache: keys sharing
// an equality-attribute set share one partition of the right relation,
// and repeated Runs against the same (unchanged) right relation
// partition nothing.
//
// The cache retains the most recent right relation between Runs (its
// PLIs pin it, and stale entries are only evicted on the next Run's
// misses). Drop the Matcher — or call ReleaseBlocks — when that
// relation must be reclaimable before the next Run; callers alternating
// between several right relations get no cross-Run reuse either way.
type Matcher struct {
	left   *relation.Schema
	right  *relation.Schema
	keys   []*RCK
	blocks *relation.IndexCache
}

// NewMatcher builds a matcher over the given keys (all over the same
// schema pair).
func NewMatcher(left, right *relation.Schema, keys []*RCK) (*Matcher, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("matching: matcher needs at least one RCK")
	}
	for _, k := range keys {
		if !k.left.Equal(left) || !k.right.Equal(right) {
			return nil, fmt.Errorf("matching: RCK %s is over a different schema pair", k.name)
		}
	}
	return &Matcher{left: left, right: right, keys: keys, blocks: relation.NewIndexCache()}, nil
}

// ReleaseBlocks drops the cached blocking partitions, releasing the
// matcher's reference to the last Run's right relation. The next Run
// rebuilds its blocks as if the matcher were fresh.
func (m *Matcher) ReleaseBlocks() { m.blocks.Reset() }

// Run returns all matches between l and r, sorted by (LeftTID, RightTID).
func (m *Matcher) Run(l, r *relation.Relation) ([]Match, error) {
	if !l.Schema().Equal(m.left) || !r.Schema().Equal(m.right) {
		return nil, fmt.Errorf("matching: relations do not fit the matcher's schemas")
	}
	type pairKey struct{ lt, rt int }
	hits := map[pairKey][]string{}

	for _, k := range m.keys {
		var eqLeft, eqRight []int
		var simPairs []AttrPair
		for _, p := range k.pairs {
			if p.Cmp.IsEq() {
				eqLeft = append(eqLeft, p.Left)
				eqRight = append(eqRight, p.Right)
			} else {
				simPairs = append(simPairs, p)
			}
		}
		verify := func(lt, rt int) {
			ltup, rtup := l.Tuple(lt), r.Tuple(rt)
			for _, p := range simPairs {
				if !p.Cmp.Compare(ltup[p.Left], rtup[p.Right]) {
					return
				}
			}
			pk := pairKey{lt, rt}
			hits[pk] = append(hits[pk], k.name)
		}
		if len(eqLeft) > 0 {
			// Block on the equality attributes: probe the right
			// relation's cached partition with the left tuple's values.
			pli := m.blocks.Get(r, eqRight)
			for lt, ltup := range l.Tuples() {
				// NULL blocking keys match nothing.
				skip := false
				for _, a := range eqLeft {
					if ltup[a].IsNull() {
						skip = true
						break
					}
				}
				if skip {
					continue
				}
				for _, rt := range pli.Lookup(ltup.Project(eqLeft)) {
					verify(lt, rt)
				}
			}
			continue
		}
		// No equality pair: full cross comparison.
		for lt := 0; lt < l.Len(); lt++ {
			for rt := 0; rt < r.Len(); rt++ {
				verify(lt, rt)
			}
		}
	}

	out := make([]Match, 0, len(hits))
	for pk, keys := range hits {
		sort.Strings(keys)
		out = append(out, Match{LeftTID: pk.lt, RightTID: pk.rt, Keys: keys})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LeftTID != out[j].LeftTID {
			return out[i].LeftTID < out[j].LeftTID
		}
		return out[i].RightTID < out[j].RightTID
	})
	return out, nil
}

// Quality holds precision/recall/F1 of a match result against ground
// truth pairs.
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// Evaluate scores matches against the set of true pairs.
func Evaluate(matches []Match, truth map[[2]int]bool) Quality {
	tp, fp := 0, 0
	seen := map[[2]int]bool{}
	for _, m := range matches {
		key := [2]int{m.LeftTID, m.RightTID}
		if seen[key] {
			continue
		}
		seen[key] = true
		if truth[key] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for key := range truth {
		if !seen[key] {
			fn++
		}
	}
	q := Quality{TruePos: tp, FalsePos: fp, FalseNeg: fn}
	if tp+fp > 0 {
		q.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		q.Recall = float64(tp) / float64(tp+fn)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// String renders the quality triple.
func (q Quality) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		q.Precision, q.Recall, q.F1, q.TruePos, q.FalsePos, q.FalseNeg)
}
