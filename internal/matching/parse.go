package matching

import (
	"fmt"
	"strconv"
	"strings"

	"semandaq/internal/relation"
)

// ParseMD reads a matching rule in the textual syntax
//
//	md c: [ln=ln, addr=addr, fn ~jarowinkler(0.85) fn] -> [fn=fn, ln=ln]
//
// Each atom pairs a left-schema attribute with a right-schema attribute
// under "=" (equality) or "~measure(threshold)" (similarity). The
// "md name:" prefix is optional.
func ParseMD(input string, left, right *relation.Schema) (*MD, error) {
	name, rest, err := stripPrefix(input, "md")
	if err != nil {
		return nil, fmt.Errorf("matching: parsing %q: %w", input, err)
	}
	parts := strings.Split(rest, "->")
	if len(parts) != 2 {
		return nil, fmt.Errorf("matching: parsing %q: expected exactly one ->", input)
	}
	premise, err := parseAtoms(parts[0], left, right)
	if err != nil {
		return nil, fmt.Errorf("matching: parsing %q: %w", input, err)
	}
	conclusion, err := parseAtoms(parts[1], left, right)
	if err != nil {
		return nil, fmt.Errorf("matching: parsing %q: %w", input, err)
	}
	return NewMD(name, left, right, premise, conclusion)
}

// ParseRCK reads a relative candidate key:
//
//	rck rck2: [ln=ln, phn=phn, fn ~jarowinkler(0.85) fn]
func ParseRCK(input string, left, right *relation.Schema) (*RCK, error) {
	name, rest, err := stripPrefix(input, "rck")
	if err != nil {
		return nil, fmt.Errorf("matching: parsing %q: %w", input, err)
	}
	pairs, err := parseAtoms(rest, left, right)
	if err != nil {
		return nil, fmt.Errorf("matching: parsing %q: %w", input, err)
	}
	return NewRCK(name, left, right, pairs)
}

// ParseMDSet parses newline/semicolon-separated rules; lines starting
// with # are comments.
func ParseMDSet(input string, left, right *relation.Schema) ([]*MD, error) {
	var out []*MD
	for _, line := range strings.Split(input, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			md, err := ParseMD(stmt, left, right)
			if err != nil {
				return nil, err
			}
			out = append(out, md)
		}
	}
	return out, nil
}

func stripPrefix(input, keyword string) (name, rest string, err error) {
	s := strings.TrimSpace(input)
	if strings.HasPrefix(s, keyword+" ") {
		s = strings.TrimSpace(s[len(keyword)+1:])
		colon := strings.Index(s, ":")
		if colon < 0 {
			return "", "", fmt.Errorf("expected ':' after %s name", keyword)
		}
		name = strings.TrimSpace(s[:colon])
		s = strings.TrimSpace(s[colon+1:])
	}
	return name, s, nil
}

// parseAtoms parses "[atom, atom, ...]".
func parseAtoms(src string, left, right *relation.Schema) ([]AttrPair, error) {
	s := strings.TrimSpace(src)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("expected [atoms], got %q", src)
	}
	body := s[1 : len(s)-1]
	var out []AttrPair
	for _, atom := range strings.Split(body, ",") {
		atom = strings.TrimSpace(atom)
		if atom == "" {
			continue
		}
		pair, err := parseAtom(atom, left, right)
		if err != nil {
			return nil, err
		}
		out = append(out, pair)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty atom list in %q", src)
	}
	return out, nil
}

// parseAtom parses "lattr=rattr" or "lattr ~measure(th) rattr".
func parseAtom(atom string, left, right *relation.Schema) (AttrPair, error) {
	if tilde := strings.Index(atom, "~"); tilde >= 0 {
		lname := strings.TrimSpace(atom[:tilde])
		rest := strings.TrimSpace(atom[tilde+1:])
		open := strings.Index(rest, "(")
		closeIdx := strings.Index(rest, ")")
		if open < 0 || closeIdx < open {
			return AttrPair{}, fmt.Errorf("similarity atom %q must be attr ~measure(threshold) attr", atom)
		}
		measure := strings.TrimSpace(rest[:open])
		th, err := strconv.ParseFloat(strings.TrimSpace(rest[open+1:closeIdx]), 64)
		if err != nil {
			return AttrPair{}, fmt.Errorf("bad threshold in %q: %w", atom, err)
		}
		rname := strings.TrimSpace(rest[closeIdx+1:])
		cmp, err := Approx(measure, th)
		if err != nil {
			return AttrPair{}, err
		}
		return buildPair(lname, rname, cmp, left, right)
	}
	eq := strings.Index(atom, "=")
	if eq < 0 {
		return AttrPair{}, fmt.Errorf("atom %q must use = or ~measure(th)", atom)
	}
	return buildPair(strings.TrimSpace(atom[:eq]), strings.TrimSpace(atom[eq+1:]), Eq(), left, right)
}

func buildPair(lname, rname string, cmp Comparator, left, right *relation.Schema) (AttrPair, error) {
	li, ok := left.Index(lname)
	if !ok {
		return AttrPair{}, fmt.Errorf("left schema %s has no attribute %q", left.Name(), lname)
	}
	ri, ok := right.Index(rname)
	if !ok {
		return AttrPair{}, fmt.Errorf("right schema %s has no attribute %q", right.Name(), rname)
	}
	return AttrPair{Left: li, Right: ri, Cmp: cmp}, nil
}
