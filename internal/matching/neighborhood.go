package matching

import (
	"sort"

	"semandaq/internal/relation"
)

// SortedNeighborhood implements the classical merge/purge baseline
// (Hernández & Stolfo, SIGMOD 1995) that the tutorial's constraint-based
// matching improves on: sort both relations by a blocking key rendered
// from selected attributes, slide a window of the given size over the
// merged order, and compare record pairs from opposite relations that
// fall inside the same window with the supplied RCK.
//
// It trades recall for speed: true matches whose blocking keys sort far
// apart are never compared — the weakness TestSortedNeighborhoodMisses
// DistantPairs demonstrates and that the RCK matcher's attribute-level
// blocking avoids.
type SortedNeighborhood struct {
	left     *relation.Schema
	right    *relation.Schema
	leftKey  []int
	rightKey []int
	window   int
	key      *RCK
}

// NewSortedNeighborhood builds the matcher. The key attribute lists
// (positionally paired) form the sort key; window is the neighborhood
// size in records (≥ 2).
func NewSortedNeighborhood(left, right *relation.Schema, leftKey, rightKey []string, window int, key *RCK) (*SortedNeighborhood, error) {
	if window < 2 {
		return nil, errWindow
	}
	lk, err := left.Indexes(leftKey...)
	if err != nil {
		return nil, err
	}
	rk, err := right.Indexes(rightKey...)
	if err != nil {
		return nil, err
	}
	if len(lk) == 0 || len(lk) != len(rk) {
		return nil, errKeyLists
	}
	if !key.left.Equal(left) || !key.right.Equal(right) {
		return nil, errKeySchemas
	}
	return &SortedNeighborhood{
		left: left, right: right,
		leftKey: lk, rightKey: rk,
		window: window, key: key,
	}, nil
}

type snErr string

func (e snErr) Error() string { return string(e) }

const (
	errWindow     = snErr("matching: sorted-neighborhood window must be ≥ 2")
	errKeyLists   = snErr("matching: sort key lists must be non-empty and equal length")
	errKeySchemas = snErr("matching: RCK schemas do not match the matcher's")
)

// Run slides the window over the merged sort order and returns the
// matches found, sorted by (LeftTID, RightTID).
func (sn *SortedNeighborhood) Run(l, r *relation.Relation) ([]Match, error) {
	if !l.Schema().Equal(sn.left) || !r.Schema().Equal(sn.right) {
		return nil, errKeySchemas
	}
	type entry struct {
		sortKey string
		tid     int
		isLeft  bool
	}
	entries := make([]entry, 0, l.Len()+r.Len())
	renderKey := func(t relation.Tuple, attrs []int) string {
		out := ""
		for _, a := range attrs {
			out += t[a].String() + "\x00"
		}
		return out
	}
	for tid, t := range l.Tuples() {
		entries = append(entries, entry{renderKey(t, sn.leftKey), tid, true})
	}
	for tid, t := range r.Tuples() {
		entries = append(entries, entry{renderKey(t, sn.rightKey), tid, false})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].sortKey < entries[j].sortKey })

	seen := map[[2]int]bool{}
	var out []Match
	for i := range entries {
		hi := i + sn.window
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, b := entries[i], entries[j]
			if a.isLeft == b.isLeft {
				continue
			}
			lt, rt := a.tid, b.tid
			if !a.isLeft {
				lt, rt = b.tid, a.tid
			}
			pk := [2]int{lt, rt}
			if seen[pk] {
				continue
			}
			if sn.key.Matches(l.Tuple(lt), r.Tuple(rt)) {
				seen[pk] = true
				out = append(out, Match{LeftTID: lt, RightTID: rt, Keys: []string{sn.key.name}})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LeftTID != out[j].LeftTID {
			return out[i].LeftTID < out[j].LeftTID
		}
		return out[i].RightTID < out[j].RightTID
	})
	return out, nil
}
