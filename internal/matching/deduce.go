package matching

import (
	"fmt"
	"sort"
)

// This file implements the deduction of relative candidate keys from
// matching rules (tutorial §4: "from these one can deduce the following,
// referred to as relative candidate keys"), following the reasoning
// machinery of Fan, Jia, Ma, "Reasoning about record matching rules"
// (VLDB 2009, cited as [10] in its unpublished form).
//
// Deduction works over match facts (L, R, strength): attribute pair
// (L, R) is known to match with strength eq (identified / equal) or sim
// (similar). The closure of a fact set under the MDs adds each rule's
// conclusions (with strength eq — identification acts as equality) once
// its premises are entailed:
//
//   - a premise requiring = is entailed only by an eq fact;
//   - a premise requiring ≈ is entailed by an eq or sim fact (equal
//     values are similar at any threshold).
//
// A candidate key (a set of compared pairs) is an RCK for the target Y
// when its closure entails an eq fact for every Y pair.

// strength of a match fact.
type strength uint8

const (
	strengthSim strength = iota + 1
	strengthEq
)

type factKey struct{ left, right int }

type factSet map[factKey]strength

func (fs factSet) add(k factKey, s strength) bool {
	if cur, ok := fs[k]; ok && cur >= s {
		return false
	}
	fs[k] = s
	return true
}

// entails reports whether the set entails a premise pair.
func (fs factSet) entails(p AttrPair) bool {
	s, ok := fs[factKey{p.Left, p.Right}]
	if !ok {
		return false
	}
	if p.Cmp.IsEq() {
		return s == strengthEq
	}
	return true // eq or sim entails ≈
}

// Closure computes the closure of the given assumed pairs under the
// rules: assumed equality pairs enter as eq facts, similarity pairs as
// sim facts; rule conclusions enter as eq facts.
func Closure(assumed []AttrPair, rules []*MD) factSet {
	facts := factSet{}
	for _, p := range assumed {
		s := strengthEq
		if !p.Cmp.IsEq() {
			s = strengthSim
		}
		facts.add(factKey{p.Left, p.Right}, s)
	}
	for changed := true; changed; {
		changed = false
		for _, md := range rules {
			fire := true
			for _, p := range md.premise {
				if !facts.entails(p) {
					fire = false
					break
				}
			}
			if !fire {
				continue
			}
			for _, c := range md.conclusion {
				if facts.add(factKey{c.Left, c.Right}, strengthEq) {
					changed = true
				}
			}
		}
	}
	return facts
}

// Entails reports whether assuming the given pairs lets the rules
// conclude an identification (eq fact) for every target pair.
func Entails(assumed []AttrPair, rules []*MD, target []AttrPair) bool {
	facts := Closure(assumed, rules)
	for _, p := range target {
		s, ok := facts[factKey{p.Left, p.Right}]
		if !ok || s != strengthEq {
			return false
		}
	}
	return true
}

// DeduceOptions configures RCK deduction.
type DeduceOptions struct {
	// MaxPairs bounds the size of derived keys (default 4).
	MaxPairs int
}

// DeduceRCKs derives the minimal relative candidate keys for the target
// pair list from the matching rules: the minimal subsets (up to MaxPairs
// pairs) of the atoms appearing in rule premises whose closure
// identifies every target pair. Minimality is with respect to both the
// pair set and comparator strength: a key is dropped when some other key
// uses a subset of its pairs with comparators at most as strict.
func DeduceRCKs(rules []*MD, target []AttrPair, opts DeduceOptions) ([]*RCK, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("matching: no rules to deduce from")
	}
	if opts.MaxPairs == 0 {
		opts.MaxPairs = 4
	}
	left, right := rules[0].left, rules[0].right
	for _, m := range rules[1:] {
		if !m.left.Equal(left) || !m.right.Equal(right) {
			return nil, fmt.Errorf("matching: rules span different schema pairs")
		}
	}

	// Atom universe: distinct premise pairs across all rules. When the
	// same (L, R) pair appears with both = and ≈, keep both atoms: the
	// weaker one may yield a more widely applicable key.
	type atomKey struct {
		left, right int
		eq          bool
		measure     string
		threshold   float64
	}
	seen := map[atomKey]bool{}
	var atoms []AttrPair
	for _, m := range rules {
		for _, p := range m.premise {
			k := atomKey{p.Left, p.Right, p.Cmp.IsEq(), "", 0}
			if !p.Cmp.IsEq() {
				k.measure = p.Cmp.Measure.Name()
				k.threshold = p.Cmp.Threshold
			}
			if !seen[k] {
				seen[k] = true
				atoms = append(atoms, p)
			}
		}
	}
	sort.Slice(atoms, func(i, j int) bool {
		if atoms[i].Left != atoms[j].Left {
			return atoms[i].Left < atoms[j].Left
		}
		if atoms[i].Right != atoms[j].Right {
			return atoms[i].Right < atoms[j].Right
		}
		return atoms[i].Cmp.IsEq() && !atoms[j].Cmp.IsEq()
	})

	// Level-wise subset search; record minimal hitting sets.
	var found [][]AttrPair
	dominated := func(cand []AttrPair) bool {
		for _, f := range found {
			if pairsSubsume(f, cand) {
				return true
			}
		}
		return false
	}
	var rec func(start int, cur []AttrPair)
	// Enumerate by size: collect per level to guarantee minimality.
	for size := 1; size <= opts.MaxPairs; size++ {
		rec = func(start int, cur []AttrPair) {
			if len(cur) == size {
				if dominated(cur) {
					return
				}
				if Entails(cur, rules, target) {
					found = append(found, append([]AttrPair(nil), cur...))
				}
				return
			}
			for i := start; i < len(atoms); i++ {
				rec(i+1, append(cur, atoms[i]))
			}
		}
		rec(0, nil)
	}

	out := make([]*RCK, 0, len(found))
	for i, pairs := range found {
		k, err := NewRCK(fmt.Sprintf("rck%d", i+1), left, right, pairs)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// pairsSubsume reports whether key a subsumes key b: every pair of a
// appears in b with a comparator at least as strict, so b is redundant
// whenever a is already a key. (Equality is stricter than similarity;
// among similarities a higher threshold is stricter.)
func pairsSubsume(a, b []AttrPair) bool {
	for _, pa := range a {
		ok := false
		for _, pb := range b {
			if pa.Left != pb.Left || pa.Right != pb.Right {
				continue
			}
			switch {
			case pa.Cmp.IsEq() && pb.Cmp.IsEq():
				ok = true
			case !pa.Cmp.IsEq() && pb.Cmp.IsEq():
				ok = true // b demands equality, a only similarity
			case !pa.Cmp.IsEq() && !pb.Cmp.IsEq():
				ok = pa.Cmp.Measure.Name() == pb.Cmp.Measure.Name() && pb.Cmp.Threshold >= pa.Cmp.Threshold
			}
			if ok {
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
