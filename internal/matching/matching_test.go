package matching

import (
	"strings"
	"testing"

	"semandaq/internal/relation"
)

// cardBilling reproduces the schemas of the tutorial's §4 fraud-detection
// example.
func cardBilling(t *testing.T) (card, billing *relation.Schema) {
	t.Helper()
	card, err := relation.StringSchema("card", "cno", "ssn", "fn", "ln", "addr", "phn", "email", "type")
	if err != nil {
		t.Fatal(err)
	}
	billing, err = relation.StringSchema("billing", "cno", "fn", "ln", "addr", "phn", "email", "item", "price")
	if err != nil {
		t.Fatal(err)
	}
	return card, billing
}

// pair builds an AttrPair by attribute names.
func pair(t *testing.T, l, r *relation.Schema, ln, rn string, cmp Comparator) AttrPair {
	t.Helper()
	li, ok := l.Index(ln)
	if !ok {
		t.Fatalf("no attr %s", ln)
	}
	ri, ok := r.Index(rn)
	if !ok {
		t.Fatalf("no attr %s", rn)
	}
	return AttrPair{Left: li, Right: ri, Cmp: cmp}
}

// tutorialRules builds the three matching rules of §4:
//
//	(a) phn = phn'            -> addr ⇌ addr'
//	(b) email = email'        -> fn ⇌ fn', ln ⇌ ln'
//	(c) ln = ln', addr = addr', fn ≈ fn' -> Y ⇌ Y'
func tutorialRules(t *testing.T, card, billing *relation.Schema) ([]*MD, []AttrPair) {
	t.Helper()
	y := []AttrPair{
		pair(t, card, billing, "fn", "fn", Eq()),
		pair(t, card, billing, "ln", "ln", Eq()),
		pair(t, card, billing, "addr", "addr", Eq()),
		pair(t, card, billing, "phn", "phn", Eq()),
		pair(t, card, billing, "email", "email", Eq()),
	}
	a, err := NewMD("a", card, billing,
		[]AttrPair{pair(t, card, billing, "phn", "phn", Eq())},
		[]AttrPair{pair(t, card, billing, "addr", "addr", Eq())})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMD("b", card, billing,
		[]AttrPair{pair(t, card, billing, "email", "email", Eq())},
		[]AttrPair{
			pair(t, card, billing, "fn", "fn", Eq()),
			pair(t, card, billing, "ln", "ln", Eq()),
		})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMD("c", card, billing,
		[]AttrPair{
			pair(t, card, billing, "ln", "ln", Eq()),
			pair(t, card, billing, "addr", "addr", Eq()),
			pair(t, card, billing, "fn", "fn", MustApprox("jarowinkler", 0.85)),
		},
		y)
	if err != nil {
		t.Fatal(err)
	}
	return []*MD{a, b, c}, y
}

func TestClosureAndEntails(t *testing.T) {
	card, billing := cardBilling(t)
	rules, y := tutorialRules(t, card, billing)

	// email= and addr= should entail the full Y identification (rck1).
	assumed := []AttrPair{
		pair(t, card, billing, "email", "email", Eq()),
		pair(t, card, billing, "addr", "addr", Eq()),
	}
	if !Entails(assumed, rules, y) {
		t.Error("rck1 premise {email=, addr=} should entail Y")
	}

	// ln=, phn=, fn≈ entails Y (rck2).
	assumed2 := []AttrPair{
		pair(t, card, billing, "ln", "ln", Eq()),
		pair(t, card, billing, "phn", "phn", Eq()),
		pair(t, card, billing, "fn", "fn", MustApprox("jarowinkler", 0.85)),
	}
	if !Entails(assumed2, rules, y) {
		t.Error("rck2 premise {ln=, phn=, fn≈} should entail Y")
	}

	// fn similar alone entails nothing.
	if Entails([]AttrPair{pair(t, card, billing, "fn", "fn", MustApprox("jarowinkler", 0.85))}, rules, y) {
		t.Error("fn≈ alone must not entail Y")
	}

	// A ≈ premise is satisfied by an eq fact but an = premise is NOT
	// satisfied by a sim fact.
	simOnly := []AttrPair{
		pair(t, card, billing, "ln", "ln", MustApprox("jarowinkler", 0.85)),
		pair(t, card, billing, "addr", "addr", Eq()),
		pair(t, card, billing, "fn", "fn", MustApprox("jarowinkler", 0.85)),
	}
	if Entails(simOnly, rules, y) {
		t.Error("ln≈ must not satisfy rule (c)'s ln= premise")
	}
}

func TestDeduceRCKsFindsTutorialKeys(t *testing.T) {
	card, billing := cardBilling(t)
	rules, y := tutorialRules(t, card, billing)
	keys, err := DeduceRCKs(rules, y, DeduceOptions{MaxPairs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for _, k := range keys {
		rendered = append(rendered, k.String())
	}
	all := strings.Join(rendered, "\n")

	// rck1: ([email, addr] ‖ [=, =]).
	if !hasKeyWith(keys, map[string]bool{"email": true, "addr": true}, 2) {
		t.Errorf("rck1 {email, addr} not derived:\n%s", all)
	}
	// rck2: ([ln, phn, fn] ‖ [=, =, ≈]).
	if !hasKeyWith(keys, map[string]bool{"ln": true, "phn": true, "fn": true}, 3) {
		t.Errorf("rck2 {ln, phn, fn} not derived:\n%s", all)
	}
	// Rule (c) itself is a key: {ln, addr, fn}.
	if !hasKeyWith(keys, map[string]bool{"ln": true, "addr": true, "fn": true}, 3) {
		t.Errorf("direct key {ln, addr, fn} not derived:\n%s", all)
	}
	// Minimality: no derived key may strictly contain another derived
	// key's pair set.
	for i, a := range keys {
		for j, b := range keys {
			if i == j {
				continue
			}
			if len(a.Pairs()) < len(b.Pairs()) && pairsSubsume(a.Pairs(), b.Pairs()) {
				t.Errorf("key %s is subsumed by %s but both derived", b, a)
			}
		}
	}
}

func hasKeyWith(keys []*RCK, attrs map[string]bool, size int) bool {
	for _, k := range keys {
		if len(k.Pairs()) != size {
			continue
		}
		match := true
		for _, p := range k.Pairs() {
			if !attrs[k.left.Attr(p.Left).Name] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestComparators(t *testing.T) {
	eq := Eq()
	if !eq.Compare(relation.String("x"), relation.String("x")) {
		t.Error("eq should match identical")
	}
	if eq.Compare(relation.Null(), relation.Null()) {
		t.Error("NULL matches nothing")
	}
	ap := MustApprox("levenshtein", 0.8)
	if !ap.Compare(relation.String("michael"), relation.String("michaol")) {
		t.Error("one-typo names should be similar at 0.8")
	}
	if ap.Compare(relation.String("michael"), relation.String("zzz")) {
		t.Error("unrelated strings should not be similar")
	}
	if _, err := Approx("nope", 0.5); err == nil {
		t.Error("unknown measure should fail")
	}
	if _, err := Approx("levenshtein", 1.5); err == nil {
		t.Error("threshold out of range should fail")
	}
}

func TestMatcherTutorialScenario(t *testing.T) {
	cardS, billingS := cardBilling(t)
	rules, y := tutorialRules(t, cardS, billingS)
	keys, err := DeduceRCKs(rules, y, DeduceOptions{MaxPairs: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(cardS, billingS, keys)
	if err != nil {
		t.Fatal(err)
	}

	card := relation.New(cardS)
	billing := relation.New(billingS)
	st := func(vals ...string) relation.Tuple {
		tp := make(relation.Tuple, len(vals))
		for i, v := range vals {
			tp[i] = relation.String(v)
		}
		return tp
	}
	// Card 0 and billing 0 are the same person: addresses radically
	// differ ("10 Oak St" vs "Oak Street 10"), but ln+phn agree and fn
	// has a typo — exactly the case rck2 is built for.
	card.MustInsert(st("c1", "s1", "michael", "smith", "10 oak st", "555-0100", "m@x.com", "visa"))
	billing.MustInsert(st("c9", "michaol", "smith", "oak street 10", "555-0100", "other@y.com", "book", "9.99"))
	// Card 1 and billing 1 share email and addr (rck1).
	card.MustInsert(st("c2", "s2", "jane", "doe", "5 king rd", "555-0200", "jane@z.org", "amex"))
	billing.MustInsert(st("c8", "janet", "dough", "5 king rd", "999-9999", "jane@z.org", "cd", "4.99"))
	// Card 2 matches nothing.
	card.MustInsert(st("c3", "s3", "bob", "jones", "1 elm ave", "555-0300", "bob@w.net", "visa"))
	billing.MustInsert(st("c7", "alice", "green", "2 pine ln", "555-0400", "al@g.com", "dvd", "19.99"))

	matches, err := m.Run(card, billing)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[[2]int]bool{{0, 0}: true, {1, 1}: true}
	q := Evaluate(matches, truth)
	if q.TruePos != 2 || q.FalsePos != 0 || q.FalseNeg != 0 {
		t.Fatalf("quality = %s; matches = %v", q, matches)
	}
	if q.F1 != 1 {
		t.Errorf("F1 = %f", q.F1)
	}

	// A key-equality-only matcher (exact equality on every Y attribute)
	// misses both true matches — the tutorial's motivation for RCKs.
	exactKey, err := NewRCK("exact", cardS, billingS, y)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewMatcher(cardS, billingS, []*RCK{exactKey})
	if err != nil {
		t.Fatal(err)
	}
	exactMatches, err := exact.Run(card, billing)
	if err != nil {
		t.Fatal(err)
	}
	qe := Evaluate(exactMatches, truth)
	if qe.Recall >= q.Recall {
		t.Errorf("exact matcher should have lower recall: exact %s vs rck %s", qe, q)
	}
}

func TestMatcherBlockingEqualsFullScan(t *testing.T) {
	// Property: a key evaluated with hash blocking produces exactly the
	// same matches as brute force.
	cardS, billingS := cardBilling(t)
	key, err := NewRCK("k", cardS, billingS, []AttrPair{
		pair(t, cardS, billingS, "ln", "ln", Eq()),
		pair(t, cardS, billingS, "fn", "fn", MustApprox("levenshtein", 0.7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	card := relation.New(cardS)
	billing := relation.New(billingS)
	names := []struct{ fn, ln string }{
		{"anna", "lee"}, {"anne", "lee"}, {"bob", "lee"}, {"anna", "ray"}, {"hana", "ray"},
	}
	for _, n := range names {
		tp := make(relation.Tuple, cardS.Arity())
		for i := range tp {
			tp[i] = relation.String("x")
		}
		tp[cardS.MustIndex("fn")] = relation.String(n.fn)
		tp[cardS.MustIndex("ln")] = relation.String(n.ln)
		card.MustInsert(tp)
		bp := make(relation.Tuple, billingS.Arity())
		for i := range bp {
			bp[i] = relation.String("y")
		}
		bp[billingS.MustIndex("fn")] = relation.String(n.fn)
		bp[billingS.MustIndex("ln")] = relation.String(n.ln)
		billing.MustInsert(bp)
	}
	m, err := NewMatcher(cardS, billingS, []*RCK{key})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := m.Run(card, billing)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	var brute [][2]int
	for lt := 0; lt < card.Len(); lt++ {
		for rt := 0; rt < billing.Len(); rt++ {
			if key.Matches(card.Tuple(lt), billing.Tuple(rt)) {
				brute = append(brute, [2]int{lt, rt})
			}
		}
	}
	if len(matches) != len(brute) {
		t.Fatalf("blocking %d matches vs brute %d", len(matches), len(brute))
	}
	for i, b := range brute {
		if matches[i].LeftTID != b[0] || matches[i].RightTID != b[1] {
			t.Fatalf("match %d: %v vs %v", i, matches[i], b)
		}
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	q := Evaluate(nil, map[[2]int]bool{})
	if q.Precision != 0 || q.Recall != 0 || q.F1 != 0 {
		t.Errorf("empty eval = %s", q)
	}
	q = Evaluate([]Match{{LeftTID: 0, RightTID: 0}}, map[[2]int]bool{{0, 0}: true})
	if q.F1 != 1 {
		t.Errorf("perfect eval = %s", q)
	}
}

func TestValidationErrors(t *testing.T) {
	cardS, billingS := cardBilling(t)
	if _, err := NewMD("x", cardS, billingS, nil, nil); err == nil {
		t.Error("empty MD should fail")
	}
	if _, err := NewRCK("x", cardS, billingS, nil); err == nil {
		t.Error("empty RCK should fail")
	}
	if _, err := NewRCK("x", cardS, billingS, []AttrPair{{Left: 99, Right: 0}}); err == nil {
		t.Error("out-of-range attr should fail")
	}
	if _, err := NewMatcher(cardS, billingS, nil); err == nil {
		t.Error("matcher without keys should fail")
	}
	if _, err := DeduceRCKs(nil, nil, DeduceOptions{}); err == nil {
		t.Error("deduction without rules should fail")
	}
}
