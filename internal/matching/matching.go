// Package matching implements constraint-based object identification as
// presented in §4 of the tutorial: matching rules (matching
// dependencies, MDs), relative candidate keys (RCKs), the deduction of
// RCKs from matching rules, and an RCK-driven record matcher.
//
// The running example is the tutorial's fraud-detection scenario over
// card(c#, ssn, fn, ln, addr, phn, email, type) and billing(c#, fn, ln,
// addr, phn, email, item, price): if t[c#] = t'[c#] then t[Y] and t'[Y]
// must refer to the same holder, Y = [fn, ln, addr, phn, email]. Rules
// such as "if phn matches then addr matches" and "if ln, addr are
// identical and fn is similar then Y matches" let the system DEDUCE
// relative candidate keys like
//
//	rck2: ([ln, phn, fn], [ln, phn, fn] ‖ [=, =, ≈])
//
// that identify true matches even when individual attributes disagree.
//
// In contrast to traditional candidate keys, RCKs are defined with both
// equality and similarity, across two relations rather than on one.
package matching

import (
	"fmt"
	"strings"

	"semandaq/internal/relation"
	"semandaq/internal/similarity"
)

// Comparator states how two attribute values are compared: strict
// equality (Measure == nil) or a similarity measure with a threshold.
type Comparator struct {
	Measure   similarity.Measure // nil means equality (=)
	Threshold float64            // minimum similarity for ≈ comparators
}

// Eq is the equality comparator (=).
func Eq() Comparator { return Comparator{} }

// Approx builds a similarity comparator (≈) from a registered measure
// name and threshold.
func Approx(measure string, threshold float64) (Comparator, error) {
	m, ok := similarity.Lookup(measure)
	if !ok {
		return Comparator{}, fmt.Errorf("matching: unknown similarity measure %q", measure)
	}
	if threshold <= 0 || threshold > 1 {
		return Comparator{}, fmt.Errorf("matching: threshold %f out of (0, 1]", threshold)
	}
	return Comparator{Measure: m, Threshold: threshold}, nil
}

// MustApprox is Approx panicking on error.
func MustApprox(measure string, threshold float64) Comparator {
	c, err := Approx(measure, threshold)
	if err != nil {
		panic(err)
	}
	return c
}

// IsEq reports whether the comparator is strict equality.
func (c Comparator) IsEq() bool { return c.Measure == nil }

// Compare applies the comparator to two values. NULL matches nothing.
func (c Comparator) Compare(a, b relation.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	if c.Measure == nil {
		return a.Equal(b)
	}
	// Similarity applies to the string rendering; non-string values
	// compare by equality underneath the measure.
	return c.Measure.Sim(a.String(), b.String()) >= c.Threshold
}

// String renders the comparator as "=" or "≈measure(θ)".
func (c Comparator) String() string {
	if c.Measure == nil {
		return "="
	}
	return fmt.Sprintf("≈%s(%.2f)", c.Measure.Name(), c.Threshold)
}

// AttrPair is a compared attribute pair across the two relations.
type AttrPair struct {
	Left  int // position in the left schema
	Right int // position in the right schema
	Cmp   Comparator
}

// MD is a matching dependency (matching rule): when every premise pair
// matches, the conclusion pairs are identified (refer to the same
// real-world value).
type MD struct {
	name       string
	left       *relation.Schema
	right      *relation.Schema
	premise    []AttrPair
	conclusion []AttrPair
}

// NewMD constructs a matching rule. Premise and conclusion must be
// non-empty; conclusion comparators are ignored (identification acts as
// equality in deduction).
func NewMD(name string, left, right *relation.Schema, premise, conclusion []AttrPair) (*MD, error) {
	if len(premise) == 0 || len(conclusion) == 0 {
		return nil, fmt.Errorf("matching: MD %s needs non-empty premise and conclusion", name)
	}
	for _, p := range append(append([]AttrPair(nil), premise...), conclusion...) {
		if p.Left < 0 || p.Left >= left.Arity() || p.Right < 0 || p.Right >= right.Arity() {
			return nil, fmt.Errorf("matching: MD %s references attribute out of range", name)
		}
	}
	return &MD{name: name, left: left, right: right,
		premise: append([]AttrPair(nil), premise...), conclusion: append([]AttrPair(nil), conclusion...)}, nil
}

// Name returns the rule's identifier.
func (m *MD) Name() string { return m.name }

// Premise returns the rule's premise pairs.
func (m *MD) Premise() []AttrPair { return append([]AttrPair(nil), m.premise...) }

// Conclusion returns the rule's conclusion pairs.
func (m *MD) Conclusion() []AttrPair { return append([]AttrPair(nil), m.conclusion...) }

// String renders the MD.
func (m *MD) String() string {
	var b strings.Builder
	if m.name != "" {
		b.WriteString("md ")
		b.WriteString(m.name)
		b.WriteString(": ")
	}
	writePairs(&b, m.left, m.right, m.premise)
	b.WriteString(" -> ")
	writePairs(&b, m.left, m.right, m.conclusion)
	return b.String()
}

func writePairs(b *strings.Builder, left, right *relation.Schema, pairs []AttrPair) {
	b.WriteByte('[')
	for i, p := range pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s%s%s", left.Attr(p.Left).Name, p.Cmp.String(), right.Attr(p.Right).Name)
	}
	b.WriteByte(']')
}

// RCK is a relative candidate key: a list of compared attribute pairs
// sufficient to conclude that the target attribute lists match.
type RCK struct {
	name  string
	left  *relation.Schema
	right *relation.Schema
	pairs []AttrPair
}

// NewRCK constructs an RCK.
func NewRCK(name string, left, right *relation.Schema, pairs []AttrPair) (*RCK, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("matching: RCK %s needs at least one pair", name)
	}
	for _, p := range pairs {
		if p.Left < 0 || p.Left >= left.Arity() || p.Right < 0 || p.Right >= right.Arity() {
			return nil, fmt.Errorf("matching: RCK %s references attribute out of range", name)
		}
	}
	return &RCK{name: name, left: left, right: right, pairs: append([]AttrPair(nil), pairs...)}, nil
}

// Name returns the key's identifier.
func (k *RCK) Name() string { return k.name }

// Pairs returns the compared attribute pairs.
func (k *RCK) Pairs() []AttrPair { return append([]AttrPair(nil), k.pairs...) }

// Matches reports whether two tuples match under the RCK.
func (k *RCK) Matches(l, r relation.Tuple) bool {
	for _, p := range k.pairs {
		if !p.Cmp.Compare(l[p.Left], r[p.Right]) {
			return false
		}
	}
	return true
}

// String renders the RCK in the tutorial's notation, e.g.
// ([ln, phn, fn], [ln, phn, fn] ‖ [=, =, ≈levenshtein(0.80)]).
func (k *RCK) String() string {
	var b strings.Builder
	if k.name != "" {
		b.WriteString(k.name)
		b.WriteString(": ")
	}
	writeSide := func(schema *relation.Schema, side func(AttrPair) int) {
		b.WriteByte('[')
		for i, p := range k.pairs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(schema.Attr(side(p)).Name)
		}
		b.WriteByte(']')
	}
	b.WriteByte('(')
	writeSide(k.left, func(p AttrPair) int { return p.Left })
	b.WriteString(", ")
	writeSide(k.right, func(p AttrPair) int { return p.Right })
	b.WriteString(" ‖ [")
	for i, p := range k.pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Cmp.String())
	}
	b.WriteString("])")
	return b.String()
}
