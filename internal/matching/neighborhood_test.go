package matching

import (
	"testing"

	"semandaq/internal/relation"
)

func snFixture(t *testing.T) (l, r *relation.Schema, key *RCK) {
	t.Helper()
	l, r = parseSchemas(t)
	var err error
	key, err = ParseRCK("rck k: [ln=ln, fn ~jarowinkler(0.85) fn]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	return l, r, key
}

func snTuple(s *relation.Schema, fn, ln string) relation.Tuple {
	tp := make(relation.Tuple, s.Arity())
	for i := range tp {
		tp[i] = relation.String("x")
	}
	tp[s.MustIndex("fn")] = relation.String(fn)
	tp[s.MustIndex("ln")] = relation.String(ln)
	return tp
}

func TestSortedNeighborhoodFindsAdjacent(t *testing.T) {
	lS, rS, key := snFixture(t)
	sn, err := NewSortedNeighborhood(lS, rS, []string{"ln", "fn"}, []string{"ln", "fn"}, 4, key)
	if err != nil {
		t.Fatal(err)
	}
	l := relation.New(lS)
	r := relation.New(rS)
	l.MustInsert(snTuple(lS, "anna", "lee"))
	l.MustInsert(snTuple(lS, "bob", "zimmer"))
	r.MustInsert(snTuple(rS, "annä", "lee")) // similar fn, same ln → adjacent in sort
	r.MustInsert(snTuple(rS, "carl", "moss"))
	matches, err := sn.Run(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].LeftTID != 0 || matches[0].RightTID != 0 {
		t.Fatalf("matches = %v", matches)
	}
}

func TestSortedNeighborhoodMissesDistantPairs(t *testing.T) {
	// The window limitation: a true match whose sort keys diverge (typo
	// in the FIRST sort attribute) is missed — exactly the weakness the
	// tutorial's RCK matcher avoids with attribute-level blocking.
	lS, rS, key := snFixture(t)
	sn, err := NewSortedNeighborhood(lS, rS, []string{"ln"}, []string{"ln"}, 2, key)
	if err != nil {
		t.Fatal(err)
	}
	l := relation.New(lS)
	r := relation.New(rS)
	l.MustInsert(snTuple(lS, "anna", "aaaa"))
	// Many intervening records push the pair out of any width-2 window.
	for i := 0; i < 10; i++ {
		r.MustInsert(snTuple(rS, "pad", "m"+string(rune('a'+i))))
	}
	r.MustInsert(snTuple(rS, "anna", "aaaa"))
	matchesNarrow, err := sn.Run(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// With the pair adjacent in sort order (same ln), even window 2 finds
	// it — so this asserts the mechanics rather than a miss; now make the
	// left ln sort far away:
	l2 := relation.New(lS)
	l2.MustInsert(snTuple(lS, "anna", "zzzz")) // ln differs → RCK can't match anyway
	_ = matchesNarrow

	// Construct a real miss: same ln (RCK would match) but sort key on fn
	// puts them far apart.
	snFn, err := NewSortedNeighborhood(lS, rS, []string{"fn"}, []string{"fn"}, 2, key)
	if err != nil {
		t.Fatal(err)
	}
	l3 := relation.New(lS)
	r3 := relation.New(rS)
	l3.MustInsert(snTuple(lS, "aaron", "smith"))
	for i := 0; i < 8; i++ {
		r3.MustInsert(snTuple(rS, "b-pad-"+string(rune('a'+i)), "other"))
	}
	r3.MustInsert(snTuple(rS, "aaton", "smith")) // ≈ aaron but sorts after the pads? No: "aaton" > "aaron" but < "b-pad".
	// window 2 over merged order: "aaron"(L), "aaton"(R) are adjacent →
	// found; enlarge the gap by padding BETWEEN them.
	r3 = relation.New(rS)
	for i := 0; i < 8; i++ {
		r3.MustInsert(snTuple(rS, "aasolid"+string(rune('a'+i)), "other"))
	}
	r3.MustInsert(snTuple(rS, "aaton", "smith"))
	got, err := snFn.Run(l3, r3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("window 2 should miss the separated pair, got %v", got)
	}
	// A full-attribute RCK matcher (blocking on ln) finds it.
	m, err := NewMatcher(lS, rS, []*RCK{key})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Run(l3, r3)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 {
		t.Fatalf("RCK matcher should find the pair, got %v", full)
	}
}

func TestSortedNeighborhoodValidation(t *testing.T) {
	lS, rS, key := snFixture(t)
	if _, err := NewSortedNeighborhood(lS, rS, []string{"ln"}, []string{"ln"}, 1, key); err == nil {
		t.Error("window < 2 should fail")
	}
	if _, err := NewSortedNeighborhood(lS, rS, nil, nil, 3, key); err == nil {
		t.Error("empty key lists should fail")
	}
	if _, err := NewSortedNeighborhood(lS, rS, []string{"nope"}, []string{"ln"}, 3, key); err == nil {
		t.Error("unknown attribute should fail")
	}
}
