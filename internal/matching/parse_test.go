package matching

import (
	"testing"

	"semandaq/internal/relation"
)

func parseSchemas(t *testing.T) (l, r *relation.Schema) {
	t.Helper()
	l, _ = relation.StringSchema("card", "fn", "ln", "addr", "phn", "email")
	r, _ = relation.StringSchema("billing", "fn", "ln", "addr", "phn", "email")
	return l, r
}

func TestParseMD(t *testing.T) {
	l, r := parseSchemas(t)
	md, err := ParseMD("md a: [phn=phn] -> [addr=addr]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if md.Name() != "a" || len(md.Premise()) != 1 || len(md.Conclusion()) != 1 {
		t.Fatalf("md = %s", md)
	}
	if !md.Premise()[0].Cmp.IsEq() {
		t.Error("premise should be equality")
	}
}

func TestParseMDSimilarity(t *testing.T) {
	l, r := parseSchemas(t)
	md, err := ParseMD("md c: [ln=ln, addr=addr, fn ~jarowinkler(0.85) fn] -> [fn=fn, ln=ln, addr=addr, phn=phn, email=email]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	prem := md.Premise()
	if len(prem) != 3 || len(md.Conclusion()) != 5 {
		t.Fatalf("shape: %d -> %d", len(prem), len(md.Conclusion()))
	}
	simAtom := prem[2]
	if simAtom.Cmp.IsEq() || simAtom.Cmp.Measure.Name() != "jarowinkler" || simAtom.Cmp.Threshold != 0.85 {
		t.Errorf("similarity atom = %v", simAtom.Cmp)
	}
	// It must behave identically to the programmatic comparator.
	if !simAtom.Cmp.Compare(relation.String("michael"), relation.String("michaol")) {
		t.Error("parsed comparator should accept a one-typo name")
	}
}

func TestParseRCK(t *testing.T) {
	l, r := parseSchemas(t)
	k, err := ParseRCK("rck rck2: [ln=ln, phn=phn, fn ~jarowinkler(0.85) fn]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "rck2" || len(k.Pairs()) != 3 {
		t.Fatalf("rck = %s", k)
	}
	// Anonymous form.
	k2, err := ParseRCK("[email=email, addr=addr]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Name() != "" || len(k2.Pairs()) != 2 {
		t.Fatalf("rck2 = %s", k2)
	}
}

func TestParseMDSet(t *testing.T) {
	l, r := parseSchemas(t)
	src := `
# the three rules of tutorial §4
md a: [phn=phn] -> [addr=addr]
md b: [email=email] -> [fn=fn, ln=ln]
md c: [ln=ln, addr=addr, fn ~jarowinkler(0.85) fn] -> [fn=fn, ln=ln, addr=addr, phn=phn, email=email]
`
	rules, err := ParseMDSet(src, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	// The parsed rules must drive deduction exactly like the programmatic
	// ones: {email=, addr=} entails Y.
	y := rules[2].Conclusion()
	assumed, err := parseAtoms("[email=email, addr=addr]", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !Entails(assumed, rules, y) {
		t.Error("parsed rules should entail Y from {email=, addr=}")
	}
}

func TestParseErrors(t *testing.T) {
	l, r := parseSchemas(t)
	bad := []string{
		"",
		"md x [a=a] -> [b=b]",             // missing colon
		"[phn=phn]",                       // MD without ->
		"md x: [phn=phn] -> []",           // empty conclusion
		"md x: [nope=phn] -> [addr=addr]", // unknown attr
		"md x: [phn~phn] -> [addr=addr]",  // malformed similarity
		"md x: [fn ~nosuch(0.5) fn] -> [addr=addr]",
		"md x: [fn ~jaro(abc) fn] -> [addr=addr]",
		"md x: [phn phn] -> [addr=addr]",
	}
	for _, in := range bad {
		if _, err := ParseMD(in, l, r); err == nil {
			t.Errorf("ParseMD(%q) should fail", in)
		}
	}
	if _, err := ParseRCK("rck x: []", l, r); err == nil {
		t.Error("empty RCK should fail")
	}
}
