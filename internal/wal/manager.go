package wal

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"semandaq/internal/relation"
)

// DatasetSnapshot is one dataset's durable checkpoint: everything
// needed to reconstruct its session without replaying history — the
// relation's columnar state, the installed constraint/DC sets in their
// canonical parseable text form, the user-confirmed cells, and the WAL
// sequence watermark the capture is consistent with (records with
// seq <= Seq for this dataset are already reflected).
type DatasetSnapshot struct {
	Seq       uint64
	Schema    *relation.Schema
	Data      *relation.Relation
	CFDText   string
	DCText    string
	Confirmed [][2]int
}

// Applier consumes recovered state: every snapshot first, then the WAL
// tail records in sequence order. Implemented by engine.Engine (single
// process) and engine.Coordinator (cluster registry; snapshot/cell
// records never occur in its log). DatasetArity resolves the schema
// arity row decoding needs.
type Applier interface {
	ApplySnapshot(name string, snap *DatasetSnapshot) error
	ApplyRegister(name string, schema *relation.Schema, rows []relation.Tuple) error
	ApplyAppend(name string, rows []relation.Tuple) error
	ApplyCells(name string, cells []CellWrite, confirm bool) error
	ApplyConfirm(name string, tid, attr int) error
	ApplyConstraints(name, text string) error
	ApplyDCs(name, text string) error
	ApplyDrop(name string) error
	ApplyAppendRaw(name string, rows [][]string) error
	DatasetArity(name string) (int, bool)
}

// CheckpointSource yields coherent dataset captures for Checkpoint.
// CaptureDataset must read the dataset state and the log watermark
// (the seq callback) under the same exclusion that mutations log
// under, and return false if the dataset vanished meanwhile.
type CheckpointSource interface {
	DatasetNames() []string
	CaptureDataset(name string, seq func() uint64) (*DatasetSnapshot, bool)
}

// Manager owns a data directory: the WAL (wal.log), per-dataset
// snapshot files (<hex(name)>.snap) and the cluster registry mirror
// (registry.json). It is the engine's Journal implementation and the
// recovery driver.
type Manager struct {
	dir string
	log *Log

	mu      sync.Mutex
	snapSeq map[string]uint64 // last checkpointed watermark per dataset
	dropped map[string]uint64 // seq of the latest Drop record per dataset
	pending []Record          // scanned tail, consumed by Recover
}

// OpenManager opens (creating if needed) the data directory and its
// WAL. Call Recover next to load snapshots and replay the tail, then
// attach the manager as the engine's journal.
func OpenManager(dir string, policy SyncPolicy) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	log, recs, err := Open(filepath.Join(dir, "wal.log"), policy)
	if err != nil {
		return nil, err
	}
	return &Manager{
		dir:     dir,
		log:     log,
		snapSeq: make(map[string]uint64),
		dropped: make(map[string]uint64),
		pending: recs,
	}, nil
}

// Dir returns the manager's data directory.
func (m *Manager) Dir() string { return m.dir }

// Close syncs and closes the WAL.
func (m *Manager) Close() error { return m.log.Close() }

// Seq returns the WAL's last sequence number.
func (m *Manager) Seq() uint64 { return m.log.Seq() }

// LogSize returns the WAL file size in bytes (tail length proxy).
func (m *Manager) LogSize() int64 { return m.log.Size() }

// Sync forces buffered WAL records to stable storage.
func (m *Manager) Sync() error { return m.log.Sync() }

// Journal methods — one per mutating operation. Each must be called
// while holding the exclusion that serializes mutations of the named
// dataset, AFTER the in-memory mutation succeeded and BEFORE the write
// is acked; an error means the record is not in the log and the caller
// must roll its state back.

func (m *Manager) LogRegister(name string, schema *relation.Schema, rows []relation.Tuple) error {
	_, err := m.log.Append(RecRegister, name, EncodeRegister(schema, rows))
	if err == nil {
		// A re-registration supersedes any pending drop: compaction must
		// treat the name's history by snapshot watermark again, not sweep
		// it as a dropped dataset's.
		m.mu.Lock()
		delete(m.dropped, name)
		m.mu.Unlock()
	}
	return err
}

func (m *Manager) LogAppend(name string, rows []relation.Tuple) error {
	_, err := m.log.Append(RecAppend, name, EncodeRows(rows))
	return err
}

func (m *Manager) LogCells(name string, cells []CellWrite, confirm bool) error {
	_, err := m.log.Append(RecCells, name, EncodeCells(cells, confirm))
	return err
}

func (m *Manager) LogConfirm(name string, tid, attr int) error {
	_, err := m.log.Append(RecConfirm, name, EncodeConfirm(tid, attr))
	return err
}

func (m *Manager) LogConstraints(name, text string) error {
	_, err := m.log.Append(RecConstraints, name, []byte(text))
	return err
}

func (m *Manager) LogDCs(name, text string) error {
	_, err := m.log.Append(RecDCs, name, []byte(text))
	return err
}

func (m *Manager) LogDrop(name string) error {
	seq, err := m.log.Append(RecDrop, name, nil)
	if err == nil {
		m.mu.Lock()
		m.dropped[name] = seq
		delete(m.snapSeq, name)
		m.mu.Unlock()
	}
	return err
}

func (m *Manager) LogAppendRaw(name string, rows [][]string) error {
	_, err := m.log.Append(RecAppendRaw, name, EncodeRawRows(rows))
	return err
}

// Recover loads every snapshot file, replays the WAL tail records not
// covered by a snapshot watermark, and advances the log's sequence
// counter past every watermark so fresh records never collide with
// checkpointed history. The applier must not journal during replay
// (attach the journal after Recover returns). Returns the number of
// snapshots loaded and records replayed.
func (m *Manager) Recover(app Applier) (snaps, replayed int, err error) {
	names, err := filepath.Glob(filepath.Join(m.dir, "*.snap"))
	if err != nil {
		return 0, 0, err
	}
	maxSeq := uint64(0)
	for _, path := range names {
		name, snap, err := readSnapshotFile(path)
		if err != nil {
			return snaps, replayed, fmt.Errorf("wal: snapshot %s: %v", filepath.Base(path), err)
		}
		if err := app.ApplySnapshot(name, snap); err != nil {
			return snaps, replayed, fmt.Errorf("wal: applying snapshot %q: %v", name, err)
		}
		m.mu.Lock()
		m.snapSeq[name] = snap.Seq
		m.mu.Unlock()
		if snap.Seq > maxSeq {
			maxSeq = snap.Seq
		}
		snaps++
	}
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	snapSeq := make(map[string]uint64, len(m.snapSeq))
	for k, v := range m.snapSeq {
		snapSeq[k] = v
	}
	m.mu.Unlock()
	for _, rec := range pending {
		if rec.Seq <= snapSeq[rec.Dataset] {
			continue
		}
		// Tolerate orphan records: a crash inside a checkpoint can leave
		// tail records (or a lone drop record) for a dataset whose
		// register record and snapshot are already gone — that history
		// belongs to a dataset dropped before the crash, so it is dead
		// weight, not data loss. Register records create their dataset
		// and drop replay is tolerant of a missing one; everything else
		// needs the dataset to exist to be applicable.
		switch rec.Type {
		case RecRegister, RecDrop:
		default:
			if _, ok := app.DatasetArity(rec.Dataset); !ok {
				continue
			}
		}
		if err := m.replay(app, rec); err != nil {
			return snaps, replayed, fmt.Errorf("wal: replaying seq %d (%s %q): %v", rec.Seq, rec.Type, rec.Dataset, err)
		}
		if rec.Type == RecDrop {
			m.mu.Lock()
			m.dropped[rec.Dataset] = rec.Seq
			delete(m.snapSeq, rec.Dataset)
			m.mu.Unlock()
		} else {
			m.mu.Lock()
			delete(m.dropped, rec.Dataset)
			m.mu.Unlock()
		}
		replayed++
	}
	m.log.SetSeq(maxSeq)
	return snaps, replayed, nil
}

func (m *Manager) replay(app Applier, rec Record) error {
	switch rec.Type {
	case RecRegister:
		schema, rows, err := DecodeRegister(rec.Payload)
		if err != nil {
			return err
		}
		return app.ApplyRegister(rec.Dataset, schema, rows)
	case RecAppend:
		arity, ok := app.DatasetArity(rec.Dataset)
		if !ok {
			return fmt.Errorf("append to unknown dataset")
		}
		rows, err := DecodeRows(rec.Payload, arity)
		if err != nil {
			return err
		}
		return app.ApplyAppend(rec.Dataset, rows)
	case RecCells:
		cells, confirm, err := DecodeCells(rec.Payload)
		if err != nil {
			return err
		}
		return app.ApplyCells(rec.Dataset, cells, confirm)
	case RecConfirm:
		tid, attr, err := DecodeConfirm(rec.Payload)
		if err != nil {
			return err
		}
		return app.ApplyConfirm(rec.Dataset, tid, attr)
	case RecConstraints:
		return app.ApplyConstraints(rec.Dataset, string(rec.Payload))
	case RecDCs:
		return app.ApplyDCs(rec.Dataset, string(rec.Payload))
	case RecDrop:
		return app.ApplyDrop(rec.Dataset)
	case RecAppendRaw:
		rows, err := DecodeRawRows(rec.Payload)
		if err != nil {
			return err
		}
		return app.ApplyAppendRaw(rec.Dataset, rows)
	}
	return fmt.Errorf("unknown record type %d", byte(rec.Type))
}

// Checkpoint captures every dataset through src, writes the snapshot
// files (atomic temp + rename), removes snapshots of datasets that no
// longer exist, and compacts the WAL down to the records newer than
// each dataset's watermark. Safe to run concurrently with serving
// traffic: captures take the per-dataset exclusion briefly, and only
// the final compaction blocks appends.
func (m *Manager) Checkpoint(src CheckpointSource) error {
	live := make(map[string]bool)
	for _, name := range src.DatasetNames() {
		snap, ok := src.CaptureDataset(name, m.log.Seq)
		if !ok {
			continue
		}
		if err := m.writeSnapshotFile(name, snap); err != nil {
			return err
		}
		live[name] = true
		m.mu.Lock()
		m.snapSeq[name] = snap.Seq
		m.mu.Unlock()
	}
	m.mu.Lock()
	snapSeq := make(map[string]uint64, len(m.snapSeq))
	for k, v := range m.snapSeq {
		snapSeq[k] = v
	}
	dropped := make(map[string]uint64, len(m.dropped))
	for k, v := range m.dropped {
		dropped[k] = v
	}
	m.mu.Unlock()
	// Compact FIRST, then remove stale snapshot files — and keep a
	// dropped dataset's drop record for as long as its snapshot file
	// exists. Both orderings of "remove .snap" and "compact" have a
	// crash window otherwise: removing the snapshot first can orphan
	// tail records whose register record a previous checkpoint compacted
	// away, while compacting the drop record away first would let a
	// surviving snapshot resurrect a dataset whose drop was already
	// acked. With the drop record pinned to the snapshot's lifetime, a
	// crash anywhere in this sequence recovers to "snapshot loads, drop
	// replays" (file still there) or "no snapshot, drop record tolerated"
	// (file gone); the remaining record is swept at the next checkpoint.
	if err := m.log.Compact(func(rec Record) bool {
		if ds, ok := dropped[rec.Dataset]; ok && rec.Seq <= ds {
			if rec.Seq == ds && rec.Type == RecDrop {
				if _, err := os.Stat(m.snapPath(rec.Dataset)); err == nil {
					return true
				}
			}
			return false // full pre-drop history of a dropped dataset
		}
		return rec.Seq > snapSeq[rec.Dataset]
	}); err != nil {
		return err
	}
	// Now drop snapshot files of datasets that no longer exist.
	paths, err := filepath.Glob(filepath.Join(m.dir, "*.snap"))
	if err != nil {
		return err
	}
	for _, path := range paths {
		name, err := datasetOfSnapPath(path)
		if err != nil || !live[name] {
			os.Remove(path)
			if err == nil {
				m.mu.Lock()
				delete(m.snapSeq, name)
				m.mu.Unlock()
			}
		}
	}
	return nil
}

// Snapshot file layout:
//
//	[0:8)  magic "SMDQCKP1"
//	[8:16) seq uint64 (WAL watermark)
//	u16 nameLen + dataset name
//	schema block (EncodeRegister's schema section)
//	u32 cfdTextLen + text
//	u32 dcTextLen + text
//	u64 nConfirmed, then per cell uvarint tid, uvarint attr
//	relation snapshot (relation.WriteSnapshot, to EOF)
const snapFileMagic = "SMDQCKP1"

func (m *Manager) snapPath(name string) string {
	return filepath.Join(m.dir, hex.EncodeToString([]byte(name))+".snap")
}

func datasetOfSnapPath(path string) (string, error) {
	base := strings.TrimSuffix(filepath.Base(path), ".snap")
	b, err := hex.DecodeString(base)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (m *Manager) writeSnapshotFile(name string, snap *DatasetSnapshot) error {
	path := m.snapPath(name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, 256)
	hdr = append(hdr, snapFileMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, snap.Seq)
	hdr = appendString16(hdr, name)
	hdr = appendString16(hdr, snap.Schema.Name())
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(snap.Schema.Arity()))
	for _, a := range snap.Schema.Attrs() {
		hdr = appendString16(hdr, a.Name)
		hdr = append(hdr, byte(a.Kind))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(snap.CFDText)))
	hdr = append(hdr, snap.CFDText...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(snap.DCText)))
	hdr = append(hdr, snap.DCText...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(snap.Confirmed)))
	for _, cell := range snap.Confirmed {
		hdr = binary.AppendUvarint(hdr, uint64(cell[0]))
		hdr = binary.AppendUvarint(hdr, uint64(cell[1]))
	}
	_, err = f.Write(hdr)
	if err == nil {
		err = snap.Data.WriteSnapshot(f)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func readSnapshotFile(path string) (string, *DatasetSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(b) < 16 || string(b[:8]) != snapFileMagic {
		return "", nil, fmt.Errorf("not a snapshot file")
	}
	snap := &DatasetSnapshot{Seq: binary.LittleEndian.Uint64(b[8:])}
	rest := b[16:]
	name, rest, err := readString16(rest)
	if err != nil {
		return "", nil, err
	}
	sname, rest, err := readString16(rest)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < 2 {
		return "", nil, fmt.Errorf("truncated schema")
	}
	arity := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	attrs := make([]relation.Attribute, arity)
	for i := range attrs {
		var aname string
		aname, rest, err = readString16(rest)
		if err != nil {
			return "", nil, err
		}
		if len(rest) < 1 {
			return "", nil, fmt.Errorf("truncated attr kind")
		}
		kind := relation.Kind(rest[0])
		if kind > relation.KindFloat {
			return "", nil, fmt.Errorf("bad attr kind %d", rest[0])
		}
		rest = rest[1:]
		attrs[i] = relation.Attribute{Name: aname, Kind: kind}
	}
	snap.Schema, err = relation.NewSchema(sname, attrs...)
	if err != nil {
		return "", nil, err
	}
	readText := func() (string, error) {
		if len(rest) < 4 {
			return "", fmt.Errorf("truncated text section")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return "", fmt.Errorf("truncated text section")
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	if snap.CFDText, err = readText(); err != nil {
		return "", nil, err
	}
	if snap.DCText, err = readText(); err != nil {
		return "", nil, err
	}
	if len(rest) < 8 {
		return "", nil, fmt.Errorf("truncated confirmed section")
	}
	nConf := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	snap.Confirmed = make([][2]int, 0, nConf)
	for i := uint64(0); i < nConf; i++ {
		tid, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return "", nil, fmt.Errorf("truncated confirmed cell")
		}
		rest = rest[sz:]
		attr, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return "", nil, fmt.Errorf("truncated confirmed cell")
		}
		rest = rest[sz:]
		snap.Confirmed = append(snap.Confirmed, [2]int{int(tid), int(attr)})
	}
	snap.Data, err = relation.ReadSnapshot(rest, snap.Schema)
	if err != nil {
		return "", nil, err
	}
	return name, snap, nil
}

// WriteRegistry atomically writes the cluster coordinator's registry
// mirror (an informational JSON snapshot of schemas, per-worker counts
// and constraint text; the WAL is the authoritative recovery source).
func (m *Manager) WriteRegistry(data []byte) error {
	path := filepath.Join(m.dir, "registry.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadRegistry returns the registry mirror, or nil if absent.
func (m *Manager) ReadRegistry() []byte {
	b, err := os.ReadFile(filepath.Join(m.dir, "registry.json"))
	if err != nil {
		return nil
	}
	return b
}
