// Package wal implements the daemon's durability layer: a
// length-prefixed, CRC32-framed, monotonically-sequenced write-ahead
// log of every state-mutating operation per dataset, plus periodic
// per-dataset snapshots (relation.WriteSnapshot — dictionaries + int32
// code columns, the segment-style compact form) so recovery is
// snapshot-load + short-tail replay rather than full re-ingest.
//
// Record framing (all integers little-endian):
//
//	[0:4)   length  uint32  bytes after this field (crc..payload)
//	[4:8)   crc     uint32  IEEE CRC32 of bytes [8:8+length-4)
//	[8:16)  seq     uint64  monotone record sequence number
//	[16:17) type    byte    record type (records.go)
//	[17:19) dsLen   uint16  dataset-name length
//	[19:..) dataset
//	[..:..) payload type-specific (records.go); values are exact
//	        relation.Value.Encode bytes
//
// A torn final record (crash mid-write) fails its length or CRC check
// and is truncated away on Open. The scan treats the first invalid
// frame as end-of-log (the standard WAL recovery rule: only the tail
// can legitimately be torn), so mid-file corruption truncates the
// suffix rather than serving records with a broken prefix.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// SyncPolicy controls when Append pushes records to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: an acked write is a
	// fsynced write. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per syncEvery window; a crash
	// can lose up to one window of acked writes.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache.
	SyncNever
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

const (
	frameHeaderSize = 19 // length + crc + seq + type + dsLen
	maxRecordSize   = 1 << 30
	syncEvery       = 50 * time.Millisecond
)

// Record is one decoded WAL record.
type Record struct {
	Seq     uint64
	Type    RecType
	Dataset string
	Payload []byte
}

// Log is the append-side handle on a WAL file. Appends are serialized
// by an internal mutex; a failed append truncates the file back to the
// record boundary, so the log never retains a half-acked record.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	policy   SyncPolicy
	seq      uint64 // last sequence number written (0 = none)
	size     int64  // current file size (record boundary)
	lastSync time.Time
	dirty    bool
	// failed poisons the handle after an fsync failure whose rollback
	// truncate also failed: the file then holds a fully-framed record
	// the caller was told is NOT durable, and no further append can be
	// allowed to build on that divergence.
	failed error
}

// Open opens (or creates) the log at path, scans it to recover the
// sequence watermark, truncates a torn final record, and returns the
// append handle positioned at the tail. The scanned records are
// returned so recovery can replay them without a second pass.
func Open(path string, policy SyncPolicy) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, tail, lastSeq, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(tail); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(tail, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, path: path, policy: policy, seq: lastSeq, size: tail}, recs, nil
}

// scan reads every whole, checksummed record and returns them plus the
// byte offset of the valid tail and the last sequence number. The
// first invalid frame (truncated or CRC-mismatched) ends the scan;
// everything from it on is reported as torn tail via tail < size.
func scan(f *os.File) (recs []Record, tail int64, lastSeq uint64, err error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, 0, err
	}
	off := int64(0)
	for int64(len(b))-off >= frameHeaderSize {
		length := binary.LittleEndian.Uint32(b[off:])
		if length < frameHeaderSize-8 || length > maxRecordSize || off+8+int64(length) > int64(len(b)) {
			break // torn or nonsense length: treat as tail
		}
		body := b[off+8 : off+8+int64(length)]
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if crc32.ChecksumIEEE(body) != crc {
			break // torn write: payload incomplete
		}
		seq := binary.LittleEndian.Uint64(body)
		typ := RecType(body[8])
		dsLen := int(binary.LittleEndian.Uint16(body[9:]))
		if 11+dsLen > len(body) {
			return nil, 0, 0, fmt.Errorf("wal: record at offset %d: dataset length %d exceeds body", off, dsLen)
		}
		if seq <= lastSeq && lastSeq != 0 {
			return nil, 0, 0, fmt.Errorf("wal: sequence regression %d -> %d at offset %d", lastSeq, seq, off)
		}
		recs = append(recs, Record{
			Seq:     seq,
			Type:    typ,
			Dataset: string(body[11 : 11+dsLen]),
			Payload: append([]byte(nil), body[11+dsLen:]...),
		})
		lastSeq = seq
		off += 8 + int64(length)
	}
	// Anything between off and EOF is a torn tail, dropped by the
	// caller's truncate. A clean file has off == len(b).
	return recs, off, lastSeq, nil
}

// Append frames and writes one record, returning its sequence number.
// Under SyncAlways the record is on stable storage when Append
// returns. On a write error the file is truncated back to the previous
// record boundary and the sequence watermark restored, so the caller
// can roll back its in-memory state symmetrically and the log stays
// consistent with it.
func (l *Log) Append(typ RecType, dataset string, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if len(dataset) > 0xffff {
		return 0, fmt.Errorf("wal: dataset name too long (%d bytes)", len(dataset))
	}
	seq := l.seq + 1
	body := make([]byte, 11+len(dataset)+len(payload))
	binary.LittleEndian.PutUint64(body, seq)
	body[8] = byte(typ)
	binary.LittleEndian.PutUint16(body[9:], uint16(len(dataset)))
	copy(body[11:], dataset)
	copy(body[11+len(dataset):], payload)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		// Roll the partial frame back so the next append starts at a
		// clean boundary. If even the truncate fails, the CRC scan at
		// next Open drops the torn bytes.
		l.f.Truncate(l.size)
		return 0, err
	}
	l.size += int64(len(frame))
	l.seq = seq
	l.dirty = true
	if err := l.maybeSync(); err != nil {
		// The record is fully framed in the file but its durability is
		// unknown, and the caller will refuse the ack and roll back its
		// in-memory state — so the record must not survive to be
		// replayed. Truncate back to the pre-append boundary and restore
		// the watermark, mirroring the write-failure path. If even the
		// truncate fails, poison the handle: the un-acked record would
		// otherwise resurrect at the next recovery.
		l.size -= int64(len(frame))
		l.seq = seq - 1
		if terr := l.f.Truncate(l.size); terr != nil {
			l.failed = fmt.Errorf("wal: log poisoned: fsync failed (%v), rollback truncate failed (%v)", err, terr)
		}
		return 0, err
	}
	return seq, nil
}

func (l *Log) maybeSync() error {
	switch l.policy {
	case SyncAlways:
	case SyncInterval:
		if time.Since(l.lastSync) < syncEvery {
			return nil
		}
	case SyncNever:
		return nil
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Seq returns the last sequence number written (0 if none). Reading it
// while holding whatever exclusion prevents mutations of a dataset
// yields a correct replay watermark for that dataset: every record a
// checkpoint capture can observe was appended (seq assigned) before the
// capture's lock was acquired.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SetSeq raises the sequence watermark to at least seq. Recovery calls
// it with the max snapshot watermark: after a checkpoint compacted the
// log, the file alone may understate the last sequence ever issued,
// and fresh appends must never collide with checkpointed history.
func (l *Log) SetSeq(seq uint64) {
	l.mu.Lock()
	if seq > l.seq {
		l.seq = seq
	}
	l.mu.Unlock()
}

// Size returns the current file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Compact rewrites the log keeping only records for which keep returns
// true — called after a checkpoint with keep = "seq > snapshot
// watermark for the record's dataset". The rewrite goes through a temp
// file + rename, so a crash mid-compact leaves either the old or the
// new log intact. Appends are blocked for the duration.
func (l *Log) Compact(keep func(Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	recs, tail, _, err := scan(l.f)
	if err != nil {
		return err
	}
	_ = tail
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	nl := &Log{f: nf, path: tmp, policy: SyncNever}
	kept := 0
	for _, rec := range recs {
		if !keep(rec) {
			continue
		}
		// Re-framed with the original sequence number: compaction must
		// not renumber history.
		if err := nl.appendRaw(rec); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		kept++
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = size
	l.dirty = false
	return nil
}

// appendRaw writes a record preserving its sequence number (compaction
// path; l.mu is not used — the log is private to the caller).
func (l *Log) appendRaw(rec Record) error {
	body := make([]byte, 11+len(rec.Dataset)+len(rec.Payload))
	binary.LittleEndian.PutUint64(body, rec.Seq)
	body[8] = byte(rec.Type)
	binary.LittleEndian.PutUint16(body[9:], uint16(len(rec.Dataset)))
	copy(body[11:], rec.Dataset)
	copy(body[11+len(rec.Dataset):], rec.Payload)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		return err
	}
	l.size += int64(len(frame))
	if rec.Seq > l.seq {
		l.seq = rec.Seq
	}
	return nil
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
