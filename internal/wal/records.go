package wal

import (
	"encoding/binary"
	"fmt"

	"semandaq/internal/relation"
)

// RecType identifies a record's payload codec. The WAL logs EFFECTS,
// not intents: an append record holds the post-repair final cell
// values of the delta rows and a repair record holds the sorted cell
// change list, so replay is raw insertion/cell writes — deterministic
// and free of detection or repair work.
type RecType byte

const (
	// RecRegister creates a dataset: schema + initial rows.
	RecRegister RecType = 1
	// RecAppend appends rows (exact post-repair values).
	RecAppend RecType = 2
	// RecCells overwrites a set of cells (repair commit / edit).
	RecCells RecType = 3
	// RecConfirm marks one cell user-confirmed.
	RecConfirm RecType = 4
	// RecConstraints installs a CFD set (canonical text).
	RecConstraints RecType = 5
	// RecDCs installs a denial-constraint set (canonical text).
	RecDCs RecType = 6
	// RecDrop deletes a dataset.
	RecDrop RecType = 7
	// RecAppendRaw appends unparsed string rows (coordinator log: the
	// coordinator never parses values, it routes them to a worker).
	RecAppendRaw RecType = 8
)

func (t RecType) String() string {
	switch t {
	case RecRegister:
		return "register"
	case RecAppend:
		return "append"
	case RecCells:
		return "cells"
	case RecConfirm:
		return "confirm"
	case RecConstraints:
		return "constraints"
	case RecDCs:
		return "dcs"
	case RecDrop:
		return "drop"
	case RecAppendRaw:
		return "append-raw"
	}
	return fmt.Sprintf("RecType(%d)", byte(t))
}

// CellWrite is one cell assignment in a RecCells payload, in the
// sorted (TID, Attr) order repair.Result.Changes already guarantees.
type CellWrite struct {
	TID, Attr int
	Value     relation.Value
}

// EncodeRegister serializes a schema plus initial rows: the schema as
// length-prefixed name/attribute strings with kind bytes, then the
// rows as concatenated relation.EncodeTuple bytes.
func EncodeRegister(schema *relation.Schema, rows []relation.Tuple) []byte {
	b := appendString16(nil, schema.Name())
	b = binary.LittleEndian.AppendUint16(b, uint16(schema.Arity()))
	for _, a := range schema.Attrs() {
		b = appendString16(b, a.Name)
		b = append(b, byte(a.Kind))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(rows)))
	for _, t := range rows {
		b = relation.EncodeTuple(b, t)
	}
	return b
}

// DecodeRegister is the inverse of EncodeRegister.
func DecodeRegister(b []byte) (*relation.Schema, []relation.Tuple, error) {
	name, b, err := readString16(b)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: register schema name: %v", err)
	}
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("wal: register payload truncated")
	}
	arity := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	attrs := make([]relation.Attribute, arity)
	for i := range attrs {
		var aname string
		aname, b, err = readString16(b)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: register attr %d: %v", i, err)
		}
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("wal: register attr %d kind truncated", i)
		}
		kind := relation.Kind(b[0])
		if kind > relation.KindFloat {
			return nil, nil, fmt.Errorf("wal: register attr %d has bad kind %d", i, b[0])
		}
		b = b[1:]
		attrs[i] = relation.Attribute{Name: aname, Kind: kind}
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, nil, err
	}
	rows, err := decodeRows(b, arity)
	if err != nil {
		return nil, nil, err
	}
	return schema, rows, nil
}

// EncodeRows serializes an append batch (RecAppend payload).
func EncodeRows(rows []relation.Tuple) []byte {
	b := binary.LittleEndian.AppendUint64(nil, uint64(len(rows)))
	for _, t := range rows {
		b = relation.EncodeTuple(b, t)
	}
	return b
}

// DecodeRows decodes a RecAppend payload; the arity comes from the
// dataset's schema at replay time.
func DecodeRows(b []byte, arity int) ([]relation.Tuple, error) {
	return decodeRows(b, arity)
}

func decodeRows(b []byte, arity int) ([]relation.Tuple, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wal: row section truncated")
	}
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	rows := make([]relation.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		t := make(relation.Tuple, arity)
		for a := 0; a < arity; a++ {
			v, sz, err := relation.DecodeValue(b)
			if err != nil {
				return nil, fmt.Errorf("wal: row %d attr %d: %v", i, a, err)
			}
			t[a] = v
			b = b[sz:]
		}
		rows = append(rows, t)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: row section has %d trailing bytes", len(b))
	}
	return rows, nil
}

// EncodeCells serializes a cell-change list (RecCells payload): a
// confirm flag (edits confirm the written cell, repair commits do
// not), then per cell uvarint TID/attr and the exact Value.Encode
// bytes.
func EncodeCells(cells []CellWrite, confirm bool) []byte {
	b := make([]byte, 0, 16*len(cells)+9)
	if confirm {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(cells)))
	for _, c := range cells {
		b = binary.AppendUvarint(b, uint64(c.TID))
		b = binary.AppendUvarint(b, uint64(c.Attr))
		b = c.Value.Encode(b)
	}
	return b
}

// DecodeCells is the inverse of EncodeCells.
func DecodeCells(b []byte) ([]CellWrite, bool, error) {
	if len(b) < 9 {
		return nil, false, fmt.Errorf("wal: cells payload truncated")
	}
	confirm := b[0] == 1
	n := binary.LittleEndian.Uint64(b[1:])
	b = b[9:]
	cells := make([]CellWrite, 0, n)
	for i := uint64(0); i < n; i++ {
		tid, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, false, fmt.Errorf("wal: cell %d tid truncated", i)
		}
		b = b[sz:]
		attr, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, false, fmt.Errorf("wal: cell %d attr truncated", i)
		}
		b = b[sz:]
		v, vsz, err := relation.DecodeValue(b)
		if err != nil {
			return nil, false, fmt.Errorf("wal: cell %d value: %v", i, err)
		}
		b = b[vsz:]
		cells = append(cells, CellWrite{TID: int(tid), Attr: int(attr), Value: v})
	}
	if len(b) != 0 {
		return nil, false, fmt.Errorf("wal: cells payload has %d trailing bytes", len(b))
	}
	return cells, confirm, nil
}

// EncodeConfirm serializes a cell-confirm record.
func EncodeConfirm(tid, attr int) []byte {
	b := binary.AppendUvarint(nil, uint64(tid))
	return binary.AppendUvarint(b, uint64(attr))
}

// DecodeConfirm is the inverse of EncodeConfirm.
func DecodeConfirm(b []byte) (tid, attr int, err error) {
	t, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wal: confirm tid truncated")
	}
	a, sz2 := binary.Uvarint(b[sz:])
	if sz2 <= 0 || sz+sz2 != len(b) {
		return 0, 0, fmt.Errorf("wal: confirm attr truncated")
	}
	return int(t), int(a), nil
}

// EncodeRawRows serializes unparsed string rows (RecAppendRaw).
func EncodeRawRows(rows [][]string) []byte {
	b := binary.LittleEndian.AppendUint64(nil, uint64(len(rows)))
	for _, row := range rows {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(row)))
		for _, f := range row {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(f)))
			b = append(b, f...)
		}
	}
	return b
}

// DecodeRawRows is the inverse of EncodeRawRows.
func DecodeRawRows(b []byte) ([][]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wal: raw rows truncated")
	}
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	rows := make([][]string, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("wal: raw row %d truncated", i)
		}
		nf := binary.LittleEndian.Uint32(b)
		b = b[4:]
		row := make([]string, nf)
		for j := range row {
			if len(b) < 4 {
				return nil, fmt.Errorf("wal: raw row %d field %d truncated", i, j)
			}
			fl := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if len(b) < fl {
				return nil, fmt.Errorf("wal: raw row %d field %d truncated", i, j)
			}
			row[j] = string(b[:fl])
			b = b[fl:]
		}
		rows = append(rows, row)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: raw rows have %d trailing bytes", len(b))
	}
	return rows, nil
}

func appendString16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readString16(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("truncated length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
