package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"semandaq/internal/relation"
)

func TestLogAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	want := []Record{
		{Seq: 1, Type: RecConstraints, Dataset: "a", Payload: []byte("phi")},
		{Seq: 2, Type: RecDrop, Dataset: "b", Payload: []byte{}},
		{Seq: 3, Type: RecDCs, Dataset: "a", Payload: []byte("dc text")},
	}
	for _, r := range want {
		seq, err := l.Append(r.Type, r.Dataset, r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.Seq {
			t.Fatalf("seq %d, want %d", seq, r.Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != want[i].Seq || r.Type != want[i].Type || r.Dataset != want[i].Dataset {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
		if !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want[i].Payload)
		}
	}
	if seq, err := l2.Append(RecDrop, "a", nil); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq=%d err=%v, want 4", seq, err)
	}
}

// TestLogTornTail truncates the file mid-record and verifies Open
// drops exactly the torn record and the log accepts fresh appends.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecConstraints, "ds", []byte("keep me"))
	l.Append(RecDCs, "ds", []byte("torn away"))
	l.Close()
	for cut := int64(1); cut <= 8; cut += 3 {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, b[:int64(len(b))-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(torn, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "keep me" {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		// The torn suffix is gone; the next append lands cleanly.
		if seq, err := l2.Append(RecDrop, "ds", nil); err != nil || seq != 2 {
			t.Fatalf("cut %d: append seq=%d err=%v", cut, seq, err)
		}
		l2.Close()
		l3, recs, err := Open(torn, SyncAlways)
		if err != nil || len(recs) != 2 {
			t.Fatalf("cut %d reopen: %d records, err=%v", cut, len(recs), err)
		}
		l3.Close()
	}
}

func TestLogCorruptMiddleFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecConstraints, "ds", bytes.Repeat([]byte("x"), 64))
	l.Append(RecDCs, "ds", []byte("second"))
	l.Close()
	b, _ := os.ReadFile(path)
	b[30] ^= 0xff // flip a payload byte of the first record
	os.WriteFile(path, b, 0o644)
	_, recs, err := Open(path, SyncAlways)
	// A corrupt first record makes everything after it unreachable: the
	// scan must stop at the corruption (treating it as tail), never
	// return the second record without the first.
	if err == nil && len(recs) > 0 {
		t.Fatalf("scan returned %d records past corruption", len(recs))
	}
}

func TestLogCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecConstraints, "a", []byte("1"))
	l.Append(RecConstraints, "b", []byte("2"))
	l.Append(RecConstraints, "a", []byte("3"))
	if err := l.Compact(func(r Record) bool { return r.Dataset == "a" && r.Seq > 1 }); err != nil {
		t.Fatal(err)
	}
	// Sequence numbers survive compaction and keep advancing.
	if seq, err := l.Append(RecDrop, "a", nil); err != nil || seq != 4 {
		t.Fatalf("post-compact append seq=%d err=%v", seq, err)
	}
	l.Close()
	_, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].Seq != 4 {
		t.Fatalf("compacted log = %+v", recs)
	}
}

func TestRecordCodecs(t *testing.T) {
	schema := relation.MustSchema("t",
		relation.Attribute{Name: "s", Kind: relation.KindString},
		relation.Attribute{Name: "i", Kind: relation.KindInt},
		relation.Attribute{Name: "f", Kind: relation.KindFloat},
	)
	rows := []relation.Tuple{
		{relation.String("x"), relation.Int(-9), relation.Float(1.5)},
		{relation.Null(), relation.Int(1 << 40), relation.Null()},
	}
	gotSchema, gotRows, err := DecodeRegister(EncodeRegister(schema, rows))
	if err != nil {
		t.Fatal(err)
	}
	if !gotSchema.Equal(schema) {
		t.Fatalf("schema %v, want %v", gotSchema, schema)
	}
	if len(gotRows) != 2 || !gotRows[0].Equal(rows[0]) || !gotRows[1].Equal(rows[1]) {
		t.Fatalf("rows %v, want %v", gotRows, rows)
	}

	rows2, err := DecodeRows(EncodeRows(rows), 3)
	if err != nil || len(rows2) != 2 || !rows2[1].Equal(rows[1]) {
		t.Fatalf("rows codec: %v err=%v", rows2, err)
	}

	cells := []CellWrite{
		{TID: 0, Attr: 2, Value: relation.Float(2.25)},
		{TID: 1000000, Attr: 1, Value: relation.String("hello")},
	}
	gotCells, confirm, err := DecodeCells(EncodeCells(cells, true))
	if err != nil || !confirm || !reflect.DeepEqual(gotCells, cells) {
		t.Fatalf("cells codec: %v confirm=%v err=%v", gotCells, confirm, err)
	}

	tid, attr, err := DecodeConfirm(EncodeConfirm(7, 3))
	if err != nil || tid != 7 || attr != 3 {
		t.Fatalf("confirm codec: %d %d %v", tid, attr, err)
	}

	raw := [][]string{{"a", "b,c", ""}, {"1", "2", "3"}}
	gotRaw, err := DecodeRawRows(EncodeRawRows(raw))
	if err != nil || !reflect.DeepEqual(gotRaw, raw) {
		t.Fatalf("raw rows codec: %v err=%v", gotRaw, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		path := filepath.Join(t.TempDir(), "wal.log")
		l, _, err := Open(path, pol)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(RecDrop, "x", nil); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("%v: sync: %v", pol, err)
		}
		l.Close()
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted bogus")
	}
	for _, s := range []string{"always", "interval", "none", ""} {
		if _, err := ParseSyncPolicy(s); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", s, err)
		}
	}
}

// TestLogTruncationProperty is the torn-write property stated
// generally: for random record sequences and an arbitrary truncation
// point, recovery returns exactly the longest whole-frame prefix —
// never an invented or reordered record — trims the file back to that
// frame boundary, and the log then accepts fresh appends whose replay
// extends that same prefix. Seeded RNG keeps failures reproducible.
func TestLogTruncationProperty(t *testing.T) {
	types := []RecType{RecRegister, RecAppend, RecCells, RecConfirm,
		RecConstraints, RecDCs, RecDrop, RecAppendRaw}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "wal.log")
		l, _, err := Open(path, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(25)
		written := make([]Record, 0, n)
		bounds := make([]int64, 0, n+1) // file size after each whole frame
		bounds = append(bounds, 0)
		for i := 0; i < n; i++ {
			payload := make([]byte, rng.Intn(200))
			rng.Read(payload)
			dataset := string(rune('a' + rng.Intn(4)))
			typ := types[rng.Intn(len(types))]
			seq, err := l.Append(typ, dataset, payload)
			if err != nil {
				t.Fatal(err)
			}
			written = append(written, Record{Seq: seq, Type: typ, Dataset: dataset, Payload: payload})
			bounds = append(bounds, l.Size())
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		whole, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		cut := int64(rng.Intn(len(whole) + 1))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The expected survivors: every record whose frame ends at or
		// before the cut.
		keep := 0
		for keep < n && bounds[keep+1] <= cut {
			keep++
		}
		l2, recs, err := Open(path, SyncNever)
		if err != nil {
			t.Fatalf("seed %d cut %d: %v", seed, cut, err)
		}
		if len(recs) != keep {
			t.Fatalf("seed %d cut %d: recovered %d records, want %d", seed, cut, len(recs), keep)
		}
		for i, r := range recs {
			w := written[i]
			if r.Seq != w.Seq || r.Type != w.Type || r.Dataset != w.Dataset || !bytes.Equal(r.Payload, w.Payload) {
				t.Fatalf("seed %d cut %d: record %d = %+v, want %+v", seed, cut, i, r, w)
			}
		}
		if got := l2.Size(); got != bounds[keep] {
			t.Fatalf("seed %d cut %d: trimmed size %d, want frame boundary %d", seed, cut, got, bounds[keep])
		}
		// The log stays writable past the trim, and the new record
		// replays on top of the surviving prefix.
		seq, err := l2.Append(RecDrop, "z", nil)
		if err != nil || seq != uint64(keep)+1 {
			t.Fatalf("seed %d cut %d: append after trim seq=%d err=%v", seed, cut, seq, err)
		}
		l2.Close()
		_, recs, err = Open(path, SyncNever)
		if err != nil || len(recs) != keep+1 {
			t.Fatalf("seed %d cut %d: reopen %d records err=%v, want %d", seed, cut, len(recs), err, keep+1)
		}
	}
}
