package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"semandaq/internal/relation"
)

// CardSchema returns the card(c#, ssn, fn, ln, addr, phn, email, type)
// schema of the tutorial's §4 fraud-detection example.
func CardSchema() *relation.Schema {
	s, err := relation.StringSchema("card", "cno", "ssn", "fn", "ln", "addr", "phn", "email", "type")
	if err != nil {
		panic(err)
	}
	return s
}

// BillingSchema returns billing(c#, fn, ln, addr, phn, email, item, price).
func BillingSchema() *relation.Schema {
	s, err := relation.StringSchema("billing", "cno", "fn", "ln", "addr", "phn", "email", "item", "price")
	if err != nil {
		panic(err)
	}
	return s
}

var lastNames = []string{
	"smith", "jones", "taylor", "brown", "wilson", "evans", "thomas",
	"johnson", "roberts", "walker", "wright", "robinson", "khan", "lewis",
}

var streetsPool = []string{
	"oak st", "king rd", "elm ave", "pine ln", "main st", "mayfield rd",
	"crichton st", "high st", "broadway", "park ave",
}

var items = []string{"book", "cd", "dvd", "game", "pen"}

// person is the ground-truth entity behind card/billing rows.
type person struct {
	fn, ln, addr, phn, email string
}

// CardBillingOptions configures the record-matching workload.
type CardBillingOptions struct {
	// Persons is the number of distinct card holders.
	Persons int
	// DupRate is the fraction of billing rows that belong to a card
	// holder (true matches); the rest are unrelated records.
	DupRate float64
	// Perturb is the probability that each of a true duplicate's fuzzy
	// fields (fn, addr) is distorted (typos in fn, address rewritten in a
	// different convention) — the distortions the RCK matcher must see
	// through.
	Perturb float64
	Seed    int64
}

// CardBilling generates a card relation (one row per person) and a
// billing relation containing distorted duplicates plus unrelated rows.
// It returns both relations and the ground-truth match pairs
// (card TID, billing TID).
func CardBilling(opts CardBillingOptions) (card, billing *relation.Relation, truth map[[2]int]bool) {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Persons <= 0 {
		opts.Persons = 100
	}
	if opts.DupRate == 0 {
		opts.DupRate = 0.5
	}
	if opts.Perturb == 0 {
		opts.Perturb = 0.5
	}

	persons := make([]person, opts.Persons)
	for i := range persons {
		persons[i] = person{
			fn:    firstNames[rng.Intn(len(firstNames))],
			ln:    lastNames[rng.Intn(len(lastNames))],
			addr:  fmt.Sprintf("%d %s", 1+rng.Intn(99), streetsPool[rng.Intn(len(streetsPool))]),
			phn:   fmt.Sprintf("555-%04d", rng.Intn(10000)),
			email: fmt.Sprintf("u%d@example.com", i),
		}
	}

	card = relation.New(CardSchema())
	for i, p := range persons {
		card.MustInsert(relation.Tuple{
			relation.String(fmt.Sprintf("C%06d", i)),
			relation.String(fmt.Sprintf("%09d", rng.Intn(1_000_000_000))),
			relation.String(p.fn), relation.String(p.ln),
			relation.String(p.addr), relation.String(p.phn),
			relation.String(p.email),
			relation.String([]string{"visa", "amex"}[rng.Intn(2)]),
		})
	}

	billing = relation.New(BillingSchema())
	truth = map[[2]int]bool{}
	nBilling := opts.Persons // same size by default
	for i := 0; i < nBilling; i++ {
		if rng.Float64() < opts.DupRate {
			pi := rng.Intn(len(persons))
			p := persons[pi]
			fn, addr := p.fn, p.addr
			if rng.Float64() < opts.Perturb {
				fn = typoString(fn, rng)
			}
			if rng.Float64() < opts.Perturb {
				addr = rewriteAddr(addr, rng)
			}
			tid := billing.MustInsert(relation.Tuple{
				relation.String(fmt.Sprintf("B%06d", i)),
				relation.String(fn), relation.String(p.ln),
				relation.String(addr), relation.String(p.phn),
				relation.String(p.email),
				relation.String(items[rng.Intn(len(items))]),
				relation.String(fmt.Sprintf("%d.99", 1+rng.Intn(40))),
			})
			truth[[2]int{pi, tid}] = true
			continue
		}
		// Unrelated record.
		billing.MustInsert(relation.Tuple{
			relation.String(fmt.Sprintf("B%06d", i)),
			relation.String(firstNames[rng.Intn(len(firstNames))]),
			relation.String(lastNames[rng.Intn(len(lastNames))]),
			relation.String(fmt.Sprintf("%d %s", 1+rng.Intn(99), streetsPool[rng.Intn(len(streetsPool))])),
			relation.String(fmt.Sprintf("555-%04d", rng.Intn(10000))),
			relation.String(fmt.Sprintf("x%d@other.org", i)),
			relation.String(items[rng.Intn(len(items))]),
			relation.String(fmt.Sprintf("%d.99", 1+rng.Intn(40))),
		})
	}
	return card, billing, truth
}

// typoString applies one character edit, preserving the first rune so
// prefix-sensitive measures still see the resemblance.
func typoString(s string, rng *rand.Rand) string {
	runes := []rune(s)
	if len(runes) < 3 {
		return s + "e"
	}
	i := 1 + rng.Intn(len(runes)-1)
	switch rng.Intn(3) {
	case 0:
		runes[i] = rune('a' + rng.Intn(26))
	case 1:
		runes = append(runes[:i], runes[i+1:]...)
	default:
		if i+1 < len(runes) {
			runes[i], runes[i+1] = runes[i+1], runes[i]
		} else {
			runes = append(runes, 'a')
		}
	}
	return string(runes)
}

// rewriteAddr renders an address in a different convention ("10 oak st"
// → "oak street 10"), the tutorial's example of addresses that are
// "radically different" yet refer to the same place.
func rewriteAddr(addr string, rng *rand.Rand) string {
	parts := strings.Fields(addr)
	if len(parts) < 3 {
		return addr + " apt 1"
	}
	num, rest := parts[0], parts[1:]
	street := strings.Join(rest, " ")
	street = strings.ReplaceAll(street, " st", " street")
	street = strings.ReplaceAll(street, " rd", " road")
	street = strings.ReplaceAll(street, " ave", " avenue")
	street = strings.ReplaceAll(street, " ln", " lane")
	if rng.Intn(2) == 0 {
		return street + " " + num
	}
	return strings.ToUpper(street[:1]) + street[1:] + " " + num
}
