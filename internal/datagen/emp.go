package datagen

import (
	"math/rand"

	"semandaq/internal/relation"
)

// EmpSchema returns the emp(EID, DEPT, LEVEL, SAL) schema backing the
// denial-constraint workloads: numeric LEVEL and SAL columns carry the
// order predicates no string-only schema can.
func EmpSchema() *relation.Schema {
	s, err := relation.NewSchema("emp",
		relation.Attribute{Name: "EID", Kind: relation.KindInt},
		relation.Attribute{Name: "DEPT", Kind: relation.KindString},
		relation.Attribute{Name: "LEVEL", Kind: relation.KindInt},
		relation.Attribute{Name: "SAL", Kind: relation.KindFloat},
	)
	if err != nil {
		panic(err)
	}
	return s
}

// EmpDCText is the planted pay-scale denial constraint in the grammar
// of internal/dc: within a department, a lower-level employee never
// out-earns a higher-level one. (Returned as text so datagen stays a
// leaf package; callers parse it against EmpSchema.)
func EmpDCText() string {
	return "dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )"
}

var empDepts = []string{
	"eng", "ops", "hr", "fin", "mkt", "sales", "legal", "it", "rnd", "supp",
}

// Emp generates n employee tuples over EmpSchema satisfying EmpDCText
// by construction — salary is level*1000 plus noise below the level
// step, so level strictly orders pay within every department — and then
// plants `violations` pay inversions: a tuple's SAL is raised just past
// a same-department colleague's one level up. Each planted inversion
// violates the DC for at least that pair while staying bounded (the
// raised salary still undercuts levels further up). Deterministic in
// seed; planting is best-effort, capped by the plantable pairs actually
// present (relevant only for tiny n or extreme violation counts).
func Emp(n, violations int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(EmpSchema())
	deptZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(empDepts)-1))
	type key struct {
		dept  string
		level int
	}
	byKey := map[key][]int{}
	for i := 0; i < n; i++ {
		dept := empDepts[deptZipf.Uint64()]
		level := 1 + rng.Intn(8)
		sal := float64(level*1000 + rng.Intn(900))
		tid := r.MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(dept),
			relation.Int(int64(level)),
			relation.Float(sal),
		})
		byKey[key{dept, level}] = append(byKey[key{dept, level}], tid)
	}
	planted := 0
	for attempts := 0; planted < violations && attempts < 50*violations+100; attempts++ {
		tid := rng.Intn(n)
		dept := r.Get(tid, 1).Str()
		level := int(r.Get(tid, 2).IntVal())
		uppers := byKey[key{dept, level + 1}]
		if len(uppers) == 0 {
			continue
		}
		up := uppers[rng.Intn(len(uppers))]
		r.Set(tid, 3, relation.Float(r.Get(up, 3).FloatVal()+1))
		planted++
	}
	return r
}
