// Package datagen provides seeded synthetic data generators for every
// workload in the experiment suite. The constituent papers evaluate on
// real-life data that is proprietary or no longer available; these
// generators substitute relations with the same schemas the papers print
// and with value distributions that make the planted constraints hold on
// clean data (see DESIGN.md, "Substitutions"). All generators are
// deterministic in their seed.
package datagen

import (
	"fmt"
	"math/rand"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
	"semandaq/internal/relation"
)

// CustSchema returns the cust(CC, AC, PN, NM, STR, CT, ZIP) schema of
// the tutorial and TODS 2008.
func CustSchema() *relation.Schema {
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		panic(err)
	}
	return s
}

// region ties together the correlated attribute values of a customer:
// country code, area code, city, and the zip→street mapping inside it.
type region struct {
	cc, ac, ct string
	zips       []string
	streets    []string // streets[i] is the street of zips[i]
}

// custRegions is the fixed geography: within a region, (CC, AC)
// determines CT, and (CC, ZIP) determines STR for UK rows — exactly the
// planted constraint set returned by CustConstraints.
func custRegions() []region {
	mk := func(cc, ac, ct, prefix string, n int) region {
		r := region{cc: cc, ac: ac, ct: ct}
		for i := 0; i < n; i++ {
			r.zips = append(r.zips, fmt.Sprintf("%s%d %dXX", prefix, i/10, i%10))
			r.streets = append(r.streets, fmt.Sprintf("%s street %d", ct, i))
		}
		return r
	}
	return []region{
		mk("44", "131", "edi", "EH", 40),
		mk("44", "141", "gla", "G", 40),
		mk("44", "20", "ldn", "SW", 60),
		mk("01", "908", "mh", "079", 30),
		mk("01", "212", "nyc", "100", 50),
		mk("01", "650", "mtv", "940", 30),
	}
}

var firstNames = []string{
	"mike", "rick", "anna", "joe", "ben", "kim", "eve", "sam", "pat", "lou",
	"max", "ida", "ned", "ola", "raj", "sue", "tom", "una", "vic", "wes",
}

// Cust generates n CFD-consistent customer tuples. Region and zip
// choices are Zipf-distributed so that X-groups have the skewed sizes
// real data shows. The result satisfies CustConstraints() exactly.
func Cust(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	regions := custRegions()
	regionZipf := rand.NewZipf(rng, 1.3, 1, uint64(len(regions)-1))
	r := relation.New(CustSchema())
	for i := 0; i < n; i++ {
		reg := regions[regionZipf.Uint64()]
		zi := rng.Intn(len(reg.zips))
		t := relation.Tuple{
			relation.String(reg.cc),
			relation.String(reg.ac),
			relation.String(fmt.Sprintf("%s-%07d", reg.ac, rng.Intn(10_000_000))),
			relation.String(firstNames[rng.Intn(len(firstNames))]),
			relation.String(reg.streets[zi]),
			relation.String(reg.ct),
			relation.String(reg.zips[zi]),
		}
		r.MustInsert(t)
	}
	return r
}

// CustConstraints returns the planted CFD set the Cust generator
// guarantees: the tutorial's UK zip rule, the US 908 rule, and the
// region table as a multi-row (CC, AC) → CT tableau.
func CustConstraints() *cfd.Set {
	schema := CustSchema()
	set, err := cfd.ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
cfd phi3: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('44', '141' || 'gla'), ('44', '20' || 'ldn'), ('01', '908' || 'mh'), ('01', '212' || 'nyc'), ('01', '650' || 'mtv') }
cfd phi4: cust([ZIP, CC] -> [CT])
`, schema)
	if err != nil {
		panic(err)
	}
	return set
}

// CustTableau builds a (CC, AC) → CT CFD whose tableau has exactly rows
// pattern rows, cycling through the region table and then appending
// synthetic regions — the workload knob for the tableau-size experiment
// (E2).
func CustTableau(rows int) *cfd.Set {
	schema := CustSchema()
	regions := custRegions()
	src := "cfd e2: cust([CC, AC] -> [CT]) { "
	for i := 0; i < rows; i++ {
		if i > 0 {
			src += ", "
		}
		if i < len(regions) {
			src += fmt.Sprintf("('%s', '%s' || '%s')", regions[i].cc, regions[i].ac, regions[i].ct)
		} else {
			// Synthetic rows match no data (fresh area codes): they grow
			// the tableau without changing the violation set.
			src += fmt.Sprintf("('%d', '%d' || 'city%d')", 50+i, 1000+i, i)
		}
	}
	src += " }"
	set, err := cfd.ParseSet(src, schema)
	if err != nil {
		panic(err)
	}
	return set
}

// HospSchema returns a hospital-provider style schema, the second
// dataset family used by the repair experiments.
func HospSchema() *relation.Schema {
	s, err := relation.StringSchema("hosp", "PID", "NAME", "CITY", "STATE", "ZIP", "PHONE", "COUNTY")
	if err != nil {
		panic(err)
	}
	return s
}

// Hosp generates n hospital tuples satisfying HospConstraints: ZIP
// determines (CITY, STATE, COUNTY), and PID determines PHONE.
func Hosp(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	type zipInfo struct{ zip, city, state, county string }
	states := []string{"AL", "AK", "AZ", "CA", "CO", "CT", "DE", "FL", "GA", "HI"}
	var zips []zipInfo
	for i := 0; i < 120; i++ {
		st := states[i%len(states)]
		zips = append(zips, zipInfo{
			zip:    fmt.Sprintf("%05d", 10000+i*37),
			city:   fmt.Sprintf("%s city %d", st, i/len(states)),
			state:  st,
			county: fmt.Sprintf("%s county %d", st, i%7),
		})
	}
	zipZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(zips)-1))
	r := relation.New(HospSchema())
	nProviders := n/4 + 1
	phones := make([]string, nProviders)
	for i := range phones {
		phones[i] = fmt.Sprintf("555-%04d", rng.Intn(10000))
	}
	for i := 0; i < n; i++ {
		z := zips[zipZipf.Uint64()]
		pid := rng.Intn(nProviders)
		r.MustInsert(relation.Tuple{
			relation.String(fmt.Sprintf("P%05d", pid)),
			relation.String(fmt.Sprintf("provider %d", pid)),
			relation.String(z.city),
			relation.String(z.state),
			relation.String(z.zip),
			relation.String(phones[pid]),
			relation.String(z.county),
		})
	}
	return r
}

// HospConstraints returns the planted FD-style CFDs of the Hosp
// generator.
func HospConstraints() *cfd.Set {
	schema := HospSchema()
	set, err := cfd.ParseSet(`
cfd h1: hosp([ZIP] -> [CITY, STATE, COUNTY])
cfd h2: hosp([PID] -> [PHONE, NAME])
`, schema)
	if err != nil {
		panic(err)
	}
	return set
}

// OrderSchemas returns the tutorial's CD and book schemas.
func OrderSchemas() (cd, book *relation.Schema) {
	var err error
	cd, err = relation.StringSchema("CD", "album", "price", "genre")
	if err != nil {
		panic(err)
	}
	book, err = relation.StringSchema("book", "title", "price", "format")
	if err != nil {
		panic(err)
	}
	return cd, book
}

// Orders generates CD and book relations of the given sizes where the
// tutorial CIND holds except for violations audio-book CDs lacking a
// book-side witness. It returns the relations and the TIDs of the
// planted violations.
func Orders(nCD, nBook int, violations int, seed int64) (cdRel, bookRel *relation.Relation, planted []int) {
	rng := rand.New(rand.NewSource(seed))
	cdS, bookS := OrderSchemas()
	cdRel, bookRel = relation.New(cdS), relation.New(bookS)
	titles := make([]string, 200)
	for i := range titles {
		titles[i] = fmt.Sprintf("title %03d", i)
	}
	prices := []string{"5.99", "9.99", "14.99", "19.99"}

	for i := 0; i < nBook; i++ {
		format := "audio"
		if rng.Intn(3) > 0 {
			format = []string{"paper", "hardcover"}[rng.Intn(2)]
		}
		bookRel.MustInsert(relation.Tuple{
			relation.String(titles[rng.Intn(len(titles))]),
			relation.String(prices[rng.Intn(len(prices))]),
			relation.String(format),
		})
	}
	// Index the audio books so generated a-book CDs can copy a witness.
	type key struct{ t, p string }
	var audio []key
	for _, t := range bookRel.Tuples() {
		if t[2].Str() == "audio" {
			audio = append(audio, key{t[0].Str(), t[1].Str()})
		}
	}
	if len(audio) == 0 {
		bookRel.MustInsert(relation.Tuple{
			relation.String(titles[0]), relation.String(prices[0]), relation.String("audio"),
		})
		audio = append(audio, key{titles[0], prices[0]})
	}
	for i := 0; i < nCD; i++ {
		if rng.Intn(2) == 0 {
			// Music CD: out of the CIND's scope.
			cdRel.MustInsert(relation.Tuple{
				relation.String(titles[rng.Intn(len(titles))]),
				relation.String(prices[rng.Intn(len(prices))]),
				relation.String("music"),
			})
			continue
		}
		w := audio[rng.Intn(len(audio))]
		cdRel.MustInsert(relation.Tuple{
			relation.String(w.t), relation.String(w.p), relation.String("a-book"),
		})
	}
	// Plant violations: a-book CDs with titles absent from book.
	for i := 0; i < violations; i++ {
		tid := cdRel.MustInsert(relation.Tuple{
			relation.String(fmt.Sprintf("missing album %d", i)),
			relation.String(prices[rng.Intn(len(prices))]),
			relation.String("a-book"),
		})
		planted = append(planted, tid)
	}
	return cdRel, bookRel, planted
}

// OrdersCIND returns the tutorial's CIND over the Orders schemas.
func OrdersCIND() *cind.CIND {
	cdS, bookS := OrderSchemas()
	return cind.MustParse(
		"cind psi: CD(album, price | genre='a-book') <= book(title, price | format='audio')",
		cdS, bookS)
}
