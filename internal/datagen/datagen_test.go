package datagen

import (
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
)

func TestCustSatisfiesPlantedConstraints(t *testing.T) {
	r := Cust(2000, 1)
	if r.Len() != 2000 {
		t.Fatalf("len = %d", r.Len())
	}
	set := CustConstraints()
	vs, err := cfd.NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean cust data violates planted constraints: %d violations, first %v", len(vs), vs[0])
	}
}

func TestCustDeterministic(t *testing.T) {
	a, b := Cust(100, 7), Cust(100, 7)
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).Equal(b.Tuple(i)) {
			t.Fatalf("tuple %d differs across same-seed runs", i)
		}
	}
	c := Cust(100, 8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).Equal(c.Tuple(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestCustSkewedGroups(t *testing.T) {
	// Zipf region choice must produce skew: the largest (CC, AC) group
	// should be several times the smallest non-empty one.
	r := Cust(5000, 3)
	counts := map[string]int{}
	for _, tup := range r.Tuples() {
		counts[tup[0].Str()+"|"+tup[1].Str()]++
	}
	mx, mn := 0, 1<<30
	for _, c := range counts {
		if c > mx {
			mx = c
		}
		if c < mn {
			mn = c
		}
	}
	if mx < 3*mn {
		t.Errorf("expected skewed groups, got max %d vs min %d", mx, mn)
	}
}

func TestCustTableauSize(t *testing.T) {
	for _, rows := range []int{1, 6, 32} {
		set := CustTableau(rows)
		if set.TotalRows() != rows {
			t.Errorf("CustTableau(%d) has %d rows", rows, set.TotalRows())
		}
		// The synthetic rows must not introduce violations on clean data.
		r := Cust(500, 11)
		vs, err := cfd.NewDetector(set).Detect(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Errorf("CustTableau(%d) fires on clean data: %v", rows, vs)
		}
	}
}

func TestHospSatisfiesPlantedConstraints(t *testing.T) {
	r := Hosp(1500, 2)
	set := HospConstraints()
	vs, err := cfd.NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean hosp data violates planted constraints: %v", vs[:min(3, len(vs))])
	}
}

func TestOrdersPlantedViolations(t *testing.T) {
	cdRel, bookRel, planted := Orders(500, 300, 7, 5)
	psi := OrdersCIND()
	vs, err := cind.Detect(cdRel, bookRel, psi)
	if err != nil {
		t.Fatal(err)
	}
	got := cind.ViolatingTIDs(vs)
	if len(got) != len(planted) {
		t.Fatalf("violations = %v, planted %v", got, planted)
	}
	plantedSet := map[int]bool{}
	for _, tid := range planted {
		plantedSet[tid] = true
	}
	for _, tid := range got {
		if !plantedSet[tid] {
			t.Errorf("unplanted violation at tid %d", tid)
		}
	}
}

func TestOrdersZeroViolations(t *testing.T) {
	cdRel, bookRel, planted := Orders(300, 200, 0, 9)
	if len(planted) != 0 {
		t.Fatal("no violations requested")
	}
	ok, err := cind.Satisfies(cdRel, bookRel, OrdersCIND())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("violation-free Orders data should satisfy the CIND")
	}
}
