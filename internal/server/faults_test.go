package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"semandaq/internal/engine"
)

// startFaultyCluster boots an n-worker cluster where wrap (if non-nil)
// can wrap each worker's handler — the hook the fault injector plugs
// into — and every shard client runs the given retry policy. Returns
// the coordinator's test server plus the shard clients for
// retry-counter assertions.
func startFaultyCluster(t *testing.T, n int, policy RetryPolicy, wrap func(i int, h http.Handler) http.Handler) (*httptest.Server, []*HTTPShardClient) {
	t.Helper()
	clients := make([]engine.ShardClient, n)
	raw := make([]*HTTPShardClient, n)
	for i := range clients {
		eng := engine.New(engine.Options{})
		var h http.Handler = New(eng)
		if wrap != nil {
			h = wrap(i, h)
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		t.Cleanup(eng.Close)
		cl := NewShardClient(ws.URL, 10*time.Second)
		cl.SetRetryPolicy(policy)
		raw[i] = cl
		clients[i] = cl
	}
	coord, err := engine.NewCoordinator(clients)
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(NewCoordinator(coord))
	t.Cleanup(cs.Close)
	return cs, raw
}

func isShardRead(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/shard/detect") ||
		strings.HasPrefix(r.URL.Path, "/v1/shard/groups") ||
		strings.HasPrefix(r.URL.Path, "/v1/shard/dc")
}

// TestClusterRetryRecoversFlakyWorker: a worker that fails its first
// few shard-detect calls (5xx and connection resets) must not fail the
// request — the client's bounded retries absorb the faults and the
// merged result is byte-identical to a healthy cluster's.
func TestClusterRetryRecoversFlakyWorker(t *testing.T) {
	healthy, _ := startFaultyCluster(t, 2, RetryPolicy{MaxAttempts: 1}, nil)
	registerCust(t, healthy, "cust", 300)
	code, want := call(t, healthy, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("healthy detect: %d %v", code, want)
	}

	var inj *FaultInjector
	policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 7}
	flaky, raw := startFaultyCluster(t, 2, policy, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		inj = InjectFaults(h, FaultOptions{
			Seed:      42,
			Rate:      1,
			Modes:     []FaultMode{Fault500, FaultReset},
			Match:     isShardRead,
			MaxFaults: 2,
		})
		return inj
	})
	registerCust(t, flaky, "cust", 300)
	code, got := call(t, flaky, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("flaky detect: %d %v", code, got)
	}
	if got["degraded"] != nil {
		t.Fatalf("retries should have absorbed the faults, got degraded result: %v", got)
	}
	if !reflect.DeepEqual(got["violations"], want["violations"]) {
		t.Fatal("flaky-cluster detect diverges from healthy cluster")
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults injected — test proved nothing")
	}
	if raw[1].Retries() == 0 {
		t.Fatal("client recorded no retries")
	}
	// The per-worker stats label the absorbed failures by cause.
	code, stats := call(t, flaky, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatal("stats failed")
	}
	ws := stats["workers"].(map[string]any)[raw[1].URL()].(map[string]any)
	if ws["retries"].(float64) == 0 {
		t.Fatalf("stats show no retries for the flaky worker: %v", ws)
	}
}

// TestClusterDegradedDetect: a worker that dies outright mid-detect
// must degrade the answer, not 502 it — the response carries the
// surviving shards' violations plus an explicit degraded flag and the
// dead worker's URL and cause. And the degraded answer must never be
// cached as the dataset's violation list.
func TestClusterDegradedDetect(t *testing.T) {
	clients := make([]engine.ShardClient, 2)
	raw := make([]*HTTPShardClient, 2)
	servers := make([]*httptest.Server, 2)
	for i := range clients {
		eng := engine.New(engine.Options{})
		servers[i] = httptest.NewServer(New(eng))
		t.Cleanup(servers[i].Close)
		t.Cleanup(eng.Close)
		raw[i] = NewShardClient(servers[i].URL, 5*time.Second)
		clients[i] = raw[i]
	}
	coord, err := engine.NewCoordinator(clients)
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(NewCoordinator(coord))
	t.Cleanup(cs.Close)

	registerCust(t, cs, "cust", 300)
	code, full := call(t, cs, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK || full["degraded"] != nil {
		t.Fatalf("healthy detect: %d %v", code, full)
	}

	servers[1].Close() // worker 1 dies
	code, got := call(t, cs, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("degraded detect should answer 200, got %d %v", code, got)
	}
	if got["degraded"] != true {
		t.Fatalf("missing degraded flag: %v", got)
	}
	failed := got["failed_workers"].([]any)
	if len(failed) != 1 {
		t.Fatalf("failed_workers = %v", failed)
	}
	fw := failed[0].(map[string]any)
	if fw["url"] != raw[1].URL() || fw["cause"] != "transport" {
		t.Fatalf("failure label = %v", fw)
	}
	// Partial ≤ full, and the surviving shard's answer is sound: every
	// reported violation is also in the full answer.
	if got["count"].(float64) > full["count"].(float64) {
		t.Fatalf("degraded count %v exceeds full %v", got["count"], full["count"])
	}

	// The degraded answer must not serve from the violation cache: the
	// cached entry is still the last full detect.
	code, vio := call(t, cs, "GET", "/v1/datasets/cust/violations", nil)
	if code != http.StatusOK {
		t.Fatalf("violations after degradation: %d %v", code, vio)
	}
	if !reflect.DeepEqual(vio["violations"], full["violations"]) {
		t.Fatal("degraded detect poisoned the violation cache")
	}

	// All workers dead is a plain error, never a silent empty answer.
	servers[0].Close()
	code, body := call(t, cs, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusBadGateway {
		t.Fatalf("all-dead detect = %d %v, want 502", code, body)
	}
}

// TestClusterAppendNotRetried: appends are at-most-once — an injected
// failure surfaces as an error (the client must NOT blind-retry a
// non-idempotent call), and the retry counter stays at zero.
func TestClusterAppendNotRetried(t *testing.T) {
	policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 3}
	var inj *FaultInjector
	cs, raw := startFaultyCluster(t, 2, policy, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		inj = InjectFaults(h, FaultOptions{
			Seed:      5,
			Rate:      1,
			Modes:     []FaultMode{Fault500},
			Match:     func(r *http.Request) bool { return r.URL.Path == "/v1/repair/incremental" },
			MaxFaults: 1,
		})
		return inj
	})
	registerCust(t, cs, "cust", 100)
	row := [][]string{{"01", "908", "908-1111111", "amy", "Main Rd", "mh", "07974"}}
	code, body := call(t, cs, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "cust", "tuples": row,
	})
	if code != http.StatusBadGateway {
		t.Fatalf("faulted append = %d %v, want 502", code, body)
	}
	if raw[1].Retries() != 0 {
		t.Fatalf("append was retried %d times — must stay at-most-once", raw[1].Retries())
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d", inj.Injected())
	}
	// The fault budget is spent; the next append goes through and the
	// dataset stays consistent (no double-ingest from a hidden retry).
	code, body = call(t, cs, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "cust", "tuples": row,
	})
	if code != http.StatusOK || body["appended"].(float64) != 1 {
		t.Fatalf("recovered append: %d %v", code, body)
	}
	if body["tuples"].(float64) != 101 {
		t.Fatalf("tuples = %v, want 101 (exactly one ingest)", body["tuples"])
	}
}

// TestRecoveryGate: while SetRecovering is up every route answers 503
// — /healthz with a named "recovering" phase — and the rejects are
// counted in /v1/stats once the gate drops.
func TestRecoveryGate(t *testing.T) {
	eng := engine.New(engine.Options{})
	t.Cleanup(eng.Close)
	srv := New(eng)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	srv.SetRecovering(true)
	code, body := call(t, ts, "GET", "/healthz", nil)
	if code != http.StatusServiceUnavailable || body["status"] != "recovering" {
		t.Fatalf("recovering healthz = %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "x"})
	if code != http.StatusServiceUnavailable || body["error"] == "" {
		t.Fatalf("gated detect = %d %v", code, body)
	}

	srv.SetRecovering(false)
	code, body = call(t, ts, "GET", "/healthz", nil)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("post-recovery healthz = %d %v", code, body)
	}
	code, stats := call(t, ts, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if stats["recovery_rejects"].(float64) != 2 {
		t.Fatalf("recovery_rejects = %v, want 2", stats["recovery_rejects"])
	}
	rec := stats["endpoints"].(map[string]any)["(recovering)"].(map[string]any)
	if rec["requests"].(float64) != 2 || rec["errors"].(float64) != 2 {
		t.Fatalf("(recovering) route totals = %v", rec)
	}
}
