package server

import (
	"net/http"
	"sync"
	"time"
)

// Per-endpoint request accounting, exposed by GET /v1/stats on both the
// single-process server and the coordinator so load-generator numbers
// can be cross-checked server-side: request counts, error counts
// (status >= 400), and cumulative handler latency per route pattern.

type routeTotals struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	TotalMS  float64 `json:"total_ms"`
	AvgMS    float64 `json:"avg_ms"`
}

type serverStats struct {
	mu     sync.Mutex
	routes map[string]*routeTotals
}

func newServerStats() *serverStats {
	return &serverStats{routes: map[string]*routeTotals{}}
}

func (st *serverStats) record(route string, code int, d time.Duration) {
	st.mu.Lock()
	t := st.routes[route]
	if t == nil {
		t = &routeTotals{}
		st.routes[route] = t
	}
	t.Requests++
	if code >= 400 {
		t.Errors++
	}
	t.TotalMS += float64(d.Microseconds()) / 1000
	st.mu.Unlock()
}

func (st *serverStats) snapshot() map[string]routeTotals {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]routeTotals, len(st.routes))
	for route, t := range st.routes {
		c := *t
		if c.Requests > 0 {
			c.AvgMS = c.TotalMS / float64(c.Requests)
		}
		out[route] = c
	}
	return out
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// recoveringRoute is the stats bucket requests rejected by the startup
// recovery gate land in — they never reach the mux, so they'd
// otherwise be invisible in /v1/stats.
const recoveringRoute = "(recovering)"

func (st *serverStats) recoveryRejects() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if t := st.routes[recoveringRoute]; t != nil {
		return t.Requests
	}
	return 0
}

// serveRecovering answers every request 503 while WAL replay runs.
// /healthz reports the phase by name so probes can distinguish a
// recovering daemon from a dead one; everything else is a structured
// error, and all of it is counted under "(recovering)".
func serveRecovering(st *serverStats, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
	} else {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "recovering: write-ahead log replay in progress"})
	}
	st.record(recoveringRoute, http.StatusServiceUnavailable, time.Since(start))
}

// serveInstrumented routes r through mux while recording the matched
// pattern's count, error count and latency into st.
func serveInstrumented(mux *http.ServeMux, st *serverStats, w http.ResponseWriter, r *http.Request) {
	// Handler only names the matched pattern; serving must go through
	// mux.ServeHTTP so wildcard path values get bound on the request.
	_, pattern := mux.Handler(r)
	if pattern == "" {
		pattern = "(unmatched)"
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	mux.ServeHTTP(sw, r)
	st.record(pattern, sw.code, time.Since(start))
}
