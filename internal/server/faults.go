package server

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Fault-injection middleware for cluster tests and load experiments: a
// handler wrapper that makes a worker flaky on demand — 5xx replies, a
// stalled response (to trip the client's per-attempt timeout), or a
// hard connection reset — under a seeded RNG so every run injects the
// same fault sequence. The cluster fault tests wrap workers in this to
// prove the coordinator's retry/backoff and degraded-detect paths
// against real HTTP failures rather than hand-mocked errors.

// FaultMode is one injectable failure kind.
type FaultMode string

const (
	// Fault500 answers 500 with a JSON error body.
	Fault500 FaultMode = "500"
	// FaultReset hijacks the connection and closes it mid-request —
	// the client sees an abrupt transport error (EOF / connection
	// reset), not an HTTP status.
	FaultReset FaultMode = "reset"
	// FaultDelay stalls Delay before serving normally — long enough
	// delays surface as client-side timeouts.
	FaultDelay FaultMode = "delay"
)

// FaultOptions configures a FaultInjector.
type FaultOptions struct {
	// Seed drives the injection draws; the same seed injects the same
	// fault sequence.
	Seed int64
	// Rate is the per-request injection probability in [0, 1]. 1
	// injects on every matched request.
	Rate float64
	// Modes are drawn from uniformly per injection (default Fault500).
	Modes []FaultMode
	// Delay is FaultDelay's stall.
	Delay time.Duration
	// Match limits injection to matching requests (nil = all).
	Match func(r *http.Request) bool
	// MaxFaults stops injecting after this many faults (0 = unlimited)
	// — "flaky then healthy", the shape retry tests need.
	MaxFaults int
}

// FaultInjector wraps a handler with injected failures.
type FaultInjector struct {
	next http.Handler
	opts FaultOptions

	mu       sync.Mutex
	rng      *rand.Rand
	injected int
}

// InjectFaults wraps next with fault injection.
func InjectFaults(next http.Handler, opts FaultOptions) *FaultInjector {
	if len(opts.Modes) == 0 {
		opts.Modes = []FaultMode{Fault500}
	}
	return &FaultInjector{
		next: next,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Injected reports how many faults have fired.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// draw decides, under the lock, whether this request faults and how.
func (f *FaultInjector) draw() (FaultMode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.MaxFaults > 0 && f.injected >= f.opts.MaxFaults {
		return "", false
	}
	if f.rng.Float64() >= f.opts.Rate {
		return "", false
	}
	f.injected++
	return f.opts.Modes[f.rng.Intn(len(f.opts.Modes))], true
}

// ServeHTTP implements http.Handler.
func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.opts.Match != nil && !f.opts.Match(r) {
		f.next.ServeHTTP(w, r)
		return
	}
	mode, fire := f.draw()
	if !fire {
		f.next.ServeHTTP(w, r)
		return
	}
	switch mode {
	case FaultReset:
		hj, ok := w.(http.Hijacker)
		if !ok {
			// No hijack support (e.g. HTTP/2): degrade to a 500.
			writeError(w, http.StatusInternalServerError, errInjected)
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			writeError(w, http.StatusInternalServerError, errInjected)
			return
		}
		conn.Close()
	case FaultDelay:
		time.Sleep(f.opts.Delay)
		f.next.ServeHTTP(w, r)
	default:
		writeError(w, http.StatusInternalServerError, errInjected)
	}
}

// errInjected marks injected failures in response bodies.
var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected fault" }
