package server

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

// Worker-side shard protocol of scatter-gather detection. A worker is
// an ordinary semandaqd process (every server mounts these routes; the
// -worker flag only changes startup logging): the coordinator
// range-partitions a dataset at registration, each worker owns its
// contiguous TID slice as a normal session, and these endpoints expose
// the shard-local halves the coordinator merges.
//
// Values cross the wire as base64 of their exact relation.Value.Encode
// bytes — the same injective encoding that defines group identity — so
// worker-side interning, group keys and detection results are
// bit-identical to the coordinator's view of the same tuples (JSON
// numbers would round-trip float64s and large int64s lossily).
//
//	POST /v1/shard/register  ingest a TID-range slice (exact tuples)
//	POST /v1/shard/detect    per-group shard-local CFD detection
//	POST /v1/shard/groups    boundary-group members for the merge
//	POST /v1/shard/dc        shard-local DC detection + group keys
//
// TIDs in every response are shard-local; the coordinator translates.

type shardRegisterRequest struct {
	Name   string     `json:"name"`
	Schema schemaJSON `json:"schema"`
	// Rows are base64(EncodeTuple): each row the concatenation of all
	// attributes' Value.Encode bytes.
	Rows []string `json:"rows"`
}

func (s *Server) handleShardRegister(w http.ResponseWriter, r *http.Request) {
	var req shardRegisterRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	attrs := make([]relation.Attribute, len(req.Schema.Attrs))
	for i, a := range req.Schema.Attrs {
		kind, err := relation.ParseKind(a.Kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		attrs[i] = relation.Attribute{Name: a.Name, Kind: kind}
	}
	schema, err := relation.NewSchema(req.Schema.Name, attrs...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tuples := make([]relation.Tuple, len(req.Rows))
	for i, row := range req.Rows {
		raw, err := base64.StdEncoding.DecodeString(row)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		t, err := relation.DecodeTuple(raw, schema.Arity())
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		tuples[i] = t
	}
	sess, err := s.eng.RegisterExact(req.Name, schema, tuples)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": sess.Name(), "tuples": sess.Len()})
}

type shardDetectRequest struct {
	Dataset string `json:"dataset"`
	// CFDs, when non-empty, detects this constraint text instead of the
	// installed set (the coordinator's discovery verification).
	CFDs string `json:"cfds,omitempty"`
}

type shardVioJSON struct {
	Row  int   `json:"row"`
	Kind int   `json:"kind"`
	Attr int   `json:"attr"`
	TIDs []int `json:"tids"`
}

type shardGroupJSON struct {
	Key  string         `json:"key"` // base64 of the composite Encode key
	N    int            `json:"n"`
	Vios []shardVioJSON `json:"vios,omitempty"`
}

type shardCFDJSON struct {
	Groups []shardGroupJSON `json:"groups"`
}

func (s *Server) handleShardDetect(w http.ResponseWriter, r *http.Request) {
	var req shardDetectRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	var set *cfd.Set // nil = installed
	if req.CFDs != "" {
		var err error
		set, err = s.eng.CompileConstraints(sess.Schema(), req.CFDs)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	start := time.Now()
	results, err := sess.ShardDetect(set)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]shardCFDJSON, len(results))
	for ci, sr := range results {
		groups := make([]shardGroupJSON, len(sr.Groups))
		for gi, g := range sr.Groups {
			gj := shardGroupJSON{Key: base64.StdEncoding.EncodeToString([]byte(g.Key)), N: g.N}
			for _, v := range g.Vios {
				gj.Vios = append(gj.Vios, shardVioJSON{Row: v.Row, Kind: int(v.Kind), Attr: v.Attr, TIDs: v.TIDs})
			}
			groups[gi] = gj
		}
		out[ci] = shardCFDJSON{Groups: groups}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cfds":       out,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

type shardGroupsRequest struct {
	Dataset   string   `json:"dataset"`
	PartAttrs []int    `json:"part_attrs"`
	ValAttrs  []int    `json:"val_attrs"`
	Keys      []string `json:"keys"` // base64 composite keys
}

type shardMembersJSON struct {
	TIDs []int `json:"tids,omitempty"`
	// Rows[i] is base64 of the concatenation of TIDs[i]'s Value.Encode
	// bytes over ValAttrs, in ValAttrs order.
	Rows []string `json:"rows,omitempty"`
}

func (s *Server) handleShardGroups(w http.ResponseWriter, r *http.Request) {
	var req shardGroupsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	keys := make([]string, len(req.Keys))
	for i, k := range req.Keys {
		raw, err := base64.StdEncoding.DecodeString(k)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("key %d: %w", i, err))
			return
		}
		keys[i] = string(raw)
	}
	groups, err := sess.ShardGroups(req.PartAttrs, req.ValAttrs, keys)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]shardMembersJSON, len(groups))
	var buf []byte
	for i, g := range groups {
		mj := shardMembersJSON{TIDs: g.TIDs, Rows: make([]string, len(g.Rows))}
		for m, row := range g.Rows {
			buf = buf[:0]
			for _, a := range req.ValAttrs {
				buf = row[a].Encode(buf)
			}
			mj.Rows[m] = base64.StdEncoding.EncodeToString(buf)
		}
		out[i] = mj
	}
	writeJSON(w, http.StatusOK, map[string]any{"groups": out})
}

type shardDCRequest struct {
	Dataset string `json:"dataset"`
}

type shardDCJSON struct {
	Name string       `json:"name"`
	Vios []dcPairJSON `json:"vios,omitempty"`
	Keys []string     `json:"keys,omitempty"` // base64 equality-group keys
}

type dcPairJSON struct {
	T int `json:"t"`
	U int `json:"u"`
}

func (s *Server) handleShardDC(w http.ResponseWriter, r *http.Request) {
	var req shardDCRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	results := sess.ShardDCs()
	out := make([]shardDCJSON, len(results))
	for i, res := range results {
		dj := shardDCJSON{Name: res.Name}
		for _, v := range res.Result.Vios {
			dj.Vios = append(dj.Vios, dcPairJSON{T: v.T, U: v.U})
		}
		for _, k := range res.Result.Keys {
			dj.Keys = append(dj.Keys, base64.StdEncoding.EncodeToString([]byte(k)))
		}
		out[i] = dj
	}
	writeJSON(w, http.StatusOK, map[string]any{"dcs": out})
}
