package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"semandaq/internal/dc"
	"semandaq/internal/engine"
)

// Denial-constraint endpoints (see internal/dc): install a DC set next
// to a dataset's CFD set, detect violations through the shared PLI
// cache, and answer a violated DC with ranked relaxations of the rule
// alongside the violating TIDs the value-repair path takes instead.

type dcsRequest struct {
	Dataset string `json:"dataset"`
	// DCs is the constraint text, one DC per line in the internal/dc
	// grammar, e.g. "dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )".
	// Installing REPLACES the dataset's whole DC set (like
	// POST /v1/constraints does for CFDs) — resend every DC to keep.
	DCs string `json:"dcs"`
}

func (s *Server) handleDCs(w http.ResponseWriter, r *http.Request) {
	var req dcsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	set, err := s.eng.InstallDCs(req.Dataset, req.DCs)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, engine.ErrUnknownDataset) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"installed": set.Len()})
}

type dcJSON struct {
	Name       string `json:"name"`
	Constraint string `json:"constraint"`
}

func (s *Server) handleDCList(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r.PathValue("name"))
	if !ok {
		return
	}
	all := sess.DCs().All()
	out := make([]dcJSON, len(all))
	for i, d := range all {
		out[i] = dcJSON{Name: d.Name(), Constraint: d.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dcs": out})
}

type dcDetectRequest struct {
	Dataset string `json:"dataset"`
	// Limit truncates each DC's (t,u)-sorted violation list (0 = all).
	Limit int `json:"limit,omitempty"`
}

type dcReportJSON struct {
	Name       string         `json:"name"`
	Constraint string         `json:"constraint"`
	Count      int            `json:"count"`
	Truncated  bool           `json:"truncated"`
	Violations []dc.Violation `json:"violations"`
	TIDs       []int          `json:"tids"`
}

func (s *Server) handleDCDetect(w http.ResponseWriter, r *http.Request) {
	var req dcDetectRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	start := time.Now()
	reports := sess.DetectDCs(req.Limit)
	out := make([]dcReportJSON, len(reports))
	total := 0
	for i, rep := range reports {
		out[i] = dcReportJSON{
			Name:       rep.Name,
			Constraint: rep.Constraint,
			Count:      len(rep.Violations),
			Truncated:  rep.Truncated,
			Violations: rep.Violations,
			TIDs:       dc.ViolatingTIDs(rep.Violations),
		}
		total += len(rep.Violations)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      total,
		"reports":    out,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

type dcRelaxRequest struct {
	Dataset string `json:"dataset"`
	DC      string `json:"dc"`
	// Limit caps the number of weakenings returned (0 = all).
	Limit int `json:"limit,omitempty"`
}

type weakeningJSON struct {
	Kind       string `json:"kind"`
	Pred       int    `json:"pred"`
	Constraint string `json:"constraint,omitempty"` // empty for kind "drop"
	Desc       string `json:"desc"`
	Resolved   int    `json:"resolved"`
	Total      int    `json:"total"`
	Consistent bool   `json:"consistent"`
}

func (s *Server) handleDCRelax(w http.ResponseWriter, r *http.Request) {
	var req dcRelaxRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	if req.DC == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing dc name"))
		return
	}
	weaks, vios, err := sess.RelaxDC(req.DC, req.Limit)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	out := make([]weakeningJSON, len(weaks))
	for i, wk := range weaks {
		out[i] = weakeningJSON{
			Kind:       wk.Kind,
			Pred:       wk.Pred,
			Desc:       wk.Desc,
			Resolved:   wk.Resolved,
			Total:      wk.Total,
			Consistent: wk.Consistent,
		}
		if wk.Weakened != nil {
			out[i].Constraint = wk.Weakened.String()
		}
	}
	// The violating TIDs are the input to the value-repair alternative:
	// edit/confirm those tuples (POST /v1/edit, /v1/repair) instead of
	// weakening the rule.
	writeJSON(w, http.StatusOK, map[string]any{
		"violations": len(vios),
		"tids":       dc.ViolatingTIDs(vios),
		"weakenings": out,
	})
}
