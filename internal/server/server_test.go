package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"semandaq/internal/engine"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(engine.New(engine.Options{})))
	t.Cleanup(ts.Close)
	return ts
}

// call performs a JSON request and decodes the JSON response.
func call(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return resp.StatusCode, out
}

// registerCust registers a generated noisy cust dataset and installs
// the planted constraints.
func registerCust(t *testing.T, ts *httptest.Server, name string, n int) {
	t.Helper()
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     name,
		"generate": map[string]any{"kind": "cust", "n": n, "rate": 0.05, "seed": 1},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/constraints", map[string]any{
		"dataset": name,
		"cfds": `
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi3: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh') }
`,
	})
	if code != http.StatusOK {
		t.Fatalf("constraints: %d %v", code, body)
	}
	if body["installed"].(float64) != 2 {
		t.Fatalf("installed = %v", body["installed"])
	}
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	code, body := call(t, ts, "GET", "/healthz", nil)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t)
	registerCust(t, ts, "cust", 500)

	// Duplicate registration conflicts.
	code, _ := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     "cust",
		"generate": map[string]any{"kind": "cust", "n": 10},
	})
	if code != http.StatusConflict {
		t.Fatalf("duplicate register = %d", code)
	}

	code, body := call(t, ts, "GET", "/v1/datasets", nil)
	if code != http.StatusOK || len(body["datasets"].([]any)) != 1 {
		t.Fatalf("list: %d %v", code, body)
	}
	code, body = call(t, ts, "GET", "/v1/datasets/cust", nil)
	if code != http.StatusOK || body["tuples"].(float64) != 500 {
		t.Fatalf("info: %d %v", code, body)
	}
	code, _ = call(t, ts, "GET", "/v1/datasets/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("info unknown = %d", code)
	}
	code, _ = call(t, ts, "DELETE", "/v1/datasets/cust", nil)
	if code != http.StatusOK {
		t.Fatalf("drop = %d", code)
	}
	code, _ = call(t, ts, "DELETE", "/v1/datasets/cust", nil)
	if code != http.StatusNotFound {
		t.Fatalf("double drop = %d", code)
	}
}

func TestRegisterInlineCSV(t *testing.T) {
	ts := newTestServer(t)
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name": "mini",
		"schema": map[string]any{
			"name": "mini",
			"attrs": []map[string]any{
				{"name": "A", "kind": "string"},
				{"name": "B", "kind": "int"},
			},
		},
		"csv": "A,B\nx,1\ny,2\n",
	})
	if code != http.StatusCreated {
		t.Fatalf("register csv: %d %v", code, body)
	}
	if body["tuples"].(float64) != 2 {
		t.Fatalf("tuples = %v", body["tuples"])
	}
	// Bad CSV surfaces as 400 with a JSON error.
	code, body = call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name": "bad",
		"schema": map[string]any{
			"name":  "bad",
			"attrs": []map[string]any{{"name": "A", "kind": "string"}},
		},
		"csv": "WRONG\nx\n",
	})
	if code != http.StatusBadRequest || body["error"] == "" {
		t.Fatalf("bad csv: %d %v", code, body)
	}
}

func TestDetectRepairFlow(t *testing.T) {
	ts := newTestServer(t)
	registerCust(t, ts, "cust", 800)

	code, body := call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("detect: %d %v", code, body)
	}
	count := body["count"].(float64)
	if count == 0 {
		t.Fatal("noisy dataset should have violations")
	}
	if len(body["violations"].([]any)) != int(count) {
		t.Fatalf("violations list (%d) disagrees with count (%v)", len(body["violations"].([]any)), count)
	}

	// limit truncates the list but not the count.
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "cust", "limit": 1})
	if code != http.StatusOK || body["count"].(float64) != count || len(body["violations"].([]any)) != 1 {
		t.Fatalf("detect limit: %d %v", code, body)
	}

	// Cached violations endpoint agrees.
	code, body = call(t, ts, "GET", "/v1/datasets/cust/violations", nil)
	if code != http.StatusOK || body["count"].(float64) != count {
		t.Fatalf("violations: %d %v", code, body)
	}

	// Repair with accept leaves the dataset clean.
	code, body = call(t, ts, "POST", "/v1/repair", map[string]any{"dataset": "cust", "accept": true})
	if code != http.StatusOK {
		t.Fatalf("repair: %d %v", code, body)
	}
	if len(body["changes"].([]any)) == 0 || body["accepted"] != true {
		t.Fatalf("repair result: %v", body)
	}
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("post-repair detect: %d %v", code, body)
	}
}

func TestRepairIncremental(t *testing.T) {
	ts := newTestServer(t)
	// Clean base so the IncRepair precondition holds.
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     "base",
		"generate": map[string]any{"kind": "cust", "n": 400, "rate": 0, "seed": 5},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/constraints", map[string]any{
		"dataset": "base",
		"cfds":    "cfd phi1: cust([CC='44', ZIP] -> [STR])",
	})
	if code != http.StatusOK {
		t.Fatalf("constraints: %d %v", code, body)
	}
	// Find an existing UK zip group to conflict with: read two tuples
	// back via a detect-less route — generate deterministically instead.
	// The generator's first EH zip is "EH0 0XX" with street "edi street 0".
	code, body = call(t, ts, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "base",
		"tuples": [][]string{
			{"44", "131", "131-0000001", "zoe", "wrong street", "edi", "EH0 0XX"},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("incremental: %d %v", code, body)
	}
	if body["appended"].(float64) != 1 || body["tuples"].(float64) != 401 {
		t.Fatalf("incremental counts: %v", body)
	}
	// After incremental repair the whole dataset is violation-free.
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "base"})
	if code != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("post-incremental detect: %d %v", code, body)
	}

	// A second append on the now-warm session must be served by
	// advancing the cached partitions, not rebuilding them — the dataset
	// JSON exposes the advances counter and misses stay frozen.
	code, body = call(t, ts, "GET", "/v1/datasets/base", nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	warm := body["index_cache"].(map[string]any)
	code, body = call(t, ts, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "base",
		"tuples": [][]string{
			{"44", "131", "131-0000002", "amy", "wrong street", "edi", "EH0 0XX"},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("second incremental: %d %v", code, body)
	}
	code, body = call(t, ts, "GET", "/v1/datasets/base", nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	after := body["index_cache"].(map[string]any)
	if after["misses"].(float64) != warm["misses"].(float64) {
		t.Fatalf("warm incremental append rebuilt partitions: %v -> %v", warm, after)
	}
	if after["advances"].(float64) <= warm["advances"].(float64) {
		t.Fatalf("warm incremental append did not advance partitions: %v -> %v", warm, after)
	}

	// Arity mismatch is a 400.
	code, body = call(t, ts, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "base",
		"tuples":  [][]string{{"44", "131"}},
	})
	if code != http.StatusBadRequest || body["error"] == "" {
		t.Fatalf("arity mismatch: %d %v", code, body)
	}
}

// TestIncrementalRepairPatchCounter pins the patches counter in the
// per-dataset JSON: on a chained constraint set — psi1 repairs CT from
// the region tableau, psi2 keys a detection partition on (CT, ZIP) —
// a dirty incremental append drains the repair's CT write into the
// warm (CT, ZIP) partition as a per-cell patch instead of rebuilding
// it, and the dataset stats show it.
func TestIncrementalRepairPatchCounter(t *testing.T) {
	ts := newTestServer(t)
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     "base",
		"generate": map[string]any{"kind": "cust", "n": 400, "rate": 0, "seed": 5},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/constraints", map[string]any{
		"dataset": "base",
		"cfds": "cfd psi1: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi') }\n" +
			"cfd psi2: cust([CT, ZIP] -> [STR])",
	})
	if code != http.StatusOK {
		t.Fatalf("constraints: %d %v", code, body)
	}
	// Warm the detection partitions, then snapshot the cache counters.
	if code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "base"}); code != http.StatusOK {
		t.Fatalf("warm detect: %d %v", code, body)
	}
	code, body = call(t, ts, "GET", "/v1/datasets/base", nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	warm := body["index_cache"].(map[string]any)
	// A delta tuple with a corrupted CT: psi1's tableau repairs it back
	// to "edi", and that Set is a per-cell patch into psi2's cached
	// (CT, ZIP) partition.
	code, body = call(t, ts, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "base",
		"tuples": [][]string{
			{"44", "131", "131-0000009", "ian", "edi street 0", "zzz", "EH0 0XX"},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("dirty incremental: %d %v", code, body)
	}
	if rep := body["repair"].(map[string]any); len(rep["changes"].([]any)) == 0 {
		t.Fatalf("corrupted delta repaired no cells: %v", body)
	}
	code, body = call(t, ts, "GET", "/v1/datasets/base", nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	after := body["index_cache"].(map[string]any)
	if after["misses"].(float64) != warm["misses"].(float64) {
		t.Fatalf("dirty incremental append rebuilt partitions: %v -> %v", warm, after)
	}
	if after["patches"].(float64) <= warm["patches"].(float64) {
		t.Fatalf("repair write did not patch the cached partition: %v -> %v", warm, after)
	}
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "base"})
	if code != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("post-repair detect: %d %v", code, body)
	}
}

func TestDiscover(t *testing.T) {
	ts := newTestServer(t)
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     "clean",
		"generate": map[string]any{"kind": "cust", "n": 300, "rate": 0, "seed": 7},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/discover", map[string]any{
		"dataset": "clean", "min_support": 10, "max_lhs": 2, "install": true,
	})
	if code != http.StatusOK {
		t.Fatalf("discover: %d %v", code, body)
	}
	if body["count"].(float64) == 0 {
		t.Fatal("discovery found nothing on generated data")
	}
	// The installed discovered set holds on its own data.
	code, body = call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "clean"})
	if code != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("detect after discover+install: %d %v", code, body)
	}
	// Discovery runs on the session's PLI cache, and the dataset JSON
	// reports its counters: the lattice walk must have registered
	// partition intersections (refines), not just full builds.
	code, body = call(t, ts, "GET", "/v1/datasets/clean", nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	cacheStats := body["index_cache"].(map[string]any)
	if cacheStats["refines"].(float64) == 0 {
		t.Fatalf("discovery registered no partition intersections: %v", cacheStats)
	}
	if cacheStats["misses"].(float64) == 0 {
		t.Fatalf("expected some full partition builds: %v", cacheStats)
	}
	// The tiered-storage counters are part of the JSON contract even
	// when no spill store is configured (both flat at zero here).
	for _, k := range []string{"spills", "pageins"} {
		if _, ok := cacheStats[k]; !ok {
			t.Fatalf("index_cache missing %q: %v", k, cacheStats)
		}
	}
	if _, ok := body["index_resident_bytes"].(float64); !ok {
		t.Fatalf("dataset JSON missing index_resident_bytes: %v", body)
	}
}

func TestEditAndConfirm(t *testing.T) {
	ts := newTestServer(t)
	registerCust(t, ts, "cust", 200)
	code, body := call(t, ts, "POST", "/v1/edit", map[string]any{
		"dataset": "cust", "tid": 0, "attr": "STR", "value": "confirmed street",
	})
	if code != http.StatusOK || body["confirmed"].(float64) != 1 {
		t.Fatalf("edit: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/edit", map[string]any{
		"dataset": "cust", "tid": 1, "attr": "CT", "confirm": true,
	})
	if code != http.StatusOK || body["confirmed"].(float64) != 2 {
		t.Fatalf("confirm: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/edit", map[string]any{
		"dataset": "cust", "tid": 0, "attr": "NOPE", "confirm": true,
	})
	if code != http.StatusBadRequest || body["error"] == "" {
		t.Fatalf("bad attr: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/edit", map[string]any{
		"dataset": "cust", "tid": 0, "attr": "CT",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("neither value nor confirm: %d %v", code, body)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	// Unknown dataset on every POST route.
	for _, path := range []string{"/v1/detect", "/v1/repair", "/v1/discover"} {
		code, body := call(t, ts, "POST", path, map[string]any{"dataset": "ghost"})
		if code != http.StatusNotFound || body["error"] == "" {
			t.Errorf("%s unknown dataset: %d %v", path, code, body)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d", resp.StatusCode)
	}
	// Unknown fields are rejected (catches typoed requests).
	code, _ := call(t, ts, "POST", "/v1/detect", map[string]any{"dataset": "x", "workerz": 3})
	if code != http.StatusBadRequest {
		t.Errorf("unknown field = %d", code)
	}
	// Constraint parse error.
	registerCust(t, ts, "cust", 100)
	code, body := call(t, ts, "POST", "/v1/constraints", map[string]any{
		"dataset": "cust", "cfds": "this is not a cfd",
	})
	if code != http.StatusBadRequest || body["error"] == "" {
		t.Errorf("bad cfds: %d %v", code, body)
	}
}

// TestConcurrentDetect is the service-level acceptance check: many
// concurrent POST /v1/detect requests against a shared dataset, with a
// concurrent writer editing cells, all race-clean and all returning
// coherent responses.
func TestConcurrentDetect(t *testing.T) {
	ts := newTestServer(t)
	registerCust(t, ts, "cust", 2_000)

	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				raw, _ := json.Marshal(map[string]any{"dataset": "cust"})
				resp, err := ts.Client().Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(raw))
				if err != nil {
					errCh <- err
					return
				}
				var body map[string]any
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d round %d: status %d (%v)", i, r, resp.StatusCode, body)
					return
				}
				if _, ok := body["count"].(float64); !ok {
					errCh <- fmt.Errorf("client %d round %d: malformed response %v", i, r, body)
					return
				}
			}
		}(i)
	}
	// Concurrent writer through the API.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*5; r++ {
			raw, _ := json.Marshal(map[string]any{
				"dataset": "cust", "tid": r % 2000, "attr": "STR",
				"value": fmt.Sprintf("street-%d", r),
			})
			resp, err := ts.Client().Post(ts.URL+"/v1/edit", "application/json", bytes.NewReader(raw))
			if err != nil {
				errCh <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("edit round %d: status %d", r, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
