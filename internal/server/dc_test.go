package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"semandaq/internal/datagen"
)

// registerEmp registers a generated emp dataset with planted pay
// inversions and installs the pay-scale DC.
func registerEmp(t *testing.T, ts *httptest.Server, name string, n int, rate float64) {
	t.Helper()
	code, body := call(t, ts, "POST", "/v1/datasets", map[string]any{
		"name":     name,
		"generate": map[string]any{"kind": "emp", "n": n, "rate": rate, "seed": 5},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = call(t, ts, "POST", "/v1/dcs", map[string]any{
		"dataset": name, "dcs": datagen.EmpDCText(),
	})
	if code != http.StatusOK || body["installed"].(float64) != 1 {
		t.Fatalf("install dcs: %d %v", code, body)
	}
}

func TestDCDetectRelaxFlow(t *testing.T) {
	ts := newTestServer(t)
	registerEmp(t, ts, "emp", 400, 0.02)

	// Dataset info counts the installed DCs.
	code, info := call(t, ts, "GET", "/v1/datasets/emp", nil)
	if code != http.StatusOK || info["dcs"].(float64) != 1 {
		t.Fatalf("info: %d %v", code, info)
	}
	code, list := call(t, ts, "GET", "/v1/datasets/emp/dcs", nil)
	if code != http.StatusOK {
		t.Fatalf("list dcs: %d %v", code, list)
	}
	if dcs := list["dcs"].([]any); len(dcs) != 1 ||
		dcs[0].(map[string]any)["name"].(string) != "pay" {
		t.Fatalf("dc list = %v", list)
	}

	code, det := call(t, ts, "POST", "/v1/dc/detect", map[string]any{"dataset": "emp"})
	if code != http.StatusOK {
		t.Fatalf("dc detect: %d %v", code, det)
	}
	total := det["count"].(float64)
	if total == 0 {
		t.Fatalf("planted violations not detected: %v", det)
	}
	rep := det["reports"].([]any)[0].(map[string]any)
	if rep["name"].(string) != "pay" || rep["count"].(float64) != total {
		t.Fatalf("report = %v", rep)
	}
	if len(rep["tids"].([]any)) == 0 || len(rep["violations"].([]any)) == 0 {
		t.Fatalf("report missing witnesses: %v", rep)
	}

	// Truncation keeps count honest and flags the cut.
	code, det = call(t, ts, "POST", "/v1/dc/detect", map[string]any{"dataset": "emp", "limit": 1})
	rep = det["reports"].([]any)[0].(map[string]any)
	if code != http.StatusOK || len(rep["violations"].([]any)) != 1 || rep["truncated"].(bool) != true {
		t.Fatalf("limited detect: %d %v", code, det)
	}

	code, relax := call(t, ts, "POST", "/v1/dc/relax", map[string]any{"dataset": "emp", "dc": "pay"})
	if code != http.StatusOK {
		t.Fatalf("dc relax: %d %v", code, relax)
	}
	if relax["violations"].(float64) != total || len(relax["tids"].([]any)) == 0 {
		t.Fatalf("relax response = %v", relax)
	}
	weaks := relax["weakenings"].([]any)
	if len(weaks) == 0 {
		t.Fatalf("no weakenings proposed: %v", relax)
	}
	sawConsistent := false
	for _, w := range weaks {
		wk := w.(map[string]any)
		if wk["consistent"].(bool) {
			sawConsistent = true
		}
		if wk["kind"].(string) != "drop" && wk["constraint"].(string) == "" {
			t.Fatalf("non-drop weakening without constraint text: %v", wk)
		}
	}
	if !sawConsistent {
		t.Fatalf("no consistent weakening in %v", weaks)
	}
}

func TestDCErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	registerEmp(t, ts, "emp", 100, 0)

	if code, _ := call(t, ts, "POST", "/v1/dcs",
		map[string]any{"dataset": "nope", "dcs": datagen.EmpDCText()}); code != http.StatusNotFound {
		t.Errorf("install on unknown dataset: %d", code)
	}
	if code, _ := call(t, ts, "POST", "/v1/dcs",
		map[string]any{"dataset": "emp", "dcs": "dc bad: !( t.NOPE < 3 )"}); code != http.StatusBadRequest {
		t.Errorf("install invalid dc: %d", code)
	}
	if code, _ := call(t, ts, "POST", "/v1/dc/detect",
		map[string]any{"dataset": "nope"}); code != http.StatusNotFound {
		t.Errorf("detect on unknown dataset: %d", code)
	}
	if code, _ := call(t, ts, "POST", "/v1/dc/relax",
		map[string]any{"dataset": "emp", "dc": "nope"}); code != http.StatusNotFound {
		t.Errorf("relax unknown dc: %d", code)
	}
	if code, _ := call(t, ts, "POST", "/v1/dc/relax",
		map[string]any{"dataset": "emp"}); code != http.StatusBadRequest {
		t.Errorf("relax without dc name: %d", code)
	}
	// A clean dataset relaxes to nothing.
	code, relax := call(t, ts, "POST", "/v1/dc/relax", map[string]any{"dataset": "emp", "dc": "pay"})
	if code != http.StatusOK || relax["violations"].(float64) != 0 || len(relax["weakenings"].([]any)) != 0 {
		t.Errorf("relax on clean data: %d %v", code, relax)
	}
}
