package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"semandaq/internal/engine"
)

// startCluster boots an in-process cluster: n worker servers (each a
// full semandaqd engine behind httptest) plus a coordinator fronting
// them over real HTTP through HTTPShardClient.
func startCluster(t *testing.T, n int) *httptest.Server {
	t.Helper()
	clients := make([]engine.ShardClient, n)
	for i := range clients {
		eng := engine.New(engine.Options{})
		ws := httptest.NewServer(New(eng))
		t.Cleanup(ws.Close)
		t.Cleanup(eng.Close)
		clients[i] = NewShardClient(ws.URL, 30*time.Second)
	}
	coord, err := engine.NewCoordinator(clients)
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(NewCoordinator(coord))
	t.Cleanup(cs.Close)
	return cs
}

// TestClusterDetectMatchesSingle is the HTTP-level half of the
// byte-identity property: the same generated dataset registered on a
// single-process server and on coordinators with 1..3 workers must
// produce identical /v1/detect responses — same violations in the same
// order — with the boundary residual pass actually exercised at w >= 2.
func TestClusterDetectMatchesSingle(t *testing.T) {
	single := newTestServer(t)
	registerCust(t, single, "cust", 400)
	code, want := call(t, single, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("single detect: %d %v", code, want)
	}

	for _, w := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			cluster := startCluster(t, w)
			registerCust(t, cluster, "cust", 400)

			code, info := call(t, cluster, "GET", "/v1/datasets/cust", nil)
			if code != http.StatusOK {
				t.Fatalf("info: %d %v", code, info)
			}
			shards := info["shards"].([]any)
			if len(shards) != w {
				t.Fatalf("shards = %v, want %d entries", shards, w)
			}
			total := 0.0
			for _, s := range shards {
				total += s.(float64)
			}
			if total != 400 {
				t.Fatalf("shard counts sum to %v, want 400", total)
			}

			code, got := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
			if code != http.StatusOK {
				t.Fatalf("cluster detect: %d %v", code, got)
			}
			if got["count"] != want["count"] {
				t.Fatalf("count = %v, want %v", got["count"], want["count"])
			}
			if !reflect.DeepEqual(got["violations"], want["violations"]) {
				t.Fatalf("violations diverge from single-process detect:\n got %v\nwant %v",
					got["violations"], want["violations"])
			}
			if !reflect.DeepEqual(got["tids"], want["tids"]) {
				t.Fatalf("tids = %v, want %v", got["tids"], want["tids"])
			}
			res := got["residual"].(map[string]any)
			if w >= 2 && res["boundary_groups"].(float64) == 0 {
				t.Fatalf("workers=%d: no boundary groups — residual pass untested: %v", w, res)
			}
			if w == 1 && res["boundary_groups"].(float64) != 0 {
				t.Fatalf("workers=1: unexpected boundary groups: %v", res)
			}
			if f := res["boundary_fraction"].(float64); f < 0 || f > 1 {
				t.Fatalf("boundary_fraction = %v", f)
			}
			if len(got["workers"].([]any)) != w {
				t.Fatalf("workers = %v, want %d fan-out calls", got["workers"], w)
			}

			// The cached-violations path must agree with the fresh detect.
			code, vio := call(t, cluster, "GET", "/v1/datasets/cust/violations", nil)
			if code != http.StatusOK {
				t.Fatalf("violations: %d %v", code, vio)
			}
			if !reflect.DeepEqual(vio["violations"], want["violations"]) {
				t.Fatalf("cached violations diverge from single-process detect")
			}
		})
	}
}

// TestClusterAppendMatchesSingle routes appends through the coordinator
// (which owns only the tail worker's slice) and checks the next detect
// still matches a single process that appended the same tuples.
func TestClusterAppendMatchesSingle(t *testing.T) {
	rows := [][]string{
		{"01", "908", "908-1111111", "amy", "Main Rd", "mh", "07974"},
		{"44", "131", "131-2222222", "bob", "Elm Ave", "edi", "EH4 1ZZ"},
		{"44", "131", "131-3333333", "cat", "Oak St", "edi", "EH4 1ZZ"},
	}
	single := newTestServer(t)
	registerCust(t, single, "cust", 300)
	code, body := call(t, single, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "cust", "tuples": rows,
	})
	if code != http.StatusOK {
		t.Fatalf("single append: %d %v", code, body)
	}
	code, want := call(t, single, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatal("single detect failed")
	}

	cluster := startCluster(t, 2)
	registerCust(t, cluster, "cust", 300)
	code, body = call(t, cluster, "POST", "/v1/repair/incremental", map[string]any{
		"dataset": "cust", "tuples": rows,
	})
	if code != http.StatusOK || body["appended"].(float64) != 3 {
		t.Fatalf("cluster append: %d %v", code, body)
	}
	if body["tuples"].(float64) != 303 {
		t.Fatalf("tuples = %v, want 303", body["tuples"])
	}
	code, got := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("cluster detect: %d %v", code, got)
	}
	if !reflect.DeepEqual(got["violations"], want["violations"]) {
		t.Fatalf("post-append violations diverge:\n got %v\nwant %v",
			got["violations"], want["violations"])
	}
}

// TestClusterDCDetectMatchesSingle checks scatter-gather DC detection
// over HTTP against the single-process answer.
func TestClusterDCDetectMatchesSingle(t *testing.T) {
	single := newTestServer(t)
	registerEmp(t, single, "emp", 200, 0.05)
	code, want := call(t, single, "POST", "/v1/dc/detect", map[string]any{"dataset": "emp"})
	if code != http.StatusOK {
		t.Fatalf("single dc detect: %d %v", code, want)
	}

	cluster := startCluster(t, 2)
	registerEmp(t, cluster, "emp", 200, 0.05)
	code, got := call(t, cluster, "POST", "/v1/dc/detect", map[string]any{"dataset": "emp"})
	if code != http.StatusOK {
		t.Fatalf("cluster dc detect: %d %v", code, got)
	}
	if got["count"] != want["count"] {
		t.Fatalf("count = %v, want %v", got["count"], want["count"])
	}
	if !reflect.DeepEqual(got["reports"], want["reports"]) {
		t.Fatalf("dc reports diverge:\n got %v\nwant %v", got["reports"], want["reports"])
	}
	if len(got["residual"].([]any)) != len(want["reports"].([]any)) {
		t.Fatalf("residual = %v", got["residual"])
	}
}

// TestClusterDiscover fans discovery out to workers and verifies the
// intersected candidates hold on the whole dataset.
func TestClusterDiscover(t *testing.T) {
	cluster := startCluster(t, 2)
	registerCust(t, cluster, "cust", 400)
	code, body := call(t, cluster, "POST", "/v1/discover", map[string]any{
		"dataset": "cust", "min_support": 20, "max_lhs": 2,
	})
	if code != http.StatusOK {
		t.Fatalf("discover: %d %v", code, body)
	}
	found := body["cfds"].([]any)
	if len(found) == 0 {
		t.Fatal("distributed discovery found nothing")
	}
	// Every surviving candidate was verified violation-free on the whole
	// dataset, so installing and detecting them must report zero.
	code, body = call(t, cluster, "POST", "/v1/constraints", map[string]any{
		"dataset": "cust", "cfds": found[0].(string),
	})
	if code != http.StatusOK {
		t.Fatalf("install discovered: %d %v", code, body)
	}
	code, body = call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK || body["count"].(float64) != 0 {
		t.Fatalf("discovered CFD violated: %d %v", code, body)
	}
}

// TestClusterErrorPaths covers the coordinator's structured error
// responses: malformed JSON, unknown datasets, unsupported endpoints,
// and a worker fleet that is unreachable (502).
func TestClusterErrorPaths(t *testing.T) {
	cluster := startCluster(t, 2)

	resp, err := http.Post(cluster.URL+"/v1/detect", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d, want 400", resp.StatusCode)
	}

	code, body := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "ghost"})
	if code != http.StatusNotFound || body["error"] == "" {
		t.Fatalf("unknown dataset = %d %v", code, body)
	}
	code, _ = call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": ""})
	if code != http.StatusBadRequest {
		t.Fatalf("missing dataset = %d", code)
	}
	code, _ = call(t, cluster, "GET", "/v1/datasets/ghost", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown info = %d", code)
	}
	for _, path := range []string{"/v1/repair", "/v1/edit", "/v1/dc/relax"} {
		code, body = call(t, cluster, "POST", path, map[string]any{})
		if code != http.StatusNotImplemented {
			t.Fatalf("%s = %d, want 501 (%v)", path, code, body)
		}
	}

	// A coordinator whose worker is gone answers 502, not a hang or 500.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	coord, err := engine.NewCoordinator([]engine.ShardClient{
		NewShardClient(deadURL, 2*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	orphan := httptest.NewServer(NewCoordinator(coord))
	defer orphan.Close()
	code, body = call(t, orphan, "POST", "/v1/datasets", map[string]any{
		"name":     "cust",
		"generate": map[string]any{"kind": "cust", "n": 50},
	})
	if code != http.StatusBadGateway {
		t.Fatalf("dead worker register = %d %v, want 502", code, body)
	}
}

// TestClusterStats checks the /v1/stats surface: per-endpoint counters
// on the coordinator plus cumulative fan-out latency per worker.
func TestClusterStats(t *testing.T) {
	cluster := startCluster(t, 2)
	registerCust(t, cluster, "cust", 200)
	for i := 0; i < 3; i++ {
		call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	}
	call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "ghost"})

	code, body := call(t, cluster, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	eps := body["endpoints"].(map[string]any)
	det := eps["POST /v1/detect"].(map[string]any)
	if det["requests"].(float64) != 4 || det["errors"].(float64) != 1 {
		t.Fatalf("detect totals = %v", det)
	}
	if det["total_ms"].(float64) < 0 || det["avg_ms"].(float64) < 0 {
		t.Fatalf("latency totals = %v", det)
	}
	workers := body["workers"].(map[string]any)
	if len(workers) != 2 {
		t.Fatalf("worker stats = %v, want 2 workers", workers)
	}
	for url, w := range workers {
		wt := w.(map[string]any)
		if wt["calls"].(float64) == 0 {
			t.Fatalf("worker %s recorded no fan-out calls: %v", url, wt)
		}
	}

	// Workers expose the same per-endpoint counters.
	ws := newTestServer(t)
	call(t, ws, "GET", "/healthz", nil)
	code, body = call(t, ws, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("worker stats: %d %v", code, body)
	}
	if _, ok := body["endpoints"].(map[string]any)["GET /healthz"]; !ok {
		t.Fatalf("worker stats missing healthz: %v", body)
	}
}

// TestClusterConcurrentTraffic drives loadgen-shaped mixed traffic —
// appends racing detects racing reads — against a live 2-worker cluster
// so `go test -race ./internal/server/` exercises the coordinator's
// locking. Responses may legitimately interleave (detect sees a racing
// append or not) but nothing may error.
func TestClusterConcurrentTraffic(t *testing.T) {
	cluster := startCluster(t, 2)
	registerCust(t, cluster, "cust", 300)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 4 {
				case 0:
					code, body := call(t, cluster, "POST", "/v1/repair/incremental", map[string]any{
						"dataset": "cust",
						"tuples":  [][]string{{"01", "908", "908-5550000", "raj", "Race St", "mh", "07974"}},
					})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("append: %d %v", code, body)
					}
				case 1:
					code, body := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("detect: %d %v", code, body)
					}
				case 2:
					code, body := call(t, cluster, "GET", "/v1/datasets/cust/violations", nil)
					if code != http.StatusOK {
						errCh <- fmt.Errorf("violations: %d %v", code, body)
					}
				default:
					code, body := call(t, cluster, "GET", "/v1/stats", nil)
					if code != http.StatusOK {
						errCh <- fmt.Errorf("stats: %d %v", code, body)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Quiescent again: the final state must match a fresh full detect.
	code, a := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK {
		t.Fatalf("final detect: %d %v", code, a)
	}
	code, b := call(t, cluster, "POST", "/v1/detect", map[string]any{"dataset": "cust"})
	if code != http.StatusOK || !reflect.DeepEqual(a["violations"], b["violations"]) {
		t.Fatalf("detect not stable at quiescence")
	}
}
