package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/engine"
	"semandaq/internal/relation"
)

// RetryPolicy bounds the client's retries of IDEMPOTENT worker calls
// (shard detect, boundary-group fetch, shard DC detect, health).
// Register, append, install and drop are never retried: their effects
// are not idempotent (a duplicated append double-ingests), so they
// stay at-most-once and the coordinator's durability layer owns their
// recovery.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	MaxAttempts int
	// BaseBackoff is the first retry's delay; each further retry
	// doubles it, capped at MaxBackoff, with full jitter (a uniform
	// draw from [0, backoff)) so a fleet of retrying coordinators
	// doesn't stampede a recovering worker.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter RNG (0 = fixed default), keeping
	// fault-injection tests deterministic.
	Seed int64
}

// DefaultRetryPolicy is the daemon's cluster-mode default: 3 attempts,
// 50ms base, 1s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second}
}

// HTTPShardClient implements engine.ShardClient over a worker's HTTP
// surface. All failures — transport errors and non-2xx responses alike
// — come back tagged engine.ErrWorker so the coordinator's handlers
// answer 502; timeouts and 5xx replies additionally carry
// engine.ErrWorkerTimeout / engine.ErrWorkerUpstream so per-worker
// stats and degraded-detect reports can label the cause.
type HTTPShardClient struct {
	base string
	hc   *http.Client

	// rngMu guards policy and rng: SetRetryPolicy may race request
	// goroutines reading them in callRetry/backoff.
	rngMu   sync.Mutex
	policy  RetryPolicy
	rng     *rand.Rand
	retries atomic.Uint64
}

// NewShardClient builds a client for the worker at baseURL (e.g.
// "http://127.0.0.1:8091"). timeout bounds each RPC attempt (0 = no
// timeout). Retries are off until SetRetryPolicy.
func NewShardClient(baseURL string, timeout time.Duration) *HTTPShardClient {
	return &HTTPShardClient{
		base:   strings.TrimRight(baseURL, "/"),
		hc:     &http.Client{Timeout: timeout},
		policy: RetryPolicy{MaxAttempts: 1},
	}
}

// SetRetryPolicy enables bounded retries of idempotent calls.
func (c *HTTPShardClient) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	c.rngMu.Lock()
	c.policy = p
	c.rng = rand.New(rand.NewSource(seed))
	c.rngMu.Unlock()
}

// getPolicy snapshots the retry policy under the same lock
// SetRetryPolicy writes it, so a policy change mid-traffic is safe.
func (c *HTTPShardClient) getPolicy() RetryPolicy {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.policy
}

// URL returns the worker's base URL.
func (c *HTTPShardClient) URL() string { return c.base }

// Retries reports the cumulative retry count — the
// engine.RetryReporter hook /v1/stats surfaces per worker.
func (c *HTTPShardClient) Retries() uint64 { return c.retries.Load() }

func (c *HTTPShardClient) fail(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %w: %s: %v", engine.ErrWorker, engine.ErrWorkerTimeout, c.base, err)
	}
	return fmt.Errorf("%w: %s: %v", engine.ErrWorker, c.base, err)
}

// workerStatusError carries a worker's HTTP status through the
// coordinator so deliberate 4xx rejections relay as-is.
type workerStatusError struct {
	Status int
	Msg    string
}

func (e *workerStatusError) Error() string { return e.Msg }

// retryable reports whether err is worth retrying on an idempotent
// call: any transport fault (including timeouts — the worker may just
// be slow under load) and any 5xx reply (the worker is up but failing,
// e.g. mid-recovery answering 503). Deliberate 4xx rejections are
// final.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var wse *workerStatusError
	if errors.As(err, &wse) {
		return wse.Status >= 500
	}
	return true
}

// backoff returns the jittered delay before retry attempt (1-based)
// under the caller's policy snapshot.
func (c *HTTPShardClient) backoff(p RetryPolicy, attempt int) time.Duration {
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return time.Duration(c.rng.Int63n(int64(d)) + 1)
}

// call runs callOnce; callRetry wraps it with the bounded-retry loop
// for idempotent endpoints.
func (c *HTTPShardClient) call(method, path string, body, out any) error {
	return c.callOnce(method, path, body, out)
}

// callRetry is the idempotent-call path: bounded retries with jittered
// exponential backoff on transport faults and 5xx replies.
func (c *HTTPShardClient) callRetry(method, path string, body, out any) error {
	p := c.getPolicy()
	var err error
	for attempt := 1; ; attempt++ {
		err = c.callOnce(method, path, body, out)
		if err == nil || attempt >= p.MaxAttempts || !retryable(err) {
			return err
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(p, attempt))
	}
}

// callOnce POSTs (or DELETEs) a JSON body and decodes the JSON
// response into out (out nil discards it). Non-2xx responses surface
// the worker's structured error message.
func (c *HTTPShardClient) callOnce(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return c.fail(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return c.fail(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg := fmt.Sprintf("%s %s: status %d", method, path, resp.StatusCode)
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = fmt.Sprintf("%s %s: %s", method, path, er.Error)
		}
		// Keep the worker's status visible (workerStatusError) so the
		// coordinator relays a deliberate 4xx — e.g. a repair conflict —
		// instead of reporting the worker broken with 502; tag 5xx with
		// the upstream-failure cause for stats.
		wse := &workerStatusError{Status: resp.StatusCode, Msg: msg}
		if resp.StatusCode >= 500 {
			return fmt.Errorf("%w: %w: %s: %w", engine.ErrWorker, engine.ErrWorkerUpstream, c.base, wse)
		}
		return fmt.Errorf("%w: %s: %w", engine.ErrWorker, c.base, wse)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.fail(err)
	}
	return nil
}

// Health checks the worker's liveness probe (idempotent: retried).
func (c *HTTPShardClient) Health() error {
	return c.callRetry(http.MethodGet, "/healthz", nil, nil)
}

// Register ships a TID-range slice as exact encoded tuples.
func (c *HTTPShardClient) Register(dataset string, schema *relation.Schema, tuples []relation.Tuple) error {
	sj := schemaJSON{Name: schema.Name(), Attrs: make([]attrJSON, schema.Arity())}
	for i := 0; i < schema.Arity(); i++ {
		a := schema.Attr(i)
		sj.Attrs[i] = attrJSON{Name: a.Name, Kind: a.Kind.String()}
	}
	rows := make([]string, len(tuples))
	var buf []byte
	for i, t := range tuples {
		buf = relation.EncodeTuple(buf[:0], t)
		rows[i] = base64.StdEncoding.EncodeToString(buf)
	}
	return c.call(http.MethodPost, "/v1/shard/register",
		shardRegisterRequest{Name: dataset, Schema: sj, Rows: rows}, nil)
}

// Drop removes the worker's slice; an unknown dataset is not an error.
func (c *HTTPShardClient) Drop(dataset string) error {
	err := c.call(http.MethodDelete, "/v1/datasets/"+dataset, nil, nil)
	if err != nil && strings.Contains(err.Error(), "unknown dataset") {
		return nil
	}
	return err
}

// InstallConstraints installs CFD text on the worker's slice.
func (c *HTTPShardClient) InstallConstraints(dataset, cfds string) error {
	return c.call(http.MethodPost, "/v1/constraints",
		constraintsRequest{Dataset: dataset, CFDs: cfds}, nil)
}

// InstallDCs installs denial-constraint text on the worker's slice.
func (c *HTTPShardClient) InstallDCs(dataset, dcs string) error {
	return c.call(http.MethodPost, "/v1/dcs", dcsRequest{Dataset: dataset, DCs: dcs}, nil)
}

// ShardDetect runs shard-local detection and rebuilds the results
// against the coordinator's compiled set (same text, same order), so
// violation CFD pointers match what cfd.MergeShards emits.
func (c *HTTPShardClient) ShardDetect(dataset, cfds string, set *cfd.Set) ([]cfd.ShardResult, error) {
	var resp struct {
		CFDs []shardCFDJSON `json:"cfds"`
	}
	if err := c.callRetry(http.MethodPost, "/v1/shard/detect",
		shardDetectRequest{Dataset: dataset, CFDs: cfds}, &resp); err != nil {
		return nil, err
	}
	all := set.All()
	if len(resp.CFDs) != len(all) {
		return nil, c.fail(fmt.Errorf("shard detect returned %d CFD results, set has %d", len(resp.CFDs), len(all)))
	}
	out := make([]cfd.ShardResult, len(resp.CFDs))
	for ci, cj := range resp.CFDs {
		groups := make([]cfd.ShardGroup, len(cj.Groups))
		for gi, gj := range cj.Groups {
			raw, err := base64.StdEncoding.DecodeString(gj.Key)
			if err != nil {
				return nil, c.fail(fmt.Errorf("group key: %w", err))
			}
			g := cfd.ShardGroup{Key: string(raw), N: gj.N}
			for _, vj := range gj.Vios {
				g.Vios = append(g.Vios, cfd.Violation{
					CFD:  all[ci],
					Row:  vj.Row,
					Kind: cfd.ViolationKind(vj.Kind),
					Attr: vj.Attr,
					TIDs: vj.TIDs,
				})
			}
			groups[gi] = g
		}
		out[ci] = cfd.ShardResult{Groups: groups}
	}
	return out, nil
}

// ShardGroups fetches boundary-group members: local TIDs plus tuples
// reconstructed from their exact encoded values over valAttrs.
func (c *HTTPShardClient) ShardGroups(dataset string, partAttrs, valAttrs []int, keys []string) ([]cfd.BoundaryGroup, error) {
	req := shardGroupsRequest{
		Dataset:   dataset,
		PartAttrs: partAttrs,
		ValAttrs:  valAttrs,
		Keys:      make([]string, len(keys)),
	}
	for i, k := range keys {
		req.Keys[i] = base64.StdEncoding.EncodeToString([]byte(k))
	}
	var resp struct {
		Groups []shardMembersJSON `json:"groups"`
	}
	if err := c.callRetry(http.MethodPost, "/v1/shard/groups", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Groups) != len(keys) {
		return nil, c.fail(fmt.Errorf("shard groups returned %d entries for %d keys", len(resp.Groups), len(keys)))
	}
	// Replay only reads the shipped attributes, so the reconstructed
	// tuples need just enough arity to index the largest one.
	arity := 0
	for _, a := range valAttrs {
		if a >= arity {
			arity = a + 1
		}
	}
	out := make([]cfd.BoundaryGroup, len(resp.Groups))
	for i, mj := range resp.Groups {
		if len(mj.TIDs) != len(mj.Rows) {
			return nil, c.fail(fmt.Errorf("shard group %d: %d TIDs but %d rows", i, len(mj.TIDs), len(mj.Rows)))
		}
		bg := cfd.BoundaryGroup{TIDs: mj.TIDs, Rows: make([]relation.Tuple, len(mj.Rows))}
		for m, enc := range mj.Rows {
			raw, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return nil, c.fail(fmt.Errorf("shard group %d row %d: %w", i, m, err))
			}
			row := make(relation.Tuple, arity)
			pos := 0
			for _, a := range valAttrs {
				v, n, err := relation.DecodeValue(raw[pos:])
				if err != nil {
					return nil, c.fail(fmt.Errorf("shard group %d row %d attr %d: %w", i, m, a, err))
				}
				row[a] = v
				pos += n
			}
			if pos != len(raw) {
				return nil, c.fail(fmt.Errorf("shard group %d row %d: %d trailing bytes", i, m, len(raw)-pos))
			}
			bg.Rows[m] = row
		}
		out[i] = bg
	}
	return out, nil
}

// ShardDCs runs shard-local DC detection, keyed by DC name.
func (c *HTTPShardClient) ShardDCs(dataset string) (map[string]dc.ShardResult, error) {
	var resp struct {
		DCs []shardDCJSON `json:"dcs"`
	}
	if err := c.callRetry(http.MethodPost, "/v1/shard/dc", shardDCRequest{Dataset: dataset}, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]dc.ShardResult, len(resp.DCs))
	for _, dj := range resp.DCs {
		var res dc.ShardResult
		for _, v := range dj.Vios {
			res.Vios = append(res.Vios, dc.Violation{T: v.T, U: v.U})
		}
		for _, k := range dj.Keys {
			raw, err := base64.StdEncoding.DecodeString(k)
			if err != nil {
				return nil, c.fail(fmt.Errorf("dc group key: %w", err))
			}
			res.Keys = append(res.Keys, string(raw))
		}
		out[dj.Name] = res
	}
	return out, nil
}

// Append routes raw tuple fields to the worker's incremental repair
// path. Repair conflicts (HTTP 409) surface as errors.
func (c *HTTPShardClient) Append(dataset string, tuples [][]string) (int, error) {
	var resp struct {
		Appended int `json:"appended"`
	}
	if err := c.call(http.MethodPost, "/v1/repair/incremental",
		incrementalRequest{Dataset: dataset, Tuples: tuples}, &resp); err != nil {
		return 0, err
	}
	return resp.Appended, nil
}

// Discover profiles the worker's slice.
func (c *HTTPShardClient) Discover(dataset string, minSupport, maxLHS int) ([]string, error) {
	var resp struct {
		CFDs []string `json:"cfds"`
	}
	if err := c.call(http.MethodPost, "/v1/discover",
		discoverRequest{Dataset: dataset, MinSupport: minSupport, MaxLHS: maxLHS}, &resp); err != nil {
		return nil, err
	}
	return resp.CFDs, nil
}
