package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/engine"
	"semandaq/internal/relation"
)

// HTTPShardClient implements engine.ShardClient over a worker's HTTP
// surface. All failures — transport errors and non-2xx responses alike
// — come back tagged engine.ErrWorker so the coordinator's handlers
// answer 502.
type HTTPShardClient struct {
	base string
	hc   *http.Client
}

// NewShardClient builds a client for the worker at baseURL (e.g.
// "http://127.0.0.1:8091"). timeout bounds each RPC (0 = no timeout).
func NewShardClient(baseURL string, timeout time.Duration) *HTTPShardClient {
	return &HTTPShardClient{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// URL returns the worker's base URL.
func (c *HTTPShardClient) URL() string { return c.base }

func (c *HTTPShardClient) fail(err error) error {
	return fmt.Errorf("%w: %s: %v", engine.ErrWorker, c.base, err)
}

// workerStatusError carries a worker's HTTP status through the
// coordinator so deliberate 4xx rejections relay as-is.
type workerStatusError struct {
	Status int
	Msg    string
}

func (e *workerStatusError) Error() string { return e.Msg }

// call POSTs (or DELETEs) a JSON body and decodes the JSON response
// into out (out nil discards it). Non-2xx responses surface the
// worker's structured error message.
func (c *HTTPShardClient) call(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return c.fail(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return c.fail(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg := fmt.Sprintf("%s %s: status %d", method, path, resp.StatusCode)
		var er errorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = fmt.Sprintf("%s %s: %s", method, path, er.Error)
		}
		// Keep the worker's status visible (workerStatusError) so the
		// coordinator relays a deliberate 4xx — e.g. a repair conflict —
		// instead of reporting the worker broken with 502.
		return fmt.Errorf("%w: %s: %w", engine.ErrWorker, c.base, &workerStatusError{Status: resp.StatusCode, Msg: msg})
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.fail(err)
	}
	return nil
}

// Health checks the worker's liveness probe.
func (c *HTTPShardClient) Health() error {
	return c.call(http.MethodGet, "/healthz", nil, nil)
}

// Register ships a TID-range slice as exact encoded tuples.
func (c *HTTPShardClient) Register(dataset string, schema *relation.Schema, tuples []relation.Tuple) error {
	sj := schemaJSON{Name: schema.Name(), Attrs: make([]attrJSON, schema.Arity())}
	for i := 0; i < schema.Arity(); i++ {
		a := schema.Attr(i)
		sj.Attrs[i] = attrJSON{Name: a.Name, Kind: a.Kind.String()}
	}
	rows := make([]string, len(tuples))
	var buf []byte
	for i, t := range tuples {
		buf = relation.EncodeTuple(buf[:0], t)
		rows[i] = base64.StdEncoding.EncodeToString(buf)
	}
	return c.call(http.MethodPost, "/v1/shard/register",
		shardRegisterRequest{Name: dataset, Schema: sj, Rows: rows}, nil)
}

// Drop removes the worker's slice; an unknown dataset is not an error.
func (c *HTTPShardClient) Drop(dataset string) error {
	err := c.call(http.MethodDelete, "/v1/datasets/"+dataset, nil, nil)
	if err != nil && strings.Contains(err.Error(), "unknown dataset") {
		return nil
	}
	return err
}

// InstallConstraints installs CFD text on the worker's slice.
func (c *HTTPShardClient) InstallConstraints(dataset, cfds string) error {
	return c.call(http.MethodPost, "/v1/constraints",
		constraintsRequest{Dataset: dataset, CFDs: cfds}, nil)
}

// InstallDCs installs denial-constraint text on the worker's slice.
func (c *HTTPShardClient) InstallDCs(dataset, dcs string) error {
	return c.call(http.MethodPost, "/v1/dcs", dcsRequest{Dataset: dataset, DCs: dcs}, nil)
}

// ShardDetect runs shard-local detection and rebuilds the results
// against the coordinator's compiled set (same text, same order), so
// violation CFD pointers match what cfd.MergeShards emits.
func (c *HTTPShardClient) ShardDetect(dataset, cfds string, set *cfd.Set) ([]cfd.ShardResult, error) {
	var resp struct {
		CFDs []shardCFDJSON `json:"cfds"`
	}
	if err := c.call(http.MethodPost, "/v1/shard/detect",
		shardDetectRequest{Dataset: dataset, CFDs: cfds}, &resp); err != nil {
		return nil, err
	}
	all := set.All()
	if len(resp.CFDs) != len(all) {
		return nil, c.fail(fmt.Errorf("shard detect returned %d CFD results, set has %d", len(resp.CFDs), len(all)))
	}
	out := make([]cfd.ShardResult, len(resp.CFDs))
	for ci, cj := range resp.CFDs {
		groups := make([]cfd.ShardGroup, len(cj.Groups))
		for gi, gj := range cj.Groups {
			raw, err := base64.StdEncoding.DecodeString(gj.Key)
			if err != nil {
				return nil, c.fail(fmt.Errorf("group key: %w", err))
			}
			g := cfd.ShardGroup{Key: string(raw), N: gj.N}
			for _, vj := range gj.Vios {
				g.Vios = append(g.Vios, cfd.Violation{
					CFD:  all[ci],
					Row:  vj.Row,
					Kind: cfd.ViolationKind(vj.Kind),
					Attr: vj.Attr,
					TIDs: vj.TIDs,
				})
			}
			groups[gi] = g
		}
		out[ci] = cfd.ShardResult{Groups: groups}
	}
	return out, nil
}

// ShardGroups fetches boundary-group members: local TIDs plus tuples
// reconstructed from their exact encoded values over valAttrs.
func (c *HTTPShardClient) ShardGroups(dataset string, partAttrs, valAttrs []int, keys []string) ([]cfd.BoundaryGroup, error) {
	req := shardGroupsRequest{
		Dataset:   dataset,
		PartAttrs: partAttrs,
		ValAttrs:  valAttrs,
		Keys:      make([]string, len(keys)),
	}
	for i, k := range keys {
		req.Keys[i] = base64.StdEncoding.EncodeToString([]byte(k))
	}
	var resp struct {
		Groups []shardMembersJSON `json:"groups"`
	}
	if err := c.call(http.MethodPost, "/v1/shard/groups", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Groups) != len(keys) {
		return nil, c.fail(fmt.Errorf("shard groups returned %d entries for %d keys", len(resp.Groups), len(keys)))
	}
	// Replay only reads the shipped attributes, so the reconstructed
	// tuples need just enough arity to index the largest one.
	arity := 0
	for _, a := range valAttrs {
		if a >= arity {
			arity = a + 1
		}
	}
	out := make([]cfd.BoundaryGroup, len(resp.Groups))
	for i, mj := range resp.Groups {
		if len(mj.TIDs) != len(mj.Rows) {
			return nil, c.fail(fmt.Errorf("shard group %d: %d TIDs but %d rows", i, len(mj.TIDs), len(mj.Rows)))
		}
		bg := cfd.BoundaryGroup{TIDs: mj.TIDs, Rows: make([]relation.Tuple, len(mj.Rows))}
		for m, enc := range mj.Rows {
			raw, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return nil, c.fail(fmt.Errorf("shard group %d row %d: %w", i, m, err))
			}
			row := make(relation.Tuple, arity)
			pos := 0
			for _, a := range valAttrs {
				v, n, err := relation.DecodeValue(raw[pos:])
				if err != nil {
					return nil, c.fail(fmt.Errorf("shard group %d row %d attr %d: %w", i, m, a, err))
				}
				row[a] = v
				pos += n
			}
			if pos != len(raw) {
				return nil, c.fail(fmt.Errorf("shard group %d row %d: %d trailing bytes", i, m, len(raw)-pos))
			}
			bg.Rows[m] = row
		}
		out[i] = bg
	}
	return out, nil
}

// ShardDCs runs shard-local DC detection, keyed by DC name.
func (c *HTTPShardClient) ShardDCs(dataset string) (map[string]dc.ShardResult, error) {
	var resp struct {
		DCs []shardDCJSON `json:"dcs"`
	}
	if err := c.call(http.MethodPost, "/v1/shard/dc", shardDCRequest{Dataset: dataset}, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]dc.ShardResult, len(resp.DCs))
	for _, dj := range resp.DCs {
		var res dc.ShardResult
		for _, v := range dj.Vios {
			res.Vios = append(res.Vios, dc.Violation{T: v.T, U: v.U})
		}
		for _, k := range dj.Keys {
			raw, err := base64.StdEncoding.DecodeString(k)
			if err != nil {
				return nil, c.fail(fmt.Errorf("dc group key: %w", err))
			}
			res.Keys = append(res.Keys, string(raw))
		}
		out[dj.Name] = res
	}
	return out, nil
}

// Append routes raw tuple fields to the worker's incremental repair
// path. Repair conflicts (HTTP 409) surface as errors.
func (c *HTTPShardClient) Append(dataset string, tuples [][]string) (int, error) {
	var resp struct {
		Appended int `json:"appended"`
	}
	if err := c.call(http.MethodPost, "/v1/repair/incremental",
		incrementalRequest{Dataset: dataset, Tuples: tuples}, &resp); err != nil {
		return 0, err
	}
	return resp.Appended, nil
}

// Discover profiles the worker's slice.
func (c *HTTPShardClient) Discover(dataset string, minSupport, maxLHS int) ([]string, error) {
	var resp struct {
		CFDs []string `json:"cfds"`
	}
	if err := c.call(http.MethodPost, "/v1/discover",
		discoverRequest{Dataset: dataset, MinSupport: minSupport, MaxLHS: maxLHS}, &resp); err != nil {
		return nil, err
	}
	return resp.CFDs, nil
}
