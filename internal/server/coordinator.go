package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/engine"
)

// Coordinator is the cluster-mode HTTP front end: the same public
// surface as Server, served by fanning requests out to worker
// processes through an engine.Coordinator and merging shard results
// (byte-identical to single-process detection; see
// internal/cfd/scatter.go). Endpoints that need whole-dataset mutation
// the shard protocol doesn't cover — batch repair, cell edits, DC
// relaxation — answer 501 rather than silently computing a
// shard-incoherent result.
type Coordinator struct {
	coord *engine.Coordinator
	mux   *http.ServeMux
	stats *serverStats

	// recovering gates the API while the coordinator replays its WAL
	// and re-feeds the workers at startup; same contract as
	// Server.SetRecovering.
	recovering atomic.Bool
}

// SetRecovering flips the startup recovery gate.
func (s *Coordinator) SetRecovering(v bool) { s.recovering.Store(v) }

// NewCoordinator builds the coordinator handler over a worker fleet.
func NewCoordinator(coord *engine.Coordinator) *Coordinator {
	s := &Coordinator{coord: coord, mux: http.NewServeMux(), stats: newServerStats()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	s.mux.HandleFunc("GET /v1/datasets", s.handleList)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDrop)
	s.mux.HandleFunc("GET /v1/datasets/{name}/violations", s.handleViolations)
	s.mux.HandleFunc("POST /v1/constraints", s.handleConstraints)
	s.mux.HandleFunc("POST /v1/detect", s.handleDetect)
	s.mux.HandleFunc("POST /v1/repair/incremental", s.handleAppend)
	s.mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	s.mux.HandleFunc("POST /v1/dcs", s.handleDCs)
	s.mux.HandleFunc("GET /v1/datasets/{name}/dcs", s.handleDCList)
	s.mux.HandleFunc("POST /v1/dc/detect", s.handleDCDetect)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/repair", s.handleNotImplemented)
	s.mux.HandleFunc("POST /v1/edit", s.handleNotImplemented)
	s.mux.HandleFunc("POST /v1/dc/relax", s.handleNotImplemented)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		serveRecovering(s.stats, w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	serveInstrumented(s.mux, s.stats, w, r)
}

// writeCoordError maps coordinator/worker failures to status codes: a
// worker's deliberate 4xx relays as-is, an unreachable or broken worker
// is 502, unknown datasets 404, duplicates 409; anything else gets
// fallback.
func writeCoordError(w http.ResponseWriter, err error, fallback int) {
	var wse *workerStatusError
	code := fallback
	switch {
	case errors.As(err, &wse) && wse.Status < 500:
		code = wse.Status
	case errors.Is(err, engine.ErrWorker):
		code = http.StatusBadGateway
	case errors.Is(err, engine.ErrUnknownDataset):
		code = http.StatusNotFound
	case errors.Is(err, engine.ErrDuplicate):
		code = http.StatusConflict
	}
	writeError(w, code, err)
}

func (s *Coordinator) handleNotImplemented(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotImplemented,
		fmt.Errorf("%s is not available in cluster mode; run a single-process semandaqd for whole-dataset repair and edits", r.URL.Path))
}

func (s *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  s.coord.Workers(),
		"datasets": len(s.coord.List()),
	})
}

func (s *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"endpoints":        s.stats.snapshot(),
		"recovery_rejects": s.stats.recoveryRejects(),
		"workers":          s.coord.WorkerStats(),
	})
}

type clusterDatasetJSON struct {
	Name        string `json:"name"`
	Tuples      int    `json:"tuples"`
	Schema      string `json:"schema"`
	Constraints int    `json:"constraints"`
	DCs         int    `json:"dcs"`
	// Shards are the per-worker tuple counts in TID-range order.
	Shards []int `json:"shards"`
}

func clusterInfo(cd *engine.ClusterDataset) clusterDatasetJSON {
	return clusterDatasetJSON{
		Name:        cd.Name(),
		Tuples:      cd.Len(),
		Schema:      cd.Schema().String(),
		Constraints: cd.Constraints().Len(),
		DCs:         cd.DCs().Len(),
		Shards:      cd.Counts(),
	}
}

// dataset resolves the dataset named in a request.
func (s *Coordinator) dataset(w http.ResponseWriter, name string) (*engine.ClusterDataset, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing dataset name"))
		return nil, false
	}
	cd, ok := s.coord.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return nil, false
	}
	return cd, true
}

func (s *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := buildRelation(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cd, err := s.coord.Register(req.Name, data)
	if err != nil {
		writeCoordError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, clusterInfo(cd))
}

func (s *Coordinator) handleList(w http.ResponseWriter, _ *http.Request) {
	names := s.coord.List()
	out := make([]clusterDatasetJSON, 0, len(names))
	for _, name := range names {
		if cd, ok := s.coord.Get(name); ok {
			out = append(out, clusterInfo(cd))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	cd, ok := s.dataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, clusterInfo(cd))
}

func (s *Coordinator) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.coord.Drop(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

func (s *Coordinator) handleConstraints(w http.ResponseWriter, r *http.Request) {
	var req constraintsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	set, err := s.coord.InstallConstraints(req.Dataset, req.CFDs)
	if err != nil {
		writeCoordError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": set.Len(),
		"rows":      set.TotalRows(),
	})
}

func (s *Coordinator) handleDCs(w http.ResponseWriter, r *http.Request) {
	var req dcsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	set, err := s.coord.InstallDCs(req.Dataset, req.DCs)
	if err != nil {
		writeCoordError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"installed": set.Len()})
}

func (s *Coordinator) handleDCList(w http.ResponseWriter, r *http.Request) {
	cd, ok := s.dataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	all := cd.DCs().All()
	out := make([]dcJSON, len(all))
	for i, d := range all {
		out[i] = dcJSON{Name: d.Name(), Constraint: d.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dcs": out})
}

// residualJSON reports the boundary-group residual pass of a merge —
// how much of the partition straddled the range cuts.
type residualJSON struct {
	Groups           int     `json:"groups"`
	BoundaryGroups   int     `json:"boundary_groups"`
	BoundaryTuples   int     `json:"boundary_tuples"`
	BoundaryFraction float64 `json:"boundary_fraction"`
}

func residualInfo(st cfd.MergeStats) residualJSON {
	return residualJSON{
		Groups:           st.Groups,
		BoundaryGroups:   st.BoundaryGroups,
		BoundaryTuples:   st.BoundaryTuples,
		BoundaryFraction: st.BoundaryFraction(),
	}
}

func (s *Coordinator) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cd, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	start := time.Now()
	res, err := s.coord.Detect(req.Dataset)
	if err != nil {
		writeCoordError(w, err, http.StatusInternalServerError)
		return
	}
	shown := res.Violations
	if req.Limit > 0 && len(shown) > req.Limit {
		shown = shown[:req.Limit]
	}
	out := map[string]any{
		"count":      len(res.Violations),
		"tids":       cfd.ViolatingTIDs(res.Violations),
		"violations": violationsJSON(cd.Schema(), shown),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
		"residual":   residualInfo(res.Stats),
		"workers":    res.Workers,
	}
	// A degraded merge is a sound partial answer over the surviving
	// shards — flagged, never cached, never silently passed off as the
	// global result.
	if res.Degraded {
		out["degraded"] = true
		out["failed_workers"] = res.Failed
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Coordinator) handleViolations(w http.ResponseWriter, r *http.Request) {
	cd, ok := s.dataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	res, err := s.coord.Violations(cd.Name())
	if err != nil {
		writeCoordError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(res.Violations),
		"tids":       cfd.ViolatingTIDs(res.Violations),
		"violations": violationsJSON(cd.Schema(), res.Violations),
		"residual":   residualInfo(res.Stats),
	})
}

func (s *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req incrementalRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cd, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no tuples to append"))
		return
	}
	arity := cd.Schema().Arity()
	for i, fields := range req.Tuples {
		if len(fields) != arity {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("tuple %d has %d fields, schema %s expects %d", i, len(fields), cd.Schema().Name(), arity))
			return
		}
	}
	n, err := s.coord.Append(req.Dataset, req.Tuples)
	if err != nil {
		writeCoordError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"appended": n,
		"tuples":   cd.Len(),
	})
}

func (s *Coordinator) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := s.dataset(w, req.Dataset); !ok {
		return
	}
	found, err := s.coord.Discover(req.Dataset, req.MinSupport, req.MaxLHS, req.Install)
	if err != nil {
		writeCoordError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(found),
		"cfds":      found,
		"installed": req.Install,
	})
}

func (s *Coordinator) handleDCDetect(w http.ResponseWriter, r *http.Request) {
	var req dcDetectRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := s.dataset(w, req.Dataset); !ok {
		return
	}
	start := time.Now()
	reports, stats, err := s.coord.DetectDCs(req.Dataset, req.Limit)
	if err != nil {
		writeCoordError(w, err, http.StatusInternalServerError)
		return
	}
	out := make([]dcReportJSON, len(reports))
	residual := make([]residualJSON, len(reports))
	total := 0
	for i, rep := range reports {
		out[i] = dcReportJSON{
			Name:       rep.Name,
			Constraint: rep.Constraint,
			Count:      len(rep.Violations),
			Truncated:  rep.Truncated,
			Violations: rep.Violations,
			TIDs:       dc.ViolatingTIDs(rep.Violations),
		}
		total += len(rep.Violations)
		if i < len(stats) {
			residual[i] = residualJSON{
				Groups:           stats[i].Groups,
				BoundaryGroups:   stats[i].BoundaryGroups,
				BoundaryTuples:   stats[i].BoundaryTuples,
				BoundaryFraction: stats[i].BoundaryFraction(),
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      total,
		"reports":    out,
		"residual":   residual,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}
