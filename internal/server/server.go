// Package server exposes the Semandaq engine over HTTP/JSON: the
// long-running service face of the §5 demo system. One process keeps
// datasets loaded and constraint sets compiled (the engine registry),
// and any number of clients drive detect → repair → discover against
// them concurrently. cmd/semandaqd wires this handler to a listener.
//
// API (all request/response bodies are JSON):
//
//	GET    /healthz                        liveness probe
//	POST   /v1/datasets                    register a dataset (inline CSV or generator)
//	GET    /v1/datasets                    list datasets
//	GET    /v1/datasets/{name}             dataset info
//	DELETE /v1/datasets/{name}             drop a dataset
//	GET    /v1/datasets/{name}/violations  current (cached) violations
//	POST   /v1/constraints                 compile + install a CFD set
//	POST   /v1/detect                      run parallel violation detection
//	POST   /v1/repair                      compute a candidate repair (optionally accept)
//	POST   /v1/repair/incremental          append tuples, repair only them (repair.Inc)
//	POST   /v1/discover                    profile the data for CFDs
//	POST   /v1/edit                        set/confirm a cell (interactive loop)
//	POST   /v1/dcs                         compile + install a denial-constraint set
//	GET    /v1/datasets/{name}/dcs         list installed denial constraints
//	POST   /v1/dc/detect                   detect DC violations (rank-sweep over PLIs)
//	POST   /v1/dc/relax                    propose relaxations of a violated DC
//	GET    /v1/stats                       per-endpoint request counters + latency
//	POST   /v1/shard/*                     worker half of scatter-gather detection (shard.go)
//
// The coordinator handler over a worker fleet is NewCoordinator
// (coordinator.go); it serves the same public surface by fanning out to
// these workers and merging.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/engine"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
)

// maxBodyBytes bounds request bodies (inline CSV uploads included).
const maxBodyBytes = 64 << 20

// Server is the HTTP front end over an engine.
type Server struct {
	eng   *engine.Engine
	mux   *http.ServeMux
	stats *serverStats

	// recovering gates the API while WAL replay runs at startup: every
	// route answers 503 (counted in /v1/stats under "(recovering)")
	// except /healthz, which answers 503 {"status":"recovering"} so
	// orchestration can tell "replaying" from "dead".
	recovering atomic.Bool
}

// SetRecovering flips the startup recovery gate.
func (s *Server) SetRecovering(v bool) { s.recovering.Store(v) }

// Recovering reports whether the gate is up.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// New builds the handler around an engine.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), stats: newServerStats()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	s.mux.HandleFunc("GET /v1/datasets", s.handleList)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDrop)
	s.mux.HandleFunc("GET /v1/datasets/{name}/violations", s.handleViolations)
	s.mux.HandleFunc("POST /v1/constraints", s.handleConstraints)
	s.mux.HandleFunc("POST /v1/detect", s.handleDetect)
	s.mux.HandleFunc("POST /v1/repair", s.handleRepair)
	s.mux.HandleFunc("POST /v1/repair/incremental", s.handleRepairIncremental)
	s.mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	s.mux.HandleFunc("POST /v1/edit", s.handleEdit)
	s.mux.HandleFunc("POST /v1/dcs", s.handleDCs)
	s.mux.HandleFunc("GET /v1/datasets/{name}/dcs", s.handleDCList)
	s.mux.HandleFunc("POST /v1/dc/detect", s.handleDCDetect)
	s.mux.HandleFunc("POST /v1/dc/relax", s.handleDCRelax)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/shard/register", s.handleShardRegister)
	s.mux.HandleFunc("POST /v1/shard/detect", s.handleShardDetect)
	s.mux.HandleFunc("POST /v1/shard/groups", s.handleShardGroups)
	s.mux.HandleFunc("POST /v1/shard/dc", s.handleShardDC)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		serveRecovering(s.stats, w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	serveInstrumented(s.mux, s.stats, w, r)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"endpoints":        s.stats.snapshot(),
		"recovery_rejects": s.stats.recoveryRejects(),
	})
}

// --- encoding helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// session resolves the dataset named in a request body.
func (s *Server) session(w http.ResponseWriter, name string) (*engine.Session, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing dataset name"))
		return nil, false
	}
	sess, ok := s.eng.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return nil, false
	}
	return sess, true
}

// --- JSON shapes ---

type attrJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type datasetJSON struct {
	Name        string `json:"name"`
	Tuples      int    `json:"tuples"`
	Schema      string `json:"schema"`
	Constraints int    `json:"constraints"`
	DCs         int    `json:"dcs"`
	// IndexCache reports the session's PLI cache counters (shared by
	// detection, discovery and incremental repair); a healthy steady
	// state shows hits growing while misses and refines stay flat, and
	// an append-heavy steady state (POST /v1/repair/incremental) grows
	// advances — cached partitions extended by the delta in place —
	// still without rebuilds. When those appends are dirty, the repair's
	// cell writes drain into cached partitions as per-cell patches and
	// grow patches instead of invalidating anything. evictions moves
	// only under a configured cache byte budget, and shard_builds counts
	// the cold builds that ran the TID-range-parallel counting sort
	// (-shards). Under tiered storage (-spill-dir) spills counts
	// demotions of clean partitions to segment files in place of
	// evictions, and pageins counts the mmap-backed revivals that made
	// the next touch rebuild-free.
	IndexCache relation.CacheStats `json:"index_cache"`
	// IndexResidentBytes is the cache's current heap-resident byte
	// estimate — the quantity the -index-budget-mb budget bounds. Paged-
	// in (mmap-backed) partitions cost almost nothing here; the gap
	// between this and the logical index size is what tiering bought.
	IndexResidentBytes int64 `json:"index_resident_bytes"`
}

type violationJSON struct {
	CFD  string `json:"cfd"`
	Row  int    `json:"row"`
	Kind string `json:"kind"`
	Attr string `json:"attr"`
	TIDs []int  `json:"tids"`
}

func violationsJSON(schema *relation.Schema, vs []cfd.Violation) []violationJSON {
	out := make([]violationJSON, len(vs))
	for i, v := range vs {
		out[i] = violationJSON{
			CFD:  v.CFD.Name(),
			Row:  v.Row,
			Kind: v.Kind.String(),
			Attr: schema.Attr(v.Attr).Name,
			TIDs: v.TIDs,
		}
	}
	return out
}

type changeJSON struct {
	TID  int    `json:"tid"`
	Attr string `json:"attr"`
	From string `json:"from"`
	To   string `json:"to"`
}

type repairJSON struct {
	Changes  []changeJSON `json:"changes"`
	Cost     float64      `json:"cost"`
	Passes   int          `json:"passes"`
	Accepted bool         `json:"accepted"`
}

func repairResponse(schema *relation.Schema, res *repair.Result, accepted bool) repairJSON {
	out := repairJSON{
		Changes:  make([]changeJSON, len(res.Changes)),
		Cost:     res.Cost,
		Passes:   res.Passes,
		Accepted: accepted,
	}
	for i, ch := range res.Changes {
		out.Changes[i] = changeJSON{
			TID:  ch.TID,
			Attr: schema.Attr(ch.Attr).Name,
			From: ch.From.String(),
			To:   ch.To.String(),
		}
	}
	return out
}

func datasetInfo(sess *engine.Session) datasetJSON {
	return datasetJSON{
		Name:        sess.Name(),
		Tuples:      sess.Len(),
		Schema:      sess.Schema().String(),
		Constraints: sess.Constraints().Len(),
		DCs:         sess.DCs().Len(),
		IndexCache:  sess.IndexStats(),

		IndexResidentBytes: sess.IndexResidentBytes(),
	}
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "datasets": len(s.eng.List())})
}

type registerRequest struct {
	Name string `json:"name"`
	// Inline data: a schema plus CSV text whose header matches it.
	Schema *schemaJSON `json:"schema,omitempty"`
	CSV    string      `json:"csv,omitempty"`
	// Built-in workload generator (alternative to schema+csv).
	Generate *generateJSON `json:"generate,omitempty"`
}

type schemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

type generateJSON struct {
	Kind string  `json:"kind"` // cust | hosp | emp
	N    int     `json:"n"`
	Rate float64 `json:"rate"` // noise rate (planted DC violations for emp), 0 = clean
	Seed int64   `json:"seed"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := buildRelation(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.eng.Register(req.Name, data)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, engine.ErrDuplicate) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetInfo(sess))
}

func buildRelation(req registerRequest) (*relation.Relation, error) {
	switch {
	case req.Generate != nil:
		g := req.Generate
		if g.N <= 0 {
			return nil, fmt.Errorf("generate: n must be positive")
		}
		var data *relation.Relation
		switch g.Kind {
		case "cust":
			data = datagen.Cust(g.N, g.Seed)
		case "hosp":
			data = datagen.Hosp(g.N, g.Seed)
		case "emp":
			// The numeric DC workload. Rate plants targeted pay
			// inversions (violations of datagen.EmpDCText) instead of
			// the random cell noise of the string generators.
			return datagen.Emp(g.N, int(g.Rate*float64(g.N)), g.Seed), nil
		default:
			return nil, fmt.Errorf("generate: unknown kind %q (cust, hosp, emp)", g.Kind)
		}
		if g.Rate > 0 {
			data, _ = noise.Dirty(data, noise.Options{Rate: g.Rate, Seed: g.Seed + 1})
		}
		return data, nil
	case req.Schema != nil && req.CSV != "":
		attrs := make([]relation.Attribute, len(req.Schema.Attrs))
		for i, a := range req.Schema.Attrs {
			kind, err := relation.ParseKind(a.Kind)
			if err != nil {
				return nil, err
			}
			attrs[i] = relation.Attribute{Name: a.Name, Kind: kind}
		}
		schema, err := relation.NewSchema(req.Schema.Name, attrs...)
		if err != nil {
			return nil, err
		}
		return relation.ReadCSV(strings.NewReader(req.CSV), schema)
	default:
		return nil, fmt.Errorf("provide either schema+csv or generate")
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	names := s.eng.List()
	out := make([]datasetJSON, 0, len(names))
	for _, name := range names {
		if sess, ok := s.eng.Get(name); ok {
			out = append(out, datasetInfo(sess))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo(sess))
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.eng.Drop(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r.PathValue("name"))
	if !ok {
		return
	}
	vs, err := sess.Violations()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(vs),
		"tids":       cfd.ViolatingTIDs(vs),
		"violations": violationsJSON(sess.Schema(), vs),
	})
}

type constraintsRequest struct {
	Dataset string `json:"dataset"`
	CFDs    string `json:"cfds"`
}

func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	var req constraintsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	set, err := s.eng.InstallConstraints(req.Dataset, req.CFDs)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, engine.ErrUnknownDataset) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": set.Len(),
		"rows":      set.TotalRows(),
	})
}

type detectRequest struct {
	Dataset string `json:"dataset"`
	// Limit truncates the violation list in the response (0 = all);
	// count and tids always cover the full result.
	Limit int `json:"limit,omitempty"`
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	start := time.Now()
	vs, err := sess.Detect()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	shown := vs
	if req.Limit > 0 && len(shown) > req.Limit {
		shown = shown[:req.Limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(vs),
		"tids":       cfd.ViolatingTIDs(vs),
		"violations": violationsJSON(sess.Schema(), shown),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

type repairRequest struct {
	Dataset string `json:"dataset"`
	// Accept commits the candidate repair in the same request.
	Accept bool `json:"accept,omitempty"`
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req repairRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	// accept:true goes through the atomic variant so the committed
	// repair is exactly the one in the response (a Repair+Accept pair
	// could interleave with another client's Repair).
	var res *repair.Result
	var err error
	if req.Accept {
		res, err = sess.RepairAccept()
	} else {
		res, err = sess.Repair()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, repairResponse(sess.Schema(), res, req.Accept))
}

type incrementalRequest struct {
	Dataset string `json:"dataset"`
	// Tuples are given positionally as strings; each value is parsed
	// with the schema's attribute kind (empty string = NULL).
	Tuples [][]string `json:"tuples"`
}

func (s *Server) handleRepairIncremental(w http.ResponseWriter, r *http.Request) {
	var req incrementalRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no tuples to append"))
		return
	}
	schema := sess.Schema()
	tuples := make([]relation.Tuple, len(req.Tuples))
	for i, fields := range req.Tuples {
		if len(fields) != schema.Arity() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("tuple %d has %d fields, schema %s expects %d", i, len(fields), schema.Name(), schema.Arity()))
			return
		}
		t := make(relation.Tuple, len(fields))
		for j, f := range fields {
			v, err := relation.ParseValue(f, schema.Attr(j).Kind)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
				return
			}
			t[j] = v
		}
		tuples[i] = t
	}
	res, err := sess.Append(tuples)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	out := repairResponse(schema, res, true)
	writeJSON(w, http.StatusOK, map[string]any{
		"appended": len(tuples),
		"tuples":   sess.Len(),
		"repair":   out,
	})
}

type discoverRequest struct {
	Dataset    string `json:"dataset"`
	MinSupport int    `json:"min_support,omitempty"`
	MaxLHS     int    `json:"max_lhs,omitempty"`
	// Install replaces the session constraints with the discovered set.
	Install bool `json:"install,omitempty"`
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	found, err := sess.Discover(discovery.Options{MinSupport: req.MinSupport, MaxLHS: req.MaxLHS}, req.Install)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	strs := make([]string, len(found))
	for i, c := range found {
		strs[i] = c.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(found),
		"cfds":      strs,
		"installed": req.Install,
	})
}

type editRequest struct {
	Dataset string `json:"dataset"`
	TID     int    `json:"tid"`
	Attr    string `json:"attr"`
	// Value sets the cell (parsed with the attribute kind) and confirms
	// it; omitting Value with Confirm=true confirms the current value.
	Value   *string `json:"value,omitempty"`
	Confirm bool    `json:"confirm,omitempty"`
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	var req editRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.session(w, req.Dataset)
	if !ok {
		return
	}
	schema := sess.Schema()
	attr, ok2 := schema.Index(req.Attr)
	if !ok2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("schema %s has no attribute %q", schema.Name(), req.Attr))
		return
	}
	switch {
	case req.Value != nil:
		v, err := relation.ParseValue(*req.Value, schema.Attr(attr).Kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := sess.Edit(req.TID, attr, v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Confirm:
		if err := sess.Confirm(req.TID, attr); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("provide value or confirm"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":   req.Dataset,
		"tid":       req.TID,
		"attr":      req.Attr,
		"confirmed": len(sess.ConfirmedCells()),
	})
}
