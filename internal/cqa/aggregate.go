package cqa

import (
	"fmt"
	"math"

	"semandaq/internal/relation"
)

// This file implements range-consistent answers for aggregation queries
// under key repairs (Arenas, Bertossi, Chomicki: "Scalar aggregation in
// inconsistent databases", extending the CQA framework §2 of the
// tutorial surveys). A scalar aggregate has no single consistent answer
// on inconsistent data; the consistent answer is the tightest interval
// [glb, lub] containing the aggregate's value in every repair.

// AggKind selects the aggregate for Range.
type AggKind int

// Supported aggregates.
const (
	AggCount AggKind = iota // COUNT of tuples satisfying the predicate
	AggSum                  // SUM of an attribute over satisfying tuples
	AggMin                  // MIN of an attribute over satisfying tuples
	AggMax                  // MAX of an attribute over satisfying tuples
)

// Interval is a closed numeric interval. For MIN/MAX aggregates, Defined
// reports whether EVERY repair yields at least one qualifying tuple; if
// false the aggregate is undefined in some repair and the bounds cover
// only the repairs where it is defined.
type Interval struct {
	Lo, Hi  float64
	Defined bool
}

// String renders the interval.
func (iv Interval) String() string {
	if !iv.Defined {
		return fmt.Sprintf("[%g, %g] (undefined in some repair)", iv.Lo, iv.Hi)
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// Range computes the range-consistent answer of the aggregate over the
// key-repairs of the answerer's relation. pred selects tuples (nil =
// all); attr is the aggregated attribute (ignored for AggCount; must be
// numeric or its FloatVal is used). The key partition comes from the
// answerer's shared cache, so a Range after Certain/Conflicts
// re-partitions nothing.
func (a *Answerer) Range(agg AggKind, attr int, pred func(relation.Tuple) bool) (Interval, error) {
	r := a.r
	if agg != AggCount {
		if attr < 0 || attr >= r.Schema().Arity() {
			return Interval{}, fmt.Errorf("cqa: aggregate attribute %d out of range", attr)
		}
	}
	sel := func(t relation.Tuple) bool {
		if pred == nil {
			return true
		}
		return pred(t)
	}
	pli := a.pli()

	switch agg {
	case AggCount:
		// Each key group contributes 1 iff its chosen tuple qualifies:
		// glb counts groups where EVERY member qualifies, lub counts
		// groups where SOME member qualifies.
		lo, hi := 0, 0
		for g := 0; g < pli.NumGroups(); g++ {
			all, some := true, false
			for _, tid := range pli.Group(g) {
				if sel(r.Tuple(tid)) {
					some = true
				} else {
					all = false
				}
			}
			if all {
				lo++
			}
			if some {
				hi++
			}
		}
		return Interval{Lo: float64(lo), Hi: float64(hi), Defined: true}, nil

	case AggSum:
		// Each group's contribution is the chosen tuple's value if it
		// qualifies, else 0; independent minimization/maximization per
		// group. NULL values contribute 0 (SQL SUM skips NULLs).
		lo, hi := 0.0, 0.0
		for g := 0; g < pli.NumGroups(); g++ {
			gLo, gHi := math.Inf(1), math.Inf(-1)
			for _, tid := range pli.Group(g) {
				t := r.Tuple(tid)
				contrib := 0.0
				if sel(t) && !t[attr].IsNull() {
					contrib = t[attr].FloatVal()
				}
				if contrib < gLo {
					gLo = contrib
				}
				if contrib > gHi {
					gHi = contrib
				}
			}
			lo += gLo
			hi += gHi
		}
		return Interval{Lo: lo, Hi: hi, Defined: true}, nil

	case AggMin, AggMax:
		return rangeMinMax(r, pli, agg, attr, sel)

	default:
		return Interval{}, fmt.Errorf("cqa: unknown aggregate kind %d", agg)
	}
}

// Range computes the range-consistent aggregate answer with a transient
// Answerer. See Answerer.Range.
func Range(r *relation.Relation, keyAttrs []int, agg AggKind, attr int, pred func(relation.Tuple) bool) (Interval, error) {
	return NewAnswerer(r, keyAttrs).Range(agg, attr, pred)
}

// rangeMinMax computes the interval for MIN/MAX. For MIN:
//   - glb: the smallest qualifying value overall (some repair keeps it);
//   - lub: maximize the minimum — per group either skip (possible iff
//     some member does not qualify) or take the group's largest
//     qualifying value; the answer is the min over non-skipped groups.
//
// MAX is symmetric. Defined is false when some repair can end with no
// qualifying tuple at all (every group skippable).
func rangeMinMax(r *relation.Relation, pli *relation.PLI, agg AggKind, attr int, sel func(relation.Tuple) bool) (Interval, error) {
	type groupInfo struct {
		bestVal  float64 // max qualifying value for MIN, min for MAX
		hasQual  bool
		skipable bool // some member fails sel (or has NULL attr)
	}
	var groups []groupInfo
	extremeAll := math.Inf(1) // overall min qualifying value (for MIN)
	if agg == AggMax {
		extremeAll = math.Inf(-1)
	}
	anyQual := false
	for gi := 0; gi < pli.NumGroups(); gi++ {
		g := groupInfo{}
		if agg == AggMin {
			g.bestVal = math.Inf(-1)
		} else {
			g.bestVal = math.Inf(1)
		}
		for _, tid := range pli.Group(gi) {
			t := r.Tuple(tid)
			if !sel(t) || t[attr].IsNull() {
				g.skipable = true
				continue
			}
			v := t[attr].FloatVal()
			anyQual = true
			if agg == AggMin {
				if v < extremeAll {
					extremeAll = v
				}
				if v > g.bestVal {
					g.bestVal = v
				}
			} else {
				if v > extremeAll {
					extremeAll = v
				}
				if v < g.bestVal {
					g.bestVal = v
				}
			}
			g.hasQual = true
		}
		groups = append(groups, g)
	}
	if !anyQual {
		return Interval{Defined: false}, nil
	}
	// The "avoidance" bound: per group, skip when possible; otherwise the
	// group forces its best value into the aggregate.
	forced := []float64{}
	allSkippable := true
	for _, g := range groups {
		if !g.hasQual {
			continue // never contributes
		}
		if g.skipable {
			continue // a repair can silence this group
		}
		allSkippable = false
		forced = append(forced, g.bestVal)
	}
	var avoidBound float64
	if allSkippable {
		// Some repair has no qualifying tuples: undefined there. The
		// attainable extreme among defined repairs is the best single
		// group value.
		best := math.Inf(-1)
		if agg == AggMax {
			best = math.Inf(1)
		}
		for _, g := range groups {
			if !g.hasQual {
				continue
			}
			if agg == AggMin {
				if g.bestVal > best {
					best = g.bestVal
				}
			} else {
				if g.bestVal < best {
					best = g.bestVal
				}
			}
		}
		avoidBound = best
	} else {
		if agg == AggMin {
			avoidBound = math.Inf(1)
			for _, v := range forced {
				if v < avoidBound {
					avoidBound = v
				}
			}
		} else {
			avoidBound = math.Inf(-1)
			for _, v := range forced {
				if v > avoidBound {
					avoidBound = v
				}
			}
		}
	}
	if agg == AggMin {
		return Interval{Lo: extremeAll, Hi: avoidBound, Defined: !allSkippable}, nil
	}
	return Interval{Lo: avoidBound, Hi: extremeAll, Defined: !allSkippable}, nil
}
