// Package cqa implements consistent query answering over inconsistent
// data, the second foundational topic the tutorial surveys in §2
// (introduced by Arenas, Bertossi and Chomicki, PODS 1999): "consistent
// query answering is to find an answer to a given query in every repair
// of the original database, without editing the data".
//
// The package covers the classical, decidable core: a single relation
// with a key constraint, repairs obtained by tuple deletion (pick one
// tuple from every key group), and selection-projection queries. A value
// is a certain answer when every repair produces it, and a possible
// answer when some repair does. For key constraints these have a direct
// characterization on the conflict groups, so no repair enumeration is
// needed:
//
//   - a key group all of whose members agree on the projection and all
//     satisfy the selection yields a certain answer;
//   - any single member satisfying the selection yields a possible
//     answer.
package cqa

import (
	"fmt"
	"math"

	"semandaq/internal/relation"
)

// Query is a selection-projection query over one relation.
type Query struct {
	// Pred is the selection; nil selects everything.
	Pred func(relation.Tuple) bool
	// Project lists the output attribute positions (must be non-empty).
	Project []int
}

// validate checks the query against a schema.
func (q Query) validate(schema *relation.Schema) error {
	if len(q.Project) == 0 {
		return fmt.Errorf("cqa: query must project at least one attribute")
	}
	for _, p := range q.Project {
		if p < 0 || p >= schema.Arity() {
			return fmt.Errorf("cqa: projection attribute %d out of range", p)
		}
	}
	return nil
}

func (q Query) pred(t relation.Tuple) bool {
	if q.Pred == nil {
		return true
	}
	return q.Pred(t)
}

// resultSchema builds the output schema for a query.
func (q Query) resultSchema(schema *relation.Schema, name string) (*relation.Schema, error) {
	attrs := make([]relation.Attribute, len(q.Project))
	for i, p := range q.Project {
		attrs[i] = schema.Attr(p)
	}
	return relation.NewSchema(name, attrs...)
}

// Direct evaluates the query on the (possibly inconsistent) relation
// as-is, with duplicate elimination — the baseline that ignores
// inconsistency.
func Direct(r *relation.Relation, q Query) (*relation.Relation, error) {
	if err := q.validate(r.Schema()); err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(r.Schema(), "direct")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	seen := map[string]bool{}
	for _, t := range r.Tuples() {
		if !q.pred(t) {
			continue
		}
		pt := t.Project(q.Project)
		k := pt.FullKey()
		if !seen[k] {
			seen[k] = true
			out.MustInsert(pt)
		}
	}
	return out, nil
}

// Answerer evaluates the CQA primitives over one relation under one key
// constraint, threading a single PLI cache through the whole query path:
// Certain, Possible, Conflicts, CountRepairs, EnumerateRepairs and Range
// share one cached key partition instead of re-partitioning per call —
// the legacy path rebuilt the same hash index up to four times per
// consistent-answer query (certain + conflicts + count + enumerate).
type Answerer struct {
	r     *relation.Relation
	key   []int
	cache *relation.IndexCache
}

// NewAnswerer creates an answerer with a private partition cache.
func NewAnswerer(r *relation.Relation, keyAttrs []int) *Answerer {
	return NewAnswererWithCache(r, keyAttrs, relation.NewIndexCache())
}

// NewAnswererWithCache creates an answerer sharing an existing cache
// (e.g. an engine session's per-dataset cache, already warm from
// detection). The cache validates entries against the relation on every
// use, so the answerer stays correct across cell edits.
func NewAnswererWithCache(r *relation.Relation, keyAttrs []int, cache *relation.IndexCache) *Answerer {
	return &Answerer{r: r, key: append([]int(nil), keyAttrs...), cache: cache}
}

// pli returns the (cached) key partition of the current relation state.
func (a *Answerer) pli() *relation.PLI {
	return a.cache.Get(a.r, a.key)
}

// Certain returns the certain answers of the query under the key
// constraint: the projected values produced by EVERY repair (repairs
// keep exactly one tuple from each key group).
func (a *Answerer) Certain(q Query) (*relation.Relation, error) {
	r := a.r
	if err := q.validate(r.Schema()); err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(r.Schema(), "certain")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	seen := map[string]bool{}
	pli := a.pli()
	for g := 0; g < pli.NumGroups(); g++ {
		tids := pli.Group(g)
		// Every member must satisfy the selection and project to the same
		// value; otherwise some repair omits the value (picks a member
		// that fails the predicate or projects differently).
		first := r.Tuple(tids[0])
		if !q.pred(first) {
			continue
		}
		pt := first.Project(q.Project)
		ok := true
		for _, tid := range tids[1:] {
			t := r.Tuple(tid)
			if !q.pred(t) || !t.Project(q.Project).Equal(pt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		k := pt.FullKey()
		if !seen[k] {
			seen[k] = true
			out.MustInsert(pt)
		}
	}
	return out, nil
}

// Possible returns the possible answers: the projected values produced
// by SOME repair. For key repairs that is simply every selected tuple's
// projection (each tuple survives in at least one repair).
func (a *Answerer) Possible(q Query) (*relation.Relation, error) {
	// For tuple-deletion repairs of key constraints every tuple occurs in
	// some repair, so possible answers coincide with direct evaluation.
	res, err := Direct(a.r, q)
	if err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(a.r.Schema(), "possible")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, t := range res.Tuples() {
		out.MustInsert(t)
	}
	return out, nil
}

// Conflicts returns the key groups with more than one member — the
// conflict hypergraph's edges for key constraints.
func (a *Answerer) Conflicts() [][]int {
	pli := a.pli()
	var out [][]int
	for g := 0; g < pli.NumGroups(); g++ {
		if tids := pli.Group(g); len(tids) > 1 {
			out = append(out, append([]int(nil), tids...))
		}
	}
	return out
}

// CountRepairs returns the number of tuple-deletion repairs (the product
// of key-group sizes), saturating at math.MaxUint64.
func (a *Answerer) CountRepairs() uint64 {
	pli := a.pli()
	count := uint64(1)
	for g := 0; g < pli.NumGroups(); g++ {
		n := uint64(len(pli.Group(g)))
		if count > math.MaxUint64/n {
			return math.MaxUint64
		}
		count *= n
	}
	return count
}

// EnumerateRepairs calls f with each repair (as a slice of surviving
// TIDs) while f returns true. Exponential in the number of conflicting
// groups; intended for tests and small interactive demos. Returns an
// error when the repair count exceeds limit.
func (a *Answerer) EnumerateRepairs(limit uint64, f func(tids []int) bool) error {
	if c := a.CountRepairs(); c > limit {
		return fmt.Errorf("cqa: %d repairs exceed limit %d", c, limit)
	}
	pli := a.pli() // cache hit: CountRepairs just partitioned
	groups := make([][]int, pli.NumGroups())
	for g := range groups {
		groups[g] = pli.Group(g)
	}
	choice := make([]int, len(groups))
	for {
		var tids []int
		for g, c := range choice {
			tids = append(tids, groups[g][c])
		}
		if !f(tids) {
			return nil
		}
		// Advance the mixed-radix counter.
		g := 0
		for ; g < len(groups); g++ {
			choice[g]++
			if choice[g] < len(groups[g]) {
				break
			}
			choice[g] = 0
		}
		if g == len(groups) {
			return nil
		}
	}
}

// The package-level entry points evaluate one primitive with a
// transient Answerer. Callers issuing several primitives against the
// same relation and key (the usual consistent-answer query: certain +
// conflicts + count) should create one Answerer and reuse it, so the
// key partition is built once.

// Certain returns the certain answers of the query under the key
// constraint. See Answerer.Certain.
func Certain(r *relation.Relation, keyAttrs []int, q Query) (*relation.Relation, error) {
	return NewAnswerer(r, keyAttrs).Certain(q)
}

// Possible returns the possible answers of the query under the key
// constraint. See Answerer.Possible.
func Possible(r *relation.Relation, keyAttrs []int, q Query) (*relation.Relation, error) {
	return NewAnswerer(r, keyAttrs).Possible(q)
}

// Conflicts returns the key groups with more than one member. See
// Answerer.Conflicts.
func Conflicts(r *relation.Relation, keyAttrs []int) [][]int {
	return NewAnswerer(r, keyAttrs).Conflicts()
}

// CountRepairs returns the number of tuple-deletion repairs. See
// Answerer.CountRepairs.
func CountRepairs(r *relation.Relation, keyAttrs []int) uint64 {
	return NewAnswerer(r, keyAttrs).CountRepairs()
}

// EnumerateRepairs enumerates the tuple-deletion repairs. See
// Answerer.EnumerateRepairs.
func EnumerateRepairs(r *relation.Relation, keyAttrs []int, limit uint64, f func(tids []int) bool) error {
	return NewAnswerer(r, keyAttrs).EnumerateRepairs(limit, f)
}
