// Package cqa implements consistent query answering over inconsistent
// data, the second foundational topic the tutorial surveys in §2
// (introduced by Arenas, Bertossi and Chomicki, PODS 1999): "consistent
// query answering is to find an answer to a given query in every repair
// of the original database, without editing the data".
//
// The package covers the classical, decidable core: a single relation
// with a key constraint, repairs obtained by tuple deletion (pick one
// tuple from every key group), and selection-projection queries. A value
// is a certain answer when every repair produces it, and a possible
// answer when some repair does. For key constraints these have a direct
// characterization on the conflict groups, so no repair enumeration is
// needed:
//
//   - a key group all of whose members agree on the projection and all
//     satisfy the selection yields a certain answer;
//   - any single member satisfying the selection yields a possible
//     answer.
package cqa

import (
	"fmt"
	"math"

	"semandaq/internal/relation"
)

// Query is a selection-projection query over one relation.
type Query struct {
	// Pred is the selection; nil selects everything.
	Pred func(relation.Tuple) bool
	// Project lists the output attribute positions (must be non-empty).
	Project []int
}

// validate checks the query against a schema.
func (q Query) validate(schema *relation.Schema) error {
	if len(q.Project) == 0 {
		return fmt.Errorf("cqa: query must project at least one attribute")
	}
	for _, p := range q.Project {
		if p < 0 || p >= schema.Arity() {
			return fmt.Errorf("cqa: projection attribute %d out of range", p)
		}
	}
	return nil
}

func (q Query) pred(t relation.Tuple) bool {
	if q.Pred == nil {
		return true
	}
	return q.Pred(t)
}

// resultSchema builds the output schema for a query.
func (q Query) resultSchema(schema *relation.Schema, name string) (*relation.Schema, error) {
	attrs := make([]relation.Attribute, len(q.Project))
	for i, p := range q.Project {
		attrs[i] = schema.Attr(p)
	}
	return relation.NewSchema(name, attrs...)
}

// Direct evaluates the query on the (possibly inconsistent) relation
// as-is, with duplicate elimination — the baseline that ignores
// inconsistency.
func Direct(r *relation.Relation, q Query) (*relation.Relation, error) {
	if err := q.validate(r.Schema()); err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(r.Schema(), "direct")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	seen := map[string]bool{}
	for _, t := range r.Tuples() {
		if !q.pred(t) {
			continue
		}
		pt := t.Project(q.Project)
		k := pt.FullKey()
		if !seen[k] {
			seen[k] = true
			out.MustInsert(pt)
		}
	}
	return out, nil
}

// Certain returns the certain answers of the query under the key
// constraint: the projected values produced by EVERY repair (repairs
// keep exactly one tuple from each key group).
func Certain(r *relation.Relation, keyAttrs []int, q Query) (*relation.Relation, error) {
	if err := q.validate(r.Schema()); err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(r.Schema(), "certain")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	seen := map[string]bool{}
	idx := relation.BuildIndex(r, keyAttrs)
	var groupErr error
	idx.Groups(func(_ string, tids []int) bool {
		// Every member must satisfy the selection and project to the same
		// value; otherwise some repair omits the value (picks a member
		// that fails the predicate or projects differently).
		first := r.Tuple(tids[0])
		if !q.pred(first) {
			return true
		}
		pt := first.Project(q.Project)
		for _, tid := range tids[1:] {
			t := r.Tuple(tid)
			if !q.pred(t) || !t.Project(q.Project).Equal(pt) {
				return true
			}
		}
		k := pt.FullKey()
		if !seen[k] {
			seen[k] = true
			out.MustInsert(pt)
		}
		return true
	})
	return out, groupErr
}

// Possible returns the possible answers: the projected values produced
// by SOME repair. For key repairs that is simply every selected tuple's
// projection (each tuple survives in at least one repair).
func Possible(r *relation.Relation, keyAttrs []int, q Query) (*relation.Relation, error) {
	// For tuple-deletion repairs of key constraints every tuple occurs in
	// some repair, so possible answers coincide with direct evaluation.
	_ = keyAttrs
	res, err := Direct(r, q)
	if err != nil {
		return nil, err
	}
	schema, err := q.resultSchema(r.Schema(), "possible")
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, t := range res.Tuples() {
		out.MustInsert(t)
	}
	return out, nil
}

// Conflicts returns the key groups with more than one member — the
// conflict hypergraph's edges for key constraints.
func Conflicts(r *relation.Relation, keyAttrs []int) [][]int {
	idx := relation.BuildIndex(r, keyAttrs)
	var out [][]int
	idx.Groups(func(_ string, tids []int) bool {
		if len(tids) > 1 {
			group := append([]int(nil), tids...)
			out = append(out, group)
		}
		return true
	})
	return out
}

// CountRepairs returns the number of tuple-deletion repairs (the product
// of key-group sizes), saturating at math.MaxUint64.
func CountRepairs(r *relation.Relation, keyAttrs []int) uint64 {
	idx := relation.BuildIndex(r, keyAttrs)
	count := uint64(1)
	idx.Groups(func(_ string, tids []int) bool {
		n := uint64(len(tids))
		if count > math.MaxUint64/n {
			count = math.MaxUint64
			return false
		}
		count *= n
		return true
	})
	return count
}

// EnumerateRepairs calls f with each repair (as a slice of surviving
// TIDs) while f returns true. Exponential in the number of conflicting
// groups; intended for tests and small interactive demos. Returns an
// error when the repair count exceeds limit.
func EnumerateRepairs(r *relation.Relation, keyAttrs []int, limit uint64, f func(tids []int) bool) error {
	if c := CountRepairs(r, keyAttrs); c > limit {
		return fmt.Errorf("cqa: %d repairs exceed limit %d", c, limit)
	}
	idx := relation.BuildIndex(r, keyAttrs)
	var groups [][]int
	idx.Groups(func(_ string, tids []int) bool {
		groups = append(groups, tids)
		return true
	})
	choice := make([]int, len(groups))
	for {
		var tids []int
		for g, c := range choice {
			tids = append(tids, groups[g][c])
		}
		if !f(tids) {
			return nil
		}
		// Advance the mixed-radix counter.
		g := 0
		for ; g < len(groups); g++ {
			choice[g]++
			if choice[g] < len(groups[g]) {
				break
			}
			choice[g] = 0
		}
		if g == len(groups) {
			return nil
		}
	}
}
