package cqa

import (
	"math/rand"
	"testing"

	"semandaq/internal/relation"
)

func schema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.StringSchema("emp", "id", "name", "dept", "city")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func st(vals ...string) relation.Tuple {
	tp := make(relation.Tuple, len(vals))
	for i, v := range vals {
		tp[i] = relation.String(v)
	}
	return tp
}

// conflicted builds a relation where id is the key and id=2 has two
// conflicting tuples (different dept).
func conflicted(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(schema(t))
	r.MustInsert(st("1", "ann", "sales", "edi"))
	r.MustInsert(st("2", "bob", "it", "gla"))
	r.MustInsert(st("2", "bob", "hr", "gla"))
	r.MustInsert(st("3", "cat", "it", "edi"))
	return r
}

// TestAnswererSharesPartition is the regression for the repeated
// per-query index rebuilds: one answerer serving a whole
// consistent-answer query (certain + possible + conflicts + count +
// enumerate + aggregate) partitions the relation by the key exactly
// once, and a key-relevant edit triggers exactly one revalidating
// rebuild.
func TestAnswererSharesPartition(t *testing.T) {
	r := conflicted(t)
	cache := relation.NewIndexCache()
	a := NewAnswererWithCache(r, []int{0}, cache)
	q := Query{Project: []int{1}}
	if _, err := a.Certain(q); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Possible(q); err != nil {
		t.Fatal(err)
	}
	a.Conflicts()
	a.CountRepairs()
	if err := a.EnumerateRepairs(1<<20, func([]int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Range(AggCount, -1, nil); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 1 {
		t.Fatalf("the query path partitioned %d times, want 1 (stats %+v)", s.Misses, s)
	}

	// An edit to the key column invalidates the partition; the next
	// primitive rebuilds it once and later ones reuse the rebuilt PLI.
	r.Set(3, 0, relation.String("2"))
	if got := a.CountRepairs(); got != 3 {
		t.Fatalf("post-edit repairs = %d, want 3 (groups {1} and three id=2 tuples)", got)
	}
	a.Conflicts()
	if s := cache.Stats(); s.Misses != 2 {
		t.Fatalf("post-edit partitioning ran %d builds, want 2 total (stats %+v)", s.Misses, s)
	}
}

func TestCertainAgreeingAttributesSurvive(t *testing.T) {
	r := conflicted(t)
	key := []int{0}
	// Project name: both id=2 tuples agree on bob, so bob is certain.
	q := Query{Project: []int{1}}
	res, err := Certain(r, key, q)
	if err != nil {
		t.Fatal(err)
	}
	names := values(res, 0)
	if !names["ann"] || !names["bob"] || !names["cat"] || len(names) != 3 {
		t.Errorf("certain names = %v", names)
	}
}

func TestCertainConflictingAttributeDropped(t *testing.T) {
	r := conflicted(t)
	key := []int{0}
	// Project dept: id=2's dept conflicts, so neither it-from-2 nor hr
	// is certain; but it is still certain via id=3.
	q := Query{Project: []int{2}}
	res, err := Certain(r, key, q)
	if err != nil {
		t.Fatal(err)
	}
	depts := values(res, 0)
	if !depts["sales"] || !depts["it"] || len(depts) != 2 {
		t.Errorf("certain depts = %v (hr must be excluded)", depts)
	}
	// hr is a possible answer.
	pos, err := Possible(r, key, q)
	if err != nil {
		t.Fatal(err)
	}
	if !values(pos, 0)["hr"] {
		t.Error("hr should be possible")
	}
}

func TestCertainWithSelection(t *testing.T) {
	r := conflicted(t)
	key := []int{0}
	dept := r.Schema().MustIndex("dept")
	q := Query{
		Pred:    func(tp relation.Tuple) bool { return tp[dept].Equal(relation.String("it")) },
		Project: []int{1},
	}
	res, err := Certain(r, key, q)
	if err != nil {
		t.Fatal(err)
	}
	// Only cat is certainly in it: bob's membership depends on the repair.
	names := values(res, 0)
	if len(names) != 1 || !names["cat"] {
		t.Errorf("certain it-members = %v", names)
	}
}

func TestCertainEqualsDirectOnConsistentData(t *testing.T) {
	r := relation.New(schema(t))
	r.MustInsert(st("1", "ann", "sales", "edi"))
	r.MustInsert(st("2", "bob", "it", "gla"))
	key := []int{0}
	q := Query{Project: []int{1, 2}}
	cert, err := Certain(r, key, q)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := Direct(r, q)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != dir.Len() {
		t.Errorf("consistent data: certain %d != direct %d", cert.Len(), dir.Len())
	}
}

func TestConflictsAndCountRepairs(t *testing.T) {
	r := conflicted(t)
	key := []int{0}
	cs := Conflicts(r, key)
	if len(cs) != 1 || len(cs[0]) != 2 {
		t.Errorf("conflicts = %v", cs)
	}
	if n := CountRepairs(r, key); n != 2 {
		t.Errorf("repairs = %d, want 2", n)
	}
}

func TestEnumerateRepairsLimit(t *testing.T) {
	r := conflicted(t)
	if err := EnumerateRepairs(r, []int{0}, 1, func([]int) bool { return true }); err == nil {
		t.Error("limit 1 with 2 repairs should fail")
	}
	count := 0
	if err := EnumerateRepairs(r, []int{0}, 10, func(tids []int) bool {
		count++
		if len(tids) != 3 {
			t.Errorf("repair size = %d, want 3", len(tids))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("enumerated %d repairs, want 2", count)
	}
}

// TestCertainMatchesBruteForce is the semantics property: the direct
// characterization agrees with literally intersecting the query answers
// over every enumerated repair.
func TestCertainMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := schema(t)
	for trial := 0; trial < 20; trial++ {
		r := relation.New(s)
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			r.MustInsert(st(
				string(rune('1'+rng.Intn(4))), // id: few values → conflicts
				[]string{"ann", "bob", "cat"}[rng.Intn(3)],
				[]string{"it", "hr"}[rng.Intn(2)],
				[]string{"edi", "gla"}[rng.Intn(2)]))
		}
		key := []int{0}
		dept := s.MustIndex("dept")
		q := Query{
			Pred:    func(tp relation.Tuple) bool { return tp[dept].Equal(relation.String("it")) },
			Project: []int{1, 3},
		}
		cert, err := Certain(r, key, q)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: intersect answers across all repairs.
		var intersection map[string]relation.Tuple
		err = EnumerateRepairs(r, key, 1<<20, func(tids []int) bool {
			answers := map[string]relation.Tuple{}
			for _, tid := range tids {
				tp := r.Tuple(tid)
				if q.pred(tp) {
					pt := tp.Project(q.Project)
					answers[pt.FullKey()] = pt
				}
			}
			if intersection == nil {
				intersection = answers
			} else {
				for k := range intersection {
					if _, ok := answers[k]; !ok {
						delete(intersection, k)
					}
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(intersection) != cert.Len() {
			t.Fatalf("trial %d: brute %d answers vs certain %d", trial, len(intersection), cert.Len())
		}
		for _, tp := range cert.Tuples() {
			if _, ok := intersection[tp.FullKey()]; !ok {
				t.Fatalf("trial %d: certain answer %v not in brute-force intersection", trial, tp)
			}
		}

		// Certain ⊆ direct always.
		dir, err := Direct(r, q)
		if err != nil {
			t.Fatal(err)
		}
		dirKeys := map[string]bool{}
		for _, tp := range dir.Tuples() {
			dirKeys[tp.FullKey()] = true
		}
		for _, tp := range cert.Tuples() {
			if !dirKeys[tp.FullKey()] {
				t.Fatalf("trial %d: certain answer %v not a direct answer", trial, tp)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	r := conflicted(t)
	if _, err := Certain(r, []int{0}, Query{}); err == nil {
		t.Error("empty projection should fail")
	}
	if _, err := Direct(r, Query{Project: []int{99}}); err == nil {
		t.Error("out-of-range projection should fail")
	}
}

func values(r *relation.Relation, col int) map[string]bool {
	out := map[string]bool{}
	for _, t := range r.Tuples() {
		out[t[col].Str()] = true
	}
	return out
}
