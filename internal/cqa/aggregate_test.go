package cqa

import (
	"math"
	"math/rand"
	"testing"

	"semandaq/internal/relation"
)

func numSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("sales",
		relation.Attribute{Name: "id", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "amount", Kind: relation.KindInt},
	)
}

func numTuple(id, region string, amount int64) relation.Tuple {
	return relation.Tuple{relation.String(id), relation.String(region), relation.Int(amount)}
}

func TestRangeCount(t *testing.T) {
	r := relation.New(numSchema(t))
	r.MustInsert(numTuple("1", "east", 10))
	r.MustInsert(numTuple("2", "east", 20))
	r.MustInsert(numTuple("2", "west", 30)) // conflicts with previous
	key := []int{0}
	region := 1
	pred := func(tp relation.Tuple) bool { return tp[region].Equal(relation.String("east")) }
	iv, err := Range(r, key, AggCount, -1, pred)
	if err != nil {
		t.Fatal(err)
	}
	// id=1 always east (count 1 guaranteed); id=2 east in one repair.
	if iv.Lo != 1 || iv.Hi != 2 {
		t.Fatalf("count interval = %v, want [1, 2]", iv)
	}
}

func TestRangeSum(t *testing.T) {
	r := relation.New(numSchema(t))
	r.MustInsert(numTuple("1", "east", 10))
	r.MustInsert(numTuple("2", "east", 20))
	r.MustInsert(numTuple("2", "east", 50))
	key := []int{0}
	iv, err := Range(r, key, AggSum, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 30 || iv.Hi != 60 {
		t.Fatalf("sum interval = %v, want [30, 60]", iv)
	}
}

func TestRangeMinMax(t *testing.T) {
	r := relation.New(numSchema(t))
	r.MustInsert(numTuple("1", "east", 10))
	r.MustInsert(numTuple("2", "east", 5))
	r.MustInsert(numTuple("2", "east", 50))
	key := []int{0}
	iv, err := Range(r, key, AggMin, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Repairs: {10, 5} → min 5; {10, 50} → min 10.
	if iv.Lo != 5 || iv.Hi != 10 || !iv.Defined {
		t.Fatalf("min interval = %v, want [5, 10]", iv)
	}
	iv, err = Range(r, key, AggMax, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Repairs: max 10 or max 50.
	if iv.Lo != 10 || iv.Hi != 50 {
		t.Fatalf("max interval = %v, want [10, 50]", iv)
	}
}

func TestRangeMinUndefinedRepair(t *testing.T) {
	r := relation.New(numSchema(t))
	r.MustInsert(numTuple("1", "east", 10))
	r.MustInsert(numTuple("1", "west", 99)) // conflicting; west fails pred
	key := []int{0}
	pred := func(tp relation.Tuple) bool { return tp[1].Equal(relation.String("east")) }
	iv, err := Range(r, key, AggMin, 2, pred)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Defined {
		t.Fatalf("interval should be undefined in some repair: %v", iv)
	}
}

// TestRangeMatchesEnumeration is the semantics property: on random small
// inputs the computed interval equals the true min/max over every
// enumerated repair, for all four aggregates.
func TestRangeMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := numSchema(t)
	for trial := 0; trial < 40; trial++ {
		r := relation.New(s)
		n := 3 + rng.Intn(7)
		for i := 0; i < n; i++ {
			r.MustInsert(numTuple(
				string(rune('1'+rng.Intn(3))),
				[]string{"east", "west"}[rng.Intn(2)],
				int64(rng.Intn(20))))
		}
		key := []int{0}
		pred := func(tp relation.Tuple) bool { return tp[1].Equal(relation.String("east")) }

		for _, agg := range []AggKind{AggCount, AggSum, AggMin, AggMax} {
			iv, err := Range(r, key, agg, 2, pred)
			if err != nil {
				t.Fatal(err)
			}
			// Enumerate repairs, computing the aggregate in each.
			lo, hi := math.Inf(1), math.Inf(-1)
			definedEverywhere := true
			err = EnumerateRepairs(r, key, 1<<20, func(tids []int) bool {
				var vals []float64
				for _, tid := range tids {
					tp := r.Tuple(tid)
					if pred(tp) {
						vals = append(vals, tp[2].FloatVal())
					}
				}
				var v float64
				switch agg {
				case AggCount:
					v = float64(len(vals))
				case AggSum:
					v = 0
					for _, x := range vals {
						v += x
					}
				case AggMin, AggMax:
					if len(vals) == 0 {
						definedEverywhere = false
						return true
					}
					v = vals[0]
					for _, x := range vals[1:] {
						if (agg == AggMin && x < v) || (agg == AggMax && x > v) {
							v = x
						}
					}
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if agg == AggMin || agg == AggMax {
				if iv.Defined != definedEverywhere {
					t.Fatalf("trial %d agg %d: Defined=%v, enumeration says %v",
						trial, agg, iv.Defined, definedEverywhere)
				}
				if math.IsInf(lo, 1) {
					continue // no repair had a defined value; bounds unchecked
				}
			}
			if iv.Lo != lo || iv.Hi != hi {
				t.Fatalf("trial %d agg %d: interval [%g, %g], enumeration [%g, %g]",
					trial, agg, iv.Lo, iv.Hi, lo, hi)
			}
		}
	}
}

func TestRangeErrors(t *testing.T) {
	r := relation.New(numSchema(t))
	r.MustInsert(numTuple("1", "east", 1))
	if _, err := Range(r, []int{0}, AggSum, 99, nil); err == nil {
		t.Error("out-of-range attribute should fail")
	}
	if _, err := Range(r, []int{0}, AggKind(42), 2, nil); err == nil {
		t.Error("unknown aggregate should fail")
	}
}
