package minidb

import (
	"fmt"

	"semandaq/internal/relation"
)

// Expressions compile to closures over an environment chain. Boolean
// results use SQL three-valued logic encoded in relation.Value:
// Int(1) = true, Int(0) = false, Null() = unknown.

type env struct {
	row   relation.Tuple
	outer *env
}

type compiledExpr struct {
	eval func(*env) relation.Value
	kind relation.Kind // static result kind (best effort; NULL runs free)
}

// scopeInfo describes the columns visible at some query nesting level.
type scopeInfo struct {
	cols   []scopeCol
	parent *scopeInfo
}

type scopeCol struct {
	table string // alias
	name  string
	kind  relation.Kind
}

// resolve finds a column by (optional) table alias and name, walking out
// through parent scopes. Depth 0 is the current scope.
func (s *scopeInfo) resolve(table, name string) (depth, pos int, kind relation.Kind, err error) {
	for sc, d := s, 0; sc != nil; sc, d = sc.parent, d+1 {
		found := -1
		for i, c := range sc.cols {
			if c.name != name {
				continue
			}
			if table != "" && c.table != table {
				continue
			}
			if found >= 0 {
				return 0, 0, 0, fmt.Errorf("minidb: ambiguous column %q", name)
			}
			found = i
		}
		if found >= 0 {
			return d, found, sc.cols[found].kind, nil
		}
	}
	if table != "" {
		return 0, 0, 0, fmt.Errorf("minidb: unknown column %s.%s", table, name)
	}
	return 0, 0, 0, fmt.Errorf("minidb: unknown column %s", name)
}

func (e *env) at(depth int) *env {
	for ; depth > 0; depth-- {
		e = e.outer
	}
	return e
}

var (
	triTrue  = relation.Int(1)
	triFalse = relation.Int(0)
)

func boolVal(b bool) relation.Value {
	if b {
		return triTrue
	}
	return triFalse
}

func truthy(v relation.Value) bool {
	return !v.IsNull() && v.IntVal() != 0
}

// compiler compiles expressions in a fixed scope. existsFn is provided by
// the executor to compile subqueries (avoids an import cycle between
// compile and execute).
type compiler struct {
	scope  *scopeInfo
	exists func(*ExistsOp, *scopeInfo) (func(*env) relation.Value, error)
	// Aggregate interception for the grouped projection path: when
	// aggIndex is set, Aggregate nodes compile to reads of the
	// per-group slice pointed to by curAggs.
	aggIndex map[*Aggregate]int
	curAggs  *[]relation.Value
}

func (c *compiler) compile(ex Expr) (compiledExpr, error) {
	switch n := ex.(type) {
	case *Literal:
		v := n.Val
		return compiledExpr{func(*env) relation.Value { return v }, v.Kind()}, nil

	case *ColumnRef:
		depth, pos, kind, err := c.scope.resolve(n.Table, n.Name)
		if err != nil {
			return compiledExpr{}, err
		}
		return compiledExpr{func(e *env) relation.Value { return e.at(depth).row[pos] }, kind}, nil

	case *BinaryOp:
		l, err := c.compile(n.L)
		if err != nil {
			return compiledExpr{}, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return compiledExpr{}, err
		}
		op := n.Op
		return compiledExpr{func(e *env) relation.Value {
			lv, rv := l.eval(e), r.eval(e)
			if lv.IsNull() || rv.IsNull() {
				return relation.Null()
			}
			switch op {
			case "=":
				return boolVal(lv.Equal(rv))
			case "<>":
				return boolVal(!lv.Equal(rv))
			case "<":
				return boolVal(lv.Compare(rv) < 0)
			case "<=":
				return boolVal(lv.Compare(rv) <= 0)
			case ">":
				return boolVal(lv.Compare(rv) > 0)
			default: // ">="
				return boolVal(lv.Compare(rv) >= 0)
			}
		}, relation.KindInt}, nil

	case *LogicalOp:
		l, err := c.compile(n.L)
		if err != nil {
			return compiledExpr{}, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return compiledExpr{}, err
		}
		if n.Op == "AND" {
			return compiledExpr{func(e *env) relation.Value {
				lv := l.eval(e)
				if !lv.IsNull() && lv.IntVal() == 0 {
					return triFalse
				}
				rv := r.eval(e)
				if !rv.IsNull() && rv.IntVal() == 0 {
					return triFalse
				}
				if lv.IsNull() || rv.IsNull() {
					return relation.Null()
				}
				return triTrue
			}, relation.KindInt}, nil
		}
		return compiledExpr{func(e *env) relation.Value {
			lv := l.eval(e)
			if truthy(lv) {
				return triTrue
			}
			rv := r.eval(e)
			if truthy(rv) {
				return triTrue
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null()
			}
			return triFalse
		}, relation.KindInt}, nil

	case *NotOp:
		inner, err := c.compile(n.E)
		if err != nil {
			return compiledExpr{}, err
		}
		return compiledExpr{func(e *env) relation.Value {
			v := inner.eval(e)
			if v.IsNull() {
				return relation.Null()
			}
			return boolVal(v.IntVal() == 0)
		}, relation.KindInt}, nil

	case *IsNull:
		inner, err := c.compile(n.E)
		if err != nil {
			return compiledExpr{}, err
		}
		neg := n.Neg
		return compiledExpr{func(e *env) relation.Value {
			isNull := inner.eval(e).IsNull()
			return boolVal(isNull != neg)
		}, relation.KindInt}, nil

	case *InList:
		inner, err := c.compile(n.E)
		if err != nil {
			return compiledExpr{}, err
		}
		vals := make([]relation.Value, len(n.Vals))
		for i, v := range n.Vals {
			lit, ok := v.(*Literal)
			if !ok {
				return compiledExpr{}, fmt.Errorf("minidb: IN list elements must be literals")
			}
			vals[i] = lit.Val
		}
		neg := n.Neg
		return compiledExpr{func(e *env) relation.Value {
			v := inner.eval(e)
			if v.IsNull() {
				return relation.Null()
			}
			for _, c := range vals {
				if v.Equal(c) {
					return boolVal(!neg)
				}
			}
			return boolVal(neg)
		}, relation.KindInt}, nil

	case *ExistsOp:
		if c.exists == nil {
			return compiledExpr{}, fmt.Errorf("minidb: EXISTS not allowed in this context")
		}
		fn, err := c.exists(n, c.scope)
		if err != nil {
			return compiledExpr{}, err
		}
		return compiledExpr{fn, relation.KindInt}, nil

	case *Aggregate:
		if c.aggIndex != nil {
			idx, ok := c.aggIndex[n]
			if !ok {
				return compiledExpr{}, fmt.Errorf("minidb: internal: aggregate node not indexed")
			}
			slot := c.curAggs
			kind := relation.KindFloat
			if n.Fn == "COUNT" {
				kind = relation.KindInt
			} else if n.Fn == "MIN" || n.Fn == "MAX" {
				if cr, ok := n.Arg.(*ColumnRef); ok {
					if _, _, k, err := c.scope.resolve(cr.Table, cr.Name); err == nil {
						kind = k
					}
				}
			}
			return compiledExpr{func(*env) relation.Value { return (*slot)[idx] }, kind}, nil
		}
		return compiledExpr{}, fmt.Errorf("minidb: aggregate %s outside of SELECT/HAVING over groups", n.Fn)

	default:
		return compiledExpr{}, fmt.Errorf("minidb: unsupported expression %T", ex)
	}
}

// conjuncts flattens a WHERE expression into its top-level AND operands.
func conjuncts(ex Expr) []Expr {
	if ex == nil {
		return nil
	}
	if lo, ok := ex.(*LogicalOp); ok && lo.Op == "AND" {
		return append(conjuncts(lo.L), conjuncts(lo.R)...)
	}
	return []Expr{ex}
}

// columnsOf collects the column references in an expression, excluding
// those inside EXISTS subqueries (which resolve in their own scope).
func columnsOf(ex Expr, out *[]*ColumnRef) {
	switch n := ex.(type) {
	case *ColumnRef:
		*out = append(*out, n)
	case *BinaryOp:
		columnsOf(n.L, out)
		columnsOf(n.R, out)
	case *LogicalOp:
		columnsOf(n.L, out)
		columnsOf(n.R, out)
	case *NotOp:
		columnsOf(n.E, out)
	case *IsNull:
		columnsOf(n.E, out)
	case *InList:
		columnsOf(n.E, out)
	case *Aggregate:
		if n.Arg != nil {
			columnsOf(n.Arg, out)
		}
	}
}

// aggregatesOf collects aggregate nodes in an expression (not descending
// into EXISTS).
func aggregatesOf(ex Expr, out *[]*Aggregate) {
	switch n := ex.(type) {
	case *Aggregate:
		*out = append(*out, n)
	case *BinaryOp:
		aggregatesOf(n.L, out)
		aggregatesOf(n.R, out)
	case *LogicalOp:
		aggregatesOf(n.L, out)
		aggregatesOf(n.R, out)
	case *NotOp:
		aggregatesOf(n.E, out)
	case *IsNull:
		aggregatesOf(n.E, out)
	case *InList:
		aggregatesOf(n.E, out)
	}
}
