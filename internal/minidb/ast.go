package minidb

import "semandaq/internal/relation"

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col kind, ...).
type CreateTable struct {
	Name    string
	Columns []relation.Attribute
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr // literal expressions only
}

// Update is UPDATE name SET col = lit [, ...] [WHERE expr].
type Update struct {
	Table string
	Cols  []string
	Vals  []Expr // literals
	Where Expr   // nil if absent
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Table string
	Where Expr // nil if absent
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	Star     bool
	From     []TableRef
	Where    Expr // nil if absent
	GroupBy  []*ColumnRef
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	Limit    int // -1 if absent
}

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is a FROM item: a named table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  *ColumnRef
	Desc bool
}

// Expr is an expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val relation.Value }

// ColumnRef is a possibly-qualified column reference.
type ColumnRef struct {
	Table string // empty if unqualified
	Name  string
}

// BinaryOp is a comparison or arithmetic-free binary operation.
// Op is one of = <> < <= > >=.
type BinaryOp struct {
	Op   string
	L, R Expr
}

// LogicalOp is AND / OR over boolean operands.
type LogicalOp struct {
	Op   string // AND, OR
	L, R Expr
}

// NotOp is boolean negation.
type NotOp struct{ E Expr }

// IsNull is `expr IS [NOT] NULL`.
type IsNull struct {
	E   Expr
	Neg bool
}

// InList is `expr [NOT] IN (lit, lit, ...)` — the SQL form of the eCFD
// disjunction and negation patterns (Bravo et al., ICDE 2008).
type InList struct {
	E    Expr
	Vals []Expr // literals
	Neg  bool
}

// ExistsOp is `[NOT] EXISTS (subquery)`.
type ExistsOp struct {
	Neg bool
	Sub *Select
}

// Aggregate is COUNT/SUM/AVG/MIN/MAX. Arg is nil for COUNT(*).
type Aggregate struct {
	Fn       string // COUNT, SUM, AVG, MIN, MAX
	Arg      Expr   // nil for COUNT(*)
	Distinct bool
}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*BinaryOp) expr()  {}
func (*LogicalOp) expr() {}
func (*NotOp) expr()     {}
func (*IsNull) expr()    {}
func (*InList) expr()    {}
func (*ExistsOp) expr()  {}
func (*Aggregate) expr() {}
