package minidb

import (
	"testing"

	"semandaq/internal/relation"
)

func TestInList(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM cust WHERE city IN ('edi', 'mh')")
	if r.Len() != 3 {
		t.Fatalf("IN rows = %d, want 3", r.Len())
	}
	r = mustQuery(t, db, "SELECT name FROM cust WHERE city NOT IN ('edi', 'mh')")
	if r.Len() != 1 || r.Tuple(0)[0].Str() != "kim" {
		t.Fatalf("NOT IN rows = %v", r.Tuples())
	}
	r = mustQuery(t, db, "SELECT name FROM cust WHERE age IN (30, 25)")
	if r.Len() != 2 {
		t.Fatalf("numeric IN rows = %d", r.Len())
	}
	// NULL semantics: NULL IN (...) is unknown → filtered; NOT IN too.
	db2 := New()
	if _, err := db2.Exec("CREATE TABLE t (a STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("INSERT INTO t VALUES ('x'), (NULL)"); err != nil {
		t.Fatal(err)
	}
	r = mustQuery(t, db2, "SELECT a FROM t WHERE a IN ('x', 'y')")
	if r.Len() != 1 {
		t.Fatalf("NULL IN rows = %d", r.Len())
	}
	r = mustQuery(t, db2, "SELECT a FROM t WHERE a NOT IN ('z')")
	if r.Len() != 1 {
		t.Fatalf("NULL NOT IN rows = %d, want 1 (NULL is unknown)", r.Len())
	}
}

func TestInListParseErrors(t *testing.T) {
	db := testDB(t)
	for _, sql := range []string{
		"SELECT name FROM cust WHERE city IN ()",
		"SELECT name FROM cust WHERE city IN ('a'",
		"SELECT name FROM cust WHERE city IN (name)", // non-literal
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("UPDATE cust SET city = 'gla' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "SELECT city FROM cust WHERE id = 1")
	if r.Tuple(0)[0].Str() != "gla" {
		t.Fatalf("update did not apply: %v", r.Tuple(0))
	}
	// Multi-column update without WHERE hits everything.
	if _, err := db.Exec("UPDATE cust SET city = 'zzz', age = 1"); err != nil {
		t.Fatal(err)
	}
	r = mustQuery(t, db, "SELECT COUNT(*) AS n FROM cust WHERE city = 'zzz' AND age = 1")
	if r.Tuple(0)[0].IntVal() != 4 {
		t.Fatalf("bulk update rows = %v", r.Tuple(0))
	}
	if _, err := db.Exec("UPDATE cust SET nosuch = 1"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Exec("UPDATE nosuch SET a = 1"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("DELETE FROM cust WHERE city = 'edi'"); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) AS n FROM cust")
	if r.Tuple(0)[0].IntVal() != 2 {
		t.Fatalf("after delete, count = %v", r.Tuple(0))
	}
	if _, err := db.Exec("DELETE FROM cust"); err != nil {
		t.Fatal(err)
	}
	r = mustQuery(t, db, "SELECT COUNT(*) AS n FROM cust")
	if r.Tuple(0)[0].IntVal() != 0 {
		t.Fatalf("after full delete, count = %v", r.Tuple(0))
	}
	if _, err := db.Exec("DELETE FROM nosuch"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestUpdateThenQueryConsistency(t *testing.T) {
	// The repair workflow shape: write back repaired values via UPDATE
	// and re-run a detection-style aggregate.
	db := New()
	if _, err := db.Exec("CREATE TABLE r (zip STRING, str STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO r VALUES ('Z1', 'a'), ('Z1', 'b'), ('Z2', 'c')"); err != nil {
		t.Fatal(err)
	}
	conflict := "SELECT zip FROM r GROUP BY zip HAVING COUNT(DISTINCT str) > 1"
	if got := mustQuery(t, db, conflict); got.Len() != 1 {
		t.Fatalf("expected 1 conflicting group, got %d", got.Len())
	}
	if _, err := db.Exec("UPDATE r SET str = 'a' WHERE zip = 'Z1'"); err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, db, conflict); got.Len() != 0 {
		t.Fatalf("conflict should be repaired, got %v", got.Tuples())
	}
}

func TestDeleteRebuildsTIDs(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 2"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("t")
	if tbl.Len() != 2 || !tbl.Tuple(1)[0].Equal(relation.Int(3)) {
		t.Fatalf("after delete: %v", tbl.Tuples())
	}
}
