package minidb

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// DB is an in-memory SQL database: a catalog of named relations plus the
// query executor.
type DB struct {
	tables map[string]*relation.Relation
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*relation.Relation)}
}

// Register adds (or replaces) a table backed directly by a relation; no
// data is copied, so external mutations are visible to queries.
func (db *DB) Register(name string, r *relation.Relation) {
	db.tables[name] = r
}

// Table returns a registered table.
func (db *DB) Table(name string) (*relation.Relation, bool) {
	r, ok := db.tables[name]
	return r, ok
}

// Exec parses and runs one statement. SELECT returns its result relation;
// CREATE TABLE and INSERT return nil.
func (db *DB) Exec(sql string) (*relation.Relation, error) {
	stmt, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *CreateTable:
		if _, exists := db.tables[s.Name]; exists {
			return nil, fmt.Errorf("minidb: table %q already exists", s.Name)
		}
		schema, err := relation.NewSchema(s.Name, s.Columns...)
		if err != nil {
			return nil, err
		}
		db.tables[s.Name] = relation.New(schema)
		return nil, nil
	case *Insert:
		tbl, ok := db.tables[s.Table]
		if !ok {
			return nil, fmt.Errorf("minidb: unknown table %q", s.Table)
		}
		for _, row := range s.Rows {
			t := make(relation.Tuple, len(row))
			for i, e := range row {
				t[i] = e.(*Literal).Val
			}
			if _, err := tbl.Insert(t); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case *Select:
		return db.runSelect(s, nil, nil)
	case *Update:
		return nil, db.runUpdate(s)
	case *Delete:
		return nil, db.runDelete(s)
	default:
		return nil, fmt.Errorf("minidb: unsupported statement %T", stmt)
	}
}

// Query is Exec restricted to SELECT.
func (db *DB) Query(sql string) (*relation.Relation, error) {
	stmt, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("minidb: Query requires a SELECT statement")
	}
	return db.runSelect(sel, nil, nil)
}

// compileSingleTablePred compiles a WHERE clause against one table's
// scope, for UPDATE/DELETE.
func (db *DB) compileSingleTablePred(tbl *relation.Relation, alias string, where Expr) (func(relation.Tuple) bool, error) {
	if where == nil {
		return func(relation.Tuple) bool { return true }, nil
	}
	scope := &scopeInfo{}
	for j := 0; j < tbl.Schema().Arity(); j++ {
		a := tbl.Schema().Attr(j)
		scope.cols = append(scope.cols, scopeCol{table: alias, name: a.Name, kind: a.Kind})
	}
	comp := &compiler{scope: scope}
	comp.exists = func(n *ExistsOp, s *scopeInfo) (func(*env) relation.Value, error) {
		return db.compileExists(n, s)
	}
	ce, err := comp.compile(where)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool {
		return truthy(ce.eval(&env{row: t}))
	}, nil
}

// runUpdate executes UPDATE ... SET ... WHERE in place.
func (db *DB) runUpdate(up *Update) error {
	tbl, ok := db.tables[up.Table]
	if !ok {
		return fmt.Errorf("minidb: unknown table %q", up.Table)
	}
	cols := make([]int, len(up.Cols))
	vals := make([]relation.Value, len(up.Cols))
	for i, c := range up.Cols {
		pos, ok := tbl.Schema().Index(c)
		if !ok {
			return fmt.Errorf("minidb: unknown column %q in UPDATE", c)
		}
		cols[i] = pos
		vals[i] = up.Vals[i].(*Literal).Val
	}
	pred, err := db.compileSingleTablePred(tbl, up.Table, up.Where)
	if err != nil {
		return err
	}
	for tid, t := range tbl.Tuples() {
		if !pred(t) {
			continue
		}
		for i, pos := range cols {
			tbl.Set(tid, pos, vals[i])
		}
	}
	return nil
}

// runDelete executes DELETE FROM ... WHERE by rebuilding the table
// without the matching tuples (TIDs are renumbered).
func (db *DB) runDelete(del *Delete) error {
	tbl, ok := db.tables[del.Table]
	if !ok {
		return fmt.Errorf("minidb: unknown table %q", del.Table)
	}
	pred, err := db.compileSingleTablePred(tbl, del.Table, del.Where)
	if err != nil {
		return err
	}
	kept := relation.New(tbl.Schema())
	for _, t := range tbl.Tuples() {
		if !pred(t) {
			kept.MustInsert(t)
		}
	}
	db.tables[del.Table] = kept
	return nil
}

// fromSource is a resolved FROM table.
type fromSource struct {
	ref    TableRef
	rel    *relation.Relation
	offset int // start position of its columns in the combined row
}

// runSelect executes a SELECT. outerScope/outerEnv are non-nil when the
// select is a correlated subquery.
func (db *DB) runSelect(sel *Select, outerScope *scopeInfo, outerEnv *env) (*relation.Relation, error) {
	rows, scope, err := db.joinAndFilter(sel, outerScope, outerEnv, false)
	if err != nil {
		return nil, err
	}
	return db.project(sel, rows, scope)
}

// joinAndFilter evaluates FROM and WHERE, returning combined rows. If
// firstOnly is set it stops after one surviving row (EXISTS probing).
func (db *DB) joinAndFilter(sel *Select, outerScope *scopeInfo, outerEnv *env, firstOnly bool) ([][]relation.Value, *scopeInfo, error) {
	if len(sel.From) == 0 {
		return nil, nil, fmt.Errorf("minidb: SELECT requires FROM")
	}
	sources := make([]fromSource, len(sel.From))
	scope := &scopeInfo{parent: outerScope}
	seen := map[string]bool{}
	width := 0
	for i, ref := range sel.From {
		rel, ok := db.tables[ref.Table]
		if !ok {
			return nil, nil, fmt.Errorf("minidb: unknown table %q", ref.Table)
		}
		if seen[ref.Alias] {
			return nil, nil, fmt.Errorf("minidb: duplicate table alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		sources[i] = fromSource{ref: ref, rel: rel, offset: width}
		for j := 0; j < rel.Schema().Arity(); j++ {
			a := rel.Schema().Attr(j)
			scope.cols = append(scope.cols, scopeCol{table: ref.Alias, name: a.Name, kind: a.Kind})
		}
		width += rel.Schema().Arity()
	}

	comp := &compiler{scope: scope}
	comp.exists = func(n *ExistsOp, s *scopeInfo) (func(*env) relation.Value, error) {
		return db.compileExists(n, s)
	}

	// Classify WHERE conjuncts by the columns they touch (at depth 0).
	type pendingConj struct {
		expr     Expr
		maxPos   int // highest depth-0 position referenced
		applied  bool
		compiled compiledExpr
	}
	var pending []pendingConj
	for _, cj := range conjuncts(sel.Where) {
		var cols []*ColumnRef
		columnsOf(cj, &cols)
		maxPos := -1
		for _, cr := range cols {
			depth, pos, _, err := scope.resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, nil, err
			}
			if depth == 0 && pos > maxPos {
				maxPos = pos
			}
		}
		if _, isExists := cj.(*ExistsOp); isExists {
			// EXISTS conjuncts apply after all tables are joined.
			maxPos = width - 1
		}
		ce, err := comp.compile(cj)
		if err != nil {
			return nil, nil, err
		}
		pending = append(pending, pendingConj{expr: cj, maxPos: maxPos, compiled: ce})
	}

	// equiKey inspects a not-yet-applied equality conjunct and reports
	// whether it joins the already-joined prefix [0, joinedWidth) with the
	// table spanning [lo, hi): returns the prefix-side and new-side key
	// expressions.
	equiKey := func(cj Expr, joinedWidth, lo, hi int) (outerE, innerE Expr, ok bool) {
		b, isBin := cj.(*BinaryOp)
		if !isBin || b.Op != "=" {
			return nil, nil, false
		}
		side := func(e Expr) (allPrefix, allNew bool) {
			var cols []*ColumnRef
			columnsOf(e, &cols)
			if len(cols) == 0 {
				return false, false
			}
			allPrefix, allNew = true, true
			for _, cr := range cols {
				depth, pos, _, err := scope.resolve(cr.Table, cr.Name)
				if err != nil || depth != 0 {
					return false, false
				}
				if pos >= joinedWidth {
					allPrefix = false
				}
				if pos < lo || pos >= hi {
					allNew = false
				}
			}
			return allPrefix, allNew
		}
		lPrefix, lNew := side(b.L)
		rPrefix, rNew := side(b.R)
		switch {
		case lPrefix && rNew:
			return b.L, b.R, true
		case rPrefix && lNew:
			return b.R, b.L, true
		default:
			return nil, nil, false
		}
	}

	// Start with the first table.
	first := sources[0]
	var rows [][]relation.Value
	// passes evaluates the not-yet-applied conjuncts resolvable within
	// uptoWidth against row (which may be a reusable scratch buffer — no
	// allocation happens here).
	passes := func(row []relation.Value, uptoWidth int) bool {
		e := &env{row: row, outer: outerEnv}
		for i := range pending {
			p := &pending[i]
			if p.applied || p.maxPos >= uptoWidth {
				continue
			}
			if !truthy(p.compiled.eval(e)) {
				return false
			}
		}
		return true
	}
	markApplied := func(uptoWidth int) {
		for i := range pending {
			if !pending[i].applied && pending[i].maxPos < uptoWidth {
				pending[i].applied = true
			}
		}
	}

	firstWidth := first.rel.Schema().Arity()
	allEarly := len(sources) == 1
	for i := range pending {
		if pending[i].maxPos >= firstWidth {
			allEarly = false
		}
	}
	scratch := make([]relation.Value, width)
	for _, t := range first.rel.Tuples() {
		copy(scratch[:firstWidth], t)
		if !passes(scratch, firstWidth) {
			continue
		}
		row := make([]relation.Value, width)
		copy(row[:firstWidth], t)
		rows = append(rows, row)
		if firstOnly && allEarly {
			break
		}
	}
	markApplied(firstWidth)

	joinedWidth := firstWidth
	for k := 1; k < len(sources); k++ {
		src := sources[k]
		lo, hi := src.offset, src.offset+src.rel.Schema().Arity()

		// Pre-filter the new table with conjuncts local to it.
		var newRows []relation.Tuple
		localEnvRow := make([]relation.Value, width)
		for _, t := range src.rel.Tuples() {
			copy(localEnvRow[lo:hi], t)
			e := &env{row: localEnvRow, outer: outerEnv}
			ok := true
			for i := range pending {
				p := &pending[i]
				if p.applied {
					continue
				}
				if localConjunct(p.expr, scope, lo, hi) {
					if !truthy(p.compiled.eval(e)) {
						ok = false
						break
					}
				}
			}
			if ok {
				newRows = append(newRows, t)
			}
		}
		for i := range pending {
			if !pending[i].applied && localConjunct(pending[i].expr, scope, lo, hi) {
				pending[i].applied = true
			}
		}

		// Collect hash-joinable equi conjuncts.
		var outKeys, inKeys []compiledExpr
		for i := range pending {
			p := &pending[i]
			if p.applied {
				continue
			}
			if oe, ie, ok := equiKey(p.expr, joinedWidth, lo, hi); ok {
				oc, err := comp.compile(oe)
				if err != nil {
					return nil, nil, err
				}
				ic, err := comp.compile(ie)
				if err != nil {
					return nil, nil, err
				}
				outKeys = append(outKeys, oc)
				inKeys = append(inKeys, ic)
				p.applied = true
			}
		}

		var joined [][]relation.Value
		if len(outKeys) > 0 {
			// Hash join: build on the (pre-filtered) new table.
			build := make(map[string][]relation.Tuple, len(newRows))
			keyBuf := make([]byte, 0, 64)
			for _, t := range newRows {
				copy(localEnvRow[lo:hi], t)
				e := &env{row: localEnvRow, outer: outerEnv}
				keyBuf = keyBuf[:0]
				null := false
				for _, ic := range inKeys {
					v := ic.eval(e)
					if v.IsNull() {
						null = true
						break
					}
					keyBuf = v.Encode(keyBuf)
				}
				if null {
					continue // NULL join keys never match
				}
				build[string(keyBuf)] = append(build[string(keyBuf)], t)
			}
			for _, row := range rows {
				e := &env{row: row, outer: outerEnv}
				keyBuf = keyBuf[:0]
				null := false
				for _, oc := range outKeys {
					v := oc.eval(e)
					if v.IsNull() {
						null = true
						break
					}
					keyBuf = v.Encode(keyBuf)
				}
				if null {
					continue
				}
				for _, t := range build[string(keyBuf)] {
					copy(scratch, row[:joinedWidth])
					copy(scratch[lo:hi], t)
					if !passes(scratch, hi) {
						continue
					}
					nr := make([]relation.Value, width)
					copy(nr, scratch[:hi])
					joined = append(joined, nr)
				}
			}
		} else {
			// Nested-loop join: evaluate the join predicate on a scratch
			// buffer and materialize only surviving pairs.
			for _, row := range rows {
				copy(scratch, row[:joinedWidth])
				for _, t := range newRows {
					copy(scratch[lo:hi], t)
					if !passes(scratch, hi) {
						continue
					}
					nr := make([]relation.Value, width)
					copy(nr, scratch[:hi])
					joined = append(joined, nr)
				}
			}
		}
		rows = joined
		joinedWidth = hi
		markApplied(joinedWidth)
	}

	// Apply any remaining conjuncts (e.g. EXISTS) and honor firstOnly.
	var out [][]relation.Value
	for _, row := range rows {
		e := &env{row: row, outer: outerEnv}
		ok := true
		for i := range pending {
			p := &pending[i]
			if p.applied {
				continue
			}
			if !truthy(p.compiled.eval(e)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
			if firstOnly {
				return out, scope, nil
			}
		}
	}
	return out, scope, nil
}

// localConjunct reports whether all depth-0 columns of cj fall within
// [lo, hi) — i.e. the conjunct only constrains the new table (correlated
// outer references are allowed; they are bound at evaluation time).
func localConjunct(cj Expr, scope *scopeInfo, lo, hi int) bool {
	if _, isExists := cj.(*ExistsOp); isExists {
		return false
	}
	var cols []*ColumnRef
	columnsOf(cj, &cols)
	any := false
	for _, cr := range cols {
		depth, pos, _, err := scope.resolve(cr.Table, cr.Name)
		if err != nil {
			return false
		}
		if depth != 0 {
			continue
		}
		if pos < lo || pos >= hi {
			return false
		}
		any = true
	}
	return any
}

// compileExists compiles a [NOT] EXISTS subquery into a probe function.
// When every correlated conjunct is an equality between a subquery-local
// expression and an outer expression, the subquery is decorrelated into a
// hash semi-join: the inner side is materialized once and probed per
// outer row. Otherwise the subquery re-executes per outer row.
func (db *DB) compileExists(n *ExistsOp, outer *scopeInfo) (func(*env) relation.Value, error) {
	sub := n.Sub
	// Build the subquery scope to analyze correlation.
	subScope := &scopeInfo{parent: outer}
	for _, ref := range sub.From {
		rel, ok := db.tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("minidb: unknown table %q", ref.Table)
		}
		for j := 0; j < rel.Schema().Arity(); j++ {
			a := rel.Schema().Attr(j)
			subScope.cols = append(subScope.cols, scopeCol{table: ref.Alias, name: a.Name, kind: a.Kind})
		}
	}

	classify := func(e Expr) (local, correlated bool, err error) {
		var cols []*ColumnRef
		columnsOf(e, &cols)
		local, correlated = false, false
		for _, cr := range cols {
			depth, _, _, rerr := subScope.resolve(cr.Table, cr.Name)
			if rerr != nil {
				return false, false, rerr
			}
			if depth == 0 {
				local = true
			} else {
				correlated = true
			}
		}
		return local, correlated, nil
	}

	var innerConjs []Expr       // uncorrelated, stay in the subquery
	var eqInner, eqOuter []Expr // decorrelated equality pairs
	decorrelatable := sub.GroupBy == nil && sub.Having == nil
	for _, cj := range conjuncts(sub.Where) {
		local, correlated, err := classify(cj)
		if err != nil {
			return nil, err
		}
		if !correlated {
			innerConjs = append(innerConjs, cj)
			continue
		}
		b, isBin := cj.(*BinaryOp)
		if !isBin || b.Op != "=" {
			decorrelatable = false
			break
		}
		lLocal, lCorr, err := classify(b.L)
		if err != nil {
			return nil, err
		}
		rLocal, rCorr, err := classify(b.R)
		if err != nil {
			return nil, err
		}
		switch {
		case lLocal && !lCorr && !rLocal && rCorr:
			eqInner = append(eqInner, b.L)
			eqOuter = append(eqOuter, b.R)
		case rLocal && !rCorr && !lLocal && lCorr:
			eqInner = append(eqInner, b.R)
			eqOuter = append(eqOuter, b.L)
		default:
			decorrelatable = false
		}
		if !decorrelatable {
			break
		}
		_ = local
	}

	if decorrelatable && len(eqInner) > 0 {
		// Materialize the inner side once: inner FROM with uncorrelated
		// conjuncts, keyed by the inner equality expressions.
		innerSel := &Select{From: sub.From, Where: andAll(innerConjs), Limit: -1, Star: true}
		innerRows, innerScope, err := db.joinAndFilter(innerSel, nil, nil, false)
		if err != nil {
			return nil, err
		}
		innerComp := &compiler{scope: innerScope}
		keys := make(map[string]bool, len(innerRows))
		keyExprs := make([]compiledExpr, len(eqInner))
		for i, e := range eqInner {
			ce, err := innerComp.compile(e)
			if err != nil {
				return nil, err
			}
			keyExprs[i] = ce
		}
		buf := make([]byte, 0, 64)
		for _, row := range innerRows {
			e := &env{row: row}
			buf = buf[:0]
			null := false
			for _, ke := range keyExprs {
				v := ke.eval(e)
				if v.IsNull() {
					null = true
					break
				}
				buf = v.Encode(buf)
			}
			if !null {
				keys[string(buf)] = true
			}
		}
		// Outer probe expressions compile in the OUTER scope.
		outerComp := &compiler{scope: outer}
		outerComp.exists = func(n *ExistsOp, s *scopeInfo) (func(*env) relation.Value, error) {
			return db.compileExists(n, s)
		}
		probeExprs := make([]compiledExpr, len(eqOuter))
		for i, e := range eqOuter {
			ce, err := outerComp.compile(e)
			if err != nil {
				return nil, err
			}
			probeExprs[i] = ce
		}
		neg := n.Neg
		return func(e *env) relation.Value {
			buf := make([]byte, 0, 64)
			for _, pe := range probeExprs {
				v := pe.eval(e)
				if v.IsNull() {
					return boolVal(neg) // NULL key matches nothing
				}
				buf = v.Encode(buf)
			}
			return boolVal(keys[string(buf)] != neg)
		}, nil
	}

	// Fallback: re-execute the subquery per outer row with the outer
	// environment chained for correlated references.
	neg := n.Neg
	return func(e *env) relation.Value {
		rows, _, err := db.joinAndFilter(sub, outer, e, true)
		if err != nil {
			// Surface the error as "no match"; queries are validated by
			// tests before benchmark use. (Expression closures cannot
			// return errors without complicating every call site.)
			return boolVal(neg)
		}
		return boolVal((len(rows) > 0) != neg)
	}, nil
}

func andAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &LogicalOp{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// project evaluates the select list (with grouping and aggregation),
// DISTINCT, ORDER BY and LIMIT, producing the result relation.
func (db *DB) project(sel *Select, rows [][]relation.Value, scope *scopeInfo) (*relation.Relation, error) {
	comp := &compiler{scope: scope}
	comp.exists = func(n *ExistsOp, s *scopeInfo) (func(*env) relation.Value, error) {
		return db.compileExists(n, s)
	}

	// Expand SELECT *.
	items := sel.Items
	if sel.Star {
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("minidb: SELECT * with GROUP BY is not supported")
		}
		items = nil
		for _, c := range scope.cols {
			items = append(items, SelectItem{Expr: &ColumnRef{Table: c.table, Name: c.name}})
		}
	}

	// Collect aggregates from the select list and HAVING.
	var aggs []*Aggregate
	for _, it := range items {
		aggregatesOf(it.Expr, &aggs)
	}
	if sel.Having != nil {
		aggregatesOf(sel.Having, &aggs)
	}
	grouped := len(sel.GroupBy) > 0 || len(aggs) > 0

	// Output schema.
	names := make([]string, len(items))
	used := map[string]bool{}
	for i, it := range items {
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColumnRef); ok {
				name = cr.Name
			} else if ag, ok := it.Expr.(*Aggregate); ok {
				name = ag.Fn
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		base := name
		for n := 2; used[name]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[name] = true
		names[i] = name
	}

	// Decide where ORDER BY keys resolve: output columns (sort after
	// projection) or source columns (sort the combined rows first).
	effective := *sel
	if len(sel.OrderBy) > 0 {
		allOutput := true
		for _, o := range sel.OrderBy {
			if o.Col.Table != "" {
				allOutput = false
				break
			}
			if !used[o.Col.Name] {
				allOutput = false
				break
			}
		}
		if !allOutput {
			if grouped {
				return nil, fmt.Errorf("minidb: ORDER BY with GROUP BY must reference output columns")
			}
			type orderKey struct {
				ce   compiledExpr
				desc bool
			}
			keys := make([]orderKey, len(sel.OrderBy))
			for i, o := range sel.OrderBy {
				ce, err := comp.compile(o.Col)
				if err != nil {
					return nil, err
				}
				keys[i] = orderKey{ce, o.Desc}
			}
			sort.SliceStable(rows, func(a, b int) bool {
				ea, eb := &env{row: rows[a]}, &env{row: rows[b]}
				for _, k := range keys {
					c := k.ce.eval(ea).Compare(k.ce.eval(eb))
					if c != 0 {
						if k.desc {
							return c > 0
						}
						return c < 0
					}
				}
				return false
			})
			effective.OrderBy = nil
		}
	}
	sel = &effective

	if !grouped {
		comps := make([]compiledExpr, len(items))
		attrs := make([]relation.Attribute, len(items))
		for i, it := range items {
			ce, err := comp.compile(it.Expr)
			if err != nil {
				return nil, err
			}
			comps[i] = ce
			attrs[i] = relation.Attribute{Name: names[i], Kind: ce.kind}
		}
		schema, err := relation.NewSchema("result", attrs...)
		if err != nil {
			return nil, err
		}
		out := relation.New(schema)
		for _, row := range rows {
			e := &env{row: row}
			t := make(relation.Tuple, len(comps))
			for i, ce := range comps {
				t[i] = ce.eval(e)
			}
			if _, err := out.Insert(t); err != nil {
				return nil, err
			}
		}
		return finishSelect(sel, out)
	}

	// Grouped path. Assign each aggregate node an index and compile the
	// select/having expressions with aggregate interception.
	aggIndex := make(map[*Aggregate]int)
	for _, a := range aggs {
		if _, ok := aggIndex[a]; !ok {
			aggIndex[a] = len(aggIndex)
		}
	}
	var curAggs []relation.Value
	comp.aggIndex = aggIndex
	comp.curAggs = &curAggs

	groupPos := make([]int, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		depth, pos, _, err := scope.resolve(g.Table, g.Name)
		if err != nil {
			return nil, err
		}
		if depth != 0 {
			return nil, fmt.Errorf("minidb: GROUP BY column %s not in FROM scope", g.Name)
		}
		groupPos[i] = pos
	}

	comps := make([]compiledExpr, len(items))
	attrs := make([]relation.Attribute, len(items))
	for i, it := range items {
		ce, err := comp.compile(it.Expr)
		if err != nil {
			return nil, err
		}
		comps[i] = ce
		attrs[i] = relation.Attribute{Name: names[i], Kind: ce.kind}
	}
	var havingC compiledExpr
	if sel.Having != nil {
		ce, err := comp.compile(sel.Having)
		if err != nil {
			return nil, err
		}
		havingC = ce
	}

	// Compile aggregate argument expressions (no aggregates inside).
	argComp := &compiler{scope: scope}
	type aggSpec struct {
		node *Aggregate
		arg  *compiledExpr // nil for COUNT(*)
	}
	specs := make([]aggSpec, len(aggIndex))
	for node, idx := range aggIndex {
		spec := aggSpec{node: node}
		if node.Arg != nil {
			ce, err := argComp.compile(node.Arg)
			if err != nil {
				return nil, err
			}
			spec.arg = &ce
		}
		specs[idx] = spec
	}

	// Partition rows into groups.
	groups := make(map[string][][]relation.Value)
	var order []string
	for _, row := range rows {
		buf := make([]byte, 0, 32)
		for _, pos := range groupPos {
			buf = row[pos].Encode(buf)
		}
		k := string(buf)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	if len(sel.GroupBy) == 0 && len(rows) > 0 {
		// Implicit single group.
		groups = map[string][][]relation.Value{"": rows}
		order = []string{""}
	}
	if len(sel.GroupBy) == 0 && len(rows) == 0 {
		// Aggregates over an empty input: one group with empty rows (SQL
		// returns a single row, e.g. COUNT(*) = 0).
		groups = map[string][][]relation.Value{"": nil}
		order = []string{""}
	}

	schema, err := relation.NewSchema("result", attrs...)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, k := range order {
		grows := groups[k]
		// Compute aggregates for this group.
		curAggs = curAggs[:0]
		for _, spec := range specs {
			curAggs = append(curAggs, computeAggregate(spec.node, spec.arg, grows))
		}
		// Representative row for group-by column references.
		var rep []relation.Value
		if len(grows) > 0 {
			rep = grows[0]
		} else {
			rep = make([]relation.Value, len(scope.cols))
		}
		e := &env{row: rep}
		if havingC.eval != nil && !truthy(havingC.eval(e)) {
			continue
		}
		t := make(relation.Tuple, len(comps))
		for i, ce := range comps {
			t[i] = ce.eval(e)
		}
		if _, err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return finishSelect(sel, out)
}

func computeAggregate(node *Aggregate, arg *compiledExpr, rows [][]relation.Value) relation.Value {
	if node.Fn == "COUNT" && node.Arg == nil {
		return relation.Int(int64(len(rows)))
	}
	var vals []relation.Value
	seen := map[string]bool{}
	for _, row := range rows {
		v := arg.eval(&env{row: row})
		if v.IsNull() {
			continue
		}
		if node.Distinct {
			k := string(v.Encode(nil))
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch node.Fn {
	case "COUNT":
		return relation.Int(int64(len(vals)))
	case "SUM", "AVG":
		if len(vals) == 0 {
			return relation.Null()
		}
		sum := 0.0
		for _, v := range vals {
			sum += v.FloatVal()
		}
		if node.Fn == "AVG" {
			return relation.Float(sum / float64(len(vals)))
		}
		return relation.Float(sum)
	case "MIN", "MAX":
		if len(vals) == 0 {
			return relation.Null()
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := v.Compare(best)
			if (node.Fn == "MIN" && c < 0) || (node.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best
	default:
		return relation.Null()
	}
}

// finishSelect applies DISTINCT, ORDER BY and LIMIT to the projected
// result.
func finishSelect(sel *Select, r *relation.Relation) (*relation.Relation, error) {
	out := r
	if sel.Distinct {
		dedup := relation.New(r.Schema())
		seen := map[string]bool{}
		for _, t := range r.Tuples() {
			k := t.FullKey()
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup.MustInsert(t)
		}
		out = dedup
	}
	if len(sel.OrderBy) > 0 {
		idxs := make([]int, len(sel.OrderBy))
		descs := make([]bool, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			if o.Col.Table != "" {
				return nil, fmt.Errorf("minidb: ORDER BY must reference output columns, got %s.%s", o.Col.Table, o.Col.Name)
			}
			pos, ok := out.Schema().Index(o.Col.Name)
			if !ok {
				return nil, fmt.Errorf("minidb: ORDER BY column %q not in output", o.Col.Name)
			}
			idxs[i] = pos
			descs[i] = o.Desc
		}
		out.SortStable(func(a, b relation.Tuple) bool {
			for i, pos := range idxs {
				c := a[pos].Compare(b[pos])
				if c != 0 {
					if descs[i] {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if sel.Limit >= 0 && out.Len() > sel.Limit {
		lim := relation.New(out.Schema())
		for i := 0; i < sel.Limit; i++ {
			lim.MustInsert(out.Tuple(i))
		}
		out = lim
	}
	return out, nil
}
