package minidb

import (
	"fmt"
	"strconv"
	"strings"

	"semandaq/internal/relation"
)

// ParseStatement parses one SQL statement.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, src: src}
	stmt, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("minidb: parsing %q: %w", truncate(src, 80), err)
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("minidb: parsing %q: trailing input at %q", truncate(src, 80), p.cur().text)
	}
	return stmt, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

type sqlParser struct {
	toks []token
	i    int
	src  string
}

func (p *sqlParser) cur() token { return p.toks[p.i] }

func (p *sqlParser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *sqlParser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("at offset %d: expected %s, found %q", t.pos, want, t.text)
	}
	p.i++
	return t, nil
}

func (p *sqlParser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tokKeyword, "CREATE"):
		return p.createTable()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "UPDATE"):
		return p.update()
	case p.accept(tokKeyword, "DELETE"):
		return p.delete()
	default:
		return nil, fmt.Errorf("at offset %d: expected SELECT, CREATE, INSERT, UPDATE or DELETE", p.cur().pos)
	}
}

func (p *sqlParser) createTable() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []relation.Attribute
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		kindTok := p.cur()
		if kindTok.kind != tokKeyword || (kindTok.text != "STRING" && kindTok.text != "INT" && kindTok.text != "FLOAT") {
			return nil, fmt.Errorf("at offset %d: expected column kind, found %q", kindTok.pos, kindTok.text)
		}
		p.i++
		kind, err := relation.ParseKind(kindTok.text)
		if err != nil {
			return nil, err
		}
		cols = append(cols, relation.Attribute{Name: col.text, Kind: kind})
		if p.accept(tokSymbol, ",") {
			continue
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name.text, Columns: cols}, nil
	}
}

func (p *sqlParser) insert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			if _, ok := e.(*Literal); !ok {
				return nil, fmt.Errorf("INSERT values must be literals")
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		return ins, nil
	}
}

func (p *sqlParser) update() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: name.text}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.primary()
		if err != nil {
			return nil, err
		}
		if _, ok := val.(*Literal); !ok {
			return nil, fmt.Errorf("UPDATE values must be literals")
		}
		up.Cols = append(up.Cols, col.text)
		up.Vals = append(up.Vals, val)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *sqlParser) delete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name.text}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *sqlParser) selectStmt() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	if p.accept(tokSymbol, "*") {
		sel.Star = true
	} else {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = a.text
			} else if p.at(tokIdent, "") {
				item.Alias = p.cur().text
				p.i++
			}
			sel.Items = append(sel.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name.text, Alias: name.text}
		if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.i++
		}
		sel.From = append(sel.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, fmt.Errorf("bad LIMIT %q", n.text)
		}
		sel.Limit = lim
	}
	return sel, nil
}

func (p *sqlParser) columnRef() (*ColumnRef, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokSymbol, ".") {
		second, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: first.text, Name: second.text}, nil
	}
	return &ColumnRef{Name: first.text}, nil
}

// expression implements precedence OR < AND < NOT < comparison < primary.
func (p *sqlParser) expression() (Expr, error) { return p.orExpr() }

func (p *sqlParser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicalOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &LogicalOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		if p.at(tokKeyword, "EXISTS") {
			e, err := p.existsExpr()
			if err != nil {
				return nil, err
			}
			e.(*ExistsOp).Neg = true
			return e, nil
		}
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotOp{E: e}, nil
	}
	if p.at(tokKeyword, "EXISTS") {
		return p.existsExpr()
	}
	return p.comparison()
}

func (p *sqlParser) existsExpr() (Expr, error) {
	if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	sub, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &ExistsOp{Sub: sub}, nil
}

func (p *sqlParser) comparison() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Neg: neg}, nil
	}
	if p.at(tokKeyword, "IN") || (p.at(tokKeyword, "NOT") && p.toks[p.i+1].kind == tokKeyword && p.toks[p.i+1].text == "IN") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "IN"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InList{E: l, Neg: neg}
		for {
			v, err := p.primary()
			if err != nil {
				return nil, err
			}
			if _, ok := v.(*Literal); !ok {
				return nil, fmt.Errorf("IN list elements must be literals")
			}
			in.Vals = append(in.Vals, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokSymbol, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && isAggregate(t.text):
		p.i++
		return p.aggregate(t.text)
	case t.kind == tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", t.text)
			}
			return &Literal{Val: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return &Literal{Val: relation.Int(n)}, nil
	case t.kind == tokString:
		p.i++
		return &Literal{Val: relation.String(t.text)}, nil
	case p.accept(tokKeyword, "NULL"):
		return &Literal{Val: relation.Null()}, nil
	case t.kind == tokIdent:
		return p.columnRef()
	default:
		return nil, fmt.Errorf("at offset %d: unexpected token %q", t.pos, t.text)
	}
}

func isAggregate(kw string) bool {
	switch kw {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func (p *sqlParser) aggregate(fn string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	agg := &Aggregate{Fn: fn}
	if fn == "COUNT" && p.accept(tokSymbol, "*") {
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return agg, nil
	}
	agg.Distinct = p.accept(tokKeyword, "DISTINCT")
	arg, err := p.expression()
	if err != nil {
		return nil, err
	}
	agg.Arg = arg
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return agg, nil
}
