// Package minidb is a small in-memory SQL engine over the relation
// substrate. It exists because the violation-detection technique of
// Fan et al. (TODS 2008) — which §5 of the tutorial demonstrates through
// the Semandaq system — works by translating a CFD set into a pair of SQL
// queries (Q_C for constant violations, Q_V for variable violations) and
// running them on an RDBMS. The repository is offline and stdlib-only, so
// minidb plays the role of the commercial DBMS of the paper.
//
// Supported SQL subset:
//
//	CREATE TABLE name (col KIND, ...)
//	INSERT INTO name VALUES (lit, ...)[, (...)]
//	SELECT [DISTINCT] exprs FROM t1 [a1], t2 [a2], ...
//	    [WHERE expr] [GROUP BY cols] [HAVING expr]
//	    [ORDER BY cols [DESC]] [LIMIT n]
//
// with AND/OR/NOT, comparison operators, IS [NOT] NULL, [NOT] EXISTS
// (correlated subqueries), and the aggregates COUNT(*), COUNT(x),
// COUNT(DISTINCT x), SUM, AVG, MIN and MAX. The executor uses hash joins
// for equi-join conjuncts, decorrelates EXISTS subqueries with
// equality-only correlation into hash semi-joins, and falls back to
// nested loops otherwise — enough machinery for the paper's detection
// queries to run at the data sizes of the experiments.
package minidb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * . = < > <= >= <> !=
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IS": true, "AS": true, "DISTINCT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "EXISTS": true, "ASC": true, "DESC": true,
	"IN": true, "UPDATE": true, "SET": true, "DELETE": true,
	"STRING": true, "INT": true, "FLOAT": true, "TRUE": true, "FALSE": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case isLetter(c):
			start := l.pos
			for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			if keywords[strings.ToUpper(word)] {
				l.tokens = append(l.tokens, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				l.tokens = append(l.tokens, token{tokIdent, word, start})
			}
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) && l.numberContext()):
			start := l.pos
			if c == '-' {
				l.pos++
			}
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos])
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("minidb: unterminated string at offset %d", l.pos)
				}
				if l.src[l.pos] == '\'' {
					// '' escapes a quote.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.emit(tokString, sb.String())
		case c == '<':
			if l.peekAt(1) == '=' {
				l.emit2(tokSymbol, "<=")
			} else if l.peekAt(1) == '>' {
				l.emit2(tokSymbol, "<>")
			} else {
				l.emit1(tokSymbol, "<")
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.emit2(tokSymbol, ">=")
			} else {
				l.emit1(tokSymbol, ">")
			}
		case c == '!':
			if l.peekAt(1) == '=' {
				l.emit2(tokSymbol, "!=")
			} else {
				return nil, fmt.Errorf("minidb: unexpected '!' at offset %d", l.pos)
			}
		case strings.IndexByte("(),*.=-+", c) >= 0:
			l.emit1(tokSymbol, string(c))
		default:
			return nil, fmt.Errorf("minidb: unexpected character %q at offset %d", string(c), l.pos)
		}
	}
}

// numberContext reports whether a '-' at the current position starts a
// negative literal (previous token is not an operand).
func (l *lexer) numberContext() bool {
	if len(l.tokens) == 0 {
		return true
	}
	prev := l.tokens[len(l.tokens)-1]
	switch prev.kind {
	case tokIdent, tokNumber, tokString:
		return false
	case tokSymbol:
		return prev.text != ")"
	default:
		return true
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind, text, l.pos})
}

func (l *lexer) emit1(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind, text, l.pos})
	l.pos++
}

func (l *lexer) emit2(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind, text, l.pos})
	l.pos += 2
}

func isLetter(c byte) bool {
	return c == '_' || c == '#' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }
