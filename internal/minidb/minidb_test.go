package minidb

import (
	"strings"
	"testing"

	"semandaq/internal/relation"
)

// testDB builds a small database with customers and orders.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE cust (id INT, name STRING, city STRING, age INT)")
	mustExec("INSERT INTO cust VALUES (1, 'mike', 'edi', 30), (2, 'rick', 'edi', 40), (3, 'joe', 'mh', 25), (4, 'kim', 'nyc', 35)")
	mustExec("CREATE TABLE orders (oid INT, cid INT, amount FLOAT)")
	mustExec("INSERT INTO orders VALUES (100, 1, 9.5), (101, 1, 20.0), (102, 3, 5.0), (103, 9, 1.0)")
	return db
}

func mustQuery(t *testing.T, db *DB, sql string) *relation.Relation {
	t.Helper()
	r, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT * FROM cust")
	if r.Len() != 4 {
		t.Fatalf("rows = %d, want 4", r.Len())
	}
	if r.Schema().Arity() != 4 {
		t.Fatalf("arity = %d", r.Schema().Arity())
	}
}

func TestWhereFilter(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM cust WHERE city = 'edi'")
	if r.Len() != 2 {
		t.Fatalf("rows = %d, want 2", r.Len())
	}
	r = mustQuery(t, db, "SELECT name FROM cust WHERE age > 30 AND city <> 'nyc'")
	if r.Len() != 1 || r.Tuple(0)[0].Str() != "rick" {
		t.Fatalf("got %v", r.Tuples())
	}
	r = mustQuery(t, db, "SELECT name FROM cust WHERE city = 'edi' OR city = 'mh'")
	if r.Len() != 3 {
		t.Fatalf("OR filter rows = %d, want 3", r.Len())
	}
	r = mustQuery(t, db, "SELECT name FROM cust WHERE NOT (city = 'edi')")
	if r.Len() != 2 {
		t.Fatalf("NOT filter rows = %d, want 2", r.Len())
	}
}

func TestComparisonOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM cust WHERE age >= 35", 2},
		{"SELECT id FROM cust WHERE age <= 25", 1},
		{"SELECT id FROM cust WHERE age < 30", 1},
		{"SELECT id FROM cust WHERE age <> 30", 3},
		{"SELECT id FROM cust WHERE age != 30", 3},
		{"SELECT id FROM cust WHERE name = 'mike'", 1},
	}
	for _, c := range cases {
		if got := mustQuery(t, db, c.sql).Len(); got != c.want {
			t.Errorf("%s: rows = %d, want %d", c.sql, got, c.want)
		}
	}
}

func TestProjectionAliases(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name AS who, age FROM cust WHERE id = 1")
	if r.Schema().Attr(0).Name != "who" || r.Schema().Attr(1).Name != "age" {
		t.Fatalf("schema = %v", r.Schema())
	}
	if r.Tuple(0)[0].Str() != "mike" || r.Tuple(0)[1].IntVal() != 30 {
		t.Fatalf("row = %v", r.Tuple(0))
	}
}

func TestJoinHash(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT c.name, o.amount FROM cust c, orders o WHERE c.id = o.cid")
	if r.Len() != 3 {
		t.Fatalf("join rows = %d, want 3 (order 103 has no customer)", r.Len())
	}
	// mike appears twice (orders 100, 101).
	names := map[string]int{}
	for _, tup := range r.Tuples() {
		names[tup[0].Str()]++
	}
	if names["mike"] != 2 || names["joe"] != 1 {
		t.Fatalf("names = %v", names)
	}
}

func TestJoinNestedLoopWithOR(t *testing.T) {
	db := testDB(t)
	// OR prevents hash join; falls back to nested loop.
	r := mustQuery(t, db, "SELECT c.name FROM cust c, orders o WHERE c.id = o.cid OR o.cid = 9")
	if r.Len() != 7 {
		// 3 matching + every cust × order 103 (4 rows) = 7.
		t.Fatalf("rows = %d, want 7", r.Len())
	}
}

func TestSelfJoin(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT a.name, b.name FROM cust a, cust b WHERE a.city = b.city AND a.id < b.id")
	if r.Len() != 1 {
		t.Fatalf("self-join rows = %d, want 1 (mike-rick)", r.Len())
	}
	if r.Tuple(0)[0].Str() != "mike" || r.Tuple(0)[1].Str() != "rick" {
		t.Fatalf("row = %v", r.Tuple(0))
	}
	// Output columns deduplicated.
	if r.Schema().Attr(0).Name == r.Schema().Attr(1).Name {
		t.Fatalf("output columns must be distinct: %v", r.Schema())
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*) AS n, SUM(age) AS total, MIN(age) AS lo, MAX(age) AS hi, AVG(age) AS mean FROM cust")
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	row := r.Tuple(0)
	if row[0].IntVal() != 4 || row[1].FloatVal() != 130 || row[2].IntVal() != 25 || row[3].IntVal() != 35+5 {
		// deliberate check below instead
	}
	if row[0].IntVal() != 4 {
		t.Errorf("COUNT = %v", row[0])
	}
	if row[1].FloatVal() != 130 {
		t.Errorf("SUM = %v", row[1])
	}
	if row[2].IntVal() != 25 {
		t.Errorf("MIN = %v", row[2])
	}
	if row[3].IntVal() != 40 {
		t.Errorf("MAX = %v", row[3])
	}
	if row[4].FloatVal() != 32.5 {
		t.Errorf("AVG = %v", row[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT city, COUNT(*) AS n FROM cust GROUP BY city HAVING COUNT(*) > 1")
	if r.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (only edi has 2)", r.Len())
	}
	if r.Tuple(0)[0].Str() != "edi" || r.Tuple(0)[1].IntVal() != 2 {
		t.Fatalf("row = %v", r.Tuple(0))
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT COUNT(DISTINCT city) AS c FROM cust")
	if r.Tuple(0)[0].IntVal() != 3 {
		t.Fatalf("COUNT(DISTINCT city) = %v", r.Tuple(0)[0])
	}
	// The shape used by the QV detection query: groups where a wildcard
	// RHS attribute takes more than one value.
	r = mustQuery(t, db, "SELECT city FROM cust GROUP BY city HAVING COUNT(DISTINCT name) > 1")
	if r.Len() != 1 || r.Tuple(0)[0].Str() != "edi" {
		t.Fatalf("rows = %v", r.Tuples())
	}
}

func TestDistinctOrderLimit(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT DISTINCT city FROM cust ORDER BY city")
	if r.Len() != 3 {
		t.Fatalf("distinct rows = %d", r.Len())
	}
	if r.Tuple(0)[0].Str() != "edi" || r.Tuple(2)[0].Str() != "nyc" {
		t.Fatalf("order = %v", r.Tuples())
	}
	r = mustQuery(t, db, "SELECT name FROM cust ORDER BY age DESC LIMIT 2")
	if r.Len() != 2 || r.Tuple(0)[0].Str() != "rick" || r.Tuple(1)[0].Str() != "kim" {
		t.Fatalf("rows = %v", r.Tuples())
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a STRING, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('x', 1), (NULL, 2), ('y', NULL)"); err != nil {
		t.Fatal(err)
	}
	// Comparisons with NULL are unknown: filtered out.
	r := mustQuery(t, db, "SELECT b FROM t WHERE a = 'x'")
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	r = mustQuery(t, db, "SELECT b FROM t WHERE a <> 'x'")
	if r.Len() != 1 { // only 'y'; NULL row is unknown
		t.Fatalf("<> with NULL: rows = %d, want 1", r.Len())
	}
	// NOT(unknown) is still unknown.
	r = mustQuery(t, db, "SELECT b FROM t WHERE NOT (a = 'x')")
	if r.Len() != 1 {
		t.Fatalf("NOT with NULL: rows = %d, want 1", r.Len())
	}
	r = mustQuery(t, db, "SELECT b FROM t WHERE a IS NULL")
	if r.Len() != 1 || r.Tuple(0)[0].IntVal() != 2 {
		t.Fatalf("IS NULL rows = %v", r.Tuples())
	}
	r = mustQuery(t, db, "SELECT a FROM t WHERE b IS NOT NULL ORDER BY a")
	if r.Len() != 2 {
		t.Fatalf("IS NOT NULL rows = %d", r.Len())
	}
	// COUNT(col) skips NULLs; COUNT(*) does not.
	r = mustQuery(t, db, "SELECT COUNT(*) AS all_rows, COUNT(a) AS non_null FROM t")
	if r.Tuple(0)[0].IntVal() != 3 || r.Tuple(0)[1].IntVal() != 2 {
		t.Fatalf("counts = %v", r.Tuple(0))
	}
}

func TestExistsCorrelatedDecorrelated(t *testing.T) {
	db := testDB(t)
	// Customers with at least one order: decorrelatable equality.
	r := mustQuery(t, db, "SELECT name FROM cust c WHERE EXISTS (SELECT oid FROM orders o WHERE o.cid = c.id)")
	if r.Len() != 2 {
		t.Fatalf("EXISTS rows = %d, want 2 (mike, joe)", r.Len())
	}
	// NOT EXISTS: the anti-join shape of CIND detection.
	r = mustQuery(t, db, "SELECT name FROM cust c WHERE NOT EXISTS (SELECT oid FROM orders o WHERE o.cid = c.id)")
	if r.Len() != 2 {
		t.Fatalf("NOT EXISTS rows = %d, want 2 (rick, kim)", r.Len())
	}
	// With an extra uncorrelated inner predicate.
	r = mustQuery(t, db, "SELECT name FROM cust c WHERE EXISTS (SELECT oid FROM orders o WHERE o.cid = c.id AND o.amount > 10)")
	if r.Len() != 1 || r.Tuple(0)[0].Str() != "mike" {
		t.Fatalf("EXISTS+pred rows = %v", r.Tuples())
	}
}

func TestExistsNonEquiFallback(t *testing.T) {
	db := testDB(t)
	// Correlated inequality: cannot decorrelate, uses per-row execution.
	r := mustQuery(t, db, "SELECT name FROM cust c WHERE EXISTS (SELECT oid FROM orders o WHERE o.cid < c.id)")
	// orders cids: 1,1,3,9. cid < id: id=2 (cid 1), id=3 (1), id=4 (1,3).
	if r.Len() != 3 {
		t.Fatalf("non-equi EXISTS rows = %d, want 3", r.Len())
	}
}

func TestParseErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"",
		"SELEC * FROM cust",
		"SELECT * FROM",
		"SELECT FROM cust",
		"SELECT * FROM cust WHERE",
		"SELECT * FROM cust GROUP",
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM cust",
		"SELECT c.nosuch FROM cust c",
		"SELECT * FROM cust LIMIT -1",
		"SELECT * FROM cust trailing junk",
		"INSERT INTO cust VALUES (1)",
		"INSERT INTO nosuch VALUES (1)",
		"CREATE TABLE cust (a STRING)",
		"SELECT * FROM cust c, cust c",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("SELECT id FROM cust a, cust b"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column should fail, got %v", err)
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('it''s')"); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "SELECT a FROM t WHERE a = 'it''s'")
	if r.Len() != 1 {
		t.Fatalf("escaped quote: rows = %d", r.Len())
	}
}

func TestRegisterExternalRelation(t *testing.T) {
	db := New()
	schema := relation.MustSchema("ext", relation.Attribute{Name: "A", Kind: relation.KindString})
	r := relation.New(schema)
	r.MustInsert(relation.Tuple{relation.String("v")})
	db.Register("ext", r)
	got := mustQuery(t, db, "SELECT A FROM ext")
	if got.Len() != 1 || got.Tuple(0)[0].Str() != "v" {
		t.Fatalf("registered table rows = %v", got.Tuples())
	}
	// Mutations to the backing relation are visible.
	r.MustInsert(relation.Tuple{relation.String("w")})
	got = mustQuery(t, db, "SELECT A FROM ext")
	if got.Len() != 2 {
		t.Fatalf("mutation not visible: rows = %d", got.Len())
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) AS n FROM t")
	if r.Len() != 1 || r.Tuple(0)[0].IntVal() != 0 {
		t.Fatalf("COUNT over empty = %v", r.Tuples())
	}
	r = mustQuery(t, db, "SELECT a, COUNT(*) AS n FROM t GROUP BY a")
	if r.Len() != 0 {
		t.Fatalf("GROUP BY over empty should return no rows, got %v", r.Tuples())
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT city, name FROM cust ORDER BY city, name DESC")
	// edi: rick, mike (name DESC); mh: joe; nyc: kim.
	want := [][2]string{{"edi", "rick"}, {"edi", "mike"}, {"mh", "joe"}, {"nyc", "kim"}}
	for i, w := range want {
		if r.Tuple(i)[0].Str() != w[0] || r.Tuple(i)[1].Str() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r.Tuple(i), w)
		}
	}
}
