package dc

import (
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/relation"
)

// splitShards range-partitions r into w contiguous shard relations via
// the exact-reproduction ingest path (InsertUnchecked), returning the
// shards and their global TID offsets.
func splitShards(r *relation.Relation, w int) ([]*relation.Relation, []int) {
	n := r.Len()
	size, rem := n/w, n%w
	shards := make([]*relation.Relation, w)
	offsets := make([]int, w)
	tid := 0
	for i := 0; i < w; i++ {
		hi := tid + size
		if i < rem {
			hi++
		}
		offsets[i] = tid
		s := relation.New(r.Schema())
		for ; tid < hi; tid++ {
			s.InsertUnchecked(r.Tuple(tid).Clone())
		}
		shards[i] = s
	}
	return shards, offsets
}

// testFetcher reads boundary-group members straight off the shard
// relations — the in-process stand-in for the worker groups endpoint.
func testFetcher(d *DC, shards []*relation.Relation, offsets []int) BoundaryFetcher {
	eq := d.EqualityAttrs()
	ref := d.ReferencedAttrs()
	return func(keys []string) ([][]BoundaryTuples, error) {
		want := map[string]int{}
		for i, k := range keys {
			want[k] = i
		}
		out := make([][]BoundaryTuples, len(shards))
		for w, s := range shards {
			groups := make([]BoundaryTuples, len(keys))
			var key []byte
			for tid := 0; tid < s.Len(); tid++ {
				key = s.AppendGroupKey(key[:0], tid, eq)
				i, ok := want[string(key)]
				if !ok {
					continue
				}
				row := make(relation.Tuple, s.Schema().Arity())
				for _, a := range ref {
					row[a] = s.Get(tid, a)
				}
				groups[i].TIDs = append(groups[i].TIDs, tid+offsets[w])
				groups[i].Rows = append(groups[i].Rows, row)
			}
			out[w] = groups
		}
		return out, nil
	}
}

// TestDCScatterMatchesDetect: distributed detection of partitionable
// DCs (cross-side equality present, or single-tuple) merged with
// MergeShards equals single-process Detect on randomized relations with
// NULLs, for every shard count — with cross-shard pairs actually found.
func TestDCScatterMatchesDetect(t *testing.T) {
	schema := testSchema(t)
	set, err := ParseSet(
		"dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )\n"+
			"dc city: !( t.DEPT = u.DEPT & t.CITY != u.CITY )\n"+
			"dc tie: !( t.DEPT = u.DEPT & t.LEVEL = u.LEVEL & t.SAL != u.SAL )\n"+
			"dc cap: !( t.SAL > 8000 & t.DEPT = 'eng' )", schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 4; round++ {
		r := randomRelation(schema, rng, 60+rng.Intn(100))
		for _, d := range set.All() {
			want := Detect(r, d, Options{})
			for _, w := range []int{1, 2, 3} {
				shards, offsets := splitShards(r, w)
				results := make([]ShardResult, w)
				for i, s := range shards {
					results[i] = DetectShard(s, d, nil)
				}
				got, stats, err := MergeShards(d, offsets, results, testFetcher(d, shards, offsets), 0)
				if err != nil {
					t.Fatalf("%s/workers=%d: MergeShards: %v", d.Name(), w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/workers=%d: merged = %v, want %v", d.Name(), w, got, want)
				}
				if w >= 2 && d.TwoTuple() && stats.BoundaryGroups == 0 {
					t.Fatalf("%s/workers=%d: no boundary groups — cross-shard pairs unexercised", d.Name(), w)
				}
				// Coordinator-side truncation matches Options.MaxViolations.
				if len(want) > 1 {
					k := len(want) / 2
					trunc, _, err := MergeShards(d, offsets, results, testFetcher(d, shards, offsets), k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(trunc, want[:k]) {
						t.Fatalf("%s/workers=%d: truncated merge = %v, want %v", d.Name(), w, trunc, want[:k])
					}
				}
			}
		}
	}
}

// TestDCScatterRejectsUnpartitionable: a two-tuple DC without a
// cross-side equality predicate cannot be range-partitioned and must be
// rejected in multi-shard mode (and still work single-shard).
func TestDCScatterRejectsUnpartitionable(t *testing.T) {
	schema := testSchema(t)
	d, err := Parse("dc flat: !( t.LEVEL < u.LEVEL & t.SAL > u.SAL )", schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r := randomRelation(schema, rng, 50)
	want := Detect(r, d, Options{})

	shards, offsets := splitShards(r, 2)
	results := []ShardResult{DetectShard(shards[0], d, nil), DetectShard(shards[1], d, nil)}
	if _, _, err := MergeShards(d, offsets, results, nil, 0); err == nil {
		t.Fatal("MergeShards accepted an equality-free two-tuple DC across 2 shards")
	}

	one, off1 := splitShards(r, 1)
	got, _, err := MergeShards(d, off1, []ShardResult{DetectShard(one[0], d, nil)}, nil, 0)
	if err != nil {
		t.Fatalf("single-shard merge: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard merge = %v, want %v", got, want)
	}
}
