package dc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"semandaq/internal/relation"
)

func testSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.NewSchema("emp",
		relation.Attribute{Name: "DEPT", Kind: relation.KindString},
		relation.Attribute{Name: "LEVEL", Kind: relation.KindInt},
		relation.Attribute{Name: "SAL", Kind: relation.KindFloat},
		relation.Attribute{Name: "CITY", Kind: relation.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseRoundTrip(t *testing.T) {
	schema := testSchema(t)
	lines := []string{
		"dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )",
		"dc cap: !( t.SAL >= 90000 )",
		"dc city: !( t.DEPT = u.DEPT & t.CITY != u.CITY )",
		"dc floor: !( t.LEVEL <= 0 & t.CITY = 'berlin' )",
	}
	set, err := ParseSet(strings.Join(lines, "\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != len(lines) {
		t.Fatalf("parsed %d DCs, want %d", set.Len(), len(lines))
	}
	// String() must re-parse to the same rendering (fixpoint).
	for _, d := range set.All() {
		again, err := Parse(d.String(), schema)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", d.String(), err)
		}
		if again.String() != d.String() {
			t.Fatalf("round trip: %q became %q", d.String(), again.String())
		}
		if !reflect.DeepEqual(again.Preds(), d.Preds()) {
			t.Fatalf("round trip of %q changed predicates", d.String())
		}
	}
}

func TestParseSyntaxVariants(t *testing.T) {
	schema := testSchema(t)
	variants := []string{
		"dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL )",
		"pay: ¬( t.DEPT == u.DEPT ∧ t.LEVEL < u.LEVEL )",
		"pay: !(t.DEPT=u.DEPT&t.LEVEL<u.LEVEL)",
		"dc pay: !( u.DEPT = t.DEPT & u.LEVEL > t.LEVEL )", // flipped operands, same meaning
	}
	want := ""
	for i, v := range variants {
		d, err := Parse(v, schema)
		if err != nil {
			t.Fatalf("variant %d %q: %v", i, v, err)
		}
		vios := DetectNaive(tinyEmp(t, schema), d)
		if i == 0 {
			want = d.String()
			if len(vios) == 0 {
				t.Fatal("baseline variant should find violations on tinyEmp")
			}
			continue
		}
		got := DetectNaive(tinyEmp(t, schema), d)
		if !reflect.DeepEqual(got, vios) {
			t.Errorf("variant %d %q: violations differ from %q", i, v, want)
		}
	}

	// Constant on the left is normalized to the right with a flipped op.
	d, err := Parse("!( 18 > t.LEVEL )", schema)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.String(), "dc dc1: !( t.LEVEL < 18 )"; got != want {
		t.Fatalf("const-left normalization: got %q, want %q", got, want)
	}
}

func TestParseAndCompileErrors(t *testing.T) {
	schema := testSchema(t)
	bad := []string{
		"",                                  // no negation
		"dc x: ( t.LEVEL < 3 )",             // missing !
		"dc x: !( )",                        // empty conjunction
		"dc x: !( t.NOPE = 'a' )",           // unknown attribute
		"dc x: !( t.DEPT < u.DEPT )",        // order op on string column
		"dc x: !( t.LEVEL < 'abc' )",        // order op against string const
		"dc x: !( t.DEPT = 3 )",             // string column vs numeric const
		"dc x: !( 'a' = 'b' )",              // two constants
		"dc x: !( t.LEVEL << 3 )",           // bad operator
		"dc x: !( t.LEVEL < 3 extra )",      // trailing garbage
		"dc x: !( t.LEVEL = 3.5 )",          // fractional const on int column
		"dc x: !( u.LEVEL < 3 )",            // references only u
		"dc x: !( t.CITY = 'unterminated )", // unterminated string
	}
	for _, s := range bad {
		if _, err := Parse(s, schema); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	// Duplicate names are rejected at the set level.
	if _, err := ParseSet("dc a: !( t.LEVEL < 0 )\ndc a: !( t.LEVEL > 9 )", schema); err == nil {
		t.Error("ParseSet with duplicate names should fail")
	}
	// Comments and blank lines are skipped.
	set, err := ParseSet("# header\n\ndc a: !( t.LEVEL < 0 )\n", schema)
	if err != nil || set.Len() != 1 {
		t.Fatalf("comment handling: set=%v err=%v", set, err)
	}
}

// tinyEmp is a fixed relation with known pay-inversion violations.
func tinyEmp(t *testing.T, schema *relation.Schema) *relation.Relation {
	t.Helper()
	r := relation.New(schema)
	rows := []relation.Tuple{
		{relation.String("eng"), relation.Int(1), relation.Float(1000), relation.String("nyc")},
		{relation.String("eng"), relation.Int(2), relation.Float(900), relation.String("nyc")}, // inverted vs tid 0
		{relation.String("eng"), relation.Int(3), relation.Float(3000), relation.String("sfo")},
		{relation.String("ops"), relation.Int(1), relation.Float(800), relation.String("nyc")},
		{relation.String("ops"), relation.Int(2), relation.Float(700), relation.String("nyc")}, // inverted vs tid 3
	}
	for _, row := range rows {
		r.MustInsert(row)
	}
	return r
}

func TestDetectKnownViolations(t *testing.T) {
	schema := testSchema(t)
	r := tinyEmp(t, schema)
	d, err := Parse("dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )", schema)
	if err != nil {
		t.Fatal(err)
	}
	want := []Violation{{T: 0, U: 1}, {T: 3, U: 4}}
	for _, got := range [][]Violation{
		Detect(r, d, Options{}),
		Detect(r, d, Options{Cache: relation.NewIndexCache()}),
		DetectNaive(r, d),
	} {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("violations = %v, want %v", got, want)
		}
	}
	if got := Detect(r, d, Options{MaxViolations: 1}); !reflect.DeepEqual(got, want[:1]) {
		t.Fatalf("truncated violations = %v, want %v", got, want[:1])
	}
	if got := ViolatingTIDs(want); !reflect.DeepEqual(got, []int{0, 1, 3, 4}) {
		t.Fatalf("ViolatingTIDs = %v", got)
	}
}

func TestDetectSingleTuple(t *testing.T) {
	schema := testSchema(t)
	r := tinyEmp(t, schema)
	d, err := Parse("dc cap: !( t.SAL >= 2000 & t.CITY = 'sfo' )", schema)
	if err != nil {
		t.Fatal(err)
	}
	want := []Violation{{T: 2, U: 2}}
	if got := Detect(r, d, Options{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("Detect = %v, want %v", got, want)
	}
	if got := DetectNaive(r, d); !reflect.DeepEqual(got, want) {
		t.Fatalf("DetectNaive = %v, want %v", got, want)
	}
}

// randomRelation builds a relation over the test schema with NULLs,
// duplicates, and salary collisions to exercise run grouping.
func randomRelation(schema *relation.Schema, rng *rand.Rand, n int) *relation.Relation {
	r := relation.New(schema)
	depts := []string{"eng", "ops", "hr"}
	cities := []string{"nyc", "sfo", "ber"}
	for i := 0; i < n; i++ {
		tup := relation.Tuple{relation.Null(), relation.Null(), relation.Null(), relation.Null()}
		if rng.Intn(12) > 0 {
			tup[0] = relation.String(depts[rng.Intn(len(depts))])
		}
		if rng.Intn(12) > 0 {
			tup[1] = relation.Int(int64(rng.Intn(6)))
		}
		if rng.Intn(12) > 0 {
			tup[2] = relation.Float(float64(rng.Intn(40)) * 250)
		}
		if rng.Intn(12) > 0 {
			tup[3] = relation.String(cities[rng.Intn(len(cities))])
		}
		r.MustInsert(tup)
	}
	return r
}

// TestDetectMatchesNaiveRandomized is the byte-identity property from
// the package contract: on randomized relations (NULLs included) and a
// grammar-spanning set of DCs, Detect — cached and uncached — equals
// DetectNaive exactly.
func TestDetectMatchesNaiveRandomized(t *testing.T) {
	schema := testSchema(t)
	dcsText := strings.Join([]string{
		"dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )",
		"dc flat: !( t.LEVEL < u.LEVEL & t.SAL > u.SAL )", // no equality partition
		"dc city: !( t.DEPT = u.DEPT & t.CITY != u.CITY )",
		"dc tie: !( t.DEPT = u.DEPT & t.LEVEL = u.LEVEL & t.SAL != u.SAL )",
		"dc dom: !( t.SAL >= u.SAL & t.LEVEL <= u.LEVEL & t.CITY = 'sfo' )",
		"dc cross: !( t.LEVEL >= u.SAL )", // int against float column
		"dc cap: !( t.SAL > 8000 & t.DEPT = 'eng' )",
		"dc selfo: !( t.LEVEL < t.SAL & u.LEVEL > 2 )", // side preds on both variables
	}, "\n")
	set, err := ParseSet(dcsText, schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 8; round++ {
		r := randomRelation(schema, rng, 40+rng.Intn(120))
		cache := relation.NewIndexCache()
		for _, d := range set.All() {
			want := DetectNaive(r, d)
			if got := Detect(r, d, Options{Cache: cache}); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d, %s: Detect(cache) = %v, naive = %v", round, d.Name(), got, want)
			}
			if got := Detect(r, d, Options{}); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d, %s: Detect(no cache) = %v, naive = %v", round, d.Name(), got, want)
			}
		}
	}
}

// TestDetectMatchesNaiveExtremeNumerics pins the exact-comparison
// contract where float64 rounding would lie: int64s beyond 2^53 and
// the extremes of both kinds.
func TestDetectMatchesNaiveExtremeNumerics(t *testing.T) {
	schema, err := relation.NewSchema("x",
		relation.Attribute{Name: "I", Kind: relation.KindInt},
		relation.Attribute{Name: "F", Kind: relation.KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(schema)
	big := int64(1) << 60
	for _, row := range []relation.Tuple{
		{relation.Int(big), relation.Float(float64(big))},
		{relation.Int(big + 1), relation.Float(float64(big))}, // float64 can't see the +1
		{relation.Int(-big - 1), relation.Float(-float64(big))},
		{relation.Int(9223372036854775807), relation.Float(9.2e18)},
		{relation.Int(0), relation.Null()},
		{relation.Null(), relation.Float(0)},
	} {
		r.MustInsert(row)
	}
	for _, text := range []string{
		"dc a: !( t.I < u.I )",
		"dc b: !( t.I <= u.F )",
		"dc c: !( t.F >= u.I )",
		"dc d: !( t.I = u.I & t.F != u.F )",
	} {
		d, err := Parse(text, schema)
		if err != nil {
			t.Fatal(err)
		}
		want := DetectNaive(r, d)
		if got := Detect(r, d, Options{}); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Detect = %v, naive = %v", d.Name(), got, want)
		}
	}
}

func TestRelaxResolvesViolations(t *testing.T) {
	schema := testSchema(t)
	r := tinyEmp(t, schema)
	set, err := ParseSet(strings.Join([]string{
		"dc pay: !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )",
		"dc cap: !( t.SAL >= 2000 )",
		"dc tie: !( t.DEPT = u.DEPT & t.LEVEL <= u.LEVEL & t.SAL > u.SAL )",
	}, "\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range set.All() {
		vios := Detect(r, d, Options{})
		if len(vios) == 0 {
			t.Fatalf("%s: expected violations on tinyEmp", d.Name())
		}
		weaks := Relax(r, d, vios, Options{})
		if len(weaks) == 0 {
			t.Fatalf("%s: no weakenings proposed", d.Name())
		}
		consistent := 0
		for _, w := range weaks {
			if w.Total != len(vios) || w.Resolved < 1 || w.Resolved > w.Total {
				t.Fatalf("%s: malformed weakening %+v", d.Name(), w)
			}
			if w.Kind == WeakenDrop {
				if w.Weakened != nil || !w.Consistent {
					t.Fatalf("%s: drop weakening %+v", d.Name(), w)
				}
				consistent++
				continue
			}
			// Verify the Consistent flag against ground truth.
			left := Detect(r, w.Weakened, Options{})
			if w.Consistent != (len(left) == 0) {
				t.Fatalf("%s: %s claims Consistent=%v but re-detection found %d",
					d.Name(), w.Desc, w.Consistent, len(left))
			}
			// Weakening contract: violations shrink, never grow.
			if len(left) > len(vios)-w.Resolved {
				t.Fatalf("%s: %s left %d violations, resolved claims %d of %d",
					d.Name(), w.Desc, len(left), w.Resolved, w.Total)
			}
			if w.Consistent {
				consistent++
			}
		}
		if consistent == 0 {
			t.Fatalf("%s: no weakening makes the dataset consistent", d.Name())
		}
		// Ranking: no later weakening resolves strictly more than an earlier one.
		for i := 1; i < len(weaks); i++ {
			if weaks[i].Resolved > weaks[i-1].Resolved {
				t.Fatalf("%s: ranking broken at %d: %+v after %+v",
					d.Name(), i, weaks[i], weaks[i-1])
			}
		}
	}
}

func TestRelaxShiftConstIsConsistent(t *testing.T) {
	schema := testSchema(t)
	r := tinyEmp(t, schema)
	d, err := Parse("dc cap: !( t.SAL >= 2000 )", schema)
	if err != nil {
		t.Fatal(err)
	}
	vios := Detect(r, d, Options{})
	weaks := Relax(r, d, vios, Options{})
	var shift *Weakening
	for i := range weaks {
		if weaks[i].Kind == WeakenShiftConst {
			shift = &weaks[i]
			break
		}
	}
	if shift == nil {
		t.Fatal("no shift-const weakening for a constant order predicate")
	}
	if !shift.Consistent || shift.Resolved != shift.Total {
		t.Fatalf("shift-const must fully resolve: %+v", shift)
	}
	// The shifted bound sits just past the extreme witness (max SAL 3000).
	if got, want := shift.Weakened.String(), "dc cap: !( t.SAL > 3000 )"; got != want {
		t.Fatalf("shifted DC = %q, want %q", got, want)
	}
	if len(Relax(r, d, nil, Options{})) != 0 {
		t.Fatal("Relax with no violations should propose nothing")
	}
}
