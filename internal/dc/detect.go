package dc

import (
	"sort"

	"semandaq/internal/relation"
)

// Violation is one witness of a DC: the ordered tuple pair (T, U) that
// jointly satisfies every predicate. Single-tuple constraints report
// T == U.
type Violation struct {
	T int `json:"t"`
	U int `json:"u"`
}

// Options configures Detect.
type Options struct {
	// Cache supplies (and is warmed with) the PLIs over the DC's
	// equality-join attributes. Nil builds throwaway partitions.
	Cache *relation.IndexCache

	// MaxViolations truncates the (T,U)-sorted result to its first k
	// entries; 0 keeps everything. Truncation happens after the full
	// deterministic sort, so the reported prefix is stable.
	MaxViolations int
}

// ViolatingTIDs flattens violations to the sorted distinct TIDs they
// involve — the input the value-repair path takes as an alternative to
// relaxing the constraint.
func ViolatingTIDs(vios []Violation) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vios {
		for _, tid := range [2]int{v.T, v.U} {
			if !seen[tid] {
				seen[tid] = true
				out = append(out, tid)
			}
		}
	}
	sort.Ints(out)
	return out
}

// --- shared predicate semantics (Detect and DetectNaive) -------------
//
// Equality follows PLI grouping: NULL = NULL holds, NaN = NaN holds
// (they intern to one code). ≠ requires both sides non-NULL. Order
// predicates require both sides non-NULL and non-NaN and compare
// EXACTLY — exactNumCmp below, not Value.Compare, whose float64 detour
// collapses distinct int64s above 2^53. Exactness is what lets the
// sweep use integer code ranks interchangeably with value comparisons.

func valueEq(a, b relation.Value) bool {
	return a.Identical(b) || (a.IsNaN() && b.IsNaN())
}

// exactNumCmp orders two non-NULL, non-NaN numeric values exactly.
// Same-kind pairs compare natively; an int64/float64 pair compares in
// float64 first and breaks float-precision ties in the integer domain.
func exactNumCmp(a, b relation.Value) int {
	if a.Kind() == b.Kind() {
		if a.Kind() == relation.KindInt {
			return cmp64(a.IntVal(), b.IntVal())
		}
		x, y := a.FloatVal(), b.FloatVal()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	if a.Kind() == relation.KindFloat {
		return -exactNumCmp(b, a)
	}
	n, f := a.IntVal(), b.FloatVal()
	nf := float64(n)
	switch {
	case nf < f:
		return -1
	case nf > f:
		return 1
	}
	// Tied at float64 precision: f equals float64(n), so f is integral.
	// f == 2^63 (float64(MaxInt64) rounds up to it) exceeds every
	// int64; otherwise f converts back to int64 exactly.
	if f >= 1<<63 {
		return -1
	}
	return cmp64(n, int64(f))
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// opHolds evaluates a op b under the semantics above.
func opHolds(op Op, a, b relation.Value) bool {
	switch op {
	case OpEq:
		return valueEq(a, b)
	case OpNe:
		return !a.IsNull() && !b.IsNull() && !valueEq(a, b)
	}
	if a.IsNull() || b.IsNull() || a.IsNaN() || b.IsNaN() {
		return false
	}
	c := exactNumCmp(a, b)
	switch op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// operandValue resolves one predicate operand for the pair (t, u).
func operandValue(r *relation.Relation, ref Ref, t, u int) relation.Value {
	tid := t
	if ref.U {
		tid = u
	}
	return r.Get(tid, ref.Attr)
}

// predHolds evaluates one predicate for the pair (t, u).
func predHolds(r *relation.Relation, p Pred, t, u int) bool {
	lv := operandValue(r, p.Left, t, u)
	rv := p.Const
	if !p.HasConst {
		rv = operandValue(r, p.Right, t, u)
	}
	return opHolds(p.Op, lv, rv)
}

// pairViolates reports whether (t, u) satisfies every listed predicate.
func pairViolates(r *relation.Relation, preds []Pred, t, u int) bool {
	for _, p := range preds {
		if !predHolds(r, p, t, u) {
			return false
		}
	}
	return true
}

// DetectNaive is the all-pairs reference detector: every ordered pair
// of distinct tuples (every single tuple for a single-tuple DC) against
// every predicate. O(n²·k), kept as the executable specification that
// Detect is property-tested byte-identical against.
func DetectNaive(r *relation.Relation, d *DC) []Violation {
	n := r.Len()
	var out []Violation
	if !d.twoTuple {
		for t := 0; t < n; t++ {
			if pairViolates(r, d.preds, t, t) {
				out = append(out, Violation{T: t, U: t})
			}
		}
		return out
	}
	for t := 0; t < n; t++ {
		for u := 0; u < n; u++ {
			if t != u && pairViolates(r, d.preds, t, u) {
				out = append(out, Violation{T: t, U: u})
			}
		}
	}
	return out
}

// plan is the predicate decomposition Detect executes:
//
//	eqAttrs  — cross-side t.A = u.A predicates, consumed by partitioning
//	           candidate pairs through the cached PLI over eqAttrs;
//	tSide    — predicates referencing only t (incl. constants), consumed
//	           by a per-TID mask before any pairing;
//	uSide    — likewise for u;
//	sweep    — the first cross-side order predicate, consumed by the
//	           rank-sorted sweep within each partition group;
//	sweep2   — the second cross-side order predicate if any, consumed
//	           by the sweep's sorted prefix index (dominance sweep), so
//	           inversion-style DCs (LEVEL < … ∧ SAL > …) enumerate only
//	           pairs satisfying BOTH order predicates;
//	residual — everything else, checked per surviving candidate pair.
type plan struct {
	eqAttrs   []int
	tSide     []Pred
	uSide     []Pred
	sweep     Pred
	hasSweep  bool
	sweep2    Pred
	hasSweep2 bool
	residual  []Pred
}

func (d *DC) plan() plan {
	pl := plan{eqAttrs: d.equalityAttrs()}
	for _, p := range d.preds {
		switch {
		case !p.crossSide():
			// Left.U == Right.U for same-side preds, so Left names the side.
			if p.Left.U {
				pl.uSide = append(pl.uSide, p)
			} else {
				pl.tSide = append(pl.tSide, p)
			}
		case p.Op == OpEq && p.Left.Attr == p.Right.Attr:
			// consumed by the eqAttrs partition
		case p.Op.IsOrder() && !(pl.hasSweep && pl.hasSweep2):
			// Normalize the sweep predicates to "t.<la> op u.<ra>".
			sp := p
			if sp.Left.U {
				sp.Left, sp.Right = sp.Right, sp.Left
				sp.Op = flip(sp.Op)
			}
			if !pl.hasSweep {
				pl.sweep, pl.hasSweep = sp, true
			} else {
				pl.sweep2, pl.hasSweep2 = sp, true
			}
		default:
			pl.residual = append(pl.residual, p)
		}
	}
	return pl
}

// Detect finds all violations of d in r, byte-identical to DetectNaive
// (before MaxViolations truncation) but evaluated through the columnar
// indexes: equality predicates via the cached PLI partition over the
// DC's equality-join attributes, one order predicate via a rank-sorted
// sweep inside each partition group, side predicates via per-TID masks,
// and only the surviving candidate pairs pay the residual predicate
// checks. Violations are sorted by (T, U).
func Detect(r *relation.Relation, d *DC, opts Options) []Violation {
	n := r.Len()
	pl := d.plan()

	if !d.twoTuple {
		var out []Violation
		for t := 0; t < n; t++ {
			if pairViolates(r, pl.tSide, t, t) {
				out = append(out, Violation{T: t, U: t})
			}
		}
		return truncate(out, opts.MaxViolations)
	}

	tMask := sideMask(r, pl.tSide, n)
	uMask := sideMask(r, pl.uSide, n)

	var groups groupSource
	if len(pl.eqAttrs) > 0 {
		cache := opts.Cache
		if cache == nil {
			cache = relation.NewIndexCache()
		}
		groups = pliGroups{cache.GetVia(r, pl.eqAttrs)}
	} else {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		groups = singleGroup{all}
	}

	var out []Violation
	emit := func(t, u int) {
		if t != u && pairViolates(r, pl.residual, t, u) {
			out = append(out, Violation{T: t, U: u})
		}
	}
	for g := 0; g < groups.numGroups(); g++ {
		members := groups.group(g)
		ts := filterMask(members, tMask)
		us := filterMask(members, uMask)
		if len(ts) == 0 || len(us) == 0 {
			continue
		}
		if pl.hasSweep {
			var sweep2 *Pred
			if pl.hasSweep2 {
				sweep2 = &pl.sweep2
			}
			sweepGroup(r, pl.sweep, sweep2, ts, us, emit)
		} else {
			for _, t := range ts {
				for _, u := range us {
					emit(t, u)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].U < out[j].U
	})
	return truncate(out, opts.MaxViolations)
}

// groupSource abstracts "the partition of candidate pairs": a real PLI
// when the DC has equality-join attributes, one all-TID group otherwise.
type groupSource interface {
	numGroups() int
	group(g int) []int
}

type pliGroups struct{ p *relation.PLI }

func (s pliGroups) numGroups() int    { return s.p.NumGroups() }
func (s pliGroups) group(g int) []int { return s.p.Group(g) }

type singleGroup struct{ tids []int }

func (s singleGroup) numGroups() int  { return 1 }
func (s singleGroup) group(int) []int { return s.tids }

// sideMask evaluates the one-variable predicates per TID. nil means
// "no side predicates" (every TID passes) and lets filterMask alias the
// group slice instead of copying.
func sideMask(r *relation.Relation, preds []Pred, n int) []bool {
	if len(preds) == 0 {
		return nil
	}
	mask := make([]bool, n)
	for tid := 0; tid < n; tid++ {
		mask[tid] = pairViolates(r, preds, tid, tid)
	}
	return mask
}

func filterMask(tids []int, mask []bool) []int {
	if mask == nil {
		return tids
	}
	out := make([]int, 0, len(tids))
	for _, tid := range tids {
		if mask[tid] {
			out = append(out, tid)
		}
	}
	return out
}

// valueRun is one distinct value of a sweep column within a group: the
// group representative the sweep compares, carrying the TIDs holding
// that value.
type valueRun struct {
	val  relation.Value
	tids []int
}

// columnRuns sub-groups tids by their code on attr, in ascending value
// order, dropping NULL and NaN rows (an order predicate can never hold
// for them). Sorting is by integer code rank — exact value order for
// numeric columns per the Encode order-preservation guarantee — so no
// value comparisons happen until the cross-column sweep boundary.
func columnRuns(r *relation.Relation, attr int, tids []int) []valueRun {
	codes := r.ColumnCodes(attr)
	ranks := r.CodeRanks(attr)
	sorted := append([]int(nil), tids...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := codes[sorted[i]], codes[sorted[j]]
		if a != b {
			return ranks[a] < ranks[b]
		}
		return sorted[i] < sorted[j]
	})
	var runs []valueRun
	for i := 0; i < len(sorted); {
		code := codes[sorted[i]]
		j := i
		for j < len(sorted) && codes[sorted[j]] == code {
			j++
		}
		v := r.CodeValue(attr, code)
		if !v.IsNull() && !v.IsNaN() {
			runs = append(runs, valueRun{val: v, tids: sorted[i:j]})
		}
		i = j
	}
	return runs
}

// sweepGroup enumerates the (t, u) pairs of one partition group that
// satisfy the normalized sweep predicate t.A op u.B — and, when sp2 is
// non-nil, the second order predicate t.C op2 u.D as well — by a merge
// sweep over the two columns' value runs. Both sides are sorted
// ascending by code rank; for each probe run the satisfying runs of
// the other side form a prefix whose boundary advances monotonically,
// so work is O(|g| log |g|) for the sorts plus one exact comparison
// per boundary advance plus the enumerated pairs themselves — never
// the full |ts|×|us| grid the naive detector pays.
//
// With sp2 the enumerated pairs shrink further: the accumulated prefix
// is kept sorted by the SECOND predicate's column, so each probe tuple
// binary-searches the prefix and touches only tuples satisfying both
// order predicates (a sort-and-search dominance/inversion join). For
// the canonical pay-inversion DC this is what turns "all same-dept
// level-ordered pairs" into "just the planted inversions".
func sweepGroup(r *relation.Relation, sp Pred, sp2 *Pred, ts, us []int, emit func(t, u int)) {
	tRuns := columnRuns(r, sp.Left.Attr, ts)
	uRuns := columnRuns(r, sp.Right.Attr, us)
	if len(tRuns) == 0 || len(uRuns) == 0 {
		return
	}
	// Reduce > and ≥ to < and ≤ by flipping which side accumulates:
	// t.A > u.B selects, per t-run probe, the prefix of u-runs with
	// u.B < t.A.
	var lower, upper []valueRun
	var strict, lowerIsT bool
	switch sp.Op {
	case OpLt, OpLe:
		lower, upper, lowerIsT, strict = tRuns, uRuns, true, sp.Op == OpLt
	default: // OpGt, OpGe
		lower, upper, lowerIsT, strict = uRuns, tRuns, false, sp.Op == OpGt
	}
	orient := func(lo, hi int) (int, int) {
		if lowerIsT {
			return lo, hi
		}
		return hi, lo
	}

	if sp2 == nil {
		prefixSweep(lower, upper, strict, func(lo, hi valueRun) {
			for _, l := range lo.tids {
				for _, h := range hi.tids {
					emit(orient(l, h))
				}
			}
		})
		return
	}

	// Second-predicate index: prefix tuples sorted by their column of
	// sp2, probes binary-search it. Resolve which side of sp2 each
	// sweep side reads and the direction of the match range:
	// matchAbove means qualifying prefix tuples have sp2-values
	// strictly/weakly ABOVE the probe's (a suffix of the sorted
	// prefix); otherwise below (a prefix of it).
	loAttr, hiAttr := sp2.Left.Attr, sp2.Right.Attr
	op2 := sp2.Op
	if !lowerIsT {
		loAttr, hiAttr = hiAttr, loAttr
		op2 = flip(op2)
	}
	matchAbove := op2 == OpGt || op2 == OpGe
	strict2 := op2 == OpGt || op2 == OpLt

	prefix := newSecIndex(r, loAttr)
	end := 0
	for _, hi := range upper {
		for end < len(lower) {
			c := exactNumCmp(lower[end].val, hi.val)
			if c < 0 || (!strict && c == 0) {
				prefix.add(lower[end].tids)
				end++
			} else {
				break
			}
		}
		for _, h := range hi.tids {
			q := r.Get(h, hiAttr)
			if q.IsNull() || q.IsNaN() {
				continue
			}
			for _, l := range prefix.match(q, matchAbove, strict2) {
				emit(orient(l.tid, h))
			}
		}
	}
}

// prefixSweep calls pair(lo, hi) for every lo in `lower`, hi in `upper`
// with lo.val < hi.val (strict) or lo.val ≤ hi.val. Both slices are in
// ascending value order, so the qualifying lower runs form a prefix
// whose end only grows as hi advances.
func prefixSweep(lower, upper []valueRun, strict bool, pair func(lo, hi valueRun)) {
	end := 0
	for _, hi := range upper {
		for end < len(lower) {
			c := exactNumCmp(lower[end].val, hi.val)
			if c < 0 || (!strict && c == 0) {
				end++
			} else {
				break
			}
		}
		for _, lo := range lower[:end] {
			pair(lo, hi)
		}
	}
}

// secIndex is the sorted prefix of a dominance sweep: the accumulated
// tuples ordered by one column's value (exactly — by code rank), with
// batch inserts merged in and range queries answered by binary search.
type secIndex struct {
	rel   *relation.Relation
	attr  int
	codes []int32
	ranks []int32
	items []secItem // ascending by rank (== ascending by value)
	merge []secItem // scratch for batch merges
}

type secItem struct {
	rank int32
	tid  int
	val  relation.Value
}

func newSecIndex(r *relation.Relation, attr int) *secIndex {
	return &secIndex{rel: r, attr: attr, codes: r.ColumnCodes(attr), ranks: r.CodeRanks(attr)}
}

// add merges a batch of TIDs into the index, dropping NULL/NaN rows
// (they satisfy no order predicate). Each batch is one primary-value
// run; total merge work is O(#runs × |prefix|), dominated by the
// primary sort for realistic run counts.
func (x *secIndex) add(tids []int) {
	batch := make([]secItem, 0, len(tids))
	for _, tid := range tids {
		v := x.rel.CodeValue(x.attr, x.codes[tid])
		if v.IsNull() || v.IsNaN() {
			continue
		}
		batch = append(batch, secItem{rank: x.ranks[x.codes[tid]], tid: tid, val: v})
	}
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].rank != batch[j].rank {
			return batch[i].rank < batch[j].rank
		}
		return batch[i].tid < batch[j].tid
	})
	if len(x.items) == 0 {
		x.items = batch
		return
	}
	merged := x.merge[:0]
	i, j := 0, 0
	for i < len(x.items) && j < len(batch) {
		if x.items[i].rank <= batch[j].rank {
			merged = append(merged, x.items[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, x.items[i:]...)
	merged = append(merged, batch[j:]...)
	x.merge = x.items[:0] // recycle the old backing array as next scratch
	x.items = merged
}

// match returns the items whose value is above (or below) q, strictly
// or weakly: a suffix (resp. prefix) of the rank-sorted items, located
// by binary search with exact cross-column comparison.
func (x *secIndex) match(q relation.Value, above, strict bool) []secItem {
	if above {
		// First item with val > q (strict) or ≥ q.
		i := sort.Search(len(x.items), func(i int) bool {
			c := exactNumCmp(x.items[i].val, q)
			return c > 0 || (!strict && c == 0)
		})
		return x.items[i:]
	}
	// Items before the first with val ≥ q (strict: val < q) or > q.
	i := sort.Search(len(x.items), func(i int) bool {
		c := exactNumCmp(x.items[i].val, q)
		return c > 0 || (strict && c == 0)
	})
	return x.items[:i]
}

func truncate(vios []Violation, max int) []Violation {
	if max > 0 && len(vios) > max {
		return vios[:max]
	}
	return vios
}
