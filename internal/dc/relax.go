package dc

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// Weakening kinds, in preference order: a tightened operator keeps the
// most of the original rule, a shifted constant keeps its shape, and
// dropping the constraint is the weakening of last resort.
const (
	WeakenTightenOp  = "tighten-op"
	WeakenShiftConst = "shift-const"
	WeakenDrop       = "drop"
)

// Weakening is one candidate relaxation of a violated DC: a constraint
// whose violation set is a strict subset of the original's (the data
// did not change; the rule admits more of it). Kind WeakenDrop has a
// nil Weakened DC.
type Weakening struct {
	Kind     string // WeakenTightenOp, WeakenShiftConst or WeakenDrop
	Pred     int    // index of the weakened predicate; -1 for drop
	Weakened *DC    // the relaxed constraint, same name as the original
	Desc     string // human-readable account of the change

	Resolved   int  // of the Total current violations, how many this resolves
	Total      int  // violations of the original DC that were handed in
	Consistent bool // re-detection of Weakened found zero violations
}

// Relax proposes minimal weakenings of a violated DC, following the
// relaxation view of repair: instead of mutating tuples, weaken the
// rule until the data is consistent with it. Candidates, ranked by
// (unresolved violations ascending, kind preference, predicate index):
//
//   - tighten-op: ≤ → < and ≥ → > on an order predicate, resolving
//     exactly the violations that held with equality on it;
//   - shift-const: move an order predicate's constant past every
//     current witness (t.A < c becomes t.A < min witness; t.A > c
//     becomes t.A > max witness), resolving all current violations;
//   - drop: retire the constraint (always consistent, always last).
//
// Every predicate-level candidate strictly shrinks the conjunction's
// satisfaction set, so a weakened DC's violations are a subset of the
// original's; Consistent is nevertheless verified by re-running Detect
// on the weakened constraint rather than assumed. vios must be the
// current (untruncated) violation set of d, as returned by Detect.
// Value repair of ViolatingTIDs(vios) remains the alternative when the
// rule should stand and the data should move.
func Relax(r *relation.Relation, d *DC, vios []Violation, opts Options) []Weakening {
	if len(vios) == 0 {
		return nil
	}
	total := len(vios)
	var out []Weakening

	consider := func(kind string, predIdx int, preds []Pred, desc string) {
		wd, err := New(d.name, d.schema, preds)
		if err != nil {
			return // a weakening can never invalidate a valid DC; defensive
		}
		resolved := 0
		for _, v := range vios {
			if !pairViolates(r, wd.preds, v.T, v.U) {
				resolved++
			}
		}
		if resolved == 0 {
			return // not a useful weakening for the data at hand
		}
		check := opts
		check.MaxViolations = 1 // emptiness test only
		out = append(out, Weakening{
			Kind:       kind,
			Pred:       predIdx,
			Weakened:   wd,
			Desc:       desc,
			Resolved:   resolved,
			Total:      total,
			Consistent: len(Detect(r, wd, check)) == 0,
		})
	}

	for i, p := range d.preds {
		if !p.Op.IsOrder() {
			continue
		}
		if p.Op == OpLe || p.Op == OpGe {
			preds := d.Preds()
			tightened := OpLt
			if p.Op == OpGe {
				tightened = OpGt
			}
			preds[i].Op = tightened
			consider(WeakenTightenOp, i,
				preds, fmt.Sprintf("tighten %s to %s", d.predString(p), d.predString(preds[i])))
		}
		if p.HasConst {
			// The witnesses' left-operand values all satisfy the
			// predicate now; move the constant to their extreme and
			// make the operator strict, so every one of them fails it.
			bound := operandValue(r, p.Left, vios[0].T, vios[0].U)
			for _, v := range vios[1:] {
				w := operandValue(r, p.Left, v.T, v.U)
				c := exactNumCmp(w, bound)
				if (p.Op == OpLt || p.Op == OpLe) && c < 0 {
					bound = w
				} else if (p.Op == OpGt || p.Op == OpGe) && c > 0 {
					bound = w
				}
			}
			preds := d.Preds()
			if p.Op == OpLt || p.Op == OpLe {
				preds[i].Op = OpLt
			} else {
				preds[i].Op = OpGt
			}
			preds[i].Const = bound
			consider(WeakenShiftConst, i,
				preds, fmt.Sprintf("shift %s to %s", d.predString(p), d.predString(preds[i])))
		}
	}

	out = append(out, Weakening{
		Kind:       WeakenDrop,
		Pred:       -1,
		Desc:       fmt.Sprintf("drop constraint %s", d.name),
		Resolved:   total,
		Total:      total,
		Consistent: true,
	})

	rank := map[string]int{WeakenTightenOp: 0, WeakenShiftConst: 1, WeakenDrop: 2}
	sort.SliceStable(out, func(i, j int) bool {
		ui, uj := out[i].Total-out[i].Resolved, out[j].Total-out[j].Resolved
		if ui != uj {
			return ui < uj
		}
		if rank[out[i].Kind] != rank[out[j].Kind] {
			return rank[out[i].Kind] < rank[out[j].Kind]
		}
		return out[i].Pred < out[j].Pred
	})
	return out
}
