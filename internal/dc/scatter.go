package dc

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// Scatter-gather DC detection across TID-range shards, mirroring the
// CFD path (internal/cfd/scatter.go): Detect already confines a
// two-tuple DC's violating pairs to the PLI groups of its cross-side
// equality attributes, so a range partition splits the pair space into
//
//   - shard-local pairs: both tuples on one shard, found by the shard's
//     own Detect (all predicate evaluation is per-pair, so a local pair
//     violates locally iff it violates globally), and
//   - cross-shard pairs: the two tuples in the same equality group but
//     on different shards — possible only in groups that straddle a
//     range cut (boundary groups).
//
// Each shard ships its violations plus its group keys over the
// equality attributes (relation.AppendGroupKey — the cross-shard group
// identity, matching the PLI's code classes exactly since interning is
// injective on Value.Encode). The coordinator intersects key sets,
// fetches the boundary groups' members, enumerates the cross-shard
// ordered pairs with PairViolates on the shipped tuples, and merges
// with the translated local pairs under the global (T, U) sort.
// MaxViolations truncation moves to the coordinator so the reported
// prefix equals the single-process one.
//
// Single-tuple DCs never pair tuples and are purely local. A two-tuple
// DC with NO cross-side equality predicate has an unpartitionable pair
// space (every cross-shard pair is a candidate); MergeShards rejects it
// in multi-shard mode rather than silently dropping cross-shard
// witnesses.

// EqualityAttrs exposes the DC's cross-side equality attributes (sorted,
// distinct) — the shard partition key of scatter-gather detection.
func (d *DC) EqualityAttrs() []int { return d.equalityAttrs() }

// ReferencedAttrs returns the sorted distinct attribute positions any
// predicate reads — the value attributes a boundary-pair replay needs
// shipped.
func (d *DC) ReferencedAttrs() []int {
	seen := map[int]bool{}
	for _, p := range d.preds {
		seen[p.Left.Attr] = true
		if !p.HasConst {
			seen[p.Right.Attr] = true
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// PairViolates evaluates the DC's predicates on materialized tuples —
// the coordinator-side residual check for cross-shard pairs, using the
// exact opHolds semantics of Detect. t and u must have the DC's
// ReferencedAttrs populated; for a single-tuple DC pass the tuple as
// both.
func (d *DC) PairViolates(t, u relation.Tuple) bool {
	for _, p := range d.preds {
		lv := tupleOperand(p.Left, t, u)
		rv := p.Const
		if !p.HasConst {
			rv = tupleOperand(p.Right, t, u)
		}
		if !opHolds(p.Op, lv, rv) {
			return false
		}
	}
	return true
}

func tupleOperand(ref Ref, t, u relation.Tuple) relation.Value {
	if ref.U {
		return u[ref.Attr]
	}
	return t[ref.Attr]
}

// ShardResult is one shard's contribution to distributed detection of
// one DC.
type ShardResult struct {
	// Vios are the shard-local violations (shard-local TIDs), sorted by
	// (T, U), UNtruncated — the coordinator owns truncation.
	Vios []Violation
	// Keys are the shard's sorted group keys over EqualityAttrs (raw
	// composite Encode bytes in strings). Nil for single-tuple DCs and
	// for two-tuple DCs without equality attributes.
	Keys []string
}

// DetectShard runs shard-local detection of d over r and collects the
// shard's equality-group keys for the coordinator's boundary
// intersection.
func DetectShard(r *relation.Relation, d *DC, cache *relation.IndexCache) ShardResult {
	if cache == nil {
		cache = relation.NewIndexCache()
	}
	res := ShardResult{Vios: Detect(r, d, Options{Cache: cache})}
	eq := d.equalityAttrs()
	if !d.twoTuple || len(eq) == 0 {
		return res
	}
	pli := cache.GetVia(r, eq)
	var key []byte
	for g, n := 0, pli.NumGroups(); g < n; g++ {
		tids := pli.Group(g)
		if len(tids) == 0 {
			continue
		}
		key = r.AppendGroupKey(key[:0], tids[0], eq)
		res.Keys = append(res.Keys, string(key))
	}
	sort.Strings(res.Keys)
	return res
}

// BoundaryTuples is one boundary group's membership on one shard:
// global TIDs (ascending) with per-member tuples populated on the DC's
// ReferencedAttrs.
type BoundaryTuples struct {
	TIDs []int
	Rows []relation.Tuple
}

// BoundaryFetcher retrieves boundary-group members: result[w][k] is
// worker w's membership of the k-th requested key (empty where the
// worker has no such group).
type BoundaryFetcher func(keys []string) ([][]BoundaryTuples, error)

// MergeStats quantifies the residual pass of one DC's merge.
type MergeStats struct {
	Groups         int `json:"groups"`
	BoundaryGroups int `json:"boundary_groups"`
	BoundaryTuples int `json:"boundary_tuples"`
}

// BoundaryFraction is BoundaryGroups/Groups.
func (m MergeStats) BoundaryFraction() float64 {
	if m.Groups == 0 {
		return 0
	}
	return float64(m.BoundaryGroups) / float64(m.Groups)
}

// MergeShards combines per-shard results into the global violation
// list, identical to single-process Detect over the union relation
// (before truncation; maxViolations then truncates the (T,U)-sorted
// list exactly like Options.MaxViolations). offsets[w] is worker w's
// global TID offset.
func MergeShards(d *DC, offsets []int, shards []ShardResult, fetch BoundaryFetcher, maxViolations int) ([]Violation, MergeStats, error) {
	var stats MergeStats
	var out []Violation
	for w, sr := range shards {
		off := offsets[w]
		for _, v := range sr.Vios {
			out = append(out, Violation{T: v.T + off, U: v.U + off})
		}
	}

	if d.twoTuple && len(shards) > 1 {
		if len(d.equalityAttrs()) == 0 {
			return nil, stats, fmt.Errorf("dc: %s has no cross-side equality predicate; its pair space cannot be range-partitioned", d.name)
		}
		// Boundary keys: present on two or more shards.
		count := map[string]int{}
		for _, sr := range shards {
			for _, k := range sr.Keys {
				count[k]++
			}
		}
		var boundary []string
		for k, c := range count {
			stats.Groups++
			if c >= 2 {
				boundary = append(boundary, k)
			}
		}
		sort.Strings(boundary)
		stats.BoundaryGroups = len(boundary)

		if len(boundary) > 0 {
			if fetch == nil {
				return nil, stats, fmt.Errorf("dc: %d boundary groups for %s but no fetcher configured", len(boundary), d.name)
			}
			members, err := fetch(boundary)
			if err != nil {
				return nil, stats, fmt.Errorf("dc: fetching boundary groups for %s: %w", d.name, err)
			}
			if len(members) != len(shards) {
				return nil, stats, fmt.Errorf("dc: boundary fetch for %s returned %d workers, want %d", d.name, len(members), len(shards))
			}
			for ki := range boundary {
				for wi := range shards {
					a := members[wi][ki]
					if len(a.TIDs) != len(a.Rows) {
						return nil, stats, fmt.Errorf("dc: boundary group of %s: %d TIDs but %d rows from worker %d",
							d.name, len(a.TIDs), len(a.Rows), wi)
					}
					stats.BoundaryTuples += len(a.TIDs)
					for wj := range shards {
						if wi == wj {
							continue
						}
						b := members[wj][ki]
						for ti, t := range a.TIDs {
							for ui, u := range b.TIDs {
								if d.PairViolates(a.Rows[ti], b.Rows[ui]) {
									out = append(out, Violation{T: t, U: u})
								}
							}
						}
					}
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].U < out[j].U
	})
	return truncate(out, maxViolations), stats, nil
}
