// Package dc implements denial constraints (DCs) over the interned
// columnar relations of internal/relation: constraints of the form
//
//	¬∃ t, u : P1 ∧ P2 ∧ … ∧ Pk
//
// where each predicate compares a tuple attribute against another tuple
// attribute or a constant with one of =, ≠, <, ≤, >, ≥. DCs subsume the
// equality-only constraint classes of Fan, Geerts & Jia (CFDs are DCs
// whose predicates are all equalities) and add the order predicates that
// real cleaning rules need — "a manager's salary is not below their
// report's", "discharge date ≥ admission date" — which no CFD can say.
//
// Detection (Detect) leans on the columnar core: equality predicates
// partition the candidate pair space through the cached PLIs
// (relation.IndexCache.GetVia — the same partitions CFD detection and
// discovery reuse), and order predicates are evaluated by a rank-sorted
// sweep within each partition group, exploiting that Value.Encode is
// order-preserving for numeric kinds and Relation.CodeRanks therefore
// ranks numeric columns in exact value order. DetectNaive is the
// all-pairs reference implementation; the two are byte-identical by
// construction and by property test.
//
// Repair (Relax) follows Giannakopoulou et al., "Cleaning Denial
// Constraint Violations through Relaxation": instead of always mutating
// data, minimally weaken the violated constraint — tighten ≤ to < (the
// DC then forbids less), shift a constant past the violating witnesses,
// or drop the DC outright — ranked by how many of the current
// violations each weakening resolves. Value repair of the violating
// tuples (the existing repair path) remains the alternative resolution;
// ViolatingTIDs feeds it.
package dc

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/relation"
)

// Op is a DC predicate operator.
type Op uint8

// The six predicate operators. Order operators (Lt..Ge) are restricted
// to numeric columns by the compiler: the rank-sweep detector needs the
// column's code-rank order to coincide with value order, which the
// order-preserving numeric Encode guarantees (and the string encoding
// deliberately does not).
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the canonical operator spelling.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// IsOrder reports whether op is an order comparison (<, ≤, >, ≥).
func (op Op) IsOrder() bool { return op >= OpLt }

// Ref names one tuple operand of a predicate: an attribute of the first
// tuple variable t, or (U set) of the second tuple variable u.
type Ref struct {
	U    bool
	Attr int
}

// Pred is one conjunct of a DC: Left op Right, or Left op Const when
// HasConst is set (Right is then unused).
type Pred struct {
	Left     Ref
	Op       Op
	Right    Ref
	Const    relation.Value
	HasConst bool
}

// crossSide reports whether the predicate relates the two tuple
// variables (one operand on t, the other on u).
func (p Pred) crossSide() bool {
	return !p.HasConst && p.Left.U != p.Right.U
}

// DC is a compiled denial constraint: ¬∃ t[,u]: preds. A DC referencing
// only t is single-tuple (its violations are single tuples, reported as
// pairs with T == U); one referencing both t and u quantifies over
// ordered pairs of distinct tuples.
type DC struct {
	name     string
	schema   *relation.Schema
	preds    []Pred
	twoTuple bool
}

// New compiles a DC from its parts, validating every predicate against
// the schema (see Set for the grammar front end):
//   - attributes must exist and at least one predicate is required;
//   - order operators require numeric columns (and numeric constants);
//   - equality operators require comparable kinds (string against
//     string, numeric against numeric);
//   - a DC referencing u must reference t as well.
func New(name string, schema *relation.Schema, preds []Pred) (*DC, error) {
	if name == "" {
		return nil, fmt.Errorf("dc: constraint name must be non-empty")
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("dc %s: at least one predicate is required", name)
	}
	usesT, usesU := false, false
	note := func(r Ref) { usesT = usesT || !r.U; usesU = usesU || r.U }
	kindOf := func(a int) (relation.Kind, error) {
		if a < 0 || a >= schema.Arity() {
			return relation.KindNull, fmt.Errorf("dc %s: attribute %d out of range for schema %s", name, a, schema.Name())
		}
		return schema.Attr(a).Kind, nil
	}
	numeric := func(k relation.Kind) bool { return k == relation.KindInt || k == relation.KindFloat }
	for i, p := range preds {
		lk, err := kindOf(p.Left.Attr)
		if err != nil {
			return nil, err
		}
		note(p.Left)
		var rk relation.Kind
		if p.HasConst {
			if p.Const.IsNull() {
				return nil, fmt.Errorf("dc %s: predicate %d compares against NULL (never satisfied)", name, i+1)
			}
			rk = p.Const.Kind()
		} else {
			if rk, err = kindOf(p.Right.Attr); err != nil {
				return nil, err
			}
			note(p.Right)
		}
		if p.Op.IsOrder() {
			if !numeric(lk) || !numeric(rk) {
				return nil, fmt.Errorf("dc %s: predicate %d: order operator %s requires numeric operands (got %v %s %v); order sweeps run on the numeric code-rank order",
					name, i+1, p.Op, lk, p.Op, rk)
			}
		} else if (lk == relation.KindString) != (rk == relation.KindString) {
			return nil, fmt.Errorf("dc %s: predicate %d: %v %s %v never holds (incomparable kinds)",
				name, i+1, lk, p.Op, rk)
		}
	}
	if usesU && !usesT {
		return nil, fmt.Errorf("dc %s: references only tuple variable u; use t for single-tuple constraints", name)
	}
	return &DC{
		name:     name,
		schema:   schema,
		preds:    append([]Pred(nil), preds...),
		twoTuple: usesU,
	}, nil
}

// Name returns the constraint name.
func (d *DC) Name() string { return d.name }

// Schema returns the schema the DC was compiled against.
func (d *DC) Schema() *relation.Schema { return d.schema }

// Preds returns a copy of the predicate list.
func (d *DC) Preds() []Pred { return append([]Pred(nil), d.preds...) }

// TwoTuple reports whether the DC quantifies over tuple pairs (it
// references both t and u) rather than single tuples.
func (d *DC) TwoTuple() bool { return d.twoTuple }

// refString renders one operand in the grammar's concrete syntax.
func (d *DC) refString(r Ref) string {
	v := "t"
	if r.U {
		v = "u"
	}
	return v + "." + d.schema.Attr(r.Attr).Name
}

func constString(v relation.Value) string {
	if v.Kind() == relation.KindString {
		return "'" + v.Str() + "'"
	}
	return v.String()
}

// predString renders one predicate in the grammar's concrete syntax.
func (d *DC) predString(p Pred) string {
	right := ""
	if p.HasConst {
		right = constString(p.Const)
	} else {
		right = d.refString(p.Right)
	}
	return d.refString(p.Left) + " " + p.Op.String() + " " + right
}

// String renders the DC in the grammar ParseSet accepts, so
// String→ParseSet round-trips.
func (d *DC) String() string {
	parts := make([]string, len(d.preds))
	for i, p := range d.preds {
		parts[i] = d.predString(p)
	}
	return fmt.Sprintf("dc %s: !( %s )", d.name, strings.Join(parts, " & "))
}

// Set is a named collection of DCs over one schema — the per-dataset DC
// registry an engine session installs and serves detection from.
type Set struct {
	schema *relation.Schema
	dcs    []*DC
	byName map[string]*DC
}

// NewSet creates an empty DC set over schema.
func NewSet(schema *relation.Schema) *Set {
	return &Set{schema: schema, byName: map[string]*DC{}}
}

// Schema returns the set's schema.
func (s *Set) Schema() *relation.Schema { return s.schema }

// Len returns the number of constraints.
func (s *Set) Len() int { return len(s.dcs) }

// All returns the constraints in installation order. The slice is a
// copy; the DCs themselves are immutable once compiled.
func (s *Set) All() []*DC { return append([]*DC(nil), s.dcs...) }

// Get returns the named constraint.
func (s *Set) Get(name string) (*DC, bool) {
	d, ok := s.byName[name]
	return d, ok
}

// Add appends a compiled DC; names are unique and the DC's schema must
// equal the set's.
func (s *Set) Add(d *DC) error {
	if !d.schema.Equal(s.schema) {
		return fmt.Errorf("dc: constraint %s is over schema %s, set is over %s",
			d.name, d.schema.Name(), s.schema.Name())
	}
	if _, dup := s.byName[d.name]; dup {
		return fmt.Errorf("dc: duplicate constraint name %q", d.name)
	}
	s.dcs = append(s.dcs, d)
	s.byName[d.name] = d
	return nil
}

// String renders the whole set, one constraint per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, d := range s.dcs {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// equalityAttrs returns the sorted distinct attributes compared for
// equality ACROSS the two tuple variables on the SAME attribute
// (t.A = u.A) — the attribute set whose cached PLI partitions the
// candidate pair space.
func (d *DC) equalityAttrs() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range d.preds {
		if p.Op == OpEq && p.crossSide() && p.Left.Attr == p.Right.Attr && !seen[p.Left.Attr] {
			seen[p.Left.Attr] = true
			out = append(out, p.Left.Attr)
		}
	}
	sort.Ints(out)
	return out
}
