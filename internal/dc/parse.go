package dc

import (
	"fmt"
	"strconv"
	"strings"

	"semandaq/internal/relation"
)

// The compact text grammar, one constraint per line:
//
//	dc <name>: !( <pred> & <pred> & ... )
//
//	<pred>    ::= <operand> <op> <operand>
//	<operand> ::= t.<attr> | u.<attr> | '<string>' | "<string>" | <number>
//	<op>      ::= = | == | != | <> | ≠ | < | <= | ≤ | > | >= | ≥
//
// "dc" and the name are optional (anonymous constraints are named
// dc1, dc2, … by position); "¬(...)" is accepted for "!(...)" and "∧"
// for "&". Lines starting with # are comments. The left operand of each
// predicate must be a tuple reference (constants go on the right; a
// constraint with a constant left operand is rewritten by flipping the
// operator). Examples:
//
//	dc pay:   !( t.DEPT = u.DEPT & t.LEVEL < u.LEVEL & t.SAL > u.SAL )
//	dc adult: !( t.AGE < 18 & t.STATUS = 'employed' )
//	!( t.CC = u.CC & t.ZIP = u.ZIP & t.STR != u.STR )

// ParseSet parses a multi-line DC set against a schema.
func ParseSet(text string, schema *relation.Schema) (*Set, error) {
	set := NewSet(schema)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseDC(line, schema, fmt.Sprintf("dc%d", set.Len()+1))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if err := set.Add(d); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return set, nil
}

// Parse parses a single DC (one line of the grammar).
func Parse(text string, schema *relation.Schema) (*DC, error) {
	return parseDC(strings.TrimSpace(text), schema, "dc1")
}

func parseDC(line string, schema *relation.Schema, defaultName string) (*DC, error) {
	s := strings.TrimSpace(strings.TrimPrefix(line, "dc "))
	name := defaultName
	// A name ends at the first ':' that precedes the negation marker.
	if i := strings.IndexAny(s, ":!¬"); i >= 0 && s[i] == ':' {
		name = strings.TrimSpace(s[:i])
		if name == "" {
			return nil, fmt.Errorf("dc: empty constraint name")
		}
		s = strings.TrimSpace(s[i+1:])
	}
	switch {
	case strings.HasPrefix(s, "!"):
		s = strings.TrimSpace(s[1:])
	case strings.HasPrefix(s, "¬"):
		s = strings.TrimSpace(s[len("¬"):])
	default:
		return nil, fmt.Errorf("dc %s: expected !( ... ), got %q", name, s)
	}
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("dc %s: expected parenthesized conjunction, got %q", name, s)
	}
	body := s[1 : len(s)-1]
	parts, err := splitConjuncts(body)
	if err != nil {
		return nil, fmt.Errorf("dc %s: %w", name, err)
	}
	preds := make([]Pred, 0, len(parts))
	for _, part := range parts {
		p, err := parsePred(part, schema)
		if err != nil {
			return nil, fmt.Errorf("dc %s: %w", name, err)
		}
		preds = append(preds, p)
	}
	return New(name, schema, preds)
}

// splitConjuncts splits the conjunction body on & / ∧, respecting
// quoted string constants.
func splitConjuncts(body string) ([]string, error) {
	var parts []string
	var cur strings.Builder
	var quote byte
	flush := func() error {
		p := strings.TrimSpace(cur.String())
		if p == "" {
			return fmt.Errorf("empty predicate in conjunction")
		}
		parts = append(parts, p)
		cur.Reset()
		return nil
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
			cur.WriteByte(c)
		case c == '\'' || c == '"':
			quote = c
			cur.WriteByte(c)
		case c == '&':
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(body[i:], "∧"):
			if err := flush(); err != nil {
				return nil, err
			}
			i += len("∧") - 1
		default:
			cur.WriteByte(c)
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("unterminated string constant")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return parts, nil
}

// operand is one parsed predicate side before operator resolution.
type operand struct {
	ref     Ref
	isRef   bool
	con     relation.Value
	literal string // raw numeric literal, coerced against the peer column
}

// parsePred parses "<operand> <op> <operand>".
func parsePred(s string, schema *relation.Schema) (Pred, error) {
	left, rest, err := parseOperand(s, schema)
	if err != nil {
		return Pred{}, err
	}
	op, rest, err := parseOp(rest)
	if err != nil {
		return Pred{}, fmt.Errorf("in %q: %w", s, err)
	}
	right, rest, err := parseOperand(rest, schema)
	if err != nil {
		return Pred{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return Pred{}, fmt.Errorf("trailing input %q in predicate %q", strings.TrimSpace(rest), s)
	}
	if !left.isRef && !right.isRef {
		return Pred{}, fmt.Errorf("predicate %q compares two constants", s)
	}
	// Normalize constants to the right (flip the operator if needed).
	if !left.isRef {
		left, right = right, left
		op = flip(op)
	}
	p := Pred{Left: left.ref, Op: op}
	if right.isRef {
		p.Right = right.ref
		return p, nil
	}
	con, err := coerceConst(right, schema.Attr(left.ref.Attr).Kind)
	if err != nil {
		return Pred{}, fmt.Errorf("in %q: %w", s, err)
	}
	p.Const, p.HasConst = con, true
	return p, nil
}

// flip mirrors an operator across its operands (a op b ⇔ b flip(op) a).
func flip(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// coerceConst types a constant against the column it is compared to:
// integer literals become floats for float columns (mirroring
// relation.Insert's coercion), and numeric literals keep exact int64
// form for int columns when they have no fractional syntax.
func coerceConst(o operand, kind relation.Kind) (relation.Value, error) {
	if o.literal == "" {
		return o.con, nil // quoted string constant
	}
	switch kind {
	case relation.KindInt:
		if n, err := strconv.ParseInt(o.literal, 10, 64); err == nil {
			return relation.Int(n), nil
		}
	case relation.KindFloat:
	default:
		return relation.Null(), fmt.Errorf("numeric constant %q compared to %v column", o.literal, kind)
	}
	f, err := strconv.ParseFloat(o.literal, 64)
	if err != nil {
		return relation.Null(), fmt.Errorf("bad numeric constant %q", o.literal)
	}
	if kind == relation.KindInt {
		return relation.Null(), fmt.Errorf("constant %q has no exact int form for an int column", o.literal)
	}
	return relation.Float(f), nil
}

// parseOperand consumes one operand from the front of s.
func parseOperand(s string, schema *relation.Schema) (operand, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, "", fmt.Errorf("missing operand")
	}
	if s[0] == '\'' || s[0] == '"' {
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			return operand{}, "", fmt.Errorf("unterminated string constant in %q", s)
		}
		return operand{con: relation.String(s[1 : 1+end])}, s[end+2:], nil
	}
	if (strings.HasPrefix(s, "t.") || strings.HasPrefix(s, "u.")) && len(s) > 2 {
		end := 2
		for end < len(s) && isAttrChar(s[end]) {
			end++
		}
		attrName := s[2:end]
		attr, ok := schema.Index(attrName)
		if !ok {
			return operand{}, "", fmt.Errorf("schema %s has no attribute %q", schema.Name(), attrName)
		}
		return operand{ref: Ref{U: s[0] == 'u', Attr: attr}, isRef: true}, s[end:], nil
	}
	// Numeric literal: digits, sign, dot, exponent.
	end := 0
	for end < len(s) && isNumChar(s[end]) {
		end++
	}
	if end == 0 {
		return operand{}, "", fmt.Errorf("bad operand at %q (expected t.<attr>, u.<attr>, quoted string, or number)", s)
	}
	lit := s[:end]
	if _, err := strconv.ParseFloat(lit, 64); err != nil {
		return operand{}, "", fmt.Errorf("bad numeric constant %q", lit)
	}
	return operand{literal: lit}, s[end:], nil
}

func isAttrChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func isNumChar(c byte) bool {
	return c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E' || ('0' <= c && c <= '9')
}

// parseOp consumes the operator from the front of s.
func parseOp(s string) (Op, string, error) {
	s = strings.TrimSpace(s)
	for _, cand := range []struct {
		tok string
		op  Op
	}{
		{"<=", OpLe}, {">=", OpGe}, {"!=", OpNe}, {"<>", OpNe}, {"==", OpEq},
		{"≤", OpLe}, {"≥", OpGe}, {"≠", OpNe},
		{"=", OpEq}, {"<", OpLt}, {">", OpGt},
	} {
		if strings.HasPrefix(s, cand.tok) {
			return cand.op, s[len(cand.tok):], nil
		}
	}
	return OpEq, s, fmt.Errorf("expected operator at %q", s)
}
