// Package semandaq is the system facade reproducing Semandaq, the
// research prototype presented in §5 of the tutorial (Fan, Geerts, Jia,
// VLDB 2008 demo): a data-quality system supporting
//
//	(a) specification of CFDs,
//	(b) automatic detection of CFD violations using the SQL-based
//	    technique of TODS 2008 (or the native detector), and
//	(c) repairing — finding a candidate repair that minimally differs
//	    from the original data — plus the demo's interactive loop: the
//	    user inspects the candidate repair, confirms or overrides cells,
//	    and the system re-repairs around those manual changes.
package semandaq

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/sqlgen"
)

// ConfirmedWeight is the cell weight assigned to user-confirmed values;
// it makes the repair engine treat them as (almost) immutable relative
// to default-weight cells.
const ConfirmedWeight = 1e6

// Project is a Semandaq session: one relation, one CFD set, cell
// confidence state, and the latest candidate repair.
type Project struct {
	name      string
	data      *relation.Relation
	set       *cfd.Set
	confirmed map[[2]int]bool
	candidate *repair.Result
}

// NewProject opens a project. The constraint set must match the data's
// schema and be satisfiable (an unsatisfiable set cannot be repaired
// to).
func NewProject(name string, data *relation.Relation, set *cfd.Set) (*Project, error) {
	if !data.Schema().Equal(set.Schema()) {
		return nil, fmt.Errorf("semandaq: data schema %s does not match constraint schema %s",
			data.Schema().Name(), set.Schema().Name())
	}
	if ok, _ := cfd.Satisfiable(set); !ok {
		return nil, fmt.Errorf("semandaq: the CFD set is unsatisfiable; no repair can exist")
	}
	return &Project{
		name:      name,
		data:      data.Clone(),
		set:       set,
		confirmed: map[[2]int]bool{},
	}, nil
}

// Name returns the project name.
func (p *Project) Name() string { return p.name }

// Data returns the current working relation (aliased; treat as
// read-only and use Edit for changes).
func (p *Project) Data() *relation.Relation { return p.data }

// Constraints returns the project's CFD set.
func (p *Project) Constraints() *cfd.Set { return p.set }

// Detect runs native violation detection on the current data.
func (p *Project) Detect() ([]cfd.Violation, error) {
	return cfd.NewDetector(p.set).Detect(p.data)
}

// DetectSQL runs the TODS 2008 SQL-based detection on the current data
// and returns the violating TIDs. The result always equals
// cfd.ViolatingTIDs of Detect (cross-checked by tests).
func (p *Project) DetectSQL() ([]int, error) {
	rn := sqlgen.NewRunner()
	if _, err := rn.Load(p.data.Schema().Name(), p.data); err != nil {
		return nil, err
	}
	return rn.DetectSet(p.set, p.data.Schema().Name())
}

// weights builds the repair weight function: confirmed cells are
// near-immutable, everything else has unit weight.
func (p *Project) weights() repair.WeightFn {
	return func(tid, attr int) float64 {
		if p.confirmed[[2]int{tid, attr}] {
			return ConfirmedWeight
		}
		return 1
	}
}

// Repair computes (and caches) a candidate repair of the current data;
// it does NOT modify the data — inspect the result and call Accept, or
// edit cells and re-run.
func (p *Project) Repair() (*repair.Result, error) {
	res, err := repair.Batch(p.data, p.set, repair.Options{Weights: p.weights()})
	if err != nil {
		return nil, err
	}
	p.candidate = res
	return res, nil
}

// Candidate returns the cached candidate repair (nil before Repair).
func (p *Project) Candidate() *repair.Result { return p.candidate }

// Accept commits the cached candidate repair as the current data.
func (p *Project) Accept() error {
	if p.candidate == nil {
		return fmt.Errorf("semandaq: no candidate repair; call Repair first")
	}
	p.data = p.candidate.Repaired
	p.candidate = nil
	return nil
}

// Edit is the demo's manual override: the user sets a cell to a value
// and the cell becomes confirmed, so subsequent repairs treat it as
// ground truth and resolve conflicts by changing other cells.
func (p *Project) Edit(tid, attr int, v relation.Value) error {
	if tid < 0 || tid >= p.data.Len() {
		return fmt.Errorf("semandaq: TID %d out of range", tid)
	}
	if attr < 0 || attr >= p.data.Schema().Arity() {
		return fmt.Errorf("semandaq: attribute %d out of range", attr)
	}
	p.data.Set(tid, attr, v)
	p.confirmed[[2]int{tid, attr}] = true
	p.candidate = nil
	return nil
}

// Confirm marks a cell's current value as user-verified without
// changing it.
func (p *Project) Confirm(tid, attr int) error {
	if tid < 0 || tid >= p.data.Len() {
		return fmt.Errorf("semandaq: TID %d out of range", tid)
	}
	if attr < 0 || attr >= p.data.Schema().Arity() {
		return fmt.Errorf("semandaq: attribute %d out of range", attr)
	}
	p.confirmed[[2]int{tid, attr}] = true
	return nil
}

// ConfirmedCells returns the confirmed cells, sorted.
func (p *Project) ConfirmedCells() [][2]int {
	out := make([][2]int, 0, len(p.confirmed))
	for c := range p.confirmed {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Append inserts new tuples and repairs only them incrementally
// (IncRepair), assuming the current data is clean; it returns the
// repair result and commits it.
func (p *Project) Append(tuples []relation.Tuple) (*repair.Result, error) {
	res, err := repair.AppendAndRepair(p.data, tuples, p.set, repair.Options{Weights: p.weights()})
	if err != nil {
		return nil, err
	}
	p.data = res.Repaired
	p.candidate = nil
	return res, nil
}

// Summary renders a short project status report.
func (p *Project) Summary() (string, error) {
	vs, err := p.Detect()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "project %s: %d tuples over %s\n", p.name, p.data.Len(), p.data.Schema())
	fmt.Fprintf(&b, "constraints: %d CFDs, %d pattern rows\n", p.set.Len(), p.set.TotalRows())
	constCount, varCount := 0, 0
	for _, v := range vs {
		if v.Kind == cfd.ConstViolation {
			constCount++
		} else {
			varCount++
		}
	}
	fmt.Fprintf(&b, "violations: %d constant, %d variable (%d tuples involved)\n",
		constCount, varCount, len(cfd.ViolatingTIDs(vs)))
	fmt.Fprintf(&b, "confirmed cells: %d\n", len(p.confirmed))
	if p.candidate != nil {
		fmt.Fprintf(&b, "candidate repair: %d changes, cost %.2f\n",
			len(p.candidate.Changes), p.candidate.Cost)
	}
	return b.String(), nil
}

// FormatChanges renders a candidate repair's change list for review.
func FormatChanges(r *relation.Relation, changes []repair.Change, limit int) string {
	var b strings.Builder
	for i, ch := range changes {
		if limit > 0 && i == limit {
			fmt.Fprintf(&b, "... (%d more changes)\n", len(changes)-limit)
			break
		}
		fmt.Fprintf(&b, "tuple %d, %s: %s -> %s\n",
			ch.TID, r.Schema().Attr(ch.Attr).Name, ch.From, ch.To)
	}
	return b.String()
}
