// Package semandaq is the system facade reproducing Semandaq, the
// research prototype presented in §5 of the tutorial (Fan, Geerts, Jia,
// VLDB 2008 demo): a data-quality system supporting
//
//	(a) specification of CFDs,
//	(b) automatic detection of CFD violations using the SQL-based
//	    technique of TODS 2008 (or the native detector), and
//	(c) repairing — finding a candidate repair that minimally differs
//	    from the original data — plus the demo's interactive loop: the
//	    user inspects the candidate repair, confirms or overrides cells,
//	    and the system re-repairs around those manual changes.
//
// Project is a thin single-user facade over engine.Session, the
// concurrency-safe session type that also backs the semandaqd service
// (internal/server); the facade adds the SQL-based detection cross-check
// and the text rendering helpers the CLI uses.
package semandaq

import (
	"semandaq/internal/cfd"
	"semandaq/internal/engine"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/sqlgen"
)

// ConfirmedWeight is the cell weight assigned to user-confirmed values;
// it makes the repair engine treat them as (almost) immutable relative
// to default-weight cells.
const ConfirmedWeight = engine.ConfirmedWeight

// Project is a Semandaq session: one relation, one CFD set, cell
// confidence state, and the latest candidate repair. It delegates to an
// engine.Session with the default worker pool (NumCPU); parallel and
// serial detection return identical results, so the facade's behavior
// is unchanged from the original single-threaded implementation.
type Project struct {
	s *engine.Session
}

// NewProject opens a project. The constraint set must match the data's
// schema and be satisfiable (an unsatisfiable set cannot be repaired
// to).
func NewProject(name string, data *relation.Relation, set *cfd.Set) (*Project, error) {
	s, err := engine.NewSession(name, data, set, 0)
	if err != nil {
		return nil, err
	}
	return &Project{s: s}, nil
}

// Session exposes the underlying engine session, for callers graduating
// from the single-user facade to the concurrent service API.
func (p *Project) Session() *engine.Session { return p.s }

// Name returns the project name.
func (p *Project) Name() string { return p.s.Name() }

// Data returns the current working relation (aliased; treat as
// read-only and use Edit for changes).
func (p *Project) Data() *relation.Relation { return p.s.Data() }

// Constraints returns the project's CFD set.
func (p *Project) Constraints() *cfd.Set { return p.s.Constraints() }

// Detect runs native violation detection on the current data.
func (p *Project) Detect() ([]cfd.Violation, error) { return p.s.Detect() }

// DetectSQL runs the TODS 2008 SQL-based detection on the current data
// and returns the violating TIDs. The result always equals
// cfd.ViolatingTIDs of Detect (cross-checked by tests).
func (p *Project) DetectSQL() ([]int, error) {
	data := p.s.Data()
	rn := sqlgen.NewRunner()
	if _, err := rn.Load(data.Schema().Name(), data); err != nil {
		return nil, err
	}
	return rn.DetectSet(p.s.Constraints(), data.Schema().Name())
}

// Repair computes (and caches) a candidate repair of the current data;
// it does NOT modify the data — inspect the result and call Accept, or
// edit cells and re-run.
func (p *Project) Repair() (*repair.Result, error) { return p.s.Repair() }

// Candidate returns the cached candidate repair (nil before Repair).
func (p *Project) Candidate() *repair.Result { return p.s.Candidate() }

// Accept commits the cached candidate repair as the current data.
func (p *Project) Accept() error { return p.s.Accept() }

// Edit is the demo's manual override: the user sets a cell to a value
// and the cell becomes confirmed, so subsequent repairs treat it as
// ground truth and resolve conflicts by changing other cells.
func (p *Project) Edit(tid, attr int, v relation.Value) error { return p.s.Edit(tid, attr, v) }

// Confirm marks a cell's current value as user-verified without
// changing it.
func (p *Project) Confirm(tid, attr int) error { return p.s.Confirm(tid, attr) }

// ConfirmedCells returns the confirmed cells, sorted.
func (p *Project) ConfirmedCells() [][2]int { return p.s.ConfirmedCells() }

// Append inserts new tuples and repairs only them incrementally
// (IncRepair), assuming the current data is clean; it returns the
// repair result and commits it.
func (p *Project) Append(tuples []relation.Tuple) (*repair.Result, error) {
	return p.s.Append(tuples)
}

// Summary renders a short project status report.
func (p *Project) Summary() (string, error) { return p.s.Summary() }

// FormatChanges renders a candidate repair's change list for review.
func FormatChanges(r *relation.Relation, changes []repair.Change, limit int) string {
	return engine.FormatChanges(r, changes, limit)
}
