package semandaq

import (
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
)

func project(t *testing.T, n int, seed int64) *Project {
	t.Helper()
	data := datagen.Cust(n, seed)
	p, err := NewProject("test", data, datagen.CustConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProjectValidation(t *testing.T) {
	data := datagen.Cust(10, 1)
	other, _ := relation.StringSchema("other", "A")
	if _, err := NewProject("x", data, cfd.NewSet(other)); err == nil {
		t.Error("schema mismatch should fail")
	}
	// Unsatisfiable constraints are rejected up front.
	bad, err := cfd.ParseSet(`
cust([CC] -> [CT='a'])
cust([CC] -> [CT='b'])
`, data.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProject("x", data, bad); err == nil {
		t.Error("unsatisfiable set should be rejected")
	}
}

func TestDetectCleanAndDirty(t *testing.T) {
	p := project(t, 500, 1)
	vs, err := p.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean project has %d violations", len(vs))
	}
	// Dirty one cell through Edit-free backdoor (simulating load of
	// dirty data): use Edit, which also confirms — then detection sees it.
	ct := p.Data().Schema().MustIndex("CT")
	if err := p.Edit(0, ct, relation.String("WRONGCITY")); err != nil {
		t.Fatal(err)
	}
	vs, err = p.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("edited-in inconsistency not detected")
	}
}

func TestSQLAndNativeDetectionAgree(t *testing.T) {
	data := datagen.Cust(400, 2)
	str := data.Schema().MustIndex("STR")
	ct := data.Schema().MustIndex("CT")
	dirty, _ := noise.Dirty(data, noise.Options{Rate: 0.05, Attrs: []int{str, ct}, Seed: 3})
	p, err := NewProject("x", dirty, datagen.CustConstraints())
	if err != nil {
		t.Fatal(err)
	}
	native, err := p.Detect()
	if err != nil {
		t.Fatal(err)
	}
	nativeTIDs := cfd.ViolatingTIDs(native)
	sqlTIDs, err := p.DetectSQL()
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlTIDs) != len(nativeTIDs) {
		t.Fatalf("SQL %d tids vs native %d", len(sqlTIDs), len(nativeTIDs))
	}
	for i := range sqlTIDs {
		if sqlTIDs[i] != nativeTIDs[i] {
			t.Fatalf("tid mismatch at %d: %d vs %d", i, sqlTIDs[i], nativeTIDs[i])
		}
	}
}

func TestRepairAcceptWorkflow(t *testing.T) {
	data := datagen.Cust(600, 4)
	str := data.Schema().MustIndex("STR")
	dirty, _ := noise.Dirty(data, noise.Options{Rate: 0.05, Attrs: []int{str}, Seed: 5})
	p, err := NewProject("x", dirty, datagen.CustConstraints())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if p.Candidate() != res {
		t.Error("candidate not cached")
	}
	// Data unchanged until Accept.
	vs, _ := p.Detect()
	if len(vs) == 0 {
		t.Fatal("repair should not mutate data before Accept")
	}
	if err := p.Accept(); err != nil {
		t.Fatal(err)
	}
	vs, _ = p.Detect()
	if len(vs) != 0 {
		t.Fatalf("%d violations after Accept", len(vs))
	}
	if err := p.Accept(); err == nil {
		t.Error("double Accept should fail")
	}
}

func TestUserEditSteersRepair(t *testing.T) {
	// The §5 demo loop: the system proposes a repair; the user overrides
	// a cell; re-repair respects the override and fixes the OTHER side
	// of the conflict.
	s := datagen.CustSchema()
	set, err := cfd.ParseSet("cfd phi1: cust([CC='44', ZIP] -> [STR])", s)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	mk := func(pn, str string) relation.Tuple {
		return relation.Tuple{
			relation.String("44"), relation.String("131"), relation.String(pn),
			relation.String("nm"), relation.String(str), relation.String("edi"),
			relation.String("EH1"),
		}
	}
	r.MustInsert(mk("1", "street a"))
	r.MustInsert(mk("2", "street b"))
	r.MustInsert(mk("3", "street b")) // majority is b
	p, err := NewProject("demo", r, set)
	if err != nil {
		t.Fatal(err)
	}
	str := s.MustIndex("STR")

	// Without user input the majority value wins.
	res, err := p.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Repaired.Get(0, str).Str(); got != "street b" {
		t.Fatalf("majority repair = %q, want street b", got)
	}

	// The user insists tuple 0's street is correct; repair must now move
	// the other tuples to "street a" despite the majority.
	if err := p.Confirm(0, str); err != nil {
		t.Fatal(err)
	}
	res, err = p.Repair()
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 3; tid++ {
		if got := res.Repaired.Get(tid, str).Str(); got != "street a" {
			t.Fatalf("confirmed repair: tuple %d = %q, want street a", tid, got)
		}
	}
	if err := repair.Verify(res, set); err != nil {
		t.Fatal(err)
	}
}

func TestEditInvalidatesCandidate(t *testing.T) {
	p := project(t, 100, 6)
	if _, err := p.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := p.Edit(0, 0, relation.String("07")); err != nil {
		t.Fatal(err)
	}
	if p.Candidate() != nil {
		t.Error("edit should invalidate the cached candidate")
	}
	if err := p.Edit(-1, 0, relation.String("x")); err == nil {
		t.Error("out-of-range edit should fail")
	}
	if err := p.Edit(0, 99, relation.String("x")); err == nil {
		t.Error("out-of-range attr should fail")
	}
}

func TestAppendIncremental(t *testing.T) {
	p := project(t, 300, 7)
	before := p.Data().Len()
	// A new UK tuple with a wrong street for an existing zip group: the
	// incremental path must fix it against the base.
	base := p.Data().Tuple(0).Clone()
	str := p.Data().Schema().MustIndex("STR")
	pn := p.Data().Schema().MustIndex("PN")
	wrong := base.Clone()
	wrong[pn] = relation.String("fresh-pn")
	wrong[str] = relation.String("NO SUCH STREET")
	res, err := p.Append([]relation.Tuple{wrong})
	if err != nil {
		t.Fatal(err)
	}
	if p.Data().Len() != before+1 {
		t.Fatalf("append length %d, want %d", p.Data().Len(), before+1)
	}
	vs, err := p.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("%d violations after incremental append", len(vs))
	}
	if got := p.Data().Get(before, str); got.Str() != base[str].Str() {
		t.Errorf("appended street = %q, want base %q", got.Str(), base[str].Str())
	}
	_ = res
}

func TestSummaryAndFormatChanges(t *testing.T) {
	p := project(t, 50, 8)
	ct := p.Data().Schema().MustIndex("CT")
	if err := p.Edit(0, ct, relation.String("WRONG")); err != nil {
		t.Fatal(err)
	}
	sum, err := p.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"project test", "constraints:", "violations:", "confirmed cells: 1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	changes := []repair.Change{
		{TID: 3, Attr: ct, From: relation.String("a"), To: relation.String("b")},
		{TID: 4, Attr: ct, From: relation.String("c"), To: relation.String("d")},
	}
	out := FormatChanges(p.Data(), changes, 1)
	if !strings.Contains(out, "tuple 3") || !strings.Contains(out, "1 more") {
		t.Errorf("FormatChanges = %q", out)
	}
}

func TestConfirmedCellsSorted(t *testing.T) {
	p := project(t, 20, 9)
	p.Confirm(5, 2)
	p.Confirm(1, 3)
	p.Confirm(1, 1)
	cells := p.ConfirmedCells()
	want := [][2]int{{1, 1}, {1, 3}, {5, 2}}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("cells = %v", cells)
		}
	}
}
