package semandaq

import (
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/noise"
)

// TestHospWorkflowEndToEnd runs the full pipeline on the second dataset
// family: generate, dirty, detect (both paths), repair, verify, then
// check the planted rules are rediscoverable from the repaired data.
func TestHospWorkflowEndToEnd(t *testing.T) {
	clean := datagen.Hosp(2000, 5)
	set := datagen.HospConstraints()
	schema := clean.Schema()
	dirty, truth := noise.Dirty(clean, noise.Options{
		Rate:  0.04,
		Attrs: []int{schema.MustIndex("CITY"), schema.MustIndex("STATE"), schema.MustIndex("PHONE")},
		Seed:  6,
	})

	p, err := NewProject("hosp", dirty, set)
	if err != nil {
		t.Fatal(err)
	}
	native, err := p.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(native) == 0 {
		t.Fatal("dirty hosp data should violate")
	}
	sqlTIDs, err := p.DetectSQL()
	if err != nil {
		t.Fatal(err)
	}
	nativeTIDs := cfd.ViolatingTIDs(native)
	if len(sqlTIDs) != len(nativeTIDs) {
		t.Fatalf("SQL %d vs native %d violating tuples", len(sqlTIDs), len(nativeTIDs))
	}

	res, err := p.Repair()
	if err != nil {
		t.Fatal(err)
	}
	q := noise.Score(res.Changes, truth)
	if q.Recall < 0.6 || q.Precision < 0.6 {
		t.Errorf("hosp repair quality too low: %+v", q)
	}
	if err := p.Accept(); err != nil {
		t.Fatal(err)
	}
	vs, _ := p.Detect()
	if len(vs) != 0 {
		t.Fatalf("%d violations after repair", len(vs))
	}

	// Profiling the repaired data should find ZIP -> STATE again.
	fds, err := discovery.FDs(p.Data(), discovery.Options{MinSupport: 5, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range fds {
		if len(c.LHSNames()) == 1 && c.LHSNames()[0] == "ZIP" && c.RHSNames()[0] == "STATE" {
			found = true
		}
	}
	if !found {
		t.Error("ZIP -> STATE not rediscovered from repaired data")
	}
}

// TestPropagationAfterRepair checks the downstream story: repair the
// source, then the propagated constraints hold on a materialized view of
// the repaired data.
func TestPropagationAfterRepair(t *testing.T) {
	clean := datagen.Cust(1500, 8)
	set := datagen.CustConstraints()
	schema := clean.Schema()
	dirty, _ := noise.Dirty(clean, noise.Options{
		Rate:  0.05,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  9,
	})
	p, err := NewProject("prop", dirty, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := p.Accept(); err != nil {
		t.Fatal(err)
	}

	view := cfd.View{
		Name:    "uk",
		Source:  schema,
		Project: []string{"ZIP", "STR", "CT"},
		Select:  map[string]string{"CC": "44"},
	}
	prop, err := cfd.Propagate(set, view)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Len() == 0 {
		t.Fatal("no constraints propagated")
	}
	mat, err := view.Materialize(p.Data())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := cfd.NewDetector(prop).Detect(mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("propagated constraints violated on the view of repaired data: %v", vs)
	}
}

// TestDiscoveryFeedsRepair closes the profiling loop: discover CFDs from
// a clean sample, then use them to repair a dirty instance of the same
// process.
func TestDiscoveryFeedsRepair(t *testing.T) {
	sample := datagen.Cust(2000, 10)
	discovered, err := discovery.VariableCFDs(sample, discovery.Options{MinSupport: 20, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Keep rules over (CC, ZIP) -> STR shaped dependencies only, to stay
	// within what the noise below breaks.
	set := cfd.NewSet(sample.Schema())
	for _, c := range discovered {
		names := c.LHSNames()
		if len(names) == 2 && c.RHSNames()[0] == "STR" {
			set.MustAdd(c)
		}
	}
	if set.Len() == 0 {
		t.Skip("no suitable discovered rules in this configuration")
	}
	clean := datagen.Cust(1000, 11)
	schema := clean.Schema()
	dirty, truth := noise.Dirty(clean, noise.Options{
		Rate:  0.03,
		Attrs: []int{schema.MustIndex("STR")},
		Seed:  12,
	})
	p, err := NewProject("disc", dirty, set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Repair()
	if err != nil {
		t.Fatal(err)
	}
	q := noise.Score(res.Changes, truth)
	// Discovered rules from an independent sample still fix a good
	// share of the injected noise.
	if q.Corrected == 0 {
		t.Errorf("discovered rules repaired nothing: %+v", q)
	}
	if err := p.Accept(); err != nil {
		t.Fatal(err)
	}
	if vs, _ := p.Detect(); len(vs) != 0 {
		t.Fatalf("%d violations remain", len(vs))
	}
}
