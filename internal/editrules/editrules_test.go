package editrules

import (
	"strings"
	"testing"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Schemas for the canonical master-data scenario: an input tuple with a
// verified zip gets its city and state corrected from the master
// address registry.
func schemas(t *testing.T) (input, master *relation.Schema) {
	t.Helper()
	input, _ = relation.StringSchema("person", "name", "zip", "city", "state", "phone")
	master, _ = relation.StringSchema("addr", "mzip", "mcity", "mstate")
	return input, master
}

func masterData(t *testing.T, master *relation.Schema) *relation.Relation {
	t.Helper()
	m := relation.New(master)
	st := func(vals ...string) relation.Tuple {
		tp := make(relation.Tuple, len(vals))
		for i, v := range vals {
			tp[i] = relation.String(v)
		}
		return tp
	}
	m.MustInsert(st("07974", "murray hill", "nj"))
	m.MustInsert(st("10012", "new york", "ny"))
	m.MustInsert(st("EH4", "edinburgh", "sct"))
	return m
}

func zipRule(t *testing.T, input, master *relation.Schema) *Rule {
	t.Helper()
	r, err := NewRule("zip2city", input, master,
		[]string{"zip"}, []string{"mzip"},
		nil, nil,
		[]string{"city", "state"}, []string{"mcity", "mstate"})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCertainFixBasic(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	f, err := NewFixer(m, []*Rule{zipRule(t, input, master)})
	if err != nil {
		t.Fatal(err)
	}
	tup := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("WRONG CITY"), relation.String("zz"), relation.String("555"),
	}
	zip := input.MustIndex("zip")
	fixed, fixes, err := f.CertainFix(tup, []int{zip})
	if err != nil {
		t.Fatal(err)
	}
	if fixed[input.MustIndex("city")].Str() != "murray hill" {
		t.Errorf("city = %v", fixed[input.MustIndex("city")])
	}
	if fixed[input.MustIndex("state")].Str() != "nj" {
		t.Errorf("state = %v", fixed[input.MustIndex("state")])
	}
	if len(fixes) != 2 {
		t.Errorf("fixes = %v", fixes)
	}
	// Input untouched.
	if tup[input.MustIndex("city")].Str() != "WRONG CITY" {
		t.Error("CertainFix modified its input")
	}
}

func TestCertainFixRequiresValidatedEvidence(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	f, _ := NewFixer(m, []*Rule{zipRule(t, input, master)})
	tup := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("WRONG"), relation.String("zz"), relation.String("555"),
	}
	// zip not validated: the rule must not fire (the zip itself might be
	// the error).
	fixed, fixes, err := f.CertainFix(tup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) != 0 || fixed[input.MustIndex("city")].Str() != "WRONG" {
		t.Errorf("rule fired without validated evidence: %v", fixes)
	}
}

func TestCertainFixChaining(t *testing.T) {
	// Rule 2 uses the city fixed by rule 1 as evidence: validation must
	// propagate through fixes.
	input, _ := relation.StringSchema("person", "name", "zip", "city", "region")
	master1, _ := relation.StringSchema("addr", "mzip", "mcity")
	master2, _ := relation.StringSchema("geo", "gcity", "gregion")

	m1 := relation.New(master1)
	m1.MustInsert(relation.Tuple{relation.String("07974"), relation.String("murray hill")})
	m2 := relation.New(master2)
	m2.MustInsert(relation.Tuple{relation.String("murray hill"), relation.String("northeast")})

	// The two rules have different master schemas, so use two fixers in
	// sequence — chaining validated outputs across fixers.
	r1, err := NewRule("zip2city", input, master1,
		[]string{"zip"}, []string{"mzip"}, nil, nil,
		[]string{"city"}, []string{"mcity"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRule("city2region", input, master2,
		[]string{"city"}, []string{"gcity"}, nil, nil,
		[]string{"region"}, []string{"gregion"})
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := NewFixer(m1, []*Rule{r1})
	f2, _ := NewFixer(m2, []*Rule{r2})

	tup := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("???"), relation.String("???"),
	}
	zip := input.MustIndex("zip")
	city := input.MustIndex("city")
	fixed, fixes1, err := f1.CertainFix(tup, []int{zip})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes1) != 1 {
		t.Fatalf("fixes1 = %v", fixes1)
	}
	fixed2, fixes2, err := f2.CertainFix(fixed, []int{zip, city})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes2) != 1 || fixed2[input.MustIndex("region")].Str() != "northeast" {
		t.Fatalf("chained fix failed: %v, %v", fixes2, fixed2)
	}
}

func TestCertainFixConflictingMasters(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	// Second master tuple with the same zip but a different city: the
	// fix is no longer certain.
	m.MustInsert(relation.Tuple{
		relation.String("07974"), relation.String("berkeley heights"), relation.String("nj"),
	})
	f, _ := NewFixer(m, []*Rule{zipRule(t, input, master)})
	tup := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("x"), relation.String("y"), relation.String("z"),
	}
	_, _, err := f.CertainFix(tup, []int{input.MustIndex("zip")})
	if err == nil || !strings.Contains(err.Error(), "no certain fix") {
		t.Fatalf("conflicting masters should abort: %v", err)
	}
}

func TestCertainFixContradictsValidated(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	f, _ := NewFixer(m, []*Rule{zipRule(t, input, master)})
	tup := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("somewhere else"), relation.String("nj"), relation.String("555"),
	}
	// The user validated the (wrong per master) city: contradiction.
	_, _, err := f.CertainFix(tup, []int{input.MustIndex("zip"), input.MustIndex("city")})
	if err == nil || !strings.Contains(err.Error(), "validated") {
		t.Fatalf("contradiction with validated region should abort: %v", err)
	}
}

func TestCertainFixWithPattern(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	// Rule restricted to UK-style zips via a pattern on zip itself.
	r, err := NewRule("uk-only", input, master,
		[]string{"zip"}, []string{"mzip"},
		[]string{"zip"}, pattern.Row{pattern.ConstStr("EH4")},
		[]string{"city"}, []string{"mcity"})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewFixer(m, []*Rule{r})
	zip := input.MustIndex("zip")
	us := relation.Tuple{
		relation.String("joe"), relation.String("07974"),
		relation.String("wrong"), relation.String("nj"), relation.String("5"),
	}
	_, fixes, err := f.CertainFix(us, []int{zip})
	if err != nil || len(fixes) != 0 {
		t.Fatalf("US tuple should be out of scope: %v %v", fixes, err)
	}
	uk := relation.Tuple{
		relation.String("amy"), relation.String("EH4"),
		relation.String("wrong"), relation.String("sct"), relation.String("5"),
	}
	fixed, fixes, err := f.CertainFix(uk, []int{zip})
	if err != nil || len(fixes) != 1 {
		t.Fatalf("UK tuple should be fixed: %v %v", fixes, err)
	}
	if fixed[input.MustIndex("city")].Str() != "edinburgh" {
		t.Errorf("city = %v", fixed[input.MustIndex("city")])
	}
}

func TestFixRelation(t *testing.T) {
	input, master := schemas(t)
	m := masterData(t, master)
	// Add a conflicting master zip so one tuple becomes uncertain.
	m.MustInsert(relation.Tuple{
		relation.String("10012"), relation.String("manhattan"), relation.String("ny"),
	})
	f, _ := NewFixer(m, []*Rule{zipRule(t, input, master)})
	rel := relation.New(input)
	mk := func(name, zip, city string) relation.Tuple {
		return relation.Tuple{
			relation.String(name), relation.String(zip),
			relation.String(city), relation.String("?"), relation.String("5"),
		}
	}
	rel.MustInsert(mk("a", "07974", "bad city"))
	rel.MustInsert(mk("b", "10012", "whatever")) // conflicting master: uncertain
	rel.MustInsert(mk("c", "absent", "keep"))    // no master match: untouched
	fixed, fixes, uncertain, err := f.FixRelation(rel, []int{input.MustIndex("zip")})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes[0]) == 0 {
		t.Error("tuple 0 should be fixed")
	}
	if fixed.Get(0, input.MustIndex("city")).Str() != "murray hill" {
		t.Errorf("tuple 0 city = %v", fixed.Get(0, input.MustIndex("city")))
	}
	if len(uncertain) != 1 || uncertain[0] != 1 {
		t.Errorf("uncertain = %v, want [1]", uncertain)
	}
	if fixed.Get(2, input.MustIndex("city")).Str() != "keep" {
		t.Error("tuple 2 should be untouched")
	}
}

func TestRuleValidation(t *testing.T) {
	input, master := schemas(t)
	if _, err := NewRule("x", input, master, nil, nil, nil, nil, []string{"city"}, []string{"mcity"}); err == nil {
		t.Error("empty match should fail")
	}
	if _, err := NewRule("x", input, master, []string{"zip"}, []string{"mzip"}, nil, nil, nil, nil); err == nil {
		t.Error("empty fix should fail")
	}
	if _, err := NewRule("x", input, master, []string{"zip"}, []string{"mzip"}, nil, nil,
		[]string{"zip"}, []string{"mzip"}); err == nil {
		t.Error("fix overlapping match should fail")
	}
	if _, err := NewRule("x", input, master, []string{"nope"}, []string{"mzip"}, nil, nil,
		[]string{"city"}, []string{"mcity"}); err == nil {
		t.Error("unknown attribute should fail")
	}
	m := masterData(t, master)
	if _, err := NewFixer(m, nil); err == nil {
		t.Error("no rules should fail")
	}
}
