// Package editrules implements repairing with editing rules and master
// data — the direction §6(b) of the tutorial lists as an open problem
// ("database repairs in master data management"), subsequently developed
// by the same group as "certain fixes" (Fan, Li, Ma, Tang, Yu: Towards
// certain fixes with editing rules and master data, VLDB 2010).
//
// An editing rule σ = ((X, Xm) → (B, Bm), tp) says: when an input tuple
// t matches the pattern tp and agrees with a master tuple s on the
// correlated lists (t[X] = s[Xm]), then t[B] must be corrected to
// s[Bm] — the master database is assumed correct and complete.
//
// Unlike the heuristic CFD repairs of the repair package, fixes here are
// CERTAIN: a fix is applied only when it is uniquely determined by the
// master data and the validated region of the tuple (the attributes the
// user has asserted correct). Validated attributes grow monotonically as
// rules fire, which lets rules chain; any ambiguity (two master tuples
// demanding different values) aborts with an error rather than guessing.
package editrules

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Rule is one editing rule.
type Rule struct {
	name   string
	input  *relation.Schema
	master *relation.Schema

	matchIn     []int // X: input attributes matched against the master
	matchMaster []int // Xm: corresponding master attributes

	patAttrs []int       // Xp: input attributes constrained by the pattern
	pats     pattern.Row // tp: constants/wildcards over Xp

	fixIn     []int // B: input attributes to correct
	fixMaster []int // Bm: master attributes supplying the corrections
}

// NewRule constructs an editing rule. Correlated and fix lists must be
// non-empty, pairwise equal length, and fix targets must not overlap the
// match attributes (a rule must not overwrite its own evidence).
func NewRule(name string, input, master *relation.Schema,
	matchIn, matchMaster []string,
	patNames []string, pats pattern.Row,
	fixIn, fixMaster []string) (*Rule, error) {

	if len(matchIn) == 0 || len(matchIn) != len(matchMaster) {
		return nil, fmt.Errorf("editrules %s: match lists must be non-empty and equal length", name)
	}
	if len(fixIn) == 0 || len(fixIn) != len(fixMaster) {
		return nil, fmt.Errorf("editrules %s: fix lists must be non-empty and equal length", name)
	}
	if len(patNames) != len(pats) {
		return nil, fmt.Errorf("editrules %s: pattern width mismatch", name)
	}
	mi, err := input.Indexes(matchIn...)
	if err != nil {
		return nil, fmt.Errorf("editrules %s: %w", name, err)
	}
	mm, err := master.Indexes(matchMaster...)
	if err != nil {
		return nil, fmt.Errorf("editrules %s: %w", name, err)
	}
	pa, err := input.Indexes(patNames...)
	if err != nil {
		return nil, fmt.Errorf("editrules %s: %w", name, err)
	}
	fi, err := input.Indexes(fixIn...)
	if err != nil {
		return nil, fmt.Errorf("editrules %s: %w", name, err)
	}
	fm, err := master.Indexes(fixMaster...)
	if err != nil {
		return nil, fmt.Errorf("editrules %s: %w", name, err)
	}
	inMatch := map[int]bool{}
	for _, a := range mi {
		inMatch[a] = true
	}
	for _, a := range fi {
		if inMatch[a] {
			return nil, fmt.Errorf("editrules %s: fix attribute %s overlaps the match premise",
				name, input.Attr(a).Name)
		}
	}
	return &Rule{
		name: name, input: input, master: master,
		matchIn: mi, matchMaster: mm,
		patAttrs: pa, pats: pats.Clone(),
		fixIn: fi, fixMaster: fm,
	}, nil
}

// Name returns the rule's identifier.
func (r *Rule) Name() string { return r.name }

// String renders the rule.
func (r *Rule) String() string {
	var b strings.Builder
	if r.name != "" {
		b.WriteString("edit ")
		b.WriteString(r.name)
		b.WriteString(": ")
	}
	b.WriteString("if ")
	for i := range r.matchIn {
		if i > 0 {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "t.%s = m.%s",
			r.input.Attr(r.matchIn[i]).Name, r.master.Attr(r.matchMaster[i]).Name)
	}
	for i, a := range r.patAttrs {
		fmt.Fprintf(&b, " and t.%s matches %s", r.input.Attr(a).Name, r.pats[i])
	}
	b.WriteString(" then ")
	for i := range r.fixIn {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "t.%s := m.%s",
			r.input.Attr(r.fixIn[i]).Name, r.master.Attr(r.fixMaster[i]).Name)
	}
	return b.String()
}

// Fix records one applied correction.
type Fix struct {
	Rule string
	Attr int
	From relation.Value
	To   relation.Value
}

// Fixer applies a rule set against a master relation.
type Fixer struct {
	master *relation.Relation
	rules  []*Rule
	// indexes caches the master's partitions on each rule's match
	// attributes; rules sharing a correlated list share one PLI, and the
	// cache revalidates against the master on every fix, so edits to the
	// master between fixes are picked up instead of served stale.
	indexes *relation.IndexCache
}

// NewFixer validates the rules against the master relation and builds
// the lookup indexes.
func NewFixer(master *relation.Relation, rules []*Rule) (*Fixer, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("editrules: at least one rule required")
	}
	f := &Fixer{master: master, rules: rules, indexes: relation.NewIndexCache()}
	for _, r := range rules {
		if !r.master.Equal(master.Schema()) {
			return nil, fmt.Errorf("editrules: rule %s is over master schema %s, relation is %s",
				r.name, r.master.Name(), master.Schema().Name())
		}
		f.indexes.Get(master, r.matchMaster)
	}
	return f, nil
}

// CertainFix corrects the tuple using the rules and master data.
// validated lists the attribute positions the caller asserts correct
// (e.g. user-verified fields); only validated attributes can serve as
// rule evidence, and every fixed attribute becomes validated, letting
// rules chain. The input tuple is not modified.
//
// CertainFix errors when rules conflict: a rule matches several master
// tuples disagreeing on a fix value, two rules demand different values,
// or a rule contradicts an already-validated attribute — in each case no
// CERTAIN fix exists and a human must intervene.
func (f *Fixer) CertainFix(t relation.Tuple, validated []int) (relation.Tuple, []Fix, error) {
	if len(t) != f.rules[0].input.Arity() {
		return nil, nil, fmt.Errorf("editrules: tuple arity %d does not match schema %s", len(t), f.rules[0].input)
	}
	out := t.Clone()
	valid := map[int]bool{}
	for _, a := range validated {
		if a < 0 || a >= len(t) {
			return nil, nil, fmt.Errorf("editrules: validated attribute %d out of range", a)
		}
		valid[a] = true
	}
	var fixes []Fix
	for changed := true; changed; {
		changed = false
		for _, rule := range f.rules {
			// Evidence must be validated.
			ok := true
			for _, a := range rule.matchIn {
				if !valid[a] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, a := range rule.patAttrs {
				if !valid[a] {
					ok = false
					break
				}
			}
			if !ok || !rule.pats.Matches(out, rule.patAttrs) {
				continue
			}
			// NULL evidence never matches master values.
			hasNull := false
			for _, a := range rule.matchIn {
				if out[a].IsNull() {
					hasNull = true
					break
				}
			}
			if hasNull {
				continue
			}
			masters := f.indexes.Get(f.master, rule.matchMaster).Lookup(out.Project(rule.matchIn))
			if len(masters) == 0 {
				continue
			}
			// All matching master tuples must agree on every fix value.
			for bi, attr := range rule.fixIn {
				want := f.master.Tuple(masters[0])[rule.fixMaster[bi]]
				for _, mid := range masters[1:] {
					got := f.master.Tuple(mid)[rule.fixMaster[bi]]
					if !got.Identical(want) {
						return nil, nil, fmt.Errorf(
							"editrules: rule %s matches master tuples disagreeing on %s (%s vs %s); no certain fix",
							rule.name, rule.input.Attr(attr).Name, want, got)
					}
				}
				if valid[attr] {
					if !out[attr].Identical(want) {
						return nil, nil, fmt.Errorf(
							"editrules: rule %s demands %s=%s but the attribute is validated as %s; no certain fix",
							rule.name, rule.input.Attr(attr).Name, want, out[attr])
					}
					continue
				}
				if !out[attr].Identical(want) {
					fixes = append(fixes, Fix{Rule: rule.name, Attr: attr, From: out[attr], To: want})
					out[attr] = want
				}
				valid[attr] = true
				changed = true
			}
		}
	}
	sort.Slice(fixes, func(i, j int) bool { return fixes[i].Attr < fixes[j].Attr })
	return out, fixes, nil
}

// FixRelation applies CertainFix to every tuple of rel with the same
// initially-validated attributes, returning a corrected copy and the
// per-tuple fixes. Tuples whose fix is uncertain are left unchanged and
// reported in uncertain.
func (f *Fixer) FixRelation(rel *relation.Relation, validated []int) (*relation.Relation, map[int][]Fix, []int, error) {
	if !rel.Schema().Equal(f.rules[0].input) {
		return nil, nil, nil, fmt.Errorf("editrules: relation schema %s does not match rules", rel.Schema().Name())
	}
	out := rel.Clone()
	all := map[int][]Fix{}
	var uncertain []int
	for tid := 0; tid < rel.Len(); tid++ {
		fixed, fixes, err := f.CertainFix(rel.Tuple(tid), validated)
		if err != nil {
			uncertain = append(uncertain, tid)
			continue
		}
		if len(fixes) > 0 {
			for attr := range fixed {
				out.Set(tid, attr, fixed[attr])
			}
			all[tid] = fixes
		}
	}
	return out, all, uncertain, nil
}
