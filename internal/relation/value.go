// Package relation provides the typed relational substrate used by every
// constraint, repair, discovery and matching module in this repository.
//
// It implements schemas, typed values, tuples, in-memory relations,
// hash indexes and CSV import/export. The design goal is a small but
// complete core on which the SQL-based detection techniques of
// Fan et al. (TODS 2008) and the repair algorithms of Cong et al.
// (VLDB 2007) can be expressed faithfully.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind so that the zero
// Value is the SQL NULL.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name ("string", "int", "float", "null") to a
// Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text":
		return KindString, nil
	case "int", "integer":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a typed relational value. The zero Value is NULL.
//
// Value is a comparable struct, so it can be used directly as a map key;
// equality via == coincides with Equal for values of the same kind.
type Value struct {
	kind Kind
	s    string
	n    int64
	f    float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer value.
func Int(n int64) Value { return Value{kind: KindInt, n: n} }

// Float returns a floating-point value. Negative zero is normalized to
// positive zero: -0.0 == 0.0 (so Identical treats them as one value)
// but they render — and therefore Encode — differently, and the
// code-based grouping fast paths require that Identical values of one
// kind share one encoding.
func Float(f float64) Value {
	if f == 0 {
		f = 0
	}
	return Value{kind: KindFloat, f: f}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.n }

// FloatVal returns the float payload. For KindInt it returns the integer
// converted to float64, which makes numeric comparisons uniform.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.n)
	}
	return v.f
}

// Equal reports whether two values are equal. NULL is not equal to
// anything, including NULL (SQL semantics); use IsNull to test for NULL.
// Numeric values of different kinds compare by numeric value.
func (v Value) Equal(w Value) bool {
	if v.kind == KindNull || w.kind == KindNull {
		return false
	}
	if v.kind == w.kind {
		switch v.kind {
		case KindString:
			return v.s == w.s
		case KindInt:
			return v.n == w.n
		case KindFloat:
			return v.f == w.f
		}
	}
	if v.isNumeric() && w.isNumeric() {
		return v.FloatVal() == w.FloatVal()
	}
	return false
}

// Identical reports whether two values are indistinguishable, treating
// NULL as identical to NULL. This is the notion used for grouping and
// map keys, as opposed to the SQL equality of Equal.
func (v Value) Identical(w Value) bool {
	if v.kind == KindNull && w.kind == KindNull {
		return true
	}
	return v.Equal(w)
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsNaN reports whether v is a floating NaN — the one value that is
// never Identical to itself, and therefore the one case where equal
// dictionary codes cannot certify agreement (code-compare fast paths
// must fall back to Identical for it).
func (v Value) IsNaN() bool {
	return v.kind == KindFloat && v.f != v.f
}

// Compare returns -1, 0 or +1 ordering v relative to w. NULL sorts before
// everything; across kinds the order is null < numeric < string.
func (v Value) Compare(w Value) int {
	if v.kind == KindNull || w.kind == KindNull {
		switch {
		case v.kind == KindNull && w.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.isNumeric() && w.isNumeric() {
		a, b := v.FloatVal(), w.FloatVal()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.isNumeric() != w.isNumeric() {
		if v.isNumeric() {
			return -1
		}
		return 1
	}
	return strings.Compare(v.s, w.s)
}

// String renders the value for display. NULL renders as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// Encode appends a self-delimiting, prefix-free binary encoding of v to
// dst, used for composite grouping keys (and as the interning key of the
// columnar dictionaries, so per-column codes coincide with Encode
// equality). Within a single kind (plus NULL) the encoding agrees
// exactly with Identical: equal values encode equally and distinct
// values encode distinctly. Across numeric kinds, Int(9) and Float(9)
// are Identical but encode differently; relation columns are
// kind-uniform by construction (Insert coerces ints into float columns
// and rejects other mixtures), so per-column keys are exact —
// TestInternNoIdenticalCollision and TestPLIMatchesHashIndex are the
// regression tests for this invariant, and Relation.LookupCode handles
// the residual mixed-kind case (unchecked Set writes) explicitly.
//
// Prefix-freedom (strings are length-prefixed with a ':' delimiter that
// can never be a length digit; numbers are fixed-width 8-byte payloads;
// the kind byte leads) guarantees that comparing concatenated keys
// lexicographically equals comparing them component-wise, which BuildPLI
// relies on to order groups without materializing keys.
//
// For numeric kinds the encoding is additionally ORDER-PRESERVING: for
// two values of one numeric kind, lexicographic byte order of the
// encodings equals numeric order (ints via big-endian two's complement
// with the sign bit flipped; floats via the IEEE 754 total-order bit
// trick, with Float's -0 → +0 normalization keeping the map injective,
// and NaN sorting after +Inf). NULL's lone kind byte 0 sorts before
// every non-NULL encoding, matching Value.Compare. Relation.codeRanks
// therefore ranks null-or-numeric columns in exact value order — the
// guarantee the denial-constraint inequality sweeps (internal/dc) build
// on, property-tested by TestCodeRankOrderMatchesValueOrder. String
// encodings are NOT order-preserving (the length prefix trades order
// for cheap prefix-freedom), which is why the DC compiler restricts
// order predicates to numeric columns.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindString:
		dst = append(dst, strconv.Itoa(len(v.s))...)
		dst = append(dst, ':')
		dst = append(dst, v.s...)
	case KindInt:
		dst = appendOrdered64(dst, uint64(v.n)^(1<<63))
	case KindFloat:
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negatives: reverse order, below positives
		} else {
			bits |= 1 << 63 // positives: above all negatives
		}
		dst = appendOrdered64(dst, bits)
	}
	return dst
}

// appendOrdered64 appends x big-endian, so byte-lexicographic order of
// the encodings equals numeric order of the (order-mapped) payloads.
func appendOrdered64(dst []byte, x uint64) []byte {
	return append(dst,
		byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
		byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

// DecodeValue inverts Value.Encode: it reads one encoded value from the
// front of b and returns it together with the number of bytes consumed.
// Because the encoding is prefix-free and injective (for values as
// normalized by the constructors — Float's -0 → +0), Encode→DecodeValue
// round-trips exactly, including NaN bit patterns and int64s beyond
// float64 precision. This is what the scatter-gather wire format builds
// on: shipping rows and boundary-group members as concatenated Encode
// keys transports values with no JSON float64 or string-parse loss.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null(), 0, fmt.Errorf("relation: decoding value from empty input")
	}
	switch Kind(b[0]) {
	case KindNull:
		return Null(), 1, nil
	case KindString:
		i := 1
		for i < len(b) && b[i] != ':' {
			i++
		}
		if i == len(b) {
			return Null(), 0, fmt.Errorf("relation: string encoding missing length delimiter")
		}
		n, err := strconv.Atoi(string(b[1:i]))
		if err != nil || n < 0 {
			return Null(), 0, fmt.Errorf("relation: bad string length %q", b[1:i])
		}
		if len(b) < i+1+n {
			return Null(), 0, fmt.Errorf("relation: string encoding truncated: need %d payload bytes, have %d", n, len(b)-i-1)
		}
		return String(string(b[i+1 : i+1+n])), i + 1 + n, nil
	case KindInt:
		if len(b) < 9 {
			return Null(), 0, fmt.Errorf("relation: int encoding truncated")
		}
		return Int(int64(readOrdered64(b[1:]) ^ (1 << 63))), 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Null(), 0, fmt.Errorf("relation: float encoding truncated")
		}
		bits := readOrdered64(b[1:])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63 // positives: clear the forced sign bit
		} else {
			bits = ^bits // negatives: undo the full complement
		}
		// Bypass Float()'s -0 normalization: the encoder only ever sees
		// already-normalized payloads, so bit-exact reconstruction (NaN
		// payloads included) is the correct inverse.
		return Value{kind: KindFloat, f: math.Float64frombits(bits)}, 9, nil
	default:
		return Null(), 0, fmt.Errorf("relation: unknown value kind byte %d", b[0])
	}
}

func readOrdered64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// EncodeTuple appends the concatenated Encode keys of all values of t —
// the wire form of one row for shard transport (decode with
// DecodeTuple). Prefix-freedom makes the concatenation self-delimiting.
func EncodeTuple(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = v.Encode(dst)
	}
	return dst
}

// DecodeTuple inverts EncodeTuple for a tuple of the given arity,
// requiring the input to be fully consumed.
func DecodeTuple(b []byte, arity int) (Tuple, error) {
	t := make(Tuple, arity)
	for i := 0; i < arity; i++ {
		v, n, err := DecodeValue(b)
		if err != nil {
			return nil, fmt.Errorf("relation: decoding tuple value %d: %w", i, err)
		}
		t[i] = v
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("relation: %d trailing bytes after decoding %d-ary tuple", len(b), arity)
	}
	return t, nil
}

// ParseValue parses s into a value of the requested kind. The empty
// string parses as NULL for every kind.
func ParseValue(s string, kind Kind) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch kind {
	case KindString:
		return String(s), nil
	case KindInt:
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parsing %q as int: %w", s, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parsing %q as float: %w", s, err)
		}
		return Float(f), nil
	case KindNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("relation: cannot parse into kind %v", kind)
	}
}
