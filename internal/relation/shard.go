package relation

import (
	"sort"
	"sync"
)

// Sharded PLI construction: the counting-sort refinement of BuildPLI /
// Intersect, parallelized across a worker pool without changing a single
// output byte. Two complementary splits cover the shapes a refinement
// level can take:
//
//   - TID-range shards: a level with few groups (the first level of a
//     cold build is ONE group spanning the whole relation) splits each
//     large group's member range into fixed-width contiguous shards.
//     Every shard counts its codes privately, a serial pass turns the
//     per-(code, shard) counts into placement cursors in (code-rank,
//     shard) order, and the shards then place their members into
//     disjoint slots of the output concurrently. Because shard order is
//     ascending-TID order, the placement is exactly the serial stable
//     counting sort.
//
//   - Group chunks: a level with many groups splits the group range
//     into contiguous chunks balanced by TID count; each worker runs
//     the ordinary serial refinement over its chunk, writing a disjoint
//     region of the output. Concatenating the per-chunk bounds in chunk
//     order reproduces the serial bounds verbatim.
//
// Both splits preserve the invariant the rest of the system leans on:
// sharded output is byte-identical to the serial build (tids, offsets,
// tidGroup — property-tested), so S is purely a throughput knob.

// shardMinRows is the minimum number of rows that justifies one more
// shard: below it, the per-shard fixed costs (a goroutine, a count
// array over the column's code space, a touched-code sort) outweigh the
// parallel counting work. effectiveShards clamps requested shard counts
// with it, so tiny relations always take the serial path.
const shardMinRows = 1024

// effectiveShards bounds a requested shard count by what n rows can
// usefully feed: at least shardMinRows rows per shard, at least one
// shard. Callers treat a result of 1 as "use the serial path".
func effectiveShards(n, shards int) int {
	if shards <= 1 {
		return 1
	}
	if m := n / shardMinRows; shards > m {
		shards = m
	}
	if shards < 1 {
		return 1
	}
	return shards
}

// BuildPLISharded is BuildPLI with the counting-sort passes fanned out
// over up to `shards` workers. The output is byte-identical to
// BuildPLI(r, attrs) — groups, member order, group order, and the
// tid->group mapping all match — and shards <= 1 (or a relation too
// small to feed the requested fan-out) IS the serial BuildPLI path.
func BuildPLISharded(r *Relation, attrs []int, shards int) *PLI {
	return buildPLI(r, attrs, effectiveShards(r.Len(), shards))
}

// IntersectSharded is Intersect with the single refinement pass fanned
// out over up to `shards` workers; byte-identical to Intersect(y), and
// serial for shards <= 1.
func (p *PLI) IntersectSharded(y, shards int) *PLI {
	p.Compact()
	r := p.rel
	out := &PLI{
		rel:       r,
		attrs:     append(append([]int(nil), p.attrs...), y),
		colVers:   make([]uint64, len(p.attrs)+1),
		patchVers: make([]uint64, len(p.attrs)+1),
		n:         p.n,
	}
	copy(out.colVers, p.colVers)
	out.colVers[len(p.attrs)] = r.ColumnVersion(y)
	copy(out.patchVers, p.patchVers)
	out.patchVers[len(p.attrs)] = r.PatchVersion(y)
	out.tidGroup = make([]int32, p.n)
	out.initShardEnds(effectiveShards(p.n, shards))
	if p.n == 0 {
		out.offsets = []int32{0}
		return out
	}
	s := effectiveShards(p.n, shards)
	// refinement only reads the parent's TID storage, so it is shared
	// directly instead of copied (see Intersect).
	next := make([]int, p.n)
	if s > 1 {
		out.offsets = parallelRefineBy(r, y, p.tids, next, p.offsets, s)
	} else {
		out.offsets = refineBy(r, y, p.tids, next, p.offsets)
	}
	out.tids = next
	out.fillTIDGroupsParallel(s)
	return out
}

// buildPLI is the shared BuildPLI body: shards == 1 runs the historical
// serial refinement, shards > 1 the parallel one. Exposed to in-package
// tests so the sharded machinery can be exercised with shard counts the
// effectiveShards clamp would reject (empty shards, shards > n).
func buildPLI(r *Relation, attrs []int, shards int) *PLI {
	p := &PLI{
		rel:       r,
		attrs:     append([]int(nil), attrs...),
		colVers:   make([]uint64, len(attrs)),
		patchVers: make([]uint64, len(attrs)),
		n:         r.Len(),
	}
	for i, a := range attrs {
		p.colVers[i] = r.ColumnVersion(a)
		p.patchVers[i] = r.PatchVersion(a)
	}
	n := r.Len()
	p.tidGroup = make([]int32, n)
	p.initShardEnds(shards)
	if n == 0 {
		p.offsets = []int32{0}
		return p
	}

	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	next := make([]int, n)
	bounds := []int32{0, int32(n)}

	for _, a := range attrs {
		if shards > 1 {
			bounds = parallelRefineBy(r, a, cur, next, bounds, shards)
		} else {
			bounds = refineBy(r, a, cur, next, bounds)
		}
		cur, next = next, cur
	}

	p.tids = cur
	p.offsets = bounds
	p.fillTIDGroupsParallel(shards)
	return p
}

// parallelRefineBy is refineBy fanned out over `workers` goroutines,
// byte-identical by construction. Levels with many groups are split into
// contiguous group chunks balanced by TID count (each worker refines its
// chunk serially into a disjoint output region); levels with few groups
// — above all the single whole-relation group of a cold build's first
// level — shard each large group's member range by TID instead
// (shardedRefineGroup), and refine small groups serially in place.
func parallelRefineBy(r *Relation, a int, cur, next []int, bounds []int32, workers int) []int32 {
	codes := r.ColumnCodes(a)
	ranks := r.codeRanks(a) // materialized once, before the fan-out
	distinct := r.DistinctCodes(a)
	ng := len(bounds) - 1

	if ng >= 2*workers {
		cuts := chunkGroups(bounds, workers)
		if len(cuts)-1 >= 2 {
			parts := make([][]int32, len(cuts)-1)
			var wg sync.WaitGroup
			for c := 0; c+1 < len(cuts); c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					count := make([]int32, distinct)
					parts[c] = refineGroups(codes, ranks, count, cur, next, bounds,
						cuts[c], cuts[c+1], make([]int32, 0, cuts[c+1]-cuts[c]+1))
				}(c)
			}
			wg.Wait()
			total := 1
			for _, part := range parts {
				total += len(part)
			}
			newBounds := make([]int32, 1, total)
			for _, part := range parts {
				newBounds = append(newBounds, part...)
			}
			return newBounds
		}
	}

	// Few groups: walk them in order, TID-range-sharding the big ones.
	// The per-worker count arrays and the union bitmap are pooled
	// across groups (zeroed selectively after each use), so a level
	// over a high-cardinality column costs workers+1 count arrays, not
	// workers per group.
	count := make([]int32, distinct)
	scratch := newShardScratch(workers)
	newBounds := make([]int32, 1, len(bounds))
	for gi := 0; gi < ng; gi++ {
		lo, hi := int(bounds[gi]), int(bounds[gi+1])
		if hi-lo >= 2*shardMinRows && workers > 1 {
			newBounds = shardedRefineGroupPooled(codes, ranks, distinct, cur, next, lo, hi, newBounds, workers, scratch)
		} else {
			newBounds = refineGroups(codes, ranks, count, cur, next, bounds, gi, gi+1, newBounds)
		}
	}
	return newBounds
}

// shardScratch pools the per-worker state of shardedRefineGroup across
// the groups of one refinement level: counts[s] is worker s's counting
// array, seen the touched-code union bitmap. Every used entry is zeroed
// again before the group finishes, so reuse needs no clearing pass.
type shardScratch struct {
	counts [][]int32
	seen   []bool
}

func newShardScratch(workers int) *shardScratch {
	return &shardScratch{counts: make([][]int32, workers)}
}

// shardedRefineGroup counting-sorts one group's members (cur[lo:hi])
// into next by TID-range shards: fixed-width contiguous member slices
// count their codes privately in parallel, a serial pass lays the
// (code-rank, shard)-ordered placement cursors, and the shards place
// concurrently into disjoint slots. Appends the refined sub-group end
// positions to newBounds exactly like the serial refinement. Shards past
// the member count stay empty and cost nothing.
func shardedRefineGroup(codes, ranks []int32, distinct int, cur, next []int, lo, hi int, newBounds []int32, workers int) []int32 {
	return shardedRefineGroupPooled(codes, ranks, distinct, cur, next, lo, hi, newBounds, workers,
		newShardScratch(workers))
}

// shardedRefineGroupPooled is shardedRefineGroup on pooled scratch: the
// per-worker count arrays and union bitmap come from (and are returned
// zeroed to) scratch, so the fan-out's allocations amortize across a
// whole refinement level.
func shardedRefineGroupPooled(codes, ranks []int32, distinct int, cur, next []int, lo, hi int, newBounds []int32, workers int, scratch *shardScratch) []int32 {
	m := hi - lo
	width := (m + workers - 1) / workers
	touched := make([][]int32, workers)
	shardLo := func(s int) int { return lo + s*width }
	shardHi := func(s int) int { return min(lo+(s+1)*width, hi) }
	active := func(s int) bool { return shardLo(s) < shardHi(s) }

	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		if !active(s) {
			continue // empty shard
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if scratch.counts[s] == nil {
				scratch.counts[s] = make([]int32, distinct)
			}
			count := scratch.counts[s]
			var tch []int32
			for _, tid := range cur[shardLo(s):shardHi(s)] {
				c := codes[tid]
				if count[c] == 0 {
					tch = append(tch, c)
				}
				count[c]++
			}
			touched[s] = tch
		}(s)
	}
	wg.Wait()

	// Union the per-shard touched codes and order them by rank — the
	// sub-group emission order of the serial counting sort.
	if scratch.seen == nil {
		scratch.seen = make([]bool, distinct)
	}
	seen := scratch.seen
	var all []int32
	for _, tch := range touched {
		for _, c := range tch {
			if !seen[c] {
				seen[c] = true
				all = append(all, c)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return ranks[all[i]] < ranks[all[j]] })
	for _, c := range all {
		seen[c] = false
	}

	// Turn the count matrix into placement cursors: code-major, shard-
	// minor — shard order is ascending-TID order, so placement below is
	// the serial stable sort, just executed by S writers at once. A
	// (shard, code) cell with a zero count MUST stay zero: its cursor
	// would never be read (the shard has no member with that code) but
	// it is also not in the shard's touched list, so the end-of-group
	// zeroing would miss it and the stale cursor would poison the next
	// group sharing this pooled array (regression-tested in
	// TestShardedBuildMultipleShardedGroups).
	pos := int32(lo)
	for _, c := range all {
		for s := 0; s < workers; s++ {
			if touched[s] == nil {
				continue
			}
			cnt := scratch.counts[s][c]
			if cnt == 0 {
				continue
			}
			scratch.counts[s][c] = pos
			pos += cnt
		}
		newBounds = append(newBounds, pos)
	}

	for s := 0; s < workers; s++ {
		if !active(s) {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			count := scratch.counts[s]
			for _, tid := range cur[shardLo(s):shardHi(s)] {
				c := codes[tid]
				next[count[c]] = tid
				count[c]++
			}
			// Leave the pooled array zeroed for the next group.
			for _, c := range touched[s] {
				count[c] = 0
			}
		}(s)
	}
	wg.Wait()
	return newBounds
}

// chunkGroups splits the group range [0, len(bounds)-1) into at most
// `workers` contiguous chunks with roughly equal TID counts, cutting
// only at group boundaries: chunk c ends at the first boundary at or
// past (c+1)/workers of the TID span. Returns the cut group indexes,
// first 0 and last the group count; heavily skewed partitions may yield
// fewer (down to one) chunks.
func chunkGroups(bounds []int32, workers int) []int {
	ng := len(bounds) - 1
	n := int64(bounds[ng])
	cuts := make([]int, 1, workers+1)
	for c := 1; c < workers; c++ {
		target := int32(n * int64(c) / int64(workers))
		g := sort.Search(ng, func(i int) bool { return bounds[i+1] >= target })
		cut := g + 1
		if cut <= cuts[len(cuts)-1] {
			continue
		}
		if cut >= ng {
			break
		}
		cuts = append(cuts, cut)
	}
	return append(cuts, ng)
}

// fillTIDGroupsParallel fills the tid->group mapping with the group
// range chunked across workers (each group's members are written by
// exactly one worker, so the writes are disjoint); workers <= 1 is the
// serial fill.
func (p *PLI) fillTIDGroupsParallel(workers int) {
	ng := len(p.offsets) - 1
	if workers <= 1 || ng < 2*workers {
		p.fillTIDGroups()
		return
	}
	cuts := chunkGroups(p.offsets, workers)
	if len(cuts)-1 < 2 {
		p.fillTIDGroups()
		return
	}
	var wg sync.WaitGroup
	for c := 0; c+1 < len(cuts); c++ {
		wg.Add(1)
		go func(gLo, gHi int) {
			defer wg.Done()
			for g := gLo; g < gHi; g++ {
				for _, tid := range p.tids[p.offsets[g]:p.offsets[g+1]] {
					p.tidGroup[tid] = int32(g)
				}
			}
		}(cuts[c], cuts[c+1])
	}
	wg.Wait()
}

// --- per-shard append watermarks ---

// initShardEnds records the build's shard layout: `shards` fixed-width
// TID ranges covering [0, n), each with its own append watermark in
// shardEnds. Serial builds get a single shard spanning the relation.
func (p *PLI) initShardEnds(shards int) {
	n := p.n
	if shards < 1 {
		shards = 1
	}
	if n == 0 {
		// Unbounded single shard: there is no width to derive, so
		// appends just extend shard 0 (advanceShardEnds' width<=0 path).
		p.shardWidth = 0
		p.shardEnds = []int{0}
		return
	}
	width := (n + shards - 1) / shards
	p.shardWidth = width
	p.shardEnds = make([]int, shards)
	for s := 0; s < shards; s++ {
		p.shardEnds[s] = min((s+1)*width, n)
	}
}

// advanceShardEnds moves the append watermarks for growth to newN rows:
// the tail shard fills to its fixed width, then fresh tail shards open —
// every earlier shard's watermark is untouched, which is what lets
// future per-shard consumers (spill, delta-aware invalidation) trust
// non-tail shards across appends. Called with PLI.mu held (Advance).
func (p *PLI) advanceShardEnds(newN int) {
	if len(p.shardEnds) == 0 {
		p.shardEnds = []int{newN}
		return
	}
	last := len(p.shardEnds) - 1
	if p.shardWidth <= 0 {
		p.shardEnds[last] = newN
		return
	}
	for {
		capacity := (last + 1) * p.shardWidth
		if newN <= capacity {
			p.shardEnds[last] = newN
			return
		}
		p.shardEnds[last] = capacity
		p.shardEnds = append(p.shardEnds, 0)
		last++
	}
}

// NumShards returns the number of TID-range shards of the index's
// layout (1 for serial builds).
func (p *PLI) NumShards() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shardEnds)
}

// ShardEnds returns a copy of the per-shard append watermarks: shard i
// covers TIDs [ends[i-1], ends[i]) (from 0 for shard 0). Appends move
// only the tail entries (PLI.Advance), never an interior one.
func (p *PLI) ShardEnds() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.shardEnds...)
}
