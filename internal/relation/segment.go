package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
)

// Segment files are the on-disk unit of the tiered storage layer: a
// clean, compacted PLI's flat storage (tids/offsets/tidGroup) plus its
// TID-range shard layout (shardWidth/shardEnds — see shard.go) written
// as fixed-width little-endian arrays, and likewise a column's int32
// code array. Everything in a segment is immutable by construction:
// interior shards never change across appends (only the tail watermark
// moves) and `Set` journals patches instead of rewriting codes, so a
// segment stays byte-valid until the column is hard-invalidated — the
// same watermark discipline the IndexCache already validates entries
// with. Sections are 8-byte aligned so a read-only mmap of the file can
// be reinterpreted as []int and []int32 in place on 64-bit
// little-endian platforms (mmap_linux.go); every other platform decodes
// the same bytes onto the heap (mmap_fallback.go), and the two paths
// are asserted byte-identical by TestSegmentMappedMatchesHeapDecode.
//
// PLI segment layout (all fields little-endian):
//
//	[0:8)    magic "SMDQPLI1"
//	[8:16)   n          int64  rows covered (== len(tidGroup) == len(tids))
//	[16:24)  lenTids    int64
//	[24:32)  numOffsets int64  group count + 1
//	[32:40)  lenTidGrp  int64
//	[40:48)  shardWidth int64
//	[48:56)  numShards  int64
//	[56:64)  reserved   int64  (zero)
//	[64:..)  shardEnds  int64[numShards]   (always decoded to heap: mutable)
//	[..:..)  tids       int64[lenTids]     (8-aligned)
//	[..:..)  offsets    int32[numOffsets]
//	[..:..)  tidGroup   int32[lenTidGrp]
//
// Column segment layout:
//
//	[0:8)    magic "SMDQCOL1"
//	[8:16)   n      int64
//	[16:24)  reserved int64 (zero)
//	[24:..)  codes  int32[n]
const (
	pliSegMagic = "SMDQPLI1"
	colSegMagic = "SMDQCOL1"

	pliSegHeaderSize = 64
	colSegHeaderSize = 24
)

// pliSegHeader is the decoded fixed header of a PLI segment file.
type pliSegHeader struct {
	n          int64
	lenTids    int64
	numOffsets int64
	lenTidGrp  int64
	shardWidth int64
	numShards  int64
}

func (h *pliSegHeader) fileSize() int64 {
	return pliSegHeaderSize + 8*h.numShards + 8*h.lenTids + 4*h.numOffsets + 4*h.lenTidGrp
}

// sectionOffsets returns the byte offsets of the shardEnds, tids,
// offsets and tidGroup sections.
func (h *pliSegHeader) sectionOffsets() (shardEnds, tids, offsets, tidGroup int64) {
	shardEnds = pliSegHeaderSize
	tids = shardEnds + 8*h.numShards
	offsets = tids + 8*h.lenTids
	tidGroup = offsets + 4*h.numOffsets
	return
}

func parsePLISegHeader(b []byte) (pliSegHeader, error) {
	var h pliSegHeader
	if len(b) < pliSegHeaderSize || string(b[:8]) != pliSegMagic {
		return h, fmt.Errorf("relation: not a PLI segment file")
	}
	h.n = int64(binary.LittleEndian.Uint64(b[8:]))
	h.lenTids = int64(binary.LittleEndian.Uint64(b[16:]))
	h.numOffsets = int64(binary.LittleEndian.Uint64(b[24:]))
	h.lenTidGrp = int64(binary.LittleEndian.Uint64(b[32:]))
	h.shardWidth = int64(binary.LittleEndian.Uint64(b[40:]))
	h.numShards = int64(binary.LittleEndian.Uint64(b[48:]))
	if h.n < 0 || h.lenTids < 0 || h.numOffsets < 1 || h.lenTidGrp < 0 || h.numShards < 0 {
		return h, fmt.Errorf("relation: corrupt PLI segment header")
	}
	if int64(len(b)) != h.fileSize() {
		return h, fmt.Errorf("relation: PLI segment size %d != header-implied %d", len(b), h.fileSize())
	}
	return h, nil
}

// writePLISegment writes the receiver's flat storage to path. The
// caller holds p.mu and guarantees the index is clean (no delta tail,
// no patch holes, not dirty) — segment files only ever hold canonical
// compacted storage. Returns the file size.
func writePLISegment(path string, p *PLI) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [pliSegHeaderSize]byte
	copy(hdr[:8], pliSegMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.n))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(p.tids)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(p.offsets)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(p.tidGroup)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(p.shardWidth))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(len(p.shardEnds)))
	_, err = w.Write(hdr[:])
	if err == nil {
		err = writeIntSection(w, p.shardEnds)
	}
	if err == nil {
		err = writeIntSection(w, p.tids)
	}
	if err == nil {
		err = writeInt32Section(w, p.offsets)
	}
	if err == nil {
		err = writeInt32Section(w, p.tidGroup)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	hdrCopy := pliSegHeader{
		n: int64(p.n), lenTids: int64(len(p.tids)), numOffsets: int64(len(p.offsets)),
		lenTidGrp: int64(len(p.tidGroup)), shardWidth: int64(p.shardWidth), numShards: int64(len(p.shardEnds)),
	}
	return hdrCopy.fileSize(), nil
}

// writeColumnSegment writes one column's code array to path.
func writeColumnSegment(path string, codes []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [colSegHeaderSize]byte
	copy(hdr[:8], colSegMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(codes)))
	_, err = w.Write(hdr[:])
	if err == nil {
		err = writeInt32Section(w, codes)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

func writeIntSection(w *bufio.Writer, s []int) error {
	var buf [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeInt32Section(w *bufio.Writer, s []int32) error {
	var buf [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// pliSegData is a PLI segment's decoded storage: either views into a
// read-only mapping (seg non-nil; the PLI that adopts these slices must
// keep seg referenced for as long as the slices live) or plain heap
// slices (seg nil, the fallback decode). shardEnds is always heap —
// advanceShardEnds mutates it in place.
type pliSegData struct {
	n          int
	tids       []int
	offsets    []int32
	tidGroup   []int32
	shardWidth int
	shardEnds  []int
	seg        *Mapping
}

// decodeIntSection decodes int64[count] at off into a heap slice.
func decodeIntSection(b []byte, off, count int64) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[off+int64(i)*8:])))
	}
	return out
}

// decodeInt32Section decodes int32[count] at off into a heap slice.
func decodeInt32Section(b []byte, off, count int64) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[off+int64(i)*4:]))
	}
	return out
}

// readPLISegmentHeap fully decodes a PLI segment file onto the heap —
// the portable path, and the reference the mmap path is tested against.
func readPLISegmentHeap(path string) (*pliSegData, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	h, err := parsePLISegHeader(b)
	if err != nil {
		return nil, err
	}
	seOff, tOff, oOff, gOff := h.sectionOffsets()
	return &pliSegData{
		n:          int(h.n),
		tids:       decodeIntSection(b, tOff, h.lenTids),
		offsets:    decodeInt32Section(b, oOff, h.numOffsets),
		tidGroup:   decodeInt32Section(b, gOff, h.lenTidGrp),
		shardWidth: int(h.shardWidth),
		shardEnds:  decodeIntSection(b, seOff, h.numShards),
	}, nil
}

// readColumnSegmentHeap decodes a column segment file onto the heap.
func readColumnSegmentHeap(path string) ([]int32, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n, err := parseColSegHeader(b)
	if err != nil {
		return nil, err
	}
	return decodeInt32Section(b, colSegHeaderSize, n), nil
}

func parseColSegHeader(b []byte) (int64, error) {
	if len(b) < colSegHeaderSize || string(b[:8]) != colSegMagic {
		return 0, fmt.Errorf("relation: not a column segment file")
	}
	n := int64(binary.LittleEndian.Uint64(b[8:]))
	if n < 0 || int64(len(b)) != colSegHeaderSize+4*n {
		return 0, fmt.Errorf("relation: corrupt column segment (n=%d size=%d)", n, len(b))
	}
	return n, nil
}
