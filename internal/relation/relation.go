package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an in-memory table: a schema plus a slice of tuples. Tuple
// identifiers (TIDs) are positions in the slice and are stable under
// in-place cell updates, which is what the repair algorithms require.
type Relation struct {
	schema *Schema
	tuples []Tuple
}

// New creates an empty relation over the given schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the tuple with the given TID. The returned slice aliases
// relation storage; callers that mutate it mutate the relation.
func (r *Relation) Tuple(tid int) Tuple { return r.tuples[tid] }

// Tuples returns the underlying tuple slice. The slice aliases relation
// storage and must not be appended to by callers.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert validates and appends a tuple, returning its TID. The tuple must
// have the schema's arity, and each non-NULL value must have the declared
// kind (integers are accepted into float columns).
func (r *Relation) Insert(t Tuple) (int, error) {
	if len(t) != r.schema.Arity() {
		return 0, fmt.Errorf("relation %s: inserting tuple of arity %d into schema of arity %d",
			r.schema.Name(), len(t), r.schema.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.schema.Attr(i).Kind
		if v.Kind() == want {
			continue
		}
		if want == KindFloat && v.Kind() == KindInt {
			t[i] = Float(v.FloatVal())
			continue
		}
		return 0, fmt.Errorf("relation %s: attribute %s expects %v, got %v (%s)",
			r.schema.Name(), r.schema.Attr(i).Name, want, v.Kind(), v)
	}
	r.tuples = append(r.tuples, t)
	return len(r.tuples) - 1, nil
}

// MustInsert inserts a tuple and panics on validation failure. Intended
// for tests and generators where the tuple shape is statically correct.
func (r *Relation) MustInsert(t Tuple) int {
	tid, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return tid
}

// Set overwrites a single cell.
func (r *Relation) Set(tid, attr int, v Value) {
	r.tuples[tid][attr] = v
}

// Get reads a single cell.
func (r *Relation) Get(tid, attr int) Value {
	return r.tuples[tid][attr]
}

// Clone returns a deep copy of the relation (same schema pointer; the
// schema is immutable).
func (r *Relation) Clone() *Relation {
	out := &Relation{schema: r.schema, tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	return out
}

// Select returns the TIDs of tuples satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) []int {
	var out []int
	for tid, t := range r.tuples {
		if pred(t) {
			out = append(out, tid)
		}
	}
	return out
}

// Distinct returns the number of distinct full tuples.
func (r *Relation) Distinct() int {
	seen := make(map[string]struct{}, len(r.tuples))
	for _, t := range r.tuples {
		seen[t.FullKey()] = struct{}{}
	}
	return len(seen)
}

// SortBy sorts tuples in place by the listed attribute positions
// (ascending, Value.Compare order). TIDs are renumbered; callers holding
// TIDs across a sort must not.
func (r *Relation) SortBy(idxs []int) {
	sort.SliceStable(r.tuples, func(i, j int) bool {
		a, b := r.tuples[i], r.tuples[j]
		for _, idx := range idxs {
			if c := a[idx].Compare(b[idx]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// Head renders the first n tuples as an aligned text table for display.
func (r *Relation) Head(n int) string {
	if n > len(r.tuples) {
		n = len(r.tuples)
	}
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, name := range names {
		widths[i] = len(name)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(names))
		for j, v := range r.tuples[i] {
			row[j] = v.String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for k := len(c); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range rows {
		writeRow(row)
	}
	if n < len(r.tuples) {
		fmt.Fprintf(&b, "... (%d more tuples)\n", len(r.tuples)-n)
	}
	return b.String()
}
