package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// column is the interned, columnar shadow of one attribute: every cell
// value is mapped through a per-column dictionary to a dense int32 code,
// and the codes are stored positionally (codes[tid]). Codes are assigned
// in first-appearance order and never reused; two cells carry the same
// code exactly when their values have the same Value.Encode key, which
// is the grouping notion the hash indexes and PLIs are built on.
type column struct {
	codes   []int32          // per-TID code, parallel to Relation.tuples
	dict    map[string]int32 // Encode key -> code
	values  []Value          // code -> representative value
	encs    []string         // code -> Encode key (needed for rank order)
	version uint64           // bumped on hard code invalidation (reorder, truncate, journal overflow)

	// Patch journal: every in-place Set that changes this column's code
	// is appended here as a (TID, old code, new code) record instead of
	// bumping version, so indexes over the column can catch up by
	// re-homing exactly the patched TIDs (PLI patching) rather than
	// rebuilding. patchSeq counts patches ever recorded (the monotone
	// watermark indexes snapshot); patchLog holds the suffix of records
	// since the last hard invalidation, so a reader at watermark w drains
	// patchLog[w-(patchSeq-len(patchLog)):]. When the log outgrows
	// maxPatchLog the column falls back to the pre-journal behavior —
	// version is bumped (every index over the column rebuilds) and the
	// log is cleared — which bounds journal memory without a consumer
	// registry.
	patchLog []CellPatch
	patchSeq uint64

	// seg is non-nil while codes is a zero-copy view into a read-only
	// mapped segment file (Relation.SpillColumns) — the tiered-storage
	// demoted state. Reads are untouched; every write path materializes
	// a heap copy first (see materialize). The field anchors the
	// mapping's lifetime for as long as the view is live.
	seg *Mapping

	// Lazily computed rank cache: ranks[code] is the code's position in
	// the lexicographic order of the encs. Valid while ranksLen equals
	// len(values) — codes are append-only and their keys immutable, so
	// the dictionary size fully determines the ranking. Guarded by
	// rankMu so concurrent PLI builders share one computation.
	rankMu   sync.Mutex
	ranks    []int32
	ranksLen int
}

// CellPatch records one in-place cell rewrite: the TID's code in the
// column changed Old -> New. Journaled by Relation.Set and drained by
// PLI catch-up (see PLI.Patch / IndexCache).
type CellPatch struct {
	TID int
	Old int32
	New int32
}

// maxPatchLogFor bounds a column's patch journal: beyond this many
// undrained records the journal is worth less than a rebuild, so Set
// falls back to a hard version bump. Scales with the column so large
// relations tolerate proportionally larger edit bursts.
func maxPatchLogFor(n int) int {
	if n/4 > 1024 {
		return n / 4
	}
	return 1024
}

func newColumn() *column {
	return &column{dict: make(map[string]int32)}
}

// materialize replaces a mapped code view with a heap copy and drops
// the mapping anchor — called by every column write path (Set rewrites
// cells in place; Insert appends, and a mapped view's spare capacity,
// if it ever had any, must never be written). No-op for resident
// columns, so the write paths pay one nil check.
func (c *column) materialize() {
	if c.seg == nil {
		return
	}
	c.codes = append([]int32(nil), c.codes...)
	c.seg = nil // unmapped by the mapping finalizer once unreferenced
}

func (c *column) clone() *column {
	out := &column{
		codes:    append([]int32(nil), c.codes...),
		dict:     make(map[string]int32, len(c.dict)),
		values:   append([]Value(nil), c.values...),
		encs:     append([]string(nil), c.encs...),
		version:  c.version,
		patchLog: append([]CellPatch(nil), c.patchLog...),
		patchSeq: c.patchSeq,
	}
	for k, v := range c.dict {
		out.dict[k] = v
	}
	// Rank slices are immutable once published; the clone can share them.
	c.rankMu.Lock()
	out.ranks, out.ranksLen = c.ranks, c.ranksLen
	c.rankMu.Unlock()
	return out
}

// Relation is an in-memory table: a schema plus a slice of tuples. Tuple
// identifiers (TIDs) are positions in the slice and are stable under
// in-place cell updates, which is what the repair algorithms require.
//
// Alongside the row-oriented tuple storage the relation maintains an
// interned columnar representation: per-column dictionaries assign each
// distinct value a dense int32 code, and the code columns are kept in
// sync by Insert and Set. Group-wise algorithms (violation detection,
// partition indexes) consume the codes instead of re-encoding values
// into string keys; see BuildPLI.
type Relation struct {
	schema  *Schema
	tuples  []Tuple
	cols    []*column
	version uint64
	appends uint64 // count of tuples ever appended (the append watermark)
	scratch []byte // Encode buffer reused by intern; guarded by the caller's write side
}

// New creates an empty relation over the given schema.
func New(schema *Schema) *Relation {
	r := &Relation{schema: schema, cols: make([]*column, schema.Arity())}
	for i := range r.cols {
		r.cols[i] = newColumn()
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Version returns the relation's mutation counter: it increases on every
// Insert, Truncate, reorder, and on every Set that actually changes a
// cell's code. Index structures snapshot it (or the finer per-column
// counters) to detect staleness.
func (r *Relation) Version() uint64 { return r.version }

// ColumnVersion returns the hard-invalidation counter of a single
// column. Reorders and Truncate bump every column, and a Set whose
// patch journal overflows bumps the touched one; an ordinary Set does
// NOT bump it — the cell rewrite goes into the column's patch journal
// (PatchVersion/PatchesSince) and indexes re-home the patched TIDs
// instead of rebuilding. Insert bumps NO column version either:
// appending rows changes no existing code, so an index distinguishes
// "rows appended" (length watermark lags Len — absorbable via
// PLI.Advance), "cells patched" (patch watermark lags PatchVersion —
// absorbable via PLI patching), and "codes hard-invalidated" (version
// mismatch — a rebuild).
func (r *Relation) ColumnVersion(attr int) uint64 { return r.cols[attr].version }

// AppendVersion returns the number of tuples ever appended — the
// monotone watermark that, together with the per-column code versions,
// splits staleness into "grew by appends" and "mutated in place".
func (r *Relation) AppendVersion() uint64 { return r.appends }

// Tuple returns the tuple with the given TID. The returned slice aliases
// relation storage; callers must not mutate it (use Set, which keeps the
// columnar codes in sync).
func (r *Relation) Tuple(tid int) Tuple { return r.tuples[tid] }

// Tuples returns the underlying tuple slice. The slice aliases relation
// storage and must not be appended to, reordered or written through by
// callers; use Insert, Set and SortStable.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// intern maps v to its dense code in column attr, allocating a new code
// on first appearance. It must only be called from the relation's write
// path (it reuses a shared scratch buffer).
func (r *Relation) intern(attr int, v Value) int32 {
	c := r.cols[attr]
	r.scratch = v.Encode(r.scratch[:0])
	if code, ok := c.dict[string(r.scratch)]; ok {
		return code
	}
	code := int32(len(c.values))
	key := string(r.scratch)
	c.dict[key] = code
	c.values = append(c.values, v)
	c.encs = append(c.encs, key)
	return code
}

// coerce applies the schema's kind coercion to a value destined for
// column attr: integers are accepted into float columns. Other
// mismatches are returned unchanged (Insert rejects them; Set stores
// them as-is, matching its historical unchecked behavior).
func (r *Relation) coerce(attr int, v Value) Value {
	if !v.IsNull() && v.Kind() == KindInt && r.schema.Attr(attr).Kind == KindFloat {
		return Float(v.FloatVal())
	}
	return v
}

// Insert validates and appends a tuple, returning its TID. The tuple must
// have the schema's arity, and each non-NULL value must have the declared
// kind (integers are accepted into float columns).
func (r *Relation) Insert(t Tuple) (int, error) {
	if len(t) != r.schema.Arity() {
		return 0, fmt.Errorf("relation %s: inserting tuple of arity %d into schema of arity %d",
			r.schema.Name(), len(t), r.schema.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.schema.Attr(i).Kind
		if v.Kind() == want {
			continue
		}
		if want == KindFloat && v.Kind() == KindInt {
			t[i] = Float(v.FloatVal())
			continue
		}
		return 0, fmt.Errorf("relation %s: attribute %s expects %v, got %v (%s)",
			r.schema.Name(), r.schema.Attr(i).Name, want, v.Kind(), v)
	}
	tid := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for i, v := range t {
		c := r.cols[i]
		c.materialize()
		// Appends deliberately leave c.version alone: no existing code
		// changed, and PLIs detect growth through the length watermark
		// (and absorb it incrementally, see PLI.Advance).
		c.codes = append(c.codes, r.intern(i, v))
	}
	r.version++
	r.appends++
	return tid, nil
}

// Truncate discards every tuple with TID >= n — the rollback primitive
// for failed appends (engine.Session.Append). Interned codes stay
// allocated (codes are never reclaimed; the dropped rows' values simply
// keep their dictionary slots). Every column version is bumped: an index
// that absorbed the dropped rows must not be mistaken for fresh if the
// relation later grows back to its length with different tuples.
func (r *Relation) Truncate(n int) {
	if n < 0 || n >= len(r.tuples) {
		return
	}
	r.tuples = r.tuples[:n]
	for _, c := range r.cols {
		c.codes = c.codes[:n]
		c.version++
		// The version bump strands every index watermark, so journaled
		// patches (including patches against the dropped rows) can be
		// discarded wholesale — this is what makes Truncate a complete
		// rollback for an append whose repair already emitted patches.
		c.patchLog = nil
	}
	r.version++
}

// InsertUnchecked appends a tuple with no kind validation or coercion:
// every value is stored exactly as given, mirroring Set's historical
// unchecked write semantics. It exists for shard ingest — a worker
// reconstructing its TID-range slice from exact-encoded rows
// (EncodeTuple/DecodeTuple) must reproduce the source relation's cells
// bit for bit, including kind-mismatched cells an unchecked Set put
// there, or its dictionary codes (and therefore its group keys) would
// diverge from the coordinator's. The tuple must have the schema's
// arity; everything else is the caller's contract.
func (r *Relation) InsertUnchecked(t Tuple) int {
	tid := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for i, v := range t {
		c := r.cols[i]
		c.materialize()
		c.codes = append(c.codes, r.intern(i, v))
	}
	r.version++
	r.appends++
	return tid
}

// AppendGroupKey appends the concatenated Encode keys of tid's values on
// the listed attributes — the composite grouping key of the PLI over
// those attributes, materialized. Two TIDs (of this or ANY relation over
// compatible columns) share a key exactly when they agree under the
// code-grouping notion on every listed attribute, and PLI group order is
// the lexicographic order of these keys (see BuildPLI), which makes the
// key the global merge identity AND merge order for scatter-gather
// detection across shard relations.
func (r *Relation) AppendGroupKey(dst []byte, tid int, attrs []int) []byte {
	for _, a := range attrs {
		c := r.cols[a]
		dst = append(dst, c.encs[c.codes[tid]]...)
	}
	return dst
}

// MustInsert inserts a tuple and panics on validation failure. Intended
// for tests and generators where the tuple shape is statically correct.
func (r *Relation) MustInsert(t Tuple) int {
	tid, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return tid
}

// Set overwrites a single cell, keeping the columnar codes in sync.
// Integer values written into float columns are coerced like Insert
// does, so columns stay kind-uniform. Writing a value whose code equals
// the cell's current code (an encode-identical value) is a no-op for
// versioning: indexes over the column remain valid.
//
// A code-changing Set no longer bumps the column version: it appends a
// (TID, old, new) record to the column's patch journal instead, so a
// PLI over the column stays reachable — its next cache lookup re-homes
// exactly the patched TIDs (O(group) per patch) instead of rebuilding
// the partition. Only when the journal outgrows its cap does Set fall
// back to the hard version bump. Truncate and reorders still bump every
// column version unconditionally, which is what keeps the
// append-rollback path (engine.Session.Append) correct: rolled-back
// patches can never be mistaken for applicable ones.
func (r *Relation) Set(tid, attr int, v Value) {
	v = r.coerce(attr, v)
	code := r.intern(attr, v)
	c := r.cols[attr]
	r.tuples[tid][attr] = v
	if c.codes[tid] == code {
		return
	}
	c.materialize() // the cell write below must never hit a mapping
	old := c.codes[tid]
	c.codes[tid] = code
	if len(c.patchLog) >= maxPatchLogFor(len(c.codes)) {
		// Journal overflow: too many undrained patches to be worth
		// replaying. Invalidate the column the old way and start a fresh
		// journal epoch (the version mismatch makes stale watermarks
		// unreachable, so the log can be dropped).
		c.version++
		c.patchLog = c.patchLog[:0]
	} else {
		c.patchLog = append(c.patchLog, CellPatch{TID: tid, Old: old, New: code})
		c.patchSeq++
	}
	r.version++
}

// PatchVersion returns the column's patch-journal watermark: the count
// of code-changing Sets ever journaled on attr. An index snapshots it
// at build time and drains PatchesSince(attr, snapshot) to catch up.
func (r *Relation) PatchVersion(attr int) uint64 { return r.cols[attr].patchSeq }

// PatchesSince returns the column's journaled patches with sequence
// numbers >= since, in application order, and whether the journal still
// retains that suffix (false after a hard invalidation discarded it —
// the caller must rebuild; the accompanying version bump makes that
// case visible to Fresh/AdvanceableTo as well). The returned slice
// aliases the journal: callers must drain it before releasing whatever
// exclusion kept Set away (the session write-lock discipline).
func (r *Relation) PatchesSince(attr int, since uint64) ([]CellPatch, bool) {
	c := r.cols[attr]
	base := c.patchSeq - uint64(len(c.patchLog))
	if since < base {
		return nil, false
	}
	return c.patchLog[since-base:], true
}

// Get reads a single cell.
func (r *Relation) Get(tid, attr int) Value {
	return r.tuples[tid][attr]
}

// Code returns the dense dictionary code of cell (tid, attr). Two cells
// of the same column carry equal codes exactly when their values encode
// identically (Value.Encode), which for kind-uniform columns coincides
// with Value.Identical.
func (r *Relation) Code(tid, attr int) int32 { return r.cols[attr].codes[tid] }

// ColumnCodes returns the code column for attr. The slice aliases
// relation storage and must be treated as read-only; it is invalidated
// by Insert (growth) but not by Set (in-place).
func (r *Relation) ColumnCodes(attr int) []int32 { return r.cols[attr].codes }

// DistinctCodes returns the number of codes ever allocated in the
// column. Codes are never reclaimed, so this is an upper bound on (and
// after inserts without overwrites, equal to) the number of distinct
// values in the column.
func (r *Relation) DistinctCodes(attr int) int { return len(r.cols[attr].values) }

// CodeValue returns the representative value of a code in column attr.
func (r *Relation) CodeValue(attr int, code int32) Value { return r.cols[attr].values[code] }

// LookupCode finds the code(s) of column attr whose stored values are
// Identical to v. It probes the exact encoding of v and, for numeric v,
// the cross-kind twin (Int(9) vs Float(9) are Identical but encode
// differently). Returns the matching code, whether any match exists, and
// whether the match is unique — with a kind-uniform column (the Insert
// invariant) it always is; a Set-injected mixed column can hold two
// Identical values under distinct codes, reported as !unique. NaN never
// matches (Identical is false even for NaN vs NaN).
func (r *Relation) LookupCode(attr int, v Value) (code int32, ok, unique bool) {
	if v.IsNull() {
		// NULL is Identical only to NULL, which encodes uniquely.
		if c, found := r.lookupEnc(attr, v); found {
			return c, true, true
		}
		return 0, false, true
	}
	if v.Kind() == KindFloat && v.FloatVal() != v.FloatVal() { // NaN
		return 0, false, true
	}
	code, ok = r.lookupEnc(attr, v)
	var twin Value
	switch v.Kind() {
	case KindInt:
		twin = Float(v.FloatVal())
	case KindFloat:
		f := v.FloatVal()
		n := int64(f)
		if float64(n) != f {
			return code, ok, true
		}
		twin = Int(n)
	default:
		return code, ok, true
	}
	tcode, tok := r.lookupEnc(attr, twin)
	switch {
	case ok && tok:
		return code, true, false
	case tok:
		return tcode, true, true
	default:
		return code, ok, true
	}
}

// lookupEnc finds the code of the exact encoding of v in column attr.
// Unlike intern it allocates nothing shared, so it is safe on the
// concurrent read path.
func (r *Relation) lookupEnc(attr int, v Value) (int32, bool) {
	var buf [48]byte
	key := v.Encode(buf[:0])
	code, ok := r.cols[attr].dict[string(key)]
	return code, ok
}

// codeRanks returns, for column attr, the rank of every code under the
// lexicographic order of the codes' Encode keys. Because the encoding is
// prefix-free, comparing composite keys component-wise by these ranks
// agrees exactly with comparing the concatenated string keys (see
// BuildPLI), which is what keeps PLI group order byte-compatible with
// HashIndex.Keys(). The ranking is cached on the column and reused until
// the dictionary grows, so steady-state index builds sort nothing; when
// it does grow (appends or edits interning unseen values), only the new
// codes are sorted and merged into the existing order — O(old + new·log
// new) instead of re-sorting the whole dictionary.
func (r *Relation) codeRanks(attr int) []int32 {
	c := r.cols[attr]
	c.rankMu.Lock()
	defer c.rankMu.Unlock()
	if c.ranksLen == len(c.values) {
		return c.ranks
	}
	old := c.ranksLen
	fresh := make([]int32, len(c.values)-old)
	for i := range fresh {
		fresh[i] = int32(old + i)
	}
	sort.Slice(fresh, func(i, j int) bool { return c.encs[fresh[i]] < c.encs[fresh[j]] })
	// Published rank slices are immutable (clones share them), so the
	// extended ranking goes into a fresh allocation.
	ranks := make([]int32, len(c.values))
	if old == 0 {
		for rank, code := range fresh {
			ranks[code] = int32(rank)
		}
	} else {
		// Recover the old sorted order from the cached ranks and merge
		// the sorted new codes into it. Encode keys are unique per code,
		// so there are no ties to break.
		order := make([]int32, old)
		for code := 0; code < old; code++ {
			order[c.ranks[code]] = int32(code)
		}
		oi, fi := 0, 0
		for rank := 0; rank < len(c.values); rank++ {
			var code int32
			switch {
			case oi == len(order):
				code = fresh[fi]
				fi++
			case fi == len(fresh):
				code = order[oi]
				oi++
			case c.encs[fresh[fi]] < c.encs[order[oi]]:
				code = fresh[fi]
				fi++
			default:
				code = order[oi]
				oi++
			}
			ranks[code] = int32(rank)
		}
	}
	c.ranks, c.ranksLen = ranks, len(c.values)
	return ranks
}

// CodeRanks returns, for column attr, the rank of every code under the
// lexicographic order of the codes' Encode keys (ranks[code] is the
// code's position; see codeRanks for the caching and merge behavior).
// Because Encode is order-preserving for NULL and the numeric kinds, a
// kind-uniform null-or-numeric column's ranks agree exactly with
// Value.Compare order of the coded values — the order index the
// denial-constraint inequality sweeps (internal/dc) run on, guaranteed
// by TestCodeRankOrderMatchesValueOrder. For string columns the rank
// order is the length-prefixed encoding order, NOT lexicographic string
// order. The returned slice is immutable and safe to read concurrently;
// it describes the dictionary as of the call (appends interning unseen
// values extend the ranking on the next call).
func (r *Relation) CodeRanks(attr int) []int32 { return r.codeRanks(attr) }

// Clone returns a deep copy of the relation (same schema pointer; the
// schema is immutable). Dictionaries and code columns are copied, so the
// clone's interning evolves independently.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		schema:  r.schema,
		tuples:  make([]Tuple, len(r.tuples)),
		cols:    make([]*column, len(r.cols)),
		version: r.version,
		appends: r.appends,
	}
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	for i := range r.cols {
		out.cols[i] = r.cols[i].clone()
	}
	return out
}

// Select returns the TIDs of tuples satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) []int {
	var out []int
	for tid, t := range r.tuples {
		if pred(t) {
			out = append(out, tid)
		}
	}
	return out
}

// Distinct returns the number of distinct full tuples.
func (r *Relation) Distinct() int {
	seen := make(map[string]struct{}, len(r.tuples))
	for _, t := range r.tuples {
		seen[t.FullKey()] = struct{}{}
	}
	return len(seen)
}

// applyPermutation reorders tuples so that new position i holds old
// position perm[i], updating every code column and bumping all versions
// (TIDs are renumbered, so every index is stale).
func (r *Relation) applyPermutation(perm []int) {
	tuples := make([]Tuple, len(perm))
	for i, p := range perm {
		tuples[i] = r.tuples[p]
	}
	r.tuples = tuples
	for a := range r.cols {
		c := r.cols[a]
		codes := make([]int32, len(perm))
		for i, p := range perm {
			codes[i] = c.codes[p]
		}
		c.codes = codes
		c.seg = nil // the fresh permuted array replaced any mapped view
		c.version++
		c.patchLog = nil // TIDs renumbered; journaled patches are meaningless
	}
	r.version++
}

// SortBy sorts tuples in place by the listed attribute positions
// (ascending, Value.Compare order). TIDs are renumbered; callers holding
// TIDs across a sort must not.
func (r *Relation) SortBy(idxs []int) {
	r.SortStable(func(a, b Tuple) bool {
		for _, idx := range idxs {
			if c := a[idx].Compare(b[idx]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// SortStable stably sorts tuples by an arbitrary comparator, keeping the
// columnar codes in sync. TIDs are renumbered.
func (r *Relation) SortStable(less func(a, b Tuple) bool) {
	perm := make([]int, len(r.tuples))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return less(r.tuples[perm[i]], r.tuples[perm[j]]) })
	r.applyPermutation(perm)
}

// Head renders the first n tuples as an aligned text table for display.
func (r *Relation) Head(n int) string {
	if n > len(r.tuples) {
		n = len(r.tuples)
	}
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, name := range names {
		widths[i] = len(name)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(names))
		for j, v := range r.tuples[i] {
			row[j] = v.String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for k := len(c); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range rows {
		writeRow(row)
	}
	if n < len(r.tuples) {
		fmt.Fprintf(&b, "... (%d more tuples)\n", len(r.tuples)-n)
	}
	return b.String()
}
