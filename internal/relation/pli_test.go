package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomMixedRelation builds a relation over string/int/float columns
// with small domains (so groups are non-trivial), NULLs, awkward string
// values chosen to stress the prefix-free encoding (digits, colons,
// prefixes of each other), and a round of post-insert Set edits —
// including kind-mismatched writes into the int column, which is the
// historical unchecked Set behavior that produces mixed-kind columns.
func randomMixedRelation(t testing.TB, seed int64, n int) *Relation {
	t.Helper()
	schema := MustSchema("rnd",
		Attribute{Name: "S", Kind: KindString},
		Attribute{Name: "I", Kind: KindInt},
		Attribute{Name: "F", Kind: KindFloat},
		Attribute{Name: "S2", Kind: KindString},
	)
	rng := rand.New(rand.NewSource(seed))
	strDomain := []string{"", "a", "ab", "abc", "1", "12", "1:", "12:", ":", "x;", "-3", "edi", "gla"}
	r := New(schema)
	randS := func() Value {
		if rng.Intn(10) == 0 {
			return Null()
		}
		return String(strDomain[rng.Intn(len(strDomain))])
	}
	randI := func() Value {
		if rng.Intn(10) == 0 {
			return Null()
		}
		return Int(int64(rng.Intn(7) - 3))
	}
	randF := func() Value {
		if rng.Intn(10) == 0 {
			return Null()
		}
		if rng.Intn(2) == 0 {
			// Integral floats; via Insert these may also arrive as Int
			// and be coerced, exercising the cross-kind path.
			return Float(float64(rng.Intn(5)))
		}
		return Float(float64(rng.Intn(5)) + 0.5)
	}
	for i := 0; i < n; i++ {
		f := randF()
		if rng.Intn(3) == 0 && !f.IsNull() && f.FloatVal() == float64(int64(f.FloatVal())) {
			f = Int(int64(f.FloatVal())) // Insert must coerce this
		}
		r.MustInsert(Tuple{randS(), randI(), f, randS()})
	}
	for k := 0; k < n/4; k++ {
		tid, attr := rng.Intn(n), rng.Intn(4)
		switch attr {
		case 0, 3:
			r.Set(tid, attr, randS())
		case 1:
			if rng.Intn(4) == 0 {
				// Kind-mismatched write: a float value in the int column.
				r.Set(tid, attr, Float(float64(rng.Intn(7)-3)))
			} else {
				r.Set(tid, attr, randI())
			}
		case 2:
			r.Set(tid, attr, randF())
		}
	}
	return r
}

// TestPLIMatchesHashIndex is the grouping-agreement regression promised
// by the Value.Encode documentation: on randomized relations (including
// coerced inserts and mixed-kind Set writes) the PLI partition has
// exactly the buckets of the legacy string-key HashIndex, in exactly the
// sorted-key order.
func TestPLIMatchesHashIndex(t *testing.T) {
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {1, 0}, {2, 1}, {0, 2, 3}, {3, 2, 1, 0}}
	for seed := int64(1); seed <= 8; seed++ {
		r := randomMixedRelation(t, seed, 200+int(seed)*37)
		for _, attrs := range attrSets {
			idx := BuildIndex(r, attrs)
			pli := BuildPLI(r, attrs)
			keys := idx.Keys()
			if pli.NumGroups() != len(keys) {
				t.Fatalf("seed %d attrs %v: PLI has %d groups, HashIndex %d keys",
					seed, attrs, pli.NumGroups(), len(keys))
			}
			for g, key := range keys {
				want := idx.LookupKey(key)
				got := pli.Group(g)
				if len(got) != len(want) {
					t.Fatalf("seed %d attrs %v group %d: PLI %v vs HashIndex %v", seed, attrs, g, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d attrs %v group %d: PLI %v vs HashIndex %v", seed, attrs, g, got, want)
					}
				}
				for _, tid := range got {
					if pli.GroupOf(tid) != g {
						t.Fatalf("seed %d attrs %v: GroupOf(%d) = %d, want %d", seed, attrs, tid, pli.GroupOf(tid), g)
					}
				}
			}
		}
	}
}

// samePartition asserts two PLIs have byte-identical groups: same group
// count, same group order, same member order.
func samePartition(t *testing.T, ctx string, got, want *PLI) {
	t.Helper()
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("%s: %d groups, want %d", ctx, got.NumGroups(), want.NumGroups())
	}
	for g := 0; g < want.NumGroups(); g++ {
		gg, wg := got.Group(g), want.Group(g)
		if len(gg) != len(wg) {
			t.Fatalf("%s group %d: %v, want %v", ctx, g, gg, wg)
		}
		for i := range wg {
			if gg[i] != wg[i] {
				t.Fatalf("%s group %d: %v, want %v", ctx, g, gg, wg)
			}
		}
	}
}

// TestIntersectMatchesBuildPLI is the partition-intersection property:
// on random mixed-kind relations, refining PLI[X] by one extra
// attribute y produces byte-identical groups, member order, and group
// order to counting-sorting X++[y] from scratch — for every prefix X of
// several attribute chains, chained intersections included.
func TestIntersectMatchesBuildPLI(t *testing.T) {
	chains := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0}, {2, 0}}
	for seed := int64(1); seed <= 8; seed++ {
		r := randomMixedRelation(t, seed, 150+int(seed)*41)
		for _, chain := range chains {
			p := BuildPLI(r, chain[:1])
			for k := 2; k <= len(chain); k++ {
				p = p.Intersect(chain[k-1])
				want := BuildPLI(r, chain[:k])
				samePartition(t, fmt.Sprintf("seed %d chain %v level %d", seed, chain, k), p, want)
				for tid := 0; tid < r.Len(); tid++ {
					if p.GroupOf(tid) != want.GroupOf(tid) {
						t.Fatalf("seed %d chain %v level %d: GroupOf(%d) = %d, want %d",
							seed, chain, k, tid, p.GroupOf(tid), want.GroupOf(tid))
					}
				}
				if !p.Fresh(r) {
					t.Fatalf("seed %d chain %v level %d: intersected PLI is not fresh", seed, chain, k)
				}
			}
		}
	}
}

// TestPLILookupMatchesHashIndex checks that PLI.Lookup agrees with
// HashIndex.LookupKey for every key present in the relation and returns
// nil for foreign values that were never interned.
func TestPLILookupMatchesHashIndex(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := randomMixedRelation(t, seed, 200)
		for _, attrs := range [][]int{{0}, {1, 2}, {0, 3}, {2, 1, 0}} {
			idx := BuildIndex(r, attrs)
			pli := BuildPLI(r, attrs)
			for tid := 0; tid < r.Len(); tid++ {
				probe := r.Tuple(tid).Project(attrs)
				want := idx.Lookup(r.Tuple(tid))
				got := pli.Lookup(probe)
				if len(got) != len(want) {
					t.Fatalf("seed %d attrs %v tid %d: Lookup %v, want %v", seed, attrs, tid, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d attrs %v tid %d: Lookup %v, want %v", seed, attrs, tid, got, want)
					}
				}
			}
			// A value absent from the dictionaries can match no group.
			miss := make(Tuple, len(attrs))
			for i := range miss {
				miss[i] = String("never-inserted-value")
			}
			if got := pli.Lookup(miss); got != nil {
				t.Fatalf("seed %d attrs %v: Lookup of foreign value returned %v", seed, attrs, got)
			}
			if got := pli.Lookup(miss[:0]); got != nil {
				t.Fatalf("seed %d attrs %v: arity-mismatched Lookup returned %v", seed, attrs, got)
			}
		}
	}
}

// TestGetViaRefinesAndValidates covers the cache-aware refinement path:
// GetVia answers from the parent partition when it can, falls back to a
// full build when it cannot, and everything it returns validates Fresh —
// including after edits that invalidate the parent.
func TestGetViaRefinesAndValidates(t *testing.T) {
	r := randomMixedRelation(t, 21, 180)
	cache := NewIndexCache()

	// Level-wise walk: singles are full builds, pairs/triples refine.
	cache.GetVia(r, []int{0})
	cache.GetVia(r, []int{1})
	if s := cache.Stats(); s.Misses != 2 || s.Refines != 0 {
		t.Fatalf("after singles: %+v", s)
	}
	p01 := cache.GetVia(r, []int{0, 1})
	if s := cache.Stats(); s.Misses != 2 || s.Refines != 1 {
		t.Fatalf("pair should refine from its prefix: %+v", s)
	}
	samePartition(t, "GetVia{0,1}", p01, BuildPLI(r, []int{0, 1}))
	p012 := cache.GetVia(r, []int{0, 1, 2})
	if s := cache.Stats(); s.Refines != 2 {
		t.Fatalf("triple should refine from the cached pair: %+v", s)
	}
	samePartition(t, "GetVia{0,1,2}", p012, BuildPLI(r, []int{0, 1, 2}))
	if !p012.Fresh(r) {
		t.Fatalf("GetVia result is stale on a quiescent relation")
	}
	if got := cache.GetVia(r, []int{0, 1, 2}); got != p012 {
		t.Fatalf("warm GetVia rebuilt the PLI")
	}

	// A pair whose prefix was never cached falls back to a full build.
	cache.GetVia(r, []int{3, 2})
	if s := cache.Stats(); s.Misses != 3 {
		t.Fatalf("orphan pair should build from scratch: %+v", s)
	}

	// Edit column 1: {0,1} and {0,1,2} lag by a journaled cell patch;
	// re-requesting {0,1,2} drains the patch into the cached PLI in
	// place — no rebuild — and the patched result reflects the edit.
	r.Set(3, 1, String("post-edit-value"))
	if p012.Fresh(r) {
		t.Fatalf("PLI over edited column claims freshness")
	}
	missesBefore := cache.Stats().Misses
	p012b := cache.GetVia(r, []int{0, 1, 2})
	if p012b != p012 {
		t.Fatalf("GetVia rebuilt a patchable PLI instead of patching it")
	}
	if s := cache.Stats(); s.Misses != missesBefore || s.Patches == 0 {
		t.Fatalf("edit should patch, not rebuild: %+v", s)
	}
	if !p012b.Fresh(r) {
		t.Fatalf("post-edit GetVia result does not validate Fresh")
	}
	samePartition(t, "post-edit GetVia{0,1,2}", p012b, BuildPLI(r, []int{0, 1, 2}))

	// With the parent re-warmed, the child refines again post-edit.
	cache.GetVia(r, []int{0, 1})
	before := cache.Stats()
	p013 := cache.GetVia(r, []int{0, 1, 3})
	if s := cache.Stats(); s.Refines != before.Refines+1 {
		t.Fatalf("re-warmed parent should serve refinement: %+v -> %+v", before, s)
	}
	if !p013.Fresh(r) {
		t.Fatalf("refined PLI does not validate Fresh after edits")
	}
	samePartition(t, "post-edit GetVia{0,1,3}", p013, BuildPLI(r, []int{0, 1, 3}))
}

// TestInternNoIdenticalCollision asserts the interning invariant behind
// code-based comparison: within a column populated through Insert (which
// coerces ints into float columns), no two distinct codes hold Identical
// values — Int(9) inserted into a float column lands on the same code as
// Float(9). This is the regression test for the cross-kind ambiguity
// note on Value.Encode.
func TestInternNoIdenticalCollision(t *testing.T) {
	schema := MustSchema("ck",
		Attribute{Name: "F", Kind: KindFloat},
		Attribute{Name: "I", Kind: KindInt},
		Attribute{Name: "S", Kind: KindString},
	)
	r := New(schema)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		var f Value
		switch rng.Intn(3) {
		case 0:
			f = Int(int64(rng.Intn(6))) // coerced to Float by Insert
		case 1:
			f = Float(float64(rng.Intn(6)))
		default:
			f = Float(float64(rng.Intn(6)) + 0.25)
		}
		r.MustInsert(Tuple{f, Int(int64(rng.Intn(6) - 3)), String(fmt.Sprint(rng.Intn(9)))})
	}
	// Int(k) and Float(k) must have landed on one code in the F column.
	a := r.MustInsert(Tuple{Int(3), Int(0), String("x")})
	b := r.MustInsert(Tuple{Float(3), Int(0), String("x")})
	if r.Code(a, 0) != r.Code(b, 0) {
		t.Fatalf("Insert coercion: Int(3) and Float(3) interned as different codes in float column")
	}
	// The raw encodings do differ across kinds — that is the documented
	// ambiguity the coercion neutralizes.
	if string(Int(3).Encode(nil)) == string(Float(3).Encode(nil)) {
		t.Fatalf("Encode no longer distinguishes Int(3) from Float(3); update the interning rationale")
	}
	for attr := 0; attr < schema.Arity(); attr++ {
		d := r.DistinctCodes(attr)
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				vi, vj := r.CodeValue(attr, int32(i)), r.CodeValue(attr, int32(j))
				if vi.Identical(vj) {
					t.Errorf("column %d: distinct codes %d/%d hold Identical values %s/%s",
						attr, i, j, vi, vj)
				}
			}
		}
	}
}

func TestLookupCode(t *testing.T) {
	schema := MustSchema("lk",
		Attribute{Name: "F", Kind: KindFloat},
		Attribute{Name: "I", Kind: KindInt},
	)
	r := New(schema)
	r.MustInsert(Tuple{Float(2), Int(7)})
	r.MustInsert(Tuple{Float(2.5), Null()})

	if code, ok, unique := r.LookupCode(0, Int(2)); !ok || !unique || code != r.Code(0, 0) {
		t.Fatalf("LookupCode(F, Int(2)) = (%d, %v, %v): the Float(2) twin must match", code, ok, unique)
	}
	if _, ok, _ := r.LookupCode(0, Int(3)); ok {
		t.Fatalf("LookupCode(F, Int(3)) found a match in a column without 3")
	}
	if code, ok, unique := r.LookupCode(1, Float(7)); !ok || !unique || code != r.Code(0, 1) {
		t.Fatalf("LookupCode(I, Float(7)) = (%d, %v, %v): the Int(7) twin must match", code, ok, unique)
	}
	if code, ok, unique := r.LookupCode(1, Null()); !ok || !unique || code != r.Code(1, 1) {
		t.Fatalf("LookupCode(I, NULL) = (%d, %v, %v)", code, ok, unique)
	}
	// A mixed column (via unchecked Set) holds Int(7) and Float(7) under
	// distinct codes; the lookup must flag the ambiguity.
	r.Set(1, 1, Float(7))
	if _, ok, unique := r.LookupCode(1, Int(7)); !ok || unique {
		t.Fatalf("LookupCode on a mixed column should report a non-unique match")
	}
}

// TestVersionsAndInvalidation covers the staleness contract: Set
// journals a cell patch on only the touched column (drained into
// cached PLIs in place, never a rebuild), Insert bumps no column
// version (appends are absorbable, not invalidating), a code-identical
// Set journals nothing, and only Truncate-style rollback invalidates
// wholesale.
func TestVersionsAndInvalidation(t *testing.T) {
	r := randomMixedRelation(t, 42, 120)
	cache := NewIndexCache()

	p01 := cache.Get(r, []int{0, 1})
	p23 := cache.Get(r, []int{2, 3})
	if s := cache.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("cold cache stats = %+v", s)
	}
	if got := cache.Get(r, []int{0, 1}); got != p01 {
		t.Fatalf("warm lookup rebuilt the PLI")
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("stats after warm lookup = %+v", cache.Stats())
	}

	// Code-identical overwrite: no version change, indexes stay fresh.
	v0, vc := r.Version(), r.ColumnVersion(0)
	r.Set(5, 0, r.Get(5, 0))
	if r.Version() != v0 || r.ColumnVersion(0) != vc {
		t.Fatalf("code-identical Set bumped versions")
	}

	// Edit column 0: only indexes mentioning column 0 lag, by a
	// journaled patch the next lookup drains in place — no rebuild.
	old := r.Get(7, 0)
	pv := r.PatchVersion(0)
	r.Set(7, 0, String("freshly-edited-value"))
	if r.ColumnVersion(0) != vc {
		t.Fatalf("Set hard-invalidated the column instead of journaling a patch")
	}
	if r.PatchVersion(0) != pv+1 {
		t.Fatalf("Set did not journal a cell patch")
	}
	if p01.Fresh(r) {
		t.Fatalf("PLI over edited column still claims freshness")
	}
	if !p23.Fresh(r) {
		t.Fatalf("PLI over untouched columns was invalidated by an unrelated edit")
	}
	editBefore := cache.Stats()
	p01b := cache.Get(r, []int{0, 1})
	if p01b != p01 {
		t.Fatalf("cache rebuilt a patchable PLI instead of patching it")
	}
	if s := cache.Stats(); s.Misses != editBefore.Misses || s.Patches != editBefore.Patches+1 {
		t.Fatalf("edit should patch, not rebuild: %+v -> %+v", editBefore, s)
	}
	if !p01b.Fresh(r) {
		t.Fatalf("patched PLI does not validate Fresh")
	}
	if got := cache.Get(r, []int{2, 3}); got != p23 {
		t.Fatalf("cache rebuilt an index over untouched columns")
	}
	// The patched index reflects the edit: the tuple moved groups.
	idx := BuildIndex(r, []int{0, 1})
	keys := idx.Keys()
	for g, key := range keys {
		want := idx.LookupKey(key)
		got := p01b.Group(g)
		if len(got) != len(want) {
			t.Fatalf("rebuilt PLI group %d = %v, want %v", g, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rebuilt PLI group %d = %v, want %v", g, got, want)
			}
		}
	}
	r.Set(7, 0, old)

	// Insert leaves every index length-stale but advanceable: the cache
	// absorbs the appended row into the same PLI instead of rebuilding.
	p23 = cache.Get(r, []int{2, 3})
	before := cache.Stats()
	appendVer := r.AppendVersion()
	r.MustInsert(Tuple{String("s"), Int(1), Float(1.5), String("t")})
	if r.AppendVersion() != appendVer+1 {
		t.Fatalf("Insert did not move the append watermark")
	}
	if p23.Fresh(r) {
		t.Fatalf("PLI claims freshness before absorbing the appended row")
	}
	if !p23.AdvanceableTo(r) {
		t.Fatalf("append-only staleness not advanceable")
	}
	got := cache.Get(r, []int{2, 3})
	if got != p23 {
		t.Fatalf("cache rebuilt an append-stale PLI instead of advancing it")
	}
	if !got.Fresh(r) {
		t.Fatalf("advanced PLI does not validate Fresh")
	}
	after := cache.Stats()
	if after.Misses != before.Misses || after.Advances != before.Advances+1 {
		t.Fatalf("append should advance, not rebuild: %+v -> %+v", before, after)
	}
	samePartition(t, "post-append advance", got, BuildPLI(r, []int{2, 3}))

	// A Truncate (the append rollback) invalidates wholesale: an index
	// that may have absorbed the dropped rows cannot be trusted if the
	// relation grows back to the same length with different tuples.
	r.Truncate(r.Len() - 1)
	if p23.Fresh(r) || p23.AdvanceableTo(r) {
		t.Fatalf("PLI survived a Truncate")
	}
	if got := cache.Get(r, []int{2, 3}); got == p23 {
		t.Fatalf("cache served a pre-Truncate PLI")
	}
}

// TestIndexCacheConcurrent hammers one cache from many goroutines under
// -race: concurrent readers over a quiescent relation must share
// entries safely.
func TestIndexCacheConcurrent(t *testing.T) {
	r := randomMixedRelation(t, 7, 300)
	cache := NewIndexCache()
	attrSets := [][]int{{0}, {1}, {0, 1}, {2, 3}, {3, 0}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				attrs := attrSets[(w+i)%len(attrSets)]
				pli := cache.Get(r, attrs)
				if !pli.Fresh(r) {
					t.Errorf("stale PLI from quiescent cache")
					return
				}
				n := 0
				for g := 0; g < pli.NumGroups(); g++ {
					n += len(pli.Group(g))
				}
				if n != r.Len() {
					t.Errorf("partition covers %d of %d tuples", n, r.Len())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s := cache.Stats(); s.Hits+s.Misses != 8*50 {
		t.Fatalf("stats don't add up: %+v", s)
	}
}

// TestSortStableKeepsCodes checks that relation-level sorting permutes
// the code columns together with the tuples.
func TestSortStableKeepsCodes(t *testing.T) {
	r := randomMixedRelation(t, 11, 150)
	r.SortBy([]int{0, 2})
	for tid := 0; tid < r.Len(); tid++ {
		for attr := 0; attr < r.Schema().Arity(); attr++ {
			v := r.Get(tid, attr)
			rep := r.CodeValue(attr, r.Code(tid, attr))
			if string(v.Encode(nil)) != string(rep.Encode(nil)) {
				t.Fatalf("after sort, cell (%d,%d)=%s disagrees with its code's value %s", tid, attr, v, rep)
			}
		}
	}
	pli := BuildPLI(r, []int{0})
	idx := BuildIndex(r, []int{0})
	if pli.NumGroups() != idx.Size() {
		t.Fatalf("post-sort PLI groups = %d, HashIndex = %d", pli.NumGroups(), idx.Size())
	}
}
