//go:build !linux || !(amd64 || arm64)

package relation

// Mapping is a no-op stand-in on platforms without the zero-copy mmap
// path (see mmap_linux.go): segments are decoded onto the heap with
// plain reads, so no array is ever a view into mapped memory and the
// holds* probes are constant false. Spill/page-in still works — a
// demoted index costs a file read instead of a rebuild — it just
// re-enters the byte budget at full heap size.
type Mapping struct{}

// mmapSupported reports whether this build reads segments zero-copy.
const mmapSupported = false

func (m *Mapping) holdsInt(s []int) bool     { return false }
func (m *Mapping) holdsInt32(s []int32) bool { return false }

// openPLISegment decodes a PLI segment onto the heap.
func openPLISegment(path string) (*pliSegData, error) {
	return readPLISegmentHeap(path)
}

// openColumnSegment decodes a column segment onto the heap. The nil
// mapping tells Relation.SpillColumns there is nothing to gain from
// swapping the resident codes for the decoded copy.
func openColumnSegment(path string) ([]int32, *Mapping, error) {
	codes, err := readColumnSegmentHeap(path)
	return codes, nil, err
}
