package relation

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of an IndexCache's counters. Misses count
// from-scratch index (re)builds and Refines count parent-partition
// intersections (GetVia), so "zero rebuilds" across repeated detection
// or discovery is asserted by Misses+Refines staying constant while
// Hits grows.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Refines counts GetVia lookups answered by refining a cached parent
	// PLI with one extra attribute instead of counting-sorting from
	// scratch.
	Refines uint64 `json:"refines"`
}

// IndexCache memoizes PLIs per attribute set for one logical dataset.
// Entries carry their build-time column versions, so a lookup after a
// mutation rebuilds exactly the indexes whose columns were touched:
// cell edits invalidate only PLIs mentioning the edited column, inserts
// and relation swaps invalidate everything.
//
// The cache is safe for concurrent use. It is keyed by attribute set
// only — callers hand it the current relation on every Get and the
// cache validates the stored snapshot against it — so an engine session
// keeps one cache across Accept/Append data swaps, and a repair run
// keeps one across materialize passes.
type IndexCache struct {
	mu      sync.RWMutex
	entries map[string]*PLI
	hits    atomic.Uint64
	misses  atomic.Uint64
	refines atomic.Uint64
}

// NewIndexCache creates an empty cache.
func NewIndexCache() *IndexCache {
	return &IndexCache{entries: make(map[string]*PLI)}
}

func attrsKey(attrs []int) string {
	buf := make([]byte, 0, 4*len(attrs))
	for _, a := range attrs {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// Get returns a PLI of r over attrs, reusing the cached one when it is
// still fresh and rebuilding (and re-caching) it otherwise. Concurrent
// readers may race to rebuild the same stale entry; both get a correct
// index and one of them wins the cache slot.
func (c *IndexCache) Get(r *Relation, attrs []int) *PLI {
	key := attrsKey(attrs)
	c.mu.RLock()
	p := c.entries[key]
	c.mu.RUnlock()
	if p != nil && p.Fresh(r) {
		c.hits.Add(1)
		return p
	}
	p = BuildPLI(r, attrs)
	c.misses.Add(1)
	c.store(r, key, p)
	return p
}

// GetVia returns a PLI of r over attrs like Get, but answers a miss by
// refining the cached PLI over attrs[:len-1] with the last attribute
// (PLI.Intersect) when that parent is present and fresh — one counting
// sort instead of len(attrs). Level-wise lattice walks (TANE-style
// discovery) visit attribute sets in exactly the order that keeps the
// parent warm, so a cold walk costs one full build per single attribute
// and one refinement per larger set.
func (c *IndexCache) GetVia(r *Relation, attrs []int) *PLI {
	key := attrsKey(attrs)
	c.mu.RLock()
	p := c.entries[key]
	var parent *PLI
	if p == nil || !p.Fresh(r) {
		if len(attrs) > 1 {
			parent = c.entries[attrsKey(attrs[:len(attrs)-1])]
		}
		p = nil
	}
	c.mu.RUnlock()
	if p != nil {
		c.hits.Add(1)
		return p
	}
	if parent != nil && parent.Fresh(r) {
		p = parent.Intersect(attrs[len(attrs)-1])
		c.refines.Add(1)
	} else {
		p = BuildPLI(r, attrs)
		c.misses.Add(1)
	}
	c.store(r, key, p)
	return p
}

// store publishes a freshly built PLI under key, evicting entries that
// no longer describe the caller's relation.
func (c *IndexCache) store(r *Relation, key string, p *PLI) {
	c.mu.Lock()
	if prior := c.entries[key]; prior == nil || !prior.Fresh(r) {
		c.entries[key] = p
	}
	// PLIs pin the relation they were built from. When the caller's
	// relation changes identity (a session committing a repair swaps its
	// data), drop every entry still referencing another relation so the
	// cache never keeps a replaced dataset alive — including entries
	// under attribute sets the caller no longer asks for.
	for k, e := range c.entries {
		if e.rel != r {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// Stats returns the cache's hit/miss/refine counters.
func (c *IndexCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Refines: c.refines.Load()}
}

// Len returns the number of cached attribute sets.
func (c *IndexCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Reset drops every entry (counters are preserved).
func (c *IndexCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*PLI)
}
