package relation

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of an IndexCache's counters. Misses count
// from-scratch index (re)builds and Refines count parent-partition
// intersections (GetVia), so "zero rebuilds" across repeated detection
// or discovery is asserted by Misses+Refines staying constant while
// Hits grows.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Refines counts GetVia lookups answered by refining a cached parent
	// PLI with one extra attribute instead of counting-sorting from
	// scratch.
	Refines uint64 `json:"refines"`
	// Advances counts lookups answered by absorbing appended rows into
	// the cached PLI in place (PLI.Advance) instead of rebuilding it —
	// the steady-state append→detect path builds nothing, so
	// Misses+Refines stay constant while Advances grows.
	Advances uint64 `json:"advances"`
	// Patches counts lookups answered by draining the per-column cell-
	// patch journal into the cached PLI (PLI re-homes the patched TIDs
	// between groups in O(group)) instead of rebuilding it — the
	// append→repair→detect path keeps every index warm, so
	// Misses+Refines stay constant while Patches grows.
	Patches uint64 `json:"patches"`
	// Evictions counts entries dropped outright to keep the cache inside
	// its byte budget (SetBudget) — the fallback when no spill store is
	// attached or the victim has no reusable on-disk snapshot.
	Evictions uint64 `json:"evictions"`
	// Spills counts budget victims demoted to a segment file instead of
	// discarded (SetSpill): the heap arrays are dropped, the entry's
	// watermarks and file live on, and the next lookup pages it back in
	// without a rebuild.
	Spills uint64 `json:"spills"`
	// Pageins counts lookups answered by re-mapping a demoted entry's
	// segment file (zero-copy mmap on linux, a plain read elsewhere) —
	// on a budget-constrained warm path Pageins grow while Misses and
	// Refines stay flat, which is the "paging, not thrashing" assertion
	// BenchmarkSpillDetect makes.
	Pageins uint64 `json:"pageins"`
	// ShardBuilds counts the builds and refines that actually ran the
	// TID-range-parallel counting sort (SetShards > 1 AND a relation
	// large enough to feed the fan-out) — the observability hook for
	// "cold builds use the worker pool, warm traffic builds nothing".
	ShardBuilds uint64 `json:"shard_builds"`
}

// cacheEntry wraps a cached PLI with its recency tick and last-measured
// resident size (bytes is guarded by IndexCache.mu) for eviction.
// onDisk, when non-nil, is the entry's last written spill snapshot: a
// paged-in entry keeps the record it came from, so demoting it again
// while unchanged reuses the file instead of rewriting it.
type cacheEntry struct {
	pli     *PLI
	lastUse atomic.Uint64
	bytes   int64
	onDisk  *spillRecord
}

// IndexCache memoizes PLIs per attribute set for one logical dataset.
// Entries carry their build-time column versions, patch-journal
// watermarks and length watermark, so a lookup after a mutation does
// the minimum work: cell edits are drained from the per-column patch
// journal into the PLIs mentioning the edited column (each patched TID
// re-homed in O(group) — see PLI.catchUp; only journal overflow,
// reorders and truncation still invalidate), appends are absorbed in
// place (PLI.Advance — no rebuild at all), and relation swaps
// invalidate everything. A large pending patch set falls back to a
// rebuild when that is cheaper, under the same byte budget as any
// other store.
//
// The cache is safe for concurrent use. It is keyed by attribute set
// only — callers hand it the current relation on every Get and the
// cache validates the stored snapshot against it — so an engine session
// keeps one cache across Accept data swaps, and a repair run keeps one
// across materialize passes. Catch-up mutations are serialized per
// entry; advances never overlap lock-free readers because appends are
// exclusive at the session level and readers re-fetch per shared-lock
// window, and compacting an entry a GetDelta reader may still be
// iterating is done copy-on-write with the slot republished (see
// PLI.catchUp), so Get and GetDelta interleave safely on one entry.
type IndexCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	// rel tracks the identity of the relation the resident entries were
	// built from, so store only sweeps for replaced-relation entries
	// when the identity actually changes (not on every store).
	rel *Relation
	// budget is atomic so the hit/advance fast path can test "is a
	// budget configured at all" without taking the cache lock; resident
	// is the running total of entry sizes (guarded by mu), maintained on
	// store/evict/advance so budget enforcement never rescans the map.
	budget   atomic.Int64
	resident int64

	// spill, when set, turns budget eviction into tiered demotion: clean
	// victims are written to (or keep) a segment file and move to the
	// spilled map, from which lookups page them back in via read-only
	// mmap instead of rebuilding. Both fields are guarded by mu.
	spill   *SpillStore
	spilled map[string]*spillRecord

	// shards is the fan-out every from-scratch build and refinement of
	// this cache runs with (BuildPLISharded/IntersectSharded); 1 (the
	// default) is the serial path. Atomic so SetShards never contends
	// with the lookup fast path.
	shards atomic.Int32

	tick        atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	refines     atomic.Uint64
	advances    atomic.Uint64
	patches     atomic.Uint64
	evictions   atomic.Uint64
	spills      atomic.Uint64
	pageins     atomic.Uint64
	shardBuilds atomic.Uint64
}

// NewIndexCache creates an empty cache with no byte budget.
func NewIndexCache() *IndexCache {
	return &IndexCache{
		entries: make(map[string]*cacheEntry),
		spilled: make(map[string]*spillRecord),
	}
}

// SetSpill attaches a spill store, repointing the byte budget from
// existence to residency: a clean entry evicted under budget pressure
// is demoted to a segment file in the store (heap arrays dropped) and
// the next Get/GetVia pages it back in as zero-copy mapped views
// instead of rebuilding — mapped storage is pageable OS memory, so it
// costs the budget (a heap-residency cap) almost nothing. Entries that
// are NOT clean — carrying a delta tail, patch holes or a dirty flag —
// never spill in that state; they stay pinned heap-resident until
// compaction, falling back to their last clean snapshot (plus catchUp)
// or to a plain eviction. Attach before concurrent use.
func (c *IndexCache) SetSpill(store *SpillStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spill = store
}

// SetBudget caps the cache's resident PLI bytes (0 = unlimited, the
// default). The budget is enforced on store and on in-place advances
// (the paths where entries grow): when the running resident total
// overflows, entries are evicted deepest-attribute-set first, then
// least-recently-used among equals — so a discovery walk's deep lattice
// leaves (cheap to re-derive via GetVia refinement) go before the
// shallow detection partitions a service session reuses forever.
func (c *IndexCache) SetBudget(bytes int64) {
	c.budget.Store(bytes)
}

// SetShards sets the shard fan-out of the cache's index builds: every
// cache miss (BuildPLISharded) and refinement (IntersectSharded) splits
// its counting-sort passes across up to n workers, with byte-identical
// output to the serial build. n <= 0 means runtime.GOMAXPROCS(0), 1
// (the default) forces the serial path. Relations too small to feed the
// fan-out fall back to serial regardless (see effectiveShards), so the
// knob is safe to leave at NumCPU for mixed dataset sizes.
func (c *IndexCache) SetShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.shards.Store(int32(n))
}

// buildShards returns the configured fan-out (1 when unset).
func (c *IndexCache) buildShards() int {
	if s := c.shards.Load(); s > 1 {
		return int(s)
	}
	return 1
}

// build runs a from-scratch sharded build, counting it as a shard build
// when the fan-out actually engaged.
func (c *IndexCache) build(r *Relation, attrs []int) *PLI {
	s := c.buildShards()
	if effectiveShards(r.Len(), s) > 1 {
		c.shardBuilds.Add(1)
	}
	return BuildPLISharded(r, attrs, s)
}

// refine runs a sharded parent refinement, counting it as a shard build
// when the fan-out actually engaged. The caller guarantees the parent
// is fresh for r (GetVia catches it up first), so r.Len() is the
// parent's row count.
func (c *IndexCache) refine(r *Relation, parent *PLI, y int) *PLI {
	s := c.buildShards()
	if effectiveShards(r.Len(), s) > 1 {
		c.shardBuilds.Add(1)
	}
	return parent.IntersectSharded(y, s)
}

func attrsKey(attrs []int) string {
	buf := make([]byte, 0, 4*len(attrs))
	for _, a := range attrs {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// Get returns a canonical PLI of r over attrs: a cached entry that is
// fresh (or stale only by appends, which Get absorbs and compacts) is
// reused; otherwise the index is rebuilt and re-cached. A fresh entry
// still carrying a delta tail (left by GetDelta) is compacted
// copy-on-write and the slot republished. Concurrent readers may race
// to rebuild the same stale entry; both get a correct index and one of
// them wins the cache slot.
func (c *IndexCache) Get(r *Relation, attrs []int) *PLI {
	return c.lookup(r, attrs, true)
}

// GetDelta is Get for delta-tolerant consumers (incremental detection):
// a stale-only-by-appends entry is advanced but NOT compacted, so each
// absorbed batch costs O(delta) and the appended rows sit in per-group
// tails — group iteration sees provisional new groups after the base
// groups, in arrival rather than sorted-key order. Use Get wherever
// canonical group order matters; a later Get compacts the tail.
func (c *IndexCache) GetDelta(r *Relation, attrs []int) *PLI {
	return c.lookup(r, attrs, false)
}

func (c *IndexCache) lookup(r *Relation, attrs []int, compact bool) *PLI {
	key := attrsKey(attrs)
	c.mu.RLock()
	e := c.entries[key]
	hasSpilled := len(c.spilled) > 0
	c.mu.RUnlock()
	if e == nil && hasSpilled {
		e = c.pageIn(r, key)
	}
	if e != nil {
		if pli, advanced, patched := e.pli.catchUp(r, compact); pli != nil {
			e.lastUse.Store(c.tick.Add(1))
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			if advanced || patched {
				c.enforceBudget(key)
			} else {
				c.hits.Add(1)
			}
			if pli != e.pli {
				c.replaceEntry(key, e.pli, pli)
			}
			return pli
		}
	}
	p := c.build(r, attrs)
	c.misses.Add(1)
	c.store(r, key, p)
	return p
}

// replaceEntry publishes the copy-on-write compaction of a tailed entry
// (see PLI.catchUp): subsequent lookups get the compacted index while
// readers still iterating the old tailed one keep their consistent
// snapshot. No-op if the slot no longer holds the PLI the copy was made
// from (a concurrent rebuild or eviction won).
func (c *IndexCache) replaceEntry(key string, old, compacted *PLI) {
	tick := c.tick.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	prior := c.entries[key]
	if prior == nil || prior.pli != old {
		return
	}
	// The compacted copy holds the same logical content at the same
	// watermarks, so the prior entry's spill snapshot (if any) remains
	// its snapshot — carried over, revalidated at the next demote.
	e := &cacheEntry{pli: compacted, bytes: compacted.MemSize(), onDisk: prior.onDisk}
	e.lastUse.Store(tick)
	c.resident += e.bytes - prior.bytes
	c.entries[key] = e
	c.enforceBudgetLocked(key)
}

// enforceBudget applies the byte budget outside store — the steady-state
// append path grows entries in place (PLI.Advance) without ever storing,
// and must not outgrow a configured cap. The advanced entry's size is
// re-measured and folded into the running resident total, so the call is
// O(1) unless an eviction is actually due. No-op (and lock-free) without
// a budget.
func (c *IndexCache) enforceBudget(keepKey string) {
	if c.budget.Load() <= 0 {
		return
	}
	c.mu.Lock()
	if e := c.entries[keepKey]; e != nil {
		sz := e.pli.MemSize()
		c.resident += sz - e.bytes
		e.bytes = sz
	}
	c.enforceBudgetLocked(keepKey)
	c.mu.Unlock()
}

// GetVia returns a PLI of r over attrs like Get, but answers a miss by
// refining the cached PLI over attrs[:len-1] with the last attribute
// (PLI.Intersect) when that parent is present and reachable — one
// counting sort instead of len(attrs). The parent itself is caught up
// (advanced and compacted) first if it is stale only by appends.
// Level-wise lattice walks (TANE-style discovery) visit attribute sets
// in exactly the order that keeps the parent warm, so a cold walk costs
// one full build per single attribute and one refinement per larger
// set.
func (c *IndexCache) GetVia(r *Relation, attrs []int) *PLI {
	key := attrsKey(attrs)
	var parentKey string
	c.mu.RLock()
	e := c.entries[key]
	var parent *cacheEntry
	if len(attrs) > 1 {
		parentKey = attrsKey(attrs[:len(attrs)-1])
		parent = c.entries[parentKey]
	}
	hasSpilled := len(c.spilled) > 0
	c.mu.RUnlock()
	if e == nil && hasSpilled {
		e = c.pageIn(r, key)
	}
	if e != nil {
		if pli, advanced, patched := e.pli.catchUp(r, true); pli != nil {
			e.lastUse.Store(c.tick.Add(1))
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			if advanced || patched {
				c.enforceBudget(key)
			} else {
				c.hits.Add(1)
			}
			if pli != e.pli {
				c.replaceEntry(key, e.pli, pli)
			}
			return pli
		}
	}
	var p *PLI
	if parent == nil && parentKey != "" && hasSpilled {
		// A demoted parent is still one refinement away from the answer:
		// page it in rather than fall back to a full build.
		parent = c.pageIn(r, parentKey)
	}
	if parent != nil {
		if ppli, advanced, patched := parent.pli.catchUp(r, true); ppli != nil {
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			parent.lastUse.Store(c.tick.Add(1))
			if ppli != parent.pli {
				c.replaceEntry(parentKey, parent.pli, ppli)
			}
			p = c.refine(r, ppli, attrs[len(attrs)-1])
			c.refines.Add(1)
		}
	}
	if p == nil {
		p = c.build(r, attrs)
		c.misses.Add(1)
	}
	c.store(r, key, p)
	return p
}

// store publishes a freshly built PLI under key. Entries referencing a
// replaced relation are swept ONLY when the incoming relation's identity
// differs from the one the cache tracks (a session committing a repair
// swaps its data) — the hot same-relation path pays nothing, instead of
// the former O(entries) full-map sweep on every store.
func (c *IndexCache) store(r *Relation, key string, p *PLI) {
	tick := c.tick.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rel != r {
		// PLIs pin the relation they were built from; drop every entry
		// still referencing another relation so the cache never keeps a
		// replaced dataset alive — including entries under attribute
		// sets the caller no longer asks for. Spill records pin it the
		// same way (page-in hands back PLIs over rec.rel), so they and
		// their files go too.
		for k, e := range c.entries {
			if e.pli.rel != r {
				c.resident -= e.bytes
				c.dropEntryFileLocked(e)
				delete(c.entries, k)
			}
		}
		for k, rec := range c.spilled {
			if rec.rel != r {
				c.dropRecordLocked(k, rec)
			}
		}
		c.rel = r
	}
	if prior := c.entries[key]; prior == nil || !prior.pli.Fresh(r) {
		e := &cacheEntry{pli: p, bytes: p.MemSize()}
		e.lastUse.Store(tick)
		if prior != nil {
			c.resident -= prior.bytes
			c.dropEntryFileLocked(prior)
		}
		if rec := c.spilled[key]; rec != nil {
			// A fresh build supersedes whatever snapshot was on disk.
			c.dropRecordLocked(key, rec)
		}
		c.resident += e.bytes
		c.entries[key] = e
	}
	c.enforceBudgetLocked(key)
}

// dropEntryFileLocked unlinks a discarded entry's spill snapshot, if it
// has one that is not also registered in the spilled map (records own
// their files once registered).
func (c *IndexCache) dropEntryFileLocked(e *cacheEntry) {
	if e.onDisk != nil && c.spill != nil && c.spilled[attrsKey(e.onDisk.attrs)] != e.onDisk {
		c.spill.Remove(e.onDisk.path)
	}
}

// dropRecordLocked forgets a spill record and unlinks its file.
func (c *IndexCache) dropRecordLocked(key string, rec *spillRecord) {
	delete(c.spilled, key)
	if c.spill != nil {
		c.spill.Remove(rec.path)
	}
}

// pageIn revives a demoted entry: its segment file is re-opened as
// zero-copy mapped views (a plain heap decode on platforms without the
// mmap fast path) and republished as a resident entry carrying the
// snapshot's watermarks — the caller's catchUp then absorbs anything
// that happened since the demote (appends, journaled patches) exactly
// as if the entry had stayed resident. Stale records (relation swapped,
// column hard-invalidated, truncated) and unreadable files are
// discarded so the caller falls through to a rebuild. Returns nil when
// there is nothing to page in.
func (c *IndexCache) pageIn(r *Relation, key string) *cacheEntry {
	tick := c.tick.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		return e // lost a race with another page-in or a rebuild
	}
	rec := c.spilled[key]
	if rec == nil {
		return nil
	}
	if !rec.validFor(r) {
		c.dropRecordLocked(key, rec)
		return nil
	}
	p, err := loadPLISegment(rec)
	if err != nil {
		c.dropRecordLocked(key, rec)
		return nil
	}
	e := &cacheEntry{pli: p, bytes: p.MemSize(), onDisk: rec}
	e.lastUse.Store(tick)
	c.resident += e.bytes
	c.entries[key] = e
	delete(c.spilled, key)
	c.pageins.Add(1)
	c.enforceBudgetLocked(key)
	return e
}

// enforceBudgetLocked demotes or evicts entries until the running
// resident total fits the budget: deepest attribute sets first,
// least-recently-used among equals. The entry just touched under
// keepKey survives even when it alone exceeds the budget (evicting what
// the caller is about to use would only thrash). Every iteration
// removes a map entry (demoted or evicted), so the loop terminates even
// when paged-in entries contribute almost nothing to residency. The
// victim scan runs only while actually over budget; the in-budget
// steady state pays nothing.
func (c *IndexCache) enforceBudgetLocked(keepKey string) {
	budget := c.budget.Load()
	if budget <= 0 {
		return
	}
	for c.resident > budget && len(c.entries) > 1 {
		victim := ""
		vDepth := -1
		var vUse uint64
		for k, e := range c.entries {
			if k == keepKey || e.bytes <= 0 {
				continue
			}
			depth, use := len(e.pli.attrs), e.lastUse.Load()
			if depth > vDepth || (depth == vDepth && use < vUse) {
				victim, vDepth, vUse = k, depth, use
			}
		}
		if victim == "" {
			return
		}
		e := c.entries[victim]
		c.resident -= e.bytes
		delete(c.entries, victim)
		if c.demoteLocked(victim, e) {
			c.spills.Add(1)
		} else {
			c.dropEntryFileLocked(e)
			c.evictions.Add(1)
		}
	}
}

// demoteLocked tries to turn an eviction into a demotion: a clean
// victim is snapshotted to a segment file (or keeps its still-current
// one) and registered for page-in; an unclean victim (delta tail, patch
// holes, dirty) falls back to its last clean snapshot when one exists —
// page-in plus catchUp re-derives the current state from it — and
// otherwise reports false for a plain eviction. Called with c.mu held;
// takes p.mu inside (the established c.mu → p.mu order).
func (c *IndexCache) demoteLocked(key string, e *cacheEntry) bool {
	if c.spill == nil {
		return false
	}
	if rec, ok := e.pli.spillSnapshot(c.spill, e.onDisk); ok {
		if e.onDisk != nil && e.onDisk != rec {
			c.spill.Remove(e.onDisk.path)
		}
		c.spilled[key] = rec
		return true
	}
	if e.onDisk != nil {
		c.spilled[key] = e.onDisk
		return true
	}
	return false
}

// Stats returns the cache's counters.
func (c *IndexCache) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Refines:     c.refines.Load(),
		Advances:    c.advances.Load(),
		Patches:     c.patches.Load(),
		Evictions:   c.evictions.Load(),
		Spills:      c.spills.Load(),
		Pageins:     c.pageins.Load(),
		ShardBuilds: c.shardBuilds.Load(),
	}
}

// ResidentBytes returns the running total of cached entries' heap bytes
// — the quantity the byte budget caps. Mapped (paged-in) storage is
// excluded by construction (see PLI.MemSize).
func (c *IndexCache) ResidentBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.resident
}

// Len returns the number of cached attribute sets.
func (c *IndexCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Reset drops every entry and spill record, unlinking the segment
// files (counters are preserved).
func (c *IndexCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.dropEntryFileLocked(e)
	}
	c.entries = make(map[string]*cacheEntry)
	for k, rec := range c.spilled {
		c.dropRecordLocked(k, rec)
	}
	c.spilled = make(map[string]*spillRecord)
	c.rel = nil
	c.resident = 0
}
