package relation

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of an IndexCache's counters. Misses count
// from-scratch index (re)builds and Refines count parent-partition
// intersections (GetVia), so "zero rebuilds" across repeated detection
// or discovery is asserted by Misses+Refines staying constant while
// Hits grows.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Refines counts GetVia lookups answered by refining a cached parent
	// PLI with one extra attribute instead of counting-sorting from
	// scratch.
	Refines uint64 `json:"refines"`
	// Advances counts lookups answered by absorbing appended rows into
	// the cached PLI in place (PLI.Advance) instead of rebuilding it —
	// the steady-state append→detect path builds nothing, so
	// Misses+Refines stay constant while Advances grows.
	Advances uint64 `json:"advances"`
	// Patches counts lookups answered by draining the per-column cell-
	// patch journal into the cached PLI (PLI re-homes the patched TIDs
	// between groups in O(group)) instead of rebuilding it — the
	// append→repair→detect path keeps every index warm, so
	// Misses+Refines stay constant while Patches grows.
	Patches uint64 `json:"patches"`
	// Evictions counts entries dropped to keep the cache inside its
	// byte budget (SetBudget).
	Evictions uint64 `json:"evictions"`
	// ShardBuilds counts the builds and refines that actually ran the
	// TID-range-parallel counting sort (SetShards > 1 AND a relation
	// large enough to feed the fan-out) — the observability hook for
	// "cold builds use the worker pool, warm traffic builds nothing".
	ShardBuilds uint64 `json:"shard_builds"`
}

// cacheEntry wraps a cached PLI with its recency tick and last-measured
// resident size (bytes is guarded by IndexCache.mu) for eviction.
type cacheEntry struct {
	pli     *PLI
	lastUse atomic.Uint64
	bytes   int64
}

// IndexCache memoizes PLIs per attribute set for one logical dataset.
// Entries carry their build-time column versions, patch-journal
// watermarks and length watermark, so a lookup after a mutation does
// the minimum work: cell edits are drained from the per-column patch
// journal into the PLIs mentioning the edited column (each patched TID
// re-homed in O(group) — see PLI.catchUp; only journal overflow,
// reorders and truncation still invalidate), appends are absorbed in
// place (PLI.Advance — no rebuild at all), and relation swaps
// invalidate everything. A large pending patch set falls back to a
// rebuild when that is cheaper, under the same byte budget as any
// other store.
//
// The cache is safe for concurrent use. It is keyed by attribute set
// only — callers hand it the current relation on every Get and the
// cache validates the stored snapshot against it — so an engine session
// keeps one cache across Accept data swaps, and a repair run keeps one
// across materialize passes. Catch-up mutations are serialized per
// entry; advances never overlap lock-free readers because appends are
// exclusive at the session level and readers re-fetch per shared-lock
// window, and compacting an entry a GetDelta reader may still be
// iterating is done copy-on-write with the slot republished (see
// PLI.catchUp), so Get and GetDelta interleave safely on one entry.
type IndexCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	// rel tracks the identity of the relation the resident entries were
	// built from, so store only sweeps for replaced-relation entries
	// when the identity actually changes (not on every store).
	rel *Relation
	// budget is atomic so the hit/advance fast path can test "is a
	// budget configured at all" without taking the cache lock; resident
	// is the running total of entry sizes (guarded by mu), maintained on
	// store/evict/advance so budget enforcement never rescans the map.
	budget   atomic.Int64
	resident int64

	// shards is the fan-out every from-scratch build and refinement of
	// this cache runs with (BuildPLISharded/IntersectSharded); 1 (the
	// default) is the serial path. Atomic so SetShards never contends
	// with the lookup fast path.
	shards atomic.Int32

	tick        atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	refines     atomic.Uint64
	advances    atomic.Uint64
	patches     atomic.Uint64
	evictions   atomic.Uint64
	shardBuilds atomic.Uint64
}

// NewIndexCache creates an empty cache with no byte budget.
func NewIndexCache() *IndexCache {
	return &IndexCache{entries: make(map[string]*cacheEntry)}
}

// SetBudget caps the cache's resident PLI bytes (0 = unlimited, the
// default). The budget is enforced on store and on in-place advances
// (the paths where entries grow): when the running resident total
// overflows, entries are evicted deepest-attribute-set first, then
// least-recently-used among equals — so a discovery walk's deep lattice
// leaves (cheap to re-derive via GetVia refinement) go before the
// shallow detection partitions a service session reuses forever.
func (c *IndexCache) SetBudget(bytes int64) {
	c.budget.Store(bytes)
}

// SetShards sets the shard fan-out of the cache's index builds: every
// cache miss (BuildPLISharded) and refinement (IntersectSharded) splits
// its counting-sort passes across up to n workers, with byte-identical
// output to the serial build. n <= 0 means runtime.GOMAXPROCS(0), 1
// (the default) forces the serial path. Relations too small to feed the
// fan-out fall back to serial regardless (see effectiveShards), so the
// knob is safe to leave at NumCPU for mixed dataset sizes.
func (c *IndexCache) SetShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.shards.Store(int32(n))
}

// buildShards returns the configured fan-out (1 when unset).
func (c *IndexCache) buildShards() int {
	if s := c.shards.Load(); s > 1 {
		return int(s)
	}
	return 1
}

// build runs a from-scratch sharded build, counting it as a shard build
// when the fan-out actually engaged.
func (c *IndexCache) build(r *Relation, attrs []int) *PLI {
	s := c.buildShards()
	if effectiveShards(r.Len(), s) > 1 {
		c.shardBuilds.Add(1)
	}
	return BuildPLISharded(r, attrs, s)
}

// refine runs a sharded parent refinement, counting it as a shard build
// when the fan-out actually engaged. The caller guarantees the parent
// is fresh for r (GetVia catches it up first), so r.Len() is the
// parent's row count.
func (c *IndexCache) refine(r *Relation, parent *PLI, y int) *PLI {
	s := c.buildShards()
	if effectiveShards(r.Len(), s) > 1 {
		c.shardBuilds.Add(1)
	}
	return parent.IntersectSharded(y, s)
}

func attrsKey(attrs []int) string {
	buf := make([]byte, 0, 4*len(attrs))
	for _, a := range attrs {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// Get returns a canonical PLI of r over attrs: a cached entry that is
// fresh (or stale only by appends, which Get absorbs and compacts) is
// reused; otherwise the index is rebuilt and re-cached. A fresh entry
// still carrying a delta tail (left by GetDelta) is compacted
// copy-on-write and the slot republished. Concurrent readers may race
// to rebuild the same stale entry; both get a correct index and one of
// them wins the cache slot.
func (c *IndexCache) Get(r *Relation, attrs []int) *PLI {
	return c.lookup(r, attrs, true)
}

// GetDelta is Get for delta-tolerant consumers (incremental detection):
// a stale-only-by-appends entry is advanced but NOT compacted, so each
// absorbed batch costs O(delta) and the appended rows sit in per-group
// tails — group iteration sees provisional new groups after the base
// groups, in arrival rather than sorted-key order. Use Get wherever
// canonical group order matters; a later Get compacts the tail.
func (c *IndexCache) GetDelta(r *Relation, attrs []int) *PLI {
	return c.lookup(r, attrs, false)
}

func (c *IndexCache) lookup(r *Relation, attrs []int, compact bool) *PLI {
	key := attrsKey(attrs)
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		if pli, advanced, patched := e.pli.catchUp(r, compact); pli != nil {
			e.lastUse.Store(c.tick.Add(1))
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			if advanced || patched {
				c.enforceBudget(key)
			} else {
				c.hits.Add(1)
			}
			if pli != e.pli {
				c.replaceEntry(key, e.pli, pli)
			}
			return pli
		}
	}
	p := c.build(r, attrs)
	c.misses.Add(1)
	c.store(r, key, p)
	return p
}

// replaceEntry publishes the copy-on-write compaction of a tailed entry
// (see PLI.catchUp): subsequent lookups get the compacted index while
// readers still iterating the old tailed one keep their consistent
// snapshot. No-op if the slot no longer holds the PLI the copy was made
// from (a concurrent rebuild or eviction won).
func (c *IndexCache) replaceEntry(key string, old, compacted *PLI) {
	tick := c.tick.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	prior := c.entries[key]
	if prior == nil || prior.pli != old {
		return
	}
	e := &cacheEntry{pli: compacted, bytes: compacted.MemSize()}
	e.lastUse.Store(tick)
	c.resident += e.bytes - prior.bytes
	c.entries[key] = e
	c.enforceBudgetLocked(key)
}

// enforceBudget applies the byte budget outside store — the steady-state
// append path grows entries in place (PLI.Advance) without ever storing,
// and must not outgrow a configured cap. The advanced entry's size is
// re-measured and folded into the running resident total, so the call is
// O(1) unless an eviction is actually due. No-op (and lock-free) without
// a budget.
func (c *IndexCache) enforceBudget(keepKey string) {
	if c.budget.Load() <= 0 {
		return
	}
	c.mu.Lock()
	if e := c.entries[keepKey]; e != nil {
		sz := e.pli.MemSize()
		c.resident += sz - e.bytes
		e.bytes = sz
	}
	c.enforceBudgetLocked(keepKey)
	c.mu.Unlock()
}

// GetVia returns a PLI of r over attrs like Get, but answers a miss by
// refining the cached PLI over attrs[:len-1] with the last attribute
// (PLI.Intersect) when that parent is present and reachable — one
// counting sort instead of len(attrs). The parent itself is caught up
// (advanced and compacted) first if it is stale only by appends.
// Level-wise lattice walks (TANE-style discovery) visit attribute sets
// in exactly the order that keeps the parent warm, so a cold walk costs
// one full build per single attribute and one refinement per larger
// set.
func (c *IndexCache) GetVia(r *Relation, attrs []int) *PLI {
	key := attrsKey(attrs)
	var parentKey string
	c.mu.RLock()
	e := c.entries[key]
	var parent *cacheEntry
	if len(attrs) > 1 {
		parentKey = attrsKey(attrs[:len(attrs)-1])
		parent = c.entries[parentKey]
	}
	c.mu.RUnlock()
	if e != nil {
		if pli, advanced, patched := e.pli.catchUp(r, true); pli != nil {
			e.lastUse.Store(c.tick.Add(1))
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			if advanced || patched {
				c.enforceBudget(key)
			} else {
				c.hits.Add(1)
			}
			if pli != e.pli {
				c.replaceEntry(key, e.pli, pli)
			}
			return pli
		}
	}
	var p *PLI
	if parent != nil {
		if ppli, advanced, patched := parent.pli.catchUp(r, true); ppli != nil {
			if patched {
				c.patches.Add(1)
			}
			if advanced {
				c.advances.Add(1)
			}
			parent.lastUse.Store(c.tick.Add(1))
			if ppli != parent.pli {
				c.replaceEntry(parentKey, parent.pli, ppli)
			}
			p = c.refine(r, ppli, attrs[len(attrs)-1])
			c.refines.Add(1)
		}
	}
	if p == nil {
		p = c.build(r, attrs)
		c.misses.Add(1)
	}
	c.store(r, key, p)
	return p
}

// store publishes a freshly built PLI under key. Entries referencing a
// replaced relation are swept ONLY when the incoming relation's identity
// differs from the one the cache tracks (a session committing a repair
// swaps its data) — the hot same-relation path pays nothing, instead of
// the former O(entries) full-map sweep on every store.
func (c *IndexCache) store(r *Relation, key string, p *PLI) {
	tick := c.tick.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rel != r {
		// PLIs pin the relation they were built from; drop every entry
		// still referencing another relation so the cache never keeps a
		// replaced dataset alive — including entries under attribute
		// sets the caller no longer asks for.
		for k, e := range c.entries {
			if e.pli.rel != r {
				c.resident -= e.bytes
				delete(c.entries, k)
			}
		}
		c.rel = r
	}
	if prior := c.entries[key]; prior == nil || !prior.pli.Fresh(r) {
		e := &cacheEntry{pli: p, bytes: p.MemSize()}
		e.lastUse.Store(tick)
		if prior != nil {
			c.resident -= prior.bytes
		}
		c.resident += e.bytes
		c.entries[key] = e
	}
	c.enforceBudgetLocked(key)
}

// enforceBudgetLocked evicts entries until the running resident total
// fits the budget: deepest attribute sets first, least-recently-used
// among equals. The entry just touched under keepKey survives even when
// it alone exceeds the budget (evicting what the caller is about to use
// would only thrash). The victim scan runs only while actually over
// budget; the in-budget steady state pays nothing.
func (c *IndexCache) enforceBudgetLocked(keepKey string) {
	budget := c.budget.Load()
	if budget <= 0 {
		return
	}
	for c.resident > budget && len(c.entries) > 1 {
		victim := ""
		vDepth := -1
		var vUse uint64
		for k, e := range c.entries {
			if k == keepKey {
				continue
			}
			depth, use := len(e.pli.attrs), e.lastUse.Load()
			if depth > vDepth || (depth == vDepth && use < vUse) {
				victim, vDepth, vUse = k, depth, use
			}
		}
		if victim == "" {
			return
		}
		c.resident -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
}

// Stats returns the cache's counters.
func (c *IndexCache) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Refines:     c.refines.Load(),
		Advances:    c.advances.Load(),
		Patches:     c.patches.Load(),
		Evictions:   c.evictions.Load(),
		ShardBuilds: c.shardBuilds.Load(),
	}
}

// Len returns the number of cached attribute sets.
func (c *IndexCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Reset drops every entry (counters are preserved).
func (c *IndexCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.rel = nil
	c.resident = 0
}
