package relation

import (
	"math"
	"reflect"
	"testing"
)

// TestDecodeValueRoundTrip pins DecodeValue as the exact inverse of
// Encode across every kind, including the values whose JSON or string
// forms are lossy: NaN, ±Inf, -0 (normalized at construction), int64s
// beyond float64 precision, and strings containing delimiters.
func TestDecodeValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null(),
		String(""),
		String("plain"),
		String("with:colon and 12:34 digits"),
		String("unicode ⊥ λ"),
		Int(0),
		Int(1),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Int(1<<53 + 1), // not representable in float64
		Float(0),
		Float(math.Copysign(0, -1)), // normalized to +0 by Float()
		Float(1.5),
		Float(-271.25),
		Float(math.Inf(1)),
		Float(math.Inf(-1)),
		Float(math.NaN()),
		Float(math.SmallestNonzeroFloat64),
		Float(math.MaxFloat64),
	}
	for _, v := range vals {
		enc := v.Encode(nil)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("DecodeValue(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		// Bit-exact comparison: re-encoding must reproduce the input
		// (Identical treats NaN as never equal, so compare encodings).
		if string(got.Encode(nil)) != string(enc) {
			t.Fatalf("round trip of %v produced %v", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Fatalf("round trip of %v changed kind to %v", v, got.Kind())
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindString)},                     // missing delimiter
		{byte(KindString), '5', ':', 'a'},      // truncated payload
		{byte(KindString), 'x', ':'},           // non-numeric length
		{byte(KindInt), 1, 2, 3},               // truncated int
		{byte(KindFloat), 1, 2, 3, 4, 5, 6, 7}, // truncated float
		{42},                                   // unknown kind
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: DecodeValue(%v) succeeded, want error", i, b)
		}
	}
}

// TestTupleCodec round-trips whole rows, including a kind-mismatched
// cell like the ones unchecked Set writes leave behind — the shard
// ingest path must carry those exactly.
func TestTupleCodec(t *testing.T) {
	rows := []Tuple{
		{String("a"), Int(3), Float(1.5)},
		{Null(), Null(), Null()},
		{String("x:y"), Float(2), Int(7)}, // mixed-kind cells vs a (string,int,float) schema
	}
	for _, row := range rows {
		enc := EncodeTuple(nil, row)
		got, err := DecodeTuple(enc, len(row))
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", row, err)
		}
		if string(EncodeTuple(nil, got)) != string(enc) {
			t.Fatalf("tuple round trip of %v produced %v", row, got)
		}
	}
	if _, err := DecodeTuple(EncodeTuple(nil, rows[0]), 2); err == nil {
		t.Fatal("DecodeTuple with trailing bytes succeeded, want error")
	}
	if _, err := DecodeTuple(nil, 1); err == nil {
		t.Fatal("DecodeTuple of empty input succeeded, want error")
	}
}

// TestAppendGroupKey pins the key as the concatenation of the cells'
// Encode keys — the invariant that makes per-shard keys comparable
// across relations that interned the same values in different orders.
func TestAppendGroupKey(t *testing.T) {
	schema := MustSchema("g",
		Attribute{Name: "A", Kind: KindString},
		Attribute{Name: "B", Kind: KindInt},
	)
	r := New(schema)
	r.MustInsert(Tuple{String("x"), Int(4)})
	r.MustInsert(Tuple{String("y"), Int(4)})
	r.MustInsert(Tuple{String("x"), Int(4)})

	// Same values in a different interning order on a second relation.
	r2 := New(schema)
	r2.MustInsert(Tuple{String("y"), Int(4)})
	r2.MustInsert(Tuple{String("x"), Int(4)})

	attrs := []int{0, 1}
	want := Int(4).Encode(String("x").Encode(nil))
	if got := r.AppendGroupKey(nil, 0, attrs); string(got) != string(want) {
		t.Fatalf("AppendGroupKey = %q, want concatenated encodings %q", got, want)
	}
	if string(r.AppendGroupKey(nil, 0, attrs)) != string(r.AppendGroupKey(nil, 2, attrs)) {
		t.Fatal("agreeing tuples produced different group keys")
	}
	if string(r.AppendGroupKey(nil, 0, attrs)) == string(r.AppendGroupKey(nil, 1, attrs)) {
		t.Fatal("disagreeing tuples produced the same group key")
	}
	if string(r.AppendGroupKey(nil, 0, attrs)) != string(r2.AppendGroupKey(nil, 1, attrs)) {
		t.Fatal("cross-relation keys diverge for identical values")
	}
}

// TestInsertUnchecked pins the exact-reproduction contract: a shard
// relation rebuilt via InsertUnchecked from another relation's tuples
// produces identical tuples and identical group keys, even with
// kind-mismatched cells from unchecked Sets.
func TestInsertUnchecked(t *testing.T) {
	schema := MustSchema("u",
		Attribute{Name: "A", Kind: KindString},
		Attribute{Name: "B", Kind: KindInt},
	)
	src := New(schema)
	src.MustInsert(Tuple{String("a"), Int(1)})
	src.MustInsert(Tuple{String("b"), Int(1)})
	src.Set(1, 1, Float(1)) // mixed-kind cell: Float in the int column

	dst := New(schema)
	for tid := 0; tid < src.Len(); tid++ {
		if got := dst.InsertUnchecked(src.Tuple(tid).Clone()); got != tid {
			t.Fatalf("InsertUnchecked returned tid %d, want %d", got, tid)
		}
	}
	for tid := 0; tid < src.Len(); tid++ {
		if !reflect.DeepEqual(src.Tuple(tid), dst.Tuple(tid)) {
			t.Fatalf("tuple %d diverges: %v vs %v", tid, src.Tuple(tid), dst.Tuple(tid))
		}
		for attr := 0; attr < schema.Arity(); attr++ {
			a := src.AppendGroupKey(nil, tid, []int{attr})
			b := dst.AppendGroupKey(nil, tid, []int{attr})
			if string(a) != string(b) {
				t.Fatalf("group key of cell (%d,%d) diverges", tid, attr)
			}
		}
	}
	// A validating Insert would have rejected the mixed-kind cell.
	if _, err := dst.Insert(Tuple{String("c"), Float(2.5)}); err == nil {
		t.Fatal("Insert accepted a float into the int column")
	}
}
