package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshots are the durable checkpoint form of a relation
// (internal/wal): the interned columnar state — per-column dictionaries
// plus dense int32 code columns — written in the same little-endian
// section style as the tiered-storage segment files (segment.go), which
// is already the most compact faithful form the relation has. A
// snapshot round-trips the relation cell-exactly: every reconstructed
// cell is Value-identical to the source cell (dictionary entries are
// the exact Value.Encode bytes, and code assignment is preserved
// verbatim), so detection, discovery and DC sweeps over a recovered
// relation produce byte-identical output.
//
// Layout (all integers little-endian):
//
//	[0:8)   magic "SMDQSNP1"
//	[8:16)  n     int64  row count
//	[16:24) arity int64  column count (must match the schema at read)
//	then per column:
//	  u64 dictLen   codes allocated (first-appearance order, 0..dictLen-1)
//	  u64 encBytes  total bytes of the concatenated dictionary entries
//	  entries       dictLen Value.Encode blobs, concatenated (self-delimiting)
//	  codes         int32[n]
const snapMagic = "SMDQSNP1"

// WriteSnapshot serializes the relation's columnar state to w. The
// caller must hold the relation quiescent (the engine captures a clone
// under the session lock and serializes that).
func (r *Relation) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(r.tuples)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(r.cols)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var ch [16]byte
	for _, c := range r.cols {
		var encBytes int
		for _, e := range c.encs {
			encBytes += len(e)
		}
		binary.LittleEndian.PutUint64(ch[:8], uint64(len(c.encs)))
		binary.LittleEndian.PutUint64(ch[8:], uint64(encBytes))
		if _, err := bw.Write(ch[:]); err != nil {
			return err
		}
		for _, e := range c.encs {
			if _, err := bw.WriteString(e); err != nil {
				return err
			}
		}
		if err := writeInt32Section(bw, c.codes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a relation from snapshot bytes produced by
// WriteSnapshot. The schema must have the arity the snapshot was taken
// with; cells, dictionary codes and code order are restored exactly.
func ReadSnapshot(b []byte, schema *Schema) (*Relation, error) {
	if len(b) < 24 || string(b[:8]) != snapMagic {
		return nil, fmt.Errorf("relation: not a snapshot")
	}
	n := int64(binary.LittleEndian.Uint64(b[8:]))
	arity := int64(binary.LittleEndian.Uint64(b[16:]))
	if n < 0 || arity != int64(schema.Arity()) {
		return nil, fmt.Errorf("relation: snapshot arity %d != schema arity %d", arity, schema.Arity())
	}
	r := New(schema)
	off := int64(24)
	for a := 0; a < int(arity); a++ {
		if off+16 > int64(len(b)) {
			return nil, fmt.Errorf("relation: truncated snapshot (column %d header)", a)
		}
		dictLen := int64(binary.LittleEndian.Uint64(b[off:]))
		encBytes := int64(binary.LittleEndian.Uint64(b[off+8:]))
		off += 16
		if dictLen < 0 || encBytes < 0 || off+encBytes+4*n > int64(len(b)) {
			return nil, fmt.Errorf("relation: truncated snapshot (column %d sections)", a)
		}
		c := r.cols[a]
		entries := b[off : off+encBytes]
		off += encBytes
		c.values = make([]Value, dictLen)
		c.encs = make([]string, dictLen)
		c.dict = make(map[string]int32, dictLen)
		pos := 0
		for code := int64(0); code < dictLen; code++ {
			v, sz, err := DecodeValue(entries[pos:])
			if err != nil {
				return nil, fmt.Errorf("relation: snapshot column %d code %d: %v", a, code, err)
			}
			key := string(entries[pos : pos+sz])
			pos += sz
			c.values[code] = v
			c.encs[code] = key
			c.dict[key] = int32(code)
		}
		if int64(pos) != encBytes {
			return nil, fmt.Errorf("relation: snapshot column %d dictionary has %d trailing bytes", a, encBytes-int64(pos))
		}
		c.codes = decodeInt32Section(b, off, n)
		off += 4 * n
		for _, code := range c.codes {
			if int64(code) < 0 || int64(code) >= dictLen {
				return nil, fmt.Errorf("relation: snapshot column %d has out-of-range code %d", a, code)
			}
		}
	}
	if off != int64(len(b)) {
		return nil, fmt.Errorf("relation: snapshot has %d trailing bytes", int64(len(b))-off)
	}
	r.tuples = make([]Tuple, n)
	for tid := range r.tuples {
		t := make(Tuple, arity)
		for a := 0; a < int(arity); a++ {
			c := r.cols[a]
			t[a] = c.values[c.codes[tid]]
		}
		r.tuples[tid] = t
	}
	r.appends = uint64(n)
	return r, nil
}
