package relation

import (
	"sort"
	"sync"
)

// PLI is a position list index: the partition of a relation's TIDs into
// groups agreeing on a fixed attribute list, computed over the interned
// column codes without materializing string keys. It is the columnar
// successor of HashIndex — groups are identical to HashIndex buckets
// (codes coincide with Value.Encode keys), and the group order is the
// same sorted-key order, so group-wise algorithms produce byte-identical
// output on either index.
//
// Storage is flat: all TIDs live in one slice partitioned by an offsets
// table, which keeps a 100k-group index to three allocations instead of
// 100k bucket slices.
//
// A PLI records the per-column code versions of its attributes and a
// length watermark. Fresh reports whether it exactly describes the
// relation; AdvanceableTo reports the weaker "stale only by appends"
// state, which Advance repairs in O(delta) by absorbing the appended
// TIDs into an LSM-style delta tail: a new TID joins the tail of its
// existing group, or opens a provisional new group addressed after the
// base groups. Compact lazily merges the tail back into canonical
// sorted-group order (triggered by a size threshold or by order-
// sensitive readers); after compaction the index is byte-identical to a
// from-scratch build over the grown relation (property-tested).
type PLI struct {
	rel      *Relation
	attrs    []int
	colVers  []uint64
	n        int
	tids     []int   // concatenation of all base groups; ascending within each
	offsets  []int32 // base group g occupies tids[offsets[g]:offsets[g+1]]
	tidGroup []int32 // tid -> group index (provisional for tailed new groups)

	// TID-range shard layout with per-shard append watermarks: shard i
	// covers TIDs [shardEnds[i-1], shardEnds[i]) (from 0 for shard 0),
	// fixed at shardWidth rows per shard by the build (serial builds
	// are one shard spanning the relation; shardWidth 0 means a single
	// unbounded shard). Advance moves ONLY the tail entries — the
	// watermark of every filled shard is immutable across appends,
	// which is the granularity future per-shard spill and delta-aware
	// invalidation key on. Guarded by mu like the rest of the mutable
	// state (see shard.go).
	shardWidth int
	shardEnds  []int

	// mu serializes Advance and Compact — the mutating catch-up path the
	// IndexCache drives. Plain reads (Group, GroupOf, Lookup, ...) stay
	// lock-free; they must not overlap an Advance/Compact of the same
	// PLI. Advances are covered by the session discipline: appends only
	// happen under an exclusive writer, and readers re-fetch entries
	// inside every shared-lock window, so a stale entry has no live
	// readers when its first post-append lookup advances it. Compaction
	// of an already-fresh tailed entry has no such guarantee (a GetDelta
	// reader may be iterating the tail), so that case goes copy-on-write
	// (catchUp/compactedCopyLocked) instead of mutating in place.
	mu sync.Mutex

	// Delta tail: rows absorbed by Advance but not yet merged into the
	// flat storage. tails[g] holds the TIDs appended to base group g (in
	// ascending TID order — every tail TID is greater than every base
	// TID, so base++tail is the group's sorted membership); newGroups
	// holds groups for composite keys unseen at build time, in arrival
	// order, addressed by provisional indexes following the base groups.
	tails     map[int32][]int
	newGroups []deltaGroup
	newLookup map[string]int32 // composite code key -> newGroups index
	tailLen   int              // total TIDs across tails and newGroups

	// Lazily built composite-code -> base-group map backing Lookup and
	// Advance's group probes; extended/remapped by Compact instead of
	// discarded. Guarded by lookupMu so concurrent probers share one
	// build.
	lookupMu sync.Mutex
	lookup   map[string]int32
}

// deltaGroup is a provisional group opened by Advance for a composite
// key that had no base group.
type deltaGroup struct {
	key  string // composite code key shared by the members
	tids []int  // members in arrival (= ascending TID) order
}

// BuildPLI constructs the partition index of r on the given attribute
// positions by successive refinement: the TID list is partitioned by the
// first attribute's codes, each part is sub-partitioned by the second,
// and so on — a stable counting sort per level, O(n) per attribute plus
// the (cached) per-column code ranking.
//
// Group order: each column's codes are ranked by the lexicographic order
// of their Encode keys (Relation.codeRanks) and each refinement level
// emits sub-groups in rank order, so groups come out ordered
// component-wise by encoded keys. Value.Encode is prefix-free
// (length-prefixed strings, terminator-delimited numbers, leading kind
// byte), so for two distinct composite keys the first differing
// component decides the concatenated string comparison as well —
// component-wise order IS the sorted order of HashIndex.Keys(). Tests
// assert this on randomized relations.
//
// BuildPLI is the serial build; BuildPLISharded (shard.go) fans the
// counting-sort passes over a worker pool with byte-identical output.
func BuildPLI(r *Relation, attrs []int) *PLI {
	return buildPLI(r, attrs, 1)
}

// refineBy sub-partitions (cur, bounds) by attribute a's codes, writing
// the refined TID order into next and returning the refined bounds: one
// stable counting-sort level of the BuildPLI recurrence, reused verbatim
// by Intersect. cur is never written, so callers may pass shared
// storage (Intersect hands in the parent PLI's tids directly).
func refineBy(r *Relation, a int, cur, next []int, bounds []int32) []int32 {
	count := make([]int32, r.DistinctCodes(a))
	newBounds := make([]int32, 1, len(bounds))
	return refineGroups(r.ColumnCodes(a), r.codeRanks(a), count, cur, next, bounds,
		0, len(bounds)-1, newBounds)
}

// refineGroups is the group loop of refineBy restricted to the group
// index range [gLo, gHi): it writes the refined order of exactly those
// groups' members into next (the regions are disjoint per group, so
// concurrent calls over disjoint ranges never collide) and appends each
// refined sub-group's end position to newBounds. count is caller-owned
// scratch of DistinctCodes size, zeroed on entry and on return — one
// per worker in the chunked parallel refinement (shard.go).
func refineGroups(codes, ranks, count []int32, cur, next []int, bounds []int32, gLo, gHi int, newBounds []int32) []int32 {
	var touched []int32
	for gi := gLo; gi < gHi; gi++ {
		lo, hi := int(bounds[gi]), int(bounds[gi+1])
		if hi-lo == 1 {
			next[lo] = cur[lo]
			newBounds = append(newBounds, int32(hi))
			continue
		}
		members := cur[lo:hi]
		touched = touched[:0]
		for _, tid := range members {
			c := codes[tid]
			if count[c] == 0 {
				touched = append(touched, c)
			}
			count[c]++
		}
		if len(touched) == 1 {
			copy(next[lo:hi], members)
			newBounds = append(newBounds, int32(hi))
			count[touched[0]] = 0
			continue
		}
		sort.Slice(touched, func(i, j int) bool { return ranks[touched[i]] < ranks[touched[j]] })
		// Turn counts into placement cursors (block starts in rank
		// order), then place members stably so TIDs stay ascending.
		pos := int32(lo)
		for _, c := range touched {
			cnt := count[c]
			count[c] = pos
			pos += cnt
		}
		for _, tid := range members {
			c := codes[tid]
			next[count[c]] = tid
			count[c]++
		}
		// After placement each cursor sits at its block's end, which
		// is exactly the sub-group boundary.
		for _, c := range touched {
			newBounds = append(newBounds, count[c])
			count[c] = 0
		}
	}
	return newBounds
}

func (p *PLI) fillTIDGroups() {
	for g := 0; g+1 < len(p.offsets); g++ {
		for _, tid := range p.tids[p.offsets[g]:p.offsets[g+1]] {
			p.tidGroup[tid] = int32(g)
		}
	}
}

// Intersect returns the partition index over attrs ∪ {y} (y appended)
// by refining this PLI's groups with one counting-sort pass over y's
// codes — the classic TANE-style partition intersection. The result is
// byte-identical (groups, member order, group order) to
// BuildPLI(r, append(attrs, y)), but costs one refinement level instead
// of len(attrs)+1. A delta tail on the receiver is compacted first
// (refinement needs the flat canonical storage).
//
// The receiver must still describe its relation (Fresh after the
// compaction); IndexCache.GetVia catches the parent up before refining.
//
// Intersect refines serially; IntersectSharded (shard.go) fans the
// refinement over a worker pool with byte-identical output.
func (p *PLI) Intersect(y int) *PLI {
	return p.IntersectSharded(y, 1)
}

// Attrs returns the indexed attribute positions.
func (p *PLI) Attrs() []int { return p.attrs }

// NumGroups returns the number of groups (distinct composite keys),
// provisional new groups included.
func (p *PLI) NumGroups() int { return len(p.offsets) - 1 + len(p.newGroups) }

// Group returns the TIDs of group g in ascending order. For an index
// without a delta tail the slice aliases index storage; a tailed base
// group is returned as a fresh merged slice (base members, then the
// appended tail — still ascending, since appended TIDs exceed all base
// TIDs), and provisional new groups alias the tail storage.
func (p *PLI) Group(g int) []int {
	nb := len(p.offsets) - 1
	if g >= nb {
		return p.newGroups[g-nb].tids
	}
	base := p.tids[p.offsets[g]:p.offsets[g+1]]
	if p.tailLen == 0 {
		return base
	}
	tail := p.tails[int32(g)]
	if len(tail) == 0 {
		return base
	}
	out := make([]int, 0, len(base)+len(tail))
	return append(append(out, base...), tail...)
}

// GroupOf returns the index of the group containing tid (a provisional
// index past the base groups for uncompacted new groups).
func (p *PLI) GroupOf(tid int) int { return int(p.tidGroup[tid]) }

// TailLen returns the number of absorbed-but-uncompacted delta rows.
func (p *PLI) TailLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tailLen
}

// Lookup returns the TIDs of the group whose indexed attributes hold
// exactly the given values (one per indexed attribute, compared by
// Value.Encode like HashIndex keys — the probe values may come from a
// different relation). It returns nil when no group matches, and
// tolerates delta tails (tailed groups come back merged, provisional
// groups by their tail storage). The result may alias index storage.
//
// Like every PLI read, Lookup describes the relation as of build/advance
// time; probe through IndexCache.Get to stay fresh across mutations.
func (p *PLI) Lookup(vals []Value) []int {
	if len(vals) != len(p.attrs) {
		return nil
	}
	var buf [48]byte
	key := make([]byte, 0, 8*len(vals))
	for i, a := range p.attrs {
		code, ok := p.rel.cols[a].dict[string(vals[i].Encode(buf[:0]))]
		if !ok {
			return nil // value never interned: no group can hold it
		}
		key = appendCode(key, code)
	}
	if g, ok := p.baseLookup()[string(key)]; ok {
		return p.Group(int(g))
	}
	if gi, ok := p.newLookup[string(key)]; ok {
		return p.newGroups[gi].tids
	}
	return nil
}

// baseLookup returns the composite-code -> base-group map, materializing
// it from each group's representative TID on first use.
func (p *PLI) baseLookup() map[string]int32 {
	p.lookupMu.Lock()
	defer p.lookupMu.Unlock()
	if p.lookup == nil {
		m := make(map[string]int32, len(p.offsets)-1)
		key := make([]byte, 0, 8*len(p.attrs))
		for g := 0; g+1 < len(p.offsets); g++ {
			rep := p.tids[p.offsets[g]]
			key = key[:0]
			for _, a := range p.attrs {
				key = appendCode(key, p.rel.cols[a].codes[rep])
			}
			m[string(key)] = int32(g)
		}
		p.lookup = m
	}
	return p.lookup
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// Fresh reports whether the index still describes r: it was built from
// this relation, the relation has not grown, shrunk or been reordered,
// and none of the indexed columns changed since the build (or last
// Advance). A PLI over untouched columns survives edits to other
// columns. Fresh does not imply canonical group order — an advanced
// index may still carry a delta tail until Compact.
func (p *PLI) Fresh(r *Relation) bool {
	if p.rel != r || p.n != r.Len() {
		return false
	}
	for i, a := range p.attrs {
		if p.colVers[i] != r.ColumnVersion(a) {
			return false
		}
	}
	return true
}

// AdvanceableTo reports whether the index describes a stale-only-by-
// appends snapshot of r: built from this relation, no indexed column's
// codes mutated (no Set on it, no reorder, no Truncate) since the
// build, and the relation is at least as long. A fresh index is
// trivially advanceable.
func (p *PLI) AdvanceableTo(r *Relation) bool {
	if p.rel != r || p.n > r.Len() {
		return false
	}
	for i, a := range p.attrs {
		if p.colVers[i] != r.ColumnVersion(a) {
			return false
		}
	}
	return true
}

// Advance absorbs the rows appended to the relation since the index was
// built or last advanced: each new TID joins the delta tail of its
// existing group, or opens a provisional new group — O(delta) map
// probes, no counting sort, no rebuild. The tail is merged into
// canonical sorted-group order lazily (see Compact), automatically once
// it outgrows an eighth of the index. Advance returns false (changing
// nothing) when the index cannot reach r by appending — an indexed
// column was edited, the relation was reordered or truncated, or it is
// a different relation — and true otherwise, including when there is
// nothing to absorb.
//
// Advance and Compact mutate the index and are serialized against each
// other (PLI.mu), but must not overlap lock-free readers of the same
// PLI; direct callers guarantee that by appending only under an
// exclusive writer, as engine sessions do. (The IndexCache's catch-up
// path compacts shared tailed entries copy-on-write instead — see
// catchUp.)
func (p *PLI) Advance(r *Relation) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.advanceLocked(r)
}

func (p *PLI) advanceLocked(r *Relation) bool {
	if !p.AdvanceableTo(r) {
		return false
	}
	n := r.Len()
	if n == p.n {
		return true
	}
	lookup := p.baseLookup()
	cols := make([][]int32, len(p.attrs))
	for i, a := range p.attrs {
		cols[i] = r.cols[a].codes
	}
	nb := int32(len(p.offsets) - 1)
	key := make([]byte, 0, 8*len(p.attrs))
	for tid := p.n; tid < n; tid++ {
		key = key[:0]
		for _, codes := range cols {
			key = appendCode(key, codes[tid])
		}
		if g, ok := lookup[string(key)]; ok {
			if p.tails == nil {
				p.tails = make(map[int32][]int)
			}
			p.tails[g] = append(p.tails[g], tid)
			p.tidGroup = append(p.tidGroup, g)
		} else if gi, ok := p.newLookup[string(key)]; ok {
			p.newGroups[gi].tids = append(p.newGroups[gi].tids, tid)
			p.tidGroup = append(p.tidGroup, nb+gi)
		} else {
			gi := int32(len(p.newGroups))
			if p.newLookup == nil {
				p.newLookup = make(map[string]int32)
			}
			k := string(key)
			p.newLookup[k] = gi
			p.newGroups = append(p.newGroups, deltaGroup{key: k, tids: []int{tid}})
			p.tidGroup = append(p.tidGroup, nb+gi)
		}
		p.tailLen++
	}
	p.n = n
	p.advanceShardEnds(n)
	if p.tailLen*8 > p.n {
		p.compactLocked()
	}
	return true
}

// Compact merges the delta tail into canonical order: provisional new
// groups are sorted by composite key rank and spliced into the sorted
// group sequence, tailed base groups re-concatenate their members, and
// the flat storage (tids, offsets, tidGroup) is rebuilt in one O(n +
// groups) merge pass — after which the index is byte-identical to
// BuildPLI over the advanced relation. The Lookup map, if built, is
// remapped to the new group numbering and extended with the new groups
// rather than discarded. Compacting an index without a tail is a no-op.
func (p *PLI) Compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compactLocked()
}

func (p *PLI) compactLocked() {
	if p.tailLen == 0 {
		return
	}
	nb0 := len(p.offsets) - 1
	if len(p.newGroups) == 0 {
		// Fast path — the usual streaming case: every absorbed row
		// joined an existing group, so group ids are unchanged and
		// tidGroup and the Lookup map stay valid as-is. Merge span-wise:
		// the runs of untouched groups between tailed ones are bulk
		// memmoves, and only the (few) tailed groups touch the tail map.
		tailed := make([]int32, 0, len(p.tails))
		for g := range p.tails {
			tailed = append(tailed, g)
		}
		sort.Slice(tailed, func(i, j int) bool { return tailed[i] < tailed[j] })
		tids := make([]int, p.n)
		offsets := make([]int32, nb0+1)
		pos, done, shift := 0, 0, int32(0)
		for _, tg := range tailed {
			lo, hi := p.offsets[done], p.offsets[tg+1]
			copy(tids[pos:], p.tids[lo:hi])
			pos += int(hi - lo)
			for g := done; g <= int(tg); g++ {
				offsets[g+1] = p.offsets[g+1] + shift
			}
			tail := p.tails[tg]
			copy(tids[pos:], tail)
			pos += len(tail)
			shift += int32(len(tail))
			offsets[int(tg)+1] += int32(len(tail))
			done = int(tg) + 1
		}
		copy(tids[pos:], p.tids[p.offsets[done]:])
		for g := done; g < nb0; g++ {
			offsets[g+1] = p.offsets[g+1] + shift
		}
		p.tids, p.offsets = tids, offsets
		p.tails, p.tailLen = nil, 0
		return
	}
	r := p.rel
	k := len(p.attrs)
	ranks := make([][]int32, k)
	cols := make([][]int32, k)
	for i, a := range p.attrs {
		ranks[i] = r.codeRanks(a)
		cols[i] = r.ColumnCodes(a)
	}
	// less compares two groups by their representative TIDs under the
	// canonical component-wise code-rank order (see BuildPLI); distinct
	// groups always differ in some component.
	less := func(repA, repB int) bool {
		for i := 0; i < k; i++ {
			ra, rb := ranks[i][cols[i][repA]], ranks[i][cols[i][repB]]
			if ra != rb {
				return ra < rb
			}
		}
		return false
	}
	sort.Slice(p.newGroups, func(i, j int) bool {
		return less(p.newGroups[i].tids[0], p.newGroups[j].tids[0])
	})
	nb := len(p.offsets) - 1
	total := nb + len(p.newGroups)
	tids := make([]int, 0, p.n)
	offsets := make([]int32, 1, total+1)
	baseMap := make([]int32, nb)              // old base group -> new index
	newMap := make([]int32, len(p.newGroups)) // sorted newGroups index -> new index
	bi, ni := 0, 0
	for bi < nb || ni < len(p.newGroups) {
		takeNew := bi == nb ||
			(ni < len(p.newGroups) && less(p.newGroups[ni].tids[0], p.tids[p.offsets[bi]]))
		if takeNew {
			newMap[ni] = int32(len(offsets) - 1)
			tids = append(tids, p.newGroups[ni].tids...)
			ni++
		} else {
			baseMap[bi] = int32(len(offsets) - 1)
			tids = append(tids, p.tids[p.offsets[bi]:p.offsets[bi+1]]...)
			tids = append(tids, p.tails[int32(bi)]...)
			bi++
		}
		offsets = append(offsets, int32(len(tids)))
	}
	p.tids, p.offsets = tids, offsets
	if len(p.tidGroup) != p.n {
		p.tidGroup = make([]int32, p.n)
	}
	p.fillTIDGroups()
	p.lookupMu.Lock()
	if p.lookup != nil {
		for key, g := range p.lookup {
			p.lookup[key] = baseMap[g]
		}
		for i, ng := range p.newGroups {
			p.lookup[ng.key] = newMap[i]
		}
	}
	p.lookupMu.Unlock()
	p.tails, p.newGroups, p.newLookup, p.tailLen = nil, nil, nil, 0
}

// catchUp is IndexCache's entry-revalidation hook: under the PLI's
// mutex, absorb any appended rows and — for order-sensitive callers —
// compact the delta tail. out is nil when the entry cannot describe r
// (an indexed column mutated, the relation was reordered/truncated, or
// it is a different relation); otherwise out is the PLI to hand to the
// caller, and advanced reports whether rows were absorbed (an "advance"
// in cache stats, as opposed to a pure hit).
//
// out is usually the receiver. The exception is compacting a FRESH
// entry that still carries a delta tail: a delta-tolerant reader
// (GetDelta) may be iterating that tail lock-free right now, so the
// merge happens copy-on-write into a fresh PLI (out != p) and the
// cache republishes it — the tailed original is never mutated again.
// Compacting right after an advance stays in place: staleness implies
// an exclusive append since the last lookup, which implies no reader
// still holds this PLI (readers re-Get inside every shared-lock
// window).
func (p *PLI) catchUp(r *Relation, compact bool) (out *PLI, advanced bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.AdvanceableTo(r) {
		return nil, false
	}
	if p.n < r.Len() {
		p.advanceLocked(r)
		if compact {
			p.compactLocked()
		}
		return p, true
	}
	if compact && p.tailLen > 0 {
		return p.compactedCopyLocked(), false
	}
	return p, false
}

// compactedCopyLocked returns a compacted PLI equivalent to the
// receiver without mutating any state a lock-free reader of the
// receiver can observe: the flat storage and tail maps are only read,
// and everything compaction rewrites (tids, offsets, tidGroup, the
// provisional-group order, the Lookup maps) is private to the copy.
// Called with p.mu held and p.tailLen > 0.
func (p *PLI) compactedCopyLocked() *PLI {
	q := &PLI{
		rel:        p.rel,
		attrs:      p.attrs,
		colVers:    p.colVers,
		n:          p.n,
		tids:       p.tids,    // read-only input; compaction emits fresh slices
		offsets:    p.offsets, // "
		tidGroup:   append([]int32(nil), p.tidGroup...),
		shardWidth: p.shardWidth,
		shardEnds:  append([]int(nil), p.shardEnds...),
		tails:      p.tails, // read-only input
		newGroups:  append([]deltaGroup(nil), p.newGroups...),
		newLookup:  nil, // compaction drops it; Lookup rebuilds lazily
		tailLen:    p.tailLen,
	}
	q.compactLocked()
	return q
}

// MemSize estimates the index's resident bytes (flat storage plus delta
// tail and lookup map) — the unit of IndexCache's byte budget.
func (p *PLI) MemSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	sz := int64(len(p.tids))*8 + int64(len(p.offsets))*4 + int64(len(p.tidGroup))*4
	sz += int64(p.tailLen)*16 + int64(len(p.shardEnds))*8
	p.lookupMu.Lock()
	sz += int64(len(p.lookup)) * (16 + int64(len(p.attrs))*4)
	p.lookupMu.Unlock()
	return sz + 96
}
