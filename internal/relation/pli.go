package relation

import (
	"sort"
	"sync"
)

// PLI is a position list index: the partition of a relation's TIDs into
// groups agreeing on a fixed attribute list, computed over the interned
// column codes without materializing string keys. It is the columnar
// successor of HashIndex — groups are identical to HashIndex buckets
// (codes coincide with Value.Encode keys), and the group order is the
// same sorted-key order, so group-wise algorithms produce byte-identical
// output on either index.
//
// Storage is flat: all TIDs live in one slice partitioned by an offsets
// table, which keeps a 100k-group index to three allocations instead of
// 100k bucket slices.
//
// A PLI records the per-column code versions of its attributes and a
// length watermark. Fresh reports whether it exactly describes the
// relation; AdvanceableTo reports the weaker "stale only by appends"
// state, which Advance repairs in O(delta) by absorbing the appended
// TIDs into an LSM-style delta tail: a new TID joins the tail of its
// existing group, or opens a provisional new group addressed after the
// base groups. Compact lazily merges the tail back into canonical
// sorted-group order (triggered by a size threshold or by order-
// sensitive readers); after compaction the index is byte-identical to a
// from-scratch build over the grown relation (property-tested).
type PLI struct {
	rel       *Relation
	attrs     []int
	colVers   []uint64
	patchVers []uint64 // per-attr patch-journal watermarks (Relation.PatchVersion)
	n         int
	tids      []int   // concatenation of all base groups; ascending within each
	offsets   []int32 // base group g occupies tids[offsets[g]:offsets[g+1]]
	tidGroup  []int32 // tid -> group index (provisional for tailed new groups)

	// Patch state: cell patches (Relation.Set journal records) re-home
	// individual TIDs between groups in O(group) without rebuilding.
	// Removing a TID from a base group shifts only that group's span and
	// leaves a hole at the span's end (holes[g] counts them; group g's
	// live members are tids[offsets[g] : offsets[g+1]-holes[g]]), and
	// the TID re-enters its target group through the delta-tail
	// machinery (tails / newGroups), inserted in sorted position. dirty
	// records that some patch broke the pure-append tail discipline
	// (tail TIDs no longer all exceed base TIDs, groups may have been
	// patched empty), which routes Group reads through a sorted merge
	// and Compact through the canonical patched rebuild.
	holes   map[int32]int32
	holeCnt int
	dirty   bool

	// TID-range shard layout with per-shard append watermarks: shard i
	// covers TIDs [shardEnds[i-1], shardEnds[i]) (from 0 for shard 0),
	// fixed at shardWidth rows per shard by the build (serial builds
	// are one shard spanning the relation; shardWidth 0 means a single
	// unbounded shard). Advance moves ONLY the tail entries — the
	// watermark of every filled shard is immutable across appends,
	// which is the granularity future per-shard spill and delta-aware
	// invalidation key on. Guarded by mu like the rest of the mutable
	// state (see shard.go).
	shardWidth int
	shardEnds  []int

	// seg is non-nil while the flat storage (tids/offsets/tidGroup) is a
	// zero-copy view into a read-only mapped segment file — the paged-in
	// state of a demoted cache entry (see spill.go). Mapped arrays are
	// immutable: every in-place mutation path materializes heap copies
	// first (materializeLocked), and appends are naturally safe because
	// mapped views are built with cap == len, so the first append
	// reallocates onto the heap. The field also anchors the mapping's
	// lifetime: views do not keep the mmap alive by themselves, the PLI
	// does. Guarded by mu.
	seg *Mapping

	// mu serializes Advance and Compact — the mutating catch-up path the
	// IndexCache drives. Plain reads (Group, GroupOf, Lookup, ...) stay
	// lock-free; they must not overlap an Advance/Compact of the same
	// PLI. Advances are covered by the session discipline: appends only
	// happen under an exclusive writer, and readers re-fetch entries
	// inside every shared-lock window, so a stale entry has no live
	// readers when its first post-append lookup advances it. Compaction
	// of an already-fresh tailed entry has no such guarantee (a GetDelta
	// reader may be iterating the tail), so that case goes copy-on-write
	// (catchUp/compactedCopyLocked) instead of mutating in place.
	mu sync.Mutex

	// Delta tail: rows absorbed by Advance but not yet merged into the
	// flat storage. tails[g] holds the TIDs appended to base group g (in
	// ascending TID order — every tail TID is greater than every base
	// TID, so base++tail is the group's sorted membership); newGroups
	// holds groups for composite keys unseen at build time, in arrival
	// order, addressed by provisional indexes following the base groups.
	tails     map[int32][]int
	newGroups []deltaGroup
	newLookup map[string]int32 // composite code key -> newGroups index
	tailLen   int              // total TIDs across tails and newGroups

	// Lazily built composite-code -> base-group map backing Lookup and
	// Advance's group probes; extended/remapped by Compact instead of
	// discarded. Guarded by lookupMu so concurrent probers share one
	// build.
	lookupMu sync.Mutex
	lookup   map[string]int32
}

// deltaGroup is a provisional group opened by Advance for a composite
// key that had no base group.
type deltaGroup struct {
	key  string // composite code key shared by the members
	tids []int  // members in arrival (= ascending TID) order
}

// BuildPLI constructs the partition index of r on the given attribute
// positions by successive refinement: the TID list is partitioned by the
// first attribute's codes, each part is sub-partitioned by the second,
// and so on — a stable counting sort per level, O(n) per attribute plus
// the (cached) per-column code ranking.
//
// Group order: each column's codes are ranked by the lexicographic order
// of their Encode keys (Relation.codeRanks) and each refinement level
// emits sub-groups in rank order, so groups come out ordered
// component-wise by encoded keys. Value.Encode is prefix-free
// (length-prefixed strings, terminator-delimited numbers, leading kind
// byte), so for two distinct composite keys the first differing
// component decides the concatenated string comparison as well —
// component-wise order IS the sorted order of HashIndex.Keys(). Tests
// assert this on randomized relations.
//
// BuildPLI is the serial build; BuildPLISharded (shard.go) fans the
// counting-sort passes over a worker pool with byte-identical output.
func BuildPLI(r *Relation, attrs []int) *PLI {
	return buildPLI(r, attrs, 1)
}

// refineBy sub-partitions (cur, bounds) by attribute a's codes, writing
// the refined TID order into next and returning the refined bounds: one
// stable counting-sort level of the BuildPLI recurrence, reused verbatim
// by Intersect. cur is never written, so callers may pass shared
// storage (Intersect hands in the parent PLI's tids directly).
func refineBy(r *Relation, a int, cur, next []int, bounds []int32) []int32 {
	count := make([]int32, r.DistinctCodes(a))
	newBounds := make([]int32, 1, len(bounds))
	return refineGroups(r.ColumnCodes(a), r.codeRanks(a), count, cur, next, bounds,
		0, len(bounds)-1, newBounds)
}

// refineGroups is the group loop of refineBy restricted to the group
// index range [gLo, gHi): it writes the refined order of exactly those
// groups' members into next (the regions are disjoint per group, so
// concurrent calls over disjoint ranges never collide) and appends each
// refined sub-group's end position to newBounds. count is caller-owned
// scratch of DistinctCodes size, zeroed on entry and on return — one
// per worker in the chunked parallel refinement (shard.go).
func refineGroups(codes, ranks, count []int32, cur, next []int, bounds []int32, gLo, gHi int, newBounds []int32) []int32 {
	var touched []int32
	for gi := gLo; gi < gHi; gi++ {
		lo, hi := int(bounds[gi]), int(bounds[gi+1])
		if hi-lo == 1 {
			next[lo] = cur[lo]
			newBounds = append(newBounds, int32(hi))
			continue
		}
		members := cur[lo:hi]
		touched = touched[:0]
		for _, tid := range members {
			c := codes[tid]
			if count[c] == 0 {
				touched = append(touched, c)
			}
			count[c]++
		}
		if len(touched) == 1 {
			copy(next[lo:hi], members)
			newBounds = append(newBounds, int32(hi))
			count[touched[0]] = 0
			continue
		}
		sort.Slice(touched, func(i, j int) bool { return ranks[touched[i]] < ranks[touched[j]] })
		// Turn counts into placement cursors (block starts in rank
		// order), then place members stably so TIDs stay ascending.
		pos := int32(lo)
		for _, c := range touched {
			cnt := count[c]
			count[c] = pos
			pos += cnt
		}
		for _, tid := range members {
			c := codes[tid]
			next[count[c]] = tid
			count[c]++
		}
		// After placement each cursor sits at its block's end, which
		// is exactly the sub-group boundary.
		for _, c := range touched {
			newBounds = append(newBounds, count[c])
			count[c] = 0
		}
	}
	return newBounds
}

func (p *PLI) fillTIDGroups() {
	for g := 0; g+1 < len(p.offsets); g++ {
		for _, tid := range p.tids[p.offsets[g]:p.offsets[g+1]] {
			p.tidGroup[tid] = int32(g)
		}
	}
}

// Intersect returns the partition index over attrs ∪ {y} (y appended)
// by refining this PLI's groups with one counting-sort pass over y's
// codes — the classic TANE-style partition intersection. The result is
// byte-identical (groups, member order, group order) to
// BuildPLI(r, append(attrs, y)), but costs one refinement level instead
// of len(attrs)+1. A delta tail on the receiver is compacted first
// (refinement needs the flat canonical storage).
//
// The receiver must still describe its relation (Fresh after the
// compaction); IndexCache.GetVia catches the parent up before refining.
//
// Intersect refines serially; IntersectSharded (shard.go) fans the
// refinement over a worker pool with byte-identical output.
func (p *PLI) Intersect(y int) *PLI {
	return p.IntersectSharded(y, 1)
}

// Attrs returns the indexed attribute positions.
func (p *PLI) Attrs() []int { return p.attrs }

// NumGroups returns the number of groups (distinct composite keys),
// provisional new groups included.
func (p *PLI) NumGroups() int { return len(p.offsets) - 1 + len(p.newGroups) }

// hole returns the number of patched-out slots at the end of base group
// g's span (0 for unpatched indexes).
func (p *PLI) hole(g int32) int32 {
	if p.holes == nil {
		return 0
	}
	return p.holes[g]
}

// Group returns the TIDs of group g in ascending order. For an index
// without a delta tail the slice aliases index storage; a tailed base
// group is returned as a fresh merged slice (base members, then the
// appended tail — still ascending, since appended TIDs exceed all base
// TIDs; when a cell patch re-homed a TID into the tail the two runs are
// merge-sorted instead), and provisional new groups alias the tail
// storage. A group patched empty comes back as an empty slice until the
// next Compact drops it.
func (p *PLI) Group(g int) []int {
	nb := len(p.offsets) - 1
	if g >= nb {
		return p.newGroups[g-nb].tids
	}
	base := p.tids[p.offsets[g] : p.offsets[g+1]-p.hole(int32(g))]
	if p.tailLen == 0 {
		return base
	}
	tail := p.tails[int32(g)]
	if len(tail) == 0 {
		return base
	}
	if !p.dirty {
		out := make([]int, 0, len(base)+len(tail))
		return append(append(out, base...), tail...)
	}
	return mergeSortedTIDs(base, tail)
}

// mergeSortedTIDs merges two ascending TID runs into a fresh ascending
// slice.
func mergeSortedTIDs(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}

// GroupOf returns the index of the group containing tid (a provisional
// index past the base groups for uncompacted new groups).
func (p *PLI) GroupOf(tid int) int { return int(p.tidGroup[tid]) }

// TailLen returns the number of absorbed-but-uncompacted delta rows.
func (p *PLI) TailLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tailLen
}

// Lookup returns the TIDs of the group whose indexed attributes hold
// exactly the given values (one per indexed attribute, compared by
// Value.Encode like HashIndex keys — the probe values may come from a
// different relation). It returns nil when no group matches, and
// tolerates delta tails (tailed groups come back merged, provisional
// groups by their tail storage). The result may alias index storage.
//
// Like every PLI read, Lookup describes the relation as of build/advance
// time; probe through IndexCache.Get to stay fresh across mutations.
func (p *PLI) Lookup(vals []Value) []int {
	if len(vals) != len(p.attrs) {
		return nil
	}
	var buf [48]byte
	key := make([]byte, 0, 8*len(vals))
	for i, a := range p.attrs {
		code, ok := p.rel.cols[a].dict[string(vals[i].Encode(buf[:0]))]
		if !ok {
			return nil // value never interned: no group can hold it
		}
		key = appendCode(key, code)
	}
	if g, ok := p.baseLookup()[string(key)]; ok {
		return p.Group(int(g))
	}
	if gi, ok := p.newLookup[string(key)]; ok {
		return p.newGroups[gi].tids
	}
	return nil
}

// baseLookup returns the composite-code -> base-group map, materializing
// it from each group's representative TID on first use. Representatives
// are live members (hole-aware, falling back to the group's tail when
// patches emptied the base span); groups patched fully empty get no
// entry, so a later patch or advance interning their key opens a
// provisional group that Compact splices back at the same rank.
func (p *PLI) baseLookup() map[string]int32 {
	return p.baseLookupWith(func(tid, i int) int32 {
		return p.rel.cols[p.attrs[i]].codes[tid]
	})
}

// baseLookupWith is baseLookup with the representative codes read
// through codeAt — the patch-drain path supplies pre-patch codes for
// TIDs whose cells already changed but have not been re-homed yet, so a
// lookup map materialized mid-drain still keys every group correctly.
func (p *PLI) baseLookupWith(codeAt func(tid, i int) int32) map[string]int32 {
	p.lookupMu.Lock()
	defer p.lookupMu.Unlock()
	if p.lookup == nil {
		m := make(map[string]int32, len(p.offsets)-1)
		key := make([]byte, 0, 8*len(p.attrs))
		for g := 0; g+1 < len(p.offsets); g++ {
			lo, hi := p.offsets[g], p.offsets[g+1]-p.hole(int32(g))
			var rep int
			switch {
			case hi > lo:
				rep = p.tids[lo]
			case len(p.tails[int32(g)]) > 0:
				rep = p.tails[int32(g)][0]
			default:
				continue // patched empty: key unreachable until compact
			}
			key = key[:0]
			for i := range p.attrs {
				key = appendCode(key, codeAt(rep, i))
			}
			m[string(key)] = int32(g)
		}
		p.lookup = m
	}
	return p.lookup
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// Fresh reports whether the index still describes r: it was built from
// this relation, the relation has not grown, shrunk or been reordered,
// none of the indexed columns was hard-invalidated, and every journaled
// cell patch on the indexed columns has been applied (see catchUp). A
// PLI over untouched columns survives edits to other columns. Fresh
// does not imply canonical group order — an advanced or patched index
// may still carry a delta tail (or patch holes) until Compact.
func (p *PLI) Fresh(r *Relation) bool {
	return p.patchableTo(r) && p.n == r.Len() && p.patchesCurrent(r)
}

// AdvanceableTo reports whether the index describes a stale-only-by-
// appends snapshot of r: built from this relation, no indexed column
// hard-invalidated and no cell patch pending (no un-drained Set on it,
// no reorder, no Truncate) since the build, and the relation is at
// least as long. A fresh index is trivially advanceable.
func (p *PLI) AdvanceableTo(r *Relation) bool {
	return p.patchableTo(r) && p.patchesCurrent(r)
}

// patchableTo reports the weakest reachable state: the index can be
// caught up to r by applying journaled cell patches and absorbing
// appended rows — no indexed column was hard-invalidated (reorder,
// Truncate, journal overflow) and the relation did not shrink.
func (p *PLI) patchableTo(r *Relation) bool {
	if p.rel != r || p.n > r.Len() {
		return false
	}
	for i, a := range p.attrs {
		if p.colVers[i] != r.ColumnVersion(a) {
			return false
		}
	}
	return true
}

// patchesCurrent reports whether every indexed column's patch journal
// has been fully drained into the index.
func (p *PLI) patchesCurrent(r *Relation) bool {
	for i, a := range p.attrs {
		if p.patchVers[i] != r.PatchVersion(a) {
			return false
		}
	}
	return true
}

// Advance absorbs the rows appended to the relation since the index was
// built or last advanced: each new TID joins the delta tail of its
// existing group, or opens a provisional new group — O(delta) map
// probes, no counting sort, no rebuild. The tail is merged into
// canonical sorted-group order lazily (see Compact), automatically once
// it outgrows an eighth of the index. Advance returns false (changing
// nothing) when the index cannot reach r by appending — an indexed
// column was edited, the relation was reordered or truncated, or it is
// a different relation — and true otherwise, including when there is
// nothing to absorb.
//
// Advance and Compact mutate the index and are serialized against each
// other (PLI.mu), but must not overlap lock-free readers of the same
// PLI; direct callers guarantee that by appending only under an
// exclusive writer, as engine sessions do. (The IndexCache's catch-up
// path compacts shared tailed entries copy-on-write instead — see
// catchUp.)
func (p *PLI) Advance(r *Relation) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.advanceLocked(r)
}

func (p *PLI) advanceLocked(r *Relation) bool {
	if !p.AdvanceableTo(r) {
		return false
	}
	n := r.Len()
	if n == p.n {
		return true
	}
	lookup := p.baseLookup()
	cols := make([][]int32, len(p.attrs))
	for i, a := range p.attrs {
		cols[i] = r.cols[a].codes
	}
	nb := int32(len(p.offsets) - 1)
	key := make([]byte, 0, 8*len(p.attrs))
	for tid := p.n; tid < n; tid++ {
		key = key[:0]
		for _, codes := range cols {
			key = appendCode(key, codes[tid])
		}
		if g, ok := lookup[string(key)]; ok {
			if p.tails == nil {
				p.tails = make(map[int32][]int)
			}
			p.tails[g] = append(p.tails[g], tid)
			p.tidGroup = append(p.tidGroup, g)
		} else if gi, ok := p.newLookup[string(key)]; ok {
			p.newGroups[gi].tids = append(p.newGroups[gi].tids, tid)
			p.tidGroup = append(p.tidGroup, nb+gi)
		} else {
			gi := int32(len(p.newGroups))
			if p.newLookup == nil {
				p.newLookup = make(map[string]int32)
			}
			k := string(key)
			p.newLookup[k] = gi
			p.newGroups = append(p.newGroups, deltaGroup{key: k, tids: []int{tid}})
			p.tidGroup = append(p.tidGroup, nb+gi)
		}
		p.tailLen++
	}
	p.n = n
	p.advanceShardEnds(n)
	if p.tailLen*8 > p.n {
		p.compactLocked()
	}
	return true
}

// Patch applies one journaled cell patch to the index: cell (tid, attr)
// of the underlying relation changed oldCode -> newCode (a
// relation.CellPatch emitted by Relation.Set), and the TID is re-homed
// to the group matching its current codes — an O(group) move (binary
// search plus an intra-group shift on removal, a sorted tail insert on
// arrival; a multi-attribute index recomputes the composite key from
// the current column codes), never a rebuild. TIDs the index has not
// absorbed yet (tid >= the index's length watermark) are no-ops: the
// next Advance reads their post-patch codes anyway. Patch advances the
// index's patch watermark for attr by one record, so callers must apply
// journal records exactly once and in journal order (the discipline the
// IndexCache's catch-up path follows); attr must be one of the indexed
// attributes. Reports whether the TID actually moved groups.
//
// Like Advance, Patch mutates the index and must not overlap lock-free
// readers of the same PLI; a Set implies an exclusive writer, which is
// what guarantees no reader still holds the index when its first
// post-Set lookup patches it.
func (p *PLI) Patch(tid, attr int, oldCode, newCode int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := -1
	for i, a := range p.attrs {
		if a == attr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	// If the lookup map is not materialized yet, build it under a
	// pre-patch overlay of EVERY still-pending journal record (this one
	// included — the watermark has not moved yet): any pending TID may be
	// a group representative whose cell already changed, and keying its
	// group by the post-patch code would strand the group's true key.
	p.lookupMu.Lock()
	needBuild := p.lookup == nil
	p.lookupMu.Unlock()
	if needBuild {
		k := int64(len(p.attrs))
		_, pre, _ := p.pendingPatchTIDs(p.rel)
		if pre == nil {
			pre = make(map[int64]int32, 1)
		}
		if _, dup := pre[int64(tid)*k+int64(idx)]; !dup {
			pre[int64(tid)*k+int64(idx)] = oldCode
		}
		p.baseLookupWith(func(t, i int) int32 {
			if c, ok := pre[int64(t)*k+int64(i)]; ok {
				return c
			}
			return p.rel.cols[p.attrs[i]].codes[t]
		})
	}
	p.patchVers[idx]++
	if tid >= p.n || oldCode == newCode {
		return false
	}
	p.materializeLocked() // span shifts write in place; never into a mapping
	moved := p.patchTIDLocked(tid)
	if moved {
		p.dirty = true
		if (p.tailLen+p.holeCnt)*8 > p.n {
			p.compactLocked()
		}
	}
	return moved
}

// pendingPatchTIDs collects the distinct TIDs (< p.n, ascending) with
// journaled patches the index has not applied, plus an overlay of their
// pre-patch codes per (tid, attr index) — what the TID's current group
// was keyed on. ok is false when some journal no longer retains the
// index's suffix (the entry must be rebuilt). Does not mutate the
// index.
func (p *PLI) pendingPatchTIDs(r *Relation) (tids []int, pre map[int64]int32, ok bool) {
	k := int64(len(p.attrs))
	var seen map[int]struct{}
	for i, a := range p.attrs {
		log, retained := r.PatchesSince(a, p.patchVers[i])
		if !retained {
			return nil, nil, false
		}
		for _, pc := range log {
			if pc.TID >= p.n {
				continue // not absorbed yet; Advance reads current codes
			}
			if seen == nil {
				seen = make(map[int]struct{})
				pre = make(map[int64]int32)
			}
			seen[pc.TID] = struct{}{}
			if key := int64(pc.TID)*k + int64(i); pre != nil {
				if _, dup := pre[key]; !dup {
					pre[key] = pc.Old // earliest record holds the pre-drain code
				}
			}
		}
	}
	for tid := range seen {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids, pre, true
}

// applyPatchesLocked drains the pending journal records gathered by
// pendingPatchTIDs: each patched TID is re-homed to the group matching
// its current codes, and the index's patch watermarks move to the
// journals' heads. Called with p.mu held, under the same no-live-reader
// guarantee as Advance (a pending patch implies a Set under an
// exclusive writer since the last reader window).
func (p *PLI) applyPatchesLocked(r *Relation, tids []int, pre map[int64]int32) {
	k := int64(len(p.attrs))
	p.baseLookupWith(func(tid, i int) int32 {
		if c, ok := pre[int64(tid)*k+int64(i)]; ok {
			return c
		}
		return p.rel.cols[p.attrs[i]].codes[tid]
	})
	p.materializeLocked() // span shifts write in place; never into a mapping
	moved := false
	for _, tid := range tids {
		if p.patchTIDLocked(tid) {
			moved = true
		}
	}
	if moved {
		p.dirty = true
	}
	for i, a := range p.attrs {
		p.patchVers[i] = r.PatchVersion(a)
	}
	if (p.tailLen+p.holeCnt)*8 > p.n {
		p.compactLocked()
	}
}

// patchTIDLocked re-homes one TID to the group matching its current
// codes: it is removed from its recorded group (an O(group) span shift
// leaving a hole, or a tail extraction) and inserted, in sorted
// position, into the tail of the matching base group, an existing
// provisional group, or a freshly opened one — exactly the group
// Advance would have chosen for a new row with these codes, so Compact
// restores canonical order. The lookup map must already be
// materialized. Reports whether the TID changed groups.
func (p *PLI) patchTIDLocked(tid int) bool {
	key := make([]byte, 0, 8*len(p.attrs))
	for _, a := range p.attrs {
		key = appendCode(key, p.rel.cols[a].codes[tid])
	}
	g := int(p.tidGroup[tid])
	nb := len(p.offsets) - 1
	target := -1
	if bg, ok := p.lookup[string(key)]; ok {
		target = int(bg)
	} else if gi, ok := p.newLookup[string(key)]; ok {
		target = nb + int(gi)
	}
	if target == g {
		return false // already home (duplicate or round-trip patches)
	}
	p.removeTIDLocked(tid, g)
	switch {
	case target < 0:
		gi := int32(len(p.newGroups))
		if p.newLookup == nil {
			p.newLookup = make(map[string]int32)
		}
		ks := string(key)
		p.newLookup[ks] = gi
		p.newGroups = append(p.newGroups, deltaGroup{key: ks, tids: []int{tid}})
		p.tidGroup[tid] = int32(nb) + gi
	case target >= nb:
		dg := &p.newGroups[target-nb]
		dg.tids = insertSortedTID(dg.tids, tid)
		p.tidGroup[tid] = int32(target)
	default:
		if p.tails == nil {
			p.tails = make(map[int32][]int)
		}
		p.tails[int32(target)] = insertSortedTID(p.tails[int32(target)], tid)
		p.tidGroup[tid] = int32(target)
	}
	p.tailLen++
	return true
}

// removeTIDLocked deletes one TID from group g: provisional groups and
// delta tails shrink in place; a base-span member is shifted out within
// its own span, leaving a counted hole at the span's end (holes never
// move other groups' storage — Compact squeezes them out).
func (p *PLI) removeTIDLocked(tid, g int) {
	nb := len(p.offsets) - 1
	if g >= nb {
		dg := &p.newGroups[g-nb]
		dg.tids = removeSortedTID(dg.tids, tid)
		p.tailLen--
		return
	}
	if tail := p.tails[int32(g)]; len(tail) > 0 {
		if i := sort.SearchInts(tail, tid); i < len(tail) && tail[i] == tid {
			tail = append(tail[:i], tail[i+1:]...)
			if len(tail) == 0 {
				delete(p.tails, int32(g))
			} else {
				p.tails[int32(g)] = tail
			}
			p.tailLen--
			return
		}
	}
	lo, hi := int(p.offsets[g]), int(p.offsets[g+1]-p.hole(int32(g)))
	span := p.tids[lo:hi]
	i := sort.SearchInts(span, tid)
	copy(span[i:], span[i+1:])
	if p.holes == nil {
		p.holes = make(map[int32]int32)
	}
	p.holes[int32(g)]++
	p.holeCnt++
}

// insertSortedTID inserts tid into an ascending TID slice.
func insertSortedTID(s []int, tid int) []int {
	i := sort.SearchInts(s, tid)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = tid
	return s
}

// removeSortedTID deletes tid from an ascending TID slice.
func removeSortedTID(s []int, tid int) []int {
	i := sort.SearchInts(s, tid)
	return append(s[:i], s[i+1:]...)
}

// Compact merges the delta tail into canonical order: provisional new
// groups are sorted by composite key rank and spliced into the sorted
// group sequence, tailed base groups re-concatenate their members, and
// the flat storage (tids, offsets, tidGroup) is rebuilt in one O(n +
// groups) merge pass — after which the index is byte-identical to
// BuildPLI over the advanced relation. The Lookup map, if built, is
// remapped to the new group numbering and extended with the new groups
// rather than discarded. Compacting an index without a tail is a no-op.
func (p *PLI) Compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compactLocked()
}

func (p *PLI) compactLocked() {
	if p.dirty {
		p.compactPatchedLocked()
		return
	}
	if p.tailLen == 0 {
		return
	}
	nb0 := len(p.offsets) - 1
	if len(p.newGroups) == 0 {
		// Fast path — the usual streaming case: every absorbed row
		// joined an existing group, so group ids are unchanged and
		// tidGroup and the Lookup map stay valid as-is. Merge span-wise:
		// the runs of untouched groups between tailed ones are bulk
		// memmoves, and only the (few) tailed groups touch the tail map.
		tailed := make([]int32, 0, len(p.tails))
		for g := range p.tails {
			tailed = append(tailed, g)
		}
		sort.Slice(tailed, func(i, j int) bool { return tailed[i] < tailed[j] })
		tids := make([]int, p.n)
		offsets := make([]int32, nb0+1)
		pos, done, shift := 0, 0, int32(0)
		for _, tg := range tailed {
			lo, hi := p.offsets[done], p.offsets[tg+1]
			copy(tids[pos:], p.tids[lo:hi])
			pos += int(hi - lo)
			for g := done; g <= int(tg); g++ {
				offsets[g+1] = p.offsets[g+1] + shift
			}
			tail := p.tails[tg]
			copy(tids[pos:], tail)
			pos += len(tail)
			shift += int32(len(tail))
			offsets[int(tg)+1] += int32(len(tail))
			done = int(tg) + 1
		}
		copy(tids[pos:], p.tids[p.offsets[done]:])
		for g := done; g < nb0; g++ {
			offsets[g+1] = p.offsets[g+1] + shift
		}
		p.tids, p.offsets = tids, offsets
		p.tails, p.tailLen = nil, 0
		if !p.seg.holdsInt32(p.tidGroup) {
			p.seg = nil // compaction rewrote every mapped section
		}
		return
	}
	r := p.rel
	k := len(p.attrs)
	ranks := make([][]int32, k)
	cols := make([][]int32, k)
	for i, a := range p.attrs {
		ranks[i] = r.codeRanks(a)
		cols[i] = r.ColumnCodes(a)
	}
	// less compares two groups by their representative TIDs under the
	// canonical component-wise code-rank order (see BuildPLI); distinct
	// groups always differ in some component.
	less := func(repA, repB int) bool {
		for i := 0; i < k; i++ {
			ra, rb := ranks[i][cols[i][repA]], ranks[i][cols[i][repB]]
			if ra != rb {
				return ra < rb
			}
		}
		return false
	}
	sort.Slice(p.newGroups, func(i, j int) bool {
		return less(p.newGroups[i].tids[0], p.newGroups[j].tids[0])
	})
	nb := len(p.offsets) - 1
	total := nb + len(p.newGroups)
	tids := make([]int, 0, p.n)
	offsets := make([]int32, 1, total+1)
	baseMap := make([]int32, nb)              // old base group -> new index
	newMap := make([]int32, len(p.newGroups)) // sorted newGroups index -> new index
	bi, ni := 0, 0
	for bi < nb || ni < len(p.newGroups) {
		takeNew := bi == nb ||
			(ni < len(p.newGroups) && less(p.newGroups[ni].tids[0], p.tids[p.offsets[bi]]))
		if takeNew {
			newMap[ni] = int32(len(offsets) - 1)
			tids = append(tids, p.newGroups[ni].tids...)
			ni++
		} else {
			baseMap[bi] = int32(len(offsets) - 1)
			tids = append(tids, p.tids[p.offsets[bi]:p.offsets[bi+1]]...)
			tids = append(tids, p.tails[int32(bi)]...)
			bi++
		}
		offsets = append(offsets, int32(len(tids)))
	}
	p.tids, p.offsets = tids, offsets
	if len(p.tidGroup) != p.n || p.seg.holdsInt32(p.tidGroup) {
		p.tidGroup = make([]int32, p.n)
	}
	p.seg = nil
	p.fillTIDGroups()
	p.lookupMu.Lock()
	if p.lookup != nil {
		for key, g := range p.lookup {
			p.lookup[key] = baseMap[g]
		}
		for i, ng := range p.newGroups {
			p.lookup[ng.key] = newMap[i]
		}
	}
	p.lookupMu.Unlock()
	p.tails, p.newGroups, p.newLookup, p.tailLen = nil, nil, nil, 0
}

// compactPatchedLocked is Compact for a patch-dirtied index: base
// groups squeeze out their holes and sort-merge their tails (patches
// may have re-homed TIDs below the append watermark, so tails are no
// longer all-greater-than-base), groups patched fully empty are
// dropped, and surviving provisional groups are spliced in at their
// canonical code-rank position — one O(n + groups) pass, after which
// the index is byte-identical to BuildPLI over the patched relation.
// The Lookup maps are discarded (group numbering may shrink) and
// rebuilt lazily.
func (p *PLI) compactPatchedLocked() {
	r := p.rel
	k := len(p.attrs)
	ranks := make([][]int32, k)
	cols := make([][]int32, k)
	for i, a := range p.attrs {
		ranks[i] = r.codeRanks(a)
		cols[i] = r.ColumnCodes(a)
	}
	less := func(repA, repB int) bool {
		for i := 0; i < k; i++ {
			ra, rb := ranks[i][cols[i][repA]], ranks[i][cols[i][repB]]
			if ra != rb {
				return ra < rb
			}
		}
		return false
	}
	ngs := make([]deltaGroup, 0, len(p.newGroups))
	for _, ng := range p.newGroups {
		if len(ng.tids) > 0 { // patches can empty provisional groups too
			ngs = append(ngs, ng)
		}
	}
	sort.Slice(ngs, func(i, j int) bool { return less(ngs[i].tids[0], ngs[j].tids[0]) })
	nb := len(p.offsets) - 1
	// baseRep returns a live representative of base group g: its first
	// surviving span member, else its first tail member.
	baseRep := func(g int) (int, bool) {
		lo, hi := int(p.offsets[g]), int(p.offsets[g+1]-p.hole(int32(g)))
		if hi > lo {
			return p.tids[lo], true
		}
		if t := p.tails[int32(g)]; len(t) > 0 {
			return t[0], true
		}
		return 0, false
	}
	tids := make([]int, 0, p.n)
	offsets := make([]int32, 1, nb+len(ngs)+1)
	bi, ni := 0, 0
	for {
		rep, live := 0, false
		for bi < nb {
			if rep, live = baseRep(bi); live {
				break
			}
			bi++ // patched empty: dropped
		}
		if !live && ni == len(ngs) {
			break
		}
		if !live || (ni < len(ngs) && less(ngs[ni].tids[0], rep)) {
			tids = append(tids, ngs[ni].tids...)
			ni++
		} else {
			lo, hi := int(p.offsets[bi]), int(p.offsets[bi+1]-p.hole(int32(bi)))
			tids = appendMergedTIDs(tids, p.tids[lo:hi], p.tails[int32(bi)])
			bi++
		}
		offsets = append(offsets, int32(len(tids)))
	}
	p.tids, p.offsets = tids, offsets
	if len(p.tidGroup) != p.n || p.seg.holdsInt32(p.tidGroup) {
		p.tidGroup = make([]int32, p.n)
	}
	p.seg = nil
	p.fillTIDGroups()
	p.lookupMu.Lock()
	p.lookup = nil
	p.lookupMu.Unlock()
	p.tails, p.newGroups, p.newLookup, p.tailLen = nil, nil, nil, 0
	p.holes, p.holeCnt, p.dirty = nil, 0, false
}

// appendMergedTIDs appends the sorted merge of two ascending TID runs
// to dst.
func appendMergedTIDs(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	return append(append(dst, a[i:]...), b[j:]...)
}

// catchUp is IndexCache's entry-revalidation hook: under the PLI's
// mutex, drain any journaled cell patches, absorb any appended rows,
// and — for order-sensitive callers — compact the delta tail. out is
// nil when the entry cannot reach r (an indexed column was hard-
// invalidated, the relation was reordered/truncated, a patch journal
// was trimmed past this entry's watermark, the pending patch set is
// large enough that a rebuild is cheaper, or it is a different
// relation); otherwise out is the PLI to hand to the caller, patched
// reports whether journal records were applied, and advanced whether
// rows were absorbed (distinct counters in cache stats, as opposed to
// a pure hit).
//
// out is usually the receiver: staleness of either kind implies an
// exclusive writer (an append or a Set) since the last lookup, which
// implies no reader still holds this PLI (readers re-fetch entries
// inside every shared-lock window), so patching, advancing and the
// follow-up compaction may mutate in place. The exception is
// compacting a FRESH entry that still carries a delta tail or patch
// holes: a delta-tolerant reader (GetDelta) may be iterating it
// lock-free right now, so the merge happens copy-on-write into a
// fresh PLI (out != p) and the cache republishes it — the original is
// never mutated again.
func (p *PLI) catchUp(r *Relation, compact bool) (out *PLI, advanced, patched bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.patchableTo(r) {
		return nil, false, false
	}
	if !p.patchesCurrent(r) {
		pending, pre, ok := p.pendingPatchTIDs(r)
		if !ok || len(pending)*8 > p.n {
			return nil, false, false // journal trimmed, or rebuild is cheaper
		}
		if len(pending) > 0 {
			p.applyPatchesLocked(r, pending, pre)
			patched = true
		} else {
			// Every journaled record hits the un-absorbed region; the
			// advance below reads post-patch codes, so just sync.
			for i, a := range p.attrs {
				p.patchVers[i] = r.PatchVersion(a)
			}
		}
	}
	if p.n < r.Len() {
		p.advanceLocked(r)
		advanced = true
	}
	if advanced || patched {
		if compact {
			p.compactLocked()
		}
		return p, advanced, patched
	}
	if compact && (p.tailLen > 0 || p.dirty) {
		return p.compactedCopyLocked(), false, false
	}
	return p, false, false
}

// compactedCopyLocked returns a compacted PLI equivalent to the
// receiver without mutating any state a lock-free reader of the
// receiver can observe: the flat storage and tail maps are only read,
// and everything compaction rewrites (tids, offsets, tidGroup, the
// provisional-group order, the Lookup maps) is private to the copy.
// Called with p.mu held and p.tailLen > 0.
func (p *PLI) compactedCopyLocked() *PLI {
	q := &PLI{
		rel:        p.rel,
		attrs:      p.attrs,
		colVers:    p.colVers,
		patchVers:  append([]uint64(nil), p.patchVers...),
		n:          p.n,
		tids:       p.tids,    // read-only input; compaction emits fresh slices
		offsets:    p.offsets, // "
		tidGroup:   append([]int32(nil), p.tidGroup...),
		holes:      p.holes, // read-only input; compaction resets the copy's
		holeCnt:    p.holeCnt,
		dirty:      p.dirty,
		shardWidth: p.shardWidth,
		shardEnds:  append([]int(nil), p.shardEnds...),
		tails:      p.tails, // read-only input
		newGroups:  append([]deltaGroup(nil), p.newGroups...),
		newLookup:  nil, // compaction drops it; Lookup rebuilds lazily
		tailLen:    p.tailLen,
	}
	q.compactLocked()
	return q
}

// materializeLocked replaces any mapped flat-storage views with heap
// copies and drops the mapping anchor — the gate every in-place
// mutation of a paged-in index goes through (patch drains shift group
// spans in place; writing through a PROT_READ mapping would fault).
// Appends need no gate: mapped views carry cap == len, so the first
// append reallocates onto the heap by itself. Called with p.mu held
// under the usual no-live-reader mutation guarantee — a reader still
// iterating the mapped arrays would otherwise lose the object keeping
// the mmap alive.
func (p *PLI) materializeLocked() {
	if p.seg == nil {
		return
	}
	if p.seg.holdsInt(p.tids) {
		p.tids = append([]int(nil), p.tids...)
	}
	if p.seg.holdsInt32(p.offsets) {
		p.offsets = append([]int32(nil), p.offsets...)
	}
	if p.seg.holdsInt32(p.tidGroup) {
		p.tidGroup = append([]int32(nil), p.tidGroup...)
	}
	p.seg = nil // unmapped by the mapping finalizer once unreferenced
}

// MemSize estimates the index's resident heap bytes (flat storage plus
// delta tail and lookup map) — the unit of IndexCache's byte budget.
// Flat arrays that are zero-copy views into a mapped segment file are
// excluded: they live in pageable OS memory the kernel reclaims under
// pressure, not on the Go heap, which is exactly the existence →
// residency repointing that lets a paged-in index stay cached at
// near-zero budget cost.
func (p *PLI) MemSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sz int64
	if !p.seg.holdsInt(p.tids) {
		sz += int64(len(p.tids)) * 8
	}
	if !p.seg.holdsInt32(p.offsets) {
		sz += int64(len(p.offsets)) * 4
	}
	if !p.seg.holdsInt32(p.tidGroup) {
		sz += int64(len(p.tidGroup)) * 4
	}
	sz += int64(p.tailLen)*16 + int64(len(p.shardEnds))*8
	sz += int64(len(p.holes))*8 + int64(len(p.patchVers))*8
	p.lookupMu.Lock()
	sz += int64(len(p.lookup)) * (16 + int64(len(p.attrs))*4)
	p.lookupMu.Unlock()
	return sz + 96
}
