package relation

import (
	"sort"
	"sync"
)

// PLI is a position list index: the partition of a relation's TIDs into
// groups agreeing on a fixed attribute list, computed over the interned
// column codes without materializing string keys. It is the columnar
// successor of HashIndex — groups are identical to HashIndex buckets
// (codes coincide with Value.Encode keys), and the group order is the
// same sorted-key order, so group-wise algorithms produce byte-identical
// output on either index.
//
// Storage is flat: all TIDs live in one slice partitioned by an offsets
// table, which keeps a 100k-group index to three allocations instead of
// 100k bucket slices.
//
// A PLI is a snapshot. It records the per-column versions of its
// attributes at build time; Fresh reports whether it still describes the
// relation, which is how IndexCache detects staleness after edits.
type PLI struct {
	rel      *Relation
	attrs    []int
	colVers  []uint64
	n        int
	tids     []int   // concatenation of all groups; ascending within each
	offsets  []int32 // group g occupies tids[offsets[g]:offsets[g+1]]
	tidGroup []int32 // tid -> group index

	// Lazily built composite-code -> group map backing Lookup; built at
	// most once per PLI (sync.Once), so concurrent probers share it.
	lookupOnce sync.Once
	lookup     map[string]int32
}

// BuildPLI constructs the partition index of r on the given attribute
// positions by successive refinement: the TID list is partitioned by the
// first attribute's codes, each part is sub-partitioned by the second,
// and so on — a stable counting sort per level, O(n) per attribute plus
// the (cached) per-column code ranking.
//
// Group order: each column's codes are ranked by the lexicographic order
// of their Encode keys (Relation.codeRanks) and each refinement level
// emits sub-groups in rank order, so groups come out ordered
// component-wise by encoded keys. Value.Encode is prefix-free
// (length-prefixed strings, terminator-delimited numbers, leading kind
// byte), so for two distinct composite keys the first differing
// component decides the concatenated string comparison as well —
// component-wise order IS the sorted order of HashIndex.Keys(). Tests
// assert this on randomized relations.
func BuildPLI(r *Relation, attrs []int) *PLI {
	p := &PLI{
		rel:     r,
		attrs:   append([]int(nil), attrs...),
		colVers: make([]uint64, len(attrs)),
		n:       r.Len(),
	}
	for i, a := range attrs {
		p.colVers[i] = r.ColumnVersion(a)
	}
	n := r.Len()
	p.tidGroup = make([]int32, n)
	if n == 0 {
		p.offsets = []int32{0}
		return p
	}

	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	next := make([]int, n)
	bounds := []int32{0, int32(n)}

	for _, a := range attrs {
		bounds = refineBy(r, a, cur, next, bounds)
		cur, next = next, cur
	}

	p.tids = cur
	p.offsets = bounds
	p.fillTIDGroups()
	return p
}

// refineBy sub-partitions (cur, bounds) by attribute a's codes, writing
// the refined TID order into next and returning the refined bounds: one
// stable counting-sort level of the BuildPLI recurrence, reused verbatim
// by Intersect. cur is never written, so callers may pass shared
// storage (Intersect hands in the parent PLI's tids directly).
func refineBy(r *Relation, a int, cur, next []int, bounds []int32) []int32 {
	codes := r.ColumnCodes(a)
	ranks := r.codeRanks(a)
	count := make([]int32, r.DistinctCodes(a))
	var touched []int32
	newBounds := make([]int32, 1, len(bounds))
	for gi := 0; gi+1 < len(bounds); gi++ {
		lo, hi := int(bounds[gi]), int(bounds[gi+1])
		if hi-lo == 1 {
			next[lo] = cur[lo]
			newBounds = append(newBounds, int32(hi))
			continue
		}
		members := cur[lo:hi]
		touched = touched[:0]
		for _, tid := range members {
			c := codes[tid]
			if count[c] == 0 {
				touched = append(touched, c)
			}
			count[c]++
		}
		if len(touched) == 1 {
			copy(next[lo:hi], members)
			newBounds = append(newBounds, int32(hi))
			count[touched[0]] = 0
			continue
		}
		sort.Slice(touched, func(i, j int) bool { return ranks[touched[i]] < ranks[touched[j]] })
		// Turn counts into placement cursors (block starts in rank
		// order), then place members stably so TIDs stay ascending.
		pos := int32(lo)
		for _, c := range touched {
			cnt := count[c]
			count[c] = pos
			pos += cnt
		}
		for _, tid := range members {
			c := codes[tid]
			next[count[c]] = tid
			count[c]++
		}
		// After placement each cursor sits at its block's end, which
		// is exactly the sub-group boundary.
		for _, c := range touched {
			newBounds = append(newBounds, count[c])
			count[c] = 0
		}
	}
	return newBounds
}

func (p *PLI) fillTIDGroups() {
	for g := 0; g+1 < len(p.offsets); g++ {
		for _, tid := range p.tids[p.offsets[g]:p.offsets[g+1]] {
			p.tidGroup[tid] = int32(g)
		}
	}
}

// Intersect returns the partition index over attrs ∪ {y} (y appended)
// by refining this PLI's groups with one counting-sort pass over y's
// codes — the classic TANE-style partition intersection. The result is
// byte-identical (groups, member order, group order) to
// BuildPLI(r, append(attrs, y)), but costs one refinement level instead
// of len(attrs)+1.
//
// The receiver must still be fresh for its relation (Intersect snapshots
// y's current column version alongside the receiver's recorded ones);
// IndexCache.GetVia checks that before refining.
func (p *PLI) Intersect(y int) *PLI {
	r := p.rel
	out := &PLI{
		rel:     r,
		attrs:   append(append([]int(nil), p.attrs...), y),
		colVers: make([]uint64, len(p.attrs)+1),
		n:       p.n,
	}
	copy(out.colVers, p.colVers)
	out.colVers[len(p.attrs)] = r.ColumnVersion(y)
	out.tidGroup = make([]int32, p.n)
	if p.n == 0 {
		out.offsets = []int32{0}
		return out
	}
	// refineBy only reads cur, so the parent's TID storage is shared
	// directly instead of copied.
	next := make([]int, p.n)
	out.offsets = refineBy(r, y, p.tids, next, p.offsets)
	out.tids = next
	out.fillTIDGroups()
	return out
}

// Attrs returns the indexed attribute positions.
func (p *PLI) Attrs() []int { return p.attrs }

// NumGroups returns the number of groups (distinct composite keys).
func (p *PLI) NumGroups() int { return len(p.offsets) - 1 }

// Group returns the TIDs of group g in ascending order. The slice
// aliases index storage.
func (p *PLI) Group(g int) []int { return p.tids[p.offsets[g]:p.offsets[g+1]] }

// GroupOf returns the index of the group containing tid.
func (p *PLI) GroupOf(tid int) int { return int(p.tidGroup[tid]) }

// Lookup returns the TIDs of the group whose indexed attributes hold
// exactly the given values (one per indexed attribute, compared by
// Value.Encode like HashIndex keys — the probe values may come from a
// different relation). It returns nil when no group matches. The result
// aliases index storage.
//
// Like every PLI read, Lookup describes the relation as of build time;
// probe through IndexCache.Get to stay fresh across mutations.
func (p *PLI) Lookup(vals []Value) []int {
	if len(vals) != len(p.attrs) {
		return nil
	}
	var buf [48]byte
	key := make([]byte, 0, 8*len(vals))
	for i, a := range p.attrs {
		code, ok := p.rel.cols[a].dict[string(vals[i].Encode(buf[:0]))]
		if !ok {
			return nil // value never interned: no group can hold it
		}
		key = appendCode(key, code)
	}
	p.lookupOnce.Do(p.buildLookup)
	g, ok := p.lookup[string(key)]
	if !ok {
		return nil
	}
	return p.Group(int(g))
}

// buildLookup materializes the composite-code -> group map from each
// group's representative TID.
func (p *PLI) buildLookup() {
	m := make(map[string]int32, p.NumGroups())
	key := make([]byte, 0, 8*len(p.attrs))
	for g := 0; g < p.NumGroups(); g++ {
		rep := p.tids[p.offsets[g]]
		key = key[:0]
		for _, a := range p.attrs {
			key = appendCode(key, p.rel.cols[a].codes[rep])
		}
		m[string(key)] = int32(g)
	}
	p.lookup = m
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// Fresh reports whether the index still describes r: it was built from
// this relation, the relation has not grown or been reordered, and none
// of the indexed columns changed since the build. A PLI over untouched
// columns survives edits to other columns.
func (p *PLI) Fresh(r *Relation) bool {
	if p.rel != r || p.n != r.Len() {
		return false
	}
	for i, a := range p.attrs {
		if p.colVers[i] != r.ColumnVersion(a) {
			return false
		}
	}
	return true
}
