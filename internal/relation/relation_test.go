package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func custSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty schema name should fail")
	}
	if _, err := NewSchema("r"); err == nil {
		t.Error("zero attributes should fail")
	}
	if _, err := NewSchema("r", Attribute{Name: "A"}, Attribute{Name: "A"}); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSchema("r", Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name should fail")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := custSchema(t)
	if s.Arity() != 7 {
		t.Fatalf("arity = %d, want 7", s.Arity())
	}
	i, ok := s.Index("ZIP")
	if !ok || i != 6 {
		t.Errorf("Index(ZIP) = %d, %v; want 6, true", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should report false")
	}
	idxs, err := s.Indexes("CC", "ZIP")
	if err != nil || idxs[0] != 0 || idxs[1] != 6 {
		t.Errorf("Indexes(CC, ZIP) = %v, %v", idxs, err)
	}
	if _, err := s.Indexes("CC", "nope"); err == nil {
		t.Error("Indexes with unknown attribute should fail")
	}
}

func strTuple(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = String(v)
	}
	return t
}

func TestInsertValidation(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindString}, Attribute{"B", KindInt}, Attribute{"C", KindFloat})
	r := New(s)
	if _, err := r.Insert(Tuple{String("x")}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := r.Insert(Tuple{Int(1), Int(2), Float(3)}); err == nil {
		t.Error("kind mismatch should fail")
	}
	// int into float column is coerced
	tid, err := r.Insert(Tuple{String("x"), Int(2), Int(3)})
	if err != nil {
		t.Fatalf("int-to-float coercion failed: %v", err)
	}
	if got := r.Get(tid, 2); got.Kind() != KindFloat || got.FloatVal() != 3 {
		t.Errorf("coerced value = %v (%v)", got, got.Kind())
	}
	// NULL fits anywhere
	if _, err := r.Insert(Tuple{Null(), Null(), Null()}); err != nil {
		t.Errorf("NULL insert failed: %v", err)
	}
}

func TestTupleOps(t *testing.T) {
	tp := strTuple("a", "b", "c")
	pr := tp.Project([]int{2, 0})
	if !pr.Equal(strTuple("c", "a")) {
		t.Errorf("Project = %v", pr)
	}
	cl := tp.Clone()
	cl[0] = String("z")
	if tp[0].Str() != "a" {
		t.Error("Clone must not alias")
	}
	if !tp.EqualOn(strTuple("a", "x", "c"), []int{0, 2}) {
		t.Error("EqualOn {0,2} should hold")
	}
	if tp.EqualOn(strTuple("a", "x", "c"), []int{0, 1}) {
		t.Error("EqualOn {0,1} should not hold")
	}
}

func TestHashIndex(t *testing.T) {
	s := custSchema(t)
	r := New(s)
	r.MustInsert(strTuple("44", "131", "1111111", "mike", "mayfield", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "2222222", "rick", "crichton", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("01", "908", "3333333", "joe", "mtn ave", "mh", "07974"))
	idx := BuildIndex(r, []int{0, 1})
	if idx.Size() != 2 {
		t.Fatalf("index size = %d, want 2", idx.Size())
	}
	got := idx.Lookup(r.Tuple(0))
	if len(got) != 2 {
		t.Errorf("Lookup(44,131) = %v, want 2 tids", got)
	}
	got = idx.Lookup(r.Tuple(2))
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Lookup(01,908) = %v, want [2]", got)
	}
}

func TestIndexAgreesWithScan(t *testing.T) {
	// Property: for random relations, index lookups equal scan results.
	rng := rand.New(rand.NewSource(7))
	s := MustSchema("r", Attribute{"A", KindString}, Attribute{"B", KindString}, Attribute{"C", KindString})
	r := New(s)
	vals := []string{"x", "y", "z"}
	for i := 0; i < 500; i++ {
		r.MustInsert(strTuple(vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)]))
	}
	attrs := []int{0, 2}
	idx := BuildIndex(r, attrs)
	for probe := 0; probe < 50; probe++ {
		tid := rng.Intn(r.Len())
		t0 := r.Tuple(tid)
		want := r.Select(func(u Tuple) bool { return u.EqualOn(t0, attrs) })
		got := idx.Lookup(t0)
		if len(got) != len(want) {
			t.Fatalf("lookup size %d != scan size %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("lookup %v != scan %v", got, want)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema("mix", Attribute{"A", KindString}, Attribute{"B", KindInt}, Attribute{"C", KindFloat})
	r := New(s)
	r.MustInsert(Tuple{String("hello, world"), Int(1), Float(1.5)})
	r.MustInsert(Tuple{String(`with "quotes"`), Int(-2), Float(0)})
	r.MustInsert(Tuple{Null(), Null(), Null()})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if !back.Tuple(i).Equal(r.Tuple(i)) {
			t.Errorf("tuple %d: %v != %v", i, back.Tuple(i), r.Tuple(i))
		}
	}
}

func TestCSVHeaderMismatch(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindString})
	if _, err := ReadCSV(strings.NewReader("B\nx\n"), s); err == nil {
		t.Error("header mismatch should fail")
	}
}

func TestCSVBadValue(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindInt})
	if _, err := ReadCSV(strings.NewReader("A\nnotanint\n"), s); err == nil {
		t.Error("unparsable int should fail")
	}
}

func TestSortBy(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindString}, Attribute{"B", KindInt})
	r := New(s)
	r.MustInsert(Tuple{String("b"), Int(2)})
	r.MustInsert(Tuple{String("a"), Int(3)})
	r.MustInsert(Tuple{String("a"), Int(1)})
	r.SortBy([]int{0, 1})
	want := []string{"a", "a", "b"}
	wantB := []int64{1, 3, 2}
	for i := range want {
		if r.Tuple(i)[0].Str() != want[i] || r.Tuple(i)[1].IntVal() != wantB[i] {
			t.Errorf("after sort, tuple %d = %v", i, r.Tuple(i))
		}
	}
}

func TestDistinctAndClone(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindString})
	r := New(s)
	r.MustInsert(strTuple("x"))
	r.MustInsert(strTuple("x"))
	r.MustInsert(strTuple("y"))
	if d := r.Distinct(); d != 2 {
		t.Errorf("Distinct = %d, want 2", d)
	}
	c := r.Clone()
	c.Set(0, 0, String("changed"))
	if r.Get(0, 0).Str() != "x" {
		t.Error("Clone must deep-copy tuples")
	}
}

func TestHead(t *testing.T) {
	s := MustSchema("r", Attribute{"A", KindString})
	r := New(s)
	for i := 0; i < 5; i++ {
		r.MustInsert(strTuple("v"))
	}
	out := r.Head(2)
	if !strings.Contains(out, "A") || !strings.Contains(out, "3 more") {
		t.Errorf("Head output unexpected:\n%s", out)
	}
}
