package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a relation from CSV. The first record must be a header
// whose column names match the schema's attribute names in order. Empty
// fields load as NULL.
func ReadCSV(r io.Reader, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Arity()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	for i, name := range schema.Names() {
		if header[i] != name {
			return nil, fmt.Errorf("relation: CSV header column %d is %q, schema expects %q", i, header[i], name)
		}
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		t := make(Tuple, schema.Arity())
		for i, field := range rec {
			v, err := ParseValue(field, schema.Attr(i).Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, schema.Attr(i).Name, err)
			}
			t[i] = v
		}
		if _, err := rel.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row. NULL writes as
// the empty field, which ReadCSV maps back to NULL.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	rec := make([]string, r.Schema().Arity())
	for _, t := range r.Tuples() {
		for i, v := range t {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing CSV record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile reads a relation from the named CSV file.
func LoadCSVFile(path string, schema *Schema) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, schema)
}

// SaveCSVFile writes the relation to the named CSV file.
func SaveCSVFile(path string, r *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
