package relation

import "sort"

// HashIndex maps composite keys over a fixed attribute list to the TIDs
// holding that key. It is a snapshot: mutations to the relation after
// Build are not reflected.
//
// Deprecated: HashIndex is the legacy string-keyed index retained only
// as the reference implementation for PLI equivalence tests. Production
// code partitions through BuildPLI (or, better, a shared IndexCache,
// whose Get/GetVia reuse and refine cached partitions); PLI groups are
// byte-identical to HashIndex buckets in sorted-key order, and
// PLI.Lookup replaces Lookup/LookupKey probing.
type HashIndex struct {
	attrs   []int
	buckets map[string][]int
}

// BuildIndex constructs a hash index on the given attribute positions.
//
// Deprecated: use BuildPLI or IndexCache.Get/GetVia; see HashIndex. The
// only remaining call sites are tests asserting PLI-vs-legacy
// equivalence.
func BuildIndex(r *Relation, attrs []int) *HashIndex {
	idx := &HashIndex{
		attrs:   append([]int(nil), attrs...),
		buckets: make(map[string][]int, r.Len()),
	}
	for tid, t := range r.Tuples() {
		k := t.Key(idx.attrs)
		idx.buckets[k] = append(idx.buckets[k], tid)
	}
	return idx
}

// Attrs returns the indexed attribute positions.
func (ix *HashIndex) Attrs() []int { return ix.attrs }

// Lookup returns the TIDs whose indexed attributes encode to the same key
// as t's. The returned slice aliases index storage.
func (ix *HashIndex) Lookup(t Tuple) []int {
	return ix.buckets[t.Key(ix.attrs)]
}

// LookupKey returns the TIDs stored under a pre-encoded key.
func (ix *HashIndex) LookupKey(key string) []int { return ix.buckets[key] }

// Groups iterates over every (key, tids) bucket. Iteration order is
// unspecified.
func (ix *HashIndex) Groups(f func(key string, tids []int) bool) {
	for k, tids := range ix.buckets {
		if !f(k, tids) {
			return
		}
	}
}

// Keys returns every distinct key in sorted order. The sorted slice is
// the unit of work partitioning for parallel detection: splitting it
// into contiguous chunks assigns whole groups to workers, and the fixed
// order makes any chunk-wise traversal deterministic.
func (ix *HashIndex) Keys() []string {
	out := make([]string, 0, len(ix.buckets))
	for k := range ix.buckets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of distinct keys.
func (ix *HashIndex) Size() int { return len(ix.buckets) }
