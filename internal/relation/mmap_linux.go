//go:build linux && (amd64 || arm64)

package relation

import (
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Mapping is a read-only mmap of a segment file. The int/int32 views
// handed out by openPLISegment/openColumnSegment point straight into
// the mapped pages — no copy, no decode — which is what makes paging a
// demoted index back in O(1): the kernel faults pages lazily and may
// reclaim them under memory pressure, so a mapped index costs page
// cache, not Go heap. Writing through the views would fault (PROT_READ)
// — any mutation path (patch drains, appends into spans) must
// materialize heap copies first (PLI.materializeLocked, column
// materialize).
//
// Lifetime: the mapping is unmapped by a finalizer once nothing
// references it. Views into the mapping do NOT keep it alive on their
// own (mapped pages are not Go heap, so the GC does not trace them);
// the adopting PLI/column keeps the *Mapping in a field, and readers
// keep the PLI/relation alive for as long as they hold slices from it —
// the documented aliasing rule for Group/Lookup results already
// requires exactly that. Unlinking a mapped file is safe on Linux: the
// pages stay valid until the last munmap.
type Mapping struct {
	data     []byte
	unmapped atomic.Bool
}

// mmapSupported reports whether this build reads segments zero-copy.
const mmapSupported = true

// mapFile maps path read-only.
func mapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	m := &Mapping{data: data}
	runtime.SetFinalizer(m, (*Mapping).unmap)
	return m, nil
}

func (m *Mapping) unmap() {
	if m.unmapped.CompareAndSwap(false, true) {
		syscall.Munmap(m.data)
	}
}

// holdsInt reports whether s points into the mapping (i.e. is a
// zero-copy view rather than a heap array). Used by the residency
// accounting: mapped arrays are pageable OS memory, not Go heap, so
// the cache byte budget skips them.
func (m *Mapping) holdsInt(s []int) bool {
	if m == nil || len(s) == 0 || len(m.data) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(&s[0]))
	base := uintptr(unsafe.Pointer(&m.data[0]))
	return p >= base && p < base+uintptr(len(m.data))
}

// holdsInt32 is holdsInt for int32 views.
func (m *Mapping) holdsInt32(s []int32) bool {
	if m == nil || len(s) == 0 || len(m.data) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(&s[0]))
	base := uintptr(unsafe.Pointer(&m.data[0]))
	return p >= base && p < base+uintptr(len(m.data))
}

// castInts reinterprets the 8-aligned little-endian int64 section at
// [off, off+8*count) as []int in place. Safe on this build's platforms:
// 64-bit little-endian, and the segment layout keeps every int64
// section 8-aligned (mmap bases are page-aligned).
func castInts(b []byte, off, count int64) []int {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[off])), count)
}

// castInt32s reinterprets the 4-aligned int32 section at [off,
// off+4*count) as []int32 in place.
func castInt32s(b []byte, off, count int64) []int32 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[off])), count)
}

// openPLISegment opens a PLI segment with zero-copy mapped views of the
// large sections (tids/offsets/tidGroup). shardEnds is decoded to heap
// — advanceShardEnds mutates it in place on the next append. Falls back
// to the heap decode if the file cannot be mapped.
func openPLISegment(path string) (*pliSegData, error) {
	m, err := mapFile(path)
	if err != nil {
		return readPLISegmentHeap(path)
	}
	h, err := parsePLISegHeader(m.data)
	if err != nil {
		return nil, err
	}
	seOff, tOff, oOff, gOff := h.sectionOffsets()
	return &pliSegData{
		n:          int(h.n),
		tids:       castInts(m.data, tOff, h.lenTids),
		offsets:    castInt32s(m.data, oOff, h.numOffsets),
		tidGroup:   castInt32s(m.data, gOff, h.lenTidGrp),
		shardWidth: int(h.shardWidth),
		shardEnds:  decodeIntSection(m.data, seOff, h.numShards),
		seg:        m,
	}, nil
}

// openColumnSegment opens a column segment with a zero-copy mapped view
// of the code array. A nil mapping return (only on the fallback build)
// tells the caller spilling gains nothing on this platform.
func openColumnSegment(path string) ([]int32, *Mapping, error) {
	m, err := mapFile(path)
	if err != nil {
		codes, rerr := readColumnSegmentHeap(path)
		return codes, nil, rerr
	}
	n, err := parseColSegHeader(m.data)
	if err != nil {
		return nil, nil, err
	}
	return castInt32s(m.data, colSegHeaderSize, n), m, nil
}
