package relation

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// sameFlat asserts two canonical (untailed) PLIs are byte-identical in
// their flat storage — a stricter check than samePLI, pinning the exact
// tids / offsets layout the "sharded == serial" contract promises.
func sameFlat(t *testing.T, ctx string, got, want *PLI) {
	t.Helper()
	if len(got.offsets) != len(want.offsets) {
		t.Fatalf("%s: %d offsets, want %d", ctx, len(got.offsets), len(want.offsets))
	}
	for i := range want.offsets {
		if got.offsets[i] != want.offsets[i] {
			t.Fatalf("%s: offsets[%d] = %d, want %d", ctx, i, got.offsets[i], want.offsets[i])
		}
	}
	if len(got.tids) != len(want.tids) {
		t.Fatalf("%s: %d tids, want %d", ctx, len(got.tids), len(want.tids))
	}
	for i := range want.tids {
		if got.tids[i] != want.tids[i] {
			t.Fatalf("%s: tids[%d] = %d, want %d", ctx, i, got.tids[i], want.tids[i])
		}
	}
	for i := range want.tidGroup {
		if got.tidGroup[i] != want.tidGroup[i] {
			t.Fatalf("%s: tidGroup[%d] = %d, want %d", ctx, i, got.tidGroup[i], want.tidGroup[i])
		}
	}
}

// shardCounts returns the shard fan-outs the equivalence properties
// sweep, per the acceptance criteria: S ∈ {1, 2, 3, 7, NumCPU}.
func shardCounts() []int {
	return []int{1, 2, 3, 7, runtime.NumCPU()}
}

// TestShardedBuildMatchesSerial is the tentpole property: on randomized
// mixed-kind relations large enough to engage the TID-range-parallel
// counting sort, BuildPLISharded produces byte-identical flat storage to
// the serial BuildPLI for every shard count — including a shard count
// the clamp would reject on smaller data (exercised via buildPLI, which
// bypasses effectiveShards, so shards > groups and degenerate widths run
// too).
func TestShardedBuildMatchesSerial(t *testing.T) {
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {2, 1}, {0, 2, 3}, {3, 2, 1, 0}}
	for seed := int64(1); seed <= 4; seed++ {
		// Big enough that level 1 (one group spanning the relation)
		// takes the sharded-group counting sort.
		r := randomMixedRelation(t, seed, 3*shardMinRows+int(seed)*257)
		for _, attrs := range attrSets {
			want := BuildPLI(r, attrs)
			for _, s := range shardCounts() {
				got := BuildPLISharded(r, attrs, s)
				sameFlat(t, fmt.Sprintf("seed %d attrs %v S=%d", seed, attrs, s), got, want)
			}
		}
	}
	// Small relations force the group-chunked and serial fallbacks:
	// bypass the size clamp so the parallel plumbing still runs.
	for seed := int64(5); seed <= 8; seed++ {
		r := randomMixedRelation(t, seed, 150+int(seed)*37)
		for _, attrs := range attrSets {
			want := BuildPLI(r, attrs)
			for _, s := range []int{2, 7, 64} {
				got := buildPLI(r, attrs, s)
				sameFlat(t, fmt.Sprintf("small seed %d attrs %v S=%d", seed, attrs, s), got, want)
			}
		}
	}
}

// TestShardedBuildOneGroupColumn pins the degenerate partitions: an
// all-one-group column (every row the same value) and its refinements
// must come out byte-identical under sharding, as must an empty
// relation.
func TestShardedBuildOneGroupColumn(t *testing.T) {
	schema := MustSchema("uni",
		Attribute{Name: "K", Kind: KindString},
		Attribute{Name: "X", Kind: KindInt},
	)
	r := New(schema)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3*shardMinRows; i++ {
		r.MustInsert(Tuple{String("only-value"), Int(int64(rng.Intn(5)))})
	}
	for _, attrs := range [][]int{{0}, {0, 1}, {1, 0}} {
		want := BuildPLI(r, attrs)
		for _, s := range shardCounts() {
			got := BuildPLISharded(r, attrs, s)
			sameFlat(t, fmt.Sprintf("one-group attrs %v S=%d", attrs, s), got, want)
		}
	}
	empty := New(schema)
	for _, s := range shardCounts() {
		got := BuildPLISharded(empty, []int{0, 1}, s)
		if got.NumGroups() != 0 || !got.Fresh(empty) {
			t.Fatalf("S=%d: empty-relation build has %d groups", s, got.NumGroups())
		}
	}
}

// TestShardedBuildMultipleShardedGroups pins the pooled-scratch reuse
// across SEVERAL shardable groups in one refinement level — the
// configuration where a cursor left behind in a pooled count array by
// one group would corrupt the counting sort of the next. The first
// attribute splits the relation into a handful of groups all above the
// sharding threshold; the second attribute's codes are deliberately
// skewed so many (group, shard) cells never see a given code — exactly
// the cells a sloppy reset would leave dirty.
func TestShardedBuildMultipleShardedGroups(t *testing.T) {
	schema := MustSchema("multi",
		Attribute{Name: "G", Kind: KindString},
		Attribute{Name: "V", Kind: KindString},
		Attribute{Name: "W", Kind: KindInt},
	)
	for seed := int64(1); seed <= 3; seed++ {
		r := New(schema)
		rng := rand.New(rand.NewSource(seed * 131))
		// 3 big first-level groups, interleaved by TID so every group's
		// refined member range spans the relation. The V code of a row
		// depends on its REGION within its group, rotated per group: a
		// code every group shares, but confined to different member-
		// range slices in each — so for any shard count, plenty of
		// (group, shard) cells have a zero count for a code that a
		// LATER group's same-numbered shard then counts. Those are the
		// cells a stale placement cursor would poison.
		const perGroup = 3 * shardMinRows
		const regions = 6
		for i := 0; i < 3*perGroup; i++ {
			g := i % 3
			j := i / 3 // position within group g's member range
			region := j / (perGroup / regions)
			v := fmt.Sprintf("v%d", (region+2*g)%regions)
			r.MustInsert(Tuple{String(fmt.Sprintf("g%d", g)), String(v), Int(int64(rng.Intn(3)))})
		}
		for _, attrs := range [][]int{{0, 1}, {0, 1, 2}, {1, 0}} {
			want := BuildPLI(r, attrs)
			for _, s := range []int{2, 3, 7} {
				got := buildPLI(r, attrs, s)
				sameFlat(t, fmt.Sprintf("seed %d attrs %v S=%d", seed, attrs, s), got, want)
			}
		}
	}
}

// TestShardedRefineGroupEmptyShards drives the TID-range counting sort
// directly with member counts far below the worker count, so trailing
// shards are empty — the path the size clamp hides from whole-relation
// builds — and checks the refined order and bounds against the serial
// refinement.
func TestShardedRefineGroupEmptyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		distinct := 1 + rng.Intn(6)
		m := 1 + rng.Intn(40)
		codes := make([]int32, m)
		for i := range codes {
			codes[i] = int32(rng.Intn(distinct))
		}
		// An arbitrary permutation rank (codes rank to shuffled order).
		ranks := make([]int32, distinct)
		for i, p := range rng.Perm(distinct) {
			ranks[i] = int32(p)
		}
		cur := make([]int, m)
		for i := range cur {
			cur[i] = i
		}
		bounds := []int32{0, int32(m)}
		wantNext := make([]int, m)
		wantBounds := refineGroups(codes, ranks, make([]int32, distinct), cur, wantNext, bounds,
			0, 1, []int32{0})
		for _, workers := range []int{2, 7, 16, 64} {
			gotNext := make([]int, m)
			gotBounds := shardedRefineGroup(codes, ranks, distinct, cur, gotNext, 0, m, []int32{0}, workers)
			ctx := fmt.Sprintf("trial %d m=%d distinct=%d workers=%d", trial, m, distinct, workers)
			if fmt.Sprint(gotBounds) != fmt.Sprint(wantBounds) {
				t.Fatalf("%s: bounds %v, want %v", ctx, gotBounds, wantBounds)
			}
			if fmt.Sprint(gotNext) != fmt.Sprint(wantNext) {
				t.Fatalf("%s: order %v, want %v", ctx, gotNext, wantNext)
			}
		}
	}
}

// TestIntersectShardedMatchesSerial extends the partition-intersection
// property to the sharded refinement: chained IntersectSharded calls
// stay byte-identical to serial Intersect AND to from-scratch builds,
// for every shard count.
func TestIntersectShardedMatchesSerial(t *testing.T) {
	chains := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0}}
	for seed := int64(1); seed <= 3; seed++ {
		r := randomMixedRelation(t, seed, 2*shardMinRows+int(seed)*111)
		for _, chain := range chains {
			for _, s := range shardCounts() {
				p := BuildPLISharded(r, chain[:1], s)
				for k := 2; k <= len(chain); k++ {
					p = p.IntersectSharded(chain[k-1], s)
					want := BuildPLI(r, chain[:k])
					sameFlat(t, fmt.Sprintf("seed %d chain %v level %d S=%d", seed, chain, k, s), p, want)
					if !p.Fresh(r) {
						t.Fatalf("seed %d chain %v level %d S=%d: sharded intersection is not fresh",
							seed, chain, k, s)
					}
				}
			}
		}
	}
}

// TestShardWatermarksAdvanceTailOnly pins the per-shard append
// versioning contract: a sharded build lays out fixed-width TID shards
// whose watermarks tile [0, n); Advance moves ONLY the tail entries
// (filling the last shard, then opening new ones) while every interior
// watermark stays frozen; and Compact never rewrites the layout.
func TestShardWatermarksAdvanceTailOnly(t *testing.T) {
	const n = 4 * shardMinRows
	r := randomMixedRelation(t, 17, n)
	p := BuildPLISharded(r, []int{0, 1}, 4)
	ends := p.ShardEnds()
	if len(ends) != 4 || ends[len(ends)-1] != n {
		t.Fatalf("build layout = %v, want 4 shards ending at %d", ends, n)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Fatalf("watermarks not monotone: %v", ends)
		}
	}

	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 4; round++ {
		before := p.ShardEnds()
		appendRandomRows(t, r, rng, shardMinRows/2+rng.Intn(shardMinRows))
		if !p.Advance(r) {
			t.Fatalf("round %d: Advance refused", round)
		}
		after := p.ShardEnds()
		if after[len(after)-1] != r.Len() {
			t.Fatalf("round %d: tail watermark %d, relation length %d", round, after[len(after)-1], r.Len())
		}
		// Every shard that was full before the append is untouched; only
		// the tail (and shards opened after it) may move.
		width := p.shardWidth
		for i := 0; i < len(before)-1; i++ {
			if before[i] == (i+1)*width && after[i] != before[i] {
				t.Fatalf("round %d: append rewrote interior shard %d: %v -> %v", round, i, before, after)
			}
		}
		for i := 1; i < len(after); i++ {
			if after[i] < after[i-1] || after[i]-after[i-1] > width {
				t.Fatalf("round %d: layout %v violates width %d", round, after, width)
			}
		}
		p.Compact()
		if fmt.Sprint(p.ShardEnds()) != fmt.Sprint(after) {
			t.Fatalf("round %d: Compact rewrote the shard layout %v -> %v", round, after, p.ShardEnds())
		}
		sameFlat(t, fmt.Sprintf("round %d compacted", round), p, BuildPLI(r, []int{0, 1}))
	}

	// Serial builds have a single shard whose watermark tracks growth.
	sp := BuildPLI(r, []int{2})
	if got := sp.NumShards(); got != 1 {
		t.Fatalf("serial build has %d shards", got)
	}
	appendRandomRows(t, r, rng, 10)
	if !sp.Advance(r) {
		t.Fatal("serial Advance refused")
	}
	if ends := sp.ShardEnds(); ends[len(ends)-1] != r.Len() {
		t.Fatalf("serial tail watermark %v, relation length %d", ends, r.Len())
	}
}

// TestShardedCacheConcurrentBuildAppend is the race-cache companion for
// sharded builds: a writer appends batches under an exclusive lock (the
// engine session discipline) while readers drive Get / GetVia /
// GetDelta on a sharded cache under the shared lock — cold sharded
// builds, sharded refinements, and in-place advances all interleave.
// Run under -race (make race-cache). Afterwards the counters must
// account for every lookup and the entries must match serial rebuilds.
func TestShardedCacheConcurrentBuildAppend(t *testing.T) {
	r := randomMixedRelation(t, 77, 3*shardMinRows)
	cache := NewIndexCache()
	cache.SetShards(4)
	attrSets := [][]int{{0}, {1}, {0, 1}, {2, 3}, {0, 1, 2}}

	var relMu sync.RWMutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: exclusive appends
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(79))
		for round := 0; round < 15; round++ {
			relMu.Lock()
			appendRandomRows(t, r, rng, 40)
			relMu.Unlock()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 10 {
						return
					}
				default:
				}
				attrs := attrSets[(w+i)%len(attrSets)]
				relMu.RLock()
				var pli *PLI
				switch i % 3 {
				case 0:
					pli = cache.Get(r, attrs)
				case 1:
					pli = cache.GetVia(r, attrs)
				default:
					pli = cache.GetDelta(r, attrs)
				}
				n := 0
				for g := 0; g < pli.NumGroups(); g++ {
					n += len(pli.Group(g))
				}
				if n != r.Len() {
					t.Errorf("worker %d: partition covers %d of %d tuples", w, n, r.Len())
					relMu.RUnlock()
					return
				}
				relMu.RUnlock()
			}
		}(w)
	}
	wg.Wait()

	s := cache.Stats()
	if s.ShardBuilds == 0 {
		t.Fatalf("no sharded builds counted on a sharded cache: %+v", s)
	}
	if s.Misses == 0 {
		t.Fatalf("stats lost the cold builds: %+v", s)
	}
	for _, attrs := range attrSets {
		got := cache.Get(r, attrs)
		if !got.Fresh(r) {
			t.Fatalf("attrs %v: cached entry stale after quiescence", attrs)
		}
		got.Compact()
		sameFlat(t, fmt.Sprintf("post-concurrency attrs %v", attrs), got, BuildPLI(r, attrs))
	}
}

// TestEffectiveShardsClamp pins the serial fallback: tiny relations and
// degenerate requests never engage the fan-out.
func TestEffectiveShardsClamp(t *testing.T) {
	cases := []struct{ n, s, want int }{
		{0, 8, 1},
		{shardMinRows, 8, 1},
		{2*shardMinRows - 1, 8, 1},
		{2 * shardMinRows, 8, 2},
		{10 * shardMinRows, 4, 4},
		{10 * shardMinRows, 1, 1},
		{10 * shardMinRows, 0, 1},
		{3 * shardMinRows, 64, 3},
	}
	for _, c := range cases {
		if got := effectiveShards(c.n, c.s); got != c.want {
			t.Errorf("effectiveShards(%d, %d) = %d, want %d", c.n, c.s, got, c.want)
		}
	}
}

// TestChunkGroupsCovers sanity-checks the balanced group chunking used
// by the parallel refinement and tidGroup fill: cuts are strictly
// increasing, start at 0, end at the group count, and never exceed the
// worker budget.
func TestChunkGroupsCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		ng := 1 + rng.Intn(50)
		bounds := make([]int32, ng+1)
		for i := 1; i <= ng; i++ {
			bounds[i] = bounds[i-1] + int32(rng.Intn(200))
		}
		if bounds[ng] == 0 {
			continue
		}
		for _, w := range []int{1, 2, 3, 8, 64} {
			cuts := chunkGroups(bounds, w)
			if cuts[0] != 0 || cuts[len(cuts)-1] != ng {
				t.Fatalf("trial %d w=%d: cuts %v do not span [0,%d]", trial, w, cuts, ng)
			}
			if len(cuts)-1 > w {
				t.Fatalf("trial %d w=%d: %d chunks exceed worker budget", trial, w, len(cuts)-1)
			}
			if !sort.IntsAreSorted(cuts) {
				t.Fatalf("trial %d w=%d: cuts %v not sorted", trial, w, cuts)
			}
			for i := 1; i < len(cuts); i++ {
				if cuts[i] == cuts[i-1] {
					t.Fatalf("trial %d w=%d: empty chunk in %v", trial, w, cuts)
				}
			}
		}
	}
}
