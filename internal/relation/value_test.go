package relation

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "⊥"},
		{String("abc"), KindString, "abc"},
		{String(""), KindString, ""},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL must not Equal NULL (SQL semantics)")
	}
	if Null().Equal(String("")) {
		t.Error("NULL must not Equal empty string")
	}
	if !Null().Identical(Null()) {
		t.Error("NULL must be Identical to NULL (grouping semantics)")
	}
	if !String("x").Identical(String("x")) {
		t.Error("identical strings must be Identical")
	}
}

func TestValueNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should Equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not Equal Float(3.5)")
	}
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("Int(3) should sort before Float(3.5)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not Equal String(\"3\")")
	}
}

func TestValueCompareTotalOrderAcrossKinds(t *testing.T) {
	// null < numeric < string
	ordered := []Value{Null(), Int(-5), Float(0), Int(7), String(""), String("a")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueAsMapKey(t *testing.T) {
	m := map[Value]int{}
	m[String("a")] = 1
	m[Int(1)] = 2
	m[Null()] = 3
	if m[String("a")] != 1 || m[Int(1)] != 2 || m[Null()] != 3 {
		t.Error("Value should be usable directly as a comparable map key")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null()
	case 1:
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(string(b))
	case 2:
		return Int(int64(r.Intn(200) - 100))
	default:
		return Float(float64(r.Intn(100)) / 4)
	}
}

type valueBox struct{ V Value }

func (valueBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueBox{V: randomValue(r)})
}

func TestValueEncodeInjective(t *testing.T) {
	// Property (the contract Encode documents): within a single kind
	// (plus NULL) the encoding coincides with Identical. Across numeric
	// kinds Int(9) and Float(9) are Identical yet encode differently,
	// which is fine because relation columns are kind-uniform.
	prop := func(a, b valueBox) bool {
		ea := string(a.V.Encode(nil))
		eb := string(b.V.Encode(nil))
		if a.V.Kind() == b.V.Kind() {
			return (ea == eb) == a.V.Identical(b.V)
		}
		// Mixed kinds: encodings must still be distinct (the kind tag
		// guarantees it), so keys never collide across kinds.
		return ea != eb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestValueEncodeOrderPreservingNumeric is the rank-order guarantee the
// DC inequality sweeps depend on: for NULL and the numeric kinds,
// byte-lexicographic order of Encode keys must equal Value.Compare
// order. (Int vs Float cross-kind pairs are exempt — columns are
// kind-uniform — and NaN is exempt: Compare treats it as unordered,
// while Encode gives it a definite slot after +Inf.)
func TestValueEncodeOrderPreservingNumeric(t *testing.T) {
	numeric := func(r *rand.Rand) Value {
		switch r.Intn(5) {
		case 0:
			return Null()
		case 1:
			return Int(int64(r.Uint64()))
		case 2:
			return Int(int64(r.Intn(200) - 100))
		case 3:
			return Float((r.Float64() - 0.5) * 1e6)
		default:
			return Float(float64(r.Intn(40)-20) / 4)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b := numeric(rng), numeric(rng)
		if a.Kind() != b.Kind() && !a.IsNull() && !b.IsNull() {
			continue
		}
		ea, eb := string(a.Encode(nil)), string(b.Encode(nil))
		cmp := a.Compare(b)
		var enc int
		switch {
		case ea < eb:
			enc = -1
		case ea > eb:
			enc = 1
		}
		if cmp != enc {
			t.Fatalf("Encode order disagrees with Compare: %v vs %v (cmp=%d enc=%d)", a, b, cmp, enc)
		}
	}
	// Boundary cases the random sweep is unlikely to hit.
	ordered := []Value{
		Int(math.MinInt64), Int(-1), Int(0), Int(1), Int(math.MaxInt64),
	}
	for i := 0; i+1 < len(ordered); i++ {
		if string(ordered[i].Encode(nil)) >= string(ordered[i+1].Encode(nil)) {
			t.Fatalf("int encode order broken at %v < %v", ordered[i], ordered[i+1])
		}
	}
	forder := []Value{
		Float(math.Inf(-1)), Float(-math.MaxFloat64), Float(-1), Float(0),
		Float(math.SmallestNonzeroFloat64), Float(1), Float(math.MaxFloat64), Float(math.Inf(1)),
	}
	for i := 0; i+1 < len(forder); i++ {
		if string(forder[i].Encode(nil)) >= string(forder[i+1].Encode(nil)) {
			t.Fatalf("float encode order broken at %v < %v", forder[i], forder[i+1])
		}
	}
	if string(Float(0).Encode(nil)) != string(Float(math.Copysign(0, -1)).Encode(nil)) {
		t.Fatal("-0 and +0 must share one encoding (Float normalizes)")
	}
	if string(Float(math.NaN()).Encode(nil)) <= string(Float(math.Inf(1)).Encode(nil)) {
		t.Fatal("NaN must encode after +Inf (a definite slot, never mid-range)")
	}
}

// TestCodeRankOrderMatchesValueOrder is the relation-level property the
// DC detector consumes: on randomized relations with mixed-kind columns
// (string, int, float, NULLs everywhere), CodeRanks of every
// null-or-numeric column must rank codes in exactly Value.Compare order
// of their representative values. String columns are exercised too, but
// only for rank validity (a permutation), not value order.
func TestCodeRankOrderMatchesValueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	schema, err := NewSchema("mixed",
		Attribute{Name: "S", Kind: KindString},
		Attribute{Name: "I", Kind: KindInt},
		Attribute{Name: "F", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		r := New(schema)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tup := Tuple{Null(), Null(), Null()}
			if rng.Intn(10) > 0 {
				b := make([]byte, rng.Intn(6))
				for j := range b {
					b[j] = byte('a' + rng.Intn(4))
				}
				tup[0] = String(string(b))
			}
			if rng.Intn(10) > 0 {
				tup[1] = Int(int64(rng.Intn(60) - 30))
			}
			if rng.Intn(10) > 0 {
				tup[2] = Float(float64(rng.Intn(50)-25) / 4)
			}
			r.MustInsert(tup)
		}
		for attr := 0; attr < schema.Arity(); attr++ {
			ranks := r.CodeRanks(attr)
			d := r.DistinctCodes(attr)
			if len(ranks) != d {
				t.Fatalf("attr %d: %d ranks for %d codes", attr, len(ranks), d)
			}
			order := make([]int32, d) // rank -> code
			seen := make([]bool, d)
			for code, rk := range ranks {
				if seen[rk] {
					t.Fatalf("attr %d: duplicate rank %d", attr, rk)
				}
				seen[rk] = true
				order[rk] = int32(code)
			}
			if attr == 0 {
				continue // string column: permutation checked, order not guaranteed
			}
			for i := 0; i+1 < d; i++ {
				a, b := r.CodeValue(attr, order[i]), r.CodeValue(attr, order[i+1])
				if a.Compare(b) >= 0 {
					t.Fatalf("attr %d: rank order %v before %v disagrees with value order", attr, a, b)
				}
			}
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	prop := func(a, b valueBox) bool {
		return a.V.Compare(b.V) == -b.V.Compare(a.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		kind Kind
		want Value
	}{
		{"hello", KindString, String("hello")},
		{"42", KindInt, Int(42)},
		{"-3", KindInt, Int(-3)},
		{"2.5", KindFloat, Float(2.5)},
		{"", KindString, Null()},
		{"", KindInt, Null()},
	}
	for _, c := range cases {
		got, err := ParseValue(c.s, c.kind)
		if err != nil {
			t.Errorf("ParseValue(%q, %v): %v", c.s, c.kind, err)
			continue
		}
		if !got.Identical(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("ParseValue(%q, %v) = %v, want %v", c.s, c.kind, got, c.want)
		}
	}
	if _, err := ParseValue("abc", KindInt); err == nil {
		t.Error("ParseValue(\"abc\", int) should fail")
	}
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kind
	}{{"string", KindString}, {"INT", KindInt}, {"Float", KindFloat}, {"text", KindString}} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(\"blob\") should fail")
	}
}
