package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "⊥"},
		{String("abc"), KindString, "abc"},
		{String(""), KindString, ""},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL must not Equal NULL (SQL semantics)")
	}
	if Null().Equal(String("")) {
		t.Error("NULL must not Equal empty string")
	}
	if !Null().Identical(Null()) {
		t.Error("NULL must be Identical to NULL (grouping semantics)")
	}
	if !String("x").Identical(String("x")) {
		t.Error("identical strings must be Identical")
	}
}

func TestValueNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should Equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not Equal Float(3.5)")
	}
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("Int(3) should sort before Float(3.5)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not Equal String(\"3\")")
	}
}

func TestValueCompareTotalOrderAcrossKinds(t *testing.T) {
	// null < numeric < string
	ordered := []Value{Null(), Int(-5), Float(0), Int(7), String(""), String("a")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueAsMapKey(t *testing.T) {
	m := map[Value]int{}
	m[String("a")] = 1
	m[Int(1)] = 2
	m[Null()] = 3
	if m[String("a")] != 1 || m[Int(1)] != 2 || m[Null()] != 3 {
		t.Error("Value should be usable directly as a comparable map key")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null()
	case 1:
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(string(b))
	case 2:
		return Int(int64(r.Intn(200) - 100))
	default:
		return Float(float64(r.Intn(100)) / 4)
	}
}

type valueBox struct{ V Value }

func (valueBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueBox{V: randomValue(r)})
}

func TestValueEncodeInjective(t *testing.T) {
	// Property (the contract Encode documents): within a single kind
	// (plus NULL) the encoding coincides with Identical. Across numeric
	// kinds Int(9) and Float(9) are Identical yet encode differently,
	// which is fine because relation columns are kind-uniform.
	prop := func(a, b valueBox) bool {
		ea := string(a.V.Encode(nil))
		eb := string(b.V.Encode(nil))
		if a.V.Kind() == b.V.Kind() {
			return (ea == eb) == a.V.Identical(b.V)
		}
		// Mixed kinds: encodings must still be distinct (the kind tag
		// guarantees it), so keys never collide across kinds.
		return ea != eb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	prop := func(a, b valueBox) bool {
		return a.V.Compare(b.V) == -b.V.Compare(a.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		kind Kind
		want Value
	}{
		{"hello", KindString, String("hello")},
		{"42", KindInt, Int(42)},
		{"-3", KindInt, Int(-3)},
		{"2.5", KindFloat, Float(2.5)},
		{"", KindString, Null()},
		{"", KindInt, Null()},
	}
	for _, c := range cases {
		got, err := ParseValue(c.s, c.kind)
		if err != nil {
			t.Errorf("ParseValue(%q, %v): %v", c.s, c.kind, err)
			continue
		}
		if !got.Identical(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("ParseValue(%q, %v) = %v, want %v", c.s, c.kind, got, c.want)
		}
	}
	if _, err := ParseValue("abc", KindInt); err == nil {
		t.Error("ParseValue(\"abc\", int) should fail")
	}
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kind
	}{{"string", KindString}, {"INT", KindInt}, {"Float", KindFloat}, {"text", KindString}} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(\"blob\") should fail")
	}
}
