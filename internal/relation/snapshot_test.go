package relation

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestSnapshotRoundTrip checks that WriteSnapshot/ReadSnapshot restore
// a randomized mixed-kind relation cell-exactly: per-row EncodeTuple
// bytes, dictionary codes and code counts all match the source,
// including NULLs, negative/huge ints, NaN and duplicated values.
func TestSnapshotRoundTrip(t *testing.T) {
	schema := MustSchema("mix",
		Attribute{Name: "s", Kind: KindString},
		Attribute{Name: "i", Kind: KindInt},
		Attribute{Name: "f", Kind: KindFloat},
		Attribute{Name: "d", Kind: KindString},
	)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200)
		r := New(schema)
		for i := 0; i < n; i++ {
			t := make(Tuple, 4)
			if rng.Intn(8) == 0 {
				t[0] = Null()
			} else {
				t[0] = String(string(rune('a' + rng.Intn(26))))
			}
			switch rng.Intn(4) {
			case 0:
				t[1] = Null()
			case 1:
				t[1] = Int(int64(rng.Intn(10)))
			default:
				t[1] = Int(rng.Int63() - rng.Int63())
			}
			switch rng.Intn(5) {
			case 0:
				t[2] = Null()
			case 1:
				t[2] = Float(math.NaN())
			case 2:
				t[2] = Float(math.Inf(-1))
			default:
				t[2] = Float(rng.NormFloat64())
			}
			t[3] = String("dup") // constant column: single code
			r.MustInsert(t)
		}
		// Edits force patch journals and fresh interned codes; the
		// snapshot must capture the post-edit cells.
		for k := 0; k < n/4; k++ {
			r.Set(rng.Intn(n), rng.Intn(4), String("edited"))
		}

		var buf bytes.Buffer
		if err := r.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshot(buf.Bytes(), schema)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != r.Len() {
			t.Fatalf("trial %d: len %d, want %d", trial, got.Len(), r.Len())
		}
		var eb, gb []byte
		for tid := 0; tid < r.Len(); tid++ {
			eb = EncodeTuple(eb[:0], r.Tuple(tid))
			gb = EncodeTuple(gb[:0], got.Tuple(tid))
			if !bytes.Equal(eb, gb) {
				t.Fatalf("trial %d: tid %d differs: %x vs %x", trial, tid, eb, gb)
			}
		}
		for a := 0; a < 4; a++ {
			if got.DistinctCodes(a) != r.DistinctCodes(a) {
				t.Fatalf("trial %d: col %d codes %d, want %d", trial, a, got.DistinctCodes(a), r.DistinctCodes(a))
			}
			want, have := r.ColumnCodes(a), got.ColumnCodes(a)
			for tid := range want {
				if want[tid] != have[tid] {
					t.Fatalf("trial %d: col %d tid %d code %d, want %d", trial, a, tid, have[tid], want[tid])
				}
			}
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	schema := MustSchema("s", Attribute{Name: "a", Kind: KindString})
	if _, err := ReadSnapshot([]byte("not a snapshot at all"), schema); err == nil {
		t.Fatal("accepted garbage")
	}
	r := New(schema)
	r.MustInsert(Tuple{String("x")})
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadSnapshot(b[:len(b)-2], schema); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
	wrong := MustSchema("s", Attribute{Name: "a", Kind: KindString}, Attribute{Name: "b", Kind: KindInt})
	if _, err := ReadSnapshot(b, wrong); err == nil {
		t.Fatal("accepted arity mismatch")
	}
}
