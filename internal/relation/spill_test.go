package relation

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestSegmentMappedMatchesHeapDecode asserts the platform loader and
// the portable heap decode agree byte-for-byte on the same segment
// file — the property that makes the mmap fast path a pure
// optimization.
func TestSegmentMappedMatchesHeapDecode(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(1); seed <= 4; seed++ {
		r := randomMixedRelation(t, seed, 200+int(seed)*37)
		for _, attrs := range [][]int{{0}, {1, 2}, {3, 0, 1}} {
			p := BuildPLI(r, attrs)
			path := filepath.Join(dir, fmt.Sprintf("seg-%d-%d.seg", seed, attrs[0]))
			p.mu.Lock()
			if _, err := writePLISegment(path, p); err != nil {
				p.mu.Unlock()
				t.Fatalf("write: %v", err)
			}
			p.mu.Unlock()
			mapped, err := openPLISegment(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			heap, err := readPLISegmentHeap(path)
			if err != nil {
				t.Fatalf("heap decode: %v", err)
			}
			if mmapSupported && mapped.seg == nil {
				t.Fatalf("expected a mapped segment on this platform")
			}
			ctx := fmt.Sprintf("seed %d attrs %v", seed, attrs)
			if mapped.n != heap.n || mapped.shardWidth != heap.shardWidth {
				t.Fatalf("%s: header mismatch", ctx)
			}
			if len(mapped.tids) != len(heap.tids) || len(mapped.offsets) != len(heap.offsets) ||
				len(mapped.tidGroup) != len(heap.tidGroup) || len(mapped.shardEnds) != len(heap.shardEnds) {
				t.Fatalf("%s: section length mismatch", ctx)
			}
			for i := range heap.tids {
				if mapped.tids[i] != heap.tids[i] {
					t.Fatalf("%s: tids[%d] = %d, want %d", ctx, i, mapped.tids[i], heap.tids[i])
				}
			}
			for i := range heap.offsets {
				if mapped.offsets[i] != heap.offsets[i] {
					t.Fatalf("%s: offsets[%d] mismatch", ctx, i)
				}
			}
			for i := range heap.tidGroup {
				if mapped.tidGroup[i] != heap.tidGroup[i] {
					t.Fatalf("%s: tidGroup[%d] mismatch", ctx, i)
				}
			}
			for i := range heap.shardEnds {
				if mapped.shardEnds[i] != heap.shardEnds[i] {
					t.Fatalf("%s: shardEnds[%d] mismatch", ctx, i)
				}
			}
		}
	}
}

// TestSpillPageInByteIdentical is the tiered-storage tentpole property:
// on randomized mixed-kind relations (NULLs, mixed-kind columns, novel
// codes), entries demoted to segment files under a starvation budget
// and paged back in are byte-identical — tids/offsets/tidGroup, Group
// reads, Lookup — to counting-sorting the relation from scratch, across
// interleaved rounds of appends and cell patches that the paged-in
// entries absorb through the ordinary catchUp path. The build counter
// stays frozen the whole time: demotion never costs a rebuild.
func TestSpillPageInByteIdentical(t *testing.T) {
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {2, 1}, {0, 2, 3}}
	for seed := int64(1); seed <= 6; seed++ {
		r := randomMixedRelation(t, seed, 150+int(seed)*33)
		rng := rand.New(rand.NewSource(seed * 4049))
		store, err := NewSpillStore(filepath.Join(t.TempDir(), "spill"))
		if err != nil {
			t.Fatalf("store: %v", err)
		}
		cache := NewIndexCache()
		cache.SetSpill(store)
		// A 1-byte budget demotes everything except the entry each
		// lookup touches, so every cross-attr round trips through a
		// segment file.
		cache.SetBudget(1)
		for _, attrs := range attrSets {
			cache.Get(r, attrs)
		}
		builds := cache.Stats().Misses
		for round := 0; round < 4; round++ {
			if round > 0 {
				// Mutate between rounds: paged-in (and still-spilled)
				// entries must catch up through patches and advances.
				for k, edits := 0, 2+rng.Intn(4); k < edits; k++ {
					tid, attr := rng.Intn(r.Len()), rng.Intn(4)
					r.Set(tid, attr, randomPatchValue(rng, attr))
				}
				appendRandomRows(t, r, rng, 8+rng.Intn(10))
			}
			for _, attrs := range attrSets {
				ctx := fmt.Sprintf("seed %d round %d attrs %v", seed, round, attrs)
				got := cache.Get(r, attrs)
				samePLI(t, ctx, r, got, BuildPLI(r, attrs))
				if want := got.Lookup([]Value{r.Get(0, attrs[0])}); len(attrs) == 1 && len(want) == 0 {
					t.Fatalf("%s: Lookup through paged-in index found nothing", ctx)
				}
			}
		}
		st := cache.Stats()
		if st.Misses != builds {
			t.Fatalf("seed %d: %d rebuilds after the initial %d builds", seed, st.Misses-builds, builds)
		}
		if st.Spills == 0 || st.Pageins == 0 {
			t.Fatalf("seed %d: expected spill/page-in traffic, got %+v", seed, st)
		}
	}
}

// TestSpillRecordsDropWithFiles asserts lifecycle hygiene: records
// invalidated by a hard column invalidation are discarded with their
// files, and Reset empties the spill directory.
func TestSpillRecordsDropWithFiles(t *testing.T) {
	r := randomMixedRelation(t, 11, 300)
	dir := filepath.Join(t.TempDir(), "spill")
	store, err := NewSpillStore(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	cache := NewIndexCache()
	cache.SetSpill(store)
	cache.SetBudget(1)
	for _, attrs := range [][]int{{0}, {1}, {2}} {
		cache.Get(r, attrs)
	}
	if n := countFiles(t, dir); n == 0 {
		t.Fatalf("expected spill files after demotion")
	}
	// A truncate hard-invalidates every column: the stale records must
	// be discarded (with their files) on the next lookups, not paged in.
	r.Truncate(r.Len() - 10)
	before := cache.Stats()
	for _, attrs := range [][]int{{0}, {1}, {2}} {
		samePLI(t, fmt.Sprintf("attrs %v", attrs), r, cache.Get(r, attrs), BuildPLI(r, attrs))
	}
	after := cache.Stats()
	if after.Pageins != before.Pageins {
		t.Fatalf("stale records were paged in: %+v -> %+v", before, after)
	}
	if after.Misses == before.Misses {
		t.Fatalf("expected rebuilds after hard invalidation")
	}
	cache.Reset()
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("Reset left %d spill files behind", n)
	}
}

func countFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	return len(ents)
}

// TestColumnSpillRoundTrip covers Relation.SpillColumns: spilled code
// arrays read back identically (indexes built over mapped columns are
// byte-identical to pre-spill builds), and the write paths — Set with
// its patch journal, Insert appends — transparently materialize heap
// copies again.
func TestColumnSpillRoundTrip(t *testing.T) {
	r := randomMixedRelation(t, 7, 400)
	want := make([][]int32, 4)
	for a := range want {
		want[a] = append([]int32(nil), r.ColumnCodes(a)...)
	}
	ref := BuildPLI(r, []int{0, 2, 3})
	store, err := NewSpillStore(filepath.Join(t.TempDir(), "cols"))
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	freed, err := r.SpillColumns(store)
	if err != nil {
		t.Fatalf("SpillColumns: %v", err)
	}
	if mmapSupported && freed == 0 {
		t.Fatalf("expected spilled column bytes on this platform")
	}
	for a := range want {
		codes := r.ColumnCodes(a)
		if len(codes) != len(want[a]) {
			t.Fatalf("col %d: length changed", a)
		}
		for i := range codes {
			if codes[i] != want[a][i] {
				t.Fatalf("col %d: codes[%d] = %d, want %d", a, i, codes[i], want[a][i])
			}
		}
	}
	samePLI(t, "post-spill build", r, BuildPLI(r, []int{0, 2, 3}), ref)

	// Writes after the spill: Set journals patches against materialized
	// heap codes, Insert appends, and the cache catch-up path stays
	// rebuild-free — the full dirty-append discipline on spilled columns.
	cache := NewIndexCache()
	for _, attrs := range [][]int{{0}, {1, 2}, {0, 2, 3}} {
		cache.Get(r, attrs)
	}
	builds := cache.Stats().Misses
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 10; k++ {
		tid, attr := rng.Intn(r.Len()), rng.Intn(4)
		r.Set(tid, attr, randomPatchValue(rng, attr))
	}
	appendRandomRows(t, r, rng, 25)
	for _, attrs := range [][]int{{0}, {1, 2}, {0, 2, 3}} {
		ctx := fmt.Sprintf("post-spill mutation attrs %v", attrs)
		samePLI(t, ctx, r, cache.Get(r, attrs), BuildPLI(r, attrs))
	}
	if st := cache.Stats(); st.Misses != builds {
		t.Fatalf("mutating spilled columns cost %d rebuilds", st.Misses-builds)
	}
	// A second spill after the mutations demotes the re-materialized
	// columns again.
	if _, err := r.SpillColumns(store); err != nil {
		t.Fatalf("re-spill: %v", err)
	}
	samePLI(t, "re-spilled build", r, BuildPLI(r, []int{0, 2, 3}), BuildPLI(r.Clone(), []int{0, 2, 3}))
}

// TestSpillDemotePageInConcurrent hammers a starvation-budget cache
// with concurrent readers while a writer interleaves exclusive append
// and patch rounds — the session locking discipline — so demotions and
// page-ins constantly race Get/GetVia/GetDelta across goroutines. Run
// under -race via the ordinary test suite and make race-cache.
func TestSpillDemotePageInConcurrent(t *testing.T) {
	r := randomMixedRelation(t, 21, 600)
	store, err := NewSpillStore(filepath.Join(t.TempDir(), "spill"))
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	cache := NewIndexCache()
	cache.SetSpill(store)
	cache.SetBudget(1)
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {2, 1}, {0, 2, 3}}
	var sess sync.RWMutex // stand-in for the engine session lock
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randv2.New(randv2.NewPCG(uint64(w), 77))
			for i := 0; i < 60; i++ {
				sess.RLock()
				attrs := attrSets[rng.IntN(len(attrSets))]
				var p *PLI
				switch rng.IntN(3) {
				case 0:
					p = cache.Get(r, attrs)
				case 1:
					p = cache.GetVia(r, attrs)
				default:
					p = cache.GetDelta(r, attrs)
				}
				covered := 0
				for g := 0; g < p.NumGroups(); g++ {
					covered += len(p.Group(g))
				}
				if covered != r.Len() {
					sess.RUnlock()
					t.Errorf("reader %d: covered %d of %d TIDs", w, covered, r.Len())
					return
				}
				sess.RUnlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5150))
		for i := 0; i < 20; i++ {
			sess.Lock()
			if i%2 == 0 {
				appendRandomRows(t, r, rng, 5)
			} else {
				for k := 0; k < 3; k++ {
					tid, attr := rng.Intn(r.Len()), rng.Intn(4)
					r.Set(tid, attr, randomPatchValue(rng, attr))
				}
			}
			sess.Unlock()
		}
	}()
	wg.Wait()
	for _, attrs := range attrSets {
		ctx := fmt.Sprintf("final attrs %v", attrs)
		samePLI(t, ctx, r, cache.Get(r, attrs), BuildPLI(r, attrs))
	}
	if st := cache.Stats(); st.Spills == 0 {
		t.Fatalf("expected demotions under a 1-byte budget, got %+v", st)
	}
}
