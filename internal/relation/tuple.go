package relation

import "strings"

// Tuple is an ordered list of values conforming to some schema. Tuples
// are plain slices; cloning is explicit.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns the sub-tuple at the given attribute positions.
func (t Tuple) Project(idxs []int) Tuple {
	out := make(Tuple, len(idxs))
	for i, idx := range idxs {
		out[i] = t[idx]
	}
	return out
}

// EqualOn reports whether t and u agree (Value.Identical) on every listed
// position.
func (t Tuple) EqualOn(u Tuple, idxs []int) bool {
	for _, idx := range idxs {
		if !t[idx].Identical(u[idx]) {
			return false
		}
	}
	return true
}

// Equal reports component-wise identity of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Identical(u[i]) {
			return false
		}
	}
	return true
}

// Key encodes the values at the given positions into a composite key
// string suitable for map grouping. The encoding is injective.
func (t Tuple) Key(idxs []int) string {
	buf := make([]byte, 0, 16*len(idxs))
	for _, idx := range idxs {
		buf = t[idx].Encode(buf)
	}
	return string(buf)
}

// FullKey encodes the entire tuple into a composite key string.
func (t Tuple) FullKey() string {
	buf := make([]byte, 0, 16*len(t))
	for i := range t {
		buf = t[i].Encode(buf)
	}
	return string(buf)
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
