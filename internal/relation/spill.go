package relation

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync/atomic"
)

// SpillStore hands out segment-file paths under one directory — the
// per-dataset home of everything the tiered storage layer demotes
// (clean PLIs under budget pressure, column code arrays via
// Relation.SpillColumns). Files are written once and never rewritten;
// superseded files are unlinked, which on Linux is safe even while a
// reader still holds a mapping of them. The store never deletes its
// directory itself — the engine removes it wholesale when the dataset
// is dropped.
type SpillStore struct {
	dir string
	seq atomic.Uint64
}

// NewSpillStore creates (if needed) dir and returns a store over it.
func NewSpillStore(dir string) (*SpillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &SpillStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *SpillStore) Dir() string { return s.dir }

// NewPath returns a fresh never-before-issued file path.
func (s *SpillStore) NewPath(prefix string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%06d.seg", prefix, s.seq.Add(1)))
}

// Remove unlinks one segment file (best-effort; live mappings of it
// stay valid).
func (s *SpillStore) Remove(path string) { os.Remove(path) }

// spillRecord describes one demoted PLI: the segment file holding its
// flat storage plus the freshness watermarks the resident entry carried
// when the snapshot was written (the same triple IndexCache validation
// runs on — column versions, patch watermarks, length). A record whose
// watermarks lag the relation is still usable as long as the entry
// would have been reachable resident: page-in rebuilds the PLI from the
// file and the ordinary catchUp drains the missing patches and appends.
// Only a hard invalidation (column version bump, truncate/reorder,
// relation swap) kills a record.
type spillRecord struct {
	path      string
	rel       *Relation
	attrs     []int
	colVers   []uint64
	patchVers []uint64
	n         int
	fileBytes int64
}

// validFor reports whether the record can still be caught up to r —
// the spill-side analogue of PLI.patchableTo.
func (rec *spillRecord) validFor(r *Relation) bool {
	if rec.rel != r || rec.n > r.Len() {
		return false
	}
	for i, a := range rec.attrs {
		if rec.colVers[i] != r.ColumnVersion(a) {
			return false
		}
	}
	return true
}

// spillSnapshot writes the index's flat storage to a fresh segment file
// in store and returns the record describing it, reusing prior when it
// already describes the current state (a clean entry demoted, paged in
// and demoted again without mutating in between costs no I/O the second
// time). ok is false — nothing written — when the index is not in the
// clean compacted state segments hold: a delta tail, patch holes or a
// dirty flag pin an entry heap-resident, exactly as the tiered-storage
// contract documents.
func (p *PLI) spillSnapshot(store *SpillStore, prior *spillRecord) (*spillRecord, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 || p.tailLen > 0 || p.dirty || p.holeCnt > 0 {
		return nil, false
	}
	if prior != nil && prior.rel == p.rel && prior.n == p.n && slices.Equal(prior.patchVers, p.patchVers) {
		return prior, true
	}
	path := store.NewPath("pli")
	size, err := writePLISegment(path, p)
	if err != nil {
		return nil, false
	}
	return &spillRecord{
		path:      path,
		rel:       p.rel,
		attrs:     slices.Clone(p.attrs),
		colVers:   slices.Clone(p.colVers),
		patchVers: slices.Clone(p.patchVers),
		n:         p.n,
		fileBytes: size,
	}, true
}

// loadPLISegment rebuilds a PLI from a demoted record's segment file:
// the large arrays come back as zero-copy views into a read-only
// mapping where the platform supports it (heap decodes elsewhere), and
// the PLI re-enters the cache with the record's watermarks — any
// appends or journaled patches since the snapshot are absorbed by the
// very next catchUp, the same way a resident entry would have absorbed
// them.
func loadPLISegment(rec *spillRecord) (*PLI, error) {
	d, err := openPLISegment(rec.path)
	if err != nil {
		return nil, err
	}
	if d.n != rec.n || len(d.tidGroup) != rec.n {
		return nil, fmt.Errorf("relation: segment %s covers %d rows, record says %d", rec.path, d.n, rec.n)
	}
	return &PLI{
		rel:        rec.rel,
		attrs:      slices.Clone(rec.attrs),
		colVers:    slices.Clone(rec.colVers),
		patchVers:  slices.Clone(rec.patchVers),
		n:          rec.n,
		tids:       d.tids,
		offsets:    d.offsets,
		tidGroup:   d.tidGroup,
		shardWidth: d.shardWidth,
		shardEnds:  d.shardEnds,
		seg:        d.seg,
	}, nil
}

// MmapSupported reports whether this build pages segments back in
// zero-copy (and hence whether SpillColumns does anything). Exposed so
// callers and tests can gate spill-dependent behavior per platform.
func MmapSupported() bool { return mmapSupported }

// SpillColumns demotes every column's int32 code array to a segment
// file read back as a zero-copy mapped view, freeing the heap copies.
// Dictionaries (dict/values/encs) stay resident: they are O(distinct)
// — orders of magnitude smaller than the O(rows) code arrays — and
// every write-path intern probes them. Reads are untouched (codes are
// read-only on every index/detect path); the first Set or Insert on a
// spilled column transparently materializes a heap copy again (see
// column.materialize), so correctness never depends on spill state.
// Returns the heap bytes released. Callers must hold the relation's
// write exclusivity, like any other mutation. On platforms without
// mmap support this is a no-op: swapping a heap array for a heap decode
// frees nothing.
func (r *Relation) SpillColumns(store *SpillStore) (int64, error) {
	if !mmapSupported {
		return 0, nil
	}
	var freed int64
	for a, c := range r.cols {
		if c.seg != nil || len(c.codes) == 0 {
			continue
		}
		path := store.NewPath(fmt.Sprintf("col%d", a))
		if err := writeColumnSegment(path, c.codes); err != nil {
			return freed, err
		}
		codes, seg, err := openColumnSegment(path)
		if err != nil || seg == nil || len(codes) != len(c.codes) {
			store.Remove(path)
			if err != nil {
				return freed, err
			}
			continue
		}
		freed += int64(len(c.codes)) * 4
		c.codes = codes
		c.seg = seg
	}
	return freed, nil
}
