package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomPatchValue draws a replacement cell value for column attr from
// the randomMixedRelation domains PLUS novel values and kind-mismatched
// writes, so patches exercise fresh-code interning (the re-homed TID
// opens a provisional group Compact must splice at a new rank) as well
// as moves between existing groups, NULLs included.
func randomPatchValue(rng *rand.Rand, attr int) Value {
	strDomain := []string{"", "a", "ab", "abc", "1", "12", "1:", "12:", ":", "x;", "-3", "edi", "gla"}
	switch attr {
	case 0, 3:
		switch rng.Intn(10) {
		case 0:
			return Null()
		case 1:
			return String(fmt.Sprintf("0patch-%d", rng.Intn(400))) // novel code
		default:
			return String(strDomain[rng.Intn(len(strDomain))])
		}
	case 1:
		switch rng.Intn(10) {
		case 0:
			return Null()
		case 1:
			return Float(float64(rng.Intn(7) - 3)) // kind-mismatched write
		case 2:
			return Int(int64(300 + rng.Intn(200))) // novel code
		default:
			return Int(int64(rng.Intn(7) - 3))
		}
	default:
		switch rng.Intn(10) {
		case 0:
			return Null()
		case 1:
			return Float(float64(rng.Intn(60)) + 0.25) // novel code
		default:
			return Float(float64(rng.Intn(5)) + 0.5)
		}
	}
}

// TestPatchedCacheMatchesBuildPLI is the tentpole property of per-cell
// PLI patching: on randomized mixed-kind relations (NULLs, mixed-kind
// columns, novel codes), interleaved rounds of Set edits and appends
// are absorbed by the IndexCache purely through journal drains and
// advances — the build counter stays frozen — and every returned index
// is byte-identical (groups, member order, group order, tid->group) to
// counting-sorting the mutated relation from scratch. GetDelta rounds
// leave the drained-but-dirty state in place; the follow-up Get must
// compact it back to canonical order.
func TestPatchedCacheMatchesBuildPLI(t *testing.T) {
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {1, 0}, {2, 1}, {0, 2, 3}, {3, 2, 1, 0}}
	for seed := int64(1); seed <= 8; seed++ {
		r := randomMixedRelation(t, seed, 140+int(seed)*31)
		rng := rand.New(rand.NewSource(seed * 1289))
		cache := NewIndexCache()
		for _, attrs := range attrSets {
			cache.Get(r, attrs)
		}
		builds := cache.Stats().Misses
		for round := 0; round < 4; round++ {
			for k, edits := 0, 2+rng.Intn(5); k < edits; k++ {
				tid, attr := rng.Intn(r.Len()), rng.Intn(4)
				r.Set(tid, attr, randomPatchValue(rng, attr))
			}
			if round%2 == 1 {
				appendRandomRows(t, r, rng, 10+rng.Intn(15))
			}
			for _, attrs := range attrSets {
				ctx := fmt.Sprintf("seed %d round %d attrs %v", seed, round, attrs)
				if rng.Intn(2) == 0 {
					// Tolerant read first: the drained-but-uncompacted
					// index must still cover every TID exactly once and
					// agree with GroupOf.
					d := cache.GetDelta(r, attrs)
					if !d.Fresh(r) {
						t.Fatalf("%s: GetDelta result not fresh", ctx)
					}
					n := 0
					for g := 0; g < d.NumGroups(); g++ {
						for _, tid := range d.Group(g) {
							if d.GroupOf(tid) != g {
								t.Fatalf("%s: GroupOf(%d) = %d, group iteration says %d",
									ctx, tid, d.GroupOf(tid), g)
							}
							n++
						}
					}
					if n != r.Len() {
						t.Fatalf("%s: partition covers %d of %d tuples", ctx, n, r.Len())
					}
				}
				got := cache.Get(r, attrs)
				samePLI(t, ctx, r, got, BuildPLI(r, attrs))
			}
		}
		if s := cache.Stats(); s.Misses != builds {
			t.Fatalf("seed %d: edits caused rebuilds: %+v", seed, s)
		}
		if s := cache.Stats(); s.Patches == 0 {
			t.Fatalf("seed %d: no journal drains counted: %+v", seed, s)
		}
	}
}

// TestPublicPatchMatchesBuildPLI drives the record-at-a-time PLI.Patch
// API directly from the relation's journals (the discipline the doc
// demands: each record once, in journal order) and asserts the patched
// index compacts to exactly the from-scratch build — including when the
// journals of a multi-attribute index are drained one attribute at a
// time, so the lookup map must materialize under the pre-patch overlay
// of records still pending on the OTHER attribute.
func TestPublicPatchMatchesBuildPLI(t *testing.T) {
	attrSets := [][]int{{0}, {1, 0}, {3, 2, 1, 0}}
	for seed := int64(1); seed <= 6; seed++ {
		r := randomMixedRelation(t, seed, 130+int(seed)*17)
		rng := rand.New(rand.NewSource(seed * 733))
		for _, attrs := range attrSets {
			p := BuildPLI(r, attrs)
			marks := make(map[int]uint64, 4)
			for a := 0; a < 4; a++ {
				marks[a] = r.PatchVersion(a)
			}
			for k := 0; k < 10+rng.Intn(10); k++ {
				tid, attr := rng.Intn(r.Len()), rng.Intn(4)
				r.Set(tid, attr, randomPatchValue(rng, attr))
			}
			for _, a := range attrs {
				log, ok := r.PatchesSince(a, marks[a])
				if !ok {
					t.Fatalf("seed %d attrs %v: journal trimmed unexpectedly", seed, attrs)
				}
				for _, pc := range log {
					p.Patch(pc.TID, a, pc.Old, pc.New)
				}
			}
			if !p.Fresh(r) {
				t.Fatalf("seed %d attrs %v: fully patched PLI not fresh", seed, attrs)
			}
			p.Compact()
			samePLI(t, fmt.Sprintf("seed %d attrs %v", seed, attrs), r, p, BuildPLI(r, attrs))
			// Un-journaled columns: edits to attributes the index does not
			// mention never disturbed it (checked implicitly by Fresh
			// above, since their journals were not drained into p).
		}
	}
}

// TestPatchJournalOverflow pins the journal-overflow escape hatch: a
// column edited more times than maxPatchLogFor allows hard-invalidates
// (version bump, journal cleared), the cache rebuilds exactly the
// affected index, and the rebuilt index is correct.
func TestPatchJournalOverflow(t *testing.T) {
	r := randomMixedRelation(t, 9, 200)
	cache := NewIndexCache()
	p0 := cache.Get(r, []int{0})
	p1 := cache.Get(r, []int{1})
	rng := rand.New(rand.NewSource(4242))
	vc := r.ColumnVersion(0)
	for i := 0; i < maxPatchLogFor(r.Len())+1; i++ {
		// Always-novel values: every Set journals (a code-identical Set
		// journals nothing and would not fill the log).
		r.Set(rng.Intn(r.Len()), 0, String(fmt.Sprintf("ov-%d", i)))
	}
	if r.ColumnVersion(0) == vc {
		t.Fatalf("journal overflow did not hard-invalidate the column")
	}
	if p0.Fresh(r) || p0.AdvanceableTo(r) {
		t.Fatalf("PLI survived a journal overflow")
	}
	before := cache.Stats()
	got := cache.Get(r, []int{0})
	if got == p0 {
		t.Fatalf("cache served a pre-overflow PLI")
	}
	if s := cache.Stats(); s.Misses != before.Misses+1 {
		t.Fatalf("overflow should rebuild: %+v -> %+v", before, s)
	}
	samePLI(t, "post-overflow", r, got, BuildPLI(r, []int{0}))
	// The untouched column's index never noticed.
	if got := cache.Get(r, []int{1}); got != p1 || !got.Fresh(r) {
		t.Fatalf("overflow on column 0 disturbed the index over column 1")
	}
}

// TestPatchLargePendingRebuilds pins the patch-or-rebuild decision: when
// a single drain would re-home more than an eighth of the index, catchUp
// declines and the cache rebuilds instead (cheaper than n/8 group
// moves), still yielding a correct index.
func TestPatchLargePendingRebuilds(t *testing.T) {
	r := randomMixedRelation(t, 5, 160)
	cache := NewIndexCache()
	cache.Get(r, []int{2})
	rng := rand.New(rand.NewSource(17))
	// Touch well over n/8 distinct TIDs in one batch.
	for tid := 0; tid < r.Len(); tid += 2 {
		r.Set(tid, 2, randomPatchValue(rng, 2))
	}
	before := cache.Stats()
	got := cache.Get(r, []int{2})
	if s := cache.Stats(); s.Misses != before.Misses+1 || s.Patches != before.Patches {
		t.Fatalf("bulk edit should rebuild, not drain %d patches: %+v -> %+v",
			r.Len()/2, before, s)
	}
	samePLI(t, "bulk-edit rebuild", r, got, BuildPLI(r, []int{2}))
}

// TestTruncateDropsPatchJournal pins the session-rollback contract:
// Truncate (the append rollback primitive) clears the patch journal and
// hard-invalidates, so an index cannot drain patches journaled against
// rows that no longer exist — even if the relation grows back to the
// same length.
func TestTruncateDropsPatchJournal(t *testing.T) {
	r := randomMixedRelation(t, 13, 150)
	p := BuildPLI(r, []int{0, 1})
	rng := rand.New(rand.NewSource(7))
	appendRandomRows(t, r, rng, 10)
	r.Set(r.Len()-3, 0, String("0rolled-back"))
	r.Truncate(150)
	if p.Fresh(r) || p.AdvanceableTo(r) {
		t.Fatalf("PLI survived Truncate with a pending patch")
	}
	if _, ok := r.PatchesSince(0, 0); ok {
		t.Fatalf("Truncate retained the patch journal")
	}
}
