package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// appendRandomRows grows a randomMixedRelation-style relation by count
// rows drawn from the same domains PLUS novel values, so appends intern
// fresh codes whose Encode keys interleave arbitrarily with the existing
// ranking — the hard case for incremental codeRanks extension and for
// splicing provisional groups into canonical order at compaction.
func appendRandomRows(t testing.TB, r *Relation, rng *rand.Rand, count int) {
	t.Helper()
	strDomain := []string{"", "a", "ab", "abc", "1", "12", "1:", "12:", ":", "x;", "-3", "edi", "gla"}
	randS := func() Value {
		switch rng.Intn(12) {
		case 0:
			return Null()
		case 1, 2:
			// Novel string: forces a fresh code; the "0"/"zz" prefixes
			// sort both before and after the existing domain.
			if rng.Intn(2) == 0 {
				return String(fmt.Sprintf("0new-%d", rng.Intn(1000)))
			}
			return String(fmt.Sprintf("zz-%d", rng.Intn(1000)))
		default:
			return String(strDomain[rng.Intn(len(strDomain))])
		}
	}
	randI := func() Value {
		switch rng.Intn(12) {
		case 0:
			return Null()
		case 1:
			return Int(int64(100 + rng.Intn(50))) // novel int codes
		default:
			return Int(int64(rng.Intn(7) - 3))
		}
	}
	randF := func() Value {
		switch rng.Intn(12) {
		case 0:
			return Null()
		case 1:
			return Float(float64(rng.Intn(40)) + 0.125)
		default:
			return Float(float64(rng.Intn(5)) + 0.5)
		}
	}
	for i := 0; i < count; i++ {
		r.MustInsert(Tuple{randS(), randI(), randF(), randS()})
	}
}

// samePLI asserts byte-identical partitions including the tid->group
// mapping (samePartition covers groups/member order/group order).
func samePLI(t *testing.T, ctx string, r *Relation, got, want *PLI) {
	t.Helper()
	samePartition(t, ctx, got, want)
	for tid := 0; tid < r.Len(); tid++ {
		if got.GroupOf(tid) != want.GroupOf(tid) {
			t.Fatalf("%s: GroupOf(%d) = %d, want %d", ctx, tid, got.GroupOf(tid), want.GroupOf(tid))
		}
	}
}

// TestAdvanceMatchesBuildPLI is the tentpole property: on randomized
// mixed-kind relations, absorbing appended rows via Advance and then
// compacting yields groups, member order, group order, and tid->group
// mapping byte-identical to counting-sorting the grown relation from
// scratch — across several append rounds, with novel codes in the
// delta. Group order is additionally cross-checked against the legacy
// HashIndex sorted-key order, which validates the incremental codeRanks
// merge independently of BuildPLI (both share the rank cache).
func TestAdvanceMatchesBuildPLI(t *testing.T) {
	attrSets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {1, 0}, {2, 1}, {0, 2, 3}, {3, 2, 1, 0}}
	for seed := int64(1); seed <= 8; seed++ {
		r := randomMixedRelation(t, seed, 120+int(seed)*29)
		rng := rand.New(rand.NewSource(seed * 977))
		plis := make([]*PLI, len(attrSets))
		for i, attrs := range attrSets {
			plis[i] = BuildPLI(r, attrs)
		}
		for round := 0; round < 3; round++ {
			appendRandomRows(t, r, rng, 15+rng.Intn(25))
			for i, attrs := range attrSets {
				ctx := fmt.Sprintf("seed %d round %d attrs %v", seed, round, attrs)
				p := plis[i]
				if !p.AdvanceableTo(r) {
					t.Fatalf("%s: append-only growth not advanceable", ctx)
				}
				if !p.Advance(r) {
					t.Fatalf("%s: Advance refused", ctx)
				}
				if !p.Fresh(r) {
					t.Fatalf("%s: advanced PLI not fresh", ctx)
				}
				// Tolerant reads before compaction: the partition must
				// cover every TID exactly once and agree with GroupOf.
				n := 0
				for g := 0; g < p.NumGroups(); g++ {
					for _, tid := range p.Group(g) {
						if p.GroupOf(tid) != g {
							t.Fatalf("%s: GroupOf(%d) = %d, group iteration says %d", ctx, tid, p.GroupOf(tid), g)
						}
						n++
					}
				}
				if n != r.Len() {
					t.Fatalf("%s: tolerant iteration covers %d of %d tuples", ctx, n, r.Len())
				}
				// Lookup tolerates tails: probing any tuple's own values
				// must find its group.
				probeTID := rng.Intn(r.Len())
				probe := r.Tuple(probeTID).Project(attrs)
				found := false
				for _, tid := range p.Lookup(probe) {
					if tid == probeTID {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: tolerant Lookup lost tuple %d", ctx, probeTID)
				}
				p.Compact()
				if p.TailLen() != 0 {
					t.Fatalf("%s: tail survives Compact", ctx)
				}
				samePLI(t, ctx+" (compacted vs rebuild)", r, p, BuildPLI(r, attrs))
				// And after compaction Lookup must agree with a fresh map.
				got := p.Lookup(probe)
				want := BuildPLI(r, attrs).Lookup(probe)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s: post-compact Lookup %v, want %v", ctx, got, want)
				}
			}
			// Legacy cross-check: canonical group order == sorted key order.
			for _, attrs := range attrSets[:4] {
				idx := BuildIndex(r, attrs)
				pli := BuildPLI(r, attrs)
				keys := idx.Keys()
				if pli.NumGroups() != len(keys) {
					t.Fatalf("seed %d round %d attrs %v: %d groups vs %d legacy keys",
						seed, round, attrs, pli.NumGroups(), len(keys))
				}
				for g, key := range keys {
					want := idx.LookupKey(key)
					got := pli.Group(g)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("seed %d round %d attrs %v group %d: %v vs legacy %v",
							seed, round, attrs, g, got, want)
					}
				}
			}
		}
	}
}

// TestAdvanceThresholdCompacts checks the LSM-style auto-compaction: a
// tail outgrowing an eighth of the index folds in without an explicit
// order-sensitive read.
func TestAdvanceThresholdCompacts(t *testing.T) {
	r := randomMixedRelation(t, 3, 64)
	p := BuildPLI(r, []int{0, 1})
	rng := rand.New(rand.NewSource(17))
	appendRandomRows(t, r, rng, 4)
	if !p.Advance(r) {
		t.Fatal("Advance refused")
	}
	if p.TailLen() == 0 {
		t.Fatal("small delta should stay in the tail")
	}
	appendRandomRows(t, r, rng, 64) // 68 tail rows vs n=132: way past n/8
	if !p.Advance(r) {
		t.Fatal("second Advance refused")
	}
	if p.TailLen() != 0 {
		t.Fatalf("threshold did not trigger compaction (tail %d of %d)", p.TailLen(), r.Len())
	}
	samePLI(t, "auto-compacted", r, p, BuildPLI(r, []int{0, 1}))
}

// TestAdvanceRefusesMutations checks the staleness trichotomy: an edit
// to an indexed column, a reorder, or a truncate make the index neither
// fresh nor advanceable, while an edit to an unrelated column leaves it
// fresh.
func TestAdvanceRefusesMutations(t *testing.T) {
	r := randomMixedRelation(t, 5, 100)
	p := BuildPLI(r, []int{0, 1})

	r.Set(2, 3, String("unrelated-column-edit"))
	if !p.Fresh(r) || !p.AdvanceableTo(r) {
		t.Fatal("edit to unindexed column invalidated the PLI")
	}

	r.Set(2, 0, String("indexed-column-edit"))
	if p.AdvanceableTo(r) {
		t.Fatal("edited indexed column still advanceable")
	}
	if p.Advance(r) {
		t.Fatal("Advance absorbed a code mutation")
	}

	p2 := BuildPLI(r, []int{0, 1})
	r.SortBy([]int{1})
	if p2.AdvanceableTo(r) {
		t.Fatal("reorder still advanceable")
	}

	p3 := BuildPLI(r, []int{0, 1})
	r.MustInsert(Tuple{String("x"), Int(1), Float(0.5), String("y")})
	r.Truncate(r.Len() - 1)
	if p3.AdvanceableTo(r) {
		t.Fatal("truncate still advanceable")
	}
}

// TestGetDeltaKeepsTail covers the cache's two service speeds: GetDelta
// advances without compacting (incremental detection reads tails),
// and a subsequent Get compacts the same entry to canonical order.
func TestGetDeltaKeepsTail(t *testing.T) {
	r := randomMixedRelation(t, 9, 150)
	cache := NewIndexCache()
	p := cache.Get(r, []int{0, 2})
	rng := rand.New(rand.NewSource(31))
	appendRandomRows(t, r, rng, 10)

	got := cache.GetDelta(r, []int{0, 2})
	if got != p {
		t.Fatal("GetDelta rebuilt instead of advancing")
	}
	if got.TailLen() == 0 {
		t.Fatal("GetDelta should leave the delta in the tail")
	}
	if s := cache.Stats(); s.Advances != 1 {
		t.Fatalf("stats after GetDelta advance: %+v", s)
	}

	// Get on the fresh-but-tailed entry compacts copy-on-write: a
	// GetDelta reader may still be iterating p's tail, so p must keep it
	// while the cache slot switches to a canonical compacted copy.
	got2 := cache.Get(r, []int{0, 2})
	if got2 == p {
		t.Fatal("Get compacted a shared tailed entry in place")
	}
	if got2.TailLen() != 0 {
		t.Fatal("Get must hand out canonical (compacted) indexes")
	}
	if p.TailLen() == 0 {
		t.Fatal("copy-on-write compaction mutated the tailed original")
	}
	if s := cache.Stats(); s.Misses != 1 || s.Advances != 1 || s.Hits != 1 {
		t.Fatalf("stats after compacting Get: %+v", s)
	}
	sameFlat(t, "GetDelta→Get compacted copy", got2, BuildPLI(r, []int{0, 2}))
	samePLI(t, "GetDelta→Get", r, got2, BuildPLI(r, []int{0, 2}))

	// The old tailed snapshot still answers reads consistently...
	n := 0
	for g := 0; g < p.NumGroups(); g++ {
		n += len(p.Group(g))
	}
	if n != r.Len() {
		t.Fatalf("tailed snapshot covers %d of %d tuples after the copy", n, r.Len())
	}
	// ...and the compacted copy owns the slot: later lookups are stable.
	if got3 := cache.Get(r, []int{0, 2}); got3 != got2 {
		t.Fatal("compacted copy was not republished in the cache slot")
	}
	if got4 := cache.GetDelta(r, []int{0, 2}); got4 != got2 {
		t.Fatal("GetDelta should reuse the republished compacted entry")
	}
}

// TestCacheCompactCopyOnWriteConcurrent pins the Get/GetDelta
// interleaving the copy-on-write compaction exists for: under a shared
// lock, one reader iterates the delta tail a GetDelta handed out while
// another reader's Get compacts the same entry. Before compaction went
// copy-on-write this raced (the in-place merge rewrote tids/offsets and
// re-sorted the provisional groups under the iterating reader); run
// under -race (make race-cache).
func TestCacheCompactCopyOnWriteConcurrent(t *testing.T) {
	r := randomMixedRelation(t, 21, 400)
	cache := NewIndexCache()
	attrs := []int{0, 2}
	var relMu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: exclusive appends keep re-creating delta tails
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(22))
		for round := 0; round < 25; round++ {
			relMu.Lock()
			appendRandomRows(t, r, rng, 8)
			relMu.Unlock()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 20 {
						return
					}
				default:
				}
				relMu.RLock()
				var pli *PLI
				if (w+i)%2 == 0 {
					pli = cache.GetDelta(r, attrs)
				} else {
					pli = cache.Get(r, attrs)
				}
				n := 0
				for g := 0; g < pli.NumGroups(); g++ {
					n += len(pli.Group(g))
				}
				if n != r.Len() {
					t.Errorf("worker %d: partition covers %d of %d tuples", w, n, r.Len())
					relMu.RUnlock()
					return
				}
				relMu.RUnlock()
			}
		}(w)
	}
	wg.Wait()

	got := cache.Get(r, attrs)
	if !got.Fresh(r) || got.TailLen() != 0 {
		t.Fatal("cache entry not canonical after quiescence")
	}
	sameFlat(t, "post-concurrency", got, BuildPLI(r, attrs))
}

// TestGetViaAdvancesParent checks that refinement parents are caught up
// before intersecting: after appends, a child whose own entry is gone
// still refines from the advanced parent instead of rebuilding.
func TestGetViaAdvancesParent(t *testing.T) {
	r := randomMixedRelation(t, 13, 140)
	cache := NewIndexCache()
	parent := cache.GetVia(r, []int{1})
	rng := rand.New(rand.NewSource(41))
	appendRandomRows(t, r, rng, 12)

	before := cache.Stats()
	child := cache.GetVia(r, []int{1, 3})
	after := cache.Stats()
	if after.Misses != before.Misses || after.Refines != before.Refines+1 {
		t.Fatalf("child should refine from the advanced parent: %+v -> %+v", before, after)
	}
	if after.Advances != before.Advances+1 {
		t.Fatalf("parent advance not counted: %+v -> %+v", before, after)
	}
	if !parent.Fresh(r) || parent.TailLen() != 0 {
		t.Fatal("GetVia did not catch the parent up canonically")
	}
	samePLI(t, "refined-from-advanced-parent", r, child, BuildPLI(r, []int{1, 3}))
}

// TestCacheBudgetEviction covers size-aware eviction: with a budget in
// place the deepest attribute sets go first (LRU among equals), the
// just-stored entry survives, and the evictions counter moves.
func TestCacheBudgetEviction(t *testing.T) {
	r := randomMixedRelation(t, 7, 400)
	cache := NewIndexCache()
	single := cache.Get(r, []int{0})
	per := single.MemSize()
	// Room for roughly three entries.
	cache.SetBudget(3*per + per/2)

	cache.Get(r, []int{1})
	cache.Get(r, []int{0, 1})
	cache.Get(r, []int{0, 1, 2}) // 4 entries: over budget, deepest others evicted
	if s := cache.Stats(); s.Evictions == 0 {
		t.Fatalf("no evictions under budget pressure: %+v", s)
	}
	if n := cache.Len(); n > 3 {
		t.Fatalf("budget keeps %d entries resident", n)
	}
	// The deepest surviving set must be the one just stored.
	if !cache.Get(r, []int{0, 1, 2}).Fresh(r) {
		t.Fatal("just-stored entry was evicted")
	}
	// Evicted entries rebuild on demand — correctness is unaffected.
	samePLI(t, "post-eviction rebuild", r, cache.Get(r, []int{0, 1}), BuildPLI(r, []int{0, 1}))

	// Unlimited budget: no further evictions.
	cache.SetBudget(0)
	ev := cache.Stats().Evictions
	cache.Get(r, []int{2, 3})
	cache.Get(r, []int{1, 2, 3})
	if got := cache.Stats().Evictions; got != ev {
		t.Fatalf("evictions moved without a budget: %d -> %d", ev, got)
	}
}

// TestCacheBudgetBindsOnAdvance pins the budget to the advance path:
// the steady-state append flow grows cached entries in place without
// ever storing, and must still trigger eviction once the resident
// estimate outgrows the cap.
func TestCacheBudgetBindsOnAdvance(t *testing.T) {
	r := randomMixedRelation(t, 29, 200)
	cache := NewIndexCache()
	cache.Get(r, []int{0})
	cache.Get(r, []int{1})
	deep := cache.Get(r, []int{2, 3})
	total := cache.Get(r, []int{0}).MemSize() + cache.Get(r, []int{1}).MemSize() + deep.MemSize()
	cache.SetBudget(total + 512) // fits now; won't after the relation triples

	rng := rand.New(rand.NewSource(53))
	appendRandomRows(t, r, rng, 400)
	got := cache.Get(r, []int{0}) // advance in place — no store happens
	if s := cache.Stats(); s.Advances == 0 || s.Misses != 3 {
		t.Fatalf("expected a pure advance: %+v", s)
	}
	if s := cache.Stats(); s.Evictions == 0 {
		t.Fatalf("advance-path growth escaped the budget: %+v", s)
	}
	if !got.Fresh(r) {
		t.Fatal("advanced entry not fresh")
	}
}

// TestStoreSweepsOnlyOnRelationChange pins the store-path fix: stores
// for the same relation do not drop sibling entries, while a store for
// a different relation sweeps every entry of the replaced one.
func TestStoreSweepsOnlyOnRelationChange(t *testing.T) {
	r1 := randomMixedRelation(t, 19, 100)
	cache := NewIndexCache()
	cache.Get(r1, []int{0})
	cache.Get(r1, []int{1})
	cache.Get(r1, []int{2, 3})
	if n := cache.Len(); n != 3 {
		t.Fatalf("resident entries = %d, want 3", n)
	}
	// Same-relation store after an edit keeps the untouched siblings.
	r1.Set(0, 0, String("sweep-test-edit"))
	cache.Get(r1, []int{0})
	if n := cache.Len(); n != 3 {
		t.Fatalf("same-relation store swept siblings: %d entries", n)
	}
	// A different relation (the Accept/swap path) sweeps the old one.
	r2 := randomMixedRelation(t, 23, 80)
	cache.Get(r2, []int{0})
	if n := cache.Len(); n != 1 {
		t.Fatalf("relation swap left %d entries, want 1", n)
	}
}
