package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema describes a relation: its name and ordered attribute list.
// Schemas are immutable after construction.
type Schema struct {
	name   string
	attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema. Attribute names must be non-empty and
// pairwise distinct (case-sensitive).
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema name must be non-empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %q must have at least one attribute", name)
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %q attribute %d has empty name", name, i)
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %q has duplicate attribute %q", name, a.Name)
		}
		byName[a.Name] = i
	}
	return &Schema{name: name, attrs: append([]Attribute(nil), attrs...), byName: byName}, nil
}

// MustSchema is like NewSchema but panics on error. Intended for
// package-level schema literals in tests and generators.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// StringSchema builds a schema in which every named attribute has kind
// string — the common case for the data-cleaning workloads in the paper.
func StringSchema(name string, attrNames ...string) (*Schema, error) {
	attrs := make([]Attribute, len(attrNames))
	for i, n := range attrNames {
		attrs[i] = Attribute{Name: n, Kind: KindString}
	}
	return NewSchema(name, attrs...)
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex returns the position of the named attribute and panics if the
// attribute does not exist. Use only when the name is statically known.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("relation: schema %q has no attribute %q", s.name, name))
	}
	return i
}

// Indexes resolves a list of attribute names to positions.
func (s *Schema) Indexes(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %q has no attribute %q", s.name, n)
		}
		out[i] = idx
	}
	return out, nil
}

// Equal reports whether two schemas have the same name and attribute
// lists.
func (s *Schema) Equal(t *Schema) bool {
	if s == t {
		return true
	}
	if s == nil || t == nil || s.name != t.name || len(s.attrs) != len(t.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as name(attr kind, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
