// Package noise injects controlled errors into relations while keeping
// ground truth, mirroring the methodology of the evaluation sections the
// tutorial's systems were measured with ("noise was introduced at rate
// ρ%" — Cong et al. VLDB 2007, Fan et al. TODS 2008). With the original
// values retained, repair quality can be scored as precision and recall.
package noise

import (
	"math/rand"

	"semandaq/internal/relation"
	"semandaq/internal/repair"
)

// Truth records the original value of every dirtied cell.
type Truth struct {
	// Cells maps (tid, attr) to the clean value.
	Cells map[[2]int]relation.Value
}

// Len returns the number of dirtied cells.
func (t *Truth) Len() int { return len(t.Cells) }

// Options configures noise injection.
type Options struct {
	// Rate is the fraction of tuples to dirty (one cell each), in [0, 1].
	Rate float64
	// Attrs restricts the dirtied attributes (default: all).
	Attrs []int
	// TypoBias is the probability that a corruption is a typographical
	// edit of the original value rather than a swap with another value
	// from the active domain (default 0.5).
	TypoBias float64
	// Seed makes the injection deterministic.
	Seed int64
}

// Dirty returns a dirtied copy of r plus the ground truth. Exactly
// ⌊Rate·|r|⌋ distinct tuples get one corrupted cell each; corruptions
// are guaranteed to change the value.
func Dirty(r *relation.Relation, opts Options) (*relation.Relation, *Truth) {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.TypoBias == 0 {
		opts.TypoBias = 0.5
	}
	attrs := opts.Attrs
	if len(attrs) == 0 {
		attrs = make([]int, r.Schema().Arity())
		for i := range attrs {
			attrs[i] = i
		}
	}
	out := r.Clone()
	truth := &Truth{Cells: map[[2]int]relation.Value{}}
	target := int(opts.Rate * float64(r.Len()))
	if target > r.Len() {
		target = r.Len()
	}
	perm := rng.Perm(r.Len())
	// Active domain per attribute for swap corruption.
	domains := make(map[int][]relation.Value)
	for _, a := range attrs {
		seen := map[string]bool{}
		for _, t := range r.Tuples() {
			k := string(t[a].Encode(nil))
			if !seen[k] {
				seen[k] = true
				domains[a] = append(domains[a], t[a])
			}
		}
	}
	for i := 0; i < target; i++ {
		tid := perm[i]
		attr := attrs[rng.Intn(len(attrs))]
		orig := out.Get(tid, attr)
		var corrupted relation.Value
		if orig.Kind() == relation.KindString && rng.Float64() < opts.TypoBias {
			corrupted = relation.String(typo(orig.Str(), rng))
		} else {
			corrupted = swap(orig, domains[attr], rng)
		}
		if corrupted.Identical(orig) {
			// Last resort: append a marker character.
			corrupted = relation.String(orig.String() + "~")
		}
		out.Set(tid, attr, corrupted)
		truth.Cells[[2]int{tid, attr}] = orig
	}
	return out, truth
}

// typo applies one random character-level edit (substitute, delete,
// insert, or transpose) to s.
func typo(s string, rng *rand.Rand) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return "x"
	}
	switch rng.Intn(4) {
	case 0: // substitute
		i := rng.Intn(len(runes))
		runes[i] = rune('a' + rng.Intn(26))
	case 1: // delete
		i := rng.Intn(len(runes))
		runes = append(runes[:i], runes[i+1:]...)
	case 2: // insert
		i := rng.Intn(len(runes) + 1)
		runes = append(runes[:i], append([]rune{rune('a' + rng.Intn(26))}, runes[i:]...)...)
	default: // transpose
		if len(runes) >= 2 {
			i := rng.Intn(len(runes) - 1)
			runes[i], runes[i+1] = runes[i+1], runes[i]
		} else {
			runes = append(runes, 'x')
		}
	}
	return string(runes)
}

// swap picks a different value from the active domain.
func swap(orig relation.Value, domain []relation.Value, rng *rand.Rand) relation.Value {
	if len(domain) <= 1 {
		return relation.String(orig.String() + "~")
	}
	for tries := 0; tries < 8; tries++ {
		v := domain[rng.Intn(len(domain))]
		if !v.Identical(orig) {
			return v
		}
	}
	return relation.String(orig.String() + "~")
}

// Quality scores a repair against the ground truth, following the
// metrics of Cong et al. (VLDB 2007): a repaired cell is correct when it
// was dirtied and the repair restored the clean value.
//
//	precision = corrected / repaired
//	recall    = corrected / dirtied
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64
	Corrected int
	Repaired  int
	Dirtied   int
}

// Score evaluates the change list of a repair result against the truth.
func Score(changes []repair.Change, truth *Truth) Quality {
	corrected := 0
	for _, ch := range changes {
		orig, dirtied := truth.Cells[[2]int{ch.TID, ch.Attr}]
		if dirtied && ch.To.Identical(orig) {
			corrected++
		}
	}
	q := Quality{Corrected: corrected, Repaired: len(changes), Dirtied: truth.Len()}
	if q.Repaired > 0 {
		q.Precision = float64(corrected) / float64(q.Repaired)
	}
	if q.Dirtied > 0 {
		q.Recall = float64(corrected) / float64(q.Dirtied)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}
