package noise

import (
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
)

func TestDirtyRateAndTruth(t *testing.T) {
	r := datagen.Cust(1000, 1)
	dirty, truth := Dirty(r, Options{Rate: 0.05, Seed: 2})
	if truth.Len() != 50 {
		t.Fatalf("dirtied %d cells, want 50", truth.Len())
	}
	// Every recorded cell actually differs from the clean value, and the
	// clean relation is untouched.
	for cell, orig := range truth.Cells {
		got := dirty.Get(cell[0], cell[1])
		if got.Identical(orig) {
			t.Errorf("cell %v recorded as dirty but unchanged", cell)
		}
		if !r.Get(cell[0], cell[1]).Identical(orig) {
			t.Errorf("truth value for %v does not match the clean input", cell)
		}
	}
	// Undirtied cells are identical.
	changed := 0
	for tid := 0; tid < r.Len(); tid++ {
		for a := 0; a < r.Schema().Arity(); a++ {
			if !r.Get(tid, a).Identical(dirty.Get(tid, a)) {
				changed++
				if _, ok := truth.Cells[[2]int{tid, a}]; !ok {
					t.Errorf("cell (%d,%d) changed without truth entry", tid, a)
				}
			}
		}
	}
	if changed != truth.Len() {
		t.Errorf("changed %d cells, truth has %d", changed, truth.Len())
	}
}

func TestDirtyDeterministic(t *testing.T) {
	r := datagen.Cust(200, 3)
	d1, t1 := Dirty(r, Options{Rate: 0.1, Seed: 5})
	d2, t2 := Dirty(r, Options{Rate: 0.1, Seed: 5})
	if t1.Len() != t2.Len() {
		t.Fatal("same seed, different truth size")
	}
	for i := 0; i < d1.Len(); i++ {
		if !d1.Tuple(i).Equal(d2.Tuple(i)) {
			t.Fatalf("tuple %d differs across same-seed runs", i)
		}
	}
}

func TestDirtyAttrRestriction(t *testing.T) {
	r := datagen.Cust(300, 4)
	str := r.Schema().MustIndex("STR")
	_, truth := Dirty(r, Options{Rate: 0.2, Attrs: []int{str}, Seed: 6})
	for cell := range truth.Cells {
		if cell[1] != str {
			t.Errorf("cell %v dirtied outside restricted attr", cell)
		}
	}
}

func TestDirtyCreatesDetectableViolations(t *testing.T) {
	r := datagen.Cust(1000, 7)
	set := datagen.CustConstraints()
	// Dirty only constrained attributes so most corruptions are visible.
	str := r.Schema().MustIndex("STR")
	ct := r.Schema().MustIndex("CT")
	dirty, truth := Dirty(r, Options{Rate: 0.08, Attrs: []int{str, ct}, Seed: 8})
	vs, err := cfd.NewDetector(set).Detect(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatalf("%d dirtied cells produced no violations", truth.Len())
	}
}

func TestScore(t *testing.T) {
	truth := &Truth{Cells: map[[2]int]relation.Value{
		{0, 1}: relation.String("good"),
		{2, 3}: relation.String("fine"),
	}}
	changes := []repair.Change{
		{TID: 0, Attr: 1, To: relation.String("good")}, // corrected
		{TID: 2, Attr: 3, To: relation.String("bad")},  // wrong fix
		{TID: 5, Attr: 0, To: relation.String("x")},    // spurious change
	}
	q := Score(changes, truth)
	if q.Corrected != 1 || q.Repaired != 3 || q.Dirtied != 2 {
		t.Fatalf("score = %+v", q)
	}
	if q.Precision != 1.0/3 || q.Recall != 0.5 {
		t.Errorf("P=%f R=%f", q.Precision, q.Recall)
	}
}

func TestEndToEndRepairQuality(t *testing.T) {
	// The E4 pipeline in miniature: generate, dirty, repair, score.
	// With variable-CFD noise on STR inside sizeable zip groups, the
	// medoid value choice should restore most originals.
	r := datagen.Cust(2000, 9)
	set := datagen.CustConstraints()
	str := r.Schema().MustIndex("STR")
	dirty, truth := Dirty(r, Options{Rate: 0.03, Attrs: []int{str}, Seed: 10})
	res, err := repair.Batch(dirty, set, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := repair.Verify(res, set); err != nil {
		t.Fatal(err)
	}
	q := Score(res.Changes, truth)
	if q.Recall < 0.5 {
		t.Errorf("repair recall %.3f too low (%+v)", q.Recall, q)
	}
	if q.Precision < 0.5 {
		t.Errorf("repair precision %.3f too low (%+v)", q.Precision, q)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
