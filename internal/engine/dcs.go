package engine

import (
	"fmt"

	"semandaq/internal/dc"
	"semandaq/internal/relation"
)

// This file is the engine-level face of the denial-constraint subsystem
// (internal/dc): sessions carry a DC registry next to their CFD set,
// detection runs against the SAME per-session PLI cache CFD detection
// and discovery share (a DC's equality-join partition is often exactly
// a partition discovery already built), and the engine caches compiled
// DC sets by (schema, text) like it caches CFD sets.

// DCs returns the session's installed denial-constraint set. Sets are
// immutable once installed; SetDCs swaps the whole set.
func (s *Session) DCs() *dc.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dcs
}

// SetDCs replaces the session's denial-constraint set (schema-checked).
// DC violations are computed on demand rather than cached, so swapping
// the set invalidates nothing else.
func (s *Session) SetDCs(set *dc.Set) error {
	if set == nil {
		return fmt.Errorf("engine: nil DC set")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return err
	}
	if !s.data.Schema().Equal(set.Schema()) {
		return fmt.Errorf("engine: data schema %s does not match DC schema %s",
			s.data.Schema().Name(), set.Schema().Name())
	}
	if s.journal != nil {
		if err := s.journal.LogDCs(s.name, set.String()); err != nil {
			return fmt.Errorf("engine: journaling DCs: %w", err)
		}
	}
	s.dcs = set
	return nil
}

// DCReport is the detection result for one denial constraint.
type DCReport struct {
	Name       string
	Constraint string
	Violations []dc.Violation
	Truncated  bool
}

// DetectDCs runs denial-constraint detection for every installed DC
// against the current data, reusing (and warming) the session's shared
// PLI cache for the equality-join partitions. Reports come back in
// installation order; limit > 0 truncates each DC's (T,U)-sorted
// violation list. Like Detect, it holds the read lock across the
// computation, so concurrent CFD detection, discovery and appends
// interleave safely.
func (s *Session) DetectDCs(limit int) []DCReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.detectDCsLocked(s.dcs.All(), limit)
}

func (s *Session) detectDCsLocked(dcs []*dc.DC, limit int) []DCReport {
	out := make([]DCReport, 0, len(dcs))
	for _, d := range dcs {
		vios := dc.Detect(s.data, d, dc.Options{Cache: s.indexes, MaxViolations: limit})
		out = append(out, DCReport{
			Name:       d.Name(),
			Constraint: d.String(),
			Violations: vios,
			Truncated:  limit > 0 && len(vios) == limit,
		})
	}
	return out
}

// RelaxDC proposes relaxation repairs for one installed DC: the ranked
// weakenings of the constraint that resolve its current violations
// (dc.Relax), alongside the full violation list whose ViolatingTIDs
// feed the value-repair alternative. limit > 0 caps the number of
// weakenings returned (the violation list is never truncated — Relax
// needs every witness to place shifted constants soundly).
func (s *Session) RelaxDC(name string, limit int) ([]dc.Weakening, []dc.Violation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.dcs.Get(name)
	if !ok {
		return nil, nil, fmt.Errorf("engine: dataset %q has no DC %q", s.name, name)
	}
	vios := dc.Detect(s.data, d, dc.Options{Cache: s.indexes})
	weaks := dc.Relax(s.data, d, vios, dc.Options{Cache: s.indexes})
	if limit > 0 && len(weaks) > limit {
		weaks = weaks[:limit]
	}
	return weaks, vios, nil
}

// CompileDCs parses denial-constraint text against a schema, caching
// the compiled set keyed by (schema, text) exactly like
// CompileConstraints does for CFD sets. Compiled DC sets are shared
// across sessions and never mutated after installation.
func (e *Engine) CompileDCs(schema *relation.Schema, text string) (*dc.Set, error) {
	key := "dc\x00" + schema.String() + "\x00" + text
	e.mu.RLock()
	set, ok := e.dcCache[key]
	e.mu.RUnlock()
	if ok {
		return set, nil
	}
	set, err := dc.ParseSet(text, schema)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prior, dup := e.dcCache[key]; dup {
		set = prior
	} else {
		if len(e.dcCache) >= maxCachedSets {
			e.dcCache = make(map[string]*dc.Set, maxCachedSets)
		}
		e.dcCache[key] = set
	}
	e.mu.Unlock()
	return set, nil
}

// InstallDCs compiles DC text and installs the set on the named
// dataset in one step — the service path for POST /v1/dcs.
func (e *Engine) InstallDCs(dataset, text string) (*dc.Set, error) {
	s, ok := e.Get(dataset)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, dataset)
	}
	set, err := e.CompileDCs(s.Schema(), text)
	if err != nil {
		return nil, err
	}
	if err := s.SetDCs(set); err != nil {
		return nil, err
	}
	return set, nil
}
