package engine

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/wal"
)

// Journal is the engine's durability hook, implemented by wal.Manager.
// Every method is called while holding the exclusion that serializes
// mutations of the named dataset, AFTER the in-memory mutation is
// known to succeed and BEFORE the request is acked: an error means the
// operation is not durable and the caller rolls its state back (or
// refuses the ack), so an acked write is always a journaled — and,
// under the default sync policy, fsynced — write.
//
// The journal records effects, not intents: append records carry the
// POST-repair final values of the delta rows and repair commits carry
// the sorted cell-change list, so replay is deterministic raw
// insertion with zero detection or repair work.
type Journal interface {
	LogRegister(name string, schema *relation.Schema, rows []relation.Tuple) error
	LogAppend(name string, rows []relation.Tuple) error
	LogCells(name string, cells []wal.CellWrite, confirm bool) error
	LogConfirm(name string, tid, attr int) error
	LogConstraints(name, text string) error
	LogDCs(name, text string) error
	LogDrop(name string) error
	LogAppendRaw(name string, rows [][]string) error
}

// RegistryWriter is the optional journal extension the cluster
// coordinator uses to mirror its tiny registry (schemas, per-worker
// counts, constraint text) as JSON next to the WAL. Informational: the
// WAL is the authoritative recovery source.
type RegistryWriter interface {
	WriteRegistry(data []byte) error
}

// SetJournal attaches (or detaches, with nil) the durability journal.
// Attach AFTER recovery has replayed the log — a journaling replay
// would re-log every record — and before the engine serves traffic.
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	e.journal = j
	sessions := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		s.journal = j
		s.mu.Unlock()
	}
}

// changeCells converts a repair change list (already sorted by
// (TID, Attr)) to the WAL's cell-write form.
func changeCells(changes []repair.Change) []wal.CellWrite {
	out := make([]wal.CellWrite, len(changes))
	for i, ch := range changes {
		out[i] = wal.CellWrite{TID: ch.TID, Attr: ch.Attr, Value: ch.To}
	}
	return out
}

// --- wal.Applier: recovery-side appliers. The journal must be detached
// while these run (recovery replays, it does not re-log).

// ApplySnapshot registers a dataset from its checkpoint: the relation
// is adopted cell-exactly, then the constraint/DC sets are recompiled
// from their canonical text and the confirmed cells restored.
func (e *Engine) ApplySnapshot(name string, snap *wal.DatasetSnapshot) error {
	s, err := e.Register(name, snap.Data)
	if err != nil {
		return err
	}
	if snap.CFDText != "" {
		if _, err := e.InstallConstraints(name, snap.CFDText); err != nil {
			return fmt.Errorf("constraints: %v", err)
		}
	}
	if snap.DCText != "" {
		if _, err := e.InstallDCs(name, snap.DCText); err != nil {
			return fmt.Errorf("dcs: %v", err)
		}
	}
	s.mu.Lock()
	for _, cell := range snap.Confirmed {
		s.confirmed[[2]int{cell[0], cell[1]}] = true
	}
	s.mu.Unlock()
	return nil
}

// ApplyRegister replays a dataset registration through the
// exact-reproduction ingest path (the logged rows are the
// post-validation stored rows).
func (e *Engine) ApplyRegister(name string, schema *relation.Schema, rows []relation.Tuple) error {
	_, err := e.RegisterExact(name, schema, rows)
	return err
}

// ApplyAppend replays an append batch: the rows carry their
// post-repair final values, so this is raw insertion — no detection,
// no repair.
func (e *Engine) ApplyAppend(name string, rows []relation.Tuple) error {
	s, ok := e.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	return s.replayAppend(rows)
}

// ApplyCells replays a repair commit or edit.
func (e *Engine) ApplyCells(name string, cells []wal.CellWrite, confirm bool) error {
	s, ok := e.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	return s.replayCells(cells, confirm)
}

// ApplyConfirm replays a cell confirmation.
func (e *Engine) ApplyConfirm(name string, tid, attr int) error {
	s, ok := e.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkCell(tid, attr); err != nil {
		return err
	}
	s.confirmed[[2]int{tid, attr}] = true
	return nil
}

// ApplyConstraints replays a constraint installation from canonical
// CFD text.
func (e *Engine) ApplyConstraints(name, text string) error {
	_, err := e.InstallConstraints(name, text)
	return err
}

// ApplyDCs replays a denial-constraint installation.
func (e *Engine) ApplyDCs(name, text string) error {
	_, err := e.InstallDCs(name, text)
	return err
}

// ApplyDrop replays a dataset drop. Tolerant of a missing dataset:
// racing Drop calls can journal the same drop twice.
func (e *Engine) ApplyDrop(name string) error {
	e.Drop(name)
	return nil
}

// ApplyAppendRaw never occurs in a single-process log (raw appends are
// the coordinator's record form).
func (e *Engine) ApplyAppendRaw(name string, rows [][]string) error {
	return fmt.Errorf("engine: unexpected raw-append record for %q in engine log", name)
}

// DatasetArity resolves the schema arity replay needs to decode rows.
func (e *Engine) DatasetArity(name string) (int, bool) {
	s, ok := e.Get(name)
	if !ok {
		return 0, false
	}
	return s.Schema().Arity(), true
}

// replayAppend inserts recovered rows exactly as logged.
func (s *Session) replayAppend(rows []relation.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	arity := s.data.Schema().Arity()
	for i, t := range rows {
		if len(t) != arity {
			return fmt.Errorf("engine: replayed row %d has arity %d, want %d", i, len(t), arity)
		}
		s.data.InsertUnchecked(t)
	}
	s.mutated()
	return nil
}

// replayCells applies a recovered cell-change list.
func (s *Session) replayCells(cells []wal.CellWrite, confirm bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cells {
		if err := s.checkCell(c.TID, c.Attr); err != nil {
			return err
		}
		s.data.Set(c.TID, c.Attr, c.Value)
		if confirm {
			s.confirmed[[2]int{c.TID, c.Attr}] = true
		}
	}
	s.mutated()
	return nil
}

// --- wal.CheckpointSource: coherent capture for snapshots.

// DatasetNames lists the datasets a checkpoint must capture.
func (e *Engine) DatasetNames() []string { return e.List() }

// CaptureDataset captures one dataset's full durable state plus the
// WAL watermark, atomically: state and watermark are read under the
// session's read lock, and every journal append for this dataset
// happens under the write lock, so a record is either fully reflected
// in the capture (seq <= watermark) or wholly after it.
func (e *Engine) CaptureDataset(name string, seq func() uint64) (*wal.DatasetSnapshot, bool) {
	s, ok := e.Get(name)
	if !ok {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := &wal.DatasetSnapshot{
		Seq:     seq(),
		Schema:  s.data.Schema(),
		Data:    s.data.Clone(),
		CFDText: s.set.String(),
		DCText:  s.dcs.String(),
	}
	snap.Confirmed = make([][2]int, 0, len(s.confirmed))
	for c := range s.confirmed {
		snap.Confirmed = append(snap.Confirmed, c)
	}
	sort.Slice(snap.Confirmed, func(i, j int) bool {
		if snap.Confirmed[i][0] != snap.Confirmed[j][0] {
			return snap.Confirmed[i][0] < snap.Confirmed[j][0]
		}
		return snap.Confirmed[i][1] < snap.Confirmed[j][1]
	})
	return snap, true
}
