package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/relation"
)

// ErrWorker tags failures of a worker RPC so the HTTP layer can answer
// 502 (upstream worker unreachable or misbehaving) instead of 500.
var ErrWorker = errors.New("worker error")

// Cause sentinels the shard client attaches under ErrWorker so the
// per-worker stats can label failures by cause. An ErrWorker without a
// finer tag counts as a transport error.
var (
	// ErrWorkerTimeout tags a worker call that exceeded its deadline.
	ErrWorkerTimeout = errors.New("worker timeout")
	// ErrWorkerUpstream tags a worker reply with a 5xx status.
	ErrWorkerUpstream = errors.New("worker upstream status")
)

// causeOf labels a worker error for stats and degraded-result reports.
func causeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrWorkerTimeout):
		return "timeout"
	case errors.Is(err, ErrWorkerUpstream):
		return "http_5xx"
	default:
		return "transport"
	}
}

// ShardClient is the coordinator's view of one worker process. The HTTP
// implementation lives in internal/server; tests use in-process fakes.
// TIDs in every result are shard-LOCAL — the coordinator owns the
// global translation.
type ShardClient interface {
	// URL identifies the worker in stats and errors.
	URL() string
	// Register creates the worker's slice of a dataset from exact
	// tuples (the worker ingests via RegisterExact).
	Register(dataset string, schema *relation.Schema, tuples []relation.Tuple) error
	// Drop removes the worker's slice; dropping an unknown dataset is
	// not an error.
	Drop(dataset string) error
	// InstallConstraints installs CFD text on the worker's slice.
	InstallConstraints(dataset, cfds string) error
	// InstallDCs installs denial-constraint text on the worker's slice.
	InstallDCs(dataset, dcs string) error
	// ShardDetect runs shard-local detection. set carries the
	// coordinator's compiled CFDs (same text, same order as installed on
	// the worker) so returned violations reference the coordinator's CFD
	// pointers; cfds is the text to detect when it differs from the
	// installed set ("" = installed).
	ShardDetect(dataset, cfds string, set *cfd.Set) ([]cfd.ShardResult, error)
	// ShardGroups fetches boundary-group members (local TIDs).
	ShardGroups(dataset string, partAttrs, valAttrs []int, keys []string) ([]cfd.BoundaryGroup, error)
	// ShardDCs runs shard-local DC detection for every installed DC,
	// keyed by DC name.
	ShardDCs(dataset string) (map[string]dc.ShardResult, error)
	// Append routes raw tuple fields to the worker's incremental repair
	// path and returns the number appended.
	Append(dataset string, tuples [][]string) (int, error)
	// Discover profiles the worker's slice and returns the discovered
	// CFDs' canonical strings.
	Discover(dataset string, minSupport, maxLHS int) ([]string, error)
}

// WorkerCall is one worker's share of a fan-out, for latency reporting.
type WorkerCall struct {
	URL       string  `json:"url"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WorkerTotals is a worker's cumulative fan-out accounting in
// /v1/stats. Failed calls are additionally labeled by cause: a
// deadline overrun (timeouts), a 5xx reply (http_5xx — the worker was
// reachable but failing, e.g. mid-recovery), or any other transport
// fault (connection refused/reset).
type WorkerTotals struct {
	Calls      uint64  `json:"calls"`
	TotalMS    float64 `json:"total_ms"`
	Errors     uint64  `json:"errors"`
	Timeouts   uint64  `json:"timeouts"`
	HTTP5xx    uint64  `json:"http_5xx"`
	Transport  uint64  `json:"transport_errors"`
	Retries    uint64  `json:"retries"`
	LastErrMsg string  `json:"last_error,omitempty"`
}

// ClusterDataset is the coordinator's record of one range-partitioned
// dataset: worker w owns global TIDs [offset(w), offset(w)+counts[w]).
// The coordinator holds NO tuple data — only the schema, the compiled
// constraint sets (for the merge), and the per-worker counts.
type ClusterDataset struct {
	mu      sync.RWMutex
	name    string
	schema  *relation.Schema
	counts  []int
	cfds    *cfd.Set
	cfdText string
	dcs     *dc.Set
	dcText  string

	// wm serializes this dataset's mutations (worker apply + journal
	// append) so the WAL's record order matches the order the cluster
	// actually applied the mutations in — the invariant replay depends
	// on. Held across the worker RPC, unlike mu, which only guards the
	// in-memory fields.
	wm sync.Mutex

	// dropped, guarded by wm, marks the dataset removed. Drop journals
	// its record under wm and sets this before unpublishing, so a
	// mutation racing the drop either journals wholly before the drop
	// record or sees the flag and refuses — the WAL never orders a
	// mutation record after its dataset's drop record.
	dropped bool

	violations []cfd.Violation
	stats      cfd.MergeStats
	vioValid   bool
}

// Name returns the dataset name.
func (cd *ClusterDataset) Name() string { return cd.name }

// Schema returns the dataset schema.
func (cd *ClusterDataset) Schema() *relation.Schema { return cd.schema }

// Len returns the cluster-wide tuple count.
func (cd *ClusterDataset) Len() int {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	n := 0
	for _, c := range cd.counts {
		n += c
	}
	return n
}

// Counts returns the per-worker tuple counts.
func (cd *ClusterDataset) Counts() []int {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return append([]int(nil), cd.counts...)
}

// Constraints returns the coordinator's compiled CFD set.
func (cd *ClusterDataset) Constraints() *cfd.Set {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return cd.cfds
}

// DCs returns the coordinator's compiled DC set.
func (cd *ClusterDataset) DCs() *dc.Set {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return cd.dcs
}

func (cd *ClusterDataset) offsets() []int {
	out := make([]int, len(cd.counts))
	off := 0
	for i, c := range cd.counts {
		out[i] = off
		off += c
	}
	return out
}

// Coordinator fans requests out to worker processes and merges their
// shard-local results into globally exact answers (cfd.MergeShards /
// dc.MergeShards). It is the cluster-mode counterpart of Engine.
type Coordinator struct {
	clients []ShardClient

	mu       sync.RWMutex
	datasets map[string]*ClusterDataset
	workerNS map[string]*WorkerTotals

	// journal, when attached (SetJournal), records every registry
	// mutation — register (with full rows: the coordinator holds no
	// tuple data, so the WAL doubles as the worker re-feed source),
	// raw appends, constraint/DC text, drops — before the client is
	// acked. See cluster_durable.go for the recovery side.
	journal Journal
}

// SetJournal attaches (or detaches, with nil) the coordinator's
// durability journal. Attach AFTER recovery has replayed the log.
func (c *Coordinator) SetJournal(j Journal) {
	c.mu.Lock()
	c.journal = j
	c.mu.Unlock()
}

func (c *Coordinator) getJournal() Journal {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.journal
}

// NewCoordinator builds a coordinator over the given workers (at least
// one).
func NewCoordinator(clients []ShardClient) (*Coordinator, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("engine: coordinator needs at least one worker")
	}
	return &Coordinator{
		clients:  clients,
		datasets: map[string]*ClusterDataset{},
		workerNS: map[string]*WorkerTotals{},
	}, nil
}

// Workers returns the worker URLs in shard order.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.clients))
	for i, cl := range c.clients {
		out[i] = cl.URL()
	}
	return out
}

// RetryReporter is the optional ShardClient extension that exposes the
// client's cumulative retry count for /v1/stats.
type RetryReporter interface {
	Retries() uint64
}

// WorkerStats returns each worker's cumulative fan-out call count,
// latency and cause-labeled error counters — the coordinator side of
// GET /v1/stats.
func (c *Coordinator) WorkerStats() map[string]WorkerTotals {
	c.mu.RLock()
	out := make(map[string]WorkerTotals, len(c.workerNS))
	for url, t := range c.workerNS {
		out[url] = *t
	}
	c.mu.RUnlock()
	for _, cl := range c.clients {
		if rr, ok := cl.(RetryReporter); ok {
			t := out[cl.URL()]
			t.Retries = rr.Retries()
			out[cl.URL()] = t
		}
	}
	return out
}

func (c *Coordinator) recordWorker(url string, d time.Duration, err error) {
	c.mu.Lock()
	t := c.workerNS[url]
	if t == nil {
		t = &WorkerTotals{}
		c.workerNS[url] = t
	}
	t.Calls++
	t.TotalMS += float64(d.Microseconds()) / 1000
	if err != nil {
		t.Errors++
		switch causeOf(err) {
		case "timeout":
			t.Timeouts++
		case "http_5xx":
			t.HTTP5xx++
		default:
			t.Transport++
		}
		t.LastErrMsg = err.Error()
	}
	c.mu.Unlock()
}

// fanOutAll runs fn(w, client) for every worker concurrently,
// recording per-worker latency and cause-labeled errors, and returns
// every call's timing plus every worker's (tagged) error — the
// partial-result primitive degraded detection is built on.
func (c *Coordinator) fanOutAll(fn func(w int, cl ShardClient) error) ([]WorkerCall, []error) {
	calls := make([]WorkerCall, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for w, cl := range c.clients {
		wg.Add(1)
		go func(w int, cl ShardClient) {
			defer wg.Done()
			start := time.Now()
			err := fn(w, cl)
			if err != nil && !errors.Is(err, ErrWorker) {
				err = fmt.Errorf("%w: %s: %v", ErrWorker, cl.URL(), err)
			}
			errs[w] = err
			elapsed := time.Since(start)
			calls[w] = WorkerCall{URL: cl.URL(), ElapsedMS: float64(elapsed.Microseconds()) / 1000}
			c.recordWorker(cl.URL(), elapsed, err)
		}(w, cl)
	}
	wg.Wait()
	return calls, errs
}

// fanOut is the fail-fast wrapper: the first worker error wins.
func (c *Coordinator) fanOut(fn func(w int, cl ShardClient) error) ([]WorkerCall, error) {
	calls, errs := c.fanOutAll(fn)
	for _, err := range errs {
		if err != nil {
			return calls, err
		}
	}
	return calls, nil
}

// Register range-partitions data across the workers (even slices,
// remainder on the leading shards) and registers each slice. On any
// failure the already-registered slices are dropped.
func (c *Coordinator) Register(name string, data *relation.Relation) (*ClusterDataset, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: dataset name must be non-empty")
	}
	c.mu.Lock()
	if _, dup := c.datasets[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: dataset %q: %w", name, ErrDuplicate)
	}
	// Reserve the name so concurrent registrations don't double-ship.
	c.datasets[name] = nil
	c.mu.Unlock()

	schema := data.Schema()
	n := data.Len()
	w := len(c.clients)
	size, rem := n/w, n%w
	counts := make([]int, w)
	slices := make([][]relation.Tuple, w)
	tid := 0
	for i := 0; i < w; i++ {
		hi := tid + size
		if i < rem {
			hi++
		}
		counts[i] = hi - tid
		rows := make([]relation.Tuple, 0, hi-tid)
		for ; tid < hi; tid++ {
			rows = append(rows, data.Tuple(tid).Clone())
		}
		slices[i] = rows
	}
	undo := func() {
		for _, cl := range c.clients {
			_ = cl.Drop(name)
		}
		c.mu.Lock()
		delete(c.datasets, name)
		c.mu.Unlock()
	}
	_, err := c.fanOut(func(w int, cl ShardClient) error {
		return cl.Register(name, schema, slices[w])
	})
	if err != nil {
		undo()
		return nil, err
	}
	// Journal the FULL rows before publishing: the coordinator keeps no
	// tuple data, so the register record is what re-feeds the workers
	// their slices at recovery. A non-durable register is undone (the
	// workers drop their slices) rather than acked.
	if j := c.getJournal(); j != nil {
		if err := j.LogRegister(name, schema, data.Tuples()); err != nil {
			undo()
			return nil, fmt.Errorf("engine: journaling register of %q: %w", name, err)
		}
	}
	cd := &ClusterDataset{
		name:   name,
		schema: schema,
		counts: counts,
		cfds:   cfd.NewSet(schema),
		dcs:    dc.NewSet(schema),
	}
	c.mu.Lock()
	c.datasets[name] = cd
	c.mu.Unlock()
	c.mirrorRegistry()
	return cd, nil
}

// Get returns the named cluster dataset.
func (c *Coordinator) Get(name string) (*ClusterDataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cd, ok := c.datasets[name]
	if !ok || cd == nil {
		return nil, false
	}
	return cd, true
}

// List returns the registered dataset names, sorted.
func (c *Coordinator) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for name, cd := range c.datasets {
		if cd != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Drop removes the dataset cluster-wide and reports whether it
// existed. Journal-first, like Engine.Drop: a drop that isn't durable
// must not be acked, or recovery would resurrect the dataset.
func (c *Coordinator) Drop(name string) bool {
	cd, ok := c.Get(name)
	if !ok {
		return false
	}
	// Journal under wm — the exclusion every mutation journals under —
	// so a racing append/install either lands wholly before the drop
	// record or sees cd.dropped and refuses; the WAL never carries a
	// record for this dataset after its drop record.
	cd.wm.Lock()
	if cd.dropped {
		cd.wm.Unlock()
		return false
	}
	if j := c.getJournal(); j != nil {
		if err := j.LogDrop(name); err != nil {
			cd.wm.Unlock()
			return false
		}
	}
	cd.dropped = true
	cd.wm.Unlock()
	c.mu.Lock()
	if cur, ok := c.datasets[name]; ok && cur == cd {
		delete(c.datasets, name)
	}
	c.mu.Unlock()
	_, _ = c.fanOut(func(_ int, cl ShardClient) error { return cl.Drop(name) })
	c.mirrorRegistry()
	return true
}

// InstallConstraints compiles CFD text locally (the coordinator's merge
// needs the set) and installs the same text on every worker's slice.
func (c *Coordinator) InstallConstraints(name, text string) (*cfd.Set, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := cfd.ParseSet(text, cd.schema)
	if err != nil {
		return nil, err
	}
	cd.wm.Lock()
	defer cd.wm.Unlock()
	if cd.dropped {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallConstraints(name, text)
	}); err != nil {
		return nil, err
	}
	if j := c.getJournal(); j != nil {
		if err := j.LogConstraints(name, text); err != nil {
			return nil, fmt.Errorf("engine: journaling constraints for %q: %w", name, err)
		}
	}
	cd.mu.Lock()
	cd.cfds, cd.cfdText = set, text
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	c.mirrorRegistry()
	return set, nil
}

// InstallDCs compiles DC text locally and installs it on every worker.
func (c *Coordinator) InstallDCs(name, text string) (*dc.Set, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := dc.ParseSet(text, cd.schema)
	if err != nil {
		return nil, err
	}
	// Reject unpartitionable DCs at install time, not mid-detect.
	if len(c.clients) > 1 {
		for _, d := range set.All() {
			if d.TwoTuple() && len(d.EqualityAttrs()) == 0 {
				return nil, fmt.Errorf("engine: DC %s has no cross-side equality predicate; it cannot be detected across %d workers", d.Name(), len(c.clients))
			}
		}
	}
	cd.wm.Lock()
	defer cd.wm.Unlock()
	if cd.dropped {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallDCs(name, text)
	}); err != nil {
		return nil, err
	}
	if j := c.getJournal(); j != nil {
		if err := j.LogDCs(name, text); err != nil {
			return nil, fmt.Errorf("engine: journaling DCs for %q: %w", name, err)
		}
	}
	cd.mu.Lock()
	cd.dcs, cd.dcText = set, text
	cd.mu.Unlock()
	c.mirrorRegistry()
	return set, nil
}

// WorkerFailure identifies one worker whose shard results are missing
// from a degraded detection, with the failure's cause label
// ("timeout", "http_5xx" or "transport").
type WorkerFailure struct {
	URL   string `json:"url"`
	Cause string `json:"cause"`
	Err   string `json:"error,omitempty"`
}

// DetectResult is one scatter-gather detection outcome.
type DetectResult struct {
	Violations []cfd.Violation
	Stats      cfd.MergeStats
	// Workers are the per-worker shard-detect latencies of this call.
	Workers []WorkerCall
	// Degraded reports that one or more workers failed mid-detect and
	// their shards are absent from the merge: Violations is a sound
	// partial answer over the surviving shards, never a silent global
	// one. Degraded results are not cached.
	Degraded bool
	// Failed lists the workers excluded from a degraded merge.
	Failed []WorkerFailure
}

// Detect fans detection of the installed constraints out to the
// workers and merges the shard results into the single-process-exact
// global violation list (cfd.MergeShards), caching it like
// Session.Detect does. If a worker dies mid-detect the merge degrades
// gracefully: the result covers the surviving shards and carries
// Degraded plus the failed workers, instead of a blanket error — only
// all workers failing is an error.
func (c *Coordinator) Detect(name string) (*DetectResult, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	set, offsets := cd.cfds, cd.offsets()
	cd.mu.RUnlock()
	res, err := c.detectSet(name, "", set, offsets, true)
	if err != nil {
		return nil, err
	}
	cd.mu.Lock()
	// Racing installs swap cd.cfds; only cache what matches — and never
	// cache a degraded (partial) answer.
	if cd.cfds == set && !res.Degraded {
		cd.violations = append([]cfd.Violation(nil), res.Violations...)
		cd.stats = res.Stats
		cd.vioValid = true
	}
	cd.mu.Unlock()
	return res, nil
}

// detectSet is the two-phase scatter-gather core: fan out shard
// detection of set (cfds = the set's text when it differs from the
// installed one, "" otherwise), then merge with boundary-group fetches.
// A racing append can shift shard state between the two phases; the
// merge tolerates short or missing groups, and exactness is guaranteed
// for quiescent data (the property the tests pin).
//
// allowPartial turns worker failures into a degraded partial result:
// a failed worker's shard results are replaced by empty ones (one
// zero-valued ShardResult per CFD, empty boundary groups), which the
// merge tolerates, and the worker lands in Failed. Strict callers
// (Discover's candidate verification — a partial verdict could verify
// a globally-violated candidate) pass false and get the first error.
func (c *Coordinator) detectSet(name, cfds string, set *cfd.Set, offsets []int, allowPartial bool) (*DetectResult, error) {
	results := make([][]cfd.ShardResult, len(c.clients))
	calls, errs := c.fanOutAll(func(w int, cl ShardClient) error {
		sr, err := cl.ShardDetect(name, cfds, set)
		results[w] = sr
		return err
	})
	// failed[w] records the worker's first error across both phases;
	// phase-2 fetches run sequentially from MergeShards, so plain map
	// writes are safe.
	failed := make(map[int]error)
	for w, err := range errs {
		if err != nil {
			failed[w] = err
		}
	}
	if len(failed) > 0 {
		if !allowPartial || len(failed) == len(c.clients) {
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
		for w := range failed {
			// MergeShards requires one ShardResult per CFD per worker; a
			// zero-valued ShardResult contributes nothing to the merge.
			results[w] = make([]cfd.ShardResult, len(set.All()))
		}
	}
	fetch := func(cfdIdx int, keys []string) ([][]cfd.BoundaryGroup, error) {
		cc := set.All()[cfdIdx]
		part, vals := cc.LHS(), cc.LHSRHSAttrs()
		members := make([][]cfd.BoundaryGroup, len(c.clients))
		_, ferrs := c.fanOutAll(func(w int, cl ShardClient) error {
			if _, dead := failed[w]; dead {
				// Already excluded in phase 1 — don't poke a dead worker.
				members[w] = make([]cfd.BoundaryGroup, len(keys))
				return nil
			}
			groups, err := cl.ShardGroups(name, part, vals, keys)
			if err != nil {
				return err
			}
			for i := range groups {
				for m := range groups[i].TIDs {
					groups[i].TIDs[m] += offsets[w]
				}
			}
			members[w] = groups
			return nil
		})
		for w, err := range ferrs {
			if err == nil {
				continue
			}
			if !allowPartial {
				return nil, err
			}
			if _, dup := failed[w]; !dup {
				failed[w] = err
			}
			if len(failed) == len(c.clients) {
				return nil, err
			}
			members[w] = make([]cfd.BoundaryGroup, len(keys))
		}
		return members, nil
	}
	vios, stats, err := cfd.MergeShards(set, offsets, results, fetch)
	if err != nil {
		return nil, err
	}
	res := &DetectResult{Violations: vios, Stats: stats, Workers: calls}
	if len(failed) > 0 {
		res.Degraded = true
		ws := make([]int, 0, len(failed))
		for w := range failed {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, w := range ws {
			res.Failed = append(res.Failed, WorkerFailure{
				URL:   c.clients[w].URL(),
				Cause: causeOf(failed[w]),
				Err:   failed[w].Error(),
			})
		}
	}
	return res, nil
}

// Violations returns the cached violation list, re-detecting if stale.
func (c *Coordinator) Violations(name string) (*DetectResult, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	if cd.vioValid {
		res := &DetectResult{
			Violations: append([]cfd.Violation(nil), cd.violations...),
			Stats:      cd.stats,
		}
		cd.mu.RUnlock()
		return res, nil
	}
	cd.mu.RUnlock()
	return c.Detect(name)
}

// Append routes new tuples (raw positional fields) to the tail worker —
// the owner of the growing end of the TID space — and invalidates the
// violation cache. Shard-local incremental repair runs on that worker;
// cross-shard effects of the repaired delta surface at the next
// distributed detect.
func (c *Coordinator) Append(name string, tuples [][]string) (int, error) {
	cd, ok := c.Get(name)
	if !ok {
		return 0, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	last := len(c.clients) - 1
	cd.wm.Lock()
	defer cd.wm.Unlock()
	if cd.dropped {
		return 0, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	start := time.Now()
	n, err := c.clients[last].Append(name, tuples)
	c.recordWorker(c.clients[last].URL(), time.Since(start), err)
	if err != nil {
		return 0, err
	}
	var jerr error
	if j := c.getJournal(); j != nil {
		// Journal the RAW fields: the tail worker repairs the delta
		// locally, so replay re-feeds the same raw rows through the same
		// worker-side append path.
		jerr = j.LogAppendRaw(name, tuples)
	}
	// The worker already applied the rows, so the counts must advance
	// even when journaling fails — stale counts would corrupt every
	// later merge's TID offsets (a silent wrong answer). The error still
	// reaches the client un-acked; the memory/WAL divergence heals at
	// the next restart's replay.
	cd.mu.Lock()
	cd.counts[last] += n
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	if jerr != nil {
		return 0, fmt.Errorf("engine: journaling append to %q: %w", name, jerr)
	}
	return n, nil
}

// Discover fans discovery out to the workers, keeps the candidates
// every shard agrees on (intersection by canonical CFD string — a CFD
// holding globally holds on every slice, so the intersection is a
// superset of the global result modulo per-shard min-support skew),
// then verifies each candidate with a distributed detect: candidates
// with zero global violations hold. install replaces the installed set
// cluster-wide with the verified survivors.
func (c *Coordinator) Discover(name string, minSupport, maxLHS int, install bool) ([]string, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	found := make([][]string, len(c.clients))
	if _, err := c.fanOut(func(w int, cl ShardClient) error {
		fs, err := cl.Discover(name, minSupport, maxLHS)
		found[w] = fs
		return err
	}); err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, fs := range found {
		for _, f := range fs {
			counts[f]++
		}
	}
	var candidates []string
	for _, f := range found[0] {
		if counts[f] == len(c.clients) {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	text := ""
	for _, f := range candidates {
		text += f + "\n"
	}
	candSet, err := cfd.ParseSet(text, cd.schema)
	if err != nil {
		return nil, fmt.Errorf("engine: compiling discovery candidates: %w", err)
	}
	cd.mu.RLock()
	offsets := cd.offsets()
	cd.mu.RUnlock()
	// Strict: verifying a candidate against a partial merge could
	// install a globally-violated CFD.
	res, err := c.detectSet(name, text, candSet, offsets, false)
	if err != nil {
		return nil, err
	}
	violated := map[*cfd.CFD]bool{}
	for _, v := range res.Violations {
		violated[v.CFD] = true
	}
	var holds []string
	for _, cc := range candSet.All() {
		if !violated[cc] {
			holds = append(holds, cc.String())
		}
	}
	if install && len(holds) > 0 {
		keep := ""
		for _, h := range holds {
			keep += h + "\n"
		}
		if _, err := c.InstallConstraints(name, keep); err != nil {
			return nil, err
		}
	}
	return holds, nil
}

// DetectDCs fans DC detection out to the workers and merges each DC's
// shard results (dc.MergeShards), truncating each DC's (T,U)-sorted
// list at limit like Session.DetectDCs.
func (c *Coordinator) DetectDCs(name string, limit int) ([]DCReport, []dc.MergeStats, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	set, offsets := cd.dcs, cd.offsets()
	cd.mu.RUnlock()
	all := set.All()
	if len(all) == 0 {
		return []DCReport{}, nil, nil
	}
	shardRes := make([]map[string]dc.ShardResult, len(c.clients))
	if _, err := c.fanOut(func(w int, cl ShardClient) error {
		m, err := cl.ShardDCs(name)
		shardRes[w] = m
		return err
	}); err != nil {
		return nil, nil, err
	}
	reports := make([]DCReport, 0, len(all))
	allStats := make([]dc.MergeStats, 0, len(all))
	for _, d := range all {
		perShard := make([]dc.ShardResult, len(c.clients))
		for w := range c.clients {
			perShard[w] = shardRes[w][d.Name()]
		}
		fetch := func(keys []string) ([][]dc.BoundaryTuples, error) {
			eq, ref := d.EqualityAttrs(), d.ReferencedAttrs()
			members := make([][]dc.BoundaryTuples, len(c.clients))
			_, ferr := c.fanOut(func(w int, cl ShardClient) error {
				groups, err := cl.ShardGroups(name, eq, ref, keys)
				if err != nil {
					return err
				}
				bts := make([]dc.BoundaryTuples, len(groups))
				for i, g := range groups {
					tids := make([]int, len(g.TIDs))
					for m, tid := range g.TIDs {
						tids[m] = tid + offsets[w]
					}
					bts[i] = dc.BoundaryTuples{TIDs: tids, Rows: g.Rows}
				}
				members[w] = bts
				return nil
			})
			return members, ferr
		}
		vios, stats, err := dc.MergeShards(d, offsets, perShard, fetch, limit)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, DCReport{
			Name:       d.Name(),
			Constraint: d.String(),
			Violations: vios,
			Truncated:  limit > 0 && len(vios) == limit,
		})
		allStats = append(allStats, stats)
	}
	return reports, allStats, nil
}
