package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/relation"
)

// ErrWorker tags failures of a worker RPC so the HTTP layer can answer
// 502 (upstream worker unreachable or misbehaving) instead of 500.
var ErrWorker = errors.New("worker error")

// ShardClient is the coordinator's view of one worker process. The HTTP
// implementation lives in internal/server; tests use in-process fakes.
// TIDs in every result are shard-LOCAL — the coordinator owns the
// global translation.
type ShardClient interface {
	// URL identifies the worker in stats and errors.
	URL() string
	// Register creates the worker's slice of a dataset from exact
	// tuples (the worker ingests via RegisterExact).
	Register(dataset string, schema *relation.Schema, tuples []relation.Tuple) error
	// Drop removes the worker's slice; dropping an unknown dataset is
	// not an error.
	Drop(dataset string) error
	// InstallConstraints installs CFD text on the worker's slice.
	InstallConstraints(dataset, cfds string) error
	// InstallDCs installs denial-constraint text on the worker's slice.
	InstallDCs(dataset, dcs string) error
	// ShardDetect runs shard-local detection. set carries the
	// coordinator's compiled CFDs (same text, same order as installed on
	// the worker) so returned violations reference the coordinator's CFD
	// pointers; cfds is the text to detect when it differs from the
	// installed set ("" = installed).
	ShardDetect(dataset, cfds string, set *cfd.Set) ([]cfd.ShardResult, error)
	// ShardGroups fetches boundary-group members (local TIDs).
	ShardGroups(dataset string, partAttrs, valAttrs []int, keys []string) ([]cfd.BoundaryGroup, error)
	// ShardDCs runs shard-local DC detection for every installed DC,
	// keyed by DC name.
	ShardDCs(dataset string) (map[string]dc.ShardResult, error)
	// Append routes raw tuple fields to the worker's incremental repair
	// path and returns the number appended.
	Append(dataset string, tuples [][]string) (int, error)
	// Discover profiles the worker's slice and returns the discovered
	// CFDs' canonical strings.
	Discover(dataset string, minSupport, maxLHS int) ([]string, error)
}

// WorkerCall is one worker's share of a fan-out, for latency reporting.
type WorkerCall struct {
	URL       string  `json:"url"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WorkerTotals is a worker's cumulative fan-out accounting in /v1/stats.
type WorkerTotals struct {
	Calls   uint64  `json:"calls"`
	TotalMS float64 `json:"total_ms"`
}

// ClusterDataset is the coordinator's record of one range-partitioned
// dataset: worker w owns global TIDs [offset(w), offset(w)+counts[w]).
// The coordinator holds NO tuple data — only the schema, the compiled
// constraint sets (for the merge), and the per-worker counts.
type ClusterDataset struct {
	mu      sync.RWMutex
	name    string
	schema  *relation.Schema
	counts  []int
	cfds    *cfd.Set
	cfdText string
	dcs     *dc.Set

	violations []cfd.Violation
	stats      cfd.MergeStats
	vioValid   bool
}

// Name returns the dataset name.
func (cd *ClusterDataset) Name() string { return cd.name }

// Schema returns the dataset schema.
func (cd *ClusterDataset) Schema() *relation.Schema { return cd.schema }

// Len returns the cluster-wide tuple count.
func (cd *ClusterDataset) Len() int {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	n := 0
	for _, c := range cd.counts {
		n += c
	}
	return n
}

// Counts returns the per-worker tuple counts.
func (cd *ClusterDataset) Counts() []int {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return append([]int(nil), cd.counts...)
}

// Constraints returns the coordinator's compiled CFD set.
func (cd *ClusterDataset) Constraints() *cfd.Set {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return cd.cfds
}

// DCs returns the coordinator's compiled DC set.
func (cd *ClusterDataset) DCs() *dc.Set {
	cd.mu.RLock()
	defer cd.mu.RUnlock()
	return cd.dcs
}

func (cd *ClusterDataset) offsets() []int {
	out := make([]int, len(cd.counts))
	off := 0
	for i, c := range cd.counts {
		out[i] = off
		off += c
	}
	return out
}

// Coordinator fans requests out to worker processes and merges their
// shard-local results into globally exact answers (cfd.MergeShards /
// dc.MergeShards). It is the cluster-mode counterpart of Engine.
type Coordinator struct {
	clients []ShardClient

	mu       sync.RWMutex
	datasets map[string]*ClusterDataset
	workerNS map[string]*WorkerTotals
}

// NewCoordinator builds a coordinator over the given workers (at least
// one).
func NewCoordinator(clients []ShardClient) (*Coordinator, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("engine: coordinator needs at least one worker")
	}
	return &Coordinator{
		clients:  clients,
		datasets: map[string]*ClusterDataset{},
		workerNS: map[string]*WorkerTotals{},
	}, nil
}

// Workers returns the worker URLs in shard order.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.clients))
	for i, cl := range c.clients {
		out[i] = cl.URL()
	}
	return out
}

// WorkerStats returns each worker's cumulative fan-out call count and
// latency — the coordinator side of GET /v1/stats.
func (c *Coordinator) WorkerStats() map[string]WorkerTotals {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]WorkerTotals, len(c.workerNS))
	for url, t := range c.workerNS {
		out[url] = *t
	}
	return out
}

func (c *Coordinator) recordWorker(url string, d time.Duration) {
	c.mu.Lock()
	t := c.workerNS[url]
	if t == nil {
		t = &WorkerTotals{}
		c.workerNS[url] = t
	}
	t.Calls++
	t.TotalMS += float64(d.Microseconds()) / 1000
	c.mu.Unlock()
}

// fanOut runs fn(w, client) for every worker concurrently, recording
// per-worker latency, and returns the calls' timings. The first error
// wins (tagged ErrWorker unless already tagged).
func (c *Coordinator) fanOut(fn func(w int, cl ShardClient) error) ([]WorkerCall, error) {
	calls := make([]WorkerCall, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for w, cl := range c.clients {
		wg.Add(1)
		go func(w int, cl ShardClient) {
			defer wg.Done()
			start := time.Now()
			errs[w] = fn(w, cl)
			elapsed := time.Since(start)
			calls[w] = WorkerCall{URL: cl.URL(), ElapsedMS: float64(elapsed.Microseconds()) / 1000}
			c.recordWorker(cl.URL(), elapsed)
		}(w, cl)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			if errors.Is(err, ErrWorker) {
				return calls, err
			}
			return calls, fmt.Errorf("%w: %s: %v", ErrWorker, c.clients[w].URL(), err)
		}
	}
	return calls, nil
}

// Register range-partitions data across the workers (even slices,
// remainder on the leading shards) and registers each slice. On any
// failure the already-registered slices are dropped.
func (c *Coordinator) Register(name string, data *relation.Relation) (*ClusterDataset, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: dataset name must be non-empty")
	}
	c.mu.Lock()
	if _, dup := c.datasets[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("engine: dataset %q: %w", name, ErrDuplicate)
	}
	// Reserve the name so concurrent registrations don't double-ship.
	c.datasets[name] = nil
	c.mu.Unlock()

	schema := data.Schema()
	n := data.Len()
	w := len(c.clients)
	size, rem := n/w, n%w
	counts := make([]int, w)
	slices := make([][]relation.Tuple, w)
	tid := 0
	for i := 0; i < w; i++ {
		hi := tid + size
		if i < rem {
			hi++
		}
		counts[i] = hi - tid
		rows := make([]relation.Tuple, 0, hi-tid)
		for ; tid < hi; tid++ {
			rows = append(rows, data.Tuple(tid).Clone())
		}
		slices[i] = rows
	}
	_, err := c.fanOut(func(w int, cl ShardClient) error {
		return cl.Register(name, schema, slices[w])
	})
	if err != nil {
		for _, cl := range c.clients {
			_ = cl.Drop(name)
		}
		c.mu.Lock()
		delete(c.datasets, name)
		c.mu.Unlock()
		return nil, err
	}
	cd := &ClusterDataset{
		name:   name,
		schema: schema,
		counts: counts,
		cfds:   cfd.NewSet(schema),
		dcs:    dc.NewSet(schema),
	}
	c.mu.Lock()
	c.datasets[name] = cd
	c.mu.Unlock()
	return cd, nil
}

// Get returns the named cluster dataset.
func (c *Coordinator) Get(name string) (*ClusterDataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cd, ok := c.datasets[name]
	if !ok || cd == nil {
		return nil, false
	}
	return cd, true
}

// List returns the registered dataset names, sorted.
func (c *Coordinator) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.datasets))
	for name, cd := range c.datasets {
		if cd != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Drop removes the dataset cluster-wide and reports whether it existed.
func (c *Coordinator) Drop(name string) bool {
	c.mu.Lock()
	cd, ok := c.datasets[name]
	delete(c.datasets, name)
	c.mu.Unlock()
	if !ok || cd == nil {
		return false
	}
	_, _ = c.fanOut(func(_ int, cl ShardClient) error { return cl.Drop(name) })
	return true
}

// InstallConstraints compiles CFD text locally (the coordinator's merge
// needs the set) and installs the same text on every worker's slice.
func (c *Coordinator) InstallConstraints(name, text string) (*cfd.Set, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := cfd.ParseSet(text, cd.schema)
	if err != nil {
		return nil, err
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallConstraints(name, text)
	}); err != nil {
		return nil, err
	}
	cd.mu.Lock()
	cd.cfds, cd.cfdText = set, text
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	return set, nil
}

// InstallDCs compiles DC text locally and installs it on every worker.
func (c *Coordinator) InstallDCs(name, text string) (*dc.Set, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := dc.ParseSet(text, cd.schema)
	if err != nil {
		return nil, err
	}
	// Reject unpartitionable DCs at install time, not mid-detect.
	if len(c.clients) > 1 {
		for _, d := range set.All() {
			if d.TwoTuple() && len(d.EqualityAttrs()) == 0 {
				return nil, fmt.Errorf("engine: DC %s has no cross-side equality predicate; it cannot be detected across %d workers", d.Name(), len(c.clients))
			}
		}
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallDCs(name, text)
	}); err != nil {
		return nil, err
	}
	cd.mu.Lock()
	cd.dcs = set
	cd.mu.Unlock()
	return set, nil
}

// DetectResult is one scatter-gather detection outcome.
type DetectResult struct {
	Violations []cfd.Violation
	Stats      cfd.MergeStats
	// Workers are the per-worker shard-detect latencies of this call.
	Workers []WorkerCall
}

// Detect fans detection of the installed constraints out to the
// workers and merges the shard results into the single-process-exact
// global violation list (cfd.MergeShards), caching it like
// Session.Detect does.
func (c *Coordinator) Detect(name string) (*DetectResult, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	set, offsets := cd.cfds, cd.offsets()
	cd.mu.RUnlock()
	res, err := c.detectSet(name, "", set, offsets)
	if err != nil {
		return nil, err
	}
	cd.mu.Lock()
	// Racing installs swap cd.cfds; only cache what matches.
	if cd.cfds == set {
		cd.violations = append([]cfd.Violation(nil), res.Violations...)
		cd.stats = res.Stats
		cd.vioValid = true
	}
	cd.mu.Unlock()
	return res, nil
}

// detectSet is the two-phase scatter-gather core: fan out shard
// detection of set (cfds = the set's text when it differs from the
// installed one, "" otherwise), then merge with boundary-group fetches.
// A racing append can shift shard state between the two phases; the
// merge tolerates short or missing groups, and exactness is guaranteed
// for quiescent data (the property the tests pin).
func (c *Coordinator) detectSet(name, cfds string, set *cfd.Set, offsets []int) (*DetectResult, error) {
	results := make([][]cfd.ShardResult, len(c.clients))
	calls, err := c.fanOut(func(w int, cl ShardClient) error {
		sr, err := cl.ShardDetect(name, cfds, set)
		results[w] = sr
		return err
	})
	if err != nil {
		return nil, err
	}
	fetch := func(cfdIdx int, keys []string) ([][]cfd.BoundaryGroup, error) {
		cc := set.All()[cfdIdx]
		part, vals := cc.LHS(), cc.LHSRHSAttrs()
		members := make([][]cfd.BoundaryGroup, len(c.clients))
		_, ferr := c.fanOut(func(w int, cl ShardClient) error {
			groups, err := cl.ShardGroups(name, part, vals, keys)
			if err != nil {
				return err
			}
			for i := range groups {
				for m := range groups[i].TIDs {
					groups[i].TIDs[m] += offsets[w]
				}
			}
			members[w] = groups
			return nil
		})
		return members, ferr
	}
	vios, stats, err := cfd.MergeShards(set, offsets, results, fetch)
	if err != nil {
		return nil, err
	}
	return &DetectResult{Violations: vios, Stats: stats, Workers: calls}, nil
}

// Violations returns the cached violation list, re-detecting if stale.
func (c *Coordinator) Violations(name string) (*DetectResult, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	if cd.vioValid {
		res := &DetectResult{
			Violations: append([]cfd.Violation(nil), cd.violations...),
			Stats:      cd.stats,
		}
		cd.mu.RUnlock()
		return res, nil
	}
	cd.mu.RUnlock()
	return c.Detect(name)
}

// Append routes new tuples (raw positional fields) to the tail worker —
// the owner of the growing end of the TID space — and invalidates the
// violation cache. Shard-local incremental repair runs on that worker;
// cross-shard effects of the repaired delta surface at the next
// distributed detect.
func (c *Coordinator) Append(name string, tuples [][]string) (int, error) {
	cd, ok := c.Get(name)
	if !ok {
		return 0, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	last := len(c.clients) - 1
	start := time.Now()
	n, err := c.clients[last].Append(name, tuples)
	c.recordWorker(c.clients[last].URL(), time.Since(start))
	if err != nil {
		return 0, err
	}
	cd.mu.Lock()
	cd.counts[last] += n
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	return n, nil
}

// Discover fans discovery out to the workers, keeps the candidates
// every shard agrees on (intersection by canonical CFD string — a CFD
// holding globally holds on every slice, so the intersection is a
// superset of the global result modulo per-shard min-support skew),
// then verifies each candidate with a distributed detect: candidates
// with zero global violations hold. install replaces the installed set
// cluster-wide with the verified survivors.
func (c *Coordinator) Discover(name string, minSupport, maxLHS int, install bool) ([]string, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	found := make([][]string, len(c.clients))
	if _, err := c.fanOut(func(w int, cl ShardClient) error {
		fs, err := cl.Discover(name, minSupport, maxLHS)
		found[w] = fs
		return err
	}); err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, fs := range found {
		for _, f := range fs {
			counts[f]++
		}
	}
	var candidates []string
	for _, f := range found[0] {
		if counts[f] == len(c.clients) {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	text := ""
	for _, f := range candidates {
		text += f + "\n"
	}
	candSet, err := cfd.ParseSet(text, cd.schema)
	if err != nil {
		return nil, fmt.Errorf("engine: compiling discovery candidates: %w", err)
	}
	cd.mu.RLock()
	offsets := cd.offsets()
	cd.mu.RUnlock()
	res, err := c.detectSet(name, text, candSet, offsets)
	if err != nil {
		return nil, err
	}
	violated := map[*cfd.CFD]bool{}
	for _, v := range res.Violations {
		violated[v.CFD] = true
	}
	var holds []string
	for _, cc := range candSet.All() {
		if !violated[cc] {
			holds = append(holds, cc.String())
		}
	}
	if install && len(holds) > 0 {
		keep := ""
		for _, h := range holds {
			keep += h + "\n"
		}
		if _, err := c.InstallConstraints(name, keep); err != nil {
			return nil, err
		}
	}
	return holds, nil
}

// DetectDCs fans DC detection out to the workers and merges each DC's
// shard results (dc.MergeShards), truncating each DC's (T,U)-sorted
// list at limit like Session.DetectDCs.
func (c *Coordinator) DetectDCs(name string, limit int) ([]DCReport, []dc.MergeStats, error) {
	cd, ok := c.Get(name)
	if !ok {
		return nil, nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	cd.mu.RLock()
	set, offsets := cd.dcs, cd.offsets()
	cd.mu.RUnlock()
	all := set.All()
	if len(all) == 0 {
		return []DCReport{}, nil, nil
	}
	shardRes := make([]map[string]dc.ShardResult, len(c.clients))
	if _, err := c.fanOut(func(w int, cl ShardClient) error {
		m, err := cl.ShardDCs(name)
		shardRes[w] = m
		return err
	}); err != nil {
		return nil, nil, err
	}
	reports := make([]DCReport, 0, len(all))
	allStats := make([]dc.MergeStats, 0, len(all))
	for _, d := range all {
		perShard := make([]dc.ShardResult, len(c.clients))
		for w := range c.clients {
			perShard[w] = shardRes[w][d.Name()]
		}
		fetch := func(keys []string) ([][]dc.BoundaryTuples, error) {
			eq, ref := d.EqualityAttrs(), d.ReferencedAttrs()
			members := make([][]dc.BoundaryTuples, len(c.clients))
			_, ferr := c.fanOut(func(w int, cl ShardClient) error {
				groups, err := cl.ShardGroups(name, eq, ref, keys)
				if err != nil {
					return err
				}
				bts := make([]dc.BoundaryTuples, len(groups))
				for i, g := range groups {
					tids := make([]int, len(g.TIDs))
					for m, tid := range g.TIDs {
						tids[m] = tid + offsets[w]
					}
					bts[i] = dc.BoundaryTuples{TIDs: tids, Rows: g.Rows}
				}
				members[w] = bts
				return nil
			})
			return members, ferr
		}
		vios, stats, err := dc.MergeShards(d, offsets, perShard, fetch, limit)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, DCReport{
			Name:       d.Name(),
			Constraint: d.String(),
			Violations: vios,
			Truncated:  limit > 0 && len(vios) == limit,
		})
		allStats = append(allStats, stats)
	}
	return reports, allStats, nil
}
