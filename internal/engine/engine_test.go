package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/noise"
	"semandaq/internal/relation"
)

// dirtyCust builds the benchmark workload: generated customers with
// noise planted on the repairable attributes.
func dirtyCust(t testing.TB, n int, seed int64) *relation.Relation {
	t.Helper()
	clean := datagen.Cust(n, seed)
	schema := clean.Schema()
	dirty, _ := noise.Dirty(clean, noise.Options{
		Rate:  0.05,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  seed + 1,
	})
	return dirty
}

func newSession(t testing.TB, n int, seed int64) *Session {
	t.Helper()
	s, err := NewSession("test", dirtyCust(t, n, seed), datagen.CustConstraints(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistryLifecycle(t *testing.T) {
	e := New(Options{})
	if _, err := e.Register("", datagen.Cust(5, 1)); err == nil {
		t.Error("empty name should fail")
	}
	s, err := e.Register("a", datagen.Cust(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("a", datagen.Cust(5, 1)); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := e.Register("b", datagen.Cust(5, 1)); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Get("a"); got != s {
		t.Error("Get returned a different session")
	}
	if names := e.List(); !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Errorf("List = %v", names)
	}
	if !e.Drop("a") || e.Drop("a") {
		t.Error("Drop should succeed once")
	}
	if _, ok := e.Get("a"); ok {
		t.Error("dropped dataset still resolvable")
	}
}

func TestRegisterClonesData(t *testing.T) {
	e := New(Options{})
	data := datagen.Cust(5, 1)
	s, err := e.Register("a", data)
	if err != nil {
		t.Fatal(err)
	}
	data.Set(0, 0, relation.String("mutated"))
	if s.Data().Get(0, 0).Str() == "mutated" {
		t.Error("session data aliases the caller's relation")
	}
}

func TestCompileConstraintsCached(t *testing.T) {
	e := New(Options{})
	schema := datagen.CustSchema()
	text := "cfd phi1: cust([CC='44', ZIP] -> [STR])"
	a, err := e.CompileConstraints(schema, text)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CompileConstraints(schema, text)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (schema, text) should return the cached set instance")
	}
	c, err := e.CompileConstraints(schema, text+" ") // different text, same meaning
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different text must not collide in the cache")
	}
	if _, err := e.CompileConstraints(schema, "not a cfd"); err == nil {
		t.Error("parse error should surface")
	}
}

func TestInstallConstraints(t *testing.T) {
	e := New(Options{})
	if _, err := e.Register("cust", dirtyCust(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	set, err := e.InstallConstraints("cust", "cfd phi1: cust([CC='44', ZIP] -> [STR])")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("installed %d CFDs", set.Len())
	}
	s, _ := e.Get("cust")
	if s.Constraints() != set {
		t.Error("session does not hold the installed set")
	}
	if _, err := e.InstallConstraints("nope", "x"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

// TestParallelDetectionDeterminism is the acceptance check at session
// level: the worker-pool detector and the serial detector return the
// same violations in the same order, and rendering them is
// byte-identical.
func TestParallelDetectionDeterminism(t *testing.T) {
	s := newSession(t, 3_000, 5)
	par, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	ser, err := s.DetectSerial()
	if err != nil {
		t.Fatal(err)
	}
	if len(par) == 0 {
		t.Fatal("noisy fixture should violate the planted constraints")
	}
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel and serial detection diverge")
	}
	if fmt.Sprint(par) != fmt.Sprint(ser) {
		t.Fatal("rendered violation sets are not byte-identical")
	}
}

func TestViolationsCache(t *testing.T) {
	s := newSession(t, 500, 7)
	vs, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, again) {
		t.Error("cached violations diverge from computed ones")
	}
	// A mutation invalidates the cache; swapping in a one-CFD subset
	// must change what Violations returns.
	sub, err := cfd.ParseSet("cfd phi1: cust([CC='44', ZIP] -> [STR])", s.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetConstraints(sub); err != nil {
		t.Fatal(err)
	}
	after, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range after {
		if v.CFD.Name() != "phi1" {
			t.Fatalf("violation of %s after installing the phi1-only set", v.CFD.Name())
		}
	}
	if reflect.DeepEqual(vs, after) {
		t.Error("violations unchanged after swapping the constraint set")
	}
}

func TestRepairAcceptCycle(t *testing.T) {
	s := newSession(t, 1_000, 9)
	if s.Candidate() != nil {
		t.Fatal("candidate before Repair")
	}
	if err := s.Accept(); err == nil {
		t.Fatal("Accept without candidate should fail")
	}
	res, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) == 0 {
		t.Fatal("repair of noisy data should change cells")
	}
	if s.Candidate() != res {
		t.Fatal("candidate not cached")
	}
	if err := s.Accept(); err != nil {
		t.Fatal(err)
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("accepted repair leaves %d violations", len(vs))
	}
	if s.Candidate() != nil {
		t.Fatal("candidate should be cleared by Accept")
	}
}

func TestRepairAcceptAtomic(t *testing.T) {
	s := newSession(t, 500, 25)
	res, err := s.RepairAccept()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) == 0 {
		t.Fatal("atomic repair of noisy data should change cells")
	}
	if s.Candidate() != nil {
		t.Fatal("RepairAccept should not leave a dangling candidate")
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("atomic repair leaves %d violations", len(vs))
	}
}

func TestEditConfirmWeights(t *testing.T) {
	s := newSession(t, 300, 11)
	if err := s.Edit(-1, 0, relation.String("x")); err == nil {
		t.Error("negative TID should fail")
	}
	if err := s.Confirm(0, 99); err == nil {
		t.Error("attr out of range should fail")
	}
	if err := s.Edit(0, 1, relation.String("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Confirm(2, 3); err != nil {
		t.Fatal(err)
	}
	cells := s.ConfirmedCells()
	if !reflect.DeepEqual(cells, [][2]int{{0, 1}, {2, 3}}) {
		t.Errorf("ConfirmedCells = %v", cells)
	}
}

func TestAppendIncremental(t *testing.T) {
	base := datagen.Cust(2_000, 13)
	s, err := NewSession("inc", base, datagen.CustConstraints(), 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := base.Schema()
	deltaClean := datagen.Cust(50, 17)
	deltaDirty, _ := noise.Dirty(deltaClean, noise.Options{
		Rate:  0.3,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  19,
	})
	delta := make([]relation.Tuple, deltaDirty.Len())
	for i := range delta {
		delta[i] = deltaDirty.Tuple(i).Clone()
	}
	res, err := s.Append(delta)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range res.Changes {
		if ch.TID < base.Len() {
			t.Fatalf("incremental repair modified base tuple %d", ch.TID)
		}
	}
	if s.Len() != base.Len()+len(delta) {
		t.Fatalf("Len = %d after append", s.Len())
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("incremental repair leaves %d violations", len(vs))
	}
}

// TestSessionAppendAdvancesNotRebuilds is the acceptance criterion of
// the incremental-PLI work, at E13 scale: on a warm 100k-tuple session,
// appending a 100-row delta and re-detecting performs ZERO partition
// rebuilds — Misses and Refines freeze after warm-up while Advances
// grows with every append batch. The appended tuples are clones of base
// rows (consistent by construction), so the repair writes nothing and
// no column version moves.
func TestSessionAppendAdvancesNotRebuilds(t *testing.T) {
	base := datagen.Cust(100_000, 31)
	s, err := NewSession("append-warm", base, datagen.CustConstraints(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	warm := s.IndexStats()
	if warm.Misses == 0 {
		t.Fatal("warm-up built nothing?")
	}

	const rounds, delta = 3, 100
	for round := 0; round < rounds; round++ {
		tuples := make([]relation.Tuple, delta)
		for i := range tuples {
			tuples[i] = base.Tuple((round*delta + i*37) % base.Len()).Clone()
		}
		res, err := s.Append(tuples)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Changes) != 0 {
			t.Fatalf("round %d: consistent delta repaired %d cells", round, len(res.Changes))
		}
		vs, err := s.Detect()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("round %d: %d violations after clean append", round, len(vs))
		}
	}
	if s.Len() != base.Len()+rounds*delta {
		t.Fatalf("session length = %d", s.Len())
	}

	after := s.IndexStats()
	if after.Misses != warm.Misses || after.Refines != warm.Refines {
		t.Fatalf("append+detect rebuilt partitions: %+v -> %+v", warm, after)
	}
	if after.Advances == 0 {
		t.Fatalf("appends absorbed without advances being counted: %+v", after)
	}

	// The advanced-partition detection result equals a cold run.
	warmVs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	coldVs, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmVs, coldVs) {
		t.Fatal("advanced-index detection diverges from cold detection")
	}
}

// TestAppendKeepsViolationCacheOnCleanBase is the incremental
// violation-maintenance acceptance check: once a session has a validly
// cached EMPTY violation list (a clean base), Session.Append keeps the
// cache valid — IncInPlace repairs the delta onto the clean base, so
// the relation stays violation-free and the next Violations() answers
// from the cache with ZERO detection work, asserted by the PLI cache
// counters not moving at all. Dirty deltas are repaired clean and keep
// the property; a cell Edit still invalidates.
func TestAppendKeepsViolationCacheOnCleanBase(t *testing.T) {
	base := datagen.Cust(3_000, 43)
	s, err := NewSession("clean-append", base, datagen.CustConstraints(), 0)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := s.Violations() // primes the cache; clean data has none
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("generated base has %d violations", len(vs))
	}

	schema := base.Schema()
	mkClean := func(round int) []relation.Tuple {
		out := make([]relation.Tuple, 25)
		for i := range out {
			out[i] = base.Tuple((round*25 + i*17) % base.Len()).Clone()
		}
		return out
	}
	for round := 0; round < 3; round++ {
		if _, err := s.Append(mkClean(round)); err != nil {
			t.Fatal(err)
		}
		after := s.IndexStats()
		vs, err := s.Violations()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("round %d: %d violations after clean append", round, len(vs))
		}
		if got := s.IndexStats(); got != after {
			t.Fatalf("round %d: Violations() re-detected after a clean append: %+v -> %+v", round, after, got)
		}
	}

	// A dirty delta is repaired onto the clean base — still violation-
	// free afterwards, still no re-detection on the read path.
	dirtyDelta, _ := noise.Dirty(datagen.Cust(40, 47), noise.Options{
		Rate:  0.4,
		Attrs: []int{schema.MustIndex("STR"), schema.MustIndex("CT")},
		Seed:  53,
	})
	tuples := make([]relation.Tuple, dirtyDelta.Len())
	for i := range tuples {
		tuples[i] = dirtyDelta.Tuple(i).Clone()
	}
	res, err := s.Append(tuples)
	if err != nil {
		t.Fatal(err)
	}
	after := s.IndexStats()
	vs, err = s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("%d violations after repaired dirty append (%d changes)", len(vs), len(res.Changes))
	}
	if got := s.IndexStats(); got != after {
		t.Fatalf("Violations() re-detected after a repaired append: %+v -> %+v", after, got)
	}

	// Ground truth: a from-scratch serial detection agrees.
	direct, err := s.DetectSerial()
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 0 {
		t.Fatalf("cached-clean session actually has %d violations", len(direct))
	}

	// Mutations other than Append still invalidate: an Edit forces the
	// next Violations() to re-detect.
	before := s.IndexStats()
	if err := s.Edit(0, schema.MustIndex("STR"), relation.String("edited-street")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Violations(); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexStats(); got == before {
		t.Fatal("Violations() after an Edit did no detection work")
	}
}

// TestSessionAppendRollback checks the failure path: an arity-bad tuple
// mid-batch rolls the whole append back, leaving length, violations and
// subsequent detection exactly as before.
func TestSessionAppendRollback(t *testing.T) {
	s := newSession(t, 400, 15)
	before, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	good := s.Data().Tuple(0).Clone()
	if _, err := s.Append([]relation.Tuple{good, good[:2]}); err == nil {
		t.Fatal("arity-mismatched append should fail")
	}
	if s.Len() != n {
		t.Fatalf("failed append left %d of %d tuples", s.Len(), n)
	}
	after, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed append changed the violation set")
	}
}

// TestConcurrentAppendDetectDiscover hammers one session with the three
// service verbs at once — appends (exclusive), detection and discovery
// (shared) — under -race: the per-entry advance/compact serialization
// in the index cache and the session lock discipline must keep every
// result coherent. Run via `make race-cache` (-race -count=2).
func TestConcurrentAppendDetectDiscover(t *testing.T) {
	base := datagen.Cust(2_000, 27)
	s, err := NewSession("conc", base, datagen.CustConstraints(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tuples := make([]relation.Tuple, 20)
				for j := range tuples {
					tuples[j] = base.Tuple((w*531 + i*97 + j) % base.Len()).Clone()
				}
				if _, err := s.Append(tuples); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Detect(); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Violations(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/2; i++ {
				if _, err := s.Discover(discovery.Options{MinSupport: 10, MaxLHS: 2}, false); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if s.Len() != base.Len()+2*rounds*20 {
		t.Fatalf("session length = %d after concurrent appends", s.Len())
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("%d violations after consistent concurrent appends", len(vs))
	}
	if after := s.IndexStats(); after.Advances == 0 {
		t.Fatalf("concurrent appends never advanced a partition: %+v", after)
	}
}

func TestDiscoverInstall(t *testing.T) {
	clean := datagen.Cust(500, 21)
	s, err := NewSession("disc", clean, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found, err := s.Discover(discovery.Options{MinSupport: 10, MaxLHS: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("discovery on generated data should find CFDs")
	}
	if s.Constraints().Len() != len(found) {
		t.Fatalf("installed %d of %d discovered CFDs", s.Constraints().Len(), len(found))
	}
	// Discovered constraints hold on the data they were mined from.
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("discovered set is violated by its own data: %d violations", len(vs))
	}
}

// TestConcurrentDetectWithWriter is the registry/session concurrency
// test the service depends on: N goroutines detect against a shared
// dataset while another goroutine edits cells and a third hammers the
// registry. Run under -race (the Makefile and CI do).
func TestConcurrentDetectWithWriter(t *testing.T) {
	e := New(Options{})
	s, err := e.Register("shared", dirtyCust(t, 1_500, 23))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetConstraints(datagen.CustConstraints()); err != nil {
		t.Fatal(err)
	}
	schema := s.Schema()
	strIdx := schema.MustIndex("STR")

	const readers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errCh := make(chan error, readers+2)

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := s.Detect(); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Violations(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Writer: keeps mutating cells (and confirming them) mid-detection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*10; r++ {
			tid := r % s.Len()
			if err := s.Edit(tid, strIdx, relation.String(fmt.Sprintf("w-%d", r))); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Registry churn: register/list/drop unrelated datasets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			name := fmt.Sprintf("tmp-%d", r)
			if _, err := e.Register(name, datagen.Cust(20, int64(r))); err != nil {
				errCh <- err
				return
			}
			e.List()
			e.Drop(name)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The session must still be coherent afterwards.
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSessionValidation(t *testing.T) {
	data := datagen.Cust(10, 1)
	other, err := relation.StringSchema("other", "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession("x", data, cfd.NewSet(other), 0); err == nil {
		t.Error("schema mismatch should fail")
	}
	bad, err := cfd.ParseSet(`
cfd a: cust([CC] -> [CT='x'])
cfd b: cust([CC] -> [CT='y'])
`, data.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession("x", data, bad, 0); err == nil {
		t.Error("unsatisfiable set should fail")
	}
}

// TestSessionIndexCacheWarm asserts the service-side acceptance
// criterion of the columnar refactor: repeated detection on an
// unmutated session performs zero index rebuilds (the miss counter
// freezes after warm-up), and edits rebuild only the indexes over the
// touched columns.
func TestSessionIndexCacheWarm(t *testing.T) {
	s := newSession(t, 500, 3)
	schema := s.Schema()
	// CustConstraints has four distinct LHS attribute sets:
	// (CC,ZIP), (CC,AC,PN), (CC,AC), (ZIP,CC).
	const lhsSets = 4

	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	stats := s.IndexStats()
	if stats.Misses != lhsSets {
		t.Fatalf("cold detection built %d indexes, want %d", stats.Misses, lhsSets)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Detect(); err != nil {
			t.Fatal(err)
		}
	}
	stats = s.IndexStats()
	if stats.Misses != lhsSets {
		t.Fatalf("warm detection rebuilt indexes: misses = %d, want %d", stats.Misses, lhsSets)
	}
	if stats.Hits < 5*lhsSets {
		t.Fatalf("warm detection hits = %d, want >= %d", stats.Hits, 5*lhsSets)
	}

	// STR appears in no LHS: editing it must rebuild nothing.
	if err := s.Edit(3, schema.MustIndex("STR"), relation.String("index-cache-test-street")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexStats().Misses; got != lhsSets {
		t.Fatalf("editing a non-key column rebuilt indexes: misses = %d, want %d", got, lhsSets)
	}

	// ZIP appears in the LHS of phi1 and phi4: the journaled cell patch
	// is drained into exactly those two cached PLIs — still no rebuild.
	if err := s.Edit(3, schema.MustIndex("ZIP"), relation.String("ZZ9 9ZZ")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexStats(); got.Misses != lhsSets || got.Patches != 2 {
		t.Fatalf("editing ZIP should patch 2 indexes and rebuild none: %+v", got)
	}

	// The detection result through the warm cache equals a cold run.
	warm, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm-cache detection diverges from cold detection")
	}
}

// TestSessionDiscoveryCacheWarm asserts the discovery-side acceptance
// criterion of the partition-intersection refactor: discovery runs on
// the session's per-dataset PLI cache, the cold lattice walk counting-
// sorts only single-attribute partitions from scratch (every deeper
// node is an intersection of its level-(k-1) prefix), and a warm
// session re-discovers with zero builds and zero refinements — hit
// counters grow, nothing else moves.
func TestSessionDiscoveryCacheWarm(t *testing.T) {
	s := newSession(t, 400, 5)
	opts := discovery.Options{MinSupport: 5, MaxLHS: 2}

	cold, err := s.Discover(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.IndexStats()
	if stats.Misses == 0 || stats.Refines == 0 {
		t.Fatalf("cold discovery should both build (singles) and refine (deeper sets): %+v", stats)
	}
	if arity := uint64(s.Schema().Arity()); stats.Misses > arity {
		t.Fatalf("cold discovery built %d partitions from scratch, want at most arity %d (everything deeper intersects)",
			stats.Misses, arity)
	}

	warm, err := s.Discover(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	after := s.IndexStats()
	if after.Misses != stats.Misses || after.Refines != stats.Refines {
		t.Fatalf("warm discovery re-partitioned: %+v -> %+v", stats, after)
	}
	if after.Hits <= stats.Hits {
		t.Fatalf("warm discovery did not hit the cache: %+v -> %+v", stats, after)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm discovery found %d rules, cold found %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].String() != cold[i].String() {
			t.Fatalf("warm rule %d = %s, cold = %s", i, warm[i], cold[i])
		}
	}

	// Detection shares the same cache: a detect after discovery reuses
	// the discovery-built LHS partitions. The cache keys by attribute
	// ORDER, and phi4 declares its LHS as (ZIP, CC) — the one unsorted
	// set the sorted lattice walk never visited — so exactly one new
	// partition is allowed.
	preDetect := s.IndexStats()
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	postDetect := s.IndexStats()
	if postDetect.Misses > preDetect.Misses+1 {
		t.Fatalf("detection after discovery rebuilt partitions: %+v -> %+v", preDetect, postDetect)
	}
}

// TestSessionCacheAcrossAccept checks that committing a repair (which
// swaps the underlying relation) is detected as staleness rather than
// served from the old relation's indexes.
func TestSessionCacheAcrossAccept(t *testing.T) {
	s := newSession(t, 300, 9)
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	before := s.IndexStats()
	if _, err := s.RepairAccept(); err != nil {
		t.Fatal(err)
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("repair-accepted data still has %d violations", len(vs))
	}
	after := s.IndexStats()
	if after.Misses <= before.Misses {
		t.Fatalf("detection after Accept reused indexes of the replaced relation")
	}
}
