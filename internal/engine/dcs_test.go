package engine

import (
	"fmt"
	"sync"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/dc"
	"semandaq/internal/discovery"
	"semandaq/internal/relation"
)

func TestSessionDCLifecycle(t *testing.T) {
	eng := New(Options{Workers: 1})
	data := datagen.Emp(600, 8, 11)
	if _, err := eng.Register("emp", data); err != nil {
		t.Fatal(err)
	}

	set, err := eng.InstallDCs("emp", datagen.EmpDCText())
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("installed %d DCs, want 1", set.Len())
	}
	// Compiled sets are cached by (schema, text) and shared.
	again, err := eng.CompileDCs(datagen.EmpSchema(), datagen.EmpDCText())
	if err != nil {
		t.Fatal(err)
	}
	if again != set {
		t.Error("CompileDCs should return the cached set instance")
	}

	sess, _ := eng.Get("emp")
	reports := sess.DetectDCs(0)
	if len(reports) != 1 || reports[0].Name != "pay" {
		t.Fatalf("reports = %+v", reports)
	}
	vios := reports[0].Violations
	if len(vios) == 0 {
		t.Fatal("planted pay inversions not detected")
	}
	// Detection through the session must equal a cold standalone run.
	d, _ := set.Get("pay")
	want := dc.DetectNaive(sess.Data(), d)
	if len(vios) != len(want) {
		t.Fatalf("session detection found %d violations, naive %d", len(vios), len(want))
	}
	if lim := sess.DetectDCs(3); len(lim[0].Violations) != 3 || !lim[0].Truncated {
		t.Fatalf("limit=3 gave %+v", lim[0])
	}

	weaks, relaxVios, err := sess.RelaxDC("pay", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxVios) != len(vios) {
		t.Fatalf("RelaxDC saw %d violations, detect saw %d", len(relaxVios), len(vios))
	}
	consistent := false
	for _, w := range weaks {
		if w.Consistent {
			consistent = true
		}
	}
	if !consistent {
		t.Fatalf("no consistent weakening among %d proposals", len(weaks))
	}
	if _, _, err := sess.RelaxDC("nope", 0); err == nil {
		t.Error("RelaxDC of unknown DC should fail")
	}

	// Schema mismatches are rejected at install.
	if err := sess.SetDCs(dc.NewSet(datagen.CustSchema())); err == nil {
		t.Error("SetDCs with foreign schema should fail")
	}
	if _, err := eng.InstallDCs("nope", datagen.EmpDCText()); err == nil {
		t.Error("InstallDCs on unknown dataset should fail")
	}
}

// TestConcurrentDCDetectAppendDiscover races DC detection against
// appends, CFD detection and discovery on ONE shared session index
// cache — the -race companion of TestConcurrentAppendDetectDiscover
// for the DC path (make race-cache runs this with -race -count=2).
func TestConcurrentDCDetectAppendDiscover(t *testing.T) {
	base := datagen.Emp(1_500, 0, 31)
	s, err := NewSession("dcrace", base, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	set, err := dc.ParseSet(datagen.EmpDCText(), base.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDCs(set); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tuples := make([]relation.Tuple, 15)
				for j := range tuples {
					// Clones of clean tuples keep the DC satisfied.
					tuples[j] = base.Tuple((w*331 + i*77 + j) % base.Len()).Clone()
				}
				if _, err := s.Append(tuples); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, rep := range s.DetectDCs(0) {
					if len(rep.Violations) != 0 {
						errCh <- errFromViolations(rep.Name, len(rep.Violations))
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			if _, err := s.Discover(discovery.Options{MinSupport: 10, MaxLHS: 2}, false); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if s.Len() != base.Len()+2*rounds*15 {
		t.Fatalf("session length = %d after concurrent appends", s.Len())
	}
	// The final state must still be clean and byte-identical to naive.
	for _, rep := range s.DetectDCs(0) {
		if len(rep.Violations) != 0 {
			t.Fatalf("%s: %d violations after clean concurrent appends", rep.Name, len(rep.Violations))
		}
	}
}

func errFromViolations(name string, n int) error {
	return fmt.Errorf("%s: %d violations during concurrent clean appends", name, n)
}
